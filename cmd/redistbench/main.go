// redistbench measures the transfer engine's steady-state throughput and
// allocation behaviour and writes a machine-readable BENCH_redist.json.
//
// Each case drives a 2-source / 2-destination world (block → cyclic over a
// fixed element count) through full transfer steps and reports elems/sec
// and allocs/op, for float64 and float32 instantiations of the engine,
// over a cached schedule (built once, the steady state) and an uncached
// one (rebuilt every iteration, the cold baseline). Planning itself is
// reported as a separate phase: the closed-form fast path (arena-recycled)
// against the patch-enumeration baseline. The headline numbers to watch:
// cached allocs/op must be 0, the fast planner must beat the enumerator,
// and the cached/uncached throughput gap bounds what a first contact or a
// post-failure re-plan costs on top of a steady-state transfer.
//
//	go run ./cmd/redistbench                 # full run, writes BENCH_redist.json
//	go run ./cmd/redistbench -short          # CI smoke run (fixed 30 iterations)
//	go run ./cmd/redistbench -out -          # report to stdout
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"mxn/internal/comm"
	"mxn/internal/dad"
	"mxn/internal/obs"
	"mxn/internal/redist"
	"mxn/internal/schedule"
)

// benchElems is the global element count of each transfer step.
const benchElems = 1 << 14

type caseResult struct {
	Name        string  `json:"name"`
	Phase       string  `json:"phase"` // "transfer" or "plan"
	Elem        string  `json:"elem,omitempty"`
	Schedule    string  `json:"schedule"` // transfer: "cached"/"uncached"; plan: "fast"/"enumerator"
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	ElemsPerSec float64 `json:"elems_per_sec"`
	MBPerSec    float64 `json:"mb_per_sec,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

type report struct {
	Timestamp string       `json:"timestamp"`
	GoVersion string       `json:"go_version"`
	Elems     int          `json:"elems_per_transfer"`
	Cases     []caseResult `json:"cases"`
	Metrics   obs.Snapshot `json:"metrics"`
}

// world is the benchmark harness: transfers run sequentially in one
// goroutine (sources post without blocking, destinations then drain),
// so iteration timing measures the engine, not scheduler noise.
type world[T redist.Elem] struct {
	cs        []*comm.Comm
	src, dst  *dad.Template
	s         *schedule.Schedule
	lay       redist.Layout
	srcLocals [][]T
	dstLocals [][]T
}

func newWorld[T redist.Elem]() (*world[T], error) {
	src, err := dad.NewTemplate([]int{benchElems}, []dad.AxisDist{dad.BlockAxis(2)})
	if err != nil {
		return nil, err
	}
	dst, err := dad.NewTemplate([]int{benchElems}, []dad.AxisDist{dad.CyclicAxis(2)})
	if err != nil {
		return nil, err
	}
	s, err := schedule.Build(src, dst)
	if err != nil {
		return nil, err
	}
	w := &world[T]{
		cs:  comm.NewWorld(4).Comms(),
		src: src, dst: dst, s: s,
		lay: redist.Layout{SrcBase: 0, DstBase: 2},
	}
	for r := 0; r < 2; r++ {
		w.srcLocals = append(w.srcLocals, make([]T, src.LocalCount(r)))
		w.dstLocals = append(w.dstLocals, make([]T, dst.LocalCount(r)))
	}
	return w, nil
}

func (w *world[T]) step() error {
	for r := 0; r < 2; r++ {
		if err := redist.ExchangeT[T](w.cs[r], w.s, w.lay, w.srcLocals[r], nil, 0); err != nil {
			return fmt.Errorf("source rank %d: %w", r, err)
		}
	}
	for r := 0; r < 2; r++ {
		if err := redist.ExchangeT[T](w.cs[2+r], w.s, w.lay, nil, w.dstLocals[r], 0); err != nil {
			return fmt.Errorf("destination rank %d: %w", r, err)
		}
	}
	return nil
}

func runCase[T redist.Elem](elemName string, esz int, cached bool) (caseResult, error) {
	var runErr error
	res := testing.Benchmark(func(b *testing.B) {
		w, err := newWorld[T]()
		if err != nil {
			runErr = err
			b.SkipNow()
		}
		if err := w.step(); err != nil { // warm the pools and mailbox queues
			runErr = err
			b.SkipNow()
		}
		b.ReportAllocs()
		b.SetBytes(int64(benchElems * esz))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if !cached {
				s, err := schedule.Build(w.src, w.dst)
				if err != nil {
					runErr = err
					b.SkipNow()
				}
				w.s = s
			}
			if err := w.step(); err != nil {
				runErr = err
				b.SkipNow()
			}
			if !cached {
				// The transfer is complete; returning the plan's arena is
				// part of the uncached steady state being measured.
				w.s.Recycle()
			}
		}
	})
	if runErr != nil {
		return caseResult{}, runErr
	}
	sched := "cached"
	if !cached {
		sched = "uncached"
	}
	nsPerOp := float64(res.T.Nanoseconds()) / float64(res.N)
	out := caseResult{
		Name:        fmt.Sprintf("Exchange/%s/%s", elemName, sched),
		Phase:       "transfer",
		Elem:        elemName,
		Schedule:    sched,
		Iterations:  res.N,
		NsPerOp:     nsPerOp,
		ElemsPerSec: float64(benchElems) * 1e9 / nsPerOp,
		MBPerSec:    float64(benchElems*esz) * 1e3 / nsPerOp,
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
	}
	return out, nil
}

// runPlanCase isolates the planning phase: repeated schedule construction
// for the benchmark's template pair, with the closed-form fast path either
// active (arena-recycled, the first-contact cost a cache miss now pays) or
// disabled (the patch-enumeration baseline it replaced).
func runPlanCase(fast bool) (caseResult, error) {
	src, err := dad.NewTemplate([]int{benchElems}, []dad.AxisDist{dad.BlockAxis(2)})
	if err != nil {
		return caseResult{}, err
	}
	dst, err := dad.NewTemplate([]int{benchElems}, []dad.AxisDist{dad.CyclicAxis(2)})
	if err != nil {
		return caseResult{}, err
	}
	opts := schedule.BuildOpts{DisableFastPath: !fast}
	var runErr error
	res := testing.Benchmark(func(b *testing.B) {
		// Warm the arena free list so the fast rows measure steady state.
		for i := 0; i < 2; i++ {
			s, err := schedule.BuildWith(src, dst, opts)
			if err != nil {
				runErr = err
				b.SkipNow()
			}
			s.Recycle()
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s, err := schedule.BuildWith(src, dst, opts)
			if err != nil {
				runErr = err
				b.SkipNow()
			}
			s.Recycle()
		}
	})
	if runErr != nil {
		return caseResult{}, runErr
	}
	planner := "fast"
	if !fast {
		planner = "enumerator"
	}
	nsPerOp := float64(res.T.Nanoseconds()) / float64(res.N)
	return caseResult{
		Name:        "Plan/" + planner,
		Phase:       "plan",
		Schedule:    planner,
		Iterations:  res.N,
		NsPerOp:     nsPerOp,
		ElemsPerSec: float64(benchElems) * 1e9 / nsPerOp,
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
	}, nil
}

func main() {
	outFlag := flag.String("out", "BENCH_redist.json", "report path ('-' for stdout)")
	shortFlag := flag.Bool("short", false, "smoke run: fixed small iteration count")
	testing.Init()
	flag.Parse()
	if *shortFlag {
		// testing.Benchmark honours -test.benchtime; a fixed iteration
		// count keeps the CI smoke run fast and deterministic.
		flag.Set("test.benchtime", "30x")
	}
	obs.DisableTracing()

	type spec struct {
		elem   string
		esz    int
		cached bool
	}
	specs := []spec{
		{"float64", 8, true},
		{"float64", 8, false},
		{"float32", 4, true},
		{"float32", 4, false},
	}
	rep := report{
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		Elems:     benchElems,
	}
	for _, sp := range specs {
		var (
			res caseResult
			err error
		)
		if sp.elem == "float64" {
			res, err = runCase[float64](sp.elem, sp.esz, sp.cached)
		} else {
			res, err = runCase[float32](sp.elem, sp.esz, sp.cached)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s/%v: %v\n", sp.elem, sp.cached, err)
			os.Exit(1)
		}
		rep.Cases = append(rep.Cases, res)
		fmt.Printf("%-28s %10d iter  %12.0f ns/op  %14.0f elems/sec  %8.1f MB/s  %6d B/op  %4d allocs/op\n",
			res.Name, res.Iterations, res.NsPerOp, res.ElemsPerSec, res.MBPerSec, res.BytesPerOp, res.AllocsPerOp)
	}
	for _, fast := range []bool{true, false} {
		res, err := runPlanCase(fast)
		if err != nil {
			fmt.Fprintf(os.Stderr, "plan/%v: %v\n", fast, err)
			os.Exit(1)
		}
		rep.Cases = append(rep.Cases, res)
		fmt.Printf("%-28s %10d iter  %12.0f ns/op  %14.0f elems/sec  %8s  %6d B/op  %4d allocs/op\n",
			res.Name, res.Iterations, res.NsPerOp, res.ElemsPerSec, "", res.BytesPerOp, res.AllocsPerOp)
	}
	rep.Metrics = obs.Default().Snapshot()

	// The engine's contract: steady-state transfers over a cached schedule
	// are allocation-free. Fail loudly if a regression sneaks in.
	for _, c := range rep.Cases {
		if c.Schedule == "cached" && c.AllocsPerOp != 0 {
			fmt.Fprintf(os.Stderr, "REGRESSION: %s allocates %d allocs/op (want 0)\n", c.Name, c.AllocsPerOp)
			os.Exit(1)
		}
	}
	// The planner's contract: the closed-form fast path must beat the
	// patch enumerator on the pair it exists to accelerate.
	var planNs = map[string]float64{}
	for _, c := range rep.Cases {
		if c.Phase == "plan" {
			planNs[c.Schedule] = c.NsPerOp
		}
	}
	if f, e := planNs["fast"], planNs["enumerator"]; f > 0 && e > 0 && f >= e {
		fmt.Fprintf(os.Stderr, "REGRESSION: fast-path planning (%.0f ns/op) is no faster than the enumerator (%.0f ns/op)\n", f, e)
		os.Exit(1)
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "report: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *outFlag == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*outFlag, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "report: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *outFlag)
}
