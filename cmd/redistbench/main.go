// redistbench measures the transfer engine's steady-state throughput and
// allocation behaviour and writes a machine-readable BENCH_redist.json.
//
// Each case drives a 2-source / 2-destination world (block → cyclic over a
// fixed element count) through full transfer steps and reports elems/sec
// and allocs/op, for float64 and float32 instantiations of the engine,
// over a cached schedule (built once, the steady state) and an uncached
// one (rebuilt every iteration, the cold baseline). Planning itself is
// reported as a separate phase: the closed-form fast path (arena-recycled)
// against the patch-enumeration baseline. A HighWater phase measures peak
// resident packed bytes — unbudgeted against a MaxBytesInFlight-budgeted
// run over the same world — via the engine's packed-bytes watermark, with
// runtime.MemStats deltas as corroboration. A Resize phase runs complete
// online reconfigurations — prepare fence, planned migration over a cached
// Remap schedule, commit — alternating grow 2→4 and shrink 4→2, reporting
// resize wall-clock, planned-migration throughput and the migration path's
// allocation count, then measures the cached steady state on the
// post-resize geometry. The headline numbers to watch: cached allocs/op
// must be 0 (budgeted and post-resize included), the fast planner must
// beat the enumerator, the cached/uncached throughput gap bounds what a
// first contact or a post-failure re-plan costs on top of a steady-state
// transfer, and the budgeted high water must stay within budget per
// sending rank and under the unbudgeted baseline.
//
//	go run ./cmd/redistbench                 # full run, writes BENCH_redist.json
//	go run ./cmd/redistbench -short          # CI smoke run (fixed 30 iterations)
//	go run ./cmd/redistbench -out -          # report to stdout
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"mxn/internal/comm"
	"mxn/internal/core"
	"mxn/internal/dad"
	"mxn/internal/obs"
	"mxn/internal/redist"
	"mxn/internal/schedule"
)

// benchElems is the global element count of each transfer step.
const benchElems = 1 << 14

type caseResult struct {
	Name        string  `json:"name"`
	Phase       string  `json:"phase"` // "transfer", "plan", "highwater", "resize" or "wirepath"
	Elem        string  `json:"elem,omitempty"`
	Schedule    string  `json:"schedule"` // transfer: "cached"/"uncached"; plan: "fast"/"enumerator"; highwater: "unbudgeted"/"budgeted"; resize: "migration"/"cached"; wirepath: "legacy"/"zerocopy"
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op,omitempty"`
	ElemsPerSec float64 `json:"elems_per_sec,omitempty"`
	MBPerSec    float64 `json:"mb_per_sec,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// HighWater phase: the transfer budget in force (0 = unbounded), the
	// engine's packed-bytes watermark over the measured steps, and the
	// runtime.MemStats TotalAlloc delta as corroboration.
	BudgetBytes     int    `json:"budget_bytes,omitempty"`
	PeakPackedBytes int64  `json:"peak_packed_bytes,omitempty"`
	TotalAllocDelta uint64 `json:"total_alloc_delta_bytes,omitempty"`
}

type report struct {
	Timestamp string       `json:"timestamp"`
	GoVersion string       `json:"go_version"`
	Elems     int          `json:"elems_per_transfer"`
	Cases     []caseResult `json:"cases"`
	Metrics   obs.Snapshot `json:"metrics"`
}

// world is the benchmark harness: transfers run sequentially in one
// goroutine (sources post without blocking, destinations then drain),
// so iteration timing measures the engine, not scheduler noise.
type world[T redist.Elem] struct {
	cs        []*comm.Comm
	src, dst  *dad.Template
	s         *schedule.Schedule
	lay       redist.Layout
	srcLocals [][]T
	dstLocals [][]T
}

func newWorld[T redist.Elem]() (*world[T], error) {
	src, err := dad.NewTemplate([]int{benchElems}, []dad.AxisDist{dad.BlockAxis(2)})
	if err != nil {
		return nil, err
	}
	dst, err := dad.NewTemplate([]int{benchElems}, []dad.AxisDist{dad.CyclicAxis(2)})
	if err != nil {
		return nil, err
	}
	s, err := schedule.Build(src, dst)
	if err != nil {
		return nil, err
	}
	w := &world[T]{
		cs:  comm.NewWorld(4).Comms(),
		src: src, dst: dst, s: s,
		lay: redist.Layout{SrcBase: 0, DstBase: 2},
	}
	for r := 0; r < 2; r++ {
		w.srcLocals = append(w.srcLocals, make([]T, src.LocalCount(r)))
		w.dstLocals = append(w.dstLocals, make([]T, dst.LocalCount(r)))
	}
	return w, nil
}

func (w *world[T]) step() error {
	for r := 0; r < 2; r++ {
		if err := redist.ExchangeT[T](w.cs[r], w.s, w.lay, w.srcLocals[r], nil, 0); err != nil {
			return fmt.Errorf("source rank %d: %w", r, err)
		}
	}
	for r := 0; r < 2; r++ {
		if err := redist.ExchangeT[T](w.cs[2+r], w.s, w.lay, nil, w.dstLocals[r], 0); err != nil {
			return fmt.Errorf("destination rank %d: %w", r, err)
		}
	}
	return nil
}

func runCase[T redist.Elem](elemName string, esz int, cached bool) (caseResult, error) {
	var runErr error
	res := testing.Benchmark(func(b *testing.B) {
		w, err := newWorld[T]()
		if err != nil {
			runErr = err
			b.SkipNow()
		}
		if err := w.step(); err != nil { // warm the pools and mailbox queues
			runErr = err
			b.SkipNow()
		}
		b.ReportAllocs()
		b.SetBytes(int64(benchElems * esz))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if !cached {
				s, err := schedule.Build(w.src, w.dst)
				if err != nil {
					runErr = err
					b.SkipNow()
				}
				w.s = s
			}
			if err := w.step(); err != nil {
				runErr = err
				b.SkipNow()
			}
			if !cached {
				// The transfer is complete; returning the plan's arena is
				// part of the uncached steady state being measured.
				w.s.Recycle()
			}
		}
	})
	if runErr != nil {
		return caseResult{}, runErr
	}
	sched := "cached"
	if !cached {
		sched = "uncached"
	}
	nsPerOp := float64(res.T.Nanoseconds()) / float64(res.N)
	out := caseResult{
		Name:        fmt.Sprintf("Exchange/%s/%s", elemName, sched),
		Phase:       "transfer",
		Elem:        elemName,
		Schedule:    sched,
		Iterations:  res.N,
		NsPerOp:     nsPerOp,
		ElemsPerSec: float64(benchElems) * 1e9 / nsPerOp,
		MBPerSec:    float64(benchElems*esz) * 1e3 / nsPerOp,
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
	}
	return out, nil
}

// budgetWorld drives the same world through memory-bounded transfers.
// Budgeted ranks cannot run sequentially (senders block on chunk acks),
// so the four ranks are persistent worker goroutines signalled over
// pre-allocated channels; one step is signal-all/collect-all. Keeping the
// workers alive across iterations keeps the steady state allocation-free.
type budgetWorld[T redist.Elem] struct {
	w      *world[T]
	budget int
	start  []chan struct{}
	done   chan error
}

func newBudgetWorld[T redist.Elem](budget int) (*budgetWorld[T], error) {
	w, err := newWorld[T]()
	if err != nil {
		return nil, err
	}
	bw := &budgetWorld[T]{w: w, budget: budget, done: make(chan error, 4)}
	for r := 0; r < 4; r++ {
		ch := make(chan struct{}, 1)
		bw.start = append(bw.start, ch)
		go func(r int, ch chan struct{}) {
			opts := redist.TransferOpts{MaxBytesInFlight: budget}
			var sl, dl []T
			if r < 2 {
				sl = w.srcLocals[r]
			} else {
				dl = w.dstLocals[r-2]
			}
			for range ch {
				bw.done <- redist.ExchangeWithT[T](w.cs[r], w.s, w.lay, sl, dl, 0, opts)
			}
		}(r, ch)
	}
	return bw, nil
}

func (bw *budgetWorld[T]) step() error {
	for r := 0; r < 4; r++ {
		bw.start[r] <- struct{}{}
	}
	var firstErr error
	for r := 0; r < 4; r++ {
		if err := <-bw.done; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func (bw *budgetWorld[T]) close() {
	for _, ch := range bw.start {
		close(ch)
	}
}

// runBudgetCase measures steady-state budgeted transfer throughput over a
// cached schedule. It reports Schedule "cached" so the zero-allocs gate
// below covers the budgeted path too.
func runBudgetCase[T redist.Elem](elemName string, esz, budget int) (caseResult, error) {
	var runErr error
	res := testing.Benchmark(func(b *testing.B) {
		bw, err := newBudgetWorld[T](budget)
		if err != nil {
			runErr = err
			b.SkipNow()
		}
		defer bw.close()
		// Warm pools, mailbox rings and worker stacks across several
		// concurrent interleavings before counting.
		for i := 0; i < 8; i++ {
			if err := bw.step(); err != nil {
				runErr = err
				b.SkipNow()
			}
		}
		b.ReportAllocs()
		b.SetBytes(int64(benchElems * esz))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := bw.step(); err != nil {
				runErr = err
				b.SkipNow()
			}
		}
	})
	if runErr != nil {
		return caseResult{}, runErr
	}
	nsPerOp := float64(res.T.Nanoseconds()) / float64(res.N)
	return caseResult{
		Name:        fmt.Sprintf("ExchangeBudgeted/%s/cached", elemName),
		Phase:       "transfer",
		Elem:        elemName,
		Schedule:    "cached",
		Iterations:  res.N,
		NsPerOp:     nsPerOp,
		ElemsPerSec: float64(benchElems) * 1e9 / nsPerOp,
		MBPerSec:    float64(benchElems*esz) * 1e3 / nsPerOp,
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
		BudgetBytes: budget,
	}, nil
}

// highWaterSteps is how many transfer steps each HighWater measurement
// aggregates over.
const highWaterSteps = 5

// runHighWater measures peak resident packed bytes — the quantity
// MaxBytesInFlight exists to bound — via the engine's own watermark,
// with a MemStats TotalAlloc delta recorded as corroboration. The
// unbudgeted row is the baseline (every pairwise message resident at
// once); the budgeted row must stay near the budget.
func runHighWater(budget int) (unb, bud caseResult, err error) {
	measure := func(step func() error) (int64, uint64, error) {
		if err := step(); err != nil { // warm
			return 0, 0, err
		}
		var ms0, ms1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		redist.ResetPackedBytesHighWater()
		base := redist.PackedBytesHighWater()
		for i := 0; i < highWaterSteps; i++ {
			if err := step(); err != nil {
				return 0, 0, err
			}
		}
		peak := redist.PackedBytesHighWater() - base
		runtime.ReadMemStats(&ms1)
		return peak, ms1.TotalAlloc - ms0.TotalAlloc, nil
	}

	w, err := newWorld[float64]()
	if err != nil {
		return unb, bud, err
	}
	peak, alloc, err := measure(w.step)
	if err != nil {
		return unb, bud, fmt.Errorf("highwater unbudgeted: %w", err)
	}
	unb = caseResult{
		Name: "HighWater/float64/unbudgeted", Phase: "highwater", Elem: "float64",
		Schedule: "unbudgeted", Iterations: highWaterSteps,
		PeakPackedBytes: peak, TotalAllocDelta: alloc,
	}

	bw, err := newBudgetWorld[float64](budget)
	if err != nil {
		return unb, bud, err
	}
	defer bw.close()
	peak, alloc, err = measure(bw.step)
	if err != nil {
		return unb, bud, fmt.Errorf("highwater budgeted: %w", err)
	}
	bud = caseResult{
		Name: "HighWater/float64/budgeted", Phase: "highwater", Elem: "float64",
		Schedule: "budgeted", Iterations: highWaterSteps,
		BudgetBytes: budget, PeakPackedBytes: peak, TotalAllocDelta: alloc,
	}
	return unb, bud, nil
}

// wireElems is the global element count of each WirePath transfer: a
// large contiguous all-to-all so per-message payloads are megabytes and
// the copy-vs-lend difference dominates protocol overhead.
const wireElems = 1 << 20

// wireWorld drives the WirePath phase: a complex128 block(3) → block(4)
// all-to-all transpose where every cross-rank message is one contiguous
// run of the source array. With ZeroCopyLocal the engine lends views of
// the source slices and rendezvouses with the receivers, so ranks are
// persistent worker goroutines (the sequential harness would deadlock
// on the rendezvous).
type wireWorld struct {
	start []chan struct{}
	done  chan error
}

func newWireWorld(zc bool) (*wireWorld, error) {
	src, err := dad.NewTemplate([]int{wireElems}, []dad.AxisDist{dad.BlockAxis(3)})
	if err != nil {
		return nil, err
	}
	dst, err := dad.NewTemplate([]int{wireElems}, []dad.AxisDist{dad.BlockAxis(4)})
	if err != nil {
		return nil, err
	}
	s, err := schedule.Build(src, dst)
	if err != nil {
		return nil, err
	}
	cs := comm.NewWorld(7).Comms()
	lay := redist.Layout{SrcBase: 0, DstBase: 3}
	w := &wireWorld{done: make(chan error, 7)}
	for r := 0; r < 7; r++ {
		ch := make(chan struct{}, 1)
		w.start = append(w.start, ch)
		go func(r int, ch chan struct{}) {
			var sl, dl []complex128
			if r < 3 {
				sl = make([]complex128, src.LocalCount(r))
			} else {
				dl = make([]complex128, dst.LocalCount(r-3))
			}
			opts := redist.TransferOpts{ZeroCopyLocal: zc}
			for range ch {
				w.done <- redist.ExchangeWithT(cs[r], s, lay, sl, dl, 0, opts)
			}
		}(r, ch)
	}
	return w, nil
}

func (w *wireWorld) step() error {
	for _, ch := range w.start {
		ch <- struct{}{}
	}
	var firstErr error
	for range w.start {
		if err := <-w.done; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func (w *wireWorld) close() {
	for _, ch := range w.start {
		close(ch)
	}
}

// runWirePathCase measures one WirePath row. For the zero-copy row it
// additionally verifies that the measured steps packed nothing: the
// contiguous fast path's claim is zero copies on the send side, and
// redist.elems_packed is the copy counter that proves it.
func runWirePathCase(zc bool) (caseResult, error) {
	packed := obs.Default().Counter("redist.elems_packed")
	var runErr error
	var packedDelta uint64
	res := testing.Benchmark(func(b *testing.B) {
		w, err := newWireWorld(zc)
		if err != nil {
			runErr = err
			b.SkipNow()
		}
		defer w.close()
		for i := 0; i < 2; i++ { // warm pools, mailboxes and worker stacks
			if err := w.step(); err != nil {
				runErr = err
				b.SkipNow()
			}
		}
		b.ReportAllocs()
		b.SetBytes(int64(wireElems * 16))
		before := packed.Value()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := w.step(); err != nil {
				runErr = err
				b.SkipNow()
			}
		}
		b.StopTimer()
		packedDelta = packed.Value() - before
	})
	if runErr != nil {
		return caseResult{}, runErr
	}
	mode := "legacy"
	if zc {
		mode = "zerocopy"
		if packedDelta != 0 {
			return caseResult{}, fmt.Errorf("zero-copy WirePath packed %d elements, want 0", packedDelta)
		}
	}
	nsPerOp := float64(res.T.Nanoseconds()) / float64(res.N)
	return caseResult{
		Name:        "WirePath/complex128/" + mode,
		Phase:       "wirepath",
		Elem:        "complex128",
		Schedule:    mode,
		Iterations:  res.N,
		NsPerOp:     nsPerOp,
		ElemsPerSec: float64(wireElems) * 1e9 / nsPerOp,
		MBPerSec:    float64(wireElems*16) * 1e3 / nsPerOp,
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
	}, nil
}

// runPlanCase isolates the planning phase: repeated schedule construction
// for the benchmark's template pair, with the closed-form fast path either
// active (arena-recycled, the first-contact cost a cache miss now pays) or
// disabled (the patch-enumeration baseline it replaced).
func runPlanCase(fast bool) (caseResult, error) {
	src, err := dad.NewTemplate([]int{benchElems}, []dad.AxisDist{dad.BlockAxis(2)})
	if err != nil {
		return caseResult{}, err
	}
	dst, err := dad.NewTemplate([]int{benchElems}, []dad.AxisDist{dad.CyclicAxis(2)})
	if err != nil {
		return caseResult{}, err
	}
	opts := schedule.BuildOpts{DisableFastPath: !fast}
	var runErr error
	res := testing.Benchmark(func(b *testing.B) {
		// Warm the arena free list so the fast rows measure steady state.
		for i := 0; i < 2; i++ {
			s, err := schedule.BuildWith(src, dst, opts)
			if err != nil {
				runErr = err
				b.SkipNow()
			}
			s.Recycle()
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s, err := schedule.BuildWith(src, dst, opts)
			if err != nil {
				runErr = err
				b.SkipNow()
			}
			s.Recycle()
		}
	})
	if runErr != nil {
		return caseResult{}, runErr
	}
	planner := "fast"
	if !fast {
		planner = "enumerator"
	}
	nsPerOp := float64(res.T.Nanoseconds()) / float64(res.N)
	return caseResult{
		Name:        "Plan/" + planner,
		Phase:       "plan",
		Schedule:    planner,
		Iterations:  res.N,
		NsPerOp:     nsPerOp,
		ElemsPerSec: float64(benchElems) * 1e9 / nsPerOp,
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
	}, nil
}

// resizeWorld drives full online-resize cycles: a 4-rank world whose
// cohort alternates between width 2 and width 4, one complete resize
// (ProposeResize → fenced migration → CommitReconfigure) per step. Both
// cohorts share the rank prefix (Layout{}), so migrating ranks send and
// receive concurrently; like budgetWorld, the ranks are persistent worker
// goroutines so the steady state stays free of per-step setup.
type resizeWorld struct {
	mem         *core.Membership
	cache       *schedule.Cache
	smallT      *dad.Template // Block(2)
	bigT        *dad.Template // Block(4)
	smallLocals [][]float64
	bigLocals   [][]float64
	start       []chan *core.Resize
	done        chan error
	grown       bool
}

func newResizeWorld() (*resizeWorld, error) {
	smallT, err := dad.NewTemplate([]int{benchElems}, []dad.AxisDist{dad.BlockAxis(2)})
	if err != nil {
		return nil, err
	}
	bigT, err := dad.NewTemplate([]int{benchElems}, []dad.AxisDist{dad.BlockAxis(4)})
	if err != nil {
		return nil, err
	}
	rw := &resizeWorld{
		mem:    core.NewMembership(2),
		cache:  schedule.NewCache(),
		smallT: smallT, bigT: bigT,
		done: make(chan error, 4),
	}
	for r := 0; r < 2; r++ {
		rw.smallLocals = append(rw.smallLocals, make([]float64, smallT.LocalCount(r)))
	}
	for r := 0; r < 4; r++ {
		rw.bigLocals = append(rw.bigLocals, make([]float64, bigT.LocalCount(r)))
	}
	cs := comm.NewWorld(4).Comms()
	for r := 0; r < 4; r++ {
		ch := make(chan *core.Resize, 1)
		rw.start = append(rw.start, ch)
		go func(r int, ch chan *core.Resize) {
			for rz := range ch {
				oldT, newT := rw.smallT, rw.bigT
				if rz.OldWidth() == 4 {
					oldT, newT = rw.bigT, rw.smallT
				}
				var sl, dl []float64
				if r < oldT.NumProcs() {
					if oldT == rw.smallT {
						sl = rw.smallLocals[r]
					} else {
						sl = rw.bigLocals[r]
					}
				}
				if r < newT.NumProcs() {
					if newT == rw.smallT {
						dl = rw.smallLocals[r]
					} else {
						dl = rw.bigLocals[r]
					}
				}
				opts := redist.FenceOpts{
					Membership:   rw.mem,
					Policy:       redist.FailStrict,
					PollInterval: 100 * time.Microsecond,
					Cache:        rw.cache,
				}
				_, err := redist.ReconfigureFenced(cs[r], rz, oldT, newT, redist.Layout{}, sl, dl, 0, opts)
				rw.done <- err
			}
		}(r, ch)
	}
	return rw, nil
}

// step runs one complete resize: grow 2→4 or shrink 4→2, alternating.
func (rw *resizeWorld) step() error {
	newWidth := 4
	if rw.grown {
		newWidth = 2
	}
	rz, err := rw.mem.ProposeResize(newWidth)
	if err != nil {
		return err
	}
	for r := 0; r < 4; r++ {
		rw.start[r] <- rz
	}
	var firstErr error
	for r := 0; r < 4; r++ {
		if err := <-rw.done; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		rz.Abort()
		return firstErr
	}
	// The templates alternate every step, so the cached migration plans
	// stay live across iterations: no scoped invalidation here — that
	// cost belongs to a real geometry retirement, not the steady state.
	if _, err := redist.CommitReconfigure(rz, nil); err != nil {
		return err
	}
	rw.grown = !rw.grown
	return nil
}

func (rw *resizeWorld) close() {
	for _, ch := range rw.start {
		close(ch)
	}
}

// runResizeCase measures the full resize cycle — prepare fence, planned
// migration over a cached Remap schedule, commit — reporting resize
// wall-clock (ns/op), planned-migration throughput (elems/sec) and the
// allocation count of the migration path.
func runResizeCase() (caseResult, error) {
	var runErr error
	res := testing.Benchmark(func(b *testing.B) {
		rw, err := newResizeWorld()
		if err != nil {
			runErr = err
			b.SkipNow()
		}
		defer rw.close()
		for i := 0; i < 4; i++ { // warm both directions' cached plans
			if err := rw.step(); err != nil {
				runErr = err
				b.SkipNow()
			}
		}
		b.ReportAllocs()
		b.SetBytes(int64(benchElems * 8))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := rw.step(); err != nil {
				runErr = err
				b.SkipNow()
			}
		}
	})
	if runErr != nil {
		return caseResult{}, runErr
	}
	nsPerOp := float64(res.T.Nanoseconds()) / float64(res.N)
	return caseResult{
		Name:        "Resize/float64/migration",
		Phase:       "resize",
		Elem:        "float64",
		Schedule:    "migration",
		Iterations:  res.N,
		NsPerOp:     nsPerOp,
		ElemsPerSec: float64(benchElems) * 1e9 / nsPerOp,
		MBPerSec:    float64(benchElems*8) * 1e3 / nsPerOp,
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
	}, nil
}

// runResizePost measures steady-state cached transfers on the post-resize
// geometry (the grown Block(4) cohort feeding a Cyclic(4) consumer). It
// reports Schedule "cached", so the global zero-allocs gate enforces that
// a resize leaves the steady state allocation-free.
func runResizePost() (caseResult, error) {
	src, err := dad.NewTemplate([]int{benchElems}, []dad.AxisDist{dad.BlockAxis(4)})
	if err != nil {
		return caseResult{}, err
	}
	dst, err := dad.NewTemplate([]int{benchElems}, []dad.AxisDist{dad.CyclicAxis(4)})
	if err != nil {
		return caseResult{}, err
	}
	s, err := schedule.Build(src, dst)
	if err != nil {
		return caseResult{}, err
	}
	cs := comm.NewWorld(8).Comms()
	lay := redist.Layout{SrcBase: 0, DstBase: 4}
	var srcLocals, dstLocals [][]float64
	for r := 0; r < 4; r++ {
		srcLocals = append(srcLocals, make([]float64, src.LocalCount(r)))
		dstLocals = append(dstLocals, make([]float64, dst.LocalCount(r)))
	}
	step := func() error {
		for r := 0; r < 4; r++ {
			if err := redist.ExchangeT[float64](cs[r], s, lay, srcLocals[r], nil, 0); err != nil {
				return fmt.Errorf("source rank %d: %w", r, err)
			}
		}
		for r := 0; r < 4; r++ {
			if err := redist.ExchangeT[float64](cs[4+r], s, lay, nil, dstLocals[r], 0); err != nil {
				return fmt.Errorf("destination rank %d: %w", r, err)
			}
		}
		return nil
	}
	var runErr error
	res := testing.Benchmark(func(b *testing.B) {
		if err := step(); err != nil { // warm pools and mailbox queues
			runErr = err
			b.SkipNow()
		}
		b.ReportAllocs()
		b.SetBytes(int64(benchElems * 8))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := step(); err != nil {
				runErr = err
				b.SkipNow()
			}
		}
	})
	if runErr != nil {
		return caseResult{}, runErr
	}
	nsPerOp := float64(res.T.Nanoseconds()) / float64(res.N)
	return caseResult{
		Name:        "ResizePost/float64/cached",
		Phase:       "resize",
		Elem:        "float64",
		Schedule:    "cached",
		Iterations:  res.N,
		NsPerOp:     nsPerOp,
		ElemsPerSec: float64(benchElems) * 1e9 / nsPerOp,
		MBPerSec:    float64(benchElems*8) * 1e3 / nsPerOp,
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
	}, nil
}

func main() {
	outFlag := flag.String("out", "BENCH_redist.json", "report path ('-' for stdout)")
	shortFlag := flag.Bool("short", false, "smoke run: fixed small iteration count")
	testing.Init()
	flag.Parse()
	if *shortFlag {
		// testing.Benchmark honours -test.benchtime; a fixed iteration
		// count keeps the CI smoke run fast and deterministic.
		flag.Set("test.benchtime", "30x")
	}
	obs.DisableTracing()

	type spec struct {
		elem   string
		esz    int
		cached bool
	}
	specs := []spec{
		{"float64", 8, true},
		{"float64", 8, false},
		{"float32", 4, true},
		{"float32", 4, false},
	}
	rep := report{
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		Elems:     benchElems,
	}
	for _, sp := range specs {
		var (
			res caseResult
			err error
		)
		if sp.elem == "float64" {
			res, err = runCase[float64](sp.elem, sp.esz, sp.cached)
		} else {
			res, err = runCase[float32](sp.elem, sp.esz, sp.cached)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s/%v: %v\n", sp.elem, sp.cached, err)
			os.Exit(1)
		}
		rep.Cases = append(rep.Cases, res)
		fmt.Printf("%-28s %10d iter  %12.0f ns/op  %14.0f elems/sec  %8.1f MB/s  %6d B/op  %4d allocs/op\n",
			res.Name, res.Iterations, res.NsPerOp, res.ElemsPerSec, res.MBPerSec, res.BytesPerOp, res.AllocsPerOp)
	}
	// Budgeted steady state: same world, transfers bounded to budgetBytes
	// of resident packed data per rank.
	const budgetBytes = 8 << 10
	bres, err := runBudgetCase[float64]("float64", 8, budgetBytes)
	if err != nil {
		fmt.Fprintf(os.Stderr, "budgeted: %v\n", err)
		os.Exit(1)
	}
	rep.Cases = append(rep.Cases, bres)
	fmt.Printf("%-28s %10d iter  %12.0f ns/op  %14.0f elems/sec  %8.1f MB/s  %6d B/op  %4d allocs/op\n",
		bres.Name, bres.Iterations, bres.NsPerOp, bres.ElemsPerSec, bres.MBPerSec, bres.BytesPerOp, bres.AllocsPerOp)

	for _, fast := range []bool{true, false} {
		res, err := runPlanCase(fast)
		if err != nil {
			fmt.Fprintf(os.Stderr, "plan/%v: %v\n", fast, err)
			os.Exit(1)
		}
		rep.Cases = append(rep.Cases, res)
		fmt.Printf("%-28s %10d iter  %12.0f ns/op  %14.0f elems/sec  %8s  %6d B/op  %4d allocs/op\n",
			res.Name, res.Iterations, res.NsPerOp, res.ElemsPerSec, "", res.BytesPerOp, res.AllocsPerOp)
	}

	hwUnb, hwBud, err := runHighWater(budgetBytes)
	if err != nil {
		fmt.Fprintf(os.Stderr, "highwater: %v\n", err)
		os.Exit(1)
	}
	rep.Cases = append(rep.Cases, hwUnb, hwBud)
	for _, hw := range []caseResult{hwUnb, hwBud} {
		fmt.Printf("%-28s %10d steps %12d peak packed bytes  (budget %d)\n",
			hw.Name, hw.Iterations, hw.PeakPackedBytes, hw.BudgetBytes)
	}
	// Online resize: full grow/shrink cycles (prepare fence → planned
	// migration → commit), then the cached steady state on the post-resize
	// geometry. The latter carries Schedule "cached" so the zero-alloc gate
	// below covers it: a resize must not leave allocations behind.
	rzRes, err := runResizeCase()
	if err != nil {
		fmt.Fprintf(os.Stderr, "resize: %v\n", err)
		os.Exit(1)
	}
	rep.Cases = append(rep.Cases, rzRes)
	fmt.Printf("%-28s %10d iter  %12.0f ns/op  %14.0f elems/sec  %8.1f MB/s  %6d B/op  %4d allocs/op\n",
		rzRes.Name, rzRes.Iterations, rzRes.NsPerOp, rzRes.ElemsPerSec, rzRes.MBPerSec, rzRes.BytesPerOp, rzRes.AllocsPerOp)
	postRes, err := runResizePost()
	if err != nil {
		fmt.Fprintf(os.Stderr, "resize post: %v\n", err)
		os.Exit(1)
	}
	rep.Cases = append(rep.Cases, postRes)
	fmt.Printf("%-28s %10d iter  %12.0f ns/op  %14.0f elems/sec  %8.1f MB/s  %6d B/op  %4d allocs/op\n",
		postRes.Name, postRes.Iterations, postRes.NsPerOp, postRes.ElemsPerSec, postRes.MBPerSec, postRes.BytesPerOp, postRes.AllocsPerOp)

	// WirePath: the large contiguous all-to-all transpose, legacy copying
	// vs the contiguous zero-copy fast path. The zero-copy row must pack
	// nothing (verified inside the runner) and may not be slower.
	var wpLegacy, wpZC caseResult
	if wpLegacy, err = runWirePathCase(false); err != nil {
		fmt.Fprintf(os.Stderr, "wirepath legacy: %v\n", err)
		os.Exit(1)
	}
	if wpZC, err = runWirePathCase(true); err != nil {
		fmt.Fprintf(os.Stderr, "wirepath zerocopy: %v\n", err)
		os.Exit(1)
	}
	rep.Cases = append(rep.Cases, wpLegacy, wpZC)
	for _, wp := range []caseResult{wpLegacy, wpZC} {
		fmt.Printf("%-28s %10d iter  %12.0f ns/op  %14.0f elems/sec  %8.1f MB/s  %6d B/op  %4d allocs/op\n",
			wp.Name, wp.Iterations, wp.NsPerOp, wp.ElemsPerSec, wp.MBPerSec, wp.BytesPerOp, wp.AllocsPerOp)
	}

	rep.Metrics = obs.Default().Snapshot()

	// The engine's contract: steady-state transfers over a cached schedule
	// are allocation-free. Fail loudly if a regression sneaks in.
	for _, c := range rep.Cases {
		if (c.Schedule == "cached" || c.Phase == "wirepath") && c.AllocsPerOp != 0 {
			fmt.Fprintf(os.Stderr, "REGRESSION: %s allocates %d allocs/op (want 0)\n", c.Name, c.AllocsPerOp)
			os.Exit(1)
		}
	}
	// The planner's contract: the closed-form fast path must beat the
	// patch enumerator on the pair it exists to accelerate.
	var planNs = map[string]float64{}
	for _, c := range rep.Cases {
		if c.Phase == "plan" {
			planNs[c.Schedule] = c.NsPerOp
		}
	}
	if f, e := planNs["fast"], planNs["enumerator"]; f > 0 && e > 0 && f >= e {
		fmt.Fprintf(os.Stderr, "REGRESSION: fast-path planning (%.0f ns/op) is no faster than the enumerator (%.0f ns/op)\n", f, e)
		os.Exit(1)
	}
	// The budget's contract: peak resident packed bytes stay within
	// budget per sending rank (two sources here), and well under the
	// unbudgeted baseline.
	if hwBud.PeakPackedBytes > int64(2*budgetBytes) {
		fmt.Fprintf(os.Stderr, "REGRESSION: budgeted high water %d bytes exceeds 2x budget (%d)\n",
			hwBud.PeakPackedBytes, 2*budgetBytes)
		os.Exit(1)
	}
	if hwBud.PeakPackedBytes >= hwUnb.PeakPackedBytes {
		fmt.Fprintf(os.Stderr, "REGRESSION: budgeted high water %d bytes is no lower than unbudgeted %d\n",
			hwBud.PeakPackedBytes, hwUnb.PeakPackedBytes)
		os.Exit(1)
	}
	// The wire path's contract: lending contiguous views must not be
	// slower than packing them (a small tolerance absorbs scheduler
	// noise at these millisecond step times).
	if wpZC.NsPerOp > wpLegacy.NsPerOp*1.15 {
		fmt.Fprintf(os.Stderr, "REGRESSION: zero-copy WirePath (%.0f ns/op) is slower than the legacy copy path (%.0f ns/op)\n",
			wpZC.NsPerOp, wpLegacy.NsPerOp)
		os.Exit(1)
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "report: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *outFlag == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*outFlag, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "report: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *outFlag)
}
