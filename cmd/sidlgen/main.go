// sidlgen generates typed Go client stubs and server skeletons from SIDL
// interface declarations — the offline glue-code generation of the
// SCIRun2 approach, for this library's PRMI runtime.
//
// Usage:
//
//	sidlgen [-pkg name] [-o out.go] input.sidl
//
// With no input file, SIDL is read from stdin; with no -o, Go source goes
// to stdout. Point go:generate at it:
//
//	//go:generate go run mxn/cmd/sidlgen -pkg main -o stubs_gen.go vector.sidl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mxn/internal/sidl"
	"mxn/internal/sidlgen"
)

func main() {
	pkgName := flag.String("pkg", "stubs", "package name for the generated Go source")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var src []byte
	var err error
	switch flag.NArg() {
	case 0:
		src, err = io.ReadAll(os.Stdin)
	case 1:
		src, err = os.ReadFile(flag.Arg(0))
	default:
		fmt.Fprintln(os.Stderr, "usage: sidlgen [-pkg name] [-o out.go] [input.sidl]")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sidlgen:", err)
		os.Exit(1)
	}
	pkg, err := sidl.Parse(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "sidlgen:", err)
		os.Exit(1)
	}
	code, err := sidlgen.Generate(pkg, *pkgName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sidlgen:", err)
		os.Exit(1)
	}
	if *out == "" {
		fmt.Print(code)
		return
	}
	if err := os.WriteFile(*out, []byte(code), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "sidlgen:", err)
		os.Exit(1)
	}
}
