// featurematrix regenerates Figure 4 of the paper — the table of M×N
// projects and their features — by probing the reimplemented frameworks
// at run time: every capability cell is backed by a smoke scenario that
// actually executes against the corresponding package, so the table
// reports what the code does, not what a comment claims.
//
// Run:
//
//	go run ./cmd/featurematrix
package main

import (
	"fmt"
	"strings"
	"sync"

	"mxn"
	"mxn/internal/intercomm"
	"mxn/internal/mct"

	dcafw "mxn/internal/frameworks/dca"
	scirunfw "mxn/internal/frameworks/scirun"
)

// row is one project entry: static description plus live probes.
type row struct {
	project      string
	parallelData string
	substrate    string
	prmi         func() error // nil = not offered (prints "No")
	redist       func() error // generic M≠N data redistribution
	extra        string
}

func main() {
	rows := []row{
		{
			project:      "Dist. CCA Arch. (DCA)",
			parallelData: "MPI-style chunk arrays",
			substrate:    "internal/frameworks/dca",
			prmi:         probeDCAPRMI,
			redist:       probeDCARedist,
			extra:        "barrier-delayed delivery, one-way methods",
		},
		{
			project:      "InterComm",
			parallelData: "dense arrays (DAD)",
			substrate:    "internal/intercomm",
			prmi:         nil,
			redist:       probeInterCommRedist,
			extra:        "timestamped import/export, third-party rules",
		},
		{
			project:      "Model Coupling Toolkit",
			parallelData: "multi-field vectors, seg. maps, sparse mat.",
			substrate:    "internal/mct",
			prmi:         nil,
			redist:       probeMCTRedist,
			extra:        "routers, interpolation, accumulation, merging",
		},
		{
			project:      "MxN Component",
			parallelData: "DAD descriptors",
			substrate:    "internal/core",
			prmi:         nil,
			redist:       probeMxNComponentRedist,
			extra:        "one-shot + persistent channels, dataReady",
		},
		{
			project:      "SCIRun2",
			parallelData: "SIDL parallel arrays",
			substrate:    "internal/frameworks/scirun",
			prmi:         probeSciRunPRMI,
			redist:       probeSciRunRedist,
			extra:        "IDL-driven ghost invocations, subsetting",
		},
	}

	fmt.Println("Figure 4 (regenerated): M×N projects and features, probed live")
	fmt.Println(strings.Repeat("-", 118))
	fmt.Printf("%-24s %-44s %-6s %-10s %s\n", "Project", "Parallel Data", "PRMI", "Redist.", "Notes")
	fmt.Println(strings.Repeat("-", 118))
	for _, r := range rows {
		fmt.Printf("%-24s %-44s %-6s %-10s %s\n",
			r.project, r.parallelData, probe(r.prmi), probe(r.redist), r.extra)
	}
	fmt.Println(strings.Repeat("-", 118))
	fmt.Println("PRMI = parallel remote method invocation offered and verified; Redist. = M≠N parallel data redistribution verified.")
}

// probe renders a capability cell: "No" when not offered, "Yes" when its
// scenario passed, or the error when the probe failed.
func probe(f func() error) string {
	if f == nil {
		return "No"
	}
	if err := f(); err != nil {
		return "FAIL: " + err.Error()
	}
	return "Yes"
}

// probeDCAPRMI runs a collective invocation with subset participation
// through the DCA framework.
func probeDCAPRMI() error {
	f := dcafw.New(3)
	f.AddComponent("p", []int{2}, func(rank int) dcafw.GoComponent {
		return dcafw.GoFunc(func(svc *dcafw.Services) error {
			svc.Provide("x", "m", func(r int, simple []any, chunks [][]float64) ([]any, [][]float64, error) {
				return []any{simple[0].(float64) * 2}, nil, nil
			})
			return svc.Serve()
		})
	})
	var got any
	f.AddComponent("u", []int{0, 1}, func(rank int) dcafw.GoComponent {
		return dcafw.GoFunc(func(svc *dcafw.Services) error {
			ret, _, err := svc.Call("x", "m", svc.Cohort(), []any{21.0}, nil)
			if err != nil {
				return err
			}
			if rank == 0 {
				got = ret[0]
			}
			return nil
		})
	})
	f.Connect("u", "x", "p", "x")
	if err := f.Run(); err != nil {
		return err
	}
	if got != 42.0 {
		return fmt.Errorf("wrong result %v", got)
	}
	return nil
}

// probeDCARedist moves chunked data 2→1 through a DCA call.
func probeDCARedist() error {
	f := dcafw.New(3)
	var sum float64
	f.AddComponent("p", []int{2}, func(rank int) dcafw.GoComponent {
		return dcafw.GoFunc(func(svc *dcafw.Services) error {
			svc.Provide("x", "m", func(r int, simple []any, chunks [][]float64) ([]any, [][]float64, error) {
				for _, ch := range chunks {
					for _, v := range ch {
						sum += v
					}
				}
				return nil, nil, nil
			})
			return svc.Serve()
		})
	})
	f.AddComponent("u", []int{0, 1}, func(rank int) dcafw.GoComponent {
		return dcafw.GoFunc(func(svc *dcafw.Services) error {
			_, _, err := svc.Call("x", "m", svc.Cohort(), nil, [][]float64{{float64(rank + 1)}})
			return err
		})
	})
	f.Connect("u", "x", "p", "x")
	if err := f.Run(); err != nil {
		return err
	}
	if sum != 3 {
		return fmt.Errorf("chunks lost: sum=%v", sum)
	}
	return nil
}

// probeInterCommRedist runs a timestamp-coordinated 2→3 transfer.
func probeInterCommRedist() error {
	c := intercomm.NewCoordinator()
	sim := c.AddProgram("sim")
	viz := c.AddProgram("viz")
	srcTpl, _ := mxn.NewTemplate([]int{6}, []mxn.AxisDist{mxn.BlockAxis(2)})
	dstTpl, _ := mxn.NewTemplate([]int{6}, []mxn.AxisDist{mxn.BlockAxis(3)})
	sim.DeclareArray("a", srcTpl)
	viz.DeclareArray("a", dstTpl)
	if err := c.AddRule(intercomm.Rule{
		SrcProgram: "sim", SrcArray: "a", DstProgram: "viz", DstArray: "a",
		Match: intercomm.ExactTime,
	}); err != nil {
		return err
	}
	for r := 0; r < 2; r++ {
		if err := sim.Export("a", 1, r, []float64{float64(r * 3), float64(r*3 + 1), float64(r*3 + 2)}); err != nil {
			return err
		}
	}
	for r := 0; r < 3; r++ {
		buf := make([]float64, 2)
		if _, err := viz.Import("a", 1, r, buf); err != nil {
			return err
		}
		if buf[0] != float64(r*2) {
			return fmt.Errorf("rank %d got %v", r, buf)
		}
	}
	return nil
}

// probeMCTRedist routes a 2-field vector between differently decomposed
// models.
func probeMCTRedist() error {
	src := mct.BlockMap(8, 2)
	dst := mct.BlockMap(8, 2)
	router, err := mct.NewRouter(src, dst)
	if err != nil {
		return err
	}
	var fail error
	var mu sync.Mutex
	mxn.Run(4, func(c *mxn.Comm) {
		if c.Rank() < 2 {
			av := mct.MustAttrVect([]string{"t", "q"}, 4)
			for i := range av.Field("t") {
				av.Field("t")[i] = float64(c.Rank()*4 + i)
			}
			if err := router.Send(c, 2, c.Rank(), av, 0); err != nil {
				mu.Lock()
				fail = err
				mu.Unlock()
			}
		} else {
			av := mct.MustAttrVect([]string{"t", "q"}, 4)
			if err := router.Recv(c, 0, c.Rank()-2, av, 0); err != nil {
				mu.Lock()
				fail = err
				mu.Unlock()
			}
		}
	})
	return fail
}

// probeMxNComponentRedist negotiates a connection between paired hubs and
// performs a matched dataReady transfer.
func probeMxNComponentRedist() error {
	ba, bb := mxn.BridgePair()
	a := mxn.NewHub("A", 1, ba)
	b := mxn.NewHub("B", 2, bb)
	ta, _ := mxn.NewTemplate([]int{4}, []mxn.AxisDist{mxn.BlockAxis(1)})
	tb, _ := mxn.NewTemplate([]int{4}, []mxn.AxisDist{mxn.BlockAxis(2)})
	da, _ := mxn.NewDescriptor("f", mxn.Float64, mxn.ReadOnly, ta)
	db, _ := mxn.NewDescriptor("f", mxn.Float64, mxn.WriteOnly, tb)
	a.Register(da)
	b.Register(db)
	srcConn, dstConn, err := mxn.ConnectHubs("probe", a, "f", b, "f", mxn.ConnOpts{})
	if err != nil {
		return err
	}
	if _, err := srcConn.DataReady(0, []float64{1, 2, 3, 4}); err != nil {
		return err
	}
	for r := 0; r < 2; r++ {
		buf := make([]float64, 2)
		if _, err := dstConn.DataReady(r, buf); err != nil {
			return err
		}
		if buf[0] != float64(r*2+1) {
			return fmt.Errorf("rank %d got %v", r, buf)
		}
	}
	return nil
}

// probeSciRunPRMI runs a collective invocation with a redistributed
// parallel argument through the SCIRun2-style framework.
func probeSciRunPRMI() error {
	f := scirunfw.New(3)
	if err := f.DefineInterfaces(`package p; interface I { collective double sum(in parallel array<double> x); }`); err != nil {
		return err
	}
	calleeTpl, _ := mxn.NewTemplate([]int{4}, []mxn.AxisDist{mxn.BlockAxis(1)})
	callerTpl, _ := mxn.NewTemplate([]int{4}, []mxn.AxisDist{mxn.BlockAxis(2)})
	f.AddComponent("u", []int{0, 1}, func(svc *scirunfw.Services) error {
		port, err := svc.GetPort("calc")
		if err != nil {
			return err
		}
		local := make([]float64, 2)
		for i := range local {
			local[i] = float64(svc.Rank()*2 + i + 1)
		}
		res, err := port.CallCollective("sum", mxn.FullParticipation(svc.Cohort()),
			mxn.Parallel("x", callerTpl, local))
		if err != nil {
			return err
		}
		if res.Return != 10.0 {
			return fmt.Errorf("sum = %v", res.Return)
		}
		return nil
	})
	f.AddComponent("p", []int{2}, func(svc *scirunfw.Services) error {
		ep, err := svc.ProvidesPort("svc")
		if err != nil {
			return err
		}
		ep.Handle("sum", func(in *mxn.Incoming, out *mxn.Outgoing) error {
			s := 0.0
			for _, v := range in.Parallel["x"] {
				s += v
			}
			out.Return = s
			return nil
		})
		return ep.Serve()
	})
	f.AddUsesPort("u", "calc", "I")
	f.AddProvidesPort("p", "svc", "I")
	f.Connect("u", "calc", "p", "svc")
	f.SetArgLayout("p", "svc", "sum", "x", calleeTpl)
	return f.Run()
}

// probeSciRunRedist is the same scenario viewed as a redistribution check
// (M=2 cyclic → N=1): the parallel argument must arrive assembled.
func probeSciRunRedist() error { return probeSciRunPRMI() }
