// mxnviz is the CUMULVS-style visualization front end: it runs a
// distributed heat-equation simulation, attaches a viewer over the M×N
// middleware, and renders decimated frames of the live temperature field
// as ASCII animation frames (or a final PGM image on stdout with -pgm).
//
// The middleware path is the point: the viewer sees the field through a
// persistent parallel data channel with free-running synchronization and
// a region-of-interest/stride view — the simulation never waits for the
// renderer.
//
// Run:
//
//	go run ./cmd/mxnviz -n 96 -ranks 6 -steps 600 -stride 6 -frames 4
//	go run ./cmd/mxnviz -pgm > heat.pgm
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"sync"

	"mxn"
	"mxn/internal/cumulvs"
	"mxn/internal/meshsim"
)

func main() {
	n := flag.Int("n", 96, "grid size (n×n)")
	ranks := flag.Int("ranks", 6, "simulation cohort width")
	steps := flag.Int("steps", 600, "time steps")
	stride := flag.Int("stride", 6, "view decimation stride")
	frames := flag.Int("frames", 4, "ASCII frames to render")
	alpha := flag.Float64("alpha", 0.2, "diffusivity")
	pgm := flag.Bool("pgm", false, "write the final frame as PGM to stdout instead of ASCII")
	flag.Parse()

	solver, err := meshsim.NewHeat2D(*n, *ranks)
	if err != nil {
		log.Fatal(err)
	}
	simSide, viewSide := mxn.BridgePair()
	sim := cumulvs.NewSim(*ranks, simSide)
	desc, err := mxn.NewDescriptor("temperature", mxn.Float64, mxn.ReadOnly, solver.Template())
	if err != nil {
		log.Fatal(err)
	}
	if err := sim.RegisterField(desc); err != nil {
		log.Fatal(err)
	}

	go func() {
		for {
			cont, err := sim.Service(1)
			if err != nil || !cont {
				return
			}
		}
	}()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		view(viewSide, *stride, *frames, *steps, *pgm)
	}()

	mxn.Run(*ranks, func(c *mxn.Comm) {
		u := solver.Init(c.Rank())
		for s := 0; s < *steps; s++ {
			u = solver.Step(c, c.Rank(), u, *alpha, 0)
			if err := sim.PostFrame("temperature", c.Rank(), u); err != nil {
				log.Fatal(err)
			}
		}
		if err := sim.CloseFrames("temperature", c.Rank()); err != nil {
			log.Fatal(err)
		}
	})
	wg.Wait()
}

func view(bridge mxn.Bridge, stride, frames, steps int, pgm bool) {
	viewer := cumulvs.NewViewer(bridge)
	ch, err := viewer.OpenView("viz", cumulvs.View{
		Field:  "temperature",
		Stride: []int{stride, stride},
		Sync:   cumulvs.Latest,
	})
	if err != nil {
		log.Fatal(err)
	}
	dims := ch.Dims()
	frame := make([]float64, ch.FrameLen())
	last := make([]float64, len(frame))
	var lastEpoch uint64
	next := uint64(0)
	for {
		epoch, err := ch.NextFrame(frame)
		if errors.Is(err, cumulvs.ErrStreamEnded) {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		copy(last, frame)
		lastEpoch = epoch
		if !pgm && epoch >= next {
			fmt.Printf("-- epoch %d --\n%s", epoch, ascii(frame, dims))
			next += uint64(steps / frames)
		}
	}
	if pgm {
		writePGM(os.Stdout, last, dims)
	} else {
		fmt.Printf("-- final epoch %d --\n%s", lastEpoch, ascii(last, dims))
	}
	viewer.Stop()
}

func ascii(frame []float64, dims []int) string {
	shades := " .:-=+*#%@"
	maxV := 0.0
	for _, v := range frame {
		if v > maxV {
			maxV = v
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	var b strings.Builder
	for i := 0; i < dims[0]; i++ {
		for j := 0; j < dims[1]; j++ {
			k := int(frame[i*dims[1]+j] / maxV * float64(len(shades)-1))
			if k >= len(shades) {
				k = len(shades) - 1
			}
			if k < 0 {
				k = 0
			}
			b.WriteByte(shades[k])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func writePGM(w *os.File, frame []float64, dims []int) {
	maxV := 0.0
	for _, v := range frame {
		if v > maxV {
			maxV = v
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	fmt.Fprintf(w, "P2\n%d %d\n255\n", dims[1], dims[0])
	for i := 0; i < dims[0]; i++ {
		for j := 0; j < dims[1]; j++ {
			fmt.Fprintf(w, "%d ", int(frame[i*dims[1]+j]/maxV*255))
		}
		fmt.Fprintln(w)
	}
}
