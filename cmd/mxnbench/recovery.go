package main

import (
	"fmt"
	"sync"
	"time"

	"mxn"
	"mxn/internal/comm"
	"mxn/internal/core"
	"mxn/internal/redist"
	"mxn/internal/schedule"
)

// runR1 demonstrates crash-rank recovery: an 8-rank block→cyclic
// redistribution loses one source mid-transfer. Heartbeats detect the
// death, the survivors re-plan under FailRedistribute and complete, and
// the destination validity bitmaps record exactly which elements the dead
// rank took with it.
func runR1() error {
	const (
		nSrc, nDst = 4, 4
		nElems     = 4096
		victim     = 1 // source rank 1 == group rank 1
	)
	src, err := mxn.NewTemplate([]int{nElems}, []mxn.AxisDist{mxn.BlockAxis(nSrc)})
	if err != nil {
		return err
	}
	dst, err := mxn.NewTemplate([]int{nElems}, []mxn.AxisDist{mxn.CyclicAxis(nDst)})
	if err != nil {
		return err
	}
	s, err := schedule.Build(src, dst)
	if err != nil {
		return err
	}
	cache := schedule.NewCache()
	if _, err := cache.Get(src, dst); err != nil {
		return err
	}

	srcLocals := make([][]float64, nSrc)
	for r := 0; r < nSrc; r++ {
		srcLocals[r] = make([]float64, src.LocalCount(r))
		for i := range srcLocals[r] {
			srcLocals[r][i] = float64(r)
		}
	}

	n := nSrc + nDst
	w := mxn.NewWorld(n)
	cs := w.Comms()
	mem := core.NewMembership(n)
	cfg := core.HeartbeatConfig{Interval: 10 * time.Millisecond, MissThreshold: 8}
	peers := make([]int, n)
	for i := range peers {
		peers[i] = i
	}

	outs := make([]*redist.Outcome, nDst)
	durs := make([]time.Duration, nDst)
	var firstErr error
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(n)
	start := time.Now()
	for r := 0; r < n; r++ {
		go func(r int, c *comm.Comm) {
			defer wg.Done()
			hb, hbErr := core.StartHeartbeats(c, mem, cfg, peers)
			if hbErr != nil {
				panic(hbErr)
			}
			defer hb.Stop()
			if r == victim {
				time.Sleep(3 * cfg.Interval)
				w.Kill(victim)
				return
			}
			fo := redist.FenceOpts{
				Membership:   mem,
				Policy:       redist.FailRedistribute,
				PollInterval: 2 * time.Millisecond,
				Cache:        cache,
			}
			lay := redist.Layout{SrcBase: 0, DstBase: nSrc}
			var sl, dl []float64
			if r < nSrc {
				sl = srcLocals[r]
			} else {
				dl = make([]float64, dst.LocalCount(r-nSrc))
			}
			out, xerr := redist.ExchangeFenced(c, s, lay, sl, dl, 0, fo)
			mu.Lock()
			if xerr != nil && firstErr == nil {
				firstErr = fmt.Errorf("rank %d: %w", r, xerr)
			}
			if dl != nil {
				outs[r-nSrc] = out
				durs[r-nSrc] = time.Since(start)
			}
			mu.Unlock()
			// Survivors synchronize; the barrier names the dead rank.
			c.BarrierTimeout(300 * time.Millisecond)
		}(r, cs[r])
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}

	fmt.Printf("source rank %d crashed mid-transfer; membership epoch %d, down=%v\n",
		victim, mem.Epoch(), mem.Down())
	t := &table{header: []string{"dst rank", "elems", "valid", "lost", "down seen", "epoch", "completed"}}
	for j := 0; j < nDst; j++ {
		out := outs[j]
		if out == nil || out.Validity == nil {
			return fmt.Errorf("dst rank %d reported no outcome", j)
		}
		t.add(
			fmt.Sprintf("%d", j),
			fmt.Sprintf("%d", out.Validity.Len()),
			fmt.Sprintf("%d", out.Validity.CountValid()),
			fmt.Sprintf("%d", out.Validity.CountInvalid()),
			fmt.Sprintf("%v", out.Down),
			fmt.Sprintf("%d", out.Epoch),
			durs[j].Round(time.Millisecond).String(),
		)
		if out.Replanned == nil {
			return fmt.Errorf("dst rank %d completed without a re-plan", j)
		}
	}
	t.print()

	// Cross-check: the bitmap losses must sum to exactly the victim's share.
	lost := 0
	for j := 0; j < nDst; j++ {
		lost += outs[j].Validity.CountInvalid()
	}
	want := src.LocalCount(victim)
	fmt.Printf("lost elements: %d (dead rank owned %d); schedule cache entry invalidated: %v\n",
		lost, want, !cache.Invalidate(src, dst))
	if lost != want {
		return fmt.Errorf("validity bitmaps record %d lost elements, dead rank owned %d", lost, want)
	}
	return nil
}
