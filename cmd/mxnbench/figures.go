package main

import (
	"context"
	"errors"
	"fmt"
	"runtime/pprof"
	"sync"
	"time"

	"mxn"
	"mxn/internal/prmi"
)

// withConnLabel runs fn under a runtime/pprof "conn" label so profiles
// attribute a transfer's samples to the connection that carried it.
func withConnLabel(connID string, fn func() error) error {
	var err error
	pprof.Do(context.Background(), pprof.Labels("conn", connID), func(context.Context) {
		err = fn()
	})
	return err
}

// runE1 reproduces Figure 1: a 60³ field moves from M=8 (2×2×2 blocks) to
// N=27 (3×3×3 blocks) with live cohorts, reporting the communication
// pattern and verifying the element bijection.
func runE1() error {
	const m, n = 8, 27
	src, err := mxn.NewTemplate([]int{60, 60, 60},
		[]mxn.AxisDist{mxn.BlockAxis(2), mxn.BlockAxis(2), mxn.BlockAxis(2)})
	if err != nil {
		return err
	}
	dst, err := mxn.NewTemplate([]int{60, 60, 60},
		[]mxn.AxisDist{mxn.BlockAxis(3), mxn.BlockAxis(3), mxn.BlockAxis(3)})
	if err != nil {
		return err
	}
	buildStart := time.Now()
	sched, err := mxn.BuildSchedule(src, dst)
	if err != nil {
		return err
	}
	buildTime := time.Since(buildStart)

	srcLocals := make([][]float64, m)
	for r := range srcLocals {
		srcLocals[r] = make([]float64, src.LocalCount(r))
		fill3D(src, r, srcLocals[r])
	}
	dstLocals := make([][]float64, n)
	var mu sync.Mutex
	xferStart := time.Now()
	mxn.Run(m+n, func(c *mxn.Comm) {
		lay := mxn.Layout{SrcBase: 0, DstBase: m}
		var sl, dl []float64
		if c.Rank() < m {
			sl = srcLocals[c.Rank()]
		} else {
			dl = make([]float64, dst.LocalCount(c.Rank()-m))
		}
		if err := mxn.Exchange(c, sched, lay, sl, dl, 0); err != nil {
			panic(err)
		}
		if dl != nil {
			mu.Lock()
			dstLocals[c.Rank()-m] = dl
			mu.Unlock()
		}
	})
	xferTime := time.Since(xferStart)

	bad := 0
	forAll3D(60, func(i, j, k int) {
		idx := []int{i, j, k}
		r := dst.OwnerOf(idx)
		if dstLocals[r][dst.LocalOffset(r, idx)] != fp3(i, j, k) {
			bad++
		}
	})
	t := &table{header: []string{"metric", "value"}}
	t.add("global elements", fmt.Sprintf("%d (60³ float64, %.1f MB)", sched.TotalElems(), float64(sched.TotalElems())*8/1e6))
	t.add("pairwise messages", fmt.Sprintf("%d (of %d possible pairs)", sched.NumMessages(), m*n))
	t.add("schedule build", buildTime.Round(time.Microsecond).String())
	t.add("parallel transfer", xferTime.Round(time.Microsecond).String())
	t.add("elements verified", fmt.Sprintf("%d bad of %d", bad, sched.TotalElems()))
	t.print()
	if bad != 0 {
		return fmt.Errorf("%d elements corrupted", bad)
	}
	return nil
}

func fp3(i, j, k int) float64 { return float64(i)*1e6 + float64(j)*1e3 + float64(k) }

func fill3D(t *mxn.Template, rank int, local []float64) {
	forAll3D(t.Dims()[0], func(i, j, k int) {
		idx := []int{i, j, k}
		if t.OwnerOf(idx) == rank {
			local[t.LocalOffset(rank, idx)] = fp3(i, j, k)
		}
	})
}

func forAll3D(n int, fn func(i, j, k int)) {
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				fn(i, j, k)
			}
		}
	}
}

// runE2 contrasts the paper's Figure 2 framework types by measuring the
// cost of the same port invocation in each: a direct-connected framework
// (library call), a distributed framework co-located in one process
// (PRMI over the in-process link), and a distributed framework over TCP
// loopback (PRMI over sockets).
func runE2() error {
	const calls = 2000
	direct := measureDirectCall(calls)
	inproc, err := measurePRMI(calls, false)
	if err != nil {
		return err
	}
	tcp, err := measurePRMI(calls, true)
	if err != nil {
		return err
	}
	t := &table{header: []string{"framework type", "port invocation", "per call", "vs direct"}}
	t.add("direct-connected", "library call (Figure 2 left)", direct.String(), "1×")
	t.add("distributed, co-located", "PRMI over in-process link", inproc.String(), ratio(inproc, direct))
	t.add("distributed, TCP loopback", "PRMI over sockets (Figure 2 right)", tcp.String(), ratio(tcp, direct))
	t.print()
	fmt.Println("shape check: library call ≪ in-process RMI < socket RMI, as the paper's framework taxonomy implies.")
	return nil
}

func ratio(a, b time.Duration) string {
	if b == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.0f×", float64(a)/float64(b))
}

// directPort is the provider object of the direct-call measurement.
type directPort struct{ acc float64 }

func (p *directPort) Square(x float64) float64 {
	p.acc += x
	return x * x
}

func measureDirectCall(calls int) time.Duration {
	p := &directPort{}
	var port interface{ Square(float64) float64 } = p // through the port interface
	start := time.Now()
	for i := 0; i < calls; i++ {
		_ = port.Square(float64(i))
	}
	return time.Since(start) / time.Duration(calls)
}

func measurePRMI(calls int, overTCP bool) (time.Duration, error) {
	pkg, err := mxn.ParseSIDL(`package p; interface I { independent double square(in double x); }`)
	if err != nil {
		return 0, err
	}
	iface, _ := pkg.Interface("I")

	var callerLink, calleeLink mxn.Link
	if overTCP {
		l, err := mxn.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return 0, err
		}
		defer l.Close()
		type acc struct {
			conn mxn.Conn
			err  error
		}
		ch := make(chan acc, 1)
		go func() {
			c, err := l.Accept()
			ch <- acc{c, err}
		}()
		cli, err := mxn.Dial("tcp", l.Addr())
		if err != nil {
			return 0, err
		}
		srv := <-ch
		if srv.err != nil {
			return 0, srv.err
		}
		callerLink = mxn.NewConnLink([]mxn.Conn{cli}, 0)
		calleeLink = mxn.NewConnLink([]mxn.Conn{srv.conn}, 0)
	} else {
		w := mxn.NewWorld(2)
		cs := w.Comms()
		callerLink = mxn.NewCommLink(cs[0], 1, 0)
		calleeLink = mxn.NewCommLink(cs[1], 0, 0)
	}

	done := make(chan error, 1)
	go func() {
		ep := mxn.NewEndpoint(iface, calleeLink, 0, 1, 1)
		ep.Handle("square", func(in *mxn.Incoming, out *mxn.Outgoing) error {
			x := in.Simple["x"].(float64)
			out.Return = x * x
			return nil
		})
		done <- ep.Serve()
	}()
	port := mxn.NewCallerPort(iface, callerLink, 0, 1, mxn.Eager)
	connID := "e2-inproc"
	if overTCP {
		connID = "e2-tcp"
	}
	start := time.Now()
	if err := withConnLabel(connID, func() error {
		for i := 0; i < calls; i++ {
			if _, err := port.CallIndependent(0, "square", mxn.Simple("x", float64(i))); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return 0, err
	}
	per := time.Since(start) / time.Duration(calls)
	if err := port.Close(); err != nil {
		return 0, err
	}
	if err := <-done; err != nil {
		return 0, err
	}
	return per, nil
}

// runE3 reproduces Figure 3: two direct-connected framework instances,
// each with its own cohort, coupled by paired M×N components over an
// out-of-band bridge — in-memory and over TCP — with one-shot and
// persistent transfers.
func runE3() error {
	t := &table{header: []string{"bridge", "mode", "frames", "elements/frame", "throughput"}}
	for _, cfg := range []struct {
		name string
		tcp  bool
	}{{"in-memory (co-located)", false}, {"TCP loopback", true}} {
		oneShot, err := runE3Bridge(cfg.tcp, 1)
		if err != nil {
			return err
		}
		persistent, err := runE3Bridge(cfg.tcp, 200)
		if err != nil {
			return err
		}
		t.add(cfg.name, "one-shot", "1", fmt.Sprint(e3Elems), oneShot)
		t.add(cfg.name, "persistent (each-frame)", "200", fmt.Sprint(e3Elems), persistent)
	}
	t.print()
	fmt.Println("the persistent channel amortizes negotiation: per-frame cost drops well below the one-shot cost.")
	return nil
}

const e3Elems = 64 * 64

func runE3Bridge(overTCP bool, frames int) (string, error) {
	var ba, bb mxn.Bridge
	if overTCP {
		l, err := mxn.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return "", err
		}
		defer l.Close()
		type acc struct {
			conn mxn.Conn
			err  error
		}
		ch := make(chan acc, 1)
		go func() {
			c, err := l.Accept()
			ch <- acc{c, err}
		}()
		cli, err := mxn.Dial("tcp", l.Addr())
		if err != nil {
			return "", err
		}
		srv := <-ch
		if srv.err != nil {
			return "", srv.err
		}
		ba = mxn.NewNetBridge(cli)
		bb = mxn.NewNetBridge(srv.conn)
	} else {
		ba, bb = mxn.BridgePair()
	}
	const m, n = 4, 2
	srcT, _ := mxn.NewTemplate([]int{64, 64}, []mxn.AxisDist{mxn.BlockAxis(m), mxn.CollapsedAxis()})
	dstT, _ := mxn.NewTemplate([]int{64, 64}, []mxn.AxisDist{mxn.CollapsedAxis(), mxn.BlockAxis(n)})
	srcD, _ := mxn.NewDescriptor("field", mxn.Float64, mxn.ReadOnly, srcT)
	dstD, _ := mxn.NewDescriptor("field", mxn.Float64, mxn.WriteOnly, dstT)
	hubA := mxn.NewHub("A", m, ba)
	hubB := mxn.NewHub("B", n, bb)
	if err := hubA.Register(srcD); err != nil {
		return "", err
	}
	if err := hubB.Register(dstD); err != nil {
		return "", err
	}
	opts := mxn.ConnOpts{Persistent: frames > 1, Sync: mxn.SyncEachFrame}
	var dstConn *mxn.Connection
	accDone := make(chan error, 1)
	go func() {
		var err error
		dstConn, err = hubB.Accept()
		accDone <- err
	}()
	srcConn, err := hubA.Propose("e3", "field", "field", mxn.AsSource, opts)
	if err != nil {
		return "", err
	}
	if err := <-accDone; err != nil {
		return "", err
	}

	connID := "e3-mem"
	if overTCP {
		connID = "e3-tcp"
	}
	start := time.Now()
	// The transfer goroutines are spawned under the conn label and
	// inherit it, so profiles split DataReady time per bridge kind.
	if err := withConnLabel(connID, func() error {
		var wg sync.WaitGroup
		var failMu sync.Mutex
		var fail error
		for r := 0; r < m; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				local := make([]float64, srcT.LocalCount(r))
				for f := 0; f < frames; f++ {
					local[0] = float64(f)
					if _, err := srcConn.DataReady(r, local); err != nil {
						failMu.Lock()
						fail = err
						failMu.Unlock()
						return
					}
				}
			}(r)
		}
		for r := 0; r < n; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				buf := make([]float64, dstT.LocalCount(r))
				for f := 0; f < frames; f++ {
					if _, err := dstConn.DataReady(r, buf); err != nil {
						failMu.Lock()
						fail = err
						failMu.Unlock()
						return
					}
				}
			}(r)
		}
		wg.Wait()
		return fail
	}); err != nil {
		return "", err
	}
	elapsed := time.Since(start)
	bytes := float64(e3Elems*8*frames) / 1e6
	return fmt.Sprintf("%.1f MB/s (%s/frame)", bytes/elapsed.Seconds(),
		(elapsed / time.Duration(frames)).Round(time.Microsecond)), nil
}

// runE5 reproduces Figure 5: consecutive collective calls from different
// but intersecting participant sets, under the three policies.
func runE5() error {
	outcomes := []struct {
		policy  string
		mode    prmi.DeliveryMode
		strict  bool
		expect  string
		observe string
	}{
		{"eager delivery, faithful matching", prmi.Eager, false, "deadlock (paper's Figure 5)", ""},
		{"eager delivery, strict matching", prmi.Eager, true, "order violation detected", ""},
		{"barrier-delayed delivery (DCA rule)", prmi.BarrierDelayed, false, "completes", ""},
	}
	for i := range outcomes {
		serveErr, callOK := runFigure5Scenario(outcomes[i].mode, outcomes[i].strict)
		switch {
		case errors.Is(serveErr, prmi.ErrStalled):
			outcomes[i].observe = "callee stalled waiting for participants (deadlock, surfaced by watchdog)"
		case isOrderViolation(serveErr):
			outcomes[i].observe = "callee detected inconsistent delivery: " + serveErr.Error()
		case serveErr == nil && callOK:
			outcomes[i].observe = "both calls delivered and completed"
		default:
			outcomes[i].observe = fmt.Sprintf("unexpected: serveErr=%v callOK=%v", serveErr, callOK)
		}
	}
	t := &table{header: []string{"delivery policy", "expected", "observed"}}
	for _, o := range outcomes {
		t.add(o.policy, o.expect, o.observe)
	}
	t.print()
	return nil
}

func isOrderViolation(err error) bool {
	var ov *prmi.OrderViolationError
	return errors.As(err, &ov)
}

// runFigure5Scenario builds the exact Figure 5 pattern: proc 0 calls
// method A with participants {0,1,2}; procs 1,2 first call B with {1,2},
// then join A.
func runFigure5Scenario(mode prmi.DeliveryMode, strict bool) (serveErr error, callsOK bool) {
	pkg, _ := mxn.ParseSIDL(`package p; interface I { collective double f(in double x); }`)
	iface, _ := pkg.Interface("I")
	w := mxn.NewWorld(4)
	all := w.Comms()
	full := w.Group([]int{0, 1, 2})
	sub := w.Group([]int{1, 2})
	started := make(chan struct{})
	var serveWG, callWG sync.WaitGroup
	okCh := make(chan bool, 3)
	serveWG.Add(1)
	go func() {
		defer serveWG.Done()
		ep := prmi.NewEndpoint(iface, prmi.NewCommLink(all[3], 0, 0), 0, 1, 3)
		ep.StallTimeout = 300 * time.Millisecond
		ep.StrictMatching = strict
		ep.Handle("f", func(in *prmi.Incoming, out *prmi.Outgoing) error {
			out.Return = 0.0
			return nil
		})
		serveErr = ep.Serve()
	}()
	for i := 0; i < 3; i++ {
		callWG.Add(1)
		go func(i int) {
			defer callWG.Done()
			p := prmi.NewCallerPort(iface, prmi.NewCommLink(all[i], 3, 0), i, 1, mode)
			partA := prmi.Participation{Ranks: []int{0, 1, 2}, Group: full[i]}
			if i == 0 {
				close(started)
				_, err := p.CallCollective("f", partA, prmi.Simple("x", 1.0))
				okCh <- err == nil
			} else {
				<-started
				time.Sleep(30 * time.Millisecond)
				partB := prmi.Participation{Ranks: []int{1, 2}, Group: sub[i-1]}
				if _, err := p.CallCollective("f", partB, prmi.Simple("x", 2.0)); err != nil {
					okCh <- false
					p.Close()
					return
				}
				_, err := p.CallCollective("f", partA, prmi.Simple("x", 1.0))
				okCh <- err == nil
			}
			p.Close()
		}(i)
	}
	serveWG.Wait()
	done := make(chan struct{})
	go func() {
		callWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		callsOK = true
		for len(okCh) > 0 {
			if !<-okCh {
				callsOK = false
			}
		}
	case <-time.After(2 * time.Second):
		callsOK = false // blocked callers: the deadlock case
	}
	return serveErr, callsOK
}
