package main

import (
	"fmt"
	"sync"
	"time"

	"mxn"
	"mxn/internal/dad"
	"mxn/internal/dapkg"
	"mxn/internal/intercomm"
	"mxn/internal/linear"
	"mxn/internal/mct"
	"mxn/internal/meshsim"
	"mxn/internal/pipeline"
	"mxn/internal/prmi"
	"mxn/internal/redist"
	"mxn/internal/schedule"
)

// timed measures fn averaged over iters runs.
func timed(iters int, fn func()) time.Duration {
	start := time.Now()
	for i := 0; i < iters; i++ {
		fn()
	}
	return time.Since(start) / time.Duration(iters)
}

// runB1: schedule build cost as M and N grow, block↔block (aligned
// boundaries, few messages) vs block↔cyclic (worst-case fragmentation).
func runB1() error {
	const n = 1 << 16
	t := &table{header: []string{"M", "N", "pair", "messages", "runs", "build time"}}
	for _, mn := range [][2]int{{2, 2}, {4, 8}, {8, 16}, {16, 32}, {32, 64}} {
		m, nn := mn[0], mn[1]
		for _, pair := range []struct {
			name     string
			src, dst dad.AxisDist
		}{
			{"block→block", dad.BlockAxis(m), dad.BlockAxis(nn)},
			{"block→cyclic", dad.BlockAxis(m), dad.CyclicAxis(nn)},
		} {
			src, err := dad.NewTemplate([]int{n}, []dad.AxisDist{pair.src})
			if err != nil {
				return err
			}
			dst, err := dad.NewTemplate([]int{n}, []dad.AxisDist{pair.dst})
			if err != nil {
				return err
			}
			var s *schedule.Schedule
			d := timed(3, func() {
				s, err = schedule.Build(src, dst)
			})
			if err != nil {
				return err
			}
			runs := 0
			for _, p := range s.Pairs {
				runs += len(p.Runs)
			}
			t.add(fmt.Sprint(m), fmt.Sprint(nn), pair.name,
				fmt.Sprint(s.NumMessages()), fmt.Sprint(runs), d.Round(time.Microsecond).String())
		}
	}
	t.print()
	fmt.Println("shape check: block→cyclic produces ~element-granular runs, so build cost grows with fragmentation;")
	fmt.Println("creation is per-pair and never serialized through a coordinator.")
	return nil
}

// runB2: the paper's schedule-reuse claim — the first transfer pays the
// build, subsequent transfers (and other conforming arrays) reuse it.
func runB2() error {
	const n = 1 << 18
	src, _ := dad.NewTemplate([]int{n}, []dad.AxisDist{dad.BlockAxis(8)})
	dst, _ := dad.NewTemplate([]int{n}, []dad.AxisDist{dad.BlockCyclicAxis(8, 64)})
	cache := schedule.NewCache()

	srcLocals := make([][]float64, 8)
	dstLocals := make([][]float64, 8)
	for r := 0; r < 8; r++ {
		srcLocals[r] = make([]float64, src.LocalCount(r))
		dstLocals[r] = make([]float64, dst.LocalCount(r))
	}

	first := timed(1, func() {
		s, _ := cache.Get(src, dst)
		redist.ExecuteLocal(s, srcLocals, dstLocals)
	})
	steady := timed(20, func() {
		s, _ := cache.Get(src, dst)
		redist.ExecuteLocal(s, srcLocals, dstLocals)
	})
	// A different array conforming to the same templates also hits.
	other := make([][]float64, 8)
	for r := range other {
		other[r] = make([]float64, src.LocalCount(r))
	}
	conforming := timed(20, func() {
		s, _ := cache.Get(src, dst)
		redist.ExecuteLocal(s, other, dstLocals)
	})
	hits, misses := cache.Stats()

	t := &table{header: []string{"transfer", "per transfer", "note"}}
	t.add("first (build + move)", first.Round(time.Microsecond).String(), "pays schedule construction")
	t.add("steady state (cached)", steady.Round(time.Microsecond).String(), "pure pack/move/unpack")
	t.add("different conforming array", conforming.Round(time.Microsecond).String(), "same schedule reused across arrays")
	t.add("cache stats", fmt.Sprintf("%d hits / %d misses", hits, misses), "one build total")
	t.print()
	return nil
}

// runB3: descriptor generality — the cost of building and executing
// schedules across the DAD's distribution kinds, for the same index
// space and rank counts.
func runB3() error {
	const n = 1 << 15
	const np = 8
	genSizes := make([]int, np)
	left := n
	for i := 0; i < np-1; i++ {
		genSizes[i] = n / np / 2 * (1 + i%3)
		left -= genSizes[i]
	}
	genSizes[np-1] = left
	owners := make([]int, n)
	for i := range owners {
		owners[i] = (i / 37) % np
	}
	patches := make([]dad.Patch, np)
	for r := 0; r < np; r++ {
		patches[r] = dad.NewPatch([]int{r * n / np}, []int{(r + 1) * n / np}, r)
	}
	explicitT, err := dad.NewExplicitTemplate([]int{n}, np, patches)
	if err != nil {
		return err
	}
	dst, _ := dad.NewTemplate([]int{n}, []dad.AxisDist{dad.BlockAxis(np)})

	kinds := []struct {
		name string
		tpl  *dad.Template
	}{
		{"block", mustTpl(n, dad.BlockAxis(np))},
		{"cyclic", mustTpl(n, dad.CyclicAxis(np))},
		{"block-cyclic(64)", mustTpl(n, dad.BlockCyclicAxis(np, 64))},
		{"generalized block", mustTpl(n, dad.GenBlockAxis(genSizes))},
		{"implicit (per-index)", mustTpl(n, dad.ImplicitAxis(np, owners))},
		{"explicit patches", explicitT},
	}
	t := &table{header: []string{"source distribution", "descriptor bytes", "build", "messages", "transfer"}}
	for _, k := range kinds {
		var s *schedule.Schedule
		build := timed(3, func() { s, err = schedule.Build(k.tpl, dst) })
		if err != nil {
			return err
		}
		srcLocals := make([][]float64, np)
		dstLocals := make([][]float64, np)
		for r := 0; r < np; r++ {
			srcLocals[r] = make([]float64, k.tpl.LocalCount(r))
			dstLocals[r] = make([]float64, dst.LocalCount(r))
		}
		xfer := timed(10, func() { redist.ExecuteLocal(s, srcLocals, dstLocals) })
		t.add(k.name, fmt.Sprint(intercomm.DescriptorFootprint(k.tpl)),
			build.Round(time.Microsecond).String(), fmt.Sprint(s.NumMessages()),
			xfer.Round(time.Microsecond).String())
	}
	t.print()
	fmt.Println("shape check: compact structured descriptors (block family) cost least; the structureless")
	fmt.Println("implicit/explicit forms buy full generality with bigger descriptors and costlier planning —")
	fmt.Println("the paper's case for using the most compact descriptor appropriate to a distribution.")
	return nil
}

func mustTpl(n int, ax dad.AxisDist) *dad.Template {
	t, err := dad.NewTemplate([]int{n}, []dad.AxisDist{ax})
	if err != nil {
		panic(err)
	}
	return t
}

// runB4: linearization with receiver-driven requests (no schedule) versus
// DAD schedules, one-shot and repeated.
func runB4() error {
	const n = 1 << 15
	const m, nn = 4, 6
	src := mustTpl(n, dad.BlockAxis(m))
	dst := mustTpl(n, dad.CyclicAxis(nn))
	srcLin := linear.NewRowMajor(src)
	dstLin := linear.NewRowMajor(dst)

	runDAD := func(withBuild bool, iters int) time.Duration {
		cache := schedule.NewCache()
		if !withBuild {
			cache.Get(src, dst) // warm
		}
		return timed(iters, func() {
			s, _ := cache.Get(src, dst)
			var wg sync.WaitGroup
			world := mxn.NewWorld(m + nn)
			for i, c := range world.Comms() {
				wg.Add(1)
				go func(i int, c *mxn.Comm) {
					defer wg.Done()
					lay := redist.Layout{SrcBase: 0, DstBase: m}
					var sl, dl []float64
					if i < m {
						sl = make([]float64, src.LocalCount(i))
					} else {
						dl = make([]float64, dst.LocalCount(i-m))
					}
					if err := redist.Exchange(c, s, lay, sl, dl, 0); err != nil {
						panic(err)
					}
				}(i, c)
			}
			wg.Wait()
		})
	}
	runLinear := func(iters int) time.Duration {
		return timed(iters, func() {
			var wg sync.WaitGroup
			world := mxn.NewWorld(m + nn)
			for i, c := range world.Comms() {
				wg.Add(1)
				go func(i int, c *mxn.Comm) {
					defer wg.Done()
					lay := redist.Layout{SrcBase: 0, DstBase: m}
					var sl, dl []float64
					if i < m {
						sl = make([]float64, src.LocalCount(i))
					} else {
						dl = make([]float64, dst.LocalCount(i-m))
					}
					if err := redist.LinearExchange(c, srcLin, dstLin, lay, m, nn, sl, dl, 0); err != nil {
						panic(err)
					}
				}(i, c)
			}
			wg.Wait()
		})
	}

	t := &table{header: []string{"approach", "first transfer", "steady state", "per-transfer traffic"}}
	t.add("DAD schedule", runDAD(true, 1).Round(time.Microsecond).String(),
		runDAD(false, 5).Round(time.Microsecond).String(), "data only (plan precomputed)")
	t.add("linearization (receiver-driven)", runLinear(1).Round(time.Microsecond).String(),
		runLinear(5).Round(time.Microsecond).String(), fmt.Sprintf("%d requests + interval sets each transfer", m*nn))
	t.print()
	fmt.Println("shape check: linearization avoids schedule construction (competitive first transfer) but")
	fmt.Println("pays request traffic and per-element mapping every time; schedules win once reused.")
	return nil
}

// runB5: PRMI invocation costs — independent vs collective vs one-way,
// M=N vs M≠N ghosts, and the simple-argument consistency check the paper
// says frameworks may skip for performance.
func runB5() error {
	t := &table{header: []string{"invocation", "M", "N", "per call"}}
	ind, err := prmiCost(1, 1, "independent", false)
	if err != nil {
		return err
	}
	t.add("independent", "1", "1", ind.String())
	for _, mn := range [][2]int{{2, 2}, {4, 4}, {8, 8}, {8, 2}, {2, 8}} {
		d, err := prmiCost(mn[0], mn[1], "collective", false)
		if err != nil {
			return err
		}
		t.add("collective", fmt.Sprint(mn[0]), fmt.Sprint(mn[1]), d.String())
	}
	ow, err := prmiCost(4, 4, "oneway", false)
	if err != nil {
		return err
	}
	t.add("collective one-way", "4", "4", ow.String())
	chk, err := prmiCost(4, 4, "collective", true)
	if err != nil {
		return err
	}
	t.add("collective + simple-arg check", "4", "4", chk.String())
	t.print()
	fmt.Println("shape check: collective cost grows with M×N headers; ghosts (M≠N) cost like max(M,N);")
	fmt.Println("one-way returns immediately; the consistency check adds measurable but small overhead —")
	fmt.Println("the reason the paper leaves it optional.")
	return nil
}

func prmiCost(m, n int, kind string, checkSimple bool) (time.Duration, error) {
	idl := `package p; interface I {
		independent double f(in double x);
		collective double g(in double x);
		collective oneway void h(in double x);
	}`
	pkg, err := mxn.ParseSIDL(idl)
	if err != nil {
		return 0, err
	}
	iface, _ := pkg.Interface("I")
	const calls = 300
	w := mxn.NewWorld(m + n)
	all := w.Comms()
	ranks := make([]int, m)
	for i := range ranks {
		ranks[i] = i
	}
	cohort := w.Group(ranks)
	var wg sync.WaitGroup
	serveErrs := make([]error, n)
	for j := 0; j < n; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			ep := prmi.NewEndpoint(iface, prmi.NewCommLink(all[m+j], 0, 0), j, n, m)
			ep.CheckSimpleArgs = checkSimple
			h := func(in *prmi.Incoming, out *prmi.Outgoing) error {
				out.Return = 1.0
				return nil
			}
			ep.Handle("f", h)
			ep.Handle("g", h)
			ep.Handle("h", func(in *prmi.Incoming, out *prmi.Outgoing) error { return nil })
			serveErrs[j] = ep.Serve()
		}(j)
	}
	perCall := make([]time.Duration, m)
	callErrs := make([]error, m)
	for i := 0; i < m; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := prmi.NewCallerPort(iface, prmi.NewCommLink(all[i], m, 0), i, n, prmi.BarrierDelayed)
			start := time.Now()
			for k := 0; k < calls; k++ {
				var err error
				switch kind {
				case "independent":
					_, err = p.CallIndependent(i%n, "f", prmi.Simple("x", 1.0))
				case "collective":
					_, err = p.CallCollective("g", prmi.FullParticipation(cohort[i]), prmi.Simple("x", 1.0))
				case "oneway":
					_, err = p.CallCollective("h", prmi.FullParticipation(cohort[i]), prmi.Simple("x", 1.0))
				}
				if err != nil {
					callErrs[i] = err
					break
				}
			}
			perCall[i] = time.Since(start) / calls
			// One-way calls return before handlers run; order a final
			// blocking call so Close cannot outrun them.
			if kind == "oneway" {
				p.CallCollective("g", prmi.FullParticipation(cohort[i]), prmi.Simple("x", 1.0))
			}
			p.Close()
		}(i)
	}
	wg.Wait()
	for _, err := range append(serveErrs, callErrs...) {
		if err != nil {
			return 0, err
		}
	}
	var maxD time.Duration
	for _, d := range perCall {
		if d > maxD {
			maxD = d
		}
	}
	return maxD.Round(time.Microsecond), nil
}

// runB6: the DAD's 2N-vs-N² converter economics, plus the runtime cost of
// converting through the hub versus a fused pairwise converter.
func runB6() error {
	tpl, _ := dad.NewTemplate([]int{512, 512}, []dad.AxisDist{dad.BlockAxis(1), dad.CollapsedAxis()})
	t := &table{header: []string{"packages", "hub converters", "pairwise converters", "hub ns/elem", "direct ns/elem"}}
	for _, n := range []int{2, 3, 4, 6} {
		pkgs := dapkg.Builtin(n)
		src, dst := pkgs[0], pkgs[n-1]
		cs, err := dapkg.NewConverter(src, tpl, 0)
		if err != nil {
			return err
		}
		cd, err := dapkg.NewConverter(dst, tpl, 0)
		if err != nil {
			return err
		}
		direct, err := dapkg.NewDirectConverter(src, dst, tpl, 0)
		if err != nil {
			return err
		}
		elems := cs.Len()
		in := make([]float64, elems)
		out := make([]float64, elems)
		scratch := make([]float64, elems)
		hubD := timed(5, func() { dapkg.ViaHub(cs, cd, in, scratch, out) })
		dirD := timed(5, func() { direct.Convert(in, out) })
		t.add(fmt.Sprint(n),
			fmt.Sprint(dapkg.HubConverterCount(n)),
			fmt.Sprint(dapkg.PairwiseConverterCount(n)),
			fmt.Sprintf("%.2f", float64(hubD.Nanoseconds())/float64(elems)),
			fmt.Sprintf("%.2f", float64(dirD.Nanoseconds())/float64(elems)))
	}
	t.print()
	fmt.Println("shape check: the hub pays ~2× per conversion (one extra relayout) but its converter count")
	fmt.Println("grows as 2N while pairwise grows as N², crossing over at N=4 — the paper's DAD argument.")
	return nil
}

// runB7: MCT interpolation as parallel sparse matvec: fine→coarse regrid
// on 8 ranks, single- vs multi-field.
func runB7() error {
	const np = 8
	const nlatS, nlonS, nlatD, nlonD = 144, 96, 96, 64
	global := meshsim.RegridMatrix(nlatS, nlonS, nlatD, nlonD)
	xMap := mct.BlockMap(nlatS*nlonS, np)
	yMap := mct.BlockMap(nlatD*nlonD, np)

	t := &table{header: []string{"fields", "nnz", "per apply", "element-updates/s"}}
	for _, fields := range []int{1, 4} {
		attrs := make([]string, fields)
		for i := range attrs {
			attrs[i] = fmt.Sprintf("f%d", i)
		}
		var per time.Duration
		var failErr error
		var mu sync.Mutex
		mxn.Run(np, func(c *mxn.Comm) {
			r := c.Rank()
			mv, err := mct.NewMatVec(c, meshsim.LocalMatrix(global, yMap, r), xMap, yMap, 0)
			if err != nil {
				mu.Lock()
				failErr = err
				mu.Unlock()
				return
			}
			x := mct.MustAttrVect(attrs, xMap.LocalSize(r))
			y := mct.MustAttrVect(attrs, yMap.LocalSize(r))
			const iters = 10
			c.Barrier()
			start := time.Now()
			for k := 0; k < iters; k++ {
				if err := mv.Apply(c, x, y, 10); err != nil {
					mu.Lock()
					failErr = err
					mu.Unlock()
					return
				}
			}
			elapsed := time.Since(start) / iters
			if r == 0 {
				mu.Lock()
				per = elapsed
				mu.Unlock()
			}
		})
		if failErr != nil {
			return failErr
		}
		updates := float64(global.NNZ()*fields) / per.Seconds()
		t.add(fmt.Sprint(fields), fmt.Sprint(global.NNZ()),
			per.Round(time.Microsecond).String(), fmt.Sprintf("%.1fM", updates/1e6))
	}
	t.print()
	fmt.Println("shape check: interpolating 4 fields in one apply costs far less than 4× one field —")
	fmt.Println("the halo exchange is shared, which is MCT's multi-field cache-friendly design.")
	return nil
}

// runB8: persistent-channel throughput versus frame size.
func runB8() error {
	t := &table{header: []string{"frame elements", "frames", "per frame", "throughput"}}
	for _, side := range []int{16, 64, 256} {
		elems := side * side
		srcT, _ := dad.NewTemplate([]int{side, side}, []dad.AxisDist{dad.BlockAxis(2), dad.CollapsedAxis()})
		dstT, _ := dad.NewTemplate([]int{side, side}, []dad.AxisDist{dad.CollapsedAxis(), dad.BlockAxis(2)})
		srcD, _ := dad.NewDescriptor("f", dad.Float64, dad.ReadOnly, srcT)
		dstD, _ := dad.NewDescriptor("f", dad.Float64, dad.WriteOnly, dstT)
		ba, bb := mxn.BridgePair()
		hubA := mxn.NewHub("A", 2, ba)
		hubB := mxn.NewHub("B", 2, bb)
		hubA.Register(srcD)
		hubB.Register(dstD)
		srcConn, dstConn, err := mxn.ConnectHubs("b8", hubA, "f", hubB, "f",
			mxn.ConnOpts{Persistent: true, Sync: mxn.SyncEachFrame})
		if err != nil {
			return err
		}
		const frames = 300
		start := time.Now()
		var wg sync.WaitGroup
		for r := 0; r < 2; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				local := make([]float64, srcT.LocalCount(r))
				for f := 0; f < frames; f++ {
					srcConn.DataReady(r, local)
				}
			}(r)
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				buf := make([]float64, dstT.LocalCount(r))
				for f := 0; f < frames; f++ {
					dstConn.DataReady(r, buf)
				}
			}(r)
		}
		wg.Wait()
		elapsed := time.Since(start)
		mb := float64(elems*8*frames) / 1e6
		t.add(fmt.Sprint(elems), fmt.Sprint(frames),
			(elapsed / frames).Round(time.Microsecond).String(),
			fmt.Sprintf("%.1f MB/s", mb/elapsed.Seconds()))
	}
	t.print()
	fmt.Println("shape check: per-frame cost is dominated by fixed matching overhead for small frames and")
	fmt.Println("by copying for large ones, so throughput rises steeply with frame size.")
	return nil
}

// runB9: what InterComm's separation of control from data costs — a
// coordinated, timestamp-matched transfer versus the same redistribution
// executed directly.
func runB9() error {
	const n = 1 << 14
	const m, nn = 2, 3
	srcT := mustTpl(n, dad.BlockAxis(m))
	dstT := mustTpl(n, dad.BlockAxis(nn))

	// Direct: cached schedule + local execution.
	s, err := schedule.Build(srcT, dstT)
	if err != nil {
		return err
	}
	srcLocals := make([][]float64, m)
	for r := range srcLocals {
		srcLocals[r] = make([]float64, srcT.LocalCount(r))
	}
	dstLocals := make([][]float64, nn)
	for r := range dstLocals {
		dstLocals[r] = make([]float64, dstT.LocalCount(r))
	}
	direct := timed(50, func() { redist.ExecuteLocal(s, srcLocals, dstLocals) })

	// Coordinated: export with timestamps, rule-matched import.
	coord := intercomm.NewCoordinator()
	coord.Retention = 4
	sim := coord.AddProgram("sim")
	viz := coord.AddProgram("viz")
	sim.DeclareArray("a", srcT)
	viz.DeclareArray("a", dstT)
	if err := coord.AddRule(intercomm.Rule{
		SrcProgram: "sim", SrcArray: "a", DstProgram: "viz", DstArray: "a",
		Match: intercomm.LowerBound,
	}); err != nil {
		return err
	}
	ts := 0
	coordinated := timed(50, func() {
		for r := 0; r < m; r++ {
			if err := sim.Export("a", ts, r, srcLocals[r]); err != nil {
				panic(err)
			}
		}
		for r := 0; r < nn; r++ {
			if _, err := viz.Import("a", ts, r, dstLocals[r]); err != nil {
				panic(err)
			}
		}
		ts++
	})

	t := &table{header: []string{"path", "per transfer", "what it buys"}}
	t.add("direct schedule execution", direct.Round(time.Microsecond).String(), "fastest; both sides must know each other")
	t.add("coordinated import/export", coordinated.Round(time.Microsecond).String(),
		"timestamp matching, third-party control, replaceable components")
	t.print()
	fmt.Println("shape check: coordination costs a constant per transfer (buffer copy + rule match) on top of")
	fmt.Println("the same redistribution — the price of separating when from what.")
	return nil
}

// runB10: the Section 6 "super-component" ablation — a pipeline of
// redistributions and unit-conversion filters executed chained
// (materializing every stage) versus fused (composed schedule, one
// movement, one filter pass).
func runB10() error {
	const n = 1 << 16
	src := mustTpl(n, dad.BlockAxis(6))
	mid := mustTpl(n, dad.CyclicAxis(4))
	sink := mustTpl(n, dad.BlockAxis(2))
	p, err := pipeline.New(src,
		pipeline.Stage{Template: mid, Filter: func(x float64) float64 { return x - 273.15 }},
		pipeline.Stage{Template: sink, Filter: func(x float64) float64 { return x / 100 }},
	)
	if err != nil {
		return err
	}
	in := make([][]float64, src.NumProcs())
	for r := range in {
		in[r] = make([]float64, src.LocalCount(r))
	}
	// Warm both paths so the table compares steady-state movement.
	if _, err := p.RunChained(in); err != nil {
		return err
	}
	fused, _, err := p.Fuse()
	if err != nil {
		return err
	}
	chained := timed(20, func() { p.RunChained(in) })
	fusedT := timed(20, func() { p.RunFused(in) })

	// Message counts for the two plans.
	s1, _ := schedule.Build(src, mid)
	s2, _ := schedule.Build(mid, sink)

	t := &table{header: []string{"execution", "per run", "messages", "intermediate copies"}}
	t.add("chained (per-stage)", chained.Round(time.Microsecond).String(),
		fmt.Sprintf("%d + %d", s1.NumMessages(), s2.NumMessages()), "1 per stage")
	t.add("fused (super-component)", fusedT.Round(time.Microsecond).String(),
		fmt.Sprint(fused.NumMessages()), "none")
	t.print()
	fmt.Println("shape check: fusion removes the intermediate materialization and its messages — the")
	fmt.Println("\"operate on data in place and avoid unnecessary data copies\" goal of the paper's Section 6.")
	return nil
}

// runB11: the Section 3 scalability claim — "communications between the
// components is not serialized through a single data management process"
// — tested by weak scaling: per-rank data volume fixed, M=N grows, and
// the wall-clock per transfer should stay near-flat rather than grow
// linearly the way a funnel-through-one-process design would.
func runB11() error {
	const perRank = 1 << 14 // elements owned by each rank on each side
	t := &table{header: []string{"M=N", "global elements", "messages", "per transfer", "per-rank rate"}}
	for _, np := range []int{2, 4, 8, 16} {
		n := perRank * np
		src := mustTpl(n, dad.BlockAxis(np))
		dst := mustTpl(n, dad.BlockCyclicAxis(np, 512))
		s, err := schedule.Build(src, dst)
		if err != nil {
			return err
		}
		srcLocals := make([][]float64, np)
		dstLocals := make([][]float64, np)
		for r := 0; r < np; r++ {
			srcLocals[r] = make([]float64, src.LocalCount(r))
			dstLocals[r] = make([]float64, dst.LocalCount(r))
		}
		per := timed(5, func() {
			var wg sync.WaitGroup
			world := mxn.NewWorld(2 * np)
			for i, c := range world.Comms() {
				wg.Add(1)
				go func(i int, c *mxn.Comm) {
					defer wg.Done()
					lay := redist.Layout{SrcBase: 0, DstBase: np}
					var sl, dl []float64
					if i < np {
						sl = srcLocals[i]
					} else {
						dl = dstLocals[i-np]
					}
					if err := redist.Exchange(c, s, lay, sl, dl, 0); err != nil {
						panic(err)
					}
				}(i, c)
			}
			wg.Wait()
		})
		rate := float64(perRank*8) / 1e6 / per.Seconds()
		t.add(fmt.Sprint(np), fmt.Sprint(n), fmt.Sprint(s.NumMessages()),
			per.Round(time.Microsecond).String(), fmt.Sprintf("%.1f MB/s", rate))
	}
	t.print()
	fmt.Println("shape check: with fixed per-rank volume, transfer time grows far slower than total data")
	fmt.Println("volume (8× ranks costs well under 8×): pairwise messages proceed concurrently with no")
	fmt.Println("serializing coordinator; residual growth is message count and CPU oversubscription.")
	return nil
}
