module mxn

go 1.22
