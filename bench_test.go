package mxn

// Benchmark suite: one testing.B benchmark (or family) per figure and
// per benchmark table of EXPERIMENTS.md. The human-readable experiment
// report with paper-style tables is produced by cmd/mxnbench; these
// benchmarks are the machine-readable counterpart:
//
//	go test -bench=. -benchmem

import (
	"fmt"
	"sync"
	"testing"

	"mxn/internal/comm"
	"mxn/internal/core"
	"mxn/internal/dad"
	"mxn/internal/dapkg"
	"mxn/internal/intercomm"
	"mxn/internal/linear"
	"mxn/internal/mct"
	"mxn/internal/meshsim"
	"mxn/internal/pipeline"
	"mxn/internal/prmi"
	"mxn/internal/redist"
	"mxn/internal/schedule"
	"mxn/internal/sidl"
)

func mustTemplate(b *testing.B, dims []int, axes ...dad.AxisDist) *dad.Template {
	b.Helper()
	t, err := dad.NewTemplate(dims, axes)
	if err != nil {
		b.Fatal(err)
	}
	return t
}

// BenchmarkFigure1Redistribution measures the paper's headline scenario:
// one 60³ transfer from M=8 to N=27 with live cohorts (schedule cached).
func BenchmarkFigure1Redistribution(b *testing.B) {
	src := mustTemplate(b, []int{60, 60, 60}, dad.BlockAxis(2), dad.BlockAxis(2), dad.BlockAxis(2))
	dst := mustTemplate(b, []int{60, 60, 60}, dad.BlockAxis(3), dad.BlockAxis(3), dad.BlockAxis(3))
	s, err := schedule.Build(src, dst)
	if err != nil {
		b.Fatal(err)
	}
	srcLocals := make([][]float64, 8)
	for r := range srcLocals {
		srcLocals[r] = make([]float64, src.LocalCount(r))
	}
	dstLocals := make([][]float64, 27)
	for r := range dstLocals {
		dstLocals[r] = make([]float64, dst.LocalCount(r))
	}
	b.SetBytes(int64(s.TotalElems() * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		world := comm.NewWorld(8 + 27)
		for rank, c := range world.Comms() {
			wg.Add(1)
			go func(rank int, c *comm.Comm) {
				defer wg.Done()
				lay := redist.Layout{SrcBase: 0, DstBase: 8}
				var sl, dl []float64
				if rank < 8 {
					sl = srcLocals[rank]
				} else {
					dl = dstLocals[rank-8]
				}
				if err := redist.Exchange(c, s, lay, sl, dl, 0); err != nil {
					panic(err)
				}
			}(rank, c)
		}
		wg.Wait()
	}
}

// BenchmarkFigure2DirectCall is the direct-connected framework's port
// invocation: a library call through an interface.
func BenchmarkFigure2DirectCall(b *testing.B) {
	type port interface{ F(float64) float64 }
	var p port = &benchPort{}
	b.ResetTimer()
	acc := 0.0
	for i := 0; i < b.N; i++ {
		acc += p.F(float64(i))
	}
	_ = acc
}

type benchPort struct{ state float64 }

func (p *benchPort) F(x float64) float64 {
	p.state += x
	return x * 2
}

// BenchmarkFigure2PRMI is the distributed framework's port invocation:
// the same call as a parallel remote method invocation (in-process link).
func BenchmarkFigure2PRMI(b *testing.B) {
	pkg, err := sidl.Parse(`package p; interface I { independent double f(in double x); }`)
	if err != nil {
		b.Fatal(err)
	}
	iface, _ := pkg.Interface("I")
	w := comm.NewWorld(2)
	cs := w.Comms()
	done := make(chan error, 1)
	go func() {
		ep := prmi.NewEndpoint(iface, prmi.NewCommLink(cs[1], 0, 0), 0, 1, 1)
		ep.Handle("f", func(in *prmi.Incoming, out *prmi.Outgoing) error {
			out.Return = in.Simple["x"].(float64) * 2
			return nil
		})
		done <- ep.Serve()
	}()
	port := prmi.NewCallerPort(iface, prmi.NewCommLink(cs[0], 1, 0), 0, 1, prmi.Eager)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := port.CallIndependent(0, "f", prmi.Simple("x", 1.0)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	port.Close()
	if err := <-done; err != nil {
		b.Fatal(err)
	}
}

// BenchmarkFigure3PairedComponents measures one persistent-channel frame
// between paired M×N components over the in-memory bridge.
func BenchmarkFigure3PairedComponents(b *testing.B) {
	const m, n, side = 2, 2, 64
	srcT := mustTemplate(b, []int{side, side}, dad.BlockAxis(m), dad.CollapsedAxis())
	dstT := mustTemplate(b, []int{side, side}, dad.CollapsedAxis(), dad.BlockAxis(n))
	srcD, _ := dad.NewDescriptor("f", dad.Float64, dad.ReadOnly, srcT)
	dstD, _ := dad.NewDescriptor("f", dad.Float64, dad.WriteOnly, dstT)
	ba, bb := core.BridgePair()
	hubA := core.NewHub("A", m, ba)
	hubB := core.NewHub("B", n, bb)
	hubA.Register(srcD)
	hubB.Register(dstD)
	srcConn, dstConn, err := core.Connect("bench", hubA, "f", hubB, "f",
		core.ConnOpts{Persistent: true, Sync: core.SyncEachFrame})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(side * side * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for r := 0; r < m; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				local := make([]float64, srcT.LocalCount(r))
				srcConn.DataReady(r, local)
			}(r)
		}
		for r := 0; r < n; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				buf := make([]float64, dstT.LocalCount(r))
				dstConn.DataReady(r, buf)
			}(r)
		}
		wg.Wait()
	}
}

// BenchmarkFigure5BarrierDelayed measures the cost of the DCA delivery
// rule: a collective invocation including its participant barrier.
func BenchmarkFigure5BarrierDelayed(b *testing.B) {
	benchCollective(b, prmi.BarrierDelayed)
}

// BenchmarkFigure5Eager is the same invocation with eager delivery — the
// barrier's price is the difference (safety is the deadlock avoided).
func BenchmarkFigure5Eager(b *testing.B) {
	benchCollective(b, prmi.Eager)
}

func benchCollective(b *testing.B, mode prmi.DeliveryMode) {
	pkg, _ := sidl.Parse(`package p; interface I { collective double f(in double x); }`)
	iface, _ := pkg.Interface("I")
	const m, n = 2, 2
	w := comm.NewWorld(m + n)
	all := w.Comms()
	cohort := w.Group([]int{0, 1})
	var serveWG sync.WaitGroup
	for j := 0; j < n; j++ {
		serveWG.Add(1)
		go func(j int) {
			defer serveWG.Done()
			ep := prmi.NewEndpoint(iface, prmi.NewCommLink(all[m+j], 0, 0), j, n, m)
			ep.Handle("f", func(in *prmi.Incoming, out *prmi.Outgoing) error {
				out.Return = 0.0
				return nil
			})
			ep.Serve()
		}(j)
	}
	ports := make([]*prmi.CallerPort, m)
	for i := 0; i < m; i++ {
		ports[i] = prmi.NewCallerPort(iface, prmi.NewCommLink(all[i], m, 0), i, n, mode)
	}
	b.ResetTimer()
	for k := 0; k < b.N; k++ {
		var wg sync.WaitGroup
		for i := 0; i < m; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				if _, err := ports[i].CallCollective("f", prmi.FullParticipation(cohort[i]), prmi.Simple("x", 1.0)); err != nil {
					panic(err)
				}
			}(i)
		}
		wg.Wait()
	}
	b.StopTimer()
	for _, p := range ports {
		p.Close()
	}
	serveWG.Wait()
}

// BenchmarkScheduleBuild covers table B1: schedule construction cost for
// aligned (block→block) and fragmented (block→cyclic) pairs.
func BenchmarkScheduleBuild(b *testing.B) {
	const n = 1 << 14
	cases := []struct {
		name     string
		src, dst dad.AxisDist
	}{
		{"BlockToBlock", dad.BlockAxis(8), dad.BlockAxis(16)},
		{"BlockToCyclic", dad.BlockAxis(8), dad.CyclicAxis(16)},
		{"BlockCyclicToBlockCyclic", dad.BlockCyclicAxis(8, 32), dad.BlockCyclicAxis(16, 64)},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			src := mustTemplate(b, []int{n}, c.src)
			dst := mustTemplate(b, []int{n}, c.dst)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := schedule.Build(src, dst); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScheduleReuse covers table B2: a steady-state cached transfer.
func BenchmarkScheduleReuse(b *testing.B) {
	const n = 1 << 16
	src := mustTemplate(b, []int{n}, dad.BlockAxis(8))
	dst := mustTemplate(b, []int{n}, dad.BlockCyclicAxis(8, 64))
	cache := schedule.NewCache()
	srcLocals := make([][]float64, 8)
	dstLocals := make([][]float64, 8)
	for r := 0; r < 8; r++ {
		srcLocals[r] = make([]float64, src.LocalCount(r))
		dstLocals[r] = make([]float64, dst.LocalCount(r))
	}
	b.SetBytes(int64(n * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := cache.Get(src, dst)
		if err != nil {
			b.Fatal(err)
		}
		redist.ExecuteLocal(s, srcLocals, dstLocals)
	}
}

// BenchmarkDistributionKinds covers table B3: transfer cost by source
// distribution kind (schedules prebuilt).
func BenchmarkDistributionKinds(b *testing.B) {
	const n = 1 << 14
	const np = 8
	owners := make([]int, n)
	for i := range owners {
		owners[i] = (i / 37) % np
	}
	kinds := []struct {
		name string
		ax   dad.AxisDist
	}{
		{"Block", dad.BlockAxis(np)},
		{"Cyclic", dad.CyclicAxis(np)},
		{"BlockCyclic64", dad.BlockCyclicAxis(np, 64)},
		{"Implicit", dad.ImplicitAxis(np, owners)},
	}
	dst := mustTemplate(b, []int{n}, dad.BlockAxis(np))
	for _, k := range kinds {
		b.Run(k.name, func(b *testing.B) {
			src := mustTemplate(b, []int{n}, k.ax)
			s, err := schedule.Build(src, dst)
			if err != nil {
				b.Fatal(err)
			}
			srcLocals := make([][]float64, np)
			dstLocals := make([][]float64, np)
			for r := 0; r < np; r++ {
				srcLocals[r] = make([]float64, src.LocalCount(r))
				dstLocals[r] = make([]float64, dst.LocalCount(r))
			}
			b.SetBytes(int64(n * 8))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				redist.ExecuteLocal(s, srcLocals, dstLocals)
			}
		})
	}
}

// BenchmarkLinearizationVsDAD covers table B4.
func BenchmarkLinearizationVsDAD(b *testing.B) {
	const n = 1 << 13
	const m, nn = 2, 3
	src := mustTemplate(b, []int{n}, dad.BlockAxis(m))
	dst := mustTemplate(b, []int{n}, dad.CyclicAxis(nn))

	b.Run("DADSchedule", func(b *testing.B) {
		s, err := schedule.Build(src, dst)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(n * 8))
		for i := 0; i < b.N; i++ {
			runParallel(b, m+nn, func(rank int, c *comm.Comm) error {
				lay := redist.Layout{SrcBase: 0, DstBase: m}
				var sl, dl []float64
				if rank < m {
					sl = make([]float64, src.LocalCount(rank))
				} else {
					dl = make([]float64, dst.LocalCount(rank-m))
				}
				return redist.Exchange(c, s, lay, sl, dl, 0)
			})
		}
	})
	b.Run("LinearReceiverDriven", func(b *testing.B) {
		srcLin := linear.NewRowMajor(src)
		dstLin := linear.NewRowMajor(dst)
		b.SetBytes(int64(n * 8))
		for i := 0; i < b.N; i++ {
			runParallel(b, m+nn, func(rank int, c *comm.Comm) error {
				lay := redist.Layout{SrcBase: 0, DstBase: m}
				var sl, dl []float64
				if rank < m {
					sl = make([]float64, src.LocalCount(rank))
				} else {
					dl = make([]float64, dst.LocalCount(rank-m))
				}
				return redist.LinearExchange(c, srcLin, dstLin, lay, m, nn, sl, dl, 0)
			})
		}
	})
}

// runParallel spawns one goroutine per rank of a fresh world.
func runParallel(b *testing.B, n int, body func(rank int, c *comm.Comm) error) {
	b.Helper()
	var wg sync.WaitGroup
	world := comm.NewWorld(n)
	for rank, c := range world.Comms() {
		wg.Add(1)
		go func(rank int, c *comm.Comm) {
			defer wg.Done()
			if err := body(rank, c); err != nil {
				panic(err)
			}
		}(rank, c)
	}
	wg.Wait()
}

// BenchmarkPRMIParallelArgument covers the parallel-argument row of table
// B5: a collective call moving a redistributed array each way.
func BenchmarkPRMIParallelArgument(b *testing.B) {
	pkg, _ := sidl.Parse(`package p; interface I { collective void f(inout parallel array<double> x); }`)
	iface, _ := pkg.Interface("I")
	const m, n, d = 2, 2, 1 << 12
	callerTpl := mustTemplate(b, []int{d}, dad.CyclicAxis(m))
	calleeTpl := mustTemplate(b, []int{d}, dad.BlockAxis(n))
	w := comm.NewWorld(m + n)
	all := w.Comms()
	cohort := w.Group([]int{0, 1})
	var serveWG sync.WaitGroup
	for j := 0; j < n; j++ {
		serveWG.Add(1)
		go func(j int) {
			defer serveWG.Done()
			ep := prmi.NewEndpoint(iface, prmi.NewCommLink(all[m+j], 0, 0), j, n, m)
			ep.RegisterArgLayout("f", "x", calleeTpl)
			ep.Handle("f", func(in *prmi.Incoming, out *prmi.Outgoing) error { return nil })
			ep.Serve()
		}(j)
	}
	ports := make([]*prmi.CallerPort, m)
	locals := make([][]float64, m)
	for i := 0; i < m; i++ {
		ports[i] = prmi.NewCallerPort(iface, prmi.NewCommLink(all[i], m, 0), i, n, prmi.BarrierDelayed)
		ports[i].SetCalleeLayout("f", "x", calleeTpl)
		locals[i] = make([]float64, callerTpl.LocalCount(i))
	}
	b.SetBytes(int64(d * 8 * 2)) // there and back
	b.ResetTimer()
	for k := 0; k < b.N; k++ {
		var wg sync.WaitGroup
		for i := 0; i < m; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				if _, err := ports[i].CallCollective("f", prmi.FullParticipation(cohort[i]),
					prmi.Parallel("x", callerTpl, locals[i])); err != nil {
					panic(err)
				}
			}(i)
		}
		wg.Wait()
	}
	b.StopTimer()
	for _, p := range ports {
		p.Close()
	}
	serveWG.Wait()
}

// BenchmarkConverterScaling covers table B6.
func BenchmarkConverterScaling(b *testing.B) {
	tpl := mustTemplate(b, []int{256, 256}, dad.BlockAxis(1), dad.CollapsedAxis())
	pkgs := dapkg.Builtin(3)
	src, dst := pkgs[1], pkgs[2]
	cs, _ := dapkg.NewConverter(src, tpl, 0)
	cd, _ := dapkg.NewConverter(dst, tpl, 0)
	direct, _ := dapkg.NewDirectConverter(src, dst, tpl, 0)
	in := make([]float64, cs.Len())
	out := make([]float64, cs.Len())
	scratch := make([]float64, cs.Len())
	b.Run("ViaDADHub", func(b *testing.B) {
		b.SetBytes(int64(cs.Len() * 8))
		for i := 0; i < b.N; i++ {
			dapkg.ViaHub(cs, cd, in, scratch, out)
		}
	})
	b.Run("DirectPairwise", func(b *testing.B) {
		b.SetBytes(int64(cs.Len() * 8))
		for i := 0; i < b.N; i++ {
			direct.Convert(in, out)
		}
	})
}

// BenchmarkMCTInterp covers table B7: the distributed regrid matvec.
func BenchmarkMCTInterp(b *testing.B) {
	const np = 4
	global := meshsim.RegridMatrix(72, 48, 48, 32)
	xMap := mct.BlockMap(72*48, np)
	yMap := mct.BlockMap(48*32, np)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runParallel(b, np, func(rank int, c *comm.Comm) error {
			mv, err := mct.NewMatVec(c, meshsim.LocalMatrix(global, yMap, rank), xMap, yMap, 0)
			if err != nil {
				return err
			}
			x := mct.MustAttrVect([]string{"t", "q"}, xMap.LocalSize(rank))
			y := mct.MustAttrVect([]string{"t", "q"}, yMap.LocalSize(rank))
			for k := 0; k < 4; k++ {
				if err := mv.Apply(c, x, y, 10); err != nil {
					return err
				}
			}
			return nil
		})
	}
}

// BenchmarkPersistentChannel covers table B8: per-frame cost of a
// CUMULVS-style persistent channel.
func BenchmarkPersistentChannel(b *testing.B) {
	BenchmarkFigure3PairedComponents(b)
}

// BenchmarkInterCommCoordination covers table B9: a timestamp-matched
// export/import cycle.
func BenchmarkInterCommCoordination(b *testing.B) {
	const n = 1 << 12
	const m, nn = 2, 3
	srcT := mustTemplate(b, []int{n}, dad.BlockAxis(m))
	dstT := mustTemplate(b, []int{n}, dad.BlockAxis(nn))
	coord := intercomm.NewCoordinator()
	coord.Retention = 2
	sim := coord.AddProgram("sim")
	viz := coord.AddProgram("viz")
	sim.DeclareArray("a", srcT)
	viz.DeclareArray("a", dstT)
	if err := coord.AddRule(intercomm.Rule{
		SrcProgram: "sim", SrcArray: "a", DstProgram: "viz", DstArray: "a",
		Match: intercomm.ExactTime,
	}); err != nil {
		b.Fatal(err)
	}
	srcLocals := make([][]float64, m)
	for r := range srcLocals {
		srcLocals[r] = make([]float64, srcT.LocalCount(r))
	}
	dstLocals := make([][]float64, nn)
	for r := range dstLocals {
		dstLocals[r] = make([]float64, dstT.LocalCount(r))
	}
	b.SetBytes(int64(n * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 0; r < m; r++ {
			if err := sim.Export("a", i, r, srcLocals[r]); err != nil {
				b.Fatal(err)
			}
		}
		for r := 0; r < nn; r++ {
			if _, err := viz.Import("a", i, r, dstLocals[r]); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSIDLParse measures the IDL front end (the run-time stand-in
// for SCIRun2's compile-time glue generation), relevant because Figure 4
// frameworks resolve port semantics through it.
func BenchmarkSIDLParse(b *testing.B) {
	src := `package climate version 1.0;
interface Coupler {
    collective void setField(in parallel array<double> field, in int step);
    independent double probe(in int i);
    collective oneway void advance(in int steps);
    collective array<double> exchange(inout parallel array<double> data);
}`
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		if _, err := sidl.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineFusion covers table B10: a two-stage pipeline executed
// chained (per-stage materialization) vs fused (composed schedule).
func BenchmarkPipelineFusion(b *testing.B) {
	const n = 1 << 14
	src := mustTemplate(b, []int{n}, dad.BlockAxis(6))
	mid := mustTemplate(b, []int{n}, dad.CyclicAxis(4))
	sink := mustTemplate(b, []int{n}, dad.BlockAxis(2))
	p, err := pipeline.New(src,
		pipeline.Stage{Template: mid, Filter: func(x float64) float64 { return x - 273.15 }},
		pipeline.Stage{Template: sink, Filter: func(x float64) float64 { return x / 100 }},
	)
	if err != nil {
		b.Fatal(err)
	}
	in := make([][]float64, src.NumProcs())
	for r := range in {
		in[r] = make([]float64, src.LocalCount(r))
	}
	if _, err := p.RunChained(in); err != nil { // warm schedules
		b.Fatal(err)
	}
	if _, _, err := p.Fuse(); err != nil {
		b.Fatal(err)
	}
	b.Run("Chained", func(b *testing.B) {
		b.SetBytes(int64(n * 8))
		for i := 0; i < b.N; i++ {
			if _, err := p.RunChained(in); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Fused", func(b *testing.B) {
		b.SetBytes(int64(n * 8))
		for i := 0; i < b.N; i++ {
			if _, err := p.RunFused(in); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkWeakScaling covers table B11: fixed per-rank volume, growing
// cohorts; a serializing design would scale linearly with total volume.
func BenchmarkWeakScaling(b *testing.B) {
	const perRank = 1 << 12
	for _, np := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("MN%d", np), func(b *testing.B) {
			n := perRank * np
			src := mustTemplate(b, []int{n}, dad.BlockAxis(np))
			dst := mustTemplate(b, []int{n}, dad.BlockCyclicAxis(np, 256))
			s, err := schedule.Build(src, dst)
			if err != nil {
				b.Fatal(err)
			}
			srcLocals := make([][]float64, np)
			dstLocals := make([][]float64, np)
			for r := 0; r < np; r++ {
				srcLocals[r] = make([]float64, src.LocalCount(r))
				dstLocals[r] = make([]float64, dst.LocalCount(r))
			}
			b.SetBytes(int64(perRank * 8)) // per-rank rate is the weak-scaling metric
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runParallel(b, 2*np, func(rank int, c *comm.Comm) error {
					lay := redist.Layout{SrcBase: 0, DstBase: np}
					var sl, dl []float64
					if rank < np {
						sl = srcLocals[rank]
					} else {
						dl = dstLocals[rank-np]
					}
					return redist.Exchange(c, s, lay, sl, dl, 0)
				})
			}
		})
	}
}
