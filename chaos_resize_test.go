package mxn

// Chaos soak tests for elastic malleability: a cohort is grown and then
// shrunk online while fenced transfers and exactly-once PRMI calls are in
// flight, and a rank is crashed in the middle of a migration window. The
// survivors must either complete on the new geometry, or abort/re-plan
// with typed errors — never hang, never mix epochs, never lose the
// exactly-once guarantee. Run via `make chaos` (and under -race in CI).

import (
	"errors"
	"sync"
	"testing"
	"time"

	"mxn/internal/comm"
	"mxn/internal/core"
	"mxn/internal/dad"
	"mxn/internal/faultconn"
	"mxn/internal/prmi"
	"mxn/internal/redist"
	"mxn/internal/schedule"
)

func blockTpl(t *testing.T, elems, width int) *dad.Template {
	t.Helper()
	tp, err := dad.NewTemplate([]int{elems}, []dad.AxisDist{dad.BlockAxis(width)})
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func fillChaos(tp *dad.Template) [][]float64 {
	locals := make([][]float64, tp.NumProcs())
	for r := range locals {
		locals[r] = make([]float64, tp.LocalCount(r))
	}
	n := tp.Dims()[0]
	for g := 0; g < n; g++ {
		owner := tp.OwnerOf([]int{g})
		locals[owner][tp.LocalOffset(owner, []int{g})] = chaosFingerprint(g)
	}
	return locals
}

func verifyChaos(t *testing.T, tp *dad.Template, locals [][]float64, what string) {
	t.Helper()
	n := tp.Dims()[0]
	for g := 0; g < n; g++ {
		owner := tp.OwnerOf([]int{g})
		off := tp.LocalOffset(owner, []int{g})
		if locals[owner] == nil {
			t.Fatalf("%s: rank %d has no buffer", what, owner)
		}
		if locals[owner][off] != chaosFingerprint(g) {
			t.Fatalf("%s: global %d on rank %d = %v, want %v",
				what, g, owner, locals[owner][off], chaosFingerprint(g))
		}
	}
}

// TestChaosResizeOnlineGrowShrink grows a 3-rank cohort to 5 and then
// shrinks it to 2, committing both resizes, while (a) an exactly-once
// PRMI counter keeps calling over a lossy link for the whole lifecycle,
// (b) an ordinary fenced exchange runs concurrently with each migration
// on the same ranks and epoch, and (c) the ranks leaving in the shrink
// detach their PRMI caller state before departing. Data must land
// bit-identically at every stage.
func TestChaosResizeOnlineGrowShrink(t *testing.T) {
	const (
		oldW, midW, finalW = 3, 5, 2
		elems              = 40
	)
	oldT := blockTpl(t, elems, oldW)
	midT, err := dad.Reblock(oldT, midW)
	if err != nil {
		t.Fatal(err)
	}
	finalT, err := dad.Reblock(midT, finalW)
	if err != nil {
		t.Fatal(err)
	}
	cycOld, err := dad.NewTemplate([]int{elems}, []dad.AxisDist{dad.CyclicAxis(oldW)})
	if err != nil {
		t.Fatal(err)
	}
	cycMid, err := dad.NewTemplate([]int{elems}, []dad.AxisDist{dad.CyclicAxis(midW)})
	if err != nil {
		t.Fatal(err)
	}

	// Exactly-once PRMI traffic over a lossy link, in flight for the whole
	// resize lifecycle: the retry machinery must never double-execute the
	// non-idempotent counter no matter how the scheduler interleaves it
	// with the migrations.
	port, count := chaosPRMI(t, faultconn.Scenario{
		Seed: 41,
		Send: faultconn.Faults{Drop: 0.2},
		Recv: faultconn.Faults{Drop: 0.2},
	})
	port.SetRetryPolicy(prmi.RetryPolicy{
		Timeout:     50 * time.Millisecond,
		MaxAttempts: 20,
		Backoff:     time.Millisecond,
	})
	stopPRMI := make(chan struct{})
	prmiCalls := make(chan int, 1)
	go func() {
		calls := 0
		for {
			select {
			case <-stopPRMI:
				prmiCalls <- calls
				return
			default:
			}
			res, err := port.CallIndependent(0, "bump", prmi.Simple("x", 1.0))
			if err != nil {
				t.Errorf("prmi call %d during resize: %v", calls+1, err)
				prmiCalls <- calls
				return
			}
			calls++
			if got := res.Return.(float64); got != float64(calls) {
				t.Errorf("prmi call %d returned count %v: retry re-executed across the resize", calls, got)
			}
		}
	}()

	mem := core.NewMembership(oldW)
	cache := schedule.NewCache()
	cur := make([][]float64, midW) // each rank's live payload, migrated in place
	copy(cur, fillChaos(oldT))

	var (
		rz1, rz2         *core.Resize
		prep1, commit1   = make(chan struct{}), make(chan struct{})
		prep2, commit2   = make(chan struct{}), make(chan struct{})
		round1WG, mig1WG sync.WaitGroup
		round2WG, mig2WG sync.WaitGroup
		serveDone        = make(chan error, 1)
		mu               sync.Mutex
	)
	round1WG.Add(oldW)
	mig1WG.Add(midW)
	round2WG.Add(midW)
	mig2WG.Add(midW)

	newFO := func() redist.FenceOpts {
		return redist.FenceOpts{Membership: mem, Policy: redist.FailStrict, PollInterval: time.Millisecond, Cache: cache}
	}
	iface := chaosIface(t)
	const prmiTag = 5000

	comm.Run(midW, func(c *comm.Comm) {
		r := c.Rank()

		// Round 1: steady-state fenced traffic on the old cohort.
		if r < oldW {
			scratch := make([]float64, cycOld.LocalCount(r))
			s, err := cache.Get(oldT, cycOld)
			if err != nil {
				t.Errorf("rank %d: %v", r, err)
			} else if _, err := redist.ExchangeFenced(c, s, redist.Layout{}, cur[r], scratch, 10, newFO()); err != nil {
				t.Errorf("rank %d round 1: %v", r, err)
			}
			round1WG.Done()
		}

		// Prepare the grow (coordinator), then migrate — with a second
		// fenced exchange deliberately in flight on the same ranks and
		// entry epoch, on its own tag.
		if r == 0 {
			round1WG.Wait()
			var err error
			rz1, err = mem.ProposeResize(midW)
			if err != nil {
				t.Fatalf("propose grow: %v", err)
			}
			close(prep1)
		}
		<-prep1

		var inflight sync.WaitGroup
		if r < oldW {
			inflight.Add(1)
			go func() {
				defer inflight.Done()
				scratch := make([]float64, cycOld.LocalCount(r))
				s, err := cache.Get(oldT, cycOld)
				if err != nil {
					t.Errorf("rank %d: %v", r, err)
					return
				}
				if _, err := redist.ExchangeFenced(c, s, redist.Layout{}, cur[r], scratch, 500, newFO()); err != nil {
					t.Errorf("rank %d concurrent exchange during grow: %v", r, err)
				}
			}()
		}
		var sl []float64
		if r < oldW {
			sl = cur[r]
		}
		dl := make([]float64, midT.LocalCount(r))
		out, err := redist.ReconfigureFenced(c, rz1, oldT, midT, redist.Layout{}, sl, dl, 100, newFO())
		if err != nil {
			t.Errorf("rank %d grow migration: %v", r, err)
		} else if out.Epoch != rz1.PrepareEpoch() {
			t.Errorf("rank %d entered grow at epoch %d, want %d", r, out.Epoch, rz1.PrepareEpoch())
		}
		inflight.Wait()
		mu.Lock()
		cur[r] = dl
		mu.Unlock()
		mig1WG.Done()

		if r == 0 {
			mig1WG.Wait()
			if rz1.Disturbed() {
				t.Error("clean grow window reported disturbed")
			}
			if _, err := redist.CommitReconfigure(rz1, cache, oldT); err != nil {
				t.Errorf("commit grow: %v", err)
			}
			close(commit1)
		}
		<-commit1

		// Round 2 on the grown cohort: all five ranks exchange.
		{
			scratch := make([]float64, cycMid.LocalCount(r))
			s, err := cache.Get(midT, cycMid)
			if err != nil {
				t.Errorf("rank %d: %v", r, err)
			} else if _, err := redist.ExchangeFenced(c, s, redist.Layout{}, cur[r], scratch, 20, newFO()); err != nil {
				t.Errorf("rank %d round 2: %v", r, err)
			}
			round2WG.Done()
		}

		// Prepare the shrink — only once every rank has drained round 2,
		// so the prepare fence cannot split a round's entry epochs. The
		// departing ranks (2..4) run PRMI caller ports against an endpoint
		// on rank 0 and detach before leaving; Serve must terminate once
		// all of them have departed.
		if r == 0 {
			round2WG.Wait()
			var err error
			rz2, err = mem.ProposeResize(finalW)
			if err != nil {
				t.Fatalf("propose shrink: %v", err)
			}
			go func() {
				ep := prmi.NewEndpoint(iface, prmi.NewCommLink(c, finalW, prmiTag), 0, 1, midW-finalW)
				ep.Handle("bump", func(in *prmi.Incoming, out *prmi.Outgoing) error {
					out.Return = in.Simple["x"].(float64)
					return nil
				})
				serveDone <- ep.Serve()
			}()
			close(prep2)
		}
		<-prep2

		if r >= finalW {
			p := prmi.NewCallerPort(iface, prmi.NewCommLink(c, 0, prmiTag), r-finalW, 1, 0)
			for k := 0; k < 3; k++ {
				if _, err := p.CallIndependent(0, "bump", prmi.Simple("x", float64(r))); err != nil {
					t.Errorf("leaving rank %d prmi call: %v", r, err)
				}
			}
			if err := p.Depart(); err != nil {
				t.Errorf("leaving rank %d depart: %v", r, err)
			}
		}

		var dl2 []float64
		if r < finalW {
			dl2 = make([]float64, finalT.LocalCount(r))
		}
		out2, err := redist.ReconfigureFenced(c, rz2, midT, finalT, redist.Layout{}, cur[r], dl2, 200, newFO())
		if err != nil {
			t.Errorf("rank %d shrink migration: %v", r, err)
		} else if out2.Epoch != rz2.PrepareEpoch() {
			t.Errorf("rank %d entered shrink at epoch %d, want %d", r, out2.Epoch, rz2.PrepareEpoch())
		}
		mu.Lock()
		cur[r] = dl2
		mu.Unlock()
		mig2WG.Done()

		if r == 0 {
			mig2WG.Wait()
			if _, err := redist.CommitReconfigure(rz2, cache, midT); err != nil {
				t.Errorf("commit shrink: %v", err)
			}
			close(commit2)
		}
		<-commit2
	})

	verifyChaos(t, finalT, cur, "post-shrink data")
	if mem.Width() != finalW {
		t.Fatalf("final width %d, want %d", mem.Width(), finalW)
	}
	if mem.Epoch() != 5 {
		t.Fatalf("final epoch %d, want 5 (two prepares + two commits)", mem.Epoch())
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("endpoint serve after departures: %v", err)
	}

	close(stopPRMI)
	calls := <-prmiCalls
	if calls == 0 {
		t.Fatal("no PRMI traffic was in flight during the resizes")
	}
	if got := count.Load(); got != int64(calls) {
		t.Fatalf("callee executed %d times for %d logical calls across the resizes", got, calls)
	}
}

// TestChaosResizeKilledMidMigration crashes an old-cohort rank inside the
// resize window, with heartbeats doing the detection. Under FailStrict
// the migration aborts with the typed rank-down error and the rollback
// restores the old width; under FailRedistribute it completes on the
// survivors with the losses recorded, and the coordinator commits anyway.
// Either way the window reports Disturbed and nothing deadlocks.
func TestChaosResizeKilledMidMigration(t *testing.T) {
	for _, tc := range []struct {
		name   string
		policy redist.FailPolicy
	}{
		{"strict", redist.FailStrict},
		{"redistribute", redist.FailRedistribute},
	} {
		t.Run(tc.name, func(t *testing.T) { runChaosResizeKill(t, tc.policy) })
	}
}

func runChaosResizeKill(t *testing.T, policy redist.FailPolicy) {
	const (
		oldW, newW = 4, 6
		elems      = 24
		victim     = 1
	)
	oldT := blockTpl(t, elems, oldW)
	newT, err := dad.Reblock(oldT, newW)
	if err != nil {
		t.Fatal(err)
	}
	mem := core.NewMembership(oldW)
	rz, err := mem.ProposeResize(newW)
	if err != nil {
		t.Fatal(err)
	}
	cache := schedule.NewCache()
	srcLocals := fillChaos(oldT)

	w := comm.NewWorld(newW)
	cs := w.Comms()
	cfg := core.HeartbeatConfig{Interval: 10 * time.Millisecond, MissThreshold: 8}
	peers := make([]int, newW)
	for i := range peers {
		peers[i] = i
	}

	dstLocals := make([][]float64, newW)
	outs := make([]*redist.Outcome, newW)
	errs := make([]error, newW)
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(newW)
	for r := 0; r < newW; r++ {
		go func(r int, c *comm.Comm) {
			defer wg.Done()
			hb, hbErr := core.StartHeartbeats(c, mem, cfg, peers)
			if hbErr != nil {
				panic(hbErr)
			}
			defer hb.Stop()
			if r == victim {
				// Crash inside the migration window: the victim's shard
				// never leaves, and its heartbeats go silent.
				time.Sleep(3 * cfg.Interval)
				w.Kill(victim)
				return
			}
			fo := redist.FenceOpts{
				Membership:   mem,
				Policy:       policy,
				PollInterval: 2 * time.Millisecond,
				Cache:        cache,
			}
			var sl []float64
			if r < oldW {
				sl = srcLocals[r]
			}
			dl := make([]float64, newT.LocalCount(r))
			out, xerr := redist.ReconfigureFenced(c, rz, oldT, newT, redist.Layout{}, sl, dl, 0, fo)
			mu.Lock()
			dstLocals[r] = dl
			outs[r] = out
			errs[r] = xerr
			mu.Unlock()
		}(r, cs[r])
	}
	wg.Wait()

	if mem.IsAlive(victim) {
		t.Fatal("heartbeats never detected the crashed rank")
	}
	if !rz.Disturbed() {
		t.Fatal("mid-window crash not reported by Disturbed")
	}

	switch policy {
	case redist.FailStrict:
		sawTyped := false
		for r := 0; r < newW; r++ {
			if r == victim {
				continue
			}
			var down *core.ErrRankDown
			if errors.As(errs[r], &down) {
				if down.Rank != victim {
					t.Errorf("rank %d: ErrRankDown.Rank = %d, want %d", r, down.Rank, victim)
				}
				sawTyped = true
			}
		}
		if !sawTyped {
			t.Fatal("no rank surfaced *core.ErrRankDown")
		}
		if _, err := redist.AbortReconfigure(rz, cache, newT); err != nil {
			t.Fatal(err)
		}
		if mem.Width() != oldW {
			t.Fatalf("aborted resize changed width to %d", mem.Width())
		}
	case redist.FailRedistribute:
		for r := 0; r < newW; r++ {
			if r == victim {
				continue
			}
			if errs[r] != nil {
				t.Fatalf("rank %d: re-plan should complete, got %v", r, errs[r])
			}
		}
		// Loss pattern: exactly the victim-owned shard is invalid on its
		// new owners; everything else landed bit-identically.
		for g := 0; g < elems; g++ {
			nr := newT.OwnerOf([]int{g})
			if nr == victim {
				continue
			}
			off := newT.LocalOffset(nr, []int{g})
			if oldT.OwnerOf([]int{g}) == victim {
				if outs[nr].Validity.Valid(off) {
					t.Errorf("global %d: lost element marked valid on rank %d", g, nr)
				}
				continue
			}
			if !outs[nr].Validity.Valid(off) {
				t.Errorf("global %d: delivered element marked invalid on rank %d", g, nr)
			}
			if dstLocals[nr][off] != chaosFingerprint(g) {
				t.Errorf("global %d on rank %d: got %v, want %v", g, nr, dstLocals[nr][off], chaosFingerprint(g))
			}
		}
		if _, err := redist.CommitReconfigure(rz, cache, oldT); err != nil {
			t.Fatal(err)
		}
		if mem.Width() != newW {
			t.Fatalf("committed width %d, want %d", mem.Width(), newW)
		}
	}
}
