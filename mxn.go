// Package mxn is a Go implementation of the parallel data redistribution
// and parallel remote method invocation (PRMI) middleware for parallel
// component architectures described in:
//
//	Bertrand, Bramley, Bernholdt, Kohl, Sussman, Larson, Damevski.
//	"Data Redistribution and Remote Method Invocation in Parallel
//	Component Architectures." IPPS/IPDPS 2005.
//
// The library solves the "M×N problem": two parallel programs — one on M
// processes, one on N — must exchange distributed data structures whose
// decompositions differ, and invoke methods on each other collectively.
//
// This root package is the public facade: it re-exports the library's
// types and constructors so downstream users need a single import. The
// implementation lives in focused subsystems:
//
//   - Distributed Array Descriptors (templates, per-axis and explicit
//     distributions, local layout math) — the paper's Section 2.2.2.
//   - Linearization, the alternative intermediate representation
//     (Section 2.2.1).
//   - Communication schedules: computed once, reused across transfers
//     and across conforming arrays (Section 2.3).
//   - Redistribution executors, including the generalized M×N component
//     with registration, one-shot and persistent connections, and
//     matched DataReady semantics (Section 4.1).
//   - PRMI: independent/collective/one-way invocations declared in a
//     small scientific IDL, ghost invocations and returns for M≠N,
//     parallel arguments redistributed automatically, and both delivery
//     strategies of the paper's Figure 5 (Section 2.4).
//   - Robustness beyond the paper: heartbeat liveness with shared
//     membership epochs, epoch-fenced transfers with strict and
//     redistribute failure policies, exactly-once PRMI, and online
//     cohort resize (grow/shrink) via a two-phase epoch-fenced
//     migration protocol.
//   - The surveyed implementations rebuilt on the same substrates:
//     SCIRun2-style IDL-driven framework, the MPI-flavoured DCA,
//     InterComm's timestamp-coordinated import/export, the Model Coupling
//     Toolkit layer, and CUMULVS-style visualization/steering
//     (Section 4, Figure 4).
//
// An MPI-like in-process runtime (ranks as goroutines, tagged messages,
// collectives) substitutes for MPI so the whole system runs and is
// testable on one machine; a TCP transport serves genuinely distributed
// deployments.
package mxn

import (
	"mxn/internal/comm"
	"mxn/internal/core"
	"mxn/internal/dad"
	"mxn/internal/linear"
	"mxn/internal/prmi"
	"mxn/internal/redist"
	"mxn/internal/schedule"
	"mxn/internal/session"
	"mxn/internal/sidl"
	"mxn/internal/transport"
)

// ---- Parallel runtime (MPI substitute) ----

// Comm is one rank's communicator handle: tagged point-to-point messages
// plus barrier/bcast/gather/allgather/reduce/alltoallv collectives.
type Comm = comm.Comm

// World is a fixed set of ranks that can exchange messages.
type World = comm.World

// NewWorld creates a world with n ranks.
func NewWorld(n int) *World { return comm.NewWorld(n) }

// Run spawns n goroutine ranks over a fresh world and blocks until all
// return — the standard way to stand up a parallel cohort.
func Run(n int, body func(c *Comm)) { comm.Run(n, body) }

// Wildcards for Comm.Recv.
const (
	AnySource = comm.AnySource
	AnyTag    = comm.AnyTag
)

// ---- Distributed Array Descriptors ----

// Template describes the logical distribution of a global index space
// over a process grid (or an explicit patch tiling).
type Template = dad.Template

// AxisDist is one axis's distribution.
type AxisDist = dad.AxisDist

// Patch is an axis-aligned rectangle of global index space owned by one
// rank.
type Patch = dad.Patch

// Descriptor is a registered distributed array: name, element kind,
// access mode and template.
type Descriptor = dad.Descriptor

// Access is a field's allowed transfer directions.
type Access = dad.Access

// Access modes.
const (
	ReadOnly  = dad.ReadOnly
	WriteOnly = dad.WriteOnly
	ReadWrite = dad.ReadWrite
)

// ElemKind is a distributed array's element type.
type ElemKind = dad.ElemKind

// Element kinds.
const (
	Float64    = dad.Float64
	Float32    = dad.Float32
	Int64      = dad.Int64
	Int32      = dad.Int32
	Byte       = dad.Byte
	Complex128 = dad.Complex128
)

// NewTemplate builds a regular template from per-axis distributions.
func NewTemplate(dims []int, axes []AxisDist) (*Template, error) { return dad.NewTemplate(dims, axes) }

// NewExplicitTemplate builds a template from an arbitrary non-overlapping
// patch tiling.
func NewExplicitTemplate(dims []int, nprocs int, patches []Patch) (*Template, error) {
	return dad.NewExplicitTemplate(dims, nprocs, patches)
}

// NewDescriptor builds a validated descriptor.
func NewDescriptor(name string, elem ElemKind, mode Access, t *Template) (*Descriptor, error) {
	return dad.NewDescriptor(name, elem, mode, t)
}

// NewPatch builds a patch with copied bounds.
func NewPatch(lo, hi []int, owner int) Patch { return dad.NewPatch(lo, hi, owner) }

// Per-axis distribution constructors.
var (
	CollapsedAxis   = dad.CollapsedAxis
	BlockAxis       = dad.BlockAxis
	CyclicAxis      = dad.CyclicAxis
	BlockCyclicAxis = dad.BlockCyclicAxis
	GenBlockAxis    = dad.GenBlockAxis
	ImplicitAxis    = dad.ImplicitAxis
)

// ---- Communication schedules ----

// Schedule is a redistribution plan between two conforming templates:
// per rank pair, the contiguous runs to move between local buffers.
type Schedule = schedule.Schedule

// ScheduleCache memoizes schedules by template pair.
type ScheduleCache = schedule.Cache

// BuildSchedule computes the redistribution schedule from src to dst.
func BuildSchedule(src, dst *Template) (*Schedule, error) { return schedule.Build(src, dst) }

// NewScheduleCache returns an empty schedule cache.
func NewScheduleCache() *ScheduleCache { return schedule.NewCache() }

// ---- Redistribution executors ----

// Layout places the two cohorts of a transfer within one communicator
// group.
type Layout = redist.Layout

// Exchange performs one schedule-driven parallel transfer; every rank of
// both cohorts calls it.
func Exchange(c *Comm, s *Schedule, lay Layout, srcLocal, dstLocal []float64, baseTag int) error {
	return redist.Exchange(c, s, lay, srcLocal, dstLocal, baseTag)
}

// TransferOpts tunes a transfer's resource envelope. Setting
// MaxBytesInFlight bounds the packed bytes a rank holds resident at
// once: the transfer moves in acknowledged rounds of chunks instead of
// materializing every pairwise message, with identical destination
// contents. Every rank of one transfer must pass the same value.
type TransferOpts = redist.TransferOpts

// ExchangeWith is Exchange with explicit transfer options (for example
// a MaxBytesInFlight memory budget).
func ExchangeWith(c *Comm, s *Schedule, lay Layout, srcLocal, dstLocal []float64, baseTag int, opts TransferOpts) error {
	return redist.ExchangeWith(c, s, lay, srcLocal, dstLocal, baseTag, opts)
}

// ExecuteLocal runs a whole schedule in one goroutine (reference
// executor).
func ExecuteLocal(s *Schedule, srcLocals, dstLocals [][]float64) {
	redist.ExecuteLocal(s, srcLocals, dstLocals)
}

// Redistribute is the one-call convenience API: build (or reuse) the
// schedule for (src, dst) and move srcLocals into dstLocals locally.
func Redistribute(src, dst *Template, srcLocals, dstLocals [][]float64) error {
	s, err := schedule.Build(src, dst)
	if err != nil {
		return err
	}
	redist.ExecuteLocal(s, srcLocals, dstLocals)
	return nil
}

// ---- Generic transfers ----

// Elem constrains the element types the transfer engine moves natively:
// float64, float32, int64, int32 and complex128. All transfer variants are
// instantiations of one engine; the element size flows from the type
// parameter through packing to the raw-byte message payloads.
type Elem = redist.Elem

// ExchangeT is Exchange for any supported element type.
func ExchangeT[T Elem](c *Comm, s *Schedule, lay Layout, srcLocal, dstLocal []T, baseTag int) error {
	return redist.ExchangeT(c, s, lay, srcLocal, dstLocal, baseTag)
}

// ExchangeWithT is ExchangeWith for any supported element type.
func ExchangeWithT[T Elem](c *Comm, s *Schedule, lay Layout, srcLocal, dstLocal []T, baseTag int, opts TransferOpts) error {
	return redist.ExchangeWithT(c, s, lay, srcLocal, dstLocal, baseTag, opts)
}

// ExecuteLocalT is ExecuteLocal for any supported element type.
func ExecuteLocalT[T Elem](s *Schedule, srcLocals, dstLocals [][]T) {
	redist.ExecuteLocalT(s, srcLocals, dstLocals)
}

// RedistributeT is Redistribute for any supported element type.
func RedistributeT[T Elem](src, dst *Template, srcLocals, dstLocals [][]T) error {
	s, err := schedule.Build(src, dst)
	if err != nil {
		return err
	}
	redist.ExecuteLocalT(s, srcLocals, dstLocals)
	return nil
}

// LinearExchangeT is LinearExchange for any supported element type; build
// the linearizers with RowMajorLinearizationT.
func LinearExchangeT[T Elem](c *Comm, srcLin, dstLin linear.LinearizerT[T], lay Layout, nSrc, nDst int,
	srcLocal, dstLocal []T, baseTag int) error {
	return redist.LinearExchangeT(c, srcLin, dstLin, lay, nSrc, nDst, srcLocal, dstLocal, baseTag)
}

// RowMajorLinearizationT linearizes a template by global row-major order
// for any supported element type.
func RowMajorLinearizationT[T Elem](t *Template) linear.LinearizerT[T] {
	return linear.NewRowMajorT[T](t)
}

// ---- Linearization ----

// Linearizer maps distributed data to the abstract one-dimensional
// intermediate representation.
type Linearizer = linear.Linearizer

// RowMajorLinearization linearizes a template by global row-major order.
func RowMajorLinearization(t *Template) Linearizer { return linear.NewRowMajor(t) }

// LinearExchange performs a receiver-driven transfer with no
// communication schedule (the Meta-Chaos / Indiana MPI-IO approach).
func LinearExchange(c *Comm, srcLin, dstLin Linearizer, lay Layout, nSrc, nDst int,
	srcLocal, dstLocal []float64, baseTag int) error {
	return redist.LinearExchange(c, srcLin, dstLin, lay, nSrc, nDst, srcLocal, dstLocal, baseTag)
}

// ---- The M×N component (the paper's Section 4.1) ----

// Hub is one side's M×N component: field registration plus connection
// negotiation over a bridge.
type Hub = core.Hub

// Connection is an established M×N coupling; DataReady performs matched
// transfers.
type Connection = core.Connection

// Bridge is the out-of-band channel between paired M×N components.
type Bridge = core.Bridge

// ConnOpts configures a connection (persistence, synchronization).
type ConnOpts = core.ConnOpts

// Direction tells which role the local field plays.
type Direction = core.Direction

// Connection roles and synchronization options.
const (
	AsSource      = core.AsSource
	AsDestination = core.AsDestination
	SyncEachFrame = core.SyncEachFrame
	FreeRunning   = core.FreeRunning
)

// ErrChannelClosed reports a persistent stream closed by its source.
var ErrChannelClosed = core.ErrChannelClosed

// NewHub creates an M×N component cohort attached to a bridge end.
func NewHub(name string, np int, bridge Bridge) *Hub { return core.NewHub(name, np, bridge) }

// BridgePair returns an in-memory bridge for co-located frameworks
// (Figure 3).
func BridgePair() (a, b Bridge) { return core.BridgePair() }

// NewNetBridge wraps a transport connection end as a bridge.
func NewNetBridge(conn transport.Conn) Bridge { return core.NewNetBridge(conn) }

// ConnectHubs is third-party connection initiation between two co-located
// hubs.
func ConnectHubs(connID string, src *Hub, srcField string, dst *Hub, dstField string, opts ConnOpts) (srcConn, dstConn *Connection, err error) {
	return core.Connect(connID, src, srcField, dst, dstField, opts)
}

// ---- Transport ----

// Conn is a reliable ordered message connection between frameworks.
type Conn = transport.Conn

// Listener accepts incoming transport connections.
type Listener = transport.Listener

// Listen opens a listener on "inproc" or "tcp".
func Listen(network, addr string) (Listener, error) { return transport.Listen(network, addr) }

// Dial connects to a listener.
func Dial(network, addr string) (Conn, error) { return transport.Dial(network, addr) }

// Pipe returns a connected in-memory transport pair.
func Pipe() (Conn, Conn) { return transport.Pipe() }

// ---- Session layer ----

// SessionConfig tunes a resumable session; the zero value selects the
// defaults documented on each field.
type SessionConfig = session.Config

// SessionListener accepts resumable sessions. Accept yields each
// session exactly once; a reconnecting peer is absorbed into its
// existing session silently.
type SessionListener = session.Listener

// ErrPeerLost reports a session whose per-outage reconnect budget was
// exhausted: the link stayed down past MaxAttempts/MaxElapsed and the
// circuit is open. The concrete error is *session.PeerLostError, which
// also matches transport's ErrClosed.
var ErrPeerLost = session.ErrPeerLost

// DialSession connects a resumable exactly-once session to a
// WrapSessionListener peer. The returned Conn transparently redials
// (jittered exponential backoff) and replays unacknowledged messages
// across physical connection loss, so everything layered on it — a net
// bridge, a PRMI link, a ConnectPeer coupling — survives link flaps.
func DialSession(network, addr string, cfg SessionConfig) (Conn, error) {
	return session.Dial(network, addr, cfg)
}

// WrapSessionListener layers session resumption over any listener.
func WrapSessionListener(inner Listener, cfg SessionConfig) *SessionListener {
	return session.WrapListener(inner, cfg)
}

// ---- SIDL and PRMI ----

// SIDLPackage is a parsed scientific-IDL source unit.
type SIDLPackage = sidl.Package

// SIDLInterface is one declared port interface with PRMI attributes.
type SIDLInterface = sidl.Interface

// ParseSIDL parses scientific-IDL source with the paper's PRMI
// extensions (collective/independent/oneway methods, parallel array
// parameters).
func ParseSIDL(src string) (*SIDLPackage, error) { return sidl.Parse(src) }

// CallerPort is a caller rank's proxy for a remote parallel port.
type CallerPort = prmi.CallerPort

// Endpoint is a callee rank's server for a remote parallel port.
type Endpoint = prmi.Endpoint

// Incoming and Outgoing are the callee-side views of one invocation.
type (
	Incoming = prmi.Incoming
	Outgoing = prmi.Outgoing
)

// Handler services one method at one callee rank.
type Handler = prmi.Handler

// Participation declares which caller ranks take part in a collective
// invocation.
type Participation = prmi.Participation

// Arg is one named invocation argument.
type Arg = prmi.Arg

// Result is a non-oneway invocation's outcome.
type Result = prmi.Result

// DeliveryMode selects eager or barrier-delayed invocation delivery
// (Figure 5).
type DeliveryMode = prmi.DeliveryMode

// Delivery modes.
const (
	Eager          = prmi.Eager
	BarrierDelayed = prmi.BarrierDelayed
)

// ErrStalled reports a collective invocation stalled waiting for
// participants — the observable Figure 5 deadlock.
var ErrStalled = prmi.ErrStalled

// Link carries PRMI messages between the two sides of a port connection.
type Link = prmi.Link

// NewCallerPort builds a caller-side port proxy.
func NewCallerPort(iface *SIDLInterface, link Link, rank, nCallee int, mode DeliveryMode) *CallerPort {
	return prmi.NewCallerPort(iface, link, rank, nCallee, mode)
}

// NewEndpoint builds a callee-rank server.
func NewEndpoint(iface *SIDLInterface, link Link, rank, nCallee, nCaller int) *Endpoint {
	return prmi.NewEndpoint(iface, link, rank, nCallee, nCaller)
}

// NewCommLink builds a PRMI link over a shared communicator.
func NewCommLink(c *Comm, peerBase, tag int) Link { return prmi.NewCommLink(c, peerBase, tag) }

// NewConnLink builds a PRMI link over a mesh of transport connections.
func NewConnLink(conns []Conn, myRank int) Link { return prmi.NewConnLink(conns, myRank) }

// Simple builds a simple (replicated) argument.
func Simple(name string, v any) Arg { return prmi.Simple(name, v) }

// Parallel builds a parallel (decomposed, redistributed) argument.
func Parallel(name string, t *Template, local []float64) Arg { return prmi.Parallel(name, t, local) }

// FullParticipation declares that every caller cohort rank participates.
func FullParticipation(cohort *Comm) Participation { return prmi.FullParticipation(cohort) }

// ---- Liveness, fenced transfers and malleability ----

// Membership is a cohort's shared liveness and epoch view: which ranks
// are alive, the current configuration epoch, and — for malleable
// cohorts — the active width within the rank universe.
type Membership = core.Membership

// ErrRankDown is the typed error for operations touching a dead rank.
type ErrRankDown = core.ErrRankDown

// NewMembership creates an all-alive membership of n ranks at epoch 1.
func NewMembership(n int) *Membership { return core.NewMembership(n) }

// HeartbeatConfig tunes the failure detector; HeartbeatConfigError is the
// typed rejection for non-positive intervals or thresholds.
type (
	HeartbeatConfig      = core.HeartbeatConfig
	HeartbeatConfigError = core.HeartbeatConfigError
	Heartbeater          = core.Heartbeater
)

// DefaultHeartbeatConfig returns the standard detector tuning.
func DefaultHeartbeatConfig() HeartbeatConfig { return core.DefaultHeartbeatConfig() }

// StartHeartbeats runs a heartbeat failure detector for this rank,
// marking peers down in the membership after missed beats.
func StartHeartbeats(c *Comm, m *Membership, cfg HeartbeatConfig, peers []int) (*Heartbeater, error) {
	return core.StartHeartbeats(c, m, cfg, peers)
}

// FenceOpts ties a transfer to a membership epoch; FailPolicy selects
// abort (FailStrict) versus re-plan over survivors (FailRedistribute).
type (
	FenceOpts  = redist.FenceOpts
	FailPolicy = redist.FailPolicy
)

// Failure policies.
const (
	FailStrict       = redist.FailStrict
	FailRedistribute = redist.FailRedistribute
)

// FenceOutcome reports a fenced transfer's entry epoch, the dead ranks it
// observed, and per-element validity under FailRedistribute.
type FenceOutcome = redist.Outcome

// ExchangeFenced is Exchange under a liveness view: the transfer enters
// at the membership's current epoch, cross-epoch traffic is discarded or
// fails typed, and rank death mid-transfer applies the failure policy.
func ExchangeFenced(c *Comm, s *Schedule, lay Layout, srcLocal, dstLocal []float64, baseTag int, opts FenceOpts) (*FenceOutcome, error) {
	return redist.ExchangeFenced(c, s, lay, srcLocal, dstLocal, baseTag, opts)
}

// ExchangeFencedT is ExchangeFenced for any supported element type.
func ExchangeFencedT[T Elem](c *Comm, s *Schedule, lay Layout, srcLocal, dstLocal []T, baseTag int, opts FenceOpts) (*FenceOutcome, error) {
	return redist.ExchangeFencedT(c, s, lay, srcLocal, dstLocal, baseTag, opts)
}

// RestrictSchedule drops a schedule's messages touching dead ranks — the
// re-plan under FailRedistribute.
func RestrictSchedule(s *Schedule, aliveSrc, aliveDst func(rank int) bool) *Schedule {
	return schedule.Restrict(s, aliveSrc, aliveDst)
}

// Resize is a two-phase cohort resize in flight: propose → migrate →
// Commit or Abort. ResizeInProgressError and ResizeStateError are its
// typed rejections (overlapping proposals, reused handles).
type (
	Resize                = core.Resize
	ResizeInProgressError = core.ResizeInProgressError
	ResizeStateError      = core.ResizeStateError
)

// ReblockError is the typed rejection for layouts that cannot be
// re-derived over a new width (implicit owner maps, explicit tilings).
type ReblockError = dad.ReblockError

// Reblock re-derives a template's distribution over a new cohort width,
// preserving each axis's distribution family.
func Reblock(t *Template, newWidth int) (*Template, error) { return dad.Reblock(t, newWidth) }

// ReblockGrid is Reblock with an explicit per-axis process grid.
func ReblockGrid(t *Template, newGrid []int) (*Template, error) { return dad.ReblockGrid(t, newGrid) }

// RemapSchedule plans the old-cohort→new-cohort migration between two
// same-shape templates (the resize counterpart of BuildSchedule).
func RemapSchedule(old, next *Template) (*Schedule, error) { return schedule.Remap(old, next) }

// ExpandSchedule renumbers a schedule's cohort ranks into a wider
// universe — the inverse direction of RestrictSchedule.
func ExpandSchedule(s *Schedule, newSrc, newDst *Template, srcMap, dstMap []int) (*Schedule, error) {
	return schedule.Expand(s, newSrc, newDst, srcMap, dstMap)
}

// ReconfigureError is the typed rejection for invalid reconfiguration
// calls (nil handle, width mismatches, undersized groups).
type ReconfigureError = redist.ReconfigureError

// ReconfigureFenced migrates one array from its old layout to the new
// one inside a proposed resize's epoch window, pinned to the prepare
// epoch so concurrent old-epoch traffic drains or fails typed.
func ReconfigureFenced(c *Comm, rz *Resize, oldT, newT *Template, lay Layout, srcLocal, dstLocal []float64, baseTag int, opts FenceOpts) (*FenceOutcome, error) {
	return redist.ReconfigureFenced(c, rz, oldT, newT, lay, srcLocal, dstLocal, baseTag, opts)
}

// ReconfigureFencedT is ReconfigureFenced for any supported element type.
func ReconfigureFencedT[T Elem](c *Comm, rz *Resize, oldT, newT *Template, lay Layout, srcLocal, dstLocal []T, baseTag int, opts FenceOpts) (*FenceOutcome, error) {
	return redist.ReconfigureFencedT(c, rz, oldT, newT, lay, srcLocal, dstLocal, baseTag, opts)
}

// CommitReconfigure commits a resize (the new width becomes current) and
// drops the retired old-geometry plans from the cache.
func CommitReconfigure(rz *Resize, cache *ScheduleCache, oldTemplates ...*Template) (int, error) {
	return redist.CommitReconfigure(rz, cache, oldTemplates...)
}

// AbortReconfigure rolls a resize back (the old width stays current) and
// drops the never-adopted new-geometry plans from the cache.
func AbortReconfigure(rz *Resize, cache *ScheduleCache, newTemplates ...*Template) (int, error) {
	return redist.AbortReconfigure(rz, cache, newTemplates...)
}

// ---- Pipelines (Section 6: composed redistributions and filters) ----

// ComposeSchedules fuses two schedules A→B and B→C into one A→C plan with
// no intermediate materialization (the paper's "super-component").
func ComposeSchedules(s1, s2 *Schedule) (*Schedule, error) { return schedule.Compose(s1, s2) }

// ParallelRef builds a parallel in-argument passed by reference: the data
// stays on the caller until the callee specifies its layout and pulls it
// (the paper's delayed-transfer strategy for callee-side layouts).
func ParallelRef(name string, t *Template, local []float64) Arg {
	return prmi.ParallelRef(name, t, local)
}
