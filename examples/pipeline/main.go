// Pipeline: the paper's Section 6 composition story, executable.
//
// A simulation produces a temperature field in kelvin on 6 ranks
// (block-decomposed). Downstream, an analysis component wants the field
// in °C on 4 ranks (cyclic), and a visualization component wants it
// normalized to [0,1] on 2 ranks (block). That is a pipeline of two
// filters (unit conversion, normalization) interleaved with two
// redistributions.
//
// The pipeline runs both ways:
//
//   - chained: materialize at every stage — one redistribution + one
//     filter pass per stage;
//   - fused: the "super-component" — all schedules composed into one
//     direct source→sink plan, all elementwise filters composed into one
//     pass at the sink.
//
// Outputs are identical; the fused plan moves the data once.
//
// Run:
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"log"
	"time"

	"mxn"
	"mxn/internal/pipeline"
)

const n = 1 << 16

func main() {
	src, err := mxn.NewTemplate([]int{n}, []mxn.AxisDist{mxn.BlockAxis(6)})
	if err != nil {
		log.Fatal(err)
	}
	analysis, err := mxn.NewTemplate([]int{n}, []mxn.AxisDist{mxn.CyclicAxis(4)})
	if err != nil {
		log.Fatal(err)
	}
	viz, err := mxn.NewTemplate([]int{n}, []mxn.AxisDist{mxn.BlockAxis(2)})
	if err != nil {
		log.Fatal(err)
	}

	kelvinToCelsius := func(x float64) float64 { return x - 273.15 }
	normalize := func(x float64) float64 { return x / 100 }

	p, err := pipeline.New(src,
		pipeline.Stage{Template: analysis, Filter: kelvinToCelsius},
		pipeline.Stage{Template: viz, Filter: normalize},
	)
	if err != nil {
		log.Fatal(err)
	}

	// Source data: a smooth temperature profile in kelvin.
	in := make([][]float64, src.NumProcs())
	for r := range in {
		in[r] = make([]float64, src.LocalCount(r))
	}
	for g := 0; g < n; g++ {
		r := src.OwnerOf([]int{g})
		in[r][src.LocalOffset(r, []int{g})] = 273.15 + 50*float64(g)/float64(n)
	}

	// Warm both paths (schedules built and cached), then time steady-state
	// runs so the comparison is movement-vs-movement.
	chained, err := p.RunChained(in)
	if err != nil {
		log.Fatal(err)
	}
	fusedSched, _, err := p.Fuse()
	if err != nil {
		log.Fatal(err)
	}
	fused, err := p.RunFused(in)
	if err != nil {
		log.Fatal(err)
	}
	const iters = 20
	chainedStart := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := p.RunChained(in); err != nil {
			log.Fatal(err)
		}
	}
	chainedTime := time.Since(chainedStart) / iters
	fusedStart := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := p.RunFused(in); err != nil {
			log.Fatal(err)
		}
	}
	fusedTime := time.Since(fusedStart) / iters

	// The two paths must agree exactly.
	diff := 0
	for r := range chained {
		for k := range chained[r] {
			if chained[r][k] != fused[r][k] {
				diff++
			}
		}
	}
	fmt.Printf("pipeline: %d elements through 2 redistributions + 2 filters (K → °C → normalized)\n", n)
	fmt.Printf("  chained execution:  %8s  (materializes 2 intermediate copies)\n", chainedTime.Round(time.Microsecond))
	fmt.Printf("  fused execution:    %8s  (%d messages, one data movement, one filter pass)\n",
		fusedTime.Round(time.Microsecond), fusedSched.NumMessages())
	fmt.Printf("  outputs identical:  %v (%d differing elements)\n", diff == 0, diff)
	sample := fused[0][0]
	fmt.Printf("  spot check: sink[0] = %.4f (source 273.15 K → 0 °C → 0.0000)\n", sample)
}
