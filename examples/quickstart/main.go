// Quickstart: the paper's Figure 1 scenario end to end.
//
// One parallel program holds a 3-D field decomposed over M=8 processes
// (a 2×2×2 block grid); a second program wants the same field on N=27
// processes (3×3×3). The library computes the communication schedule from
// the two distributed-array descriptors and moves every element with
// independent pairwise messages — no barriers, no central data manager.
//
// Run:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sync"

	"mxn"
)

func main() {
	const nx, ny, nz = 60, 60, 60
	const m, n = 8, 27

	// Describe both sides' decompositions with DAD templates.
	src, err := mxn.NewTemplate([]int{nx, ny, nz},
		[]mxn.AxisDist{mxn.BlockAxis(2), mxn.BlockAxis(2), mxn.BlockAxis(2)})
	if err != nil {
		log.Fatal(err)
	}
	dst, err := mxn.NewTemplate([]int{nx, ny, nz},
		[]mxn.AxisDist{mxn.BlockAxis(3), mxn.BlockAxis(3), mxn.BlockAxis(3)})
	if err != nil {
		log.Fatal(err)
	}

	// The communication schedule is computed once from the two templates
	// and is reusable for every array that conforms to them.
	sched, err := mxn.BuildSchedule(src, dst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("schedule: %d pairwise messages move %d elements (M=%d → N=%d)\n",
		sched.NumMessages(), sched.TotalElems(), m, n)

	// Stand up both cohorts in one world: ranks [0,8) are the source
	// program, ranks [8,35) the destination.
	dstLocals := make([][]float64, n)
	var mu sync.Mutex
	mxn.Run(m+n, func(c *mxn.Comm) {
		lay := mxn.Layout{SrcBase: 0, DstBase: m}
		var srcLocal, dstLocal []float64
		if c.Rank() < m {
			// Source rank: fill the local portion with a global
			// fingerprint value so the transfer is verifiable.
			srcLocal = make([]float64, src.LocalCount(c.Rank()))
			fill(src, c.Rank(), srcLocal)
		} else {
			dstLocal = make([]float64, dst.LocalCount(c.Rank()-m))
		}
		if err := mxn.Exchange(c, sched, lay, srcLocal, dstLocal, 0); err != nil {
			log.Fatalf("rank %d: %v", c.Rank(), err)
		}
		if dstLocal != nil {
			mu.Lock()
			dstLocals[c.Rank()-m] = dstLocal
			mu.Unlock()
		}
	})

	// Verify every element landed at its owner with its value intact.
	bad := 0
	forEach(nx, ny, nz, func(i, j, k int) {
		idx := []int{i, j, k}
		r := dst.OwnerOf(idx)
		if dstLocals[r][dst.LocalOffset(r, idx)] != value(i, j, k) {
			bad++
		}
	})
	if bad != 0 {
		log.Fatalf("%d elements corrupted", bad)
	}
	fmt.Printf("verified: all %d elements redistributed correctly\n", nx*ny*nz)
}

// value is the global fingerprint of an index.
func value(i, j, k int) float64 { return float64(i)*1e6 + float64(j)*1e3 + float64(k) }

// fill writes the fingerprint of every owned index into the local buffer.
func fill(t *mxn.Template, rank int, local []float64) {
	dims := t.Dims()
	forEach(dims[0], dims[1], dims[2], func(i, j, k int) {
		idx := []int{i, j, k}
		if t.OwnerOf(idx) == rank {
			local[t.LocalOffset(rank, idx)] = value(i, j, k)
		}
	})
}

func forEach(nx, ny, nz int, fn func(i, j, k int)) {
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			for k := 0; k < nz; k++ {
				fn(i, j, k)
			}
		}
	}
}
