// Steering: CUMULVS-style interactive visualization and computational
// steering of a running parallel simulation.
//
// A 2-D heat-equation solver runs on 4 ranks. A front-end "viewer"
// attaches over the out-of-band bridge, opens a decimated view of the
// temperature field (a persistent parallel data channel with free-running
// synchronization — the viewer samples the newest frame and never slows
// the simulation), renders ASCII snapshots, and steers the diffusivity
// parameter mid-run. A service goroutine on the simulation side handles
// viewer control traffic; the solver cohort reads the steering registry
// each step, so changes take effect live.
//
// Run:
//
//	go run ./examples/steering
package main

import (
	"errors"
	"fmt"
	"log"
	"strings"
	"sync"

	"mxn"
	"mxn/internal/cumulvs"
	"mxn/internal/meshsim"
)

const (
	gridN  = 64
	np     = 4
	steps  = 400
	stride = 4
)

func main() {
	solver, err := meshsim.NewHeat2D(gridN, np)
	if err != nil {
		log.Fatal(err)
	}
	simSide, viewSide := mxn.BridgePair()
	sim := cumulvs.NewSim(np, simSide)
	desc, err := mxn.NewDescriptor("temperature", mxn.Float64, mxn.ReadOnly, solver.Template())
	if err != nil {
		log.Fatal(err)
	}
	if err := sim.RegisterField(desc); err != nil {
		log.Fatal(err)
	}
	if err := sim.RegisterParam("alpha", 0.05); err != nil {
		log.Fatal(err)
	}

	// The simulation's service loop: handles view requests, steering
	// updates and the stop notice concurrently with the solver.
	go func() {
		for {
			cont, err := sim.Service(1)
			if err != nil {
				log.Fatalf("service: %v", err)
			}
			if !cont {
				return
			}
		}
	}()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		runViewer(viewSide)
	}()

	// The solver cohort: every rank steps and posts frames; rank 0 reads
	// the steered parameter and broadcasts it so the cohort stays
	// consistent within a step.
	mxn.Run(np, func(c *mxn.Comm) {
		rank := c.Rank()
		u := solver.Init(rank)
		for step := 0; step < steps; step++ {
			var alpha float64
			if rank == 0 {
				alpha, _ = sim.Param("alpha")
			}
			alpha = c.Bcast(0, alpha).(float64)
			u = solver.Step(c, rank, u, alpha, 0)
			if err := sim.PostFrame("temperature", rank, u); err != nil {
				log.Fatalf("rank %d: %v", rank, err)
			}
		}
		if err := sim.CloseFrames("temperature", rank); err != nil {
			log.Fatalf("rank %d: %v", rank, err)
		}
	})
	wg.Wait()
}

// runViewer attaches, watches, steers, and renders.
func runViewer(bridge mxn.Bridge) {
	viewer := cumulvs.NewViewer(bridge)
	ch, err := viewer.OpenView("main", cumulvs.View{
		Field:  "temperature",
		Stride: []int{stride, stride},
		Sync:   cumulvs.Latest,
	})
	if err != nil {
		log.Fatal(err)
	}
	frame := make([]float64, ch.FrameLen())
	dims := ch.Dims()

	epoch, err := ch.NextFrame(frame)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("frame at epoch %d (alpha=0.05):\n%s\n", epoch, render(frame, dims))
	peakBefore, totalBefore := peak(frame), total(frame)

	// Steer the diffusivity up mid-run; heat should spread visibly
	// faster afterwards.
	if err := viewer.SetParam("alpha", 0.24); err != nil {
		log.Fatal(err)
	}
	// Sample until the simulation closes the stream, keeping the last
	// complete frame.
	lastFrame := make([]float64, len(frame))
	var last uint64
	for {
		epoch, err = ch.NextFrame(frame)
		if errors.Is(err, cumulvs.ErrStreamEnded) {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		last = epoch
		copy(lastFrame, frame)
	}
	fmt.Printf("frame at epoch %d (after steering alpha to 0.24):\n%s\n", last, render(lastFrame, dims))
	fmt.Printf("diffusion accelerated: peak %.1f → %.1f (interior heat %.0f → %.0f leaks through the cold boundary)\n",
		peakBefore, peak(lastFrame), totalBefore, total(lastFrame))
	if err := viewer.Stop(); err != nil {
		log.Fatal(err)
	}
}

func total(f []float64) float64 {
	s := 0.0
	for _, v := range f {
		s += v
	}
	return s
}

func peak(f []float64) float64 {
	m := 0.0
	for _, v := range f {
		if v > m {
			m = v
		}
	}
	return m
}

// render maps the frame to ASCII shades.
func render(frame []float64, dims []int) string {
	shades := " .:-=+*#%@"
	maxV := peak(frame)
	if maxV == 0 {
		maxV = 1
	}
	var b strings.Builder
	for i := 0; i < dims[0]; i++ {
		for j := 0; j < dims[1]; j++ {
			v := frame[i*dims[1]+j] / maxV
			k := int(v * float64(len(shades)-1))
			if k >= len(shades) {
				k = len(shades) - 1
			}
			b.WriteByte(shades[k])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
