// Climate coupling: the Model Coupling Toolkit scenario of the paper's
// Section 4.5, scaled to a laptop.
//
// A toy atmosphere on a fine 24×48 lat-lon grid runs on 4 ranks; a toy
// ocean on a coarse 12×24 grid runs on 2 ranks. Every coupling interval:
//
//  1. the atmosphere accumulates its fields over 4 internal steps (the
//     MCT Accumulator),
//  2. a Router transfers the time-averaged multi-field AttrVect to the
//     ocean ranks with the fine grid redistributed to the ocean's
//     decomposition,
//  3. the ocean interpolates fine→coarse as a parallel sparse
//     matrix–vector multiply (the MCT regrid kernel) and relaxes its SST
//     toward the result,
//  4. the SST is interpolated coarse→fine and routed back to the
//     atmosphere, where it is merged with a land field using fractional
//     weights (the MCT Merge),
//  5. both sides compute area-weighted global averages (MCT spatial
//     integrals) and the conservation drift of the interpolation is
//     reported.
//
// Run:
//
//	go run ./examples/climate
package main

import (
	"fmt"
	"log"
	"math"
	"sync"

	"mxn"
	"mxn/internal/mct"
	"mxn/internal/meshsim"
)

const (
	atmNLat, atmNLon = 24, 48
	ocnNLat, ocnNLon = 12, 24
	atmRanks         = 4
	ocnRanks         = 2
	stepsPerCouple   = 4
	couplings        = 8
)

func main() {
	atm := meshsim.NewAtmosphere(atmNLat, atmNLon)
	ocn := meshsim.NewOcean(ocnNLat, ocnNLon)
	finePts := atmNLat * atmNLon
	coarsePts := ocnNLat * ocnNLon

	// Decompositions: each model's grid over its own ranks, plus the fine
	// grid re-decomposed over the ocean ranks (the M×N hand-off point).
	atmMap := mct.BlockMap(finePts, atmRanks)
	ocnMap := mct.BlockMap(coarsePts, ocnRanks)
	fineOnOcn := mct.BlockMap(finePts, ocnRanks)

	// Routers are built once and reused every interval (the paper's
	// schedule-reuse story, at MCT's level).
	a2o, err := mct.NewRouter(atmMap, fineOnOcn)
	if err != nil {
		log.Fatal(err)
	}
	o2a, err := mct.NewRouter(fineOnOcn, atmMap)
	if err != nil {
		log.Fatal(err)
	}

	// Interpolation matrices, distributed by destination row.
	f2c := meshsim.RegridMatrix(atmNLat, atmNLon, ocnNLat, ocnNLon)
	c2f := meshsim.RegridMatrix(ocnNLat, ocnNLon, atmNLat, atmNLon)

	// The model registry: who lives where (no intercommunicators needed).
	reg := mct.NewRegistry()
	if err := reg.Register("atm", []int{0, 1, 2, 3}); err != nil {
		log.Fatal(err)
	}
	if err := reg.Register("ocn", []int{4, 5}); err != nil {
		log.Fatal(err)
	}
	atmBase, _ := reg.WorldRank("atm", 0)
	ocnBase, _ := reg.WorldRank("ocn", 0)

	fmt.Printf("%-8s %-14s %-14s %-14s %-12s\n", "interval", "atm Tavg (K)", "ocn SST (K)", "merged Tavg", "cons. drift")

	var mu sync.Mutex
	report := make([]string, couplings)

	mxn.Run(atmRanks+ocnRanks, func(world *mxn.Comm) {
		// Sub-communicator creation is collective over the parent, so
		// every rank takes part in both; each keeps only its own.
		atmComm := world.Sub([]int{0, 1, 2, 3})
		ocnComm := world.Sub([]int{atmRanks, atmRanks + 1})
		model, _ := reg.ModelAt(world.Rank())
		switch model {
		case "atm":
			runAtmosphere(world, atmComm, reg, atm, atmMap, a2o, o2a, ocnBase, report, &mu)
		case "ocn":
			runOcean(world, ocnComm, ocn, ocnMap, fineOnOcn, a2o, o2a, f2c, c2f, atmBase)
		}
	})
	for _, line := range report {
		fmt.Println(line)
	}
}

// runAtmosphere is the atmosphere model's per-rank body.
func runAtmosphere(world, atmComm *mxn.Comm, reg *mct.Registry, atm *meshsim.Atmosphere,
	atmMap *mct.GlobalSegMap, a2o, o2a *mct.Router, ocnBase int,
	report []string, mu *sync.Mutex) {

	rank, _ := reg.LocalRank("atm", world.Rank())
	cohortRanks, _ := reg.RanksOf("atm")
	_ = cohortRanks
	lsize := atmMap.LocalSize(rank)
	state := mct.MustAttrVect([]string{"t", "q"}, lsize)
	acc, err := mct.NewAccumulator([]string{"t", "q"}, lsize)
	if err != nil {
		log.Fatal(err)
	}
	localGrid, err := atm.Grid.LocalGrid(atmMap, rank)
	if err != nil {
		log.Fatal(err)
	}
	// Synthetic land temperature and land/ocean fractions for the merge.
	land := mct.MustAttrVect([]string{"t"}, lsize)
	fracLand := make([]float64, lsize)
	fracOcn := make([]float64, lsize)
	for li, gi := range atmMap.LocalPoints(rank) {
		lat := atm.Grid.Coord("lat")[gi]
		land.Field("t")[li] = 285 - 0.3*math.Abs(lat)
		fracLand[li] = 0.3 + 0.2*math.Sin(lat*math.Pi/90)
		fracOcn[li] = 1 - fracLand[li]
	}

	step := 0
	for interval := 0; interval < couplings; interval++ {
		acc.Reset()
		for s := 0; s < stepsPerCouple; s++ {
			atm.Eval(atmMap, rank, step, state)
			if err := acc.Accumulate(state); err != nil {
				log.Fatal(err)
			}
			step++
		}
		avg, err := acc.Average()
		if err != nil {
			log.Fatal(err)
		}
		// Ship the time-averaged fields to the ocean side.
		if err := a2o.Send(world, ocnBase, rank, avg, 0); err != nil {
			log.Fatal(err)
		}
		// Receive the ocean's SST interpolated back onto the fine grid.
		sstFine := mct.MustAttrVect([]string{"t"}, lsize)
		if err := o2a.Recv(world, ocnBase, rank, sstFine, 1); err != nil {
			log.Fatal(err)
		}
		// Merge land and ocean surface temperatures with fractions.
		merged := mct.MustAttrVect([]string{"t"}, lsize)
		if err := mct.Merge(merged, []*mct.AttrVect{land, sstFine},
			[][]float64{fracLand, fracOcn}, 1e-9); err != nil {
			log.Fatal(err)
		}
		// Diagnostics: area-weighted global means over the atm cohort.
		tAvg, err := mct.SpatialAverage(atmComm, avg, "t", localGrid)
		if err != nil {
			log.Fatal(err)
		}
		sstAvgOnFine, _ := mct.SpatialAverage(atmComm, sstFine, "t", localGrid)
		mergedAvg, _ := mct.SpatialAverage(atmComm, merged, "t", localGrid)
		// The ocean reports its own average for the conservation check.
		payload, _ := world.Recv(ocnBase, 7)
		ocnSST := payload.(float64)
		drift := math.Abs(sstAvgOnFine - ocnSST)
		if rank == 0 {
			mu.Lock()
			report[interval] = fmt.Sprintf("%-8d %-14.4f %-14.4f %-14.4f %-12.2e",
				interval, tAvg, ocnSST, mergedAvg, drift)
			mu.Unlock()
		}
	}
}

// runOcean is the ocean model's per-rank body.
func runOcean(world, ocnComm *mxn.Comm, ocn *meshsim.Ocean,
	ocnMap, fineOnOcn *mct.GlobalSegMap, a2o, o2a *mct.Router,
	f2c, c2f *mct.SparseMatrix, atmBase int) {

	rank := world.Rank() - atmRanks
	lsize := ocnMap.LocalSize(rank)
	sst := make([]float64, lsize)
	ocn.InitSST(ocnMap, rank, sst)
	localGrid, err := ocn.Grid.LocalGrid(ocnMap, rank)
	if err != nil {
		log.Fatal(err)
	}

	// Bind the interpolation operators once; halo plans are reused.
	mvF2C, err := mct.NewMatVec(ocnComm, meshsim.LocalMatrix(f2c, ocnMap, rank), fineOnOcn, ocnMap, 20)
	if err != nil {
		log.Fatal(err)
	}
	mvC2F, err := mct.NewMatVec(ocnComm, meshsim.LocalMatrix(c2f, fineOnOcn, rank), ocnMap, fineOnOcn, 30)
	if err != nil {
		log.Fatal(err)
	}

	for interval := 0; interval < couplings; interval++ {
		// Receive the atmosphere's averaged fields on the fine grid.
		fine := mct.MustAttrVect([]string{"t", "q"}, fineOnOcn.LocalSize(rank))
		if err := a2o.Recv(world, 0, rank, fine, 0); err != nil {
			log.Fatal(err)
		}
		// Interpolate fine→coarse (parallel sparse matvec, both fields).
		coarse := mct.MustAttrVect([]string{"t", "q"}, lsize)
		fineT := mct.MustAttrVect([]string{"t", "q"}, fineOnOcn.LocalSize(rank))
		fineT.Copy(fine)
		if err := mvF2C.Apply(ocnComm, fineT, coarse, 40); err != nil {
			log.Fatal(err)
		}
		// Ocean physics: relax SST toward the atmospheric temperature.
		ocn.Relax(sst, coarse.Field("t"))
		// Interpolate SST coarse→fine and route it back.
		sstAV := mct.MustAttrVect([]string{"t"}, lsize)
		copy(sstAV.Field("t"), sst)
		sstFine := mct.MustAttrVect([]string{"t"}, fineOnOcn.LocalSize(rank))
		if err := mvC2F.Apply(ocnComm, sstAV, sstFine, 50); err != nil {
			log.Fatal(err)
		}
		if err := o2a.Send(world, 0, rank, sstFine, 1); err != nil {
			log.Fatal(err)
		}
		// Report the ocean-side SST average for the conservation check.
		sstAvg, err := mct.SpatialAverage(ocnComm, sstAV, "t", localGrid)
		if err != nil {
			log.Fatal(err)
		}
		if rank == 0 {
			for a := 0; a < atmRanks; a++ {
				world.Send(a, 7, sstAvg)
			}
		}
	}
}
