// Generated stubs: the SCIRun2-style IDL-compiler workflow end to end.
//
// vector.sidl declares the VectorOps interface; stubs_gen.go is the
// typed glue code produced by cmd/sidlgen (regenerate with go:generate
// below). The application then programs against Go signatures — no
// name-string dispatch, no manual argument wrapping — while the runtime
// still performs all the PRMI machinery: collective grouping, parallel
// argument redistribution between the caller's cyclic and the callee's
// block decomposition, ghost returns, and one-way delivery.
//
// Run:
//
//	go run ./examples/genstubs
//
//go:generate go run mxn/cmd/sidlgen -pkg main -o stubs_gen.go vector.sidl
package main

import (
	"fmt"
	"log"
	"sync"

	"mxn"
)

const (
	m = 3 // caller ranks
	n = 2 // server ranks
	d = 12
)

// vectorServer implements the generated VectorOpsServer contract.
type vectorServer struct {
	cohort *mxn.Comm
}

func (s *vectorServer) Dot(meta *mxn.Incoming, x, y []float64) (float64, error) {
	partial := 0.0
	for i := range x {
		partial += x[i] * y[i]
	}
	return s.cohort.AllreduceFloat64(partial, 0), nil
}

func (s *vectorServer) Normalize(meta *mxn.Incoming, x []float64, norm float64) error {
	for i := range x {
		x[i] /= norm
	}
	return nil
}

func (s *vectorServer) Element(meta *mxn.Incoming, i int64) (float64, error) {
	return float64(i + 1), nil
}

func (s *vectorServer) Report(meta *mxn.Incoming, phase string) error {
	return nil
}

func main() {
	pkg, err := mxn.ParseSIDL(vectorSIDL)
	if err != nil {
		log.Fatal(err)
	}
	iface, _ := pkg.Interface("VectorOps")

	callerTpl, _ := mxn.NewTemplate([]int{d}, []mxn.AxisDist{mxn.CyclicAxis(m)})
	calleeTpl, _ := mxn.NewTemplate([]int{d}, []mxn.AxisDist{mxn.BlockAxis(n)})

	world := mxn.NewWorld(m + n)
	all := world.Comms()
	var wg sync.WaitGroup
	for j := 0; j < n; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			serverCohort := all[m+j].Split(1)
			ep := mxn.NewEndpoint(iface, mxn.NewCommLink(all[m+j], 0, 0), j, n, m)
			for _, p := range [][2]string{{"dot", "x"}, {"dot", "y"}, {"normalize", "x"}} {
				if err := ep.RegisterArgLayout(p[0], p[1], calleeTpl); err != nil {
					log.Fatal(err)
				}
			}
			if err := RegisterVectorOps(ep, &vectorServer{cohort: serverCohort}); err != nil {
				log.Fatal(err)
			}
			if err := ep.Serve(); err != nil {
				log.Fatalf("server %d: %v", j, err)
			}
		}(j)
	}
	results := make([]string, 2)
	for i := 0; i < m; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cohort := all[i].Split(0)
			port := mxn.NewCallerPort(iface, mxn.NewCommLink(all[i], m, 0), i, n, mxn.BarrierDelayed)
			for _, p := range [][2]string{{"dot", "x"}, {"dot", "y"}, {"normalize", "x"}} {
				if err := port.SetCalleeLayout(p[0], p[1], calleeTpl); err != nil {
					log.Fatal(err)
				}
			}
			client := &VectorOpsClient{Port: port}
			part := mxn.FullParticipation(cohort)

			if err := client.Report(part, "start"); err != nil {
				log.Fatal(err)
			}
			x := make([]float64, callerTpl.LocalCount(i))
			for li := range x {
				x[li] = float64(i + li*m + 1) // global value g+1 under cyclic layout
			}
			dot, err := client.Dot(part, callerTpl, x, callerTpl, x)
			if err != nil {
				log.Fatal(err)
			}
			if err := client.Normalize(part, callerTpl, x, dot); err != nil {
				log.Fatal(err)
			}
			if i == 0 {
				results[0] = fmt.Sprintf("client.Dot(x, x) = %.0f (sum of squares 1..%d = 650)", dot, d)
				elem, err := client.Element(1, 7)
				if err != nil {
					log.Fatal(err)
				}
				results[1] = fmt.Sprintf("client.Element(7) on server rank 1 = %v; x[0] after Normalize = %.6f", elem, x[0])
			}
			port.Close()
		}(i)
	}
	wg.Wait()
	for _, line := range results {
		fmt.Println(line)
	}
}

// vectorSIDL mirrors vector.sidl; both the generator (offline) and the
// runtime (here) parse the same declaration, like SIDL files shared
// between the IDL compiler and the framework.
const vectorSIDL = `
package demo version 1.0;

interface VectorOps {
    collective double dot(in parallel array<double> x, in parallel array<double> y);
    collective void normalize(inout parallel array<double> x, in double norm);
    independent double element(in int i);
    collective oneway void report(in string phase);
}
`
