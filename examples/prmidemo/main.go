// PRMI demo: parallel remote method invocation between two parallel
// components connected over real TCP sockets — the distributed-framework
// deployment of the paper's Section 2.4.
//
// A 4-rank "driver" component holds a distributed vector and invokes a
// 3-rank "solver" component through a port declared in SIDL:
//
//   - a collective method with a parallel argument: the vector is
//     redistributed automatically from the driver's cyclic decomposition
//     to the solver's block decomposition (M=4 → N=3, so the framework
//     creates ghost returns);
//   - an independent (one-to-one) method;
//   - a collective one-way method (fire and forget).
//
// Every rank pair communicates over its own TCP connection: nothing is
// serialized through a coordinator.
//
// Run:
//
//	go run ./examples/prmidemo
package main

import (
	"fmt"
	"log"
	"sync"

	"mxn"
)

const idl = `
package demo version 1.0;

interface VectorOps {
    collective double dot(in parallel array<double> x, in parallel array<double> y);
    collective void normalize(inout parallel array<double> x, in double norm);
    independent double element(in int i);
    collective oneway void report(in string phase);
}
`

const (
	m = 4 // driver ranks
	n = 3 // solver ranks
	d = 24
)

func main() {
	pkg, err := mxn.ParseSIDL(idl)
	if err != nil {
		log.Fatal(err)
	}
	iface, _ := pkg.Interface("VectorOps")

	// Decompositions: the driver sees the vector cyclically, the solver
	// in blocks. The middleware bridges them per call.
	callerTpl, err := mxn.NewTemplate([]int{d}, []mxn.AxisDist{mxn.CyclicAxis(m)})
	if err != nil {
		log.Fatal(err)
	}
	calleeTpl, err := mxn.NewTemplate([]int{d}, []mxn.AxisDist{mxn.BlockAxis(n)})
	if err != nil {
		log.Fatal(err)
	}

	// TCP mesh: solver rank j listens; driver rank i dials every j.
	listeners := make([]mxn.Listener, n)
	for j := range listeners {
		l, err := mxn.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		listeners[j] = l
	}
	calleeConns := make([][]mxn.Conn, n) // [solver rank][driver rank]
	callerConns := make([][]mxn.Conn, m) // [driver rank][solver rank]
	for i := range callerConns {
		callerConns[i] = make([]mxn.Conn, n)
	}
	var meshWG sync.WaitGroup
	for j := 0; j < n; j++ {
		calleeConns[j] = make([]mxn.Conn, m)
		meshWG.Add(1)
		go func(j int) {
			defer meshWG.Done()
			for k := 0; k < m; k++ {
				c, err := listeners[j].Accept()
				if err != nil {
					log.Fatal(err)
				}
				// First frame identifies the dialing driver rank.
				id, err := c.Recv()
				if err != nil {
					log.Fatal(err)
				}
				calleeConns[j][id[0]] = c
			}
		}(j)
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			c, err := mxn.Dial("tcp", listeners[j].Addr())
			if err != nil {
				log.Fatal(err)
			}
			if err := c.Send([]byte{byte(i)}); err != nil {
				log.Fatal(err)
			}
			callerConns[i][j] = c
		}
	}
	meshWG.Wait()

	// Solver cohort: each rank serves its endpoint; the cohort cooperates
	// out-of-band for the dot product's global reduction.
	solverWorld := mxn.NewWorld(n)
	solverCohort := solverWorld.Comms()
	var wg sync.WaitGroup
	for j := 0; j < n; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			runSolver(iface, calleeTpl, calleeConns[j], solverCohort[j], j)
		}(j)
	}

	// Driver cohort.
	driverWorld := mxn.NewWorld(m)
	driverCohort := driverWorld.Comms()
	results := make([]string, 3)
	for i := 0; i < m; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			runDriver(iface, callerTpl, calleeTpl, callerConns[i], driverCohort[i], i, results)
		}(i)
	}
	wg.Wait()
	for _, line := range results {
		fmt.Println(line)
	}
}

// runSolver serves one solver rank.
func runSolver(iface *mxn.SIDLInterface, calleeTpl *mxn.Template, conns []mxn.Conn, cohort *mxn.Comm, rank int) {
	ep := mxn.NewEndpoint(iface, mxn.NewConnLink(conns, rank), rank, n, m)
	for _, param := range []struct{ method, name string }{
		{"dot", "x"}, {"dot", "y"}, {"normalize", "x"},
	} {
		if err := ep.RegisterArgLayout(param.method, param.name, calleeTpl); err != nil {
			log.Fatal(err)
		}
	}
	ep.Handle("dot", func(in *mxn.Incoming, out *mxn.Outgoing) error {
		x, y := in.Parallel["x"], in.Parallel["y"]
		partial := 0.0
		for i := range x {
			partial += x[i] * y[i]
		}
		out.Return = cohort.AllreduceFloat64(partial, 0)
		return nil
	})
	ep.Handle("normalize", func(in *mxn.Incoming, out *mxn.Outgoing) error {
		norm := in.Simple["norm"].(float64)
		buf := out.Parallel["x"]
		for i := range buf {
			buf[i] /= norm
		}
		return nil
	})
	ep.Handle("element", func(in *mxn.Incoming, out *mxn.Outgoing) error {
		// Serial semantics: answer from this rank's block.
		gi := int(in.Simple["i"].(int64))
		out.Return = float64(gi + 1)
		return nil
	})
	ep.Handle("report", func(in *mxn.Incoming, out *mxn.Outgoing) error {
		return nil // a real solver would log the phase
	})
	if err := ep.Serve(); err != nil {
		log.Fatalf("solver rank %d: %v", rank, err)
	}
}

// runDriver drives one caller rank.
func runDriver(iface *mxn.SIDLInterface, callerTpl, calleeTpl *mxn.Template,
	conns []mxn.Conn, cohort *mxn.Comm, rank int, results []string) {

	port := mxn.NewCallerPort(iface, mxn.NewConnLink(conns, rank), rank, n, mxn.BarrierDelayed)
	for _, p := range []struct{ method, name string }{
		{"dot", "x"}, {"dot", "y"}, {"normalize", "x"},
	} {
		if err := port.SetCalleeLayout(p.method, p.name, calleeTpl); err != nil {
			log.Fatal(err)
		}
	}
	part := mxn.FullParticipation(cohort)

	// The local fragment of x = (1, 2, ..., d) under the cyclic layout.
	x := make([]float64, callerTpl.LocalCount(rank))
	for li := range x {
		x[li] = float64(rank + li*m + 1)
	}

	if _, err := port.CallCollective("report", part, mxn.Simple("phase", "start")); err != nil {
		log.Fatalf("driver %d: %v", rank, err)
	}
	res, err := port.CallCollective("dot", part,
		mxn.Parallel("x", callerTpl, x), mxn.Parallel("y", callerTpl, x))
	if err != nil {
		log.Fatalf("driver %d: %v", rank, err)
	}
	dot := res.Return.(float64)
	if rank == 0 {
		results[0] = fmt.Sprintf("collective dot(x,x) over M=%d→N=%d ranks: %.0f (exact: %d·%d·%d/6 = 4900)",
			m, n, dot, d, d+1, 2*d+1)
	}
	// Normalize in place: the inout parallel argument comes back
	// redistributed into the driver's own layout.
	if _, err := port.CallCollective("normalize", part,
		mxn.Parallel("x", callerTpl, x), mxn.Simple("norm", dot)); err != nil {
		log.Fatalf("driver %d: %v", rank, err)
	}
	if rank == 0 {
		results[1] = fmt.Sprintf("after inout normalize: x[0] = %.6f (want %d/%.0f = %.6f)", x[0], 1, dot, 1/dot)
	}
	// Independent one-to-one call from driver rank 0 to solver rank 1.
	if rank == 0 {
		r, err := port.CallIndependent(1, "element", mxn.Simple("i", 5))
		if err != nil {
			log.Fatalf("driver %d: %v", rank, err)
		}
		results[2] = fmt.Sprintf("independent element(5) on solver rank 1: %v", r.Return)
	}
	if err := port.Close(); err != nil {
		log.Fatal(err)
	}
}
