package mxn

import (
	"sync"
	"testing"
	"time"
)

// TestFacadeQuickstart exercises the paper's Figure 1 scenario through
// the public facade alone: a 3-D array moves from an M=8 cohort to an
// N=27 cohort.
func TestFacadeQuickstart(t *testing.T) {
	src, err := NewTemplate([]int{6, 6, 6}, []AxisDist{BlockAxis(2), BlockAxis(2), BlockAxis(2)})
	if err != nil {
		t.Fatal(err)
	}
	dst, err := NewTemplate([]int{6, 6, 6}, []AxisDist{BlockAxis(3), BlockAxis(3), BlockAxis(3)})
	if err != nil {
		t.Fatal(err)
	}
	srcLocals := make([][]float64, 8)
	for r := range srcLocals {
		srcLocals[r] = make([]float64, src.LocalCount(r))
		for i := range srcLocals[r] {
			srcLocals[r][i] = float64(r*1000 + i)
		}
	}
	dstLocals := make([][]float64, 27)
	for r := range dstLocals {
		dstLocals[r] = make([]float64, dst.LocalCount(r))
	}
	if err := Redistribute(src, dst, srcLocals, dstLocals); err != nil {
		t.Fatal(err)
	}
	// Spot-check: value at a global index survives the move.
	idx := []int{3, 4, 5}
	sr := src.OwnerOf(idx)
	dr := dst.OwnerOf(idx)
	want := srcLocals[sr][src.LocalOffset(sr, idx)]
	got := dstLocals[dr][dst.LocalOffset(dr, idx)]
	if got != want {
		t.Errorf("value at %v: got %v want %v", idx, got, want)
	}
}

// TestFacadeParallelExchange runs the parallel executor through the
// facade.
func TestFacadeParallelExchange(t *testing.T) {
	src, _ := NewTemplate([]int{16}, []AxisDist{BlockAxis(2)})
	dst, _ := NewTemplate([]int{16}, []AxisDist{CyclicAxis(3)})
	s, err := BuildSchedule(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	got := make([][]float64, 3)
	var mu sync.Mutex
	Run(5, func(c *Comm) {
		lay := Layout{SrcBase: 0, DstBase: 2}
		var sl, dl []float64
		if c.Rank() < 2 {
			sl = make([]float64, src.LocalCount(c.Rank()))
			for i := range sl {
				sl[i] = float64(c.Rank()*8 + i)
			}
		} else {
			dl = make([]float64, dst.LocalCount(c.Rank()-2))
		}
		if err := Exchange(c, s, lay, sl, dl, 0); err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
		}
		if dl != nil {
			mu.Lock()
			got[c.Rank()-2] = dl
			mu.Unlock()
		}
	})
	for g := 0; g < 16; g++ {
		r := dst.OwnerOf([]int{g})
		if v := got[r][dst.LocalOffset(r, []int{g})]; v != float64(g) {
			t.Errorf("global %d = %v", g, v)
		}
	}
}

// TestFacadeHub exercises the M×N component through the facade.
func TestFacadeHub(t *testing.T) {
	ba, bb := BridgePair()
	a := NewHub("A", 1, ba)
	b := NewHub("B", 1, bb)
	tpl, _ := NewTemplate([]int{4}, []AxisDist{BlockAxis(1)})
	da, _ := NewDescriptor("f", Float64, ReadOnly, tpl)
	db, _ := NewDescriptor("f", Float64, WriteOnly, tpl)
	if err := a.Register(da); err != nil {
		t.Fatal(err)
	}
	if err := b.Register(db); err != nil {
		t.Fatal(err)
	}
	srcConn, dstConn, err := ConnectHubs("c", a, "f", b, "f", ConnOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srcConn.DataReady(0, []float64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, 4)
	if _, err := dstConn.DataReady(0, buf); err != nil {
		t.Fatal(err)
	}
	if buf[2] != 3 {
		t.Errorf("buf = %v", buf)
	}
}

// TestFacadePRMI drives a collective invocation through the facade.
func TestFacadePRMI(t *testing.T) {
	pkg, err := ParseSIDL(`package p; interface I { collective double sum(in double x); }`)
	if err != nil {
		t.Fatal(err)
	}
	iface, _ := pkg.Interface("I")
	w := NewWorld(3)
	all := w.Comms()
	callerCohort := w.Group([]int{0, 1})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ep := NewEndpoint(iface, NewCommLink(all[2], 0, 0), 0, 1, 2)
		ep.Handle("sum", func(in *Incoming, out *Outgoing) error {
			out.Return = in.Simple["x"].(float64) * 2
			return nil
		})
		if err := ep.Serve(); err != nil {
			t.Errorf("serve: %v", err)
		}
	}()
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := NewCallerPort(iface, NewCommLink(all[i], 2, 0), i, 1, BarrierDelayed)
			res, err := p.CallCollective("sum", FullParticipation(callerCohort[i]), Simple("x", 21.0))
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			} else if res.Return != 42.0 {
				t.Errorf("caller %d: %v", i, res.Return)
			}
			p.Close()
		}(i)
	}
	wg.Wait()
}

// TestFacadeResize runs a complete online grow through the public facade
// alone: propose, migrate on the prepare epoch, commit, then verify the
// post-resize steady state still exchanges over the grown cohort.
func TestFacadeResize(t *testing.T) {
	oldT, err := NewTemplate([]int{24}, []AxisDist{BlockAxis(2)})
	if err != nil {
		t.Fatal(err)
	}
	newT, err := Reblock(oldT, 4)
	if err != nil {
		t.Fatal(err)
	}
	mem := NewMembership(2)
	rz, err := mem.ProposeResize(4)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewScheduleCache()
	srcLocals := make([][]float64, 2)
	for r := range srcLocals {
		srcLocals[r] = make([]float64, oldT.LocalCount(r))
		for i := range srcLocals[r] {
			srcLocals[r][i] = float64(r*1000 + i)
		}
	}
	dstLocals := make([][]float64, 4)
	var mu sync.Mutex
	Run(4, func(c *Comm) {
		opts := FenceOpts{Membership: mem, Policy: FailStrict, PollInterval: time.Millisecond, Cache: cache}
		var sl []float64
		if c.Rank() < 2 {
			sl = srcLocals[c.Rank()]
		}
		dl := make([]float64, newT.LocalCount(c.Rank()))
		out, err := ReconfigureFenced(c, rz, oldT, newT, Layout{}, sl, dl, 0, opts)
		if err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
			return
		}
		if out.Epoch != rz.PrepareEpoch() {
			t.Errorf("rank %d entered at epoch %d, want %d", c.Rank(), out.Epoch, rz.PrepareEpoch())
		}
		mu.Lock()
		dstLocals[c.Rank()] = dl
		mu.Unlock()
	})
	if _, err := CommitReconfigure(rz, cache, oldT); err != nil {
		t.Fatal(err)
	}
	if mem.Width() != 4 {
		t.Fatalf("committed width %d, want 4", mem.Width())
	}
	// Every element landed where the grown layout says it lives.
	for g := 0; g < 24; g++ {
		idx := []int{g}
		sr, dr := oldT.OwnerOf(idx), newT.OwnerOf(idx)
		want := srcLocals[sr][oldT.LocalOffset(sr, idx)]
		got := dstLocals[dr][newT.LocalOffset(dr, idx)]
		if got != want {
			t.Errorf("global %d: got %v want %v", g, got, want)
		}
	}
}

// TestFacadeSession exercises the session re-exports: a resumable
// connection established through the facade alone round-trips messages.
// (The chaos behaviors — resume, replay, ErrPeerLost — are soaked in
// internal/session and internal/chaosnet.)
func TestFacadeSession(t *testing.T) {
	raw, err := Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lst := WrapSessionListener(raw, SessionConfig{})
	defer lst.Close()

	done := make(chan error, 1)
	go func() {
		c, err := lst.Accept()
		if err != nil {
			done <- err
			return
		}
		defer c.Close()
		msg, err := c.Recv()
		if err != nil {
			done <- err
			return
		}
		done <- c.Send(msg)
	}()

	cfg := SessionConfig{MaxAttempts: 2, MaxElapsed: 2 * time.Second,
		BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond}
	conn, err := DialSession("tcp", lst.Addr(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	echo, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(echo) != "ping" {
		t.Fatalf("echo = %q", echo)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
