GO ?= go
FUZZTIME ?= 10s

# Every fuzz target in the tree, as package:target pairs.
FUZZ_TARGETS := \
	./internal/wire:FuzzDecoder \
	./internal/wire:FuzzReadFrame \
	./internal/dad:FuzzDecodeTemplate \
	./internal/dad:FuzzDecodeDescriptor

.PHONY: all build test race chaos fuzz-short vet

all: build test

build:
	$(GO) build ./...

# Shuffled to flush inter-test ordering dependencies; -count=1 defeats the
# test cache so every run actually executes.
test:
	$(GO) test -shuffle=on -count=1 ./...

# The concurrency-heavy packages (comm, transport, faultconn, prmi, core)
# are race-clean; run the whole tree under the detector.
race:
	$(GO) test -race ./...

# The chaos soak: rank-crash and fault-injection survivability tests, under
# the race detector with a hard timeout so a hang fails instead of wedging.
chaos:
	$(GO) test -race -run Chaos -count=1 -timeout 120s ./...

# Run each fuzz target for a short, CI-sized budget. Crash inputs land in
# <pkg>/testdata/fuzz/<Target>/ and become regression seeds.
fuzz-short:
	@set -e; for t in $(FUZZ_TARGETS); do \
		pkg=$${t%%:*}; target=$${t##*:}; \
		echo "fuzz $$pkg $$target ($(FUZZTIME))"; \
		$(GO) test -run '^$$' -fuzz "^$$target$$" -fuzztime $(FUZZTIME) $$pkg; \
	done

vet:
	$(GO) vet ./...
