GO ?= go
FUZZTIME ?= 10s

# Every fuzz target in the tree, as package:target pairs.
FUZZ_TARGETS := \
	./internal/wire:FuzzDecoder \
	./internal/wire:FuzzReadFrame \
	./internal/wire:FuzzWireFrameV \
	./internal/dad:FuzzDecodeTemplate \
	./internal/dad:FuzzDecodeDescriptor \
	./internal/schedule:FuzzPlanEquivalence \
	./internal/session:FuzzSessionFrame

.PHONY: all build test race chaos chaos-net fuzz-short vet bench bench-smoke staticcheck govulncheck

all: build test

build:
	$(GO) build ./...

# Shuffled to flush inter-test ordering dependencies; -count=1 defeats the
# test cache so every run actually executes.
test:
	$(GO) test -shuffle=on -count=1 ./...

# The concurrency-heavy packages (comm, transport, faultconn, prmi, core)
# are race-clean; run the whole tree under the detector.
race:
	$(GO) test -race ./...

# The chaos soak: rank-crash and fault-injection survivability tests, under
# the race detector with a hard timeout so a hang fails instead of wedging.
chaos:
	$(GO) test -race -run Chaos -count=1 -timeout 120s ./...

# The network chaos soak: fenced transfers and PRMI calls between worlds
# coupled over real TCP with session-layer reconnection, while the physical
# links flap and, finally, die past the redial budget.
chaos-net:
	$(GO) test -race -run ChaosNet -count=1 -timeout 120s ./internal/chaosnet/

# Run each fuzz target for a short, CI-sized budget. Crash inputs land in
# <pkg>/testdata/fuzz/<Target>/ and become regression seeds.
fuzz-short:
	@set -e; for t in $(FUZZ_TARGETS); do \
		pkg=$${t%%:*}; target=$${t##*:}; \
		echo "fuzz $$pkg $$target ($(FUZZTIME))"; \
		$(GO) test -run '^$$' -fuzz "^$$target$$" -fuzztime $(FUZZTIME) $$pkg; \
	done

vet:
	$(GO) vet ./...

# Transfer-engine benchmark report: elems/sec and allocs/op for float64 and
# float32, cached vs uncached schedule, plus the budgeted (MaxBytesInFlight)
# steady state and a HighWater peak-packed-bytes phase. Fails if any cached
# steady-state path (budgeted included) allocates, or if the budgeted high
# water exceeds its bound.
bench:
	$(GO) run ./cmd/redistbench -out BENCH_redist.json

# CI-sized smoke run of the same report (fixed iteration count).
bench-smoke:
	$(GO) run ./cmd/redistbench -short -out BENCH_redist.json

# Lint/vuln targets degrade to a notice when the tool isn't on PATH, so
# offline checkouts aren't forced to install anything; CI installs both.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

govulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi
