package faultconn

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"mxn/internal/transport"
)

func TestNoFaultsPassthrough(t *testing.T) {
	a, b := Pipe(Scenario{Seed: 1})
	defer a.Close()
	for i := 0; i < 20; i++ {
		want := fmt.Sprintf("m%d", i)
		if err := a.Send([]byte(want)); err != nil {
			t.Fatal(err)
		}
		m, err := b.Recv()
		if err != nil || string(m) != want {
			t.Fatalf("recv %d: %q, %v", i, m, err)
		}
	}
}

func TestDropAll(t *testing.T) {
	a, b := Pipe(Scenario{Seed: 2, Send: Faults{Drop: 1}})
	defer a.Close()
	for i := 0; i < 10; i++ {
		if err := a.Send([]byte("gone")); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := b.RecvContext(ctx); !errors.Is(err, transport.ErrTimeout) {
		t.Fatalf("recv with all sends dropped: %v, want ErrTimeout", err)
	}
}

func TestDupAll(t *testing.T) {
	a, b := Pipe(Scenario{Seed: 3, Send: Faults{Dup: 1}})
	defer a.Close()
	if err := a.Send([]byte("twice")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		m, err := b.Recv()
		if err != nil || string(m) != "twice" {
			t.Fatalf("copy %d: %q, %v", i, m, err)
		}
	}
}

func TestCorruptAll(t *testing.T) {
	a, b := Pipe(Scenario{Seed: 4, Send: Faults{Corrupt: 1}})
	defer a.Close()
	orig := []byte("pristine")
	if err := a.Send(orig); err != nil {
		t.Fatal(err)
	}
	if string(orig) != "pristine" {
		t.Fatal("corruption mutated the caller's buffer")
	}
	m, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(m) == "pristine" {
		t.Fatal("message not corrupted")
	}
	if len(m) != len(orig) {
		t.Fatalf("corruption changed length: %d", len(m))
	}
}

func TestReorderSwapsAdjacent(t *testing.T) {
	// Reorder=1 holds every message until a successor arrives; the final
	// Send with reorder rolled again would hold forever, so use a scenario
	// where only the first roll reorders. With a fixed seed we can instead
	// verify the invariant: all messages sent before a Close-free drain
	// arrive, just not in order.
	a, b := Pipe(Scenario{Seed: 5, Send: Faults{Reorder: 0.5}})
	defer a.Close()
	const n = 40
	sent := map[string]bool{}
	for i := 0; i < n; i++ {
		s := fmt.Sprintf("m%d", i)
		sent[s] = true
		if err := a.Send([]byte(s)); err != nil {
			t.Fatal(err)
		}
	}
	got := map[string]bool{}
	inOrder := true
	prev := -1
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	for len(got) < n {
		m, err := b.RecvContext(ctx)
		if err != nil {
			// Tail messages may be held with no successor; that is the
			// documented routers-queue behavior, not a loss bug.
			if errors.Is(err, transport.ErrTimeout) {
				break
			}
			t.Fatal(err)
		}
		if !sent[string(m)] {
			t.Fatalf("received unsent message %q", m)
		}
		if got[string(m)] {
			t.Fatalf("duplicate delivery of %q without Dup fault", m)
		}
		got[string(m)] = true
		var idx int
		fmt.Sscanf(string(m), "m%d", &idx)
		if idx < prev {
			inOrder = false
		}
		prev = idx
	}
	if inOrder {
		t.Fatal("Reorder=0.5 over 40 messages delivered everything in order")
	}
}

func TestPartitionFailsBothOps(t *testing.T) {
	a, b := Pipe(Scenario{Seed: 6})
	a.Partition()
	if err := a.Send([]byte("x")); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("send after partition: %v", err)
	}
	if _, err := a.Recv(); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("recv after partition: %v", err)
	}
	if !errors.Is(ErrPartitioned, transport.ErrClosed) {
		t.Fatal("ErrPartitioned must match transport.ErrClosed")
	}
	// The raw peer sees a closed conn, not a hang.
	if _, err := b.Recv(); !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("peer recv after partition: %v", err)
	}
}

func TestPartitionUnblocksPendingRecv(t *testing.T) {
	a, _ := Pipe(Scenario{Seed: 7})
	done := make(chan error, 1)
	go func() {
		_, err := a.Recv()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the Recv block
	a.Partition()
	select {
	case err := <-done:
		if !errors.Is(err, ErrPartitioned) {
			t.Fatalf("unblocked recv: %v, want ErrPartitioned", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Partition did not unblock pending Recv")
	}
}

func TestFailAfter(t *testing.T) {
	a, b := Pipe(Scenario{Seed: 8, Send: Faults{FailAfter: 3}})
	defer a.Close()
	for i := 0; i < 3; i++ {
		if err := a.Send([]byte("ok")); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		if _, err := b.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Send([]byte("doomed")); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("send past FailAfter: %v, want ErrPartitioned", err)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []string {
		a, b := Pipe(Scenario{Seed: 99, Send: Faults{Drop: 0.3, Dup: 0.3, Corrupt: 0.2}})
		defer a.Close()
		for i := 0; i < 30; i++ {
			if err := a.Send([]byte(fmt.Sprintf("msg-%02d", i))); err != nil {
				t.Fatal(err)
			}
		}
		var out []string
		ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
		defer cancel()
		for {
			m, err := b.RecvContext(ctx)
			if err != nil {
				break
			}
			out = append(out, string(m))
		}
		return out
	}
	first := run()
	second := run()
	if len(first) == 0 {
		t.Fatal("fault mix delivered nothing; scenario too aggressive for the test")
	}
	if len(first) != len(second) {
		t.Fatalf("replay length diverged: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("replay diverged at %d: %q vs %q", i, first[i], second[i])
		}
	}
}

func TestLatencyDelays(t *testing.T) {
	a, b := Pipe(Scenario{Seed: 10, Send: Faults{Latency: 30 * time.Millisecond}})
	defer a.Close()
	start := time.Now()
	if err := a.Send([]byte("slow")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("latency fault not applied: %v", elapsed)
	}
}

func TestRecvSideFaults(t *testing.T) {
	// Faults on b's Recv direction: wrap the raw end too.
	pa, pb := transport.Pipe()
	a := Wrap(pa, Scenario{Seed: 11})
	b := Wrap(pb, Scenario{Seed: 12, Recv: Faults{Drop: 1}})
	defer a.Close()
	if err := a.Send([]byte("eaten")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := b.RecvContext(ctx); !errors.Is(err, transport.ErrTimeout) {
		t.Fatalf("recv with Recv.Drop=1: %v, want ErrTimeout", err)
	}
}

func TestWrapListener(t *testing.T) {
	inner, err := transport.Listen("inproc", "faultconn-test")
	if err != nil {
		t.Fatal(err)
	}
	l := WrapListener(inner, Scenario{Seed: 13, Send: Faults{Corrupt: 1}})
	defer l.Close()
	if l.Addr() != "faultconn-test" {
		t.Fatalf("addr = %q", l.Addr())
	}
	type res struct {
		c   transport.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := l.Accept()
		ch <- res{c, err}
	}()
	cli, err := transport.Dial("inproc", "faultconn-test")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	if err := r.c.Send([]byte("server says")); err != nil {
		t.Fatal(err)
	}
	m, err := cli.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(m) == "server says" {
		t.Fatal("accepted conn did not inherit scenario faults")
	}
}
