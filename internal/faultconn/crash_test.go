package faultconn

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"mxn/internal/transport"
)

// TestCrashAndBlackholeModes is the table test for the two silent fault
// modes: CrashAfter (whole-endpoint crash at a total message count) and
// BlackholeAfter (per-direction one-way partition). Both count
// deterministically, so the same scenario replays identically.
func TestCrashAndBlackholeModes(t *testing.T) {
	cases := []struct {
		name string
		sc   Scenario
		// sendOK / recvOK: messages expected to cross before silence,
		// driving a's Send toward b (sendDir) or b's Send toward a.
		run func(t *testing.T, a *Conn, b transport.Conn)
	}{
		{
			name: "crash-after-total-messages",
			sc:   Scenario{Seed: 41, CrashAfter: 3},
			run: func(t *testing.T, a *Conn, b transport.Conn) {
				// Messages 1-3 (2 sends + 1 recv) pass; the 4th
				// observes the crash.
				for i := 0; i < 2; i++ {
					if err := a.Send([]byte{byte(i)}); err != nil {
						t.Fatalf("send %d: %v", i, err)
					}
					if m, err := b.Recv(); err != nil || m[0] != byte(i) {
						t.Fatalf("recv %d: %v %v", i, m, err)
					}
				}
				if err := b.Send([]byte{100}); err != nil {
					t.Fatal(err)
				}
				if m, err := a.Recv(); err != nil || m[0] != 100 {
					t.Fatalf("third message: %v %v", m, err)
				}
				// Endpoint a is now crashed: its sends are swallowed
				// without error, and its Recv blocks until deadline.
				if err := a.Send([]byte{7}); err != nil {
					t.Fatalf("post-crash send errored: %v", err)
				}
				if !a.Crashed() {
					t.Fatal("Crashed() false after CrashAfter tripped")
				}
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
				defer cancel()
				if m, err := b.(interface {
					RecvContext(context.Context) ([]byte, error)
				}).RecvContext(ctx); err == nil {
					t.Fatalf("peer received %v from crashed endpoint", m)
				}
				if err := b.Send([]byte{8}); err != nil {
					t.Fatal(err)
				}
				ctx2, cancel2 := context.WithTimeout(context.Background(), 30*time.Millisecond)
				defer cancel2()
				if m, err := a.RecvContext(ctx2); !errors.Is(err, transport.ErrTimeout) {
					t.Fatalf("crashed Recv = %v, %v; want timeout silence", m, err)
				}
			},
		},
		{
			name: "explicit-crash-then-close",
			sc:   Scenario{Seed: 42},
			run: func(t *testing.T, a *Conn, b transport.Conn) {
				a.Crash()
				if err := a.Send([]byte{1}); err != nil {
					t.Fatalf("post-crash send errored: %v", err)
				}
				done := make(chan error, 1)
				go func() {
					_, err := a.Recv()
					done <- err
				}()
				a.Close()
				select {
				case err := <-done:
					if !errors.Is(err, ErrCrashed) || !errors.Is(err, transport.ErrClosed) {
						t.Errorf("Recv after Close = %v, want ErrCrashed (ErrClosed)", err)
					}
				case <-time.After(2 * time.Second):
					t.Fatal("Close did not unblock crashed Recv")
				}
			},
		},
		{
			name: "blackhole-send-direction",
			sc:   Scenario{Seed: 43, Send: Faults{BlackholeAfter: 2}},
			run: func(t *testing.T, a *Conn, b transport.Conn) {
				for i := 0; i < 2; i++ {
					if err := a.Send([]byte{byte(i)}); err != nil {
						t.Fatal(err)
					}
					if m, err := b.Recv(); err != nil || m[0] != byte(i) {
						t.Fatalf("recv %d: %v %v", i, m, err)
					}
				}
				// Outgoing silence from now on; the reverse direction
				// still flows — the partition is one-way.
				if err := a.Send([]byte{9}); err != nil {
					t.Fatalf("blackholed send errored: %v", err)
				}
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
				defer cancel()
				if m, err := b.(interface {
					RecvContext(context.Context) ([]byte, error)
				}).RecvContext(ctx); err == nil {
					t.Fatalf("blackholed message %v delivered", m)
				}
				if err := b.Send([]byte{10}); err != nil {
					t.Fatal(err)
				}
				if m, err := a.Recv(); err != nil || m[0] != 10 {
					t.Fatalf("reverse direction broken: %v %v", m, err)
				}
			},
		},
		{
			name: "blackhole-recv-direction",
			sc:   Scenario{Seed: 44, Recv: Faults{BlackholeAfter: 1}},
			run: func(t *testing.T, a *Conn, b transport.Conn) {
				if err := b.Send([]byte{1}); err != nil {
					t.Fatal(err)
				}
				if m, err := a.Recv(); err != nil || m[0] != 1 {
					t.Fatalf("first recv: %v %v", m, err)
				}
				if err := b.Send([]byte{2}); err != nil {
					t.Fatal(err)
				}
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
				defer cancel()
				if m, err := a.RecvContext(ctx); err == nil {
					t.Fatalf("blackholed inbound message %v delivered", m)
				}
				// Outbound still flows.
				if err := a.Send([]byte{3}); err != nil {
					t.Fatal(err)
				}
				if m, err := b.Recv(); err != nil || m[0] != 3 {
					t.Fatalf("outbound direction broken: %v %v", m, err)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, b := Pipe(tc.sc)
			defer a.Close()
			tc.run(t, a, b)
		})
	}
}

// TestCrashReplayDeterminism: the crash point is a pure function of the
// scenario, so two runs see silence begin at the same message.
func TestCrashReplayDeterminism(t *testing.T) {
	crossed := func() int {
		a, b := Pipe(Scenario{Seed: 7, CrashAfter: 5})
		defer a.Close()
		n := 0
		for i := 0; i < 10; i++ {
			if err := a.Send([]byte(fmt.Sprintf("m%d", i))); err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
			_, err := b.(interface {
				RecvContext(context.Context) ([]byte, error)
			}).RecvContext(ctx)
			cancel()
			if err != nil {
				break
			}
			n++
		}
		return n
	}
	first := crossed()
	if first == 0 || first >= 10 {
		t.Fatalf("crash never engaged (crossed %d)", first)
	}
	if again := crossed(); again != first {
		t.Fatalf("replay crossed %d messages, first run %d", again, first)
	}
}
