// Package faultconn wraps a transport.Conn with deterministic, seed-driven
// fault injection: added latency, message drop, duplication, reordering,
// byte corruption, and hard partition. It is the substrate for chaos tests
// of the redistribution and PRMI stacks — every failure a hostile network
// can produce, reproducible from a single seed.
//
// Faults are configured per direction with a Scenario. All randomness comes
// from seeded PRNGs derived from Scenario.Seed, so a failing test run is
// replayed exactly by rerunning with the same seed; nothing consults
// time.Now for decisions (latency faults sleep, but whether and how long is
// seed-determined).
package faultconn

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"mxn/internal/transport"
)

// ErrPartitioned is returned by operations on a partitioned connection.
// It matches errors.Is(err, transport.ErrClosed): a partition is
// indistinguishable from a dead link to the layers above.
var ErrPartitioned = fmt.Errorf("faultconn: partitioned (%w)", transport.ErrClosed)

// Faults configures the fault mix for one direction of a connection.
// Probabilities are in [0,1] and are rolled independently per message.
type Faults struct {
	// Latency is added to every message; Jitter adds a uniform random
	// extra in [0, Jitter).
	Latency time.Duration
	Jitter  time.Duration
	// Drop is the probability a message silently disappears.
	Drop float64
	// Dup is the probability a message is delivered twice.
	Dup float64
	// Reorder is the probability a message is held back and delivered
	// after the one that follows it. A held message with no successor
	// stays held until Close — exactly the behavior of a real router
	// queue that never drains.
	Reorder float64
	// Corrupt is the probability one byte of the message is flipped
	// (in a copy; the caller's buffer is never touched).
	Corrupt float64
	// FailAfter, when positive, hard-partitions the connection after
	// that many messages have been attempted in this direction.
	FailAfter int
	// BlackholeAfter, when positive, silently discards every message in
	// this direction after that many have been attempted — an
	// asymmetric one-way partition: unlike FailAfter nothing errors and
	// the other direction keeps flowing, exactly the half-open link a
	// misconfigured firewall produces.
	BlackholeAfter int
}

// Scenario describes a complete fault environment for one connection.
type Scenario struct {
	// Seed drives every random decision. Two conns wrapped with equal
	// scenarios inject identical fault sequences.
	Seed int64
	// Send faults apply to outgoing messages, Recv faults to incoming
	// ones (after the inner Recv returns).
	Send Faults
	Recv Faults
	// CrashAfter, when positive, crashes the wrapped endpoint after
	// that many messages total (both directions combined): from then on
	// sends are silently swallowed and Recv blocks until the context is
	// done or the conn is closed — a crashed process, not a broken
	// link, so nothing ever errors on its own. Deterministic like every
	// other fault: the N+1th message observes the crash.
	CrashAfter int
	// FlapAfter, when positive, kills the inner conn after that many
	// messages total (both directions combined); FlapEvery, when
	// positive, kills it that long after the conn is wrapped. Unlike
	// FailAfter the failure is a link bounce, not a partition: operations
	// report ErrFlapped (which matches transport.ErrClosed) and a
	// Listener carrying the scenario keeps accepting, so a reconnecting
	// layer above can redial — and the replacement conn flaps too, which
	// is exactly what a reconnect soak wants.
	FlapAfter int
	FlapEvery time.Duration
}

// Conn injects faults around an inner transport.Conn. It implements
// transport.Conn and is safe for the same concurrent use as the inner conn
// (one sender and one receiver; the fault state itself is mutex-guarded).
type Conn struct {
	inner transport.Conn
	sc    Scenario

	mu          sync.Mutex
	sendRng     *rand.Rand
	recvRng     *rand.Rand
	sendHeld    [][]byte // reorder: messages waiting for a successor
	recvQueue   [][]byte // dup/reorder: messages owed to the next Recv
	recvHeld    [][]byte
	sendCount   int
	recvCount   int
	partitioned bool
	crashed     bool
	flapped     bool

	flapTimer *time.Timer
	closeOnce sync.Once
	closedCh  chan struct{} // closed by Close; unblocks crashed Recvs
}

// Wrap returns a Conn that injects sc's faults around inner.
func Wrap(inner transport.Conn, sc Scenario) *Conn {
	c := &Conn{
		inner:    inner,
		sc:       sc,
		sendRng:  rand.New(rand.NewSource(sc.Seed)),
		recvRng:  rand.New(rand.NewSource(sc.Seed + 1)),
		closedCh: make(chan struct{}),
	}
	if sc.FlapEvery > 0 {
		c.flapTimer = time.AfterFunc(sc.FlapEvery, c.Flap)
	}
	return c
}

// Pipe returns an in-memory conn pair with sc's faults injected on the
// first conn; the second is the raw peer. Faults on a's Send direction
// affect what b receives, and vice versa.
func Pipe(sc Scenario) (*Conn, transport.Conn) {
	a, b := transport.Pipe()
	return Wrap(a, sc), b
}

// Partition hard-fails the connection: the inner conn is closed (which
// unblocks any pending Recv on either end) and every subsequent operation
// reports ErrPartitioned.
func (c *Conn) Partition() {
	c.mu.Lock()
	already := c.partitioned
	c.partitioned = true
	c.mu.Unlock()
	if !already {
		c.inner.Close()
	}
}

// ErrFlapped is returned by operations on a conn whose link has flapped
// (via Flap, Scenario.FlapAfter or Scenario.FlapEvery). It matches
// errors.Is(err, transport.ErrClosed): to the layers above, a flap is a
// dead link — the difference from a partition is that redialing works.
var ErrFlapped = fmt.Errorf("faultconn: link flapped (%w)", transport.ErrClosed)

// Flap kills the inner conn as a link bounce: subsequent operations on
// this conn report ErrFlapped, but nothing is said about the network —
// a fresh dial through the same Listener succeeds. Scenario.FlapAfter
// and Scenario.FlapEvery trigger this automatically.
func (c *Conn) Flap() {
	c.mu.Lock()
	already := c.flapped || c.partitioned
	c.flapped = true
	c.mu.Unlock()
	if !already {
		c.inner.Close()
	}
}

// Flapped reports whether the link has flapped.
func (c *Conn) Flapped() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.flapped
}

// flapAfterLocked applies the message-count flap trigger; the caller
// holds c.mu. It returns true once the conn has flapped.
func (c *Conn) flapAfterLocked() bool {
	if c.flapped {
		return true
	}
	if c.sc.FlapAfter > 0 && c.sendCount+c.recvCount > c.sc.FlapAfter {
		c.flapped = true
		c.inner.Close()
	}
	return c.flapped
}

// ErrCrashed is returned by Recv on a crashed conn once it is Closed. It
// matches errors.Is(err, transport.ErrClosed). Before Close, a crashed
// conn's Recv blocks silently — a crashed peer does not announce itself.
var ErrCrashed = fmt.Errorf("faultconn: peer crashed (%w)", transport.ErrClosed)

// Crash makes the endpoint behave as a crashed process from now on: sends
// are silently swallowed (no error) and Recv blocks until its context is
// done or the conn is closed. Unlike Partition the inner conn stays open
// and nothing fails fast — the failure is only observable as silence.
// Scenario.CrashAfter triggers this automatically at a message count.
func (c *Conn) Crash() {
	c.mu.Lock()
	c.crashed = true
	c.mu.Unlock()
}

// Crashed reports whether the endpoint has crashed (via Crash or
// Scenario.CrashAfter).
func (c *Conn) Crashed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.crashed
}

// blockCrashed parks a Recv on a crashed conn until cancellation.
func (c *Conn) blockCrashed(ctx context.Context) ([]byte, error) {
	select {
	case <-ctx.Done():
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			return nil, fmt.Errorf("%w: %v", transport.ErrTimeout, ctx.Err())
		}
		return nil, ctx.Err()
	case <-c.closedCh:
		return nil, ErrCrashed
	}
}

// Close closes the inner connection.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() {
		close(c.closedCh)
		if c.flapTimer != nil {
			c.flapTimer.Stop()
		}
	})
	return c.inner.Close()
}

func (c *Conn) Send(msg []byte) error {
	return c.SendContext(context.Background(), msg)
}

// SendV implements transport.VectorWriter by flattening the segments
// into one message and running it through the normal per-message fault
// pipeline. Vectored callers therefore observe exactly the
// frame-granularity drop/corrupt/duplicate/flap semantics that flat
// callers do — the fault plan never sees segment boundaries.
func (c *Conn) SendV(segs net.Buffers) error {
	total := 0
	for _, s := range segs {
		total += len(s)
	}
	flat := make([]byte, 0, total)
	for _, s := range segs {
		flat = append(flat, s...)
	}
	return c.Send(flat)
}

// sendPlan is the outcome of rolling the send-direction faults for one
// message, decided under the mutex so the PRNG sequence is deterministic.
type sendPlan struct {
	delay   time.Duration
	out     [][]byte // messages to hand to the inner conn, in order
	blocked error    // non-nil: fail without touching the inner conn
}

func (c *Conn) planSend(msg []byte) sendPlan {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.partitioned {
		return sendPlan{blocked: ErrPartitioned}
	}
	f := c.sc.Send
	c.sendCount++
	if c.sc.CrashAfter > 0 && c.sendCount+c.recvCount > c.sc.CrashAfter {
		c.crashed = true
	}
	if c.crashed {
		return sendPlan{} // swallowed: a crashed process sends nothing
	}
	if c.flapAfterLocked() {
		return sendPlan{blocked: ErrFlapped}
	}
	if f.FailAfter > 0 && c.sendCount > f.FailAfter {
		c.partitioned = true
		c.inner.Close()
		return sendPlan{blocked: ErrPartitioned}
	}
	if f.BlackholeAfter > 0 && c.sendCount > f.BlackholeAfter {
		return sendPlan{} // one-way partition: outgoing silence
	}
	var p sendPlan
	p.delay = rollLatency(c.sendRng, f)
	if roll(c.sendRng, f.Drop) {
		return p // silently dropped; the latency was still "spent"
	}
	m := cloneMsg(msg)
	if roll(c.sendRng, f.Corrupt) {
		flipByte(c.sendRng, m)
	}
	if roll(c.sendRng, f.Reorder) {
		c.sendHeld = append(c.sendHeld, m)
		return p
	}
	p.out = append(p.out, m)
	if roll(c.sendRng, f.Dup) {
		p.out = append(p.out, cloneMsg(m))
	}
	// A successor releases everything held for reordering: held messages
	// go out after it, which is exactly the inversion we promised.
	p.out = append(p.out, c.sendHeld...)
	c.sendHeld = nil
	return p
}

func (c *Conn) SendContext(ctx context.Context, msg []byte) error {
	p := c.planSend(msg)
	if p.blocked != nil {
		return p.blocked
	}
	if err := sleepCtx(ctx, p.delay); err != nil {
		return err
	}
	for _, m := range p.out {
		if err := c.inner.SendContext(ctx, m); err != nil {
			return err
		}
	}
	return nil
}

func (c *Conn) Recv() ([]byte, error) {
	return c.RecvContext(context.Background())
}

func (c *Conn) RecvContext(ctx context.Context) ([]byte, error) {
	for {
		c.mu.Lock()
		if c.partitioned {
			c.mu.Unlock()
			return nil, ErrPartitioned
		}
		if c.flapped {
			c.mu.Unlock()
			return nil, ErrFlapped
		}
		if c.crashed {
			c.mu.Unlock()
			return c.blockCrashed(ctx)
		}
		if len(c.recvQueue) > 0 {
			m := c.recvQueue[0]
			c.recvQueue = c.recvQueue[1:]
			c.mu.Unlock()
			return m, nil
		}
		c.mu.Unlock()

		msg, err := c.inner.RecvContext(ctx)
		if err != nil {
			c.mu.Lock()
			partitioned, flapped := c.partitioned, c.flapped
			c.mu.Unlock()
			if errors.Is(err, transport.ErrClosed) {
				if partitioned {
					return nil, ErrPartitioned
				}
				if flapped {
					return nil, ErrFlapped
				}
			}
			return nil, err
		}

		c.mu.Lock()
		f := c.sc.Recv
		c.recvCount++
		if c.sc.CrashAfter > 0 && c.sendCount+c.recvCount > c.sc.CrashAfter {
			c.crashed = true
		}
		if c.crashed {
			// The message arrived after the crash: it was never read.
			c.mu.Unlock()
			return c.blockCrashed(ctx)
		}
		if c.flapAfterLocked() {
			// The link bounced while this message was in flight: it is
			// lost with the conn, like bytes in a dying socket buffer.
			c.mu.Unlock()
			return nil, ErrFlapped
		}
		if f.BlackholeAfter > 0 && c.recvCount > f.BlackholeAfter {
			c.mu.Unlock()
			continue // one-way partition: incoming silence
		}
		if f.FailAfter > 0 && c.recvCount > f.FailAfter {
			c.partitioned = true
			c.inner.Close()
			c.mu.Unlock()
			return nil, ErrPartitioned
		}
		delay := rollLatency(c.recvRng, f)
		if roll(c.recvRng, f.Drop) {
			c.mu.Unlock()
			if err := sleepCtx(ctx, delay); err != nil {
				return nil, err
			}
			continue // the message never existed; wait for the next one
		}
		if roll(c.recvRng, f.Corrupt) {
			flipByte(c.recvRng, msg)
		}
		if roll(c.recvRng, f.Reorder) {
			c.recvHeld = append(c.recvHeld, msg)
			c.mu.Unlock()
			if err := sleepCtx(ctx, delay); err != nil {
				return nil, err
			}
			continue // deliver the successor first
		}
		if roll(c.recvRng, f.Dup) {
			c.recvQueue = append(c.recvQueue, cloneMsg(msg))
		}
		// Successor delivered; release anything held for reordering.
		c.recvQueue = append(c.recvQueue, c.recvHeld...)
		c.recvHeld = nil
		c.mu.Unlock()
		if err := sleepCtx(ctx, delay); err != nil {
			return nil, err
		}
		return msg, nil
	}
}

// Listener wraps a transport.Listener so every accepted conn carries the
// scenario's faults. Each conn gets a distinct PRNG stream (seed offset by
// accept order) so scenarios stay deterministic across multiple conns.
type Listener struct {
	inner transport.Listener
	sc    Scenario
	mu    sync.Mutex
	n     int64
}

// WrapListener wraps l with sc.
func WrapListener(l transport.Listener, sc Scenario) *Listener {
	return &Listener{inner: l, sc: sc}
}

func (l *Listener) Accept() (transport.Conn, error) {
	c, err := l.inner.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	sc := l.sc
	sc.Seed += 2 * l.n // Wrap burns Seed and Seed+1 per conn
	l.n++
	l.mu.Unlock()
	return Wrap(c, sc), nil
}

func (l *Listener) Close() error { return l.inner.Close() }

func (l *Listener) Addr() string { return l.inner.Addr() }

func roll(rng *rand.Rand, p float64) bool {
	if p <= 0 {
		return false
	}
	return rng.Float64() < p
}

func rollLatency(rng *rand.Rand, f Faults) time.Duration {
	d := f.Latency
	if f.Jitter > 0 {
		d += time.Duration(rng.Int63n(int64(f.Jitter)))
	}
	return d
}

func flipByte(rng *rand.Rand, m []byte) {
	if len(m) == 0 {
		return
	}
	i := rng.Intn(len(m))
	// XOR with a random non-zero mask so the byte always changes.
	m[i] ^= byte(1 + rng.Intn(255))
}

func cloneMsg(m []byte) []byte {
	cp := make([]byte, len(m))
	copy(cp, m)
	return cp
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			return fmt.Errorf("%w: %v", transport.ErrTimeout, ctx.Err())
		}
		return ctx.Err()
	}
}
