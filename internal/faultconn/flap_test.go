package faultconn

import (
	"errors"
	"testing"
	"time"

	"mxn/internal/transport"
)

func TestFlapAfterKillsConnAsClosed(t *testing.T) {
	fc, peer := Pipe(Scenario{FlapAfter: 2})
	defer fc.Close()
	defer peer.Close()

	for i := 0; i < 2; i++ {
		if err := fc.Send([]byte("ok")); err != nil {
			t.Fatalf("Send %d before flap: %v", i, err)
		}
		if _, err := peer.Recv(); err != nil {
			t.Fatalf("peer Recv %d: %v", i, err)
		}
	}
	err := fc.Send([]byte("doomed"))
	if !errors.Is(err, ErrFlapped) {
		t.Fatalf("Send after flap: %v, want ErrFlapped", err)
	}
	if !errors.Is(err, transport.ErrClosed) {
		t.Fatal("ErrFlapped does not match transport.ErrClosed")
	}
	if !fc.Flapped() {
		t.Fatal("Flapped() false after count trigger")
	}
	// The inner conn died with the flap: the peer observes a closed link.
	if _, err := peer.Recv(); !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("peer Recv after flap: %v, want ErrClosed", err)
	}
	if _, err := fc.Recv(); !errors.Is(err, ErrFlapped) {
		t.Fatalf("Recv after flap: %v, want ErrFlapped", err)
	}
}

func TestFlapEveryKillsConnOnTimer(t *testing.T) {
	fc, peer := Pipe(Scenario{FlapEvery: 20 * time.Millisecond})
	defer fc.Close()
	defer peer.Close()

	if err := fc.Send([]byte("early")); err != nil {
		t.Fatalf("Send before flap: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for !fc.Flapped() {
		if time.Now().After(deadline) {
			t.Fatal("FlapEvery timer never fired")
		}
		time.Sleep(time.Millisecond)
	}
	if err := fc.Send([]byte("late")); !errors.Is(err, ErrFlapped) {
		t.Fatalf("Send after timed flap: %v, want ErrFlapped", err)
	}
}

// TestFlapListenerKeepsAccepting is the property that separates a flap
// from a partition: each accepted conn dies after the count, but redials
// through the same listener keep working.
func TestFlapListenerKeepsAccepting(t *testing.T) {
	inner, err := transport.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	l := WrapListener(inner, Scenario{FlapAfter: 2})
	defer l.Close()

	srvErr := make(chan error, 8)
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				for {
					msg, err := c.Recv()
					if err != nil {
						if !errors.Is(err, transport.ErrClosed) {
							srvErr <- err
						}
						return
					}
					if err := c.Send(msg); err != nil && !errors.Is(err, transport.ErrClosed) {
						srvErr <- err
						return
					}
				}
			}()
		}
	}()

	// Three dial generations: each accepted conn flaps after two
	// messages (an echo round is one recv + one send on the server conn),
	// but a fresh dial always succeeds.
	for gen := 0; gen < 3; gen++ {
		c, err := transport.Dial("tcp", l.Addr())
		if err != nil {
			t.Fatalf("gen %d: Dial: %v", gen, err)
		}
		if err := c.Send([]byte("ping")); err != nil {
			t.Fatalf("gen %d: Send: %v", gen, err)
		}
		if _, err := c.Recv(); err != nil {
			t.Fatalf("gen %d: echo: %v", gen, err)
		}
		// The second round trips the server conn's flap (recv count 2
		// pushes total past 2 on send): the client sees the link die.
		c.Send([]byte("ping"))
		c.Recv()
		c.Close()
	}
	select {
	case err := <-srvErr:
		t.Fatalf("server fault: %v", err)
	default:
	}
}
