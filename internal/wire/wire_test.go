package wire

import (
	"bytes"
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestScalarRoundTrip(t *testing.T) {
	e := NewEncoder(nil)
	e.PutUint64(math.MaxUint64)
	e.PutInt64(-12345)
	e.PutInt(-7)
	e.PutUvarint(300)
	e.PutFloat64(math.Pi)
	e.PutBool(true)
	e.PutBool(false)
	e.PutByte(0xAB)
	e.PutString("hello, 世界")
	e.PutBytes([]byte{1, 2, 3})
	e.PutFloat64s([]float64{1.5, -2.5})
	e.PutInt64s([]int64{-1, 0, 1})
	e.PutInts([]int{9, 8})

	d := NewDecoder(e.Bytes())
	if v := d.Uint64(); v != math.MaxUint64 {
		t.Errorf("Uint64 = %v", v)
	}
	if v := d.Int64(); v != -12345 {
		t.Errorf("Int64 = %v", v)
	}
	if v := d.Int(); v != -7 {
		t.Errorf("Int = %v", v)
	}
	if v := d.Uvarint(); v != 300 {
		t.Errorf("Uvarint = %v", v)
	}
	if v := d.Float64(); v != math.Pi {
		t.Errorf("Float64 = %v", v)
	}
	if !d.Bool() || d.Bool() {
		t.Error("Bool round trip failed")
	}
	if v := d.Byte(); v != 0xAB {
		t.Errorf("Byte = %x", v)
	}
	if v := d.String(); v != "hello, 世界" {
		t.Errorf("String = %q", v)
	}
	if v := d.Bytes(); !bytes.Equal(v, []byte{1, 2, 3}) {
		t.Errorf("Bytes = %v", v)
	}
	if v := d.Float64s(); !reflect.DeepEqual(v, []float64{1.5, -2.5}) {
		t.Errorf("Float64s = %v", v)
	}
	if v := d.Int64s(); !reflect.DeepEqual(v, []int64{-1, 0, 1}) {
		t.Errorf("Int64s = %v", v)
	}
	if v := d.Ints(); !reflect.DeepEqual(v, []int{9, 8}) {
		t.Errorf("Ints = %v", v)
	}
	if d.Err() != nil {
		t.Errorf("decoder error: %v", d.Err())
	}
	if d.Remaining() != 0 {
		t.Errorf("remaining = %d", d.Remaining())
	}
}

func TestValueRoundTrip(t *testing.T) {
	cases := []any{
		nil,
		true,
		int64(-99),
		3.75,
		"s",
		[]byte{0xFF},
		[]float64{1, 2, 3},
		[]float32{1.5, -2.25},
		[]int64{5},
		[]int32{-7, 1 << 30},
		[]int{1, 2},
		complex(1.5, -2.5),
		[]complex128{complex(0, 1), complex(-3.5, 7)},
		[]any{int64(1), "two", []float64{3}},
	}
	for _, want := range cases {
		e := NewEncoder(nil)
		e.PutValue(want)
		d := NewDecoder(e.Bytes())
		got := d.Value()
		if d.Err() != nil {
			t.Errorf("%v: decode error %v", want, d.Err())
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("value round trip: got %#v want %#v", got, want)
		}
	}
}

func TestValueIntBecomesInt64(t *testing.T) {
	e := NewEncoder(nil)
	e.PutValue(42) // plain int
	d := NewDecoder(e.Bytes())
	if got := d.Value(); got != int64(42) {
		t.Errorf("got %#v, want int64(42)", got)
	}
}

func TestValueUnsupportedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("PutValue(struct{}{}) did not panic")
		}
	}()
	NewEncoder(nil).PutValue(struct{}{})
}

func TestDecoderStickyError(t *testing.T) {
	d := NewDecoder([]byte{1, 2}) // too short for anything big
	_ = d.Uint64()
	if d.Err() == nil {
		t.Fatal("short read did not error")
	}
	// Subsequent reads return zero values, no panic.
	if d.Int64() != 0 || d.Float64() != 0 || d.String() != "" {
		t.Error("post-error reads returned nonzero values")
	}
}

func TestCorruptLengthPrefix(t *testing.T) {
	e := NewEncoder(nil)
	e.PutUvarint(1 << 40) // claims a huge string
	d := NewDecoder(e.Bytes())
	if s := d.String(); s != "" || d.Err() == nil {
		t.Errorf("oversized prefix: got %q err=%v", s, d.Err())
	}
	// Oversized slice claim must not allocate petabytes.
	e2 := NewEncoder(nil)
	e2.PutUvarint(1 << 40)
	d2 := NewDecoder(e2.Bytes())
	if v := d2.Float64s(); v != nil || d2.Err() == nil {
		t.Errorf("oversized float64s: got %v err=%v", v, d2.Err())
	}
}

func TestCorruptValueTag(t *testing.T) {
	d := NewDecoder([]byte{0xEE})
	if v := d.Value(); v != nil || d.Err() == nil {
		t.Errorf("bad tag: got %v err=%v", v, d.Err())
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	msgs := [][]byte{[]byte("one"), {}, []byte("three")}
	for _, m := range msgs {
		if err := WriteFrame(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range msgs {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("frame = %q, want %q", got, want)
		}
	}
}

func TestFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-2]
	if _, err := ReadFrame(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated frame did not error")
	}
}

// Property: any sequence of primitive values round-trips.
func TestQuickRoundTrip(t *testing.T) {
	f := func(u uint64, i int64, fl float64, b bool, s string, bs []byte, fs []float64, is []int64) bool {
		e := NewEncoder(nil)
		e.PutUint64(u)
		e.PutInt64(i)
		e.PutFloat64(fl)
		e.PutBool(b)
		e.PutString(s)
		e.PutBytes(bs)
		e.PutFloat64s(fs)
		e.PutInt64s(is)
		d := NewDecoder(e.Bytes())
		gotU := d.Uint64()
		gotI := d.Int64()
		gotF := d.Float64()
		gotB := d.Bool()
		gotS := d.String()
		gotBs := d.Bytes()
		gotFs := d.Float64s()
		gotIs := d.Int64s()
		if d.Err() != nil || d.Remaining() != 0 {
			return false
		}
		if gotU != u || gotI != i || gotB != b || gotS != s {
			return false
		}
		// NaN-safe float comparison via bit patterns.
		if math.Float64bits(gotF) != math.Float64bits(fl) {
			return false
		}
		if len(gotBs) != len(bs) || !bytes.Equal(gotBs, bs) {
			return false
		}
		if len(gotFs) != len(fs) || len(gotIs) != len(is) {
			return false
		}
		for k := range fs {
			if math.Float64bits(gotFs[k]) != math.Float64bits(fs[k]) {
				return false
			}
		}
		for k := range is {
			if gotIs[k] != is[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Decoder never panics on arbitrary input bytes.
func TestQuickDecoderRobustness(t *testing.T) {
	f := func(data []byte) bool {
		d := NewDecoder(data)
		for d.Err() == nil && d.Remaining() > 0 {
			_ = d.Value()
		}
		return true // reaching here without panic is the property
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
