package wire

import (
	"bytes"
	"errors"
	"net"
	"testing"
)

// FuzzDecoder drives the self-describing value decoder with arbitrary
// bytes. The decoder's contract under corruption is: never panic, always
// terminate, and report ErrCorrupt through Err (possibly wrapped).
func FuzzDecoder(f *testing.F) {
	// Seed with valid encodings of every supported dynamic type.
	seed := func(v any) {
		e := NewEncoder(nil)
		e.PutValue(v)
		f.Add(e.Bytes())
	}
	seed(nil)
	seed(true)
	seed(int64(-42))
	seed(3.14159)
	seed("hello, wire")
	seed([]byte{0, 1, 2, 255})
	seed([]float64{1, 2, 3.5})
	seed([]int64{-1, 0, 1 << 40})
	seed([]int{7, 8, 9})
	seed([]any{int64(1), "two", []float64{3}, []any{nil, false}})
	// And a multi-value stream as PRMI messages produce.
	e := NewEncoder(nil)
	e.PutString("method")
	e.PutUint64(99)
	e.PutUvarint(3)
	e.PutValue([]float64{1, 2})
	f.Add(e.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(data)
		// Walk the buffer with a mix of typed reads until exhausted or
		// failed; every call must return, never panic.
		for d.Err() == nil && d.Remaining() > 0 {
			switch d.Remaining() % 5 {
			case 0:
				_ = d.Value()
			case 1:
				_ = d.String()
			case 2:
				_ = d.Float64s()
			case 3:
				_ = d.Uvarint()
			case 4:
				_ = d.Ints()
			}
		}
		if err := d.Err(); err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("decoder failed with %v, want ErrCorrupt", err)
		}
	})
}

// FuzzReadFrame feeds arbitrary byte streams to the frame reader: it must
// never panic, and whenever it accepts a frame from a stream produced by
// flipping bits in a valid frame, the checksum must have matched.
func FuzzReadFrame(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("seed payload")); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Round-trip: a frame that passed the checksum re-encodes to the
		// same header+payload prefix of the input.
		var out bytes.Buffer
		if err := WriteFrame(&out, payload); err != nil {
			t.Fatalf("re-encode of accepted frame failed: %v", err)
		}
		if !bytes.Equal(out.Bytes(), data[:out.Len()]) {
			t.Fatalf("accepted frame does not round-trip")
		}
	})
}

// FuzzWireFrameV round-trips arbitrary payloads through the vectored
// framer at arbitrary segment boundaries: the wire bytes must be
// bit-identical to the legacy WriteFrame of the concatenated payload,
// and ReadFrame must recover the payload exactly.
func FuzzWireFrameV(f *testing.F) {
	f.Add([]byte("seed payload"), uint16(3))
	f.Add([]byte{}, uint16(0))
	f.Add([]byte{0}, uint16(1))
	f.Add(bytes.Repeat([]byte{0xAB}, 300), uint16(17))

	f.Fuzz(func(t *testing.T, payload []byte, chop uint16) {
		// Derive a segmentation from chop: cut every (chop%31)+1 bytes,
		// and make every fourth segment empty to exercise zero-length
		// iovec entries.
		step := int(chop%31) + 1
		var segs net.Buffers
		for off := 0; off < len(payload); off += step {
			end := min(off+step, len(payload))
			segs = append(segs, payload[off:end])
			if len(segs)%4 == 0 {
				segs = append(segs, nil)
			}
		}

		var vec bytes.Buffer
		if err := WriteFrameV(&vec, segs); err != nil {
			t.Fatalf("WriteFrameV: %v", err)
		}
		var legacy bytes.Buffer
		if err := WriteFrame(&legacy, payload); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
		if !bytes.Equal(vec.Bytes(), legacy.Bytes()) {
			t.Fatalf("vectored frame differs from legacy frame for %d segments", len(segs))
		}
		got, err := ReadFrame(&vec)
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("round-trip payload mismatch")
		}
	})
}
