package wire

import (
	"bytes"
	"net"
	"testing"
)

// splitAt cuts b into segments at the given offsets (sorted, within
// range). Zero-length segments are kept: WriteFrameV must tolerate them.
func splitAt(b []byte, offs ...int) net.Buffers {
	var segs net.Buffers
	prev := 0
	for _, o := range offs {
		segs = append(segs, b[prev:o])
		prev = o
	}
	return append(segs, b[prev:])
}

// TestWriteFrameVBitIdentical: the vectored framer must produce exactly
// the bytes WriteFrame produces for the concatenated payload, for every
// segmentation — including empty and nil segments.
func TestWriteFrameVBitIdentical(t *testing.T) {
	payload := make([]byte, 1000)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	cases := []struct {
		name string
		segs net.Buffers
	}{
		{"nil", nil},
		{"empty", net.Buffers{}},
		{"one-empty-seg", net.Buffers{nil}},
		{"single", net.Buffers{payload}},
		{"two", splitAt(payload, 400)},
		{"many", splitAt(payload, 1, 2, 3, 500, 999)},
		{"empty-segs-mixed", splitAt(payload, 0, 0, 500, 500, 1000)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var want []byte
			for _, s := range tc.segs {
				want = append(want, s...)
			}
			var legacy bytes.Buffer
			if err := WriteFrame(&legacy, want); err != nil {
				t.Fatal(err)
			}
			var vec bytes.Buffer
			if err := WriteFrameV(&vec, tc.segs); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(legacy.Bytes(), vec.Bytes()) {
				t.Fatalf("vectored frame differs from legacy frame\nlegacy %x\nvector %x",
					legacy.Bytes(), vec.Bytes())
			}
			got, err := ReadFrame(&vec)
			if err != nil {
				t.Fatalf("ReadFrame of vectored frame: %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("round-trip payload mismatch")
			}
		})
	}
}

// TestWriteFrameVDoesNotRetainSegments: WriteFrameV must not hold onto
// the caller's segment slices after it returns (the pooled iovec must be
// scrubbed), and repeated calls must not interleave state.
func TestWriteFrameVDoesNotRetainSegments(t *testing.T) {
	a := []byte("first payload segment")
	b := []byte("second segment")
	var buf1 bytes.Buffer
	if err := WriteFrameV(&buf1, net.Buffers{a, b}); err != nil {
		t.Fatal(err)
	}
	// Mutate the caller's buffers after the call; a second frame with
	// fresh contents must not see the old bytes.
	copy(a, "FIRST PAYLOAD SEGMENT")
	var buf2 bytes.Buffer
	if err := WriteFrameV(&buf2, net.Buffers{a, b}); err != nil {
		t.Fatal(err)
	}
	p1, err := ReadFrame(&buf1)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ReadFrame(&buf2)
	if err != nil {
		t.Fatal(err)
	}
	if string(p1) != "first payload segmentsecond segment" {
		t.Fatalf("frame 1 payload = %q", p1)
	}
	if string(p2) != "FIRST PAYLOAD SEGMENTsecond segment" {
		t.Fatalf("frame 2 payload = %q", p2)
	}
}

// TestWriteFrameVOversize: the summed segment length is bounded exactly
// like WriteFrame's payload length. Each segment is legal alone; only
// the sum exceeds MaxFrame. The length check fires before any segment
// byte is read, so the untouched zero pages stay untouched.
func TestWriteFrameVOversize(t *testing.T) {
	half := make([]byte, MaxFrame/2+1)
	segs := net.Buffers{half, half}
	if err := WriteFrameV(discardWriter{}, segs); err == nil {
		t.Fatal("oversize vectored frame accepted")
	}
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }

// TestEncoderVectorSplit: a borrow-mode encoder splits its output into
// header bytes plus the borrowed payload, and the concatenation equals a
// plain encoder's output for the same puts.
func TestEncoderVectorSplit(t *testing.T) {
	payload := []byte{9, 8, 7, 6, 5}

	plain := NewEncoder(nil)
	plain.PutUint64(42)
	plain.PutString("hdr")
	plain.PutBytesRef(payload) // plain encoder: falls back to a copy
	want := plain.Bytes()

	v := NewEncoderV(nil)
	if !v.Borrowing() {
		t.Fatal("NewEncoderV not in borrow mode")
	}
	v.PutUint64(42)
	v.PutString("hdr")
	v.PutBytesRef(payload)
	head, data := v.Vector()
	if len(data) != len(payload) || &data[0] != &payload[0] {
		t.Fatal("borrow-mode PutBytesRef did not borrow the caller's slice")
	}
	got := append(append([]byte(nil), head...), data...)
	if !bytes.Equal(got, want) {
		t.Fatalf("vector split bytes differ from plain encoding\nplain %x\nsplit %x", want, got)
	}

	// Decode the concatenation to prove the borrowed field reads back.
	d := NewDecoder(got)
	if d.Uint64() != 42 || d.String() != "hdr" {
		t.Fatal("header fields corrupted")
	}
	if !bytes.Equal(d.Bytes(), payload) || d.Err() != nil {
		t.Fatal("payload field corrupted")
	}
}

// TestEncoderVectorNoBorrow: a borrow-mode encoder with no PutBytesRef
// call yields a nil payload from Vector.
func TestEncoderVectorNoBorrow(t *testing.T) {
	v := NewEncoderV(nil)
	v.PutUint64(7)
	head, data := v.Vector()
	if data != nil {
		t.Fatal("Vector returned a payload with no PutBytesRef")
	}
	if len(head) == 0 {
		t.Fatal("Vector lost the header bytes")
	}
	// Empty refs degrade to the inline empty encoding.
	v.Reset()
	v.PutBytesRef(nil)
	if _, data := v.Vector(); data != nil {
		t.Fatal("empty PutBytesRef should not borrow")
	}
}

// TestEncoderSecondBorrowPanics: the wire format carries the borrowed
// payload as the final frame segment, so a second borrow is a
// programming error the encoder must refuse loudly.
func TestEncoderSecondBorrowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("second PutBytesRef did not panic")
		}
	}()
	v := NewEncoderV(nil)
	v.PutBytesRef([]byte{1})
	v.PutBytesRef([]byte{2})
}

// TestDecoderBorrowBytesAliases: BorrowBytes returns a view into the
// decoder's input (zero copy), whereas Bytes returns an independent
// copy. Both must read the same field encoding.
func TestDecoderBorrowBytesAliases(t *testing.T) {
	e := NewEncoder(nil)
	e.PutBytes([]byte("payload goes here"))
	input := e.Bytes()

	d := NewDecoder(input)
	borrowed := d.BorrowBytes()
	if d.Err() != nil {
		t.Fatal(d.Err())
	}
	if string(borrowed) != "payload goes here" {
		t.Fatalf("borrowed = %q", borrowed)
	}
	// The borrow aliases the input: mutating the input shows through.
	input[len(input)-1] = '!'
	if borrowed[len(borrowed)-1] != '!' {
		t.Fatal("BorrowBytes did not alias the decoder input")
	}
	input[len(input)-1] = 'e'

	d2 := NewDecoder(input)
	copied := d2.Bytes()
	input[len(input)-1] = '!'
	if copied[len(copied)-1] == '!' {
		t.Fatal("Bytes aliased the decoder input; must copy")
	}
}
