// Package wire implements the binary encoding used when M×N middleware
// traffic leaves a process: framed messages over a stream, and a compact
// self-describing encoding for the value kinds that cross component
// boundaries (scalars, strings, numeric arrays and descriptor metadata).
//
// The encoding is little-endian and length-prefixed throughout. It is not a
// general serialization system; it covers exactly the types the paper's
// middleware moves — which keeps the codec allocation-light and easy to
// audit.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"net"
	"sync"

	"mxn/internal/obs"
)

// Frame-level instruments, registered in the process-default registry.
// bytes_vectored vs bytes_copied split the payload bytes of written
// frames by path: scatter-gather frames (WriteFrameV) never flatten
// their segments, flat frames (WriteFrame) carry payloads that were
// materialized contiguously by the caller. The ratio is the headline of
// the zero-copy wire path.
var (
	mFramesWritten    = obs.Default().Counter("wire.frames_written")
	mFramesRead       = obs.Default().Counter("wire.frames_read")
	mBytesWritten     = obs.Default().Counter("wire.bytes_written")
	mBytesRead        = obs.Default().Counter("wire.bytes_read")
	mBytesVectored    = obs.Default().Counter("wire.bytes_vectored")
	mBytesCopied      = obs.Default().Counter("wire.bytes_copied")
	mChecksumFailures = obs.Default().Counter("wire.checksum_failures")
	mFrameBytes       = obs.Default().Histogram("wire.frame_bytes")
)

// ErrCorrupt reports a malformed buffer.
var ErrCorrupt = errors.New("wire: corrupt data")

// Encoder appends encoded values to a byte buffer. The zero value is ready
// to use; Bytes returns the accumulated encoding.
//
// An encoder created with NewEncoderV additionally operates in borrow
// mode: PutBytesRef records a reference to the caller's slice instead of
// copying it into the buffer, and Vector returns the (header, payload)
// pair for scatter-gather framing via WriteFrameV. Borrow mode exists so
// large payloads travel from the pack buffer to the socket without an
// intermediate flatten.
type Encoder struct {
	buf     []byte
	payload []byte
	borrow  bool
}

// NewEncoder returns an encoder that appends to buf (which may be nil).
func NewEncoder(buf []byte) *Encoder { return &Encoder{buf: buf} }

// NewEncoderV returns a borrow-mode encoder appending header bytes to buf
// (which may be nil). In borrow mode PutBytesRef records the payload
// slice by reference; retrieve both segments with Vector. At most one
// slice may be borrowed per encoding and it must be the final
// variable-length field, since on the wire the borrowed bytes follow
// every header byte.
func NewEncoderV(buf []byte) *Encoder { return &Encoder{buf: buf, borrow: true} }

// Borrowing reports whether the encoder was created with NewEncoderV and
// will record PutBytesRef slices by reference instead of copying them.
func (e *Encoder) Borrowing() bool { return e.borrow }

// Bytes returns the encoded buffer. On a borrow-mode encoder that has
// recorded a payload this is only the header segment; use Vector.
func (e *Encoder) Bytes() []byte { return e.buf }

// Vector returns the header bytes and the borrowed payload segment (nil
// when nothing was borrowed, including on plain encoders). The wire
// representation is the concatenation head ++ payload.
func (e *Encoder) Vector() (head, payload []byte) { return e.buf, e.payload }

// Reset discards the accumulated encoding (and any borrowed payload) but
// keeps the capacity.
func (e *Encoder) Reset() {
	e.buf = e.buf[:0]
	e.payload = nil
}

// Len returns the current encoded length in bytes.
func (e *Encoder) Len() int { return len(e.buf) }

// Unwrite removes the last n appended bytes, undoing a speculative write.
func (e *Encoder) Unwrite(n int) { e.buf = e.buf[:len(e.buf)-n] }

// PutUint64 appends a fixed-width 64-bit unsigned integer.
func (e *Encoder) PutUint64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

// PutInt64 appends a fixed-width 64-bit signed integer.
func (e *Encoder) PutInt64(v int64) { e.PutUint64(uint64(v)) }

// PutInt appends an int as a 64-bit signed integer.
func (e *Encoder) PutInt(v int) { e.PutInt64(int64(v)) }

// PutUvarint appends a variable-width unsigned integer.
func (e *Encoder) PutUvarint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

// PutFloat64 appends an IEEE-754 double.
func (e *Encoder) PutFloat64(v float64) { e.PutUint64(math.Float64bits(v)) }

// PutBool appends a boolean as one byte.
func (e *Encoder) PutBool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	e.buf = append(e.buf, b)
}

// PutByte appends a raw byte.
func (e *Encoder) PutByte(b byte) { e.buf = append(e.buf, b) }

// PutString appends a length-prefixed string.
func (e *Encoder) PutString(s string) {
	e.PutUvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// PutBytes appends a length-prefixed byte slice.
func (e *Encoder) PutBytes(b []byte) {
	e.PutUvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// PutBytesRef appends a length-prefixed byte slice without copying it
// when the encoder is in borrow mode: the length prefix lands in the
// header buffer and b itself is recorded as the payload segment returned
// by Vector. The caller must not mutate b until the frame carrying it
// has been written (or, for owned transfers, until the transport releases
// it). On a plain encoder this is identical to PutBytes. An empty b is
// never borrowed, so Vector stays nil for zero-length payloads.
func (e *Encoder) PutBytesRef(b []byte) {
	if !e.borrow || len(b) == 0 {
		e.PutBytes(b)
		return
	}
	if e.payload != nil {
		panic("wire: second PutBytesRef on a borrow-mode encoder")
	}
	e.PutUvarint(uint64(len(b)))
	e.payload = b
}

// PutFloat64s appends a length-prefixed []float64.
func (e *Encoder) PutFloat64s(v []float64) {
	e.PutUvarint(uint64(len(v)))
	for _, x := range v {
		e.PutFloat64(x)
	}
}

// PutFloat32 appends an IEEE-754 single.
func (e *Encoder) PutFloat32(v float32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], math.Float32bits(v))
	e.buf = append(e.buf, b[:]...)
}

// PutComplex128 appends a complex128 as two IEEE-754 doubles (real,
// imaginary).
func (e *Encoder) PutComplex128(v complex128) {
	e.PutFloat64(real(v))
	e.PutFloat64(imag(v))
}

// PutFloat32s appends a length-prefixed []float32.
func (e *Encoder) PutFloat32s(v []float32) {
	e.PutUvarint(uint64(len(v)))
	for _, x := range v {
		e.PutFloat32(x)
	}
}

// PutInt32s appends a length-prefixed []int32.
func (e *Encoder) PutInt32s(v []int32) {
	e.PutUvarint(uint64(len(v)))
	for _, x := range v {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], uint32(x))
		e.buf = append(e.buf, b[:]...)
	}
}

// PutComplex128s appends a length-prefixed []complex128.
func (e *Encoder) PutComplex128s(v []complex128) {
	e.PutUvarint(uint64(len(v)))
	for _, x := range v {
		e.PutComplex128(x)
	}
}

// PutInt64s appends a length-prefixed []int64.
func (e *Encoder) PutInt64s(v []int64) {
	e.PutUvarint(uint64(len(v)))
	for _, x := range v {
		e.PutInt64(x)
	}
}

// PutInts appends a length-prefixed []int.
func (e *Encoder) PutInts(v []int) {
	e.PutUvarint(uint64(len(v)))
	for _, x := range v {
		e.PutInt64(int64(x))
	}
}

// Decoder consumes values from a byte buffer produced by Encoder. Decode
// errors are sticky: after the first failure every subsequent Get reports
// the same error through Err, and zero values are returned.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder returns a decoder reading from buf.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Err returns the first decode error, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) fail() {
	if d.err == nil {
		d.err = ErrCorrupt
	}
}

func (d *Decoder) take(n int) []byte {
	if d.err != nil || d.off+n > len(d.buf) {
		d.fail()
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// Uint64 reads a fixed-width 64-bit unsigned integer.
func (d *Decoder) Uint64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// Int64 reads a fixed-width 64-bit signed integer.
func (d *Decoder) Int64() int64 { return int64(d.Uint64()) }

// Int reads an int encoded by PutInt.
func (d *Decoder) Int() int { return int(d.Int64()) }

// Uvarint reads a variable-width unsigned integer.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

// Float64 reads an IEEE-754 double.
func (d *Decoder) Float64() float64 { return math.Float64frombits(d.Uint64()) }

// Bool reads a boolean.
func (d *Decoder) Bool() bool {
	b := d.take(1)
	if b == nil {
		return false
	}
	return b[0] != 0
}

// Byte reads a raw byte.
func (d *Decoder) Byte() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// stringLen validates a length prefix against the remaining buffer.
func (d *Decoder) lenPrefix() (int, bool) {
	n := d.Uvarint()
	if d.err != nil {
		return 0, false
	}
	if n > uint64(d.Remaining()) {
		d.fail()
		return 0, false
	}
	return int(n), true
}

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	n, ok := d.lenPrefix()
	if !ok {
		return ""
	}
	return string(d.take(n))
}

// Bytes reads a length-prefixed byte slice. The result is a copy.
func (d *Decoder) Bytes() []byte {
	n, ok := d.lenPrefix()
	if !ok {
		return nil
	}
	b := d.take(n)
	out := make([]byte, n)
	copy(out, b)
	return out
}

// BorrowBytes reads a length-prefixed byte slice without copying: the
// result aliases the decoder's input buffer. The caller owns the view
// only as long as it owns the input buffer — it must copy out (or finish
// consuming) the bytes before the buffer is reused or returned to a
// pool. The hot receive path uses this to skip the defensive copy Bytes
// makes.
func (d *Decoder) BorrowBytes() []byte {
	n, ok := d.lenPrefix()
	if !ok {
		return nil
	}
	return d.take(n)
}

// Float64s reads a length-prefixed []float64.
func (d *Decoder) Float64s() []float64 {
	n := d.Uvarint()
	if d.err != nil || n > uint64(d.Remaining()/8) {
		d.fail()
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.Float64()
	}
	return out
}

// Float32 reads an IEEE-754 single.
func (d *Decoder) Float32() float32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return math.Float32frombits(binary.LittleEndian.Uint32(b))
}

// Complex128 reads a complex128 written by PutComplex128.
func (d *Decoder) Complex128() complex128 {
	re := d.Float64()
	im := d.Float64()
	return complex(re, im)
}

// Float32s reads a length-prefixed []float32.
func (d *Decoder) Float32s() []float32 {
	n := d.Uvarint()
	if d.err != nil || n > uint64(d.Remaining()/4) {
		d.fail()
		return nil
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = d.Float32()
	}
	return out
}

// Int32s reads a length-prefixed []int32.
func (d *Decoder) Int32s() []int32 {
	n := d.Uvarint()
	if d.err != nil || n > uint64(d.Remaining()/4) {
		d.fail()
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		b := d.take(4)
		if b == nil {
			return nil
		}
		out[i] = int32(binary.LittleEndian.Uint32(b))
	}
	return out
}

// Complex128s reads a length-prefixed []complex128.
func (d *Decoder) Complex128s() []complex128 {
	n := d.Uvarint()
	if d.err != nil || n > uint64(d.Remaining()/16) {
		d.fail()
		return nil
	}
	out := make([]complex128, n)
	for i := range out {
		out[i] = d.Complex128()
	}
	return out
}

// Int64s reads a length-prefixed []int64.
func (d *Decoder) Int64s() []int64 {
	n := d.Uvarint()
	if d.err != nil || n > uint64(d.Remaining()/8) {
		d.fail()
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = d.Int64()
	}
	return out
}

// Ints reads a []int encoded by PutInts.
func (d *Decoder) Ints() []int {
	n := d.Uvarint()
	if d.err != nil || n > uint64(d.Remaining()/8) {
		d.fail()
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(d.Int64())
	}
	return out
}

// Value type tags for the self-describing any-encoding.
const (
	tagNil byte = iota
	tagBool
	tagInt64
	tagFloat64
	tagString
	tagBytes
	tagFloat64s
	tagInt64s
	tagInts
	tagList
	// Typed element arrays for non-float64 workloads; appended after the
	// original tags so historical encodings stay decodable.
	tagFloat32s
	tagInt32s
	tagComplex128s
	tagComplex128
	tagUint64
)

// PutValue appends a self-describing encoding of v. Supported dynamic
// types: nil, bool, int, int64, uint64, float64, complex128, string,
// []byte, []float64, []float32, []int64, []int32, []int, []complex128 and
// []any (recursively). Other types panic: the caller is middleware code
// that controls what crosses the wire, so an unsupported type is a
// programming error, not input.
func (e *Encoder) PutValue(v any) {
	switch x := v.(type) {
	case nil:
		e.PutByte(tagNil)
	case bool:
		e.PutByte(tagBool)
		e.PutBool(x)
	case int:
		e.PutByte(tagInt64)
		e.PutInt64(int64(x))
	case int64:
		e.PutByte(tagInt64)
		e.PutInt64(x)
	case uint64:
		e.PutByte(tagUint64)
		e.PutUint64(x)
	case float64:
		e.PutByte(tagFloat64)
		e.PutFloat64(x)
	case string:
		e.PutByte(tagString)
		e.PutString(x)
	case []byte:
		e.PutByte(tagBytes)
		e.PutBytes(x)
	case complex128:
		e.PutByte(tagComplex128)
		e.PutComplex128(x)
	case []float64:
		e.PutByte(tagFloat64s)
		e.PutFloat64s(x)
	case []float32:
		e.PutByte(tagFloat32s)
		e.PutFloat32s(x)
	case []int64:
		e.PutByte(tagInt64s)
		e.PutInt64s(x)
	case []int32:
		e.PutByte(tagInt32s)
		e.PutInt32s(x)
	case []complex128:
		e.PutByte(tagComplex128s)
		e.PutComplex128s(x)
	case []int:
		e.PutByte(tagInts)
		e.PutInts(x)
	case []any:
		e.PutByte(tagList)
		e.PutUvarint(uint64(len(x)))
		for _, el := range x {
			e.PutValue(el)
		}
	default:
		panic(fmt.Sprintf("wire: unsupported value type %T", v))
	}
}

// Value reads a value written by PutValue. Signed integers decode as
// int64; uint64 round-trips as uint64.
func (d *Decoder) Value() any {
	tag := d.Byte()
	if d.err != nil {
		return nil
	}
	switch tag {
	case tagNil:
		return nil
	case tagBool:
		return d.Bool()
	case tagInt64:
		return d.Int64()
	case tagUint64:
		return d.Uint64()
	case tagFloat64:
		return d.Float64()
	case tagString:
		return d.String()
	case tagBytes:
		return d.Bytes()
	case tagFloat64s:
		return d.Float64s()
	case tagFloat32s:
		return d.Float32s()
	case tagInt64s:
		return d.Int64s()
	case tagInt32s:
		return d.Int32s()
	case tagComplex128s:
		return d.Complex128s()
	case tagComplex128:
		return d.Complex128()
	case tagInts:
		return d.Ints()
	case tagList:
		n := d.Uvarint()
		if d.err != nil || n > uint64(d.Remaining()) {
			d.fail()
			return nil
		}
		out := make([]any, n)
		for i := range out {
			out[i] = d.Value()
		}
		return out
	default:
		d.fail()
		return nil
	}
}

// Frame I/O: each frame is a 4-byte little-endian length, a 4-byte
// little-endian CRC-32C checksum of the payload, then the payload. The
// checksum lets the receiving end distinguish a corrupted link from a
// merely slow one, which the PRMI retry layer depends on. MaxFrame bounds
// a single frame to guard against corrupt peers.
const MaxFrame = 1 << 30

// frameTable is the CRC-32C (Castagnoli) table used for frame checksums.
var frameTable = crc32.MakeTable(crc32.Castagnoli)

// WriteFrame writes one length-prefixed, checksummed frame to w.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds max %d", len(payload), MaxFrame)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, frameTable))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	mFramesWritten.Inc()
	mBytesWritten.Add(uint64(len(hdr) + len(payload)))
	mBytesCopied.Add(uint64(len(payload)))
	mFrameBytes.Observe(int64(len(payload)))
	return nil
}

// vecState is the per-write scratch for WriteFrameV: the 8-byte frame
// header plus the iovec slice handed to net.Buffers.WriteTo. States are
// recycled through a mutex-guarded free list so the healthy send path
// performs no allocations.
type vecState struct {
	hdr  [8]byte
	iov  [][]byte
	next *vecState
}

var vecPool struct {
	mu   sync.Mutex
	free *vecState
	n    int
}

const maxFreeVecStates = 16

func getVecState() *vecState {
	vecPool.mu.Lock()
	v := vecPool.free
	if v != nil {
		vecPool.free = v.next
		vecPool.n--
	}
	vecPool.mu.Unlock()
	if v == nil {
		v = &vecState{iov: make([][]byte, 0, 8)}
	}
	v.next = nil
	return v
}

func putVecState(v *vecState) {
	// Drop segment references so pooled states do not pin payload
	// buffers between writes.
	for i := range v.iov {
		v.iov[i] = nil
	}
	vecPool.mu.Lock()
	if vecPool.n < maxFreeVecStates {
		v.next = vecPool.free
		vecPool.free = v
		vecPool.n++
	}
	vecPool.mu.Unlock()
}

// WriteFrameV writes one frame whose payload is the concatenation of
// segs, without flattening the segments: the CRC-32C is computed
// incrementally across them and the header plus every segment are handed
// to the writer as a single net.Buffers, which net.TCPConn turns into
// one writev call. The bytes on the wire are identical to
// WriteFrame(w, concat(segs...)). segs itself is never mutated (WriteTo
// consumes an internal copy of the vector), so callers may reuse their
// slice immediately.
func WriteFrameV(w io.Writer, segs net.Buffers) error {
	total := 0
	for _, s := range segs {
		total += len(s)
	}
	if total > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds max %d", total, MaxFrame)
	}
	var crc uint32
	for _, s := range segs {
		crc = crc32.Update(crc, frameTable, s)
	}
	v := getVecState()
	binary.LittleEndian.PutUint32(v.hdr[:4], uint32(total))
	binary.LittleEndian.PutUint32(v.hdr[4:], crc)
	v.iov = append(v.iov[:0], v.hdr[:])
	v.iov = append(v.iov, segs...)
	// WriteTo advances (and so mutates) the vector it is invoked on;
	// give it a local slice header over the pooled backing array so the
	// array's full capacity survives for the next frame.
	bufs := net.Buffers(v.iov)
	_, err := bufs.WriteTo(w)
	putVecState(v)
	if err != nil {
		return err
	}
	mFramesWritten.Inc()
	mBytesWritten.Add(uint64(8 + total))
	mBytesVectored.Add(uint64(total))
	mFrameBytes.Observe(int64(total))
	return nil
}

// ReadFrame reads one frame written by WriteFrame, verifying its checksum.
// A checksum mismatch reports ErrCorrupt (wrapped).
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n > MaxFrame {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds max %d", n, MaxFrame)
	}
	sum := binary.LittleEndian.Uint32(hdr[4:])
	// Read in bounded chunks rather than trusting the header with a single
	// up-front allocation: a corrupt length prefix must cost no more memory
	// than the bytes the peer actually sends.
	payload := make([]byte, 0, min(int(n), 64<<10))
	for len(payload) < int(n) {
		chunk := min(int(n)-len(payload), 1<<20)
		start := len(payload)
		payload = append(payload, make([]byte, chunk)...)
		if _, err := io.ReadFull(r, payload[start:]); err != nil {
			return nil, err
		}
	}
	if got := crc32.Checksum(payload, frameTable); got != sum {
		mChecksumFailures.Inc()
		return nil, fmt.Errorf("%w: frame checksum mismatch (got %08x, header says %08x)", ErrCorrupt, got, sum)
	}
	mFramesRead.Inc()
	mBytesRead.Add(uint64(8 + len(payload)))
	return payload, nil
}
