package dapkg

import (
	"testing"

	"mxn/internal/dad"
)

func tpl2D(t *testing.T) *dad.Template {
	t.Helper()
	tpl, err := dad.NewTemplate([]int{6, 4}, []dad.AxisDist{dad.BlockAxis(2), dad.CollapsedAxis()})
	if err != nil {
		t.Fatal(err)
	}
	return tpl
}

func TestPermutationsAreBijections(t *testing.T) {
	for _, o := range []Order{RowMajor, ColMajor, Reversed} {
		perm := permutation(o, []int{3, 4})
		seen := make([]bool, len(perm))
		for _, p := range perm {
			if p < 0 || p >= len(perm) || seen[p] {
				t.Fatalf("%s: not a bijection: %v", o, perm)
			}
			seen[p] = true
		}
	}
}

func TestColMajorSemantics(t *testing.T) {
	// Shape 2×3 canonical [a b c; d e f] → col-major storage a d b e c f.
	perm := permutation(ColMajor, []int{2, 3})
	want := []int{0, 3, 1, 4, 2, 5}
	for i := range want {
		if perm[i] != want[i] {
			t.Fatalf("perm = %v, want %v", perm, want)
		}
	}
}

func TestRoundTripAllOrders(t *testing.T) {
	tpl := tpl2D(t)
	for _, p := range Builtin(6) {
		conv, err := NewConverter(p, tpl, 0)
		if err != nil {
			t.Fatal(err)
		}
		n := conv.Len()
		canonical := make([]float64, n)
		for i := range canonical {
			canonical[i] = float64(i + 1)
		}
		pkgBuf := make([]float64, n)
		back := make([]float64, n)
		conv.FromCanonical(canonical, pkgBuf)
		conv.ToCanonical(pkgBuf, back)
		for i := range canonical {
			if back[i] != canonical[i] {
				t.Fatalf("%s: round trip broke at %d", p.Name, i)
			}
		}
	}
}

func TestDirectMatchesViaHub(t *testing.T) {
	tpl := tpl2D(t)
	pkgs := Builtin(3)
	for _, src := range pkgs {
		for _, dst := range pkgs {
			cs, _ := NewConverter(src, tpl, 1)
			cd, _ := NewConverter(dst, tpl, 1)
			direct, err := NewDirectConverter(src, dst, tpl, 1)
			if err != nil {
				t.Fatal(err)
			}
			n := cs.Len()
			in := make([]float64, n)
			for i := range in {
				in[i] = float64(i * 7 % 13)
			}
			viaHub := make([]float64, n)
			scratch := make([]float64, n)
			ViaHub(cs, cd, in, scratch, viaHub)
			gotDirect := make([]float64, n)
			direct.Convert(in, gotDirect)
			for i := range in {
				if viaHub[i] != gotDirect[i] {
					t.Fatalf("%s→%s differ at %d: hub %v direct %v", src.Name, dst.Name, i, viaHub[i], gotDirect[i])
				}
			}
		}
	}
}

func TestExplicitTemplateRejected(t *testing.T) {
	patches := []dad.Patch{dad.NewPatch([]int{0}, []int{4}, 0)}
	tpl, err := dad.NewExplicitTemplate([]int{4}, 1, patches)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewConverter(Package{"x", RowMajor}, tpl, 0); err == nil {
		t.Error("explicit template accepted")
	}
	if _, err := NewDirectConverter(Package{"x", RowMajor}, Package{"y", ColMajor}, tpl, 0); err == nil {
		t.Error("explicit template accepted by direct converter")
	}
}

func TestConverterCounts(t *testing.T) {
	if HubConverterCount(8) != 16 {
		t.Error("hub count")
	}
	if PairwiseConverterCount(8) != 56 {
		t.Error("pairwise count")
	}
	// The crossover the paper implies: pairwise exceeds hub from n = 4.
	if !(PairwiseConverterCount(3) <= HubConverterCount(3)) {
		t.Error("at n=3 pairwise should not exceed hub")
	}
	if !(PairwiseConverterCount(4) > HubConverterCount(4)) {
		t.Error("at n=4 pairwise should exceed hub")
	}
}

func TestBuiltinDistinct(t *testing.T) {
	pkgs := Builtin(10) // capped at 6
	if len(pkgs) != 6 {
		t.Fatalf("got %d packages", len(pkgs))
	}
	names := map[string]bool{}
	for _, p := range pkgs {
		if names[p.Name] {
			t.Errorf("duplicate package %q", p.Name)
		}
		names[p.Name] = true
	}
}
