// Package dapkg models the distributed-array package interoperability
// problem of Section 2.2.2: different DA packages (Global Arrays, HPF
// runtimes, ScaLAPACK-style libraries, ...) store each rank's local patch
// in different memory layouts, so components built on different packages
// cannot share data without conversion.
//
// The paper's argument for the DAD is quantitative: with a common
// intermediate representation, interoperating N packages needs 2N
// converters (to and from the DAD's canonical layout) instead of N²
// pairwise ones. This package makes both sides of that trade measurable:
// it implements several mock package layouts, conversions through the
// canonical hub, and direct pairwise conversions — the hub pays roughly
// one extra copy per conversion, the pairwise approach pays quadratic
// engineering (converter count).
package dapkg

import (
	"fmt"

	"mxn/internal/dad"
)

// Order is a DA package's local storage convention for a rank's dense
// local array (the canonical DAD layout is row-major).
type Order int

// Storage conventions.
const (
	// RowMajor: last axis fastest — the canonical DAD local layout.
	RowMajor Order = iota
	// ColMajor: first axis fastest (Fortran libraries).
	ColMajor
	// Reversed: row-major with all axes reversed end-to-start (a stand-in
	// for bottom-up image-style layouts).
	Reversed
)

// String names the order.
func (o Order) String() string {
	switch o {
	case RowMajor:
		return "row-major"
	case ColMajor:
		return "column-major"
	case Reversed:
		return "reversed"
	}
	return fmt.Sprintf("Order(%d)", int(o))
}

// Package is one mock DA package: a name and its local layout convention.
type Package struct {
	Name  string
	Order Order
}

// Builtin returns n distinct mock packages (n ≤ 6), cycling through the
// layout conventions.
func Builtin(n int) []Package {
	names := []string{"globalarrays", "hpfrt", "scalapack", "pooma", "petscda", "chaos"}
	orders := []Order{RowMajor, ColMajor, Reversed}
	if n > len(names) {
		n = len(names)
	}
	out := make([]Package, n)
	for i := 0; i < n; i++ {
		out[i] = Package{Name: names[i], Order: orders[i%len(orders)]}
	}
	return out
}

// permutation returns perm such that packageBuffer[i] =
// canonicalBuffer[perm[i]] for a local array of the given shape stored in
// the given order.
func permutation(order Order, shape []int) []int {
	size := 1
	for _, d := range shape {
		size *= d
	}
	perm := make([]int, size)
	switch order {
	case RowMajor:
		for i := range perm {
			perm[i] = i
		}
	case ColMajor:
		// Column-major position of canonical index idx.
		idx := make([]int, len(shape))
		for can := 0; can < size; can++ {
			// Decode canonical (row-major) index.
			rem := can
			for a := len(shape) - 1; a >= 0; a-- {
				idx[a] = rem % shape[a]
				rem /= shape[a]
			}
			pos := 0
			stride := 1
			for a := 0; a < len(shape); a++ {
				pos += idx[a] * stride
				stride *= shape[a]
			}
			perm[pos] = can
		}
	case Reversed:
		for i := range perm {
			perm[i] = size - 1 - i
		}
	}
	return perm
}

// Converter relocates a rank's local data between one package's layout
// and the canonical DAD layout. Build converters once per (package,
// template, rank) and reuse them — like communication schedules, layout
// plans amortize.
type Converter struct {
	pkg  Package
	perm []int
}

// NewConverter plans the conversion for one rank of a regular template.
func NewConverter(p Package, tpl *dad.Template, rank int) (*Converter, error) {
	if tpl.IsExplicit() {
		return nil, fmt.Errorf("dapkg: explicit templates have no dense local shape")
	}
	return &Converter{pkg: p, perm: permutation(p.Order, tpl.LocalShape(rank))}, nil
}

// Len returns the local element count.
func (c *Converter) Len() int { return len(c.perm) }

// ToCanonical converts package-layout data into canonical layout.
func (c *Converter) ToCanonical(in, out []float64) {
	for i, can := range c.perm {
		out[can] = in[i]
	}
}

// FromCanonical converts canonical-layout data into package layout.
func (c *Converter) FromCanonical(in, out []float64) {
	for i, can := range c.perm {
		out[i] = in[can]
	}
}

// DirectConverter is a specialized pairwise converter between two
// packages' layouts: one fused pass instead of two, at the cost of one
// implementation per ordered package pair.
type DirectConverter struct {
	perm []int // dstBuffer[i] = srcBuffer[perm[i]]
}

// NewDirectConverter plans the fused conversion.
func NewDirectConverter(src, dst Package, tpl *dad.Template, rank int) (*DirectConverter, error) {
	if tpl.IsExplicit() {
		return nil, fmt.Errorf("dapkg: explicit templates have no dense local shape")
	}
	shape := tpl.LocalShape(rank)
	sp := permutation(src.Order, shape)
	dp := permutation(dst.Order, shape)
	// src[i] = can[sp[i]]  ⇒  can[x] = src[spInv[x]];  dst[i] = can[dp[i]]
	// = src[spInv[dp[i]]].
	spInv := make([]int, len(sp))
	for i, x := range sp {
		spInv[x] = i
	}
	perm := make([]int, len(dp))
	for i, x := range dp {
		perm[i] = spInv[x]
	}
	return &DirectConverter{perm: perm}, nil
}

// Convert performs the fused one-pass conversion.
func (c *DirectConverter) Convert(in, out []float64) {
	for i, s := range c.perm {
		out[i] = in[s]
	}
}

// ViaHub converts src-layout data to dst layout through the canonical
// representation, using scratch as the intermediate buffer: the 2N-
// converter path, paying one extra copy.
func ViaHub(src, dst *Converter, in, scratch, out []float64) {
	src.ToCanonical(in, scratch)
	dst.FromCanonical(scratch, out)
}

// HubConverterCount returns how many converter implementations n
// interoperating packages need with a common intermediate representation.
func HubConverterCount(n int) int { return 2 * n }

// PairwiseConverterCount returns how many specialized converters n
// packages need without one (ordered pairs).
func PairwiseConverterCount(n int) int { return n * (n - 1) }
