package prmi

import "mxn/internal/obs"

// PRMI instruments, registered in the process-default registry. Call
// counters are incremented once per invocation on the initiating side;
// endpoint counters once per serviced invocation per callee rank.
var (
	mCallsIndependent = obs.Default().Counter("prmi.calls_independent")
	mCallsCollective  = obs.Default().Counter("prmi.calls_collective")
	mCallsOneway      = obs.Default().Counter("prmi.calls_oneway")
	mRetries          = obs.Default().Counter("prmi.retries")
	mTimeouts         = obs.Default().Counter("prmi.timeouts")
	mStaleDropped     = obs.Default().Counter("prmi.stale_replies_dropped")
	mPullsServed      = obs.Default().Counter("prmi.pulls_served")
	mEndpointInvokes  = obs.Default().Counter("prmi.endpoint_invocations")
	mEndpointStalls   = obs.Default().Counter("prmi.endpoint_stalls")
	mCallNS           = obs.Default().Histogram("prmi.call_ns")

	// Exactly-once / failure-awareness instruments.
	mDedupHits       = obs.Default().Counter("prmi.dedup_hits")
	mDedupReplays    = obs.Default().Counter("prmi.dedup_replays")
	mDedupEvictions  = obs.Default().Counter("prmi.dedup_evictions")
	mStaleEpochCalls = obs.Default().Counter("prmi.stale_epoch_rejected")
	mDeferredDropped = obs.Default().Counter("prmi.deferred_dropped")
	mRankdownErrors  = obs.Default().Counter("prmi.rankdown_errors")

	// Malleability instruments: caller departures during an online shrink.
	mDetaches           = obs.Default().Counter("prmi.caller_detaches")
	mDetachDedupDrained = obs.Default().Counter("prmi.detach_dedup_entries_drained")
)
