package prmi

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"mxn/internal/comm"
	"mxn/internal/core"
	"mxn/internal/dad"
	"mxn/internal/obs"
	"mxn/internal/schedule"
	"mxn/internal/sidl"
	"mxn/internal/wire"
)

// RetryPolicy bounds how long a caller waits for replies and how hard it
// tries to push an idempotent call through a flaky link.
//
// Retry applies only to independent (and one-way) invocations: they are
// one-to-one exchanges where a fresh sequence number cleanly supersedes a
// lost attempt, and stale replies are filtered by sequence. Collective
// calls are never retried automatically — a retry would need every
// participant to agree to re-invoke (and the callee cohort to discard a
// half-collected invocation), so a collective failure surfaces as a typed
// error for the application (or framework) to recover at its own level.
type RetryPolicy struct {
	// Timeout bounds each attempt's wait for a reply (and for collective
	// calls, the wait for each expected replier). Zero waits forever,
	// reproducing the paper's blocking semantics.
	Timeout time.Duration
	// MaxAttempts is the total number of tries for an idempotent call.
	// Values below 1 mean 1 (no retry).
	MaxAttempts int
	// Backoff is the delay before the second attempt; it doubles each
	// further attempt, capped by BackoffCap (uncapped when zero).
	Backoff    time.Duration
	BackoffCap time.Duration
}

// retryableErr reports whether a failed attempt is worth repeating: the
// reply timed out (maybe the network was slow) or the link reported down
// (maybe a robust transport underneath is redialing).
func retryableErr(err error) bool {
	return errors.Is(err, ErrTimeout) || errors.Is(err, ErrLinkDown)
}

// DeliveryMode selects when a collective invocation leaves the caller
// (Section 2.4 / Figure 5 of the paper).
type DeliveryMode int

// Delivery modes.
const (
	// Eager delivers each rank's invocation as soon as that rank reaches
	// the call. Consecutive collective calls from different but
	// intersecting participant sets can deadlock the callee.
	Eager DeliveryMode = iota
	// BarrierDelayed inserts a barrier among the participants before
	// delivery — the DCA solution: the callee never sees an invocation
	// until every participant has reached the calling point.
	BarrierDelayed
)

// String names the mode.
func (m DeliveryMode) String() string {
	if m == BarrierDelayed {
		return "barrier-delayed"
	}
	return "eager"
}

// Participation declares which caller cohort ranks take part in a
// collective invocation — the role DCA gives the trailing MPI_Comm
// argument its stub generator adds to every port method.
type Participation struct {
	// Ranks are the participating caller cohort ranks.
	Ranks []int
	// Group is a communicator over exactly Ranks, used for the delivery
	// barrier. Required in BarrierDelayed mode; ignored in Eager mode.
	Group *comm.Comm
}

// FullParticipation declares that every rank of the caller cohort
// participates, with the cohort communicator as the barrier group.
func FullParticipation(cohort *comm.Comm) Participation {
	ranks := make([]int, cohort.Size())
	for i := range ranks {
		ranks[i] = i
	}
	return Participation{Ranks: ranks, Group: cohort}
}

// ParallelData is a caller-side parallel argument: the rank's fragment of
// an array decomposed over the participants according to Template. For
// out parameters Local is the buffer the returned data lands in. A
// deferred argument (built with ParallelRef) is passed by reference and
// pulled by the callee after it specifies its layout.
type ParallelData struct {
	Template *dad.Template
	Local    []float64

	deferred bool
}

// Arg is one named argument of an invocation. Exactly one of Value
// (simple) or Par (parallel) is set, matching the parameter's declaration.
type Arg struct {
	Name  string
	Value any
	Par   *ParallelData
}

// Simple builds a simple argument.
func Simple(name string, v any) Arg { return Arg{Name: name, Value: v} }

// Parallel builds a parallel argument.
func Parallel(name string, t *dad.Template, local []float64) Arg {
	return Arg{Name: name, Par: &ParallelData{Template: t, Local: local}}
}

// Result is what a non-oneway invocation returns.
type Result struct {
	Return    any
	SimpleOut map[string]any
}

// CallerPort is one caller rank's handle on a remote parallel port. It is
// the uses-port proxy a distributed framework hands out in place of the
// provider object a direct-connected framework would return.
//
// A CallerPort serves one invocation at a time per rank; methods are safe
// for use from the owning rank's goroutine.
type CallerPort struct {
	iface   *sidl.Interface
	link    Link
	rank    int // caller cohort rank
	nCallee int
	mode    DeliveryMode

	scheds  *schedule.Cache
	layouts map[string]*dad.Template // method\x00param -> callee-side template
	encs    map[string][]byte        // template key -> wire encoding
	pending map[int][]*replyMsg
	stash   map[stashKey]*stashEntry // referenced buffers of in-flight calls
	tcache  *templateCache           // callee layouts arriving in pull requests
	seq     uint64
	policy  RetryPolicy
	mu      sync.Mutex

	// Exactly-once / liveness state. nextCallID numbers logical calls
	// (every retry attempt of one call shares its callID); watermarks
	// track, per callee, the eviction watermark acked in replies — a
	// retry of a callID below it is refused with *DedupEvictedError
	// rather than risking re-execution. members, when set, is a liveness
	// view over the callee cohort: calls are epoch-stamped and calls to
	// ranks marked down fail fast with *core.ErrRankDown.
	nextCallID uint64
	watermarks map[int]uint64
	members    *core.Membership
}

// DedupEvictedError reports that a retry was abandoned because the callee
// has evicted the call's dedup entry: the original attempt may or may not
// have executed, and retrying could execute it twice. The caller gets
// at-most-once semantics for this call and must recover at its own level.
type DedupEvictedError struct {
	Target    int    // callee cohort rank
	CallID    uint64 // the logical call
	Watermark uint64 // callee's eviction watermark
}

func (e *DedupEvictedError) Error() string {
	return fmt.Sprintf("prmi: call %d to callee %d fell below eviction watermark %d; retry would risk re-execution",
		e.CallID, e.Target, e.Watermark)
}

// NewCallerPort builds a caller-side port proxy. iface describes the
// port's methods; link reaches the callee cohort of nCallee ranks; rank is
// this caller's cohort rank.
func NewCallerPort(iface *sidl.Interface, link Link, rank, nCallee int, mode DeliveryMode) *CallerPort {
	return &CallerPort{
		iface:   iface,
		link:    link,
		rank:    rank,
		nCallee: nCallee,
		mode:    mode,
		scheds:  schedule.NewCache(),
		layouts: map[string]*dad.Template{},
		encs:    map[string][]byte{},
		pending: map[int][]*replyMsg{},
		stash:   map[stashKey]*stashEntry{},
		tcache:  newTemplateCache(),

		watermarks: map[int]uint64{},
	}
}

// SetMembership installs a liveness view over the callee cohort. With a
// membership set, outgoing calls are stamped with the current epoch (so
// endpoints behind a membership change reject them as stale), and calls to
// a callee marked down fail fast with *core.ErrRankDown instead of
// burning the full timeout/retry budget.
func (p *CallerPort) SetMembership(m *core.Membership) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.members = m
}

// epochNow samples the membership epoch for stamping; zero = unstamped.
func (p *CallerPort) epochNow() uint64 {
	if p.members == nil {
		return 0
	}
	return p.members.Epoch()
}

// SetRetryPolicy installs the port's timeout/retry behavior. The zero
// policy (the default) blocks forever and never retries — the paper's
// original semantics.
func (p *CallerPort) SetRetryPolicy(rp RetryPolicy) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.policy = rp
}

// SetCalleeLayout registers the callee-side distribution of a parallel
// parameter, which the caller needs to compute redistribution schedules.
// This mirrors the paper's first strategy for callee layouts: the layout
// is specified through a framework service before any call is received.
// ApplyLayouts installs the same information from an Endpoint's
// EncodeLayouts message.
func (p *CallerPort) SetCalleeLayout(method, param string, t *dad.Template) error {
	m, ok := p.iface.Method(method)
	if !ok {
		return fmt.Errorf("prmi: no method %q", method)
	}
	if !hasParallelParam(m, param) {
		return fmt.Errorf("prmi: %s has no parallel parameter %q", method, param)
	}
	p.layouts[method+"\x00"+param] = t
	return nil
}

// ApplyLayouts installs callee layouts from an Endpoint.EncodeLayouts
// message — the connect-time half of the layout negotiation.
func (p *CallerPort) ApplyLayouts(data []byte) error {
	d := wire.NewDecoder(data)
	n := d.Uvarint()
	for i := uint64(0); i < n; i++ {
		method := d.String()
		param := d.String()
		t, err := dad.DecodeTemplate(d)
		if err != nil {
			return err
		}
		if err := p.SetCalleeLayout(method, param, t); err != nil {
			return err
		}
	}
	return d.Err()
}

func hasParallelParam(m *sidl.Method, param string) bool {
	for _, pr := range m.Params {
		if pr.Name == param && pr.Parallel {
			return true
		}
	}
	return false
}

// Close tells the callee cohort this caller rank is done. Every caller
// rank must Close for the endpoints' Serve loops to return.
func (p *CallerPort) Close() error {
	for j := 0; j < p.nCallee; j++ {
		if err := p.link.Send(j, []byte{msgShutdown}); err != nil {
			return err
		}
	}
	return nil
}

// Depart announces that this caller rank is leaving the cohort — the
// PRMI half of an online shrink. Unlike Close it also tells every callee
// to drain this caller's exactly-once dedup state and deferred queue:
// links are FIFO, so by the time the detach is dispatched every call this
// rank ever issued has been serviced and its dedup entries are settled
// history, not protection. The port must not be used after Depart; the
// endpoints' Serve loops keep running for the remaining callers.
func (p *CallerPort) Depart() error {
	for j := 0; j < p.nCallee; j++ {
		if err := p.link.Send(j, []byte{msgDetach}); err != nil {
			return err
		}
	}
	// Local retry state is dead with the departure: a departed rank never
	// retries, and dropping the stash frees referenced argument buffers.
	p.mu.Lock()
	p.stash = map[stashKey]*stashEntry{}
	p.watermarks = map[int]uint64{}
	p.mu.Unlock()
	return nil
}

// CallIndependent performs a one-to-one invocation of an independent
// method on callee rank target (Damevski's non-collective invocation).
// For oneway methods the result is nil and the call returns immediately.
func (p *CallerPort) CallIndependent(target int, method string, args ...Arg) (*Result, error) {
	m, ok := p.iface.Method(method)
	if !ok {
		return nil, fmt.Errorf("prmi: no method %q", method)
	}
	if m.Invocation != sidl.Independent {
		return nil, fmt.Errorf("prmi: %s is collective; use CallCollective", method)
	}
	if target < 0 || target >= p.nCallee {
		return nil, fmt.Errorf("prmi: callee rank %d outside cohort of %d", target, p.nCallee)
	}
	simple, err := checkSimpleArgs(m, args)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()

	// Every attempt of one logical call shares a callID and gets a fresh
	// sequence number: the callee deduplicates by callID (replaying the
	// cached reply for a completed call instead of re-running the
	// handler) while stale replies from superseded attempts are discarded
	// by sequence in recvReplyFrom. Together this upgrades the retry loop
	// from at-least-once to exactly-once, so it is safe even for
	// non-idempotent methods.
	mCallsIndependent.Inc()
	if m.OneWay {
		mCallsOneway.Inc()
	}
	callStart := time.Now()
	defer mCallNS.ObserveSince(callStart)
	p.nextCallID++
	callID := p.nextCallID
	attempts := p.policy.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	backoff := p.policy.Backoff
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			mRetries.Inc()
			obs.Trace().Span(obs.EvRetry, "", p.rank, target, 0, callStart)
			if backoff > 0 {
				time.Sleep(backoff)
				backoff *= 2
				if p.policy.BackoffCap > 0 && backoff > p.policy.BackoffCap {
					backoff = p.policy.BackoffCap
				}
			}
		}
		if mb := p.members; mb != nil && !mb.IsAlive(target) {
			mRankdownErrors.Inc()
			return nil, &core.ErrRankDown{Rank: target, Epoch: mb.Epoch()}
		}
		if wm := p.watermarks[target]; wm > callID {
			// The callee forgot this call's outcome; a retry could
			// re-execute it. Exactly-once degrades to at-most-once here,
			// surfaced as a typed error.
			return nil, &DedupEvictedError{Target: target, CallID: callID, Watermark: wm}
		}
		p.seq++
		hdr := &callMsg{method: method, seq: p.seq, callerRank: p.rank, simple: simple, callID: callID, epoch: p.epochNow()}
		if err := mapLinkErr(p.link.Send(target, encodeCall(hdr))); err != nil {
			if retryableErr(err) {
				lastErr = err
				continue
			}
			return nil, err
		}
		if m.OneWay {
			return nil, nil
		}
		rep, err := p.recvReplyFrom(target, p.seq, p.policy.Timeout)
		if err != nil {
			if retryableErr(err) {
				lastErr = err
				continue
			}
			return nil, err
		}
		if rep.watermark > p.watermarks[target] {
			p.watermarks[target] = rep.watermark
		}
		return replyToResult(m, rep)
	}
	return nil, fmt.Errorf("prmi: %s to callee %d failed after %d attempts: %w", method, target, attempts, lastErr)
}

// CallCollective performs an all-to-all collective invocation: every rank
// in part.Ranks must call with equal simple arguments and with parallel
// fragments decomposed over the participants. Every callee rank receives
// the logical invocation (ghost invocations when the callee cohort is
// wider than the participant set) and every participant receives a return
// (ghost returns when it is narrower).
func (p *CallerPort) CallCollective(method string, part Participation, args ...Arg) (*Result, error) {
	m, ok := p.iface.Method(method)
	if !ok {
		return nil, fmt.Errorf("prmi: no method %q", method)
	}
	if m.Invocation != sidl.Collective {
		return nil, fmt.Errorf("prmi: %s is independent; use CallIndependent", method)
	}
	parts := append([]int(nil), part.Ranks...)
	sort.Ints(parts)
	pos := -1
	for k, r := range parts {
		if r == p.rank {
			pos = k
		}
	}
	if pos < 0 {
		return nil, fmt.Errorf("prmi: caller rank %d not in participation set %v", p.rank, parts)
	}
	simple, err := checkSimpleArgs(m, args)
	if err != nil {
		return nil, err
	}
	parArgs, err := p.checkParallelArgs(m, args, len(parts))
	if err != nil {
		return nil, err
	}

	// The DCA synchronization rule: delay delivery until every participant
	// has reached the calling point.
	if p.mode == BarrierDelayed {
		if part.Group == nil {
			return nil, fmt.Errorf("prmi: barrier-delayed delivery needs a participation communicator")
		}
		part.Group.Barrier()
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	p.seq++
	p.nextCallID++
	mCallsCollective.Inc()
	if m.OneWay {
		mCallsOneway.Inc()
	}
	callStart := time.Now()
	defer mCallNS.ObserveSince(callStart)

	// Compute per-callee fragments of every parallel in/inout argument.
	// Deferred (by-reference) arguments send no data: they are stashed
	// locally and served on pull while this call waits for its replies.
	type paramPlan struct {
		arg   parArg
		sched *schedule.Schedule // nil for deferred arguments
	}
	plans := make([]paramPlan, 0, len(parArgs))
	for _, pa := range parArgs {
		if want := pa.data.Template.LocalCount(pos); pa.spec.Mode != sidl.Out && len(pa.data.Local) != want {
			return nil, fmt.Errorf("prmi: %s(%s): fragment has %d elements, template says %d for participant %d",
				method, pa.spec.Name, len(pa.data.Local), want, pos)
		}
		if pa.data.deferred {
			if pa.spec.Mode != sidl.In {
				return nil, fmt.Errorf("prmi: %s(%s): deferred arguments must be in-parameters", method, pa.spec.Name)
			}
			if m.OneWay {
				return nil, fmt.Errorf("prmi: %s(%s): deferred arguments need a blocking call (the caller serves pulls while waiting)", method, pa.spec.Name)
			}
			p.stash[stashKey{p.seq, pa.spec.Name}] = &stashEntry{tpl: pa.data.Template, local: pa.data.Local, pos: pos}
			plans = append(plans, paramPlan{arg: pa})
			continue
		}
		calleeTpl := p.layouts[method+"\x00"+pa.spec.Name]
		if calleeTpl == nil {
			return nil, fmt.Errorf("prmi: no callee layout registered for %s(%s) (register one, or pass ParallelRef for the delayed-transfer strategy)", method, pa.spec.Name)
		}
		s, err := p.scheds.Get(pa.data.Template, calleeTpl)
		if err != nil {
			return nil, fmt.Errorf("prmi: %s(%s): %w", method, pa.spec.Name, err)
		}
		plans = append(plans, paramPlan{arg: pa, sched: s})
	}
	defer func() {
		for _, pp := range plans {
			if pp.arg.data.deferred {
				delete(p.stash, stashKey{p.seq, pp.arg.spec.Name})
			}
		}
	}()

	for j := 0; j < p.nCallee; j++ {
		hdr := &callMsg{method: method, seq: p.seq, callerRank: p.rank, collective: true, participants: parts,
			simple: simple, callID: p.nextCallID, epoch: p.epochNow()}
		for _, pp := range plans {
			frag := parallelFrag{
				name:        pp.arg.spec.Name,
				templateKey: pp.arg.data.Template.Key(),
				templateEnc: p.encodingOf(pp.arg.data.Template),
				deferred:    pp.arg.data.deferred,
			}
			if !pp.arg.data.deferred && pp.arg.spec.Mode != sidl.Out {
				for _, plan := range pp.sched.OutgoingFor(pos) {
					if plan.DstRank == j {
						frag.data = make([]float64, plan.Elems)
						schedule.Pack(plan, pp.arg.data.Local, frag.data)
						break
					}
				}
			}
			hdr.parallel = append(hdr.parallel, frag)
		}
		if err := mapLinkErr(p.link.Send(j, encodeCall(hdr))); err != nil {
			return nil, err
		}
	}
	if m.OneWay {
		return nil, nil
	}

	// Expected repliers: the designated callee for ghost-return routing,
	// plus every callee holding outbound data of an out/inout parallel
	// parameter destined for this participant.
	designated := pos % p.nCallee
	expect := map[int]bool{designated: true}
	type revPlan struct {
		arg   parArg
		sched *schedule.Schedule
	}
	var revs []revPlan
	for _, pa := range parArgs {
		if pa.spec.Mode == sidl.In {
			continue
		}
		calleeTpl := p.layouts[method+"\x00"+pa.spec.Name]
		rs, err := p.scheds.Get(calleeTpl, pa.data.Template)
		if err != nil {
			return nil, err
		}
		revs = append(revs, revPlan{arg: pa, sched: rs})
		for _, plan := range rs.IncomingFor(pos) {
			expect[plan.SrcRank] = true
		}
	}

	var designatedReply *replyMsg
	replies := map[int]*replyMsg{}
	for len(replies) < len(expect) {
		var from int
		for j := range expect {
			if replies[j] == nil {
				from = j
				break
			}
		}
		rep, err := p.recvReplyFrom(from, p.seq, p.policy.Timeout)
		if err != nil {
			return nil, err
		}
		replies[from] = rep
		if rep.errText != "" {
			return nil, fmt.Errorf("prmi: %s on callee rank %d: %s", method, rep.calleeRank, rep.errText)
		}
		if from == designated {
			designatedReply = rep
		}
	}

	// Unpack returned parallel data into the caller's buffers.
	for _, rv := range revs {
		if len(rv.arg.data.Local) != rv.arg.data.Template.LocalCount(pos) {
			return nil, fmt.Errorf("prmi: %s(%s): out buffer has %d elements, template says %d",
				method, rv.arg.spec.Name, len(rv.arg.data.Local), rv.arg.data.Template.LocalCount(pos))
		}
		for _, plan := range rv.sched.IncomingFor(pos) {
			rep := replies[plan.SrcRank]
			frag, ok := findFrag(rep.parallelOut, rv.arg.spec.Name)
			if !ok {
				return nil, fmt.Errorf("prmi: callee %d reply missing parallel out %q", plan.SrcRank, rv.arg.spec.Name)
			}
			if len(frag.data) != plan.Elems {
				return nil, fmt.Errorf("prmi: %s(%s): callee %d sent %d elements, schedule says %d",
					method, rv.arg.spec.Name, plan.SrcRank, len(frag.data), plan.Elems)
			}
			schedule.Unpack(plan, rv.arg.data.Local, frag.data)
		}
	}
	return replyToResult(m, designatedReply)
}

// parArg pairs a parallel argument with its spec.
type parArg struct {
	spec sidl.Param
	data *ParallelData
}

// checkSimpleArgs validates and orders the simple (non-parallel) in/inout
// arguments against the method spec.
func checkSimpleArgs(m *sidl.Method, args []Arg) ([]namedValue, error) {
	byName := map[string]Arg{}
	for _, a := range args {
		if _, dup := byName[a.Name]; dup {
			return nil, fmt.Errorf("prmi: duplicate argument %q", a.Name)
		}
		byName[a.Name] = a
	}
	for _, a := range args {
		found := false
		for _, pr := range m.Params {
			if pr.Name == a.Name {
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf("prmi: %s has no parameter %q", m.Name, a.Name)
		}
	}
	var out []namedValue
	for _, pr := range m.Params {
		a, present := byName[pr.Name]
		if pr.Parallel {
			if present && a.Par == nil {
				return nil, fmt.Errorf("prmi: parameter %q is parallel; pass Parallel(...)", pr.Name)
			}
			continue
		}
		switch pr.Mode {
		case sidl.In, sidl.InOut:
			if !present {
				return nil, fmt.Errorf("prmi: missing argument %q", pr.Name)
			}
			if a.Par != nil {
				return nil, fmt.Errorf("prmi: parameter %q is simple; pass Simple(...)", pr.Name)
			}
			out = append(out, namedValue{name: pr.Name, value: a.Value})
		case sidl.Out:
			// Out simple values come back in the result; nothing to send.
		}
	}
	return out, nil
}

// checkParallelArgs validates the parallel arguments: each must carry a
// template decomposed over exactly the participants.
func (p *CallerPort) checkParallelArgs(m *sidl.Method, args []Arg, nParts int) ([]parArg, error) {
	byName := map[string]Arg{}
	for _, a := range args {
		byName[a.Name] = a
	}
	var out []parArg
	for _, pr := range m.Params {
		if !pr.Parallel {
			continue
		}
		if pr.Type != sidl.DoubleArray {
			return nil, fmt.Errorf("prmi: parallel parameter %q has type %s; the runtime moves array<double> only", pr.Name, pr.Type)
		}
		a, present := byName[pr.Name]
		if !present {
			return nil, fmt.Errorf("prmi: missing parallel argument %q", pr.Name)
		}
		if a.Par == nil || a.Par.Template == nil {
			return nil, fmt.Errorf("prmi: parallel argument %q needs a template", pr.Name)
		}
		if a.Par.Template.NumProcs() != nParts {
			return nil, fmt.Errorf("prmi: parallel argument %q decomposed over %d ranks but %d participate (the participation communicator defines the scope of parallel arguments)",
				pr.Name, a.Par.Template.NumProcs(), nParts)
		}
		out = append(out, parArg{spec: pr, data: a.Par})
	}
	return out, nil
}

// encodingOf memoizes template wire encodings by key.
func (p *CallerPort) encodingOf(t *dad.Template) []byte {
	key := t.Key()
	if enc, ok := p.encs[key]; ok {
		return enc
	}
	e := wire.NewEncoder(nil)
	t.Encode(e)
	p.encs[key] = e.Bytes()
	return e.Bytes()
}

// recvReplyFrom blocks until a reply from callee rank src with sequence
// number seq arrives, queueing replies from other callees and serving pull
// requests for referenced arguments along the way (the caller is the data
// server while its deferred call is in flight). Replies carrying a
// different sequence number are stale — leftovers of a timed-out attempt
// that was retried — and are silently discarded from every queue they
// appear in. timeout > 0 bounds the total wait; expiry reports ErrTimeout.
func (p *CallerPort) recvReplyFrom(src int, seq uint64, timeout time.Duration) (*replyMsg, error) {
	q := p.pending[src][:0]
	var found *replyMsg
	for _, rep := range p.pending[src] {
		switch {
		case found == nil && rep.seq == seq:
			found = rep
		case rep.seq == seq:
			q = append(q, rep)
		default:
			// stale attempt; drop
			mStaleDropped.Inc()
		}
	}
	p.pending[src] = q
	if found != nil {
		return found, nil
	}
	deadline := time.Time{}
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	for {
		// With a liveness view installed, a wait on a callee marked down
		// fails fast — its reply is never coming, and burning the full
		// timeout per attempt would multiply the failure's latency by the
		// retry budget.
		if mb := p.members; mb != nil && !mb.IsAlive(src) {
			mRankdownErrors.Inc()
			return nil, &core.ErrRankDown{Rank: src, Epoch: mb.Epoch()}
		}
		var from int
		var raw []byte
		var err error
		remain := time.Duration(0)
		if timeout > 0 {
			remain = time.Until(deadline)
			if remain <= 0 {
				mTimeouts.Inc()
				return nil, fmt.Errorf("%w: no reply from callee %d within %v", ErrTimeout, src, timeout)
			}
		}
		slice := remain
		if p.members != nil && (slice <= 0 || slice > livenessPoll) {
			slice = livenessPoll
		}
		if slice > 0 {
			from, raw, err = p.link.RecvTimeout(slice)
		} else {
			from, raw, err = p.link.Recv()
		}
		if err != nil {
			err = mapLinkErr(err)
			if errors.Is(err, ErrTimeout) {
				if slice != remain {
					continue // a liveness poll slice expired, not the deadline
				}
				mTimeouts.Inc()
			}
			return nil, err
		}
		if len(raw) == 0 {
			return nil, fmt.Errorf("prmi: caller received empty message")
		}
		switch raw[0] {
		case msgPull:
			req, err := decodePull(wire.NewDecoder(raw[1:]))
			if err != nil {
				return nil, err
			}
			if err := p.servePull(req); err != nil {
				return nil, err
			}
		case msgReply:
			rep, err := decodeReply(wire.NewDecoder(raw[1:]))
			if err != nil {
				return nil, err
			}
			if rep.seq != seq {
				mStaleDropped.Inc()
				continue // stale reply from a superseded attempt
			}
			if from == src {
				return rep, nil
			}
			p.pending[from] = append(p.pending[from], rep)
		default:
			return nil, fmt.Errorf("prmi: caller received unexpected message kind %d", raw[0])
		}
	}
}

// findFrag locates a named fragment in a reply.
func findFrag(frags []parallelFrag, name string) (parallelFrag, bool) {
	for _, f := range frags {
		if f.name == name {
			return f, true
		}
	}
	return parallelFrag{}, false
}

// replyToResult converts a reply into the caller-facing result, checking
// the handler error.
func replyToResult(m *sidl.Method, rep *replyMsg) (*Result, error) {
	if rep.errText != "" {
		return nil, fmt.Errorf("prmi: %s: %s", m.Name, rep.errText)
	}
	res := &Result{Return: rep.ret, SimpleOut: map[string]any{}}
	for _, nv := range rep.simpleOut {
		res.SimpleOut[nv.name] = nv.value
	}
	return res, nil
}
