package prmi

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mxn/internal/core"
	"mxn/internal/faultconn"
	"mxn/internal/transport"
	"mxn/internal/wire"
)

// dedupHarness wires a 1×1 caller/callee pair whose handlers are
// deliberately NOT idempotent: each invocation bumps a callee-side
// counter. Under the exactly-once layer the counter must equal the number
// of logical calls no matter how many retry attempts the fault mix forces.
type dedupHarness struct {
	port  *CallerPort
	count atomic.Int64
	done  chan struct{}
}

func newDedupHarness(t *testing.T, sc faultconn.Scenario) *dedupHarness {
	t.Helper()
	iface := matrixIface(t)
	fc, peer := faultconn.Pipe(sc)
	t.Cleanup(func() { fc.Close() })

	h := &dedupHarness{done: make(chan struct{})}
	ep := NewEndpoint(iface, NewConnLink([]transport.Conn{peer}, 0), 0, 1, 1)
	ep.Handle("f", func(in *Incoming, out *Outgoing) error {
		out.Return = float64(h.count.Add(1))
		return nil
	})
	ep.Handle("h", func(in *Incoming, out *Outgoing) error {
		h.count.Add(1)
		return nil
	})
	go func() {
		defer close(h.done)
		ep.Serve()
	}()
	h.port = NewCallerPort(iface, NewConnLink([]transport.Conn{fc}, 0), 0, 1, Eager)
	return h
}

// TestExactlyOnceNonIdempotentUnderDrops is the acceptance check for the
// exactly-once upgrade: a non-idempotent counter method driven through the
// retry policy over a link that drops ~30% of messages in each direction
// executes exactly once per logical call. Dropped invocations force
// resends (the handler never ran); dropped replies force replays (the
// handler ran — the callee must answer from its dedup table, not re-run).
func TestExactlyOnceNonIdempotentUnderDrops(t *testing.T) {
	sc := faultconn.Scenario{
		Seed: 1234,
		Send: faultconn.Faults{Drop: 0.3},
		Recv: faultconn.Faults{Drop: 0.3},
	}
	h := newDedupHarness(t, sc)
	h.port.SetRetryPolicy(RetryPolicy{
		Timeout:     50 * time.Millisecond,
		MaxAttempts: 15,
		Backoff:     time.Millisecond,
	})
	retriesBefore := mRetries.Value()
	hitsBefore := mDedupHits.Value()

	const calls = 20
	for i := 1; i <= calls; i++ {
		res, err := boundedCall(t, func() (*Result, error) {
			return h.port.CallIndependent(0, "f", Simple("x", float64(i)))
		})
		if err != nil {
			t.Fatalf("logical call %d failed: %v", i, err)
		}
		// The counter value the handler returned is also the logical call
		// number — any lost or duplicated execution desynchronizes it.
		if got := res.Return.(float64); got != float64(i) {
			t.Fatalf("call %d returned count %v (duplicate or lost execution)", i, got)
		}
	}
	if got := h.count.Load(); got != calls {
		t.Fatalf("handler executed %d times for %d logical calls", got, calls)
	}
	if mRetries.Value() == retriesBefore {
		t.Fatal("fault mix forced no retries; the exactly-once path was not exercised")
	}
	if mDedupHits.Value() == hitsBefore {
		t.Fatal("no dedup hits recorded; dropped replies never replayed from the table")
	}
}

// recvReplyRaw reads one reply frame off the raw caller-side conn of a
// connLink mesh: 4 bytes of sender-rank prefix, one kind byte, payload.
func recvReplyRaw(t *testing.T, c transport.Conn) *replyMsg {
	t.Helper()
	raw, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) < 5 || raw[4] != msgReply {
		t.Fatalf("expected a reply frame, got % x", raw)
	}
	rep, err := decodeReply(wire.NewDecoder(raw[5:]))
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestDedupReplaySkipsHandler drives serveIndependent directly with two
// attempts of the same logical call: the second must replay the cached
// reply (re-sequenced for the retry) without running the handler, and a
// duplicated oneway invocation must be swallowed.
func TestDedupReplaySkipsHandler(t *testing.T) {
	iface := matrixIface(t)
	a, b := transport.Pipe()
	defer a.Close()
	ep := NewEndpoint(iface, NewConnLink([]transport.Conn{a}, 0), 0, 1, 1)
	var runs atomic.Int64
	ep.Handle("f", func(in *Incoming, out *Outgoing) error {
		out.Return = float64(runs.Add(1))
		return nil
	})
	ep.Handle("h", func(in *Incoming, out *Outgoing) error {
		runs.Add(1)
		return nil
	})

	args := []namedValue{{name: "x", value: 1.0}}
	if err := ep.serveIndependent(&callMsg{method: "f", seq: 1, callerRank: 0, callID: 7, simple: args}); err != nil {
		t.Fatal(err)
	}
	r1 := recvReplyRaw(t, b)
	if err := ep.serveIndependent(&callMsg{method: "f", seq: 9, callerRank: 0, callID: 7, simple: args}); err != nil {
		t.Fatal(err)
	}
	r2 := recvReplyRaw(t, b)
	if runs.Load() != 1 {
		t.Fatalf("handler ran %d times for one logical call", runs.Load())
	}
	if r1.ret.(float64) != 1 || r2.ret.(float64) != 1 {
		t.Fatalf("replayed return diverged: %v vs %v", r1.ret, r2.ret)
	}
	if r2.seq != 9 {
		t.Fatalf("replay kept stale seq %d; caller would discard it", r2.seq)
	}

	// Oneway duplicate: no reply exists to replay; the duplicate is
	// swallowed and the handler still runs once.
	for _, seq := range []uint64{10, 11} {
		if err := ep.serveIndependent(&callMsg{method: "h", seq: seq, callerRank: 0, callID: 8, simple: args}); err != nil {
			t.Fatal(err)
		}
	}
	if runs.Load() != 2 {
		t.Fatalf("oneway executed %d times total, want 2 (one f + one h)", runs.Load())
	}
}

// TestDedupEvictionWatermark fills a capacity-1 table so the first call's
// entry is evicted, then retries it: the endpoint must refuse (outcome
// unknown) and the surviving reply must carry the advanced watermark.
func TestDedupEvictionWatermark(t *testing.T) {
	iface := matrixIface(t)
	a, b := transport.Pipe()
	defer a.Close()
	ep := NewEndpoint(iface, NewConnLink([]transport.Conn{a}, 0), 0, 1, 1)
	ep.DedupCapacity = 1
	var runs atomic.Int64
	ep.Handle("f", func(in *Incoming, out *Outgoing) error {
		out.Return = float64(runs.Add(1))
		return nil
	})

	args := []namedValue{{name: "x", value: 1.0}}
	before := mDedupEvictions.Value()
	ep.serveIndependent(&callMsg{method: "f", seq: 1, callerRank: 0, callID: 1, simple: args})
	recvReplyRaw(t, b)
	ep.serveIndependent(&callMsg{method: "f", seq: 2, callerRank: 0, callID: 2, simple: args})
	r2 := recvReplyRaw(t, b)
	if r2.watermark != 2 {
		t.Fatalf("reply watermark = %d after evicting callID 1, want 2", r2.watermark)
	}
	if mDedupEvictions.Value() != before+1 {
		t.Fatalf("eviction counter advanced by %d, want 1", mDedupEvictions.Value()-before)
	}

	ep.serveIndependent(&callMsg{method: "f", seq: 3, callerRank: 0, callID: 1, simple: args})
	r3 := recvReplyRaw(t, b)
	if !strings.Contains(r3.errText, "watermark") {
		t.Fatalf("retry of evicted call got %q, want a watermark refusal", r3.errText)
	}
	if runs.Load() != 2 {
		t.Fatalf("handler ran %d times; the evicted retry must not re-execute", runs.Load())
	}
}

// TestCallerRefusesEvictedRetry: once the acked watermark passes a callID,
// the caller itself refuses to send with a typed error instead of risking
// re-execution on the callee.
func TestCallerRefusesEvictedRetry(t *testing.T) {
	a, _ := transport.Pipe()
	defer a.Close()
	port := NewCallerPort(matrixIface(t), NewConnLink([]transport.Conn{a}, 0), 0, 1, Eager)
	port.watermarks[0] = 5 // as if the callee acked evictions past our next callID
	_, err := port.CallIndependent(0, "f", Simple("x", 1.0))
	var de *DedupEvictedError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want *DedupEvictedError", err)
	}
	if de.Watermark != 5 || de.Target != 0 {
		t.Fatalf("error carries %+v", de)
	}
}

// TestPendingLimitDropsOldest is the regression test for the deferred
// queue cap: beyond PendingLimit the oldest held messages are shed and
// counted, newest kept.
func TestPendingLimitDropsOldest(t *testing.T) {
	ep := NewEndpoint(matrixIface(t), nil, 0, 1, 1)
	ep.PendingLimit = 4
	before := mDeferredDropped.Value()
	for i := 0; i < 6; i++ {
		ep.enqueue(2, []byte{byte(i)})
	}
	q := ep.pendingRaw[2]
	if len(q) != 4 {
		t.Fatalf("queue holds %d messages, limit is 4", len(q))
	}
	if q[0][0] != 2 || q[3][0] != 5 {
		t.Fatalf("queue kept wrong messages: first=%d last=%d, want 2 and 5", q[0][0], q[3][0])
	}
	if got := mDeferredDropped.Value() - before; got != 2 {
		t.Fatalf("drop counter advanced by %d, want 2", got)
	}
}

// TestStaleEpochCallRejected: an endpoint with a newer membership view
// refuses a call stamped with an older epoch, and accepts one stamped with
// the current epoch.
func TestStaleEpochCallRejected(t *testing.T) {
	iface := matrixIface(t)
	a, b := transport.Pipe()
	defer a.Close()
	ep := NewEndpoint(iface, NewConnLink([]transport.Conn{a}, 0), 0, 1, 2)
	var runs atomic.Int64
	ep.Handle("f", func(in *Incoming, out *Outgoing) error {
		out.Return = float64(runs.Add(1))
		return nil
	})
	mem := core.NewMembership(2)
	mem.MarkDown(1) // epoch 1 -> 2
	ep.SetMembership(mem)

	args := []namedValue{{name: "x", value: 1.0}}
	before := mStaleEpochCalls.Value()
	if _, err := ep.dispatch(0, encodeCall(&callMsg{method: "f", seq: 1, callerRank: 0, callID: 1, epoch: 1, simple: args})); err != nil {
		t.Fatal(err)
	}
	rep := recvReplyRaw(t, b)
	if !strings.Contains(rep.errText, "stale epoch") {
		t.Fatalf("stale call got %q, want a stale-epoch refusal", rep.errText)
	}
	if runs.Load() != 0 {
		t.Fatal("stale-epoch call reached the handler")
	}
	if mStaleEpochCalls.Value() != before+1 {
		t.Fatal("stale-epoch counter did not advance")
	}

	if _, err := ep.dispatch(0, encodeCall(&callMsg{method: "f", seq: 2, callerRank: 0, callID: 2, epoch: 2, simple: args})); err != nil {
		t.Fatal(err)
	}
	if rep := recvReplyRaw(t, b); rep.errText != "" || runs.Load() != 1 {
		t.Fatalf("current-epoch call rejected: %q (runs=%d)", rep.errText, runs.Load())
	}
}

// silentLink never delivers anything: every bounded receive expires.
type silentLink struct{}

func (silentLink) Send(int, []byte) error     { return nil }
func (silentLink) Recv() (int, []byte, error) { select {} }
func (silentLink) RecvTimeout(d time.Duration) (int, []byte, error) {
	if d > 0 {
		time.Sleep(d)
	}
	return 0, nil, fmt.Errorf("%w: silent link", ErrTimeout)
}

// TestNextFromFailsFastOnDeadParticipant: a collective wait on a
// participant that is (or becomes) marked down returns *core.ErrRankDown
// promptly instead of stalling to the timeout.
func TestNextFromFailsFastOnDeadParticipant(t *testing.T) {
	ep := NewEndpoint(matrixIface(t), silentLink{}, 0, 1, 2)
	mem := core.NewMembership(2)
	ep.SetMembership(mem)
	mem.MarkDown(1)
	start := time.Now()
	_, err := ep.nextFrom(1, 0) // unbounded wait, but the rank is dead
	var rd *core.ErrRankDown
	if !errors.As(err, &rd) || rd.Rank != 1 {
		t.Fatalf("err = %v, want *core.ErrRankDown for rank 1", err)
	}
	if time.Since(start) > time.Second {
		t.Fatalf("fast-fail took %v", time.Since(start))
	}

	// Dies mid-wait: detection must come from the liveness poll.
	mem2 := core.NewMembership(2)
	ep.SetMembership(mem2)
	go func() {
		time.Sleep(30 * time.Millisecond)
		mem2.MarkDown(1)
	}()
	_, err = ep.nextFrom(1, 0)
	if !errors.As(err, &rd) || rd.Rank != 1 {
		t.Fatalf("mid-wait death: err = %v, want *core.ErrRankDown for rank 1", err)
	}
}

// TestCallRankDownFailsFastMidWait: the caller side of the same contract —
// a blocking call whose target dies mid-wait returns the typed error
// instead of hanging on a reply that will never come.
func TestCallRankDownFailsFastMidWait(t *testing.T) {
	a, _ := transport.Pipe()
	defer a.Close()
	port := NewCallerPort(matrixIface(t), NewConnLink([]transport.Conn{a}, 0), 0, 1, Eager)
	mem := core.NewMembership(1)
	port.SetMembership(mem)
	go func() {
		time.Sleep(30 * time.Millisecond)
		mem.MarkDown(0)
	}()
	_, err := boundedCall(t, func() (*Result, error) {
		return port.CallIndependent(0, "f", Simple("x", 1.0))
	})
	var rd *core.ErrRankDown
	if !errors.As(err, &rd) || rd.Rank != 0 {
		t.Fatalf("err = %v, want *core.ErrRankDown for rank 0", err)
	}
	// Dead target up front: refused before any attempt is sent.
	_, err = port.CallIndependent(0, "f", Simple("x", 1.0))
	if !errors.As(err, &rd) {
		t.Fatalf("call to known-dead rank: %v, want *core.ErrRankDown", err)
	}
}
