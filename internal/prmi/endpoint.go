package prmi

import (
	"errors"
	"fmt"
	"reflect"
	"time"

	"mxn/internal/core"
	"mxn/internal/dad"
	"mxn/internal/schedule"
	"mxn/internal/sidl"
	"mxn/internal/wire"
)

// ErrStalled reports that a callee rank committed to a collective
// invocation and waited longer than the configured stall timeout for the
// remaining participants — the observable symptom of the Figure 5
// synchronization problem under eager delivery.
var ErrStalled = errors.New("prmi: collective invocation stalled waiting for participants")

// OrderViolationError reports that while collecting a collective
// invocation the endpoint received a *different* call from a participant —
// consecutive collective calls from intersecting participant sets were
// delivered inconsistently (the failure barrier-delayed delivery
// prevents).
type OrderViolationError struct {
	Committed      string // method the endpoint committed to
	CommittedParts []int  // its participant set
	Received       string // method that arrived instead
	ReceivedParts  []int  // its participant set
	From           int    // caller cohort rank it arrived from
}

func (e *OrderViolationError) Error() string {
	return fmt.Sprintf("prmi: invocation order violation: committed to %q with participants %v but caller %d sent %q with participants %v",
		e.Committed, e.CommittedParts, e.From, e.Received, e.ReceivedParts)
}

// Incoming is the callee-side view of one logical invocation at one callee
// rank.
type Incoming struct {
	Method       string
	CalleeRank   int
	Participants []int          // caller cohort ranks; nil for independent calls
	CallerRank   int            // for independent calls, the caller
	Simple       map[string]any // simple in/inout arguments (replicated)
	// Parallel holds each parallel in/inout argument assembled into this
	// rank's fragment of the callee-side distribution. Deferred
	// (by-reference) arguments are absent here; fetch them with Pull.
	Parallel map[string][]float64

	deferred map[string]bool
	pull     func(name string, layout *dad.Template) ([]float64, error)
}

// Outgoing is what a handler produces. For inout parallel parameters the
// assembled buffer is pre-installed in Parallel so handlers may mutate it
// in place; for out parallel parameters a zeroed buffer of the registered
// layout's local size is pre-installed.
type Outgoing struct {
	Return    any
	SimpleOut map[string]any
	Parallel  map[string][]float64
}

// Handler services one method at one callee rank. For collective methods
// it runs once per callee rank per logical invocation (including ghost
// invocations on ranks beyond the participant count).
type Handler func(in *Incoming, out *Outgoing) error

// Endpoint is one callee rank's server for a remote parallel port.
type Endpoint struct {
	iface   *sidl.Interface
	link    Link
	rank    int // callee cohort rank
	nCallee int
	nCaller int

	handlers map[string]Handler
	layouts  map[string]*dad.Template
	scheds   *schedule.Cache
	tcache   *templateCache
	encs     map[string][]byte

	// CheckSimpleArgs enables verification that simple arguments carry
	// the same value on every participant — the consistency policy the
	// paper says frameworks may skip for performance.
	CheckSimpleArgs bool
	// StallTimeout bounds how long a committed collective invocation
	// waits for its remaining participants; zero blocks forever (faithful
	// deadlock).
	StallTimeout time.Duration
	// StrictMatching selects how a mismatched invocation from a
	// participant is treated while collecting a collective call. When
	// true, the endpoint fails fast with an *OrderViolationError. When
	// false — the faithful reproduction of Figure 5 — the mismatched call
	// is held back and the endpoint keeps waiting for the committed call,
	// blocking indefinitely (or until StallTimeout) exactly as the paper
	// describes.
	StrictMatching bool
	// DedupCapacity bounds the per-caller exactly-once table (entries
	// remembered per caller rank). Zero means defaultDedupCapacity.
	// Evicting an entry advances that caller's watermark: a retry of an
	// evicted callID is refused rather than silently re-executed.
	DedupCapacity int
	// PendingLimit caps each per-caller deferred message queue (messages
	// held back while collecting a collective invocation, or one-way
	// calls queued behind it). Oldest messages are dropped beyond the
	// limit. Zero means defaultPendingLimit.
	PendingLimit int

	pendingRaw map[int][][]byte
	closed     map[int]bool
	dedup      map[int]*dedupTable // caller rank -> exactly-once state
	members    *core.Membership    // caller-cohort view; nil disables fencing
}

// Queue and table bounds when the knobs are left zero.
const (
	defaultPendingLimit  = 1024
	defaultDedupCapacity = 128
)

// dedupTable is one caller's exactly-once state: replies of completed
// calls keyed by callID (nil for oneway methods, which have no reply),
// FIFO eviction order, and the watermark below which callIDs have been
// forgotten.
type dedupTable struct {
	entries   map[uint64]*replyMsg
	order     []uint64
	watermark uint64
}

// NewEndpoint builds a callee-rank server. rank is this callee's cohort
// rank, nCallee the callee cohort size, nCaller the caller cohort size.
func NewEndpoint(iface *sidl.Interface, link Link, rank, nCallee, nCaller int) *Endpoint {
	return &Endpoint{
		iface:      iface,
		link:       link,
		rank:       rank,
		nCallee:    nCallee,
		nCaller:    nCaller,
		handlers:   map[string]Handler{},
		layouts:    map[string]*dad.Template{},
		scheds:     schedule.NewCache(),
		tcache:     newTemplateCache(),
		encs:       map[string][]byte{},
		pendingRaw: map[int][][]byte{},
		closed:     map[int]bool{},
		dedup:      map[int]*dedupTable{},
	}
}

// SetMembership installs a liveness view over the caller cohort. With a
// membership set the endpoint fences invocations by epoch — a call stamped
// with an epoch older than the current view is rejected with an error
// reply instead of executing against survivors it no longer matches — and
// collective collection fails fast with *core.ErrRankDown when a missing
// participant is marked down, instead of stalling to the timeout.
func (ep *Endpoint) SetMembership(m *core.Membership) { ep.members = m }

// Handle registers the implementation of a method.
func (ep *Endpoint) Handle(method string, h Handler) error {
	if _, ok := ep.iface.Method(method); !ok {
		return fmt.Errorf("prmi: no method %q in interface %s", method, ep.iface.Name)
	}
	ep.handlers[method] = h
	return nil
}

// RegisterArgLayout declares the callee-side distribution of a parallel
// parameter — the "special framework service" strategy for announcing
// layouts before any call arrives. The template must be decomposed over
// the callee cohort.
func (ep *Endpoint) RegisterArgLayout(method, param string, t *dad.Template) error {
	m, ok := ep.iface.Method(method)
	if !ok {
		return fmt.Errorf("prmi: no method %q", method)
	}
	if !hasParallelParam(m, param) {
		return fmt.Errorf("prmi: %s has no parallel parameter %q", method, param)
	}
	if t.NumProcs() != ep.nCallee {
		return fmt.Errorf("prmi: layout for %s(%s) spans %d ranks, callee cohort has %d",
			method, param, t.NumProcs(), ep.nCallee)
	}
	ep.layouts[method+"\x00"+param] = t
	return nil
}

// EncodeLayouts serializes the registered layouts for transmission to the
// caller side at connect time (consumed by CallerPort.ApplyLayouts).
func (ep *Endpoint) EncodeLayouts() []byte {
	e := wire.NewEncoder(nil)
	e.PutUvarint(uint64(len(ep.layouts)))
	for key, t := range ep.layouts {
		var method, param string
		for i := 0; i < len(key); i++ {
			if key[i] == 0 {
				method, param = key[:i], key[i+1:]
			}
		}
		e.PutString(method)
		e.PutString(param)
		t.Encode(e)
	}
	return e.Bytes()
}

// Serve processes invocations until every caller rank has closed its
// port, servicing calls strictly in arrival order at this rank. It
// returns nil on clean shutdown, ErrStalled if a collective invocation
// exceeded StallTimeout, or an *OrderViolationError if participants
// delivered inconsistent calls.
func (ep *Endpoint) Serve() error {
	for {
		src, raw, err := ep.nextAny(0)
		if err != nil {
			return err
		}
		done, err := ep.dispatch(src, raw)
		if err != nil {
			return err
		}
		if done {
			return nil
		}
	}
}

// dispatch handles one raw message; done reports clean shutdown.
func (ep *Endpoint) dispatch(src int, raw []byte) (done bool, err error) {
	if len(raw) == 0 {
		return false, fmt.Errorf("prmi: empty message from caller %d", src)
	}
	switch raw[0] {
	case msgShutdown:
		ep.closed[src] = true
		return len(ep.closed) == ep.nCaller, nil
	case msgDetach:
		ep.detach(src)
		return len(ep.closed) == ep.nCaller, nil
	case msgCall:
		hdr, err := decodeCall(wire.NewDecoder(raw[1:]))
		if err != nil {
			return false, err
		}
		if ep.members != nil && hdr.epoch != 0 && hdr.epoch < ep.members.Epoch() {
			// The caller planned this invocation against a membership view
			// that has since changed; executing it could mix pre- and
			// post-failure data. Refuse it and let the caller re-plan.
			mStaleEpochCalls.Inc()
			m, _ := ep.iface.Method(hdr.method)
			return false, ep.replyError(hdr, fmt.Sprintf("stale epoch %d (view is at %d)", hdr.epoch, ep.members.Epoch()), m)
		}
		if !hdr.collective {
			return false, ep.serveIndependent(hdr)
		}
		return false, ep.serveCollective(hdr)
	default:
		return false, fmt.Errorf("prmi: endpoint received unexpected message kind %d", raw[0])
	}
}

// detach retires a departing caller rank (an online shrink): its
// exactly-once dedup table and deferred queue are drained and it is
// counted as closed, so Serve returns once the *remaining* callers shut
// down. FIFO link delivery guarantees every call the departing rank sent
// before its detach was already dispatched here, so nothing the dedup
// table protects can still arrive — the drained state is dead weight a
// long-lived endpoint serving an elastic cohort must not accumulate.
// Idempotent; a detach after a shutdown (or vice versa) changes nothing.
func (ep *Endpoint) detach(src int) {
	if !ep.closed[src] {
		ep.closed[src] = true
		mDetaches.Inc()
	}
	if dt := ep.dedup[src]; dt != nil {
		mDetachDedupDrained.Add(uint64(len(dt.entries)))
		delete(ep.dedup, src)
	}
	delete(ep.pendingRaw, src)
}

// dedupFor returns (creating if needed) the exactly-once table for one
// caller rank. Watermarks start at 1 because callIDs start at 1: nothing
// has been forgotten yet.
func (ep *Endpoint) dedupFor(caller int) *dedupTable {
	t := ep.dedup[caller]
	if t == nil {
		t = &dedupTable{entries: map[uint64]*replyMsg{}, watermark: 1}
		ep.dedup[caller] = t
	}
	return t
}

// dedupStore remembers the outcome of callID (nil for oneway methods),
// evicting oldest entries beyond capacity and advancing the watermark past
// everything forgotten.
func (ep *Endpoint) dedupStore(t *dedupTable, callID uint64, rep *replyMsg) {
	limit := ep.DedupCapacity
	if limit <= 0 {
		limit = defaultDedupCapacity
	}
	for len(t.entries) >= limit && len(t.order) > 0 {
		old := t.order[0]
		t.order = t.order[1:]
		delete(t.entries, old)
		if old+1 > t.watermark {
			t.watermark = old + 1
		}
		mDedupEvictions.Inc()
	}
	t.entries[callID] = rep
	t.order = append(t.order, callID)
}

// serveIndependent services a one-to-one invocation. Calls stamped with a
// callID get exactly-once semantics: a duplicate attempt of a completed
// call replays the cached reply (re-sequenced for the retry) instead of
// re-running the handler, and an attempt whose callID fell below the
// eviction watermark is refused because its original outcome is unknown.
func (ep *Endpoint) serveIndependent(hdr *callMsg) error {
	m, ok := ep.iface.Method(hdr.method)
	if !ok {
		return ep.replyError(hdr, fmt.Sprintf("no method %q", hdr.method), m)
	}
	var dt *dedupTable
	if hdr.callID != 0 {
		dt = ep.dedupFor(hdr.callerRank)
		if hdr.callID < dt.watermark {
			return ep.replyError(hdr, fmt.Sprintf("callID %d below eviction watermark %d; outcome unknown", hdr.callID, dt.watermark), m)
		}
		if rep, done := dt.entries[hdr.callID]; done {
			mDedupHits.Inc()
			if m.OneWay || rep == nil {
				return nil
			}
			mDedupReplays.Inc()
			cp := *rep
			cp.seq = hdr.seq
			cp.watermark = dt.watermark
			return ep.link.Send(hdr.callerRank, encodeReply(&cp))
		}
	}
	in := &Incoming{
		Method:     hdr.method,
		CalleeRank: ep.rank,
		CallerRank: hdr.callerRank,
		Simple:     simpleMap(hdr.simple),
		Parallel:   map[string][]float64{},
	}
	mEndpointInvokes.Inc()
	out := &Outgoing{SimpleOut: map[string]any{}, Parallel: map[string][]float64{}}
	h := ep.handlers[hdr.method]
	if h == nil {
		return ep.replyError(hdr, fmt.Sprintf("no handler for %q", hdr.method), m)
	}
	herr := h(in, out)
	var rep *replyMsg
	if !m.OneWay {
		rep = &replyMsg{method: hdr.method, seq: hdr.seq, calleeRank: ep.rank}
		if herr != nil {
			rep.errText = herr.Error()
		} else {
			rep.ret = out.Return
			rep.simpleOut = simpleOutList(m, out)
		}
	}
	if dt != nil {
		ep.dedupStore(dt, hdr.callID, rep)
		if rep != nil {
			rep.watermark = dt.watermark
		}
	}
	if m.OneWay {
		return nil
	}
	return ep.link.Send(hdr.callerRank, encodeReply(rep))
}

// serveCollective collects the all-to-all invocation this rank committed
// to by receiving hdr, assembles parallel arguments, runs the handler and
// distributes returns.
func (ep *Endpoint) serveCollective(first *callMsg) error {
	m, ok := ep.iface.Method(first.method)
	if !ok {
		return fmt.Errorf("prmi: callee received unknown method %q", first.method)
	}
	mEndpointInvokes.Inc()
	hdrs := map[int]*callMsg{first.callerRank: first}
	type heldMsg struct {
		src int
		raw []byte
	}
	var held []heldMsg
	for _, p := range first.participants {
		if p == first.callerRank {
			continue
		}
		for {
			raw, err := ep.nextFrom(p, ep.StallTimeout)
			if err != nil {
				var rd *core.ErrRankDown
				if errors.As(err, &rd) {
					// Not a stall: the missing participant is dead and its
					// invocation is never coming. Surface the typed error.
					return fmt.Errorf("prmi: collecting %q: %w", first.method, err)
				}
				return fmt.Errorf("%w: committed to %q, missing caller %d", ErrStalled, first.method, p)
			}
			if len(raw) == 0 || raw[0] != msgCall {
				return fmt.Errorf("prmi: caller %d sent kind %d during collective %q", p, raw[0], first.method)
			}
			hdr, err := decodeCall(wire.NewDecoder(raw[1:]))
			if err != nil {
				return err
			}
			if hdr.method == first.method && equalInts(hdr.participants, first.participants) {
				hdrs[p] = hdr
				break
			}
			if ep.StrictMatching {
				return &OrderViolationError{
					Committed: first.method, CommittedParts: first.participants,
					Received: hdr.method, ReceivedParts: hdr.participants,
					From: p,
				}
			}
			// Faithful mode: hold the foreign call back and keep waiting
			// for the committed one — if it can never arrive, this is the
			// Figure 5 deadlock.
			held = append(held, heldMsg{src: p, raw: raw})
		}
	}
	// Re-queue held calls in arrival order so they are serviced after this
	// invocation completes.
	for i := len(held) - 1; i >= 0; i-- {
		ep.pendingRaw[held[i].src] = append([][]byte{held[i].raw}, ep.pendingRaw[held[i].src]...)
	}

	if ep.CheckSimpleArgs {
		for p, hdr := range hdrs {
			if !reflect.DeepEqual(simpleMap(hdr.simple), simpleMap(first.simple)) {
				err := fmt.Errorf("prmi: simple arguments of %q differ between callers %d and %d (the CCA convention requires equal values)",
					first.method, first.callerRank, p)
				// Notify every participant so no caller blocks on a reply
				// that will never come, then fail the endpoint.
				if !m.OneWay {
					for _, pr := range first.participants {
						rep := &replyMsg{method: first.method, seq: hdrs[pr].seq, calleeRank: ep.rank, errText: err.Error()}
						_ = ep.link.Send(pr, encodeReply(rep))
					}
				}
				return err
			}
		}
	}

	in := &Incoming{
		Method:       first.method,
		CalleeRank:   ep.rank,
		Participants: first.participants,
		Simple:       simpleMap(first.simple),
		Parallel:     map[string][]float64{},
	}
	out := &Outgoing{SimpleOut: map[string]any{}, Parallel: map[string][]float64{}}

	// Assemble parallel in/inout arguments; pre-install out buffers.
	type paramState struct {
		spec      sidl.Param
		callerTpl *dad.Template
		calleeTpl *dad.Template
	}
	var params []paramState
	for _, pr := range m.Params {
		if !pr.Parallel {
			continue
		}
		frag, ok := findFrag(first.parallel, pr.Name)
		if !ok {
			return fmt.Errorf("prmi: call %q missing parallel argument %q", first.method, pr.Name)
		}
		if frag.deferred {
			// Passed by reference: the handler pulls it after choosing a
			// layout (the paper's delayed-transfer strategy). No assembly
			// here and no registered layout required.
			if in.deferred == nil {
				in.deferred = map[string]bool{}
			}
			in.deferred[pr.Name] = true
			continue
		}
		calleeTpl := ep.layouts[first.method+"\x00"+pr.Name]
		if calleeTpl == nil {
			return fmt.Errorf("prmi: no layout registered for %s(%s) on callee", first.method, pr.Name)
		}
		callerTpl, err := ep.tcache.get(frag.templateKey, frag.templateEnc)
		if err != nil {
			return err
		}
		ps := paramState{spec: pr, callerTpl: callerTpl, calleeTpl: calleeTpl}
		params = append(params, ps)

		local := make([]float64, calleeTpl.LocalCount(ep.rank))
		if pr.Mode != sidl.Out {
			s, err := ep.scheds.Get(callerTpl, calleeTpl)
			if err != nil {
				return err
			}
			for _, plan := range s.IncomingFor(ep.rank) {
				srcCohortRank := first.participants[plan.SrcRank]
				f, ok := findFrag(hdrs[srcCohortRank].parallel, pr.Name)
				if !ok || len(f.data) != plan.Elems {
					return fmt.Errorf("prmi: %s(%s): caller %d fragment has %d elements, schedule says %d",
						first.method, pr.Name, srcCohortRank, len(f.data), plan.Elems)
				}
				schedule.Unpack(plan, local, f.data)
			}
			in.Parallel[pr.Name] = local
		}
		// inout: handler mutates the assembled buffer; out: zeroed buffer.
		if pr.Mode != sidl.In {
			out.Parallel[pr.Name] = local
		}
	}

	if len(in.deferred) > 0 {
		in.pull = ep.pullDeferred(first, hdrs)
	}

	h := ep.handlers[first.method]
	var herr error
	if h == nil {
		herr = fmt.Errorf("no handler for %q", first.method)
	} else {
		herr = h(in, out)
	}
	if m.OneWay {
		return nil
	}

	// Reply routing: designated callers (ghost-return policy) plus every
	// caller owed out/inout parallel data under the reverse schedules.
	nParts := len(first.participants)
	targets := map[int][]parallelFrag{} // participant position -> frags
	for k := 0; k < nParts; k++ {
		if k%ep.nCallee == ep.rank {
			targets[k] = nil
		}
	}
	if herr == nil {
		for _, ps := range params {
			if ps.spec.Mode == sidl.In {
				continue
			}
			data := out.Parallel[ps.spec.Name]
			if len(data) != ps.calleeTpl.LocalCount(ep.rank) {
				herr = fmt.Errorf("handler produced %d elements for %s, layout says %d",
					len(data), ps.spec.Name, ps.calleeTpl.LocalCount(ep.rank))
				break
			}
			rs, err := ep.scheds.Get(ps.calleeTpl, ps.callerTpl)
			if err != nil {
				return err
			}
			for _, plan := range rs.OutgoingFor(ep.rank) {
				buf := make([]float64, plan.Elems)
				schedule.Pack(plan, data, buf)
				targets[plan.DstRank] = append(targets[plan.DstRank], parallelFrag{
					name:        ps.spec.Name,
					templateKey: ps.calleeTpl.Key(),
					data:        buf,
				})
			}
		}
	}
	for k, frags := range targets {
		rep := &replyMsg{method: first.method, seq: hdrs[first.participants[k]].seq, calleeRank: ep.rank}
		if herr != nil {
			rep.errText = herr.Error()
		} else {
			rep.ret = out.Return
			rep.simpleOut = simpleOutList(m, out)
			rep.parallelOut = frags
		}
		if err := ep.link.Send(first.participants[k], encodeReply(rep)); err != nil {
			return err
		}
	}
	return nil
}

// replyError sends an error reply for an independent call when possible.
func (ep *Endpoint) replyError(hdr *callMsg, text string, m *sidl.Method) error {
	if m != nil && m.OneWay {
		return nil
	}
	rep := &replyMsg{method: hdr.method, seq: hdr.seq, calleeRank: ep.rank, errText: text}
	return ep.link.Send(hdr.callerRank, encodeReply(rep))
}

// nextAny returns the next message from any caller, consulting pending
// queues first. timeout <= 0 blocks forever.
func (ep *Endpoint) nextAny(timeout time.Duration) (int, []byte, error) {
	for src, q := range ep.pendingRaw {
		if len(q) > 0 {
			ep.pendingRaw[src] = q[1:]
			return src, q[0], nil
		}
	}
	return ep.recvLink(timeout)
}

// enqueue defers a message from one caller, dropping the oldest beyond
// PendingLimit. An unbounded queue here would let a single stalled
// collective grow the heap without limit under a caller that keeps firing
// one-way calls; bounded, the oldest deferred work is shed and counted.
func (ep *Endpoint) enqueue(src int, raw []byte) {
	limit := ep.PendingLimit
	if limit <= 0 {
		limit = defaultPendingLimit
	}
	q := append(ep.pendingRaw[src], raw)
	for len(q) > limit {
		q = q[1:]
		mDeferredDropped.Inc()
	}
	ep.pendingRaw[src] = q
}

// livenessPoll is the receive slice used when a membership view is set, so
// a blocked wait notices a participant being marked down promptly.
const livenessPoll = 5 * time.Millisecond

// nextFrom returns the next message from a specific caller, queueing
// others. timeout <= 0 blocks forever. With a membership view set, the
// wait polls and fails fast with *core.ErrRankDown once src is marked
// down — a crashed participant's collective message is never coming.
func (ep *Endpoint) nextFrom(src int, timeout time.Duration) ([]byte, error) {
	if q := ep.pendingRaw[src]; len(q) > 0 {
		ep.pendingRaw[src] = q[1:]
		return q[0], nil
	}
	deadline := time.Time{}
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	for {
		if mb := ep.members; mb != nil && !mb.IsAlive(src) {
			mRankdownErrors.Inc()
			return nil, &core.ErrRankDown{Rank: src, Epoch: mb.Epoch()}
		}
		remain := time.Duration(0)
		if !deadline.IsZero() {
			remain = time.Until(deadline)
			if remain <= 0 {
				mEndpointStalls.Inc()
				return nil, ErrStalled
			}
		}
		slice := remain
		if ep.members != nil && (slice <= 0 || slice > livenessPoll) {
			slice = livenessPoll
		}
		from, raw, err := ep.link.RecvTimeout(slice)
		if errors.Is(err, ErrTimeout) {
			if slice != remain {
				continue // a liveness poll slice expired, not the deadline
			}
			mEndpointStalls.Inc()
			return nil, ErrStalled
		}
		if err != nil {
			return nil, err
		}
		if from == src {
			return raw, nil
		}
		ep.enqueue(from, raw)
	}
}

// recvLink receives from the link, optionally bounded by a timeout. The
// link's own RecvTimeout keeps an undelivered message in the link (no
// goroutine handoff), so a message racing the deadline is never lost.
func (ep *Endpoint) recvLink(timeout time.Duration) (int, []byte, error) {
	src, raw, err := ep.link.RecvTimeout(timeout)
	if errors.Is(err, ErrTimeout) {
		mEndpointStalls.Inc()
		return 0, nil, ErrStalled
	}
	return src, raw, err
}

// simpleMap converts wire values to the handler-facing map.
func simpleMap(vals []namedValue) map[string]any {
	out := make(map[string]any, len(vals))
	for _, v := range vals {
		out[v.name] = v.value
	}
	return out
}

// simpleOutList orders handler-produced out values per the spec.
func simpleOutList(m *sidl.Method, out *Outgoing) []namedValue {
	var list []namedValue
	for _, pr := range m.Params {
		if pr.Parallel || pr.Mode == sidl.In {
			continue
		}
		if v, ok := out.SimpleOut[pr.Name]; ok {
			list = append(list, namedValue{name: pr.Name, value: v})
		}
	}
	return list
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
