package prmi

// Failure injection: distributed frameworks live on networks that fail,
// so the PRMI layer must surface link failures and corrupt traffic as
// errors rather than hangs or panics.

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"mxn/internal/comm"
	"mxn/internal/sidl"
	"mxn/internal/transport"
)

func simpleIface(t *testing.T) *sidl.Interface {
	t.Helper()
	pkg, err := sidl.Parse(`package p; interface I { independent double f(in double x); }`)
	if err != nil {
		t.Fatal(err)
	}
	iface, _ := pkg.Interface("I")
	return iface
}

func TestEndpointSurvivesGarbage(t *testing.T) {
	iface := simpleIface(t)
	w := comm.NewWorld(2)
	cs := w.Comms()
	serveErr := make(chan error, 1)
	go func() {
		ep := NewEndpoint(iface, NewCommLink(cs[1], 0, 0), 0, 1, 1)
		serveErr <- ep.Serve()
	}()
	// Deliver a corrupt frame: a call kind byte followed by junk.
	cs[0].Send(1, 0, []byte{msgCall, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	err := <-serveErr
	if err == nil {
		t.Fatal("endpoint accepted corrupt call frame")
	}
}

func TestEndpointRejectsUnknownKind(t *testing.T) {
	iface := simpleIface(t)
	w := comm.NewWorld(2)
	cs := w.Comms()
	serveErr := make(chan error, 1)
	go func() {
		ep := NewEndpoint(iface, NewCommLink(cs[1], 0, 0), 0, 1, 1)
		serveErr <- ep.Serve()
	}()
	cs[0].Send(1, 0, []byte{0x77})
	if err := <-serveErr; err == nil || !strings.Contains(err.Error(), "unexpected message kind") {
		t.Fatalf("err = %v", err)
	}
}

func TestEndpointRejectsEmptyFrame(t *testing.T) {
	iface := simpleIface(t)
	w := comm.NewWorld(2)
	cs := w.Comms()
	serveErr := make(chan error, 1)
	go func() {
		ep := NewEndpoint(iface, NewCommLink(cs[1], 0, 0), 0, 1, 1)
		serveErr <- ep.Serve()
	}()
	cs[0].Send(1, 0, []byte{})
	if err := <-serveErr; err == nil {
		t.Fatal("empty frame accepted")
	}
}

func TestConnLinkPeerDeathSurfacesToServe(t *testing.T) {
	iface := simpleIface(t)
	a, b := transport.Pipe()
	serveErr := make(chan error, 1)
	go func() {
		ep := NewEndpoint(iface, NewConnLink([]transport.Conn{b}, 0), 0, 1, 1)
		serveErr <- ep.Serve()
	}()
	// The caller's process "dies": its connection closes with no shutdown
	// message.
	a.Close()
	err := <-serveErr
	if err == nil {
		t.Fatal("Serve returned nil after peer death")
	}
	if !errors.Is(err, transport.ErrClosed) && !strings.Contains(err.Error(), "closed") {
		t.Fatalf("err = %v, want a closed-connection error", err)
	}
}

func TestConnLinkPeerDeathSurfacesToCaller(t *testing.T) {
	iface := simpleIface(t)
	a, b := transport.Pipe()
	port := NewCallerPort(iface, NewConnLink([]transport.Conn{a}, 0), 0, 1, Eager)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// The callee consumes the call, then dies without replying.
		if _, err := b.Recv(); err != nil {
			t.Errorf("callee recv: %v", err)
		}
		b.Close()
	}()
	_, err := port.CallIndependent(0, "f", Simple("x", 1.0))
	if err == nil {
		t.Fatal("caller got a result from a dead callee")
	}
	wg.Wait()
}

func TestCallerRejectsCorruptReply(t *testing.T) {
	iface := simpleIface(t)
	a, b := transport.Pipe()
	port := NewCallerPort(iface, NewConnLink([]transport.Conn{a}, 0), 0, 1, Eager)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := b.Recv(); err != nil {
			return
		}
		// Reply with a valid src prefix but corrupt reply body.
		b.Send([]byte{0, 0, 0, 0, msgReply, 0xDE, 0xAD})
	}()
	_, err := port.CallIndependent(0, "f", Simple("x", 1.0))
	if err == nil {
		t.Fatal("corrupt reply accepted")
	}
	wg.Wait()
	a.Close()
}

func TestMeshShortFrame(t *testing.T) {
	// A frame shorter than the rank prefix must error, not panic.
	a, b := transport.Pipe()
	defer a.Close()
	link := NewConnLink([]transport.Conn{b}, 0)
	if err := a.Send([]byte{1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := link.Recv(); err == nil {
		t.Fatal("short frame accepted")
	}
}
