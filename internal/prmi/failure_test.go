package prmi

// Failure injection: distributed frameworks live on networks that fail,
// so the PRMI layer must surface link failures and corrupt traffic as
// errors rather than hangs or panics.

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"sync/atomic"
	"time"

	"mxn/internal/comm"
	"mxn/internal/sidl"
	"mxn/internal/transport"
	"mxn/internal/wire"
)

func simpleIface(t *testing.T) *sidl.Interface {
	t.Helper()
	pkg, err := sidl.Parse(`package p; interface I { independent double f(in double x); }`)
	if err != nil {
		t.Fatal(err)
	}
	iface, _ := pkg.Interface("I")
	return iface
}

func TestEndpointSurvivesGarbage(t *testing.T) {
	iface := simpleIface(t)
	w := comm.NewWorld(2)
	cs := w.Comms()
	serveErr := make(chan error, 1)
	go func() {
		ep := NewEndpoint(iface, NewCommLink(cs[1], 0, 0), 0, 1, 1)
		serveErr <- ep.Serve()
	}()
	// Deliver a corrupt frame: a call kind byte followed by junk.
	cs[0].Send(1, 0, []byte{msgCall, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	err := <-serveErr
	if err == nil {
		t.Fatal("endpoint accepted corrupt call frame")
	}
}

func TestEndpointRejectsUnknownKind(t *testing.T) {
	iface := simpleIface(t)
	w := comm.NewWorld(2)
	cs := w.Comms()
	serveErr := make(chan error, 1)
	go func() {
		ep := NewEndpoint(iface, NewCommLink(cs[1], 0, 0), 0, 1, 1)
		serveErr <- ep.Serve()
	}()
	cs[0].Send(1, 0, []byte{0x77})
	if err := <-serveErr; err == nil || !strings.Contains(err.Error(), "unexpected message kind") {
		t.Fatalf("err = %v", err)
	}
}

func TestEndpointRejectsEmptyFrame(t *testing.T) {
	iface := simpleIface(t)
	w := comm.NewWorld(2)
	cs := w.Comms()
	serveErr := make(chan error, 1)
	go func() {
		ep := NewEndpoint(iface, NewCommLink(cs[1], 0, 0), 0, 1, 1)
		serveErr <- ep.Serve()
	}()
	cs[0].Send(1, 0, []byte{})
	if err := <-serveErr; err == nil {
		t.Fatal("empty frame accepted")
	}
}

func TestConnLinkPeerDeathSurfacesToServe(t *testing.T) {
	iface := simpleIface(t)
	a, b := transport.Pipe()
	serveErr := make(chan error, 1)
	go func() {
		ep := NewEndpoint(iface, NewConnLink([]transport.Conn{b}, 0), 0, 1, 1)
		serveErr <- ep.Serve()
	}()
	// The caller's process "dies": its connection closes with no shutdown
	// message.
	a.Close()
	err := <-serveErr
	if err == nil {
		t.Fatal("Serve returned nil after peer death")
	}
	if !errors.Is(err, transport.ErrClosed) && !strings.Contains(err.Error(), "closed") {
		t.Fatalf("err = %v, want a closed-connection error", err)
	}
}

func TestConnLinkPeerDeathSurfacesToCaller(t *testing.T) {
	iface := simpleIface(t)
	a, b := transport.Pipe()
	port := NewCallerPort(iface, NewConnLink([]transport.Conn{a}, 0), 0, 1, Eager)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// The callee consumes the call, then dies without replying.
		if _, err := b.Recv(); err != nil {
			t.Errorf("callee recv: %v", err)
		}
		b.Close()
	}()
	_, err := port.CallIndependent(0, "f", Simple("x", 1.0))
	if err == nil {
		t.Fatal("caller got a result from a dead callee")
	}
	wg.Wait()
}

func TestCallerRejectsCorruptReply(t *testing.T) {
	iface := simpleIface(t)
	a, b := transport.Pipe()
	port := NewCallerPort(iface, NewConnLink([]transport.Conn{a}, 0), 0, 1, Eager)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := b.Recv(); err != nil {
			return
		}
		// Reply with a valid src prefix but corrupt reply body.
		b.Send([]byte{0, 0, 0, 0, msgReply, 0xDE, 0xAD})
	}()
	_, err := port.CallIndependent(0, "f", Simple("x", 1.0))
	if err == nil {
		t.Fatal("corrupt reply accepted")
	}
	wg.Wait()
	a.Close()
}

func TestMeshShortFrame(t *testing.T) {
	// A frame shorter than the rank prefix must error, not panic.
	a, b := transport.Pipe()
	defer a.Close()
	link := NewConnLink([]transport.Conn{b}, 0)
	if err := a.Send([]byte{1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := link.Recv(); err == nil {
		t.Fatal("short frame accepted")
	}
}

func TestIndependentCallTimesOutTyped(t *testing.T) {
	iface := simpleIface(t)
	a, b := transport.Pipe()
	defer a.Close()
	_ = b // callee never answers
	port := NewCallerPort(iface, NewConnLink([]transport.Conn{a}, 0), 0, 1, Eager)
	port.SetRetryPolicy(RetryPolicy{Timeout: 50 * time.Millisecond})
	start := time.Now()
	_, err := port.CallIndependent(0, "f", Simple("x", 1.0))
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("call to silent callee: %v, want ErrTimeout", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("timeout not enforced")
	}
}

func TestIndependentCallRetriesThroughDrop(t *testing.T) {
	iface := simpleIface(t)
	// Drop exactly the first outgoing message; the retry's resend gets
	// through. faultconn would also do this, but a hand-rolled conn keeps
	// the dependency direction clean (faultconn's own tests cover it, and
	// the failure-matrix test exercises the full stack).
	pa, pb := transport.Pipe()
	dropper := &dropFirstConn{Conn: pa}
	port := NewCallerPort(iface, NewConnLink([]transport.Conn{dropper}, 0), 0, 1, Eager)
	port.SetRetryPolicy(RetryPolicy{Timeout: 80 * time.Millisecond, MaxAttempts: 3, Backoff: 5 * time.Millisecond})

	done := make(chan struct{})
	go func() {
		defer close(done)
		ep := NewEndpoint(iface, NewConnLink([]transport.Conn{pb}, 0), 0, 1, 1)
		ep.Handle("f", func(in *Incoming, out *Outgoing) error {
			out.Return = in.Simple["x"].(float64) * 2
			return nil
		})
		ep.Serve()
	}()
	res, err := port.CallIndependent(0, "f", Simple("x", 21.0))
	if err != nil {
		t.Fatalf("retried call failed: %v", err)
	}
	if res.Return.(float64) != 42 {
		t.Fatalf("return = %v", res.Return)
	}
	if n := dropper.sends.Load(); n < 2 {
		t.Fatalf("expected a resend, saw %d sends", n)
	}
	port.Close()
	<-done
}

func TestIndependentCallExhaustsRetries(t *testing.T) {
	iface := simpleIface(t)
	a, b := transport.Pipe()
	defer a.Close()
	_ = b
	port := NewCallerPort(iface, NewConnLink([]transport.Conn{a}, 0), 0, 1, Eager)
	port.SetRetryPolicy(RetryPolicy{Timeout: 20 * time.Millisecond, MaxAttempts: 3, Backoff: time.Millisecond, BackoffCap: 2 * time.Millisecond})
	_, err := port.CallIndependent(0, "f", Simple("x", 1.0))
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout after exhausted retries", err)
	}
	if !strings.Contains(err.Error(), "3 attempts") {
		t.Fatalf("err %q does not report the attempt count", err)
	}
}

func TestLinkDownIsTyped(t *testing.T) {
	iface := simpleIface(t)
	a, b := transport.Pipe()
	b.Close()
	_ = b
	port := NewCallerPort(iface, NewConnLink([]transport.Conn{a}, 0), 0, 1, Eager)
	port.SetRetryPolicy(RetryPolicy{Timeout: 50 * time.Millisecond, MaxAttempts: 2, Backoff: time.Millisecond})
	_, err := port.CallIndependent(0, "f", Simple("x", 1.0))
	if !errors.Is(err, ErrLinkDown) {
		t.Fatalf("call over closed link: %v, want ErrLinkDown", err)
	}
}

func TestStaleReplyDiscarded(t *testing.T) {
	iface := simpleIface(t)
	a, b := transport.Pipe()
	defer a.Close()
	port := NewCallerPort(iface, NewConnLink([]transport.Conn{a}, 0), 0, 1, Eager)
	port.SetRetryPolicy(RetryPolicy{Timeout: 150 * time.Millisecond, MaxAttempts: 2, Backoff: time.Millisecond})

	// A "slow" callee: ignores the first call entirely, then answers the
	// second call twice — once with the first attempt's stale seq, then
	// with the right one. The caller must skip the stale reply and accept
	// the fresh one.
	go func() {
		raw1, err := b.Recv() // first attempt; never answered
		if err != nil {
			return
		}
		raw2, err := b.Recv() // second attempt
		if err != nil {
			return
		}
		d1 := wire.NewDecoder(raw1[5:]) // skip rank prefix + kind
		seq1 := func() uint64 { _ = d1.String(); return d1.Uint64() }()
		d2 := wire.NewDecoder(raw2[5:])
		seq2 := func() uint64 { _ = d2.String(); return d2.Uint64() }()

		stale := encodeReply(&replyMsg{method: "f", seq: seq1, calleeRank: 0, ret: -1.0})
		fresh := encodeReply(&replyMsg{method: "f", seq: seq2, calleeRank: 0, ret: 42.0})
		prefix := []byte{0, 0, 0, 0}
		b.Send(append(append([]byte{}, prefix...), stale...))
		b.Send(append(append([]byte{}, prefix...), fresh...))
	}()
	res, err := port.CallIndependent(0, "f", Simple("x", 1.0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Return.(float64) != 42 {
		t.Fatalf("caller accepted stale reply: return = %v", res.Return)
	}
}

// dropFirstConn swallows the first Send and counts attempts.
type dropFirstConn struct {
	transport.Conn
	sends atomic.Int64
}

func (c *dropFirstConn) Send(msg []byte) error {
	if c.sends.Add(1) == 1 {
		return nil // eaten by the network
	}
	return c.Conn.Send(msg)
}
