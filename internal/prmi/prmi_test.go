package prmi

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mxn/internal/comm"
	"mxn/internal/dad"
	"mxn/internal/sidl"
	"mxn/internal/transport"
)

const testIDL = `
package t;

interface Calc {
    independent double square(in double x);
    independent oneway void poke(in int n);
    collective double tally(in double x);
    collective oneway void pulse(in int n);
    collective void absorb(in parallel array<double> field, in int step);
    collective void scale(inout parallel array<double> field, in double factor);
    collective void emit(out parallel array<double> field);
    collective double reduceField(in parallel array<double> field);
}
`

func calcInterface(t *testing.T) *sidl.Interface {
	t.Helper()
	pkg, err := sidl.Parse(testIDL)
	if err != nil {
		t.Fatal(err)
	}
	iface, ok := pkg.Interface("Calc")
	if !ok {
		t.Fatal("no Calc")
	}
	return iface
}

// fixture stands up M caller ranks and N callee ranks in one world with a
// shared link tag, separate cohort communicators, and runs the supplied
// bodies. Callee bodies configure the endpoint before Serve runs; Serve
// errors are collected.
type fixture struct {
	M, N    int
	iface   *sidl.Interface
	mode    DeliveryMode
	confEp  func(ep *Endpoint)
	confCal func(p *CallerPort)
}

func (f fixture) run(t *testing.T, caller func(t *testing.T, p *CallerPort, cohort *comm.Comm, rank int)) []error {
	t.Helper()
	world := comm.NewWorld(f.M + f.N)
	all := world.Comms()
	callerRanks := make([]int, f.M)
	for i := range callerRanks {
		callerRanks[i] = i
	}
	calleeRanks := make([]int, f.N)
	for j := range calleeRanks {
		calleeRanks[j] = f.M + j
	}
	callerCohort := world.Group(callerRanks)
	calleeCohort := world.Group(calleeRanks)
	_ = calleeCohort

	serveErrs := make([]error, f.N)
	var wg sync.WaitGroup
	for j := 0; j < f.N; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			ep := NewEndpoint(f.iface, NewCommLink(all[f.M+j], 0, 0), j, f.N, f.M)
			if f.confEp != nil {
				f.confEp(ep)
			}
			serveErrs[j] = ep.Serve()
		}(j)
	}
	for i := 0; i < f.M; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := NewCallerPort(f.iface, NewCommLink(all[i], f.M, 0), i, f.N, f.mode)
			if f.confCal != nil {
				f.confCal(p)
			}
			caller(t, p, callerCohort[i], i)
			if err := p.Close(); err != nil {
				t.Errorf("caller %d close: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	return serveErrs
}

func noServeErrors(t *testing.T, errs []error) {
	t.Helper()
	for j, err := range errs {
		if err != nil {
			t.Errorf("callee %d serve: %v", j, err)
		}
	}
}

func TestIndependentCall(t *testing.T) {
	iface := calcInterface(t)
	f := fixture{M: 2, N: 2, iface: iface, confEp: func(ep *Endpoint) {
		ep.Handle("square", func(in *Incoming, out *Outgoing) error {
			x := in.Simple["x"].(float64)
			out.Return = x * x
			return nil
		})
	}}
	errs := f.run(t, func(t *testing.T, p *CallerPort, _ *comm.Comm, rank int) {
		target := (rank + 1) % 2
		res, err := p.CallIndependent(target, "square", Simple("x", float64(rank+3)))
		if err != nil {
			t.Errorf("caller %d: %v", rank, err)
			return
		}
		want := float64((rank + 3) * (rank + 3))
		if res.Return != want {
			t.Errorf("caller %d: square = %v, want %v", rank, res.Return, want)
		}
	})
	noServeErrors(t, errs)
}

func TestIndependentOneWay(t *testing.T) {
	iface := calcInterface(t)
	var pokes atomic.Int64
	f := fixture{M: 1, N: 1, iface: iface, confEp: func(ep *Endpoint) {
		ep.Handle("poke", func(in *Incoming, out *Outgoing) error {
			pokes.Add(in.Simple["n"].(int64))
			return nil
		})
	}}
	errs := f.run(t, func(t *testing.T, p *CallerPort, _ *comm.Comm, rank int) {
		for k := 0; k < 5; k++ {
			res, err := p.CallIndependent(0, "poke", Simple("n", 2))
			if err != nil || res != nil {
				t.Errorf("oneway: res=%v err=%v", res, err)
			}
		}
	})
	noServeErrors(t, errs)
	if pokes.Load() != 10 {
		t.Errorf("pokes = %d", pokes.Load())
	}
}

func TestCollectiveEqualCohorts(t *testing.T) {
	iface := calcInterface(t)
	var served atomic.Int64
	f := fixture{M: 3, N: 3, iface: iface, mode: BarrierDelayed, confEp: func(ep *Endpoint) {
		ep.Handle("tally", func(in *Incoming, out *Outgoing) error {
			served.Add(1)
			out.Return = in.Simple["x"].(float64) * 10
			return nil
		})
	}}
	errs := f.run(t, func(t *testing.T, p *CallerPort, cohort *comm.Comm, rank int) {
		res, err := p.CallCollective("tally", FullParticipation(cohort), Simple("x", 7.0))
		if err != nil {
			t.Errorf("caller %d: %v", rank, err)
			return
		}
		if res.Return != 70.0 {
			t.Errorf("caller %d: tally = %v", rank, res.Return)
		}
	})
	noServeErrors(t, errs)
	if served.Load() != 3 {
		t.Errorf("handler ran %d times, want once per callee rank", served.Load())
	}
}

func TestGhostInvocationsMLessN(t *testing.T) {
	// 2 callers, 5 callees: every callee rank must still receive the
	// logical invocation (ghost invocations), and both callers a return.
	iface := calcInterface(t)
	var served atomic.Int64
	f := fixture{M: 2, N: 5, iface: iface, mode: BarrierDelayed, confEp: func(ep *Endpoint) {
		ep.Handle("tally", func(in *Incoming, out *Outgoing) error {
			served.Add(1)
			out.Return = 1.0
			return nil
		})
	}}
	errs := f.run(t, func(t *testing.T, p *CallerPort, cohort *comm.Comm, rank int) {
		res, err := p.CallCollective("tally", FullParticipation(cohort), Simple("x", 1.0))
		if err != nil {
			t.Errorf("caller %d: %v", rank, err)
			return
		}
		if res.Return != 1.0 {
			t.Errorf("caller %d got %v", rank, res.Return)
		}
	})
	noServeErrors(t, errs)
	if served.Load() != 5 {
		t.Errorf("handler ran %d times, want 5 (ghost invocations)", served.Load())
	}
}

func TestGhostReturnsMGreaterN(t *testing.T) {
	// 5 callers, 2 callees: every caller must receive a return (ghost
	// returns).
	iface := calcInterface(t)
	var served atomic.Int64
	f := fixture{M: 5, N: 2, iface: iface, mode: BarrierDelayed, confEp: func(ep *Endpoint) {
		ep.Handle("tally", func(in *Incoming, out *Outgoing) error {
			served.Add(1)
			out.Return = float64(in.CalleeRank)
			return nil
		})
	}}
	gotReturn := make([]bool, 5)
	var mu sync.Mutex
	errs := f.run(t, func(t *testing.T, p *CallerPort, cohort *comm.Comm, rank int) {
		res, err := p.CallCollective("tally", FullParticipation(cohort), Simple("x", 1.0))
		if err != nil {
			t.Errorf("caller %d: %v", rank, err)
			return
		}
		// Caller at position k hears from callee k mod N.
		if want := float64(rank % 2); res.Return != want {
			t.Errorf("caller %d: return from callee %v, want %v", rank, res.Return, want)
		}
		mu.Lock()
		gotReturn[rank] = true
		mu.Unlock()
	})
	noServeErrors(t, errs)
	for i, ok := range gotReturn {
		if !ok {
			t.Errorf("caller %d never got a return", i)
		}
	}
	if served.Load() != 2 {
		t.Errorf("handler ran %d times", served.Load())
	}
}

func TestCollectiveOneWay(t *testing.T) {
	iface := calcInterface(t)
	var pulses atomic.Int64
	done := make(chan struct{})
	f := fixture{M: 2, N: 3, iface: iface, mode: BarrierDelayed, confEp: func(ep *Endpoint) {
		ep.Handle("pulse", func(in *Incoming, out *Outgoing) error {
			if pulses.Add(1) == 3 {
				close(done)
			}
			return nil
		})
	}}
	errs := f.run(t, func(t *testing.T, p *CallerPort, cohort *comm.Comm, rank int) {
		res, err := p.CallCollective("pulse", FullParticipation(cohort), Simple("n", 1))
		if err != nil || res != nil {
			t.Errorf("oneway collective: res=%v err=%v", res, err)
		}
		// One-way returns immediately; wait for the handlers before
		// closing so the count is deterministic.
		<-done
	})
	noServeErrors(t, errs)
	if pulses.Load() != 3 {
		t.Errorf("pulses = %d", pulses.Load())
	}
}

// parallelFixtureCall exercises a parallel `in` argument: the caller
// cohort holds a 1-D block-distributed array, the callee cohort registers
// a cyclic layout, and every callee handler verifies its assembled
// fragment holds the right global values.
func TestParallelInRedistribution(t *testing.T) {
	iface := calcInterface(t)
	const n = 24
	const M, N = 2, 3
	callerTpl, err := dad.NewTemplate([]int{n}, []dad.AxisDist{dad.BlockAxis(M)})
	if err != nil {
		t.Fatal(err)
	}
	calleeTpl, err := dad.NewTemplate([]int{n}, []dad.AxisDist{dad.CyclicAxis(N)})
	if err != nil {
		t.Fatal(err)
	}
	var bad atomic.Int64
	f := fixture{M: M, N: N, iface: iface, mode: BarrierDelayed,
		confEp: func(ep *Endpoint) {
			if err := ep.RegisterArgLayout("absorb", "field", calleeTpl); err != nil {
				t.Error(err)
			}
			ep.Handle("absorb", func(in *Incoming, out *Outgoing) error {
				local := in.Parallel["field"]
				if len(local) != calleeTpl.LocalCount(in.CalleeRank) {
					bad.Add(1)
					return fmt.Errorf("fragment len %d", len(local))
				}
				for li, v := range local {
					// Cyclic layout: local index li on rank j holds global
					// index j + li*N, whose value is 100+g.
					g := in.CalleeRank + li*N
					if v != float64(100+g) {
						bad.Add(1)
						return fmt.Errorf("rank %d local %d: got %v want %v", in.CalleeRank, li, v, 100+g)
					}
				}
				if in.Simple["step"].(int64) != 9 {
					bad.Add(1)
					return fmt.Errorf("step = %v", in.Simple["step"])
				}
				return nil
			})
		},
		confCal: func(p *CallerPort) {
			if err := p.SetCalleeLayout("absorb", "field", calleeTpl); err != nil {
				t.Error(err)
			}
		},
	}
	errs := f.run(t, func(t *testing.T, p *CallerPort, cohort *comm.Comm, rank int) {
		local := make([]float64, callerTpl.LocalCount(rank))
		for li := range local {
			g := rank*(n/M) + li // block layout
			local[li] = float64(100 + g)
		}
		_, err := p.CallCollective("absorb", FullParticipation(cohort),
			Parallel("field", callerTpl, local), Simple("step", 9))
		if err != nil {
			t.Errorf("caller %d: %v", rank, err)
		}
	})
	noServeErrors(t, errs)
	if bad.Load() != 0 {
		t.Errorf("%d callee checks failed", bad.Load())
	}
}

func TestParallelInOutRoundTrip(t *testing.T) {
	iface := calcInterface(t)
	const n = 20
	const M, N = 4, 2
	callerTpl, _ := dad.NewTemplate([]int{n}, []dad.AxisDist{dad.CyclicAxis(M)})
	calleeTpl, _ := dad.NewTemplate([]int{n}, []dad.AxisDist{dad.BlockAxis(N)})
	f := fixture{M: M, N: N, iface: iface, mode: BarrierDelayed,
		confEp: func(ep *Endpoint) {
			ep.RegisterArgLayout("scale", "field", calleeTpl)
			ep.Handle("scale", func(in *Incoming, out *Outgoing) error {
				factor := in.Simple["factor"].(float64)
				buf := out.Parallel["field"] // pre-installed inout buffer
				for i := range buf {
					buf[i] *= factor
				}
				return nil
			})
		},
		confCal: func(p *CallerPort) { p.SetCalleeLayout("scale", "field", calleeTpl) },
	}
	errs := f.run(t, func(t *testing.T, p *CallerPort, cohort *comm.Comm, rank int) {
		local := make([]float64, callerTpl.LocalCount(rank))
		for li := range local {
			g := rank + li*M // cyclic layout
			local[li] = float64(g + 1)
		}
		_, err := p.CallCollective("scale", FullParticipation(cohort),
			Parallel("field", callerTpl, local), Simple("factor", 3.0))
		if err != nil {
			t.Errorf("caller %d: %v", rank, err)
			return
		}
		for li, v := range local {
			g := rank + li*M
			if want := float64(g+1) * 3; v != want {
				t.Errorf("caller %d local %d (global %d): got %v want %v", rank, li, g, v, want)
			}
		}
	})
	noServeErrors(t, errs)
}

func TestParallelOut(t *testing.T) {
	iface := calcInterface(t)
	const n = 18
	const M, N = 3, 3
	callerTpl, _ := dad.NewTemplate([]int{n}, []dad.AxisDist{dad.BlockAxis(M)})
	calleeTpl, _ := dad.NewTemplate([]int{n}, []dad.AxisDist{dad.BlockCyclicAxis(N, 2)})
	f := fixture{M: M, N: N, iface: iface, mode: BarrierDelayed,
		confEp: func(ep *Endpoint) {
			ep.RegisterArgLayout("emit", "field", calleeTpl)
			ep.Handle("emit", func(in *Incoming, out *Outgoing) error {
				buf := out.Parallel["field"]
				for li := range buf {
					// Invert the block-cyclic local layout to the global
					// index: local block lb of size 2 is global block
					// lb*N + rank.
					lb, off := li/2, li%2
					g := (lb*N+in.CalleeRank)*2 + off
					buf[li] = float64(1000 + g)
				}
				return nil
			})
		},
		confCal: func(p *CallerPort) { p.SetCalleeLayout("emit", "field", calleeTpl) },
	}
	errs := f.run(t, func(t *testing.T, p *CallerPort, cohort *comm.Comm, rank int) {
		local := make([]float64, callerTpl.LocalCount(rank))
		_, err := p.CallCollective("emit", FullParticipation(cohort),
			Parallel("field", callerTpl, local))
		if err != nil {
			t.Errorf("caller %d: %v", rank, err)
			return
		}
		for li, v := range local {
			g := rank*(n/M) + li
			if want := float64(1000 + g); v != want {
				t.Errorf("caller %d global %d: got %v want %v", rank, g, v, want)
			}
		}
	})
	noServeErrors(t, errs)
}

func TestSubsetParticipation(t *testing.T) {
	// 4-rank caller cohort, but only ranks 1 and 3 participate; the
	// parallel argument is decomposed over the two participants.
	iface := calcInterface(t)
	const n = 10
	calleeTpl, _ := dad.NewTemplate([]int{n}, []dad.AxisDist{dad.BlockAxis(2)})
	partTpl, _ := dad.NewTemplate([]int{n}, []dad.AxisDist{dad.BlockAxis(2)})
	var sum atomic.Int64
	world := comm.NewWorld(4 + 2)
	all := world.Comms()
	partComm := world.Group([]int{1, 3})
	var wg sync.WaitGroup
	serveErrs := make([]error, 2)
	for j := 0; j < 2; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			ep := NewEndpoint(iface, NewCommLink(all[4+j], 0, 0), j, 2, 4)
			ep.RegisterArgLayout("reduceField", "field", calleeTpl)
			ep.Handle("reduceField", func(in *Incoming, out *Outgoing) error {
				s := 0.0
				for _, v := range in.Parallel["field"] {
					s += v
				}
				sum.Add(int64(s))
				out.Return = 0.0
				return nil
			})
			serveErrs[j] = ep.Serve()
		}(j)
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := NewCallerPort(iface, NewCommLink(all[i], 4, 0), i, 2, BarrierDelayed)
			p.SetCalleeLayout("reduceField", "field", calleeTpl)
			if i == 1 || i == 3 {
				pos := i / 2 // 1→0, 3→1 within the sorted participant set
				local := make([]float64, partTpl.LocalCount(pos))
				for li := range local {
					local[li] = 1
				}
				var grp *comm.Comm
				if i == 1 {
					grp = partComm[0]
				} else {
					grp = partComm[1]
				}
				part := Participation{Ranks: []int{1, 3}, Group: grp}
				if _, err := p.CallCollective("reduceField", part, Parallel("field", partTpl, local)); err != nil {
					t.Errorf("caller %d: %v", i, err)
				}
			}
			p.Close()
		}(i)
	}
	wg.Wait()
	noServeErrors(t, serveErrs)
	if sum.Load() != n {
		t.Errorf("callee total = %d, want %d", sum.Load(), n)
	}
}

func TestSimpleArgConsistencyCheck(t *testing.T) {
	iface := calcInterface(t)
	f := fixture{M: 2, N: 1, iface: iface, mode: BarrierDelayed, confEp: func(ep *Endpoint) {
		ep.CheckSimpleArgs = true
		ep.Handle("tally", func(in *Incoming, out *Outgoing) error {
			out.Return = 0.0
			return nil
		})
	}}
	errs := f.run(t, func(t *testing.T, p *CallerPort, cohort *comm.Comm, rank int) {
		// Violate the convention: different x per caller.
		_, err := p.CallCollective("tally", FullParticipation(cohort), Simple("x", float64(rank)))
		if err == nil {
			t.Errorf("caller %d: inconsistent simple arguments not reported", rank)
		}
	})
	if errs[0] == nil {
		t.Error("callee did not detect inconsistent simple arguments")
	}
}

func TestHandlerErrorPropagates(t *testing.T) {
	iface := calcInterface(t)
	f := fixture{M: 2, N: 2, iface: iface, mode: BarrierDelayed, confEp: func(ep *Endpoint) {
		ep.Handle("tally", func(in *Incoming, out *Outgoing) error {
			return errors.New("boom")
		})
	}}
	errs := f.run(t, func(t *testing.T, p *CallerPort, cohort *comm.Comm, rank int) {
		_, err := p.CallCollective("tally", FullParticipation(cohort), Simple("x", 1.0))
		if err == nil {
			t.Errorf("caller %d: handler error not propagated", rank)
		}
	})
	noServeErrors(t, errs)
}

func TestMissingHandler(t *testing.T) {
	iface := calcInterface(t)
	f := fixture{M: 1, N: 1, iface: iface}
	errs := f.run(t, func(t *testing.T, p *CallerPort, cohort *comm.Comm, rank int) {
		if _, err := p.CallIndependent(0, "square", Simple("x", 1.0)); err == nil {
			t.Error("missing handler not reported")
		}
	})
	noServeErrors(t, errs)
}

func TestCallValidation(t *testing.T) {
	iface := calcInterface(t)
	f := fixture{M: 1, N: 1, iface: iface, confEp: func(ep *Endpoint) {
		ep.Handle("square", func(in *Incoming, out *Outgoing) error { out.Return = 0.0; return nil })
	}}
	errs := f.run(t, func(t *testing.T, p *CallerPort, cohort *comm.Comm, rank int) {
		if _, err := p.CallIndependent(0, "nosuch"); err == nil {
			t.Error("unknown method accepted")
		}
		if _, err := p.CallIndependent(0, "tally", Simple("x", 1.0)); err == nil {
			t.Error("collective method via CallIndependent accepted")
		}
		if _, err := p.CallCollective("square", FullParticipation(cohort), Simple("x", 1.0)); err == nil {
			t.Error("independent method via CallCollective accepted")
		}
		if _, err := p.CallIndependent(5, "square", Simple("x", 1.0)); err == nil {
			t.Error("out-of-range target accepted")
		}
		if _, err := p.CallIndependent(0, "square"); err == nil {
			t.Error("missing argument accepted")
		}
		if _, err := p.CallIndependent(0, "square", Simple("y", 1.0)); err == nil {
			t.Error("unknown argument accepted")
		}
		if _, err := p.CallIndependent(0, "square", Simple("x", 1.0), Simple("x", 2.0)); err == nil {
			t.Error("duplicate argument accepted")
		}
		// Valid call to confirm the endpoint survived validation failures.
		if _, err := p.CallIndependent(0, "square", Simple("x", 2.0)); err != nil {
			t.Errorf("valid call failed: %v", err)
		}
	})
	noServeErrors(t, errs)
}

func TestParallelArgValidation(t *testing.T) {
	iface := calcInterface(t)
	wrongProcs, _ := dad.NewTemplate([]int{8}, []dad.AxisDist{dad.BlockAxis(3)})
	calleeTpl, _ := dad.NewTemplate([]int{8}, []dad.AxisDist{dad.BlockAxis(1)})
	f := fixture{M: 2, N: 1, iface: iface, mode: BarrierDelayed,
		confEp: func(ep *Endpoint) {
			ep.RegisterArgLayout("absorb", "field", calleeTpl)
			ep.Handle("absorb", func(in *Incoming, out *Outgoing) error { return nil })
		},
		confCal: func(p *CallerPort) { p.SetCalleeLayout("absorb", "field", calleeTpl) },
	}
	errs := f.run(t, func(t *testing.T, p *CallerPort, cohort *comm.Comm, rank int) {
		part := FullParticipation(cohort)
		// Template over 3 ranks but 2 participants.
		if _, err := p.CallCollective("absorb", part,
			Parallel("field", wrongProcs, make([]float64, 3)), Simple("step", 1)); err == nil {
			t.Error("wrong-width template accepted")
		}
		// Missing parallel argument.
		if _, err := p.CallCollective("absorb", part, Simple("step", 1)); err == nil {
			t.Error("missing parallel argument accepted")
		}
		// Simple value passed for parallel parameter.
		if _, err := p.CallCollective("absorb", part, Simple("field", 1.0), Simple("step", 1)); err == nil {
			t.Error("simple value for parallel parameter accepted")
		}
		// Good call so the endpoint terminates cleanly.
		good, _ := dad.NewTemplate([]int{8}, []dad.AxisDist{dad.BlockAxis(2)})
		local := make([]float64, good.LocalCount(rank))
		if _, err := p.CallCollective("absorb", part,
			Parallel("field", good, local), Simple("step", 1)); err != nil {
			t.Errorf("valid call failed: %v", err)
		}
	})
	noServeErrors(t, errs)
}

func TestLayoutNegotiation(t *testing.T) {
	iface := calcInterface(t)
	calleeTpl, _ := dad.NewTemplate([]int{8}, []dad.AxisDist{dad.CyclicAxis(2)})
	ep := NewEndpoint(iface, nil, 0, 2, 1)
	if err := ep.RegisterArgLayout("absorb", "field", calleeTpl); err != nil {
		t.Fatal(err)
	}
	msg := ep.EncodeLayouts()
	p := NewCallerPort(iface, nil, 0, 2, Eager)
	if err := p.ApplyLayouts(msg); err != nil {
		t.Fatal(err)
	}
	if got := p.layouts["absorb\x00field"]; got == nil || got.Key() != calleeTpl.Key() {
		t.Error("negotiated layout does not match")
	}
	// Registration validation.
	if err := ep.RegisterArgLayout("nosuch", "field", calleeTpl); err == nil {
		t.Error("unknown method accepted")
	}
	if err := ep.RegisterArgLayout("absorb", "step", calleeTpl); err == nil {
		t.Error("non-parallel param accepted")
	}
	wrong, _ := dad.NewTemplate([]int{8}, []dad.AxisDist{dad.CyclicAxis(3)})
	if err := ep.RegisterArgLayout("absorb", "field", wrong); err == nil {
		t.Error("wrong-width layout accepted")
	}
}

// TestFigure5 reproduces the paper's synchronization scenario in all three
// configurations:
//
//	proc 0 makes collective call A with participants {0,1,2};
//	procs 1,2 first make collective call B with participants {1,2},
//	then join call A.
//
// Eager + faithful matching: the callee commits to call A (proc 0's header
// arrives first), holds B back, and waits forever for A from procs 1 and 2
// — who are blocked awaiting B's reply. Deadlock, surfaced via
// StallTimeout.
//
// Eager + strict matching: the callee detects the inconsistent delivery.
//
// BarrierDelayed: call A's delivery waits until procs 1,2 reach it, which
// happens after B completes; both calls succeed.
func TestFigure5(t *testing.T) {
	iface := calcInterface(t)

	run := func(mode DeliveryMode, strict bool) (serveErr error, callErrs []error) {
		world := comm.NewWorld(3 + 1)
		all := world.Comms()
		full := world.Group([]int{0, 1, 2})
		sub := world.Group([]int{1, 2})
		started := make(chan struct{})
		callErrs = make([]error, 3)
		var serveWg, callWg sync.WaitGroup
		serveWg.Add(1)
		go func() {
			defer serveWg.Done()
			ep := NewEndpoint(iface, NewCommLink(all[3], 0, 0), 0, 1, 3)
			ep.StallTimeout = 300 * time.Millisecond
			ep.StrictMatching = strict
			ep.Handle("tally", func(in *Incoming, out *Outgoing) error {
				out.Return = 0.0
				return nil
			})
			serveErr = ep.Serve()
		}()
		for i := 0; i < 3; i++ {
			callWg.Add(1)
			go func(i int) {
				defer callWg.Done()
				p := NewCallerPort(iface, NewCommLink(all[i], 3, 0), i, 1, mode)
				partA := Participation{Ranks: []int{0, 1, 2}, Group: full[i]}
				if i == 0 {
					// Proc 0 goes straight to call A.
					close(started)
					_, err := p.CallCollective("tally", partA, Simple("x", 1.0))
					callErrs[i] = err
				} else {
					// Procs 1,2 wait until proc 0 is at call A, then make
					// call B first.
					<-started
					time.Sleep(50 * time.Millisecond) // let A's header arrive first
					partB := Participation{Ranks: []int{1, 2}, Group: sub[i-1]}
					_, errB := p.CallCollective("tally", partB, Simple("x", 2.0))
					if errB != nil {
						callErrs[i] = errB
						p.Close()
						return
					}
					_, errA := p.CallCollective("tally", partA, Simple("x", 1.0))
					callErrs[i] = errA
				}
				p.Close()
			}(i)
		}
		// The callee always terminates (stall timeout or clean shutdown).
		serveWg.Wait()
		// Deadlocked callers never return — that is the phenomenon under
		// test — so join them with a deadline and abandon the rest.
		callersDone := make(chan struct{})
		go func() {
			callWg.Wait()
			close(callersDone)
		}()
		select {
		case <-callersDone:
		case <-time.After(2 * time.Second):
		}
		return serveErr, callErrs
	}

	t.Run("EagerFaithfulDeadlocks", func(t *testing.T) {
		serveErr, _ := run(Eager, false)
		if !errors.Is(serveErr, ErrStalled) {
			t.Errorf("serve error = %v, want ErrStalled (the Figure 5 deadlock)", serveErr)
		}
	})
	t.Run("EagerStrictDetects", func(t *testing.T) {
		serveErr, _ := run(Eager, true)
		var ov *OrderViolationError
		if !errors.As(serveErr, &ov) {
			t.Errorf("serve error = %v, want OrderViolationError", serveErr)
		}
	})
	t.Run("BarrierDelayedCompletes", func(t *testing.T) {
		serveErr, callErrs := run(BarrierDelayed, false)
		if serveErr != nil {
			t.Errorf("serve error = %v, want clean completion", serveErr)
		}
		for i, err := range callErrs {
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
		}
	})
}

func TestConnLinkMesh(t *testing.T) {
	// The genuinely distributed deployment: 2 callers and 2 callees joined
	// by a full mesh of in-memory pipes.
	iface := calcInterface(t)
	const M, N = 2, 2
	// conns[i][j]: caller i <-> callee j.
	callerConns := make([][]transport.Conn, M)
	calleeConns := make([][]transport.Conn, N)
	for j := 0; j < N; j++ {
		calleeConns[j] = make([]transport.Conn, M)
	}
	for i := 0; i < M; i++ {
		callerConns[i] = make([]transport.Conn, N)
		for j := 0; j < N; j++ {
			a, b := transport.Pipe()
			callerConns[i][j] = a
			calleeConns[j][i] = b
		}
	}
	callerWorld := comm.NewWorld(M)
	callerCohort := callerWorld.Comms()
	var wg sync.WaitGroup
	serveErrs := make([]error, N)
	for j := 0; j < N; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			ep := NewEndpoint(iface, NewConnLink(calleeConns[j], j), j, N, M)
			ep.Handle("tally", func(in *Incoming, out *Outgoing) error {
				out.Return = in.Simple["x"].(float64) + 1
				return nil
			})
			serveErrs[j] = ep.Serve()
		}(j)
	}
	for i := 0; i < M; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := NewCallerPort(iface, NewConnLink(callerConns[i], i), i, N, BarrierDelayed)
			res, err := p.CallCollective("tally", FullParticipation(callerCohort[i]), Simple("x", 41.0))
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			} else if res.Return != 42.0 {
				t.Errorf("caller %d: got %v", i, res.Return)
			}
			p.Close()
		}(i)
	}
	wg.Wait()
	noServeErrors(t, serveErrs)
}

func TestParallelIntArrayRejected(t *testing.T) {
	pkg, err := sidl.Parse(`package t; interface I { collective void f(in parallel array<int> x); }`)
	if err != nil {
		t.Fatal(err)
	}
	iface, _ := pkg.Interface("I")
	f := fixture{M: 1, N: 1, iface: iface}
	errs := f.run(t, func(t *testing.T, p *CallerPort, cohort *comm.Comm, rank int) {
		tpl, _ := dad.NewTemplate([]int{4}, []dad.AxisDist{dad.BlockAxis(1)})
		_, err := p.CallCollective("f", FullParticipation(cohort), Parallel("x", tpl, make([]float64, 4)))
		if err == nil || !strings.Contains(err.Error(), "array<double>") {
			t.Errorf("parallel int array not rejected clearly: %v", err)
		}
	})
	noServeErrors(t, errs)
}
