package prmi

import (
	"sync"
	"testing"

	"mxn/internal/comm"
)

// TestCallerDepart covers the PRMI half of an online shrink: a departing
// caller rank announces itself with Depart instead of Close, every callee
// drains its exactly-once dedup state, and Serve still terminates once the
// remaining callers close normally.
func TestCallerDepart(t *testing.T) {
	iface := calcInterface(t)
	const M, N = 2, 2
	world := comm.NewWorld(M + N)
	all := world.Comms()

	eps := make([]*Endpoint, N)
	serveErrs := make([]error, N)
	var wg sync.WaitGroup
	for j := 0; j < N; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			ep := NewEndpoint(iface, NewCommLink(all[M+j], 0, 0), j, N, M)
			ep.Handle("square", func(in *Incoming, out *Outgoing) error {
				x := in.Simple["x"].(float64)
				out.Return = x * x
				return nil
			})
			eps[j] = ep
			serveErrs[j] = ep.Serve()
		}(j)
	}

	const leaver = 1
	for i := 0; i < M; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := NewCallerPort(iface, NewCommLink(all[i], M, 0), i, N, 0)
			// Both callers issue replied calls to both callees, so every
			// endpoint accumulates dedup state for every caller.
			for j := 0; j < N; j++ {
				res, err := p.CallIndependent(j, "square", Simple("x", float64(i+2)))
				if err != nil {
					t.Errorf("caller %d → callee %d: %v", i, j, err)
					return
				}
				if want := float64((i + 2) * (i + 2)); res.Return != want {
					t.Errorf("caller %d: square = %v, want %v", i, res.Return, want)
				}
			}
			if i == leaver {
				if err := p.Depart(); err != nil {
					t.Errorf("depart: %v", err)
				}
			} else if err := p.Close(); err != nil {
				t.Errorf("close: %v", err)
			}
		}(i)
	}
	wg.Wait()

	for j, err := range serveErrs {
		if err != nil {
			t.Fatalf("callee %d serve after depart: %v", j, err)
		}
	}
	// The departed caller's exactly-once state is gone; the remaining
	// caller's is intact (its replies stay replayable until eviction).
	for j, ep := range eps {
		if _, still := ep.dedup[leaver]; still {
			t.Errorf("callee %d still holds dedup state for departed caller", j)
		}
		if _, still := ep.pendingRaw[leaver]; still {
			t.Errorf("callee %d still queues deferred messages for departed caller", j)
		}
		if ep.dedup[0] == nil || len(ep.dedup[0].entries) == 0 {
			t.Errorf("callee %d lost the remaining caller's dedup state", j)
		}
		if !ep.closed[leaver] || !ep.closed[0] {
			t.Errorf("callee %d: closed set incomplete: %v", j, ep.closed)
		}
	}
}

// TestDetachIdempotent drives the endpoint state machine directly: a
// detach after a detach (or for a caller that never called) is harmless
// and still counts toward Serve's termination.
func TestDetachIdempotent(t *testing.T) {
	iface := calcInterface(t)
	world := comm.NewWorld(2)
	all := world.Comms()
	serveErr := make(chan error, 1)
	go func() {
		ep := NewEndpoint(iface, NewCommLink(all[1], 0, 0), 0, 1, 1)
		serveErr <- ep.Serve()
	}()
	p := NewCallerPort(iface, NewCommLink(all[0], 1, 0), 0, 1, 0)
	if err := p.Depart(); err != nil {
		t.Fatal(err)
	}
	// A second detach from the same rank must not wedge or error Serve;
	// it arrives after Serve returned and is simply never read, which is
	// exactly the "must not be used after Depart" contract — the point
	// here is the first Depart alone terminates Serve.
	if err := <-serveErr; err != nil {
		t.Fatalf("serve: %v", err)
	}
}
