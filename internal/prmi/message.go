package prmi

import (
	"fmt"

	"mxn/internal/dad"
	"mxn/internal/wire"
)

// Wire message kinds exchanged over a Link.
const (
	msgCall byte = iota + 1
	msgReply
	msgShutdown
	// msgDetach announces that a caller rank is leaving the cohort (an
	// online shrink): the endpoint drops its exactly-once dedup table and
	// deferred queue and stops expecting its shutdown. Links deliver each
	// caller's messages in FIFO order, so by the time a detach is
	// dispatched every call that caller ever sent has been serviced —
	// the dedup state is fully settled and safe to drain.
	msgDetach
)

// namedValue is one simple argument or out-value on the wire.
type namedValue struct {
	name  string
	value any
}

// parallelFrag is one caller→callee (or callee→caller) fragment of a
// parallel argument: the packed elements of the pairwise communication
// plan, plus the sender-side template so the receiver can build the same
// schedule. The template encoding travels with every call; receivers
// cache decoded templates by key.
type parallelFrag struct {
	name        string
	templateKey string
	templateEnc []byte
	data        []float64
	deferred    bool // passed by reference; callee pulls after choosing a layout
}

// callMsg is the invocation header one caller rank sends one callee rank.
// For collective methods every participating caller sends one to every
// callee rank (the all-to-all invocation); for independent methods a
// single caller sends one to a single callee.
type callMsg struct {
	method       string
	seq          uint64
	callerRank   int
	collective   bool
	participants []int // sorted caller cohort ranks; empty for independent
	simple       []namedValue
	parallel     []parallelFrag

	// callID identifies the logical call across retry attempts: every
	// attempt of one CallIndependent carries the same callID under fresh
	// seq numbers, letting the callee deduplicate re-executions. Zero
	// means "no exactly-once tracking" (legacy at-least-once semantics).
	callID uint64
	// epoch is the caller's membership epoch at send time; receivers
	// behind a newer epoch reject the call. Zero means unstamped.
	epoch uint64
}

// replyMsg carries return data from one callee rank to one caller rank.
type replyMsg struct {
	method      string
	seq         uint64
	calleeRank  int
	errText     string
	ret         any
	simpleOut   []namedValue
	parallelOut []parallelFrag

	// watermark is the callee's dedup-eviction watermark for this caller:
	// every callID below it has been forgotten, so retrying one would
	// risk re-execution. Callers refuse such retries with a typed error.
	watermark uint64
}

func encodeCall(m *callMsg) []byte {
	e := wire.NewEncoder(nil)
	e.PutByte(msgCall)
	e.PutString(m.method)
	e.PutUint64(m.seq)
	e.PutInt(m.callerRank)
	e.PutBool(m.collective)
	e.PutInts(m.participants)
	encodeNamedValues(e, m.simple)
	encodeFrags(e, m.parallel)
	// Appended last so fixed-prefix readers (method, seq) keep working.
	e.PutUint64(m.callID)
	e.PutUint64(m.epoch)
	return e.Bytes()
}

func decodeCall(d *wire.Decoder) (*callMsg, error) {
	m := &callMsg{
		method:     d.String(),
		seq:        d.Uint64(),
		callerRank: d.Int(),
	}
	m.collective = d.Bool()
	m.participants = d.Ints()
	var err error
	if m.simple, err = decodeNamedValues(d); err != nil {
		return nil, err
	}
	if m.parallel, err = decodeFrags(d); err != nil {
		return nil, err
	}
	m.callID = d.Uint64()
	m.epoch = d.Uint64()
	if d.Err() != nil {
		return nil, d.Err()
	}
	return m, nil
}

func encodeReply(m *replyMsg) []byte {
	e := wire.NewEncoder(nil)
	e.PutByte(msgReply)
	e.PutString(m.method)
	e.PutUint64(m.seq)
	e.PutInt(m.calleeRank)
	e.PutString(m.errText)
	e.PutValue(m.ret)
	encodeNamedValues(e, m.simpleOut)
	encodeFrags(e, m.parallelOut)
	e.PutUint64(m.watermark)
	return e.Bytes()
}

func decodeReply(d *wire.Decoder) (*replyMsg, error) {
	m := &replyMsg{
		method:     d.String(),
		seq:        d.Uint64(),
		calleeRank: d.Int(),
		errText:    d.String(),
		ret:        d.Value(),
	}
	var err error
	if m.simpleOut, err = decodeNamedValues(d); err != nil {
		return nil, err
	}
	if m.parallelOut, err = decodeFrags(d); err != nil {
		return nil, err
	}
	m.watermark = d.Uint64()
	if d.Err() != nil {
		return nil, d.Err()
	}
	return m, nil
}

func encodeNamedValues(e *wire.Encoder, vals []namedValue) {
	e.PutUvarint(uint64(len(vals)))
	for _, v := range vals {
		e.PutString(v.name)
		e.PutValue(v.value)
	}
}

func decodeNamedValues(d *wire.Decoder) ([]namedValue, error) {
	n := d.Uvarint()
	// Every value costs at least two encoded bytes, so a count beyond the
	// bytes present is corruption; reject before it sizes an allocation.
	if d.Err() != nil || n > uint64(d.Remaining()) {
		return nil, wire.ErrCorrupt
	}
	out := make([]namedValue, 0, n)
	for i := uint64(0); i < n; i++ {
		nv := namedValue{name: d.String(), value: d.Value()}
		if d.Err() != nil {
			return nil, d.Err()
		}
		out = append(out, nv)
	}
	return out, nil
}

func encodeFrags(e *wire.Encoder, frags []parallelFrag) {
	e.PutUvarint(uint64(len(frags)))
	for _, f := range frags {
		e.PutString(f.name)
		e.PutString(f.templateKey)
		e.PutBytes(f.templateEnc)
		e.PutFloat64s(f.data)
		e.PutBool(f.deferred)
	}
}

func decodeFrags(d *wire.Decoder) ([]parallelFrag, error) {
	n := d.Uvarint()
	if d.Err() != nil || n > uint64(d.Remaining()) {
		return nil, wire.ErrCorrupt
	}
	out := make([]parallelFrag, 0, n)
	for i := uint64(0); i < n; i++ {
		f := parallelFrag{
			name:        d.String(),
			templateKey: d.String(),
			templateEnc: d.Bytes(),
			data:        d.Float64s(),
		}
		f.deferred = d.Bool()
		if d.Err() != nil {
			return nil, d.Err()
		}
		out = append(out, f)
	}
	return out, nil
}

// templateCache caches decoded peer templates by their key so the
// per-call template encoding is decoded once per distinct distribution.
type templateCache struct {
	m map[string]*dad.Template
}

func newTemplateCache() *templateCache { return &templateCache{m: map[string]*dad.Template{}} }

func (tc *templateCache) get(key string, enc []byte) (*dad.Template, error) {
	if t, ok := tc.m[key]; ok {
		return t, nil
	}
	if enc == nil {
		return nil, fmt.Errorf("prmi: unknown template %q with no encoding", key)
	}
	t, err := dad.DecodeTemplate(wire.NewDecoder(enc))
	if err != nil {
		return nil, fmt.Errorf("prmi: decoding peer template: %w", err)
	}
	tc.m[key] = t
	return t, nil
}
