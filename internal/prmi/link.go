// Package prmi implements parallel remote method invocation between
// parallel components in a distributed framework (Section 2.4 of the
// paper).
//
// A caller cohort of M ranks holds a CallerPort connected to an Endpoint
// served by a callee cohort of N ranks. Methods are described by SIDL
// specs (internal/sidl) carrying the PRMI attributes:
//
//   - independent methods are one-to-one: one caller rank invokes one
//     callee rank with ordinary call semantics (Damevski's non-collective
//     invocation).
//   - collective methods are all-to-all: every participating caller rank
//     invokes together; every callee rank receives the call (ghost
//     invocations when M < N) and every caller receives a return value
//     (ghost returns when M > N) — the SCIRun2 policy.
//   - oneway methods return immediately on the caller; no reply exists.
//
// Simple arguments must hold the same value on every participating caller
// (optionally enforced — the paper notes frameworks may skip the check for
// performance, so the check is a configuration knob). Parallel arguments
// are decomposed arrays: the framework redistributes them from the caller
// cohort's distribution to the callee cohort's registered distribution
// with communication schedules, and moves inout/out parallel data back on
// return.
//
// Invocation delivery is configurable between the two strategies the
// paper contrasts (Figure 5): Eager delivery, where each caller's
// invocation leaves as soon as that rank reaches the call — which can
// deadlock when different but intersecting participant sets make
// consecutive calls — and BarrierDelayed delivery (the DCA solution),
// where a barrier among the participants precedes delivery.
package prmi

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"mxn/internal/comm"
	"mxn/internal/transport"
)

// ErrTimeout reports that a bounded wait for a remote reply (or message)
// expired. A call failing with ErrTimeout may have executed on the callee:
// only the reply is known to be missing, which is why the retry layer
// restricts automatic retry to idempotent call kinds.
var ErrTimeout = errors.New("prmi: timed out")

// ErrLinkDown reports that the link to the peer cohort failed (closed,
// partitioned, or otherwise unable to carry messages). Unlike ErrTimeout,
// the link will not recover by waiting; callers should re-establish the
// connection or give up.
var ErrLinkDown = errors.New("prmi: link down")

// Link carries framed messages between the two sides of one port
// connection. Rank numbering is the peer cohort's: Send(j, m) delivers to
// peer rank j; Recv reports which peer rank sent the message. Messages
// between a fixed pair of ranks arrive in order.
type Link interface {
	Send(peerRank int, msg []byte) error
	Recv() (peerRank int, msg []byte, err error)
	// RecvTimeout is Recv bounded by d (d <= 0 blocks forever). Expiry
	// reports an error matching ErrTimeout.
	RecvTimeout(d time.Duration) (peerRank int, msg []byte, err error)
}

// mapLinkErr rewrites transport-level failures into the package's typed
// errors so callers can branch on errors.Is without knowing the link kind.
func mapLinkErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, ErrTimeout), errors.Is(err, ErrLinkDown):
		return err
	case errors.Is(err, transport.ErrClosed):
		return fmt.Errorf("%w: %v", ErrLinkDown, err)
	case errors.Is(err, transport.ErrTimeout):
		return fmt.Errorf("%w: %v", ErrTimeout, err)
	default:
		return err
	}
}

// commLink connects two cohorts that live in one communicator group:
// peer rank j is group rank peerBase+j. It is the co-located deployment
// (both components in one process set), used by tests and benchmarks.
type commLink struct {
	c        *comm.Comm
	peerBase int
	tag      int
}

// NewCommLink builds a Link over a shared communicator. Both sides must
// use the same tag and each side's peerBase must point at the other
// cohort's first group rank.
func NewCommLink(c *comm.Comm, peerBase, tag int) Link {
	return &commLink{c: c, peerBase: peerBase, tag: tag}
}

func (l *commLink) Send(peerRank int, msg []byte) error {
	cp := make([]byte, len(msg))
	copy(cp, msg)
	l.c.Send(l.peerBase+peerRank, l.tag, cp)
	return nil
}

func (l *commLink) Recv() (int, []byte, error) {
	payload, src := l.c.Recv(comm.AnySource, l.tag)
	msg, ok := payload.([]byte)
	if !ok {
		return 0, nil, fmt.Errorf("prmi: link received %T", payload)
	}
	return src - l.peerBase, msg, nil
}

func (l *commLink) RecvTimeout(d time.Duration) (int, []byte, error) {
	if d <= 0 {
		return l.Recv()
	}
	payload, src, ok := l.c.RecvTimeout(comm.AnySource, l.tag, d)
	if !ok {
		return 0, nil, fmt.Errorf("%w: no message within %v", ErrTimeout, d)
	}
	msg, isBytes := payload.([]byte)
	if !isBytes {
		return 0, nil, fmt.Errorf("prmi: link received %T", payload)
	}
	return src - l.peerBase, msg, nil
}

// connLink is a mesh of transport connections, one per peer rank: the
// genuinely distributed deployment. Each message is prefixed with the
// sender's rank by the peer (we prefix ours symmetrically), and a pump
// goroutine per connection funnels received messages into one queue so
// Recv can present a single stream. Communication is not serialized
// through any coordinator: each pairwise connection is independent.
type connLink struct {
	conns  []transport.Conn
	myRank int

	inbox   chan inMsg
	once    sync.Once
	started bool
	mu      sync.Mutex
}

type inMsg struct {
	src int
	msg []byte
	err error
}

// NewConnLink builds a Link from per-peer connections. conns[j] must be
// connected to peer rank j. myRank is this side's cohort rank, prefixed
// onto outgoing messages so the peer can attribute them.
func NewConnLink(conns []transport.Conn, myRank int) Link {
	return &connLink{conns: conns, myRank: myRank, inbox: make(chan inMsg, 64)}
}

func (l *connLink) Send(peerRank int, msg []byte) error {
	if peerRank < 0 || peerRank >= len(l.conns) {
		return fmt.Errorf("prmi: peer rank %d outside mesh of %d", peerRank, len(l.conns))
	}
	framed := make([]byte, 0, len(msg)+4)
	framed = append(framed, byte(l.myRank), byte(l.myRank>>8), byte(l.myRank>>16), byte(l.myRank>>24))
	framed = append(framed, msg...)
	return l.conns[peerRank].Send(framed)
}

func (l *connLink) start() {
	l.once.Do(func() {
		for j, conn := range l.conns {
			go func(j int, conn transport.Conn) {
				for {
					m, err := conn.Recv()
					if err != nil {
						l.inbox <- inMsg{src: j, err: err}
						return
					}
					if len(m) < 4 {
						l.inbox <- inMsg{src: j, err: fmt.Errorf("prmi: short frame from peer %d", j)}
						return
					}
					src := int(m[0]) | int(m[1])<<8 | int(m[2])<<16 | int(m[3])<<24
					l.inbox <- inMsg{src: src, msg: m[4:]}
				}
			}(j, conn)
		}
	})
}

func (l *connLink) Recv() (int, []byte, error) {
	l.start()
	in := <-l.inbox
	return in.src, in.msg, in.err
}

func (l *connLink) RecvTimeout(d time.Duration) (int, []byte, error) {
	if d <= 0 {
		return l.Recv()
	}
	l.start()
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case in := <-l.inbox:
		return in.src, in.msg, in.err
	case <-t.C:
		return 0, nil, fmt.Errorf("%w: no message within %v", ErrTimeout, d)
	}
}
