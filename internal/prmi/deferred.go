package prmi

// Deferred parallel arguments: the paper's second strategy for callee-side
// layouts (Section 2.4). Instead of registering a layout before any call
// arrives, "the second possibility is to pass to the provides side a
// reference to the data object on the uses side, and to delay the actual
// transfer of data until the provides side has specified its layout."
//
// A caller passes ParallelRef(...) instead of Parallel(...): the
// invocation header then carries only a reference, no data. The handler,
// once it has decided its layout — which may depend on the call's simple
// arguments — calls Incoming.Pull(name, layout): the endpoint sends pull
// requests to the caller ranks that hold the needed pieces, the callers
// serve them from the referenced buffers while they wait for the reply,
// and Pull returns the assembled local fragment.

import (
	"fmt"

	"mxn/internal/dad"
	"mxn/internal/schedule"
	"mxn/internal/wire"
)

// Additional wire message kinds for the pull protocol.
const (
	msgPull byte = iota + 10
	msgPullData
)

// pullMsg is a callee's request for its piece of a referenced argument.
type pullMsg struct {
	method      string
	seq         uint64
	argName     string
	calleeRank  int
	templateKey string
	templateEnc []byte
}

// pullDataMsg carries the served piece back.
type pullDataMsg struct {
	seq     uint64
	argName string
	data    []float64
}

func encodePull(m *pullMsg) []byte {
	e := wire.NewEncoder(nil)
	e.PutByte(msgPull)
	e.PutString(m.method)
	e.PutUint64(m.seq)
	e.PutString(m.argName)
	e.PutInt(m.calleeRank)
	e.PutString(m.templateKey)
	e.PutBytes(m.templateEnc)
	return e.Bytes()
}

func decodePull(d *wire.Decoder) (*pullMsg, error) {
	m := &pullMsg{
		method:      d.String(),
		seq:         d.Uint64(),
		argName:     d.String(),
		calleeRank:  d.Int(),
		templateKey: d.String(),
		templateEnc: d.Bytes(),
	}
	if d.Err() != nil {
		return nil, d.Err()
	}
	return m, nil
}

func encodePullData(m *pullDataMsg) []byte {
	e := wire.NewEncoder(nil)
	e.PutByte(msgPullData)
	e.PutUint64(m.seq)
	e.PutString(m.argName)
	e.PutFloat64s(m.data)
	return e.Bytes()
}

func decodePullData(d *wire.Decoder) (*pullDataMsg, error) {
	m := &pullDataMsg{
		seq:     d.Uint64(),
		argName: d.String(),
		data:    d.Float64s(),
	}
	if d.Err() != nil {
		return nil, d.Err()
	}
	return m, nil
}

// ParallelRef builds a parallel in-argument passed by reference: the data
// stays on the caller until the callee specifies its layout and pulls.
func ParallelRef(name string, t *dad.Template, local []float64) Arg {
	return Arg{Name: name, Par: &ParallelData{Template: t, Local: local, deferred: true}}
}

// stashKey identifies a referenced buffer held while a call is in flight.
type stashKey struct {
	seq  uint64
	name string
}

// stashEntry is one referenced argument awaiting pulls.
type stashEntry struct {
	tpl   *dad.Template
	local []float64
	pos   int // this caller's position among the participants
}

// servePull answers one pull request from a referenced buffer: it decodes
// the callee's (late) layout, computes the schedule on demand, packs this
// caller's piece for the requesting callee rank and sends it back.
func (p *CallerPort) servePull(req *pullMsg) error {
	ent, ok := p.stash[stashKey{req.seq, req.argName}]
	if !ok {
		return fmt.Errorf("prmi: pull for unknown reference %s/%d", req.argName, req.seq)
	}
	calleeTpl, err := p.tcache.get(req.templateKey, req.templateEnc)
	if err != nil {
		return err
	}
	s, err := p.scheds.Get(ent.tpl, calleeTpl)
	if err != nil {
		return err
	}
	var data []float64
	for _, plan := range s.OutgoingFor(ent.pos) {
		if plan.DstRank == req.calleeRank {
			data = make([]float64, plan.Elems)
			schedule.Pack(plan, ent.local, data)
			break
		}
	}
	mPullsServed.Inc()
	return p.link.Send(req.calleeRank, encodePullData(&pullDataMsg{
		seq: req.seq, argName: req.argName, data: data,
	}))
}

// Pull fetches a referenced parallel argument into the given callee-side
// layout. It is only valid on collective invocations whose caller passed
// ParallelRef for name, and embodies the delayed-transfer strategy: the
// layout is chosen here, at service time, possibly from the call's other
// arguments.
func (in *Incoming) Pull(name string, layout *dad.Template) ([]float64, error) {
	if in.pull == nil {
		return nil, fmt.Errorf("prmi: no deferred arguments on this invocation")
	}
	return in.pull(name, layout)
}

// HasDeferred reports whether the named parallel argument was passed by
// reference and must be fetched with Pull.
func (in *Incoming) HasDeferred(name string) bool {
	_, ok := in.deferred[name]
	return ok
}

// pullDeferred is the endpoint-side implementation bound into Incoming.
func (ep *Endpoint) pullDeferred(first *callMsg, hdrs map[int]*callMsg) func(string, *dad.Template) ([]float64, error) {
	return func(name string, layout *dad.Template) ([]float64, error) {
		frag, ok := findFrag(first.parallel, name)
		if !ok || !frag.deferred {
			return nil, fmt.Errorf("prmi: %s(%s) was not passed by reference", first.method, name)
		}
		if layout == nil || layout.NumProcs() != ep.nCallee {
			return nil, fmt.Errorf("prmi: pull layout must span the callee cohort of %d", ep.nCallee)
		}
		callerTpl, err := ep.tcache.get(frag.templateKey, frag.templateEnc)
		if err != nil {
			return nil, err
		}
		s, err := ep.scheds.Get(callerTpl, layout)
		if err != nil {
			return nil, err
		}
		// Request this rank's pieces from the callers that hold them.
		e := wire.NewEncoder(nil)
		layout.Encode(e)
		layoutEnc := e.Bytes()
		plans := s.IncomingFor(ep.rank)
		for _, plan := range plans {
			callerRank := first.participants[plan.SrcRank]
			req := &pullMsg{
				method: first.method, seq: hdrs[callerRank].seq, argName: name,
				calleeRank: ep.rank, templateKey: layout.Key(), templateEnc: layoutEnc,
			}
			if err := ep.link.Send(callerRank, encodePull(req)); err != nil {
				return nil, err
			}
		}
		local := make([]float64, layout.LocalCount(ep.rank))
		for _, plan := range plans {
			callerRank := first.participants[plan.SrcRank]
			raw, err := ep.nextFrom(callerRank, ep.StallTimeout)
			if err != nil {
				return nil, err
			}
			if len(raw) == 0 || raw[0] != msgPullData {
				return nil, fmt.Errorf("prmi: expected pulled data from caller %d, got kind %d", callerRank, raw[0])
			}
			msg, err := decodePullData(wire.NewDecoder(raw[1:]))
			if err != nil {
				return nil, err
			}
			if msg.argName != name || len(msg.data) != plan.Elems {
				return nil, fmt.Errorf("prmi: pulled fragment mismatch from caller %d (%q, %d elements, want %d)",
					callerRank, msg.argName, len(msg.data), plan.Elems)
			}
			schedule.Unpack(plan, local, msg.data)
		}
		return local, nil
	}
}
