package prmi

import (
	"errors"
	"testing"
	"time"

	"mxn/internal/faultconn"
	"mxn/internal/sidl"
	"mxn/internal/transport"
)

// The failure matrix: every fault scenario the chaos layer can inject,
// crossed with every SIDL invocation kind. The contract under test is the
// one DESIGN.md's failure model promises: a call over a faulty link
// terminates within a bounded time with either a success (the retry layer
// pushed it through) or an error — never a hang, never a panic — and
// where the fault category is unambiguous the error is the matching typed
// sentinel (ErrTimeout for lost messages, ErrLinkDown for a dead link).

// outcome constraints for one matrix cell.
const (
	wantSuccess   = "success"
	wantTimeout   = "timeout"   // errors.Is(err, ErrTimeout)
	wantLinkDown  = "linkdown"  // errors.Is(err, ErrLinkDown)
	wantTerminate = "terminate" // success or error, but bounded and panic-free
)

func matrixIface(t *testing.T) *sidl.Interface {
	t.Helper()
	pkg, err := sidl.Parse(`package p; interface I {
		independent double f(in double x);
		collective double g(in double x);
		independent oneway void h(in double x);
	}`)
	if err != nil {
		t.Fatal(err)
	}
	iface, _ := pkg.Interface("I")
	return iface
}

// matrixHarness wires a 1×1 caller/callee pair over a fault-injected pipe.
// The fault layer wraps the caller's end, so Send faults hit invocations
// and Recv faults hit replies.
type matrixHarness struct {
	port  *CallerPort
	fc    *faultconn.Conn
	done  chan struct{}
	survd chan struct{}
}

func newMatrixHarness(t *testing.T, sc faultconn.Scenario) *matrixHarness {
	t.Helper()
	iface := matrixIface(t)
	fc, peer := faultconn.Pipe(sc)
	t.Cleanup(func() { fc.Close() })

	h := &matrixHarness{fc: fc, done: make(chan struct{})}
	go func() {
		defer close(h.done)
		ep := NewEndpoint(iface, NewConnLink([]transport.Conn{peer}, 0), 0, 1, 1)
		double := func(in *Incoming, out *Outgoing) error {
			out.Return = in.Simple["x"].(float64) * 2
			return nil
		}
		ep.Handle("f", double)
		ep.Handle("g", double)
		ep.Handle("h", func(in *Incoming, out *Outgoing) error { return nil })
		ep.Serve()
	}()

	h.port = NewCallerPort(iface, NewConnLink([]transport.Conn{fc}, 0), 0, 1, Eager)
	h.port.SetRetryPolicy(RetryPolicy{
		Timeout:     150 * time.Millisecond,
		MaxAttempts: 2,
		Backoff:     5 * time.Millisecond,
	})
	return h
}

// boundedCall runs call with a hard termination deadline; a hang fails the
// test with a goroutine dump via the shared watchdog pattern.
func boundedCall(t *testing.T, call func() (*Result, error)) (*Result, error) {
	t.Helper()
	type out struct {
		res *Result
		err error
	}
	ch := make(chan out, 1)
	go func() {
		res, err := call()
		ch <- out{res, err}
	}()
	select {
	case o := <-ch:
		return o.res, o.err
	case <-time.After(10 * time.Second):
		t.Fatal("call did not terminate within the watchdog deadline")
		return nil, nil
	}
}

func checkOutcome(t *testing.T, want string, res *Result, err error) {
	t.Helper()
	switch want {
	case wantSuccess:
		if err != nil {
			t.Fatalf("want success, got %v", err)
		}
	case wantTimeout:
		if !errors.Is(err, ErrTimeout) {
			t.Fatalf("want ErrTimeout, got %v", err)
		}
	case wantLinkDown:
		if !errors.Is(err, ErrLinkDown) {
			t.Fatalf("want ErrLinkDown, got %v", err)
		}
	case wantTerminate:
		// Bounded termination without panic is the whole assertion; both
		// success and error are legal (a corrupted frame may still parse —
		// e.g. a flipped bit in the rank prefix — or may draw any
		// application-level decode error).
		t.Logf("terminated: res=%v err=%v", res, err)
	}
}

func TestFailureMatrix(t *testing.T) {
	scenarios := []struct {
		name      string
		sc        faultconn.Scenario
		partition bool // hard-partition the link before calling
		// expected outcome per call kind
		independent, collective, oneway string
	}{
		{
			name:        "clean",
			sc:          faultconn.Scenario{Seed: 1},
			independent: wantSuccess, collective: wantSuccess, oneway: wantSuccess,
		},
		{
			// Every invocation silently vanishes. The retry layer tries
			// again, the link eats that too, and the typed timeout
			// surfaces. A oneway call succeeds by definition: there is no
			// reply to wait for, and the send itself was accepted.
			name:        "drop-all",
			sc:          faultconn.Scenario{Seed: 2, Send: faultconn.Faults{Drop: 1}},
			independent: wantTimeout, collective: wantTimeout, oneway: wantSuccess,
		},
		{
			// Replies vanish instead: the callee executes, the caller
			// cannot know. Retry is safe for independent calls precisely
			// because re-execution of an idempotent method is harmless.
			name:        "drop-replies",
			sc:          faultconn.Scenario{Seed: 3, Recv: faultconn.Faults{Drop: 1}},
			independent: wantTimeout, collective: wantTimeout, oneway: wantSuccess,
		},
		{
			// One flipped byte per outgoing frame. Over the raw pipe there
			// is no checksum (the TCP path adds CRC-32C framing), so the
			// frame may decode to garbage, to a valid-but-different call,
			// or fail attribution — the guarantee is bounded, panic-free
			// termination, not a particular error.
			name:        "corrupt",
			sc:          faultconn.Scenario{Seed: 4, Send: faultconn.Faults{Corrupt: 1}},
			independent: wantTerminate, collective: wantTerminate, oneway: wantTerminate,
		},
		{
			// The link dies before the call: every kind sees the typed
			// link-down error immediately, retries included.
			name:        "partition",
			sc:          faultconn.Scenario{Seed: 5},
			partition:   true,
			independent: wantLinkDown, collective: wantLinkDown, oneway: wantLinkDown,
		},
		{
			// A slow peer: 20ms each way is well inside the 150ms attempt
			// budget, so every kind succeeds — slowness alone must not
			// turn into errors.
			name: "slow-peer",
			sc: faultconn.Scenario{
				Seed: 6,
				Send: faultconn.Faults{Latency: 20 * time.Millisecond},
				Recv: faultconn.Faults{Latency: 20 * time.Millisecond},
			},
			independent: wantSuccess, collective: wantSuccess, oneway: wantSuccess,
		},
		{
			// Duplicated and reordered frames: sequence numbers and
			// content-based matching absorb both without error.
			name: "dup-reorder",
			sc: faultconn.Scenario{
				Seed: 7,
				Send: faultconn.Faults{Dup: 0.5, Reorder: 0.5},
				Recv: faultconn.Faults{Dup: 0.5},
			},
			independent: wantSuccess, collective: wantSuccess, oneway: wantSuccess,
		},
	}

	for _, tc := range scenarios {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			kinds := []struct {
				kind string
				want string
				call func(h *matrixHarness) (*Result, error)
			}{
				{"independent", tc.independent, func(h *matrixHarness) (*Result, error) {
					return h.port.CallIndependent(0, "f", Simple("x", 21.0))
				}},
				{"collective", tc.collective, func(h *matrixHarness) (*Result, error) {
					return h.port.CallCollective("g", Participation{Ranks: []int{0}}, Simple("x", 21.0))
				}},
				{"oneway", tc.oneway, func(h *matrixHarness) (*Result, error) {
					return h.port.CallIndependent(0, "h", Simple("x", 1.0))
				}},
			}
			for _, k := range kinds {
				k := k
				t.Run(k.kind, func(t *testing.T) {
					h := newMatrixHarness(t, tc.sc)
					if tc.partition {
						h.fc.Partition()
					}
					res, err := boundedCall(t, func() (*Result, error) { return k.call(h) })
					checkOutcome(t, k.want, res, err)
					if k.want == wantSuccess && k.kind != "oneway" {
						if res == nil || res.Return.(float64) != 42 {
							t.Fatalf("successful call returned %v", res)
						}
					}
				})
			}
		})
	}
}
