package prmi

import (
	"fmt"
	"sync/atomic"
	"testing"

	"mxn/internal/comm"
	"mxn/internal/dad"
	"mxn/internal/sidl"
)

const deferredIDL = `
package t;

interface Field {
    collective double absorb(in parallel array<double> field, in int blocks);
    collective oneway void fire(in parallel array<double> field);
    collective void touch(inout parallel array<double> field);
}
`

func fieldIface(t *testing.T) *sidl.Interface {
	t.Helper()
	pkg, err := sidl.Parse(deferredIDL)
	if err != nil {
		t.Fatal(err)
	}
	iface, _ := pkg.Interface("Field")
	return iface
}

// TestDeferredPull exercises the paper's delayed-transfer strategy: the
// callee chooses its layout *from the call's simple arguments* and only
// then pulls the referenced data.
func TestDeferredPull(t *testing.T) {
	iface := fieldIface(t)
	const n = 24
	const M, N = 2, 3
	callerTpl, _ := dad.NewTemplate([]int{n}, []dad.AxisDist{dad.CyclicAxis(M)})
	var bad atomic.Int64
	f := fixture{M: M, N: N, iface: iface, mode: BarrierDelayed,
		confEp: func(ep *Endpoint) {
			ep.Handle("absorb", func(in *Incoming, out *Outgoing) error {
				if !in.HasDeferred("field") {
					bad.Add(1)
					return fmt.Errorf("field not deferred")
				}
				if _, present := in.Parallel["field"]; present {
					bad.Add(1)
					return fmt.Errorf("deferred data arrived eagerly")
				}
				// The layout is decided here, from the call itself — the
				// situation the pre-registration strategy cannot express.
				if in.Simple["blocks"].(int64) != N {
					bad.Add(1)
					return fmt.Errorf("blocks = %v", in.Simple["blocks"])
				}
				layout, err := dad.NewTemplate([]int{n}, []dad.AxisDist{dad.BlockAxis(N)})
				if err != nil {
					return err
				}
				local, err := in.Pull("field", layout)
				if err != nil {
					bad.Add(1)
					return err
				}
				base := in.CalleeRank * (n / N)
				for li, v := range local {
					if v != float64(100+base+li) {
						bad.Add(1)
						return fmt.Errorf("rank %d local %d = %v", in.CalleeRank, li, v)
					}
				}
				out.Return = 1.0
				return nil
			})
		},
	}
	errs := f.run(t, func(t *testing.T, p *CallerPort, cohort *comm.Comm, rank int) {
		local := make([]float64, callerTpl.LocalCount(rank))
		for li := range local {
			g := rank + li*M // cyclic
			local[li] = float64(100 + g)
		}
		res, err := p.CallCollective("absorb", FullParticipation(cohort),
			ParallelRef("field", callerTpl, local), Simple("blocks", N))
		if err != nil {
			t.Errorf("caller %d: %v", rank, err)
			return
		}
		if res.Return != 1.0 {
			t.Errorf("caller %d: return %v", rank, res.Return)
		}
	})
	noServeErrors(t, errs)
	if bad.Load() != 0 {
		t.Errorf("%d callee checks failed", bad.Load())
	}
}

// TestDeferredNeedsNoRegisteredLayout: a deferred call succeeds with no
// layout registered anywhere — the whole point of the second strategy.
func TestDeferredNeedsNoRegisteredLayout(t *testing.T) {
	iface := fieldIface(t)
	callerTpl, _ := dad.NewTemplate([]int{8}, []dad.AxisDist{dad.BlockAxis(2)})
	f := fixture{M: 2, N: 1, iface: iface, mode: BarrierDelayed,
		confEp: func(ep *Endpoint) {
			ep.Handle("absorb", func(in *Incoming, out *Outgoing) error {
				layout, _ := dad.NewTemplate([]int{8}, []dad.AxisDist{dad.BlockAxis(1)})
				local, err := in.Pull("field", layout)
				if err != nil {
					return err
				}
				sum := 0.0
				for _, v := range local {
					sum += v
				}
				out.Return = sum
				return nil
			})
		},
	}
	errs := f.run(t, func(t *testing.T, p *CallerPort, cohort *comm.Comm, rank int) {
		local := []float64{1, 1, 1, 1}
		res, err := p.CallCollective("absorb", FullParticipation(cohort),
			ParallelRef("field", callerTpl, local), Simple("blocks", 1))
		if err != nil {
			t.Errorf("caller %d: %v", rank, err)
			return
		}
		if res.Return != 8.0 {
			t.Errorf("sum = %v", res.Return)
		}
	})
	noServeErrors(t, errs)
}

func TestDeferredPullErrors(t *testing.T) {
	iface := fieldIface(t)
	callerTpl, _ := dad.NewTemplate([]int{8}, []dad.AxisDist{dad.BlockAxis(2)})
	calleeTpl, _ := dad.NewTemplate([]int{8}, []dad.AxisDist{dad.BlockAxis(1)})
	f := fixture{M: 2, N: 1, iface: iface, mode: BarrierDelayed,
		confEp: func(ep *Endpoint) {
			ep.Handle("absorb", func(in *Incoming, out *Outgoing) error {
				// Pulling an argument that was NOT deferred must fail.
				if _, err := in.Pull("nosuch", calleeTpl); err == nil {
					return fmt.Errorf("pull of unknown arg succeeded")
				}
				// Wrong-width layout must fail.
				wide, _ := dad.NewTemplate([]int{8}, []dad.AxisDist{dad.BlockAxis(4)})
				if _, err := in.Pull("field", wide); err == nil {
					return fmt.Errorf("wrong-width layout accepted")
				}
				// Nil layout must fail.
				if _, err := in.Pull("field", nil); err == nil {
					return fmt.Errorf("nil layout accepted")
				}
				// A correct pull still works afterwards.
				local, err := in.Pull("field", calleeTpl)
				if err != nil {
					return err
				}
				out.Return = float64(len(local))
				return nil
			})
		},
	}
	errs := f.run(t, func(t *testing.T, p *CallerPort, cohort *comm.Comm, rank int) {
		local := make([]float64, 4)
		res, err := p.CallCollective("absorb", FullParticipation(cohort),
			ParallelRef("field", callerTpl, local), Simple("blocks", 1))
		if err != nil {
			t.Errorf("caller %d: %v", rank, err)
			return
		}
		if res.Return != 8.0 {
			t.Errorf("len = %v", res.Return)
		}
	})
	noServeErrors(t, errs)
}

func TestDeferredValidation(t *testing.T) {
	iface := fieldIface(t)
	callerTpl, _ := dad.NewTemplate([]int{8}, []dad.AxisDist{dad.BlockAxis(1)})
	f := fixture{M: 1, N: 1, iface: iface, mode: BarrierDelayed, confEp: func(ep *Endpoint) {
		ep.Handle("touch", func(in *Incoming, out *Outgoing) error { return nil })
	}}
	errs := f.run(t, func(t *testing.T, p *CallerPort, cohort *comm.Comm, rank int) {
		local := make([]float64, 8)
		// Deferred on a one-way method: the caller cannot serve pulls
		// after returning, so this is rejected.
		if _, err := p.CallCollective("fire", FullParticipation(cohort),
			ParallelRef("field", callerTpl, local)); err == nil {
			t.Error("deferred argument on oneway method accepted")
		}
		// Deferred on an inout parameter is rejected (in-only).
		if _, err := p.CallCollective("touch", FullParticipation(cohort),
			ParallelRef("field", callerTpl, local)); err == nil {
			t.Error("deferred inout accepted")
		}
	})
	noServeErrors(t, errs)
}

// TestDeferredMixedWithEager: one argument by reference, one by value, in
// the same call.
func TestDeferredMixedWithEager(t *testing.T) {
	pkg, err := sidl.Parse(`package t; interface I {
		collective double both(in parallel array<double> a, in parallel array<double> b);
	}`)
	if err != nil {
		t.Fatal(err)
	}
	iface, _ := pkg.Interface("I")
	const n = 12
	callerTpl, _ := dad.NewTemplate([]int{n}, []dad.AxisDist{dad.BlockAxis(2)})
	calleeTpl, _ := dad.NewTemplate([]int{n}, []dad.AxisDist{dad.BlockAxis(2)})
	f := fixture{M: 2, N: 2, iface: iface, mode: BarrierDelayed,
		confEp: func(ep *Endpoint) {
			ep.RegisterArgLayout("both", "b", calleeTpl)
			ep.Handle("both", func(in *Incoming, out *Outgoing) error {
				// b arrived eagerly; a must be pulled.
				bVals, ok := in.Parallel["b"]
				if !ok {
					return fmt.Errorf("eager argument missing")
				}
				aVals, err := in.Pull("a", calleeTpl)
				if err != nil {
					return err
				}
				sum := 0.0
				for i := range aVals {
					sum += aVals[i] + bVals[i]
				}
				out.Return = sum
				return nil
			})
		},
		confCal: func(p *CallerPort) { p.SetCalleeLayout("both", "b", calleeTpl) },
	}
	errs := f.run(t, func(t *testing.T, p *CallerPort, cohort *comm.Comm, rank int) {
		a := make([]float64, 6)
		b := make([]float64, 6)
		for i := range a {
			a[i], b[i] = 1, 2
		}
		res, err := p.CallCollective("both", FullParticipation(cohort),
			ParallelRef("a", callerTpl, a), Parallel("b", callerTpl, b))
		if err != nil {
			t.Errorf("caller %d: %v", rank, err)
			return
		}
		// Each callee rank sums its 6 local elements of (1+2).
		if res.Return != 18.0 {
			t.Errorf("sum = %v", res.Return)
		}
	})
	noServeErrors(t, errs)
}
