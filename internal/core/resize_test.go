package core

import (
	"errors"
	"testing"
	"time"

	"mxn/internal/comm"
)

func TestProposeResizeGrow(t *testing.T) {
	m := NewMembership(4)
	if m.Epoch() != 1 || m.Width() != 4 || m.Size() != 4 {
		t.Fatalf("fresh membership: epoch %d width %d size %d", m.Epoch(), m.Width(), m.Size())
	}
	rz, err := m.ProposeResize(6)
	if err != nil {
		t.Fatal(err)
	}
	if rz.OldWidth() != 4 || rz.NewWidth() != 6 {
		t.Fatalf("widths %d→%d, want 4→6", rz.OldWidth(), rz.NewWidth())
	}
	if rz.PrepareEpoch() != 2 || m.Epoch() != 2 {
		t.Fatalf("prepare epoch %d, live epoch %d, want 2/2", rz.PrepareEpoch(), m.Epoch())
	}
	// Prepare grows the rank universe (joiners alive) but not the width.
	if m.Width() != 4 {
		t.Fatalf("width switched to %d before commit", m.Width())
	}
	if m.Size() != 6 {
		t.Fatalf("universe size %d, want 6", m.Size())
	}
	if !m.IsAlive(4) || !m.IsAlive(5) {
		t.Fatal("joining ranks not alive after prepare")
	}
	if m.Resizing() != rz {
		t.Fatal("Resizing does not expose the in-flight handle")
	}
	if rz.Disturbed() {
		t.Fatal("undisturbed window reported disturbed")
	}
	if err := rz.Commit(); err != nil {
		t.Fatal(err)
	}
	if m.Width() != 6 || m.Epoch() != 3 {
		t.Fatalf("after commit: width %d epoch %d, want 6/3", m.Width(), m.Epoch())
	}
	if m.Resizing() != nil {
		t.Fatal("handle still registered after commit")
	}
}

func TestProposeResizeShrinkAbort(t *testing.T) {
	m := NewMembership(4)
	rz, err := m.ProposeResize(2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Size() != 4 || m.Width() != 4 {
		t.Fatalf("shrink prepare changed universe/width: %d/%d", m.Size(), m.Width())
	}
	if err := rz.Abort(); err != nil {
		t.Fatal(err)
	}
	if m.Width() != 4 {
		t.Fatalf("abort changed width to %d", m.Width())
	}
	if m.Epoch() != 3 {
		t.Fatalf("abort epoch %d, want 3 (prepare + abort bumps)", m.Epoch())
	}
	// An aborted resize can simply be re-proposed.
	rz2, err := m.ProposeResize(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := rz2.Commit(); err != nil {
		t.Fatal(err)
	}
	if m.Width() != 2 || m.Size() != 4 {
		t.Fatalf("committed shrink: width %d size %d, want 2/4", m.Width(), m.Size())
	}
	// The universe never shrinks; the excluded ranks stay addressable.
	if !m.IsAlive(3) {
		t.Fatal("rank outside the shrunk width lost liveness")
	}
}

func TestProposeResizeConcurrentRejected(t *testing.T) {
	m := NewMembership(3)
	rz, err := m.ProposeResize(5)
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.ProposeResize(4)
	var inprog *ResizeInProgressError
	if !errors.As(err, &inprog) {
		t.Fatalf("concurrent proposal: err = %v, want *ResizeInProgressError", err)
	}
	if inprog.OldWidth != 3 || inprog.NewWidth != 5 || inprog.PrepareEpoch != rz.PrepareEpoch() {
		t.Fatalf("error fields %+v do not match the in-flight resize", inprog)
	}
	if err := rz.Abort(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ProposeResize(4); err != nil {
		t.Fatalf("proposal after abort: %v", err)
	}
}

func TestProposeResizeRejectsDeadRank(t *testing.T) {
	m := NewMembership(4)
	m.MarkDown(1)
	_, err := m.ProposeResize(4)
	var down *ErrRankDown
	if !errors.As(err, &down) || down.Rank != 1 {
		t.Fatalf("resize over dead rank: err = %v, want *ErrRankDown{Rank:1}", err)
	}
	// A shrink that excludes the dead rank is fine: mark-down is permanent,
	// but the dead rank is outside the target cohort.
	m2 := NewMembership(4)
	m2.MarkDown(3)
	rz, err := m2.ProposeResize(2)
	if err != nil {
		t.Fatalf("shrink excluding dead rank: %v", err)
	}
	if err := rz.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestResizeDisturbedByDeath(t *testing.T) {
	m := NewMembership(4)
	rz, err := m.ProposeResize(6)
	if err != nil {
		t.Fatal(err)
	}
	m.MarkDown(2) // death inside the window bumps the epoch past prepare
	if !rz.Disturbed() {
		t.Fatal("death inside the resize window not reported")
	}
	if err := rz.Abort(); err != nil {
		t.Fatal(err)
	}
}

func TestResizeHandleRetiredTyped(t *testing.T) {
	m := NewMembership(2)
	rz, err := m.ProposeResize(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := rz.Commit(); err != nil {
		t.Fatal(err)
	}
	var st *ResizeStateError
	if err := rz.Commit(); !errors.As(err, &st) || st.Op != "Commit" || st.State != "committed" {
		t.Fatalf("double commit: err = %v, want *ResizeStateError{Commit,committed}", err)
	}
	if err := rz.Abort(); !errors.As(err, &st) || st.Op != "Abort" || st.State != "committed" {
		t.Fatalf("abort after commit: err = %v", err)
	}
	if _, err := m.ProposeResize(0); err == nil {
		t.Fatal("nonpositive width accepted")
	}
}

func TestProposeResizeSameWidthQuiesce(t *testing.T) {
	// Proposing the current width is the uniform "quiesce" primitive: it
	// still fences (epoch bump) and must be committed or aborted.
	m := NewMembership(3)
	rz, err := m.ProposeResize(3)
	if err != nil {
		t.Fatal(err)
	}
	if m.Epoch() != 2 {
		t.Fatalf("quiesce prepare epoch %d, want 2", m.Epoch())
	}
	if err := rz.Commit(); err != nil {
		t.Fatal(err)
	}
	if m.Width() != 3 || m.Epoch() != 3 {
		t.Fatalf("after quiesce commit: width %d epoch %d", m.Width(), m.Epoch())
	}
}

func TestHeartbeatConfigValidate(t *testing.T) {
	if err := DefaultHeartbeatConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	var cfgErr *HeartbeatConfigError
	err := HeartbeatConfig{Interval: 0, MissThreshold: 3}.Validate()
	if !errors.As(err, &cfgErr) || cfgErr.Field != "Interval" {
		t.Fatalf("zero interval: err = %v, want *HeartbeatConfigError{Interval}", err)
	}
	err = HeartbeatConfig{Interval: -time.Second, MissThreshold: 3}.Validate()
	if !errors.As(err, &cfgErr) || cfgErr.Field != "Interval" {
		t.Fatalf("negative interval: err = %v", err)
	}
	err = HeartbeatConfig{Interval: time.Millisecond, MissThreshold: 0}.Validate()
	if !errors.As(err, &cfgErr) || cfgErr.Field != "MissThreshold" {
		t.Fatalf("zero miss threshold: err = %v, want *HeartbeatConfigError{MissThreshold}", err)
	}
	err = HeartbeatConfig{Interval: time.Millisecond, MissThreshold: -1}.Validate()
	if !errors.As(err, &cfgErr) || cfgErr.Field != "MissThreshold" {
		t.Fatalf("negative miss threshold: err = %v", err)
	}
}

func TestStartHeartbeatsRejectsInvalidConfig(t *testing.T) {
	w := comm.NewWorld(1)
	c := w.Comms()[0]
	m := NewMembership(1)
	var cfgErr *HeartbeatConfigError
	if _, err := StartHeartbeats(c, m, HeartbeatConfig{}, nil); !errors.As(err, &cfgErr) {
		t.Fatalf("zero config accepted: err = %v", err)
	}
	// A membership grown by a resize may exceed an old communicator — that
	// must remain legal.
	grown := NewMembership(1)
	if _, err := grown.ProposeResize(3); err != nil {
		t.Fatal(err)
	}
	hb, err := StartHeartbeats(c, grown, DefaultHeartbeatConfig(), nil)
	if err != nil {
		t.Fatalf("grown membership rejected: %v", err)
	}
	hb.Stop()
	// The reverse — a membership too small for the comm — is an error.
	w2 := comm.NewWorld(2)
	if _, err := StartHeartbeats(w2.Comms()[0], NewMembership(1), DefaultHeartbeatConfig(), nil); err == nil {
		t.Fatal("undersized membership accepted")
	}
}
