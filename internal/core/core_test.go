package core

import (
	"errors"
	"sync"
	"testing"

	"mxn/internal/dad"
	"mxn/internal/transport"
)

func blockTpl(t *testing.T, n, p int) *dad.Template {
	t.Helper()
	tpl, err := dad.NewTemplate([]int{n}, []dad.AxisDist{dad.BlockAxis(p)})
	if err != nil {
		t.Fatal(err)
	}
	return tpl
}

func desc(t *testing.T, name string, mode dad.Access, tpl *dad.Template) *dad.Descriptor {
	t.Helper()
	d, err := dad.NewDescriptor(name, dad.Float64, mode, tpl)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// pairHubs builds two hubs over an in-memory bridge with one registered
// field each.
func pairHubs(t *testing.T, m, n, elems int) (*Hub, *Hub) {
	t.Helper()
	ba, bb := BridgePair()
	src := NewHub("A", m, ba)
	dst := NewHub("B", n, bb)
	if err := src.Register(desc(t, "temp", dad.ReadWrite, blockTpl(t, elems, m))); err != nil {
		t.Fatal(err)
	}
	if err := dst.Register(desc(t, "temp", dad.ReadWrite, blockTpl(t, elems, n))); err != nil {
		t.Fatal(err)
	}
	return src, dst
}

func TestRegisterValidation(t *testing.T) {
	ba, _ := BridgePair()
	h := NewHub("A", 2, ba)
	if err := h.Register(desc(t, "f", dad.ReadOnly, blockTpl(t, 8, 3))); err == nil {
		t.Error("wrong-width field accepted")
	}
	if err := h.Register(desc(t, "f", dad.ReadOnly, blockTpl(t, 8, 2))); err != nil {
		t.Fatal(err)
	}
	if err := h.Register(desc(t, "f", dad.ReadOnly, blockTpl(t, 8, 2))); err == nil {
		t.Error("duplicate field accepted")
	}
	h.Unregister("f")
	if err := h.Register(desc(t, "f", dad.ReadOnly, blockTpl(t, 8, 2))); err != nil {
		t.Errorf("re-register after unregister: %v", err)
	}
}

// runTransfer performs one matched DataReady epoch on every rank of both
// sides and returns the destination buffers.
func runTransfer(t *testing.T, srcConn, dstConn *Connection, m, n, elems int) [][]float64 {
	t.Helper()
	srcT := srcConn.local.Template
	dstT := dstConn.local.Template
	dst := make([][]float64, n)
	var wg sync.WaitGroup
	for r := 0; r < m; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			local := make([]float64, srcT.LocalCount(r))
			for li := range local {
				local[li] = float64(r*(elems/m) + li) // block layout: global index
			}
			if _, err := srcConn.DataReady(r, local); err != nil {
				t.Errorf("src rank %d: %v", r, err)
			}
		}(r)
	}
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			buf := make([]float64, dstT.LocalCount(r))
			if _, err := dstConn.DataReady(r, buf); err != nil {
				t.Errorf("dst rank %d: %v", r, err)
			}
			dst[r] = buf
		}(r)
	}
	wg.Wait()
	return dst
}

func verifyDst(t *testing.T, dst *dad.Template, got [][]float64) {
	t.Helper()
	dims := dst.Dims()
	for g := 0; g < dims[0]; g++ {
		r := dst.OwnerOf([]int{g})
		off := dst.LocalOffset(r, []int{g})
		if got[r][off] != float64(g) {
			t.Errorf("global %d on rank %d: got %v", g, r, got[r][off])
		}
	}
}

func TestProposeAcceptOneShot(t *testing.T) {
	const m, n, elems = 2, 3, 24
	src, dst := pairHubs(t, m, n, elems)
	var dstConn *Connection
	var acceptErr error
	done := make(chan struct{})
	go func() {
		dstConn, acceptErr = dst.Accept()
		close(done)
	}()
	srcConn, err := src.Propose("c1", "temp", "temp", AsSource, ConnOpts{})
	if err != nil {
		t.Fatal(err)
	}
	<-done
	if acceptErr != nil {
		t.Fatal(acceptErr)
	}
	if srcConn.Dir() != AsSource || dstConn.Dir() != AsDestination {
		t.Error("directions wrong")
	}
	verifyDst(t, dstConn.local.Template, runTransfer(t, srcConn, dstConn, m, n, elems))
	tr, el := srcConn.Stats()
	if tr != m || el != elems {
		t.Errorf("src stats: %d transfers %d elems", tr, el)
	}
}

func TestDestinationInitiated(t *testing.T) {
	// The destination proposes (dir = AsDestination); the source accepts.
	const m, n, elems = 3, 2, 12
	src, dst := pairHubs(t, m, n, elems)
	var srcConn *Connection
	var acceptErr error
	done := make(chan struct{})
	go func() {
		srcConn, acceptErr = src.Accept()
		close(done)
	}()
	dstConn, err := dst.Propose("c2", "temp", "temp", AsDestination, ConnOpts{})
	if err != nil {
		t.Fatal(err)
	}
	<-done
	if acceptErr != nil {
		t.Fatal(acceptErr)
	}
	verifyDst(t, dstConn.local.Template, runTransfer(t, srcConn, dstConn, m, n, elems))
}

func TestThirdPartyConnect(t *testing.T) {
	const m, n, elems = 2, 2, 16
	src, dst := pairHubs(t, m, n, elems)
	srcConn, dstConn, err := Connect("c3", src, "temp", dst, "temp", ConnOpts{})
	if err != nil {
		t.Fatal(err)
	}
	verifyDst(t, dstConn.local.Template, runTransfer(t, srcConn, dstConn, m, n, elems))
}

func TestModeEnforcement(t *testing.T) {
	ba, bb := BridgePair()
	a := NewHub("A", 1, ba)
	b := NewHub("B", 1, bb)
	a.Register(desc(t, "wo", dad.WriteOnly, blockTpl(t, 4, 1)))
	b.Register(desc(t, "ro", dad.ReadOnly, blockTpl(t, 4, 1)))
	// Local mode violation detected before any control traffic.
	if _, err := a.Propose("x", "wo", "ro", AsSource, ConnOpts{}); err == nil {
		t.Error("write-only field allowed as source")
	}
	// Remote mode violation: propose b's read-only field as destination.
	a.Register(desc(t, "ok", dad.ReadOnly, blockTpl(t, 4, 1)))
	done := make(chan error, 1)
	go func() {
		_, err := b.Accept()
		done <- err
	}()
	if _, err := a.Propose("y", "ok", "ro", AsSource, ConnOpts{}); err == nil {
		t.Error("peer read-only field accepted as destination")
	}
	if err := <-done; err == nil {
		t.Error("acceptor did not report rejection")
	}
}

func TestRejectUnknownFieldAndNonConforming(t *testing.T) {
	ba, bb := BridgePair()
	a := NewHub("A", 1, ba)
	b := NewHub("B", 1, bb)
	a.Register(desc(t, "f", dad.ReadWrite, blockTpl(t, 4, 1)))
	b.Register(desc(t, "g", dad.ReadWrite, blockTpl(t, 5, 1))) // different size

	done := make(chan error, 1)
	go func() { _, err := b.Accept(); done <- err }()
	if _, err := a.Propose("x", "f", "missing", AsSource, ConnOpts{}); err == nil {
		t.Error("unknown remote field accepted")
	}
	<-done

	go func() { _, err := b.Accept(); done <- err }()
	if _, err := a.Propose("y", "f", "g", AsSource, ConnOpts{}); err == nil {
		t.Error("non-conforming templates accepted")
	}
	<-done

	if _, err := a.Propose("z", "missing", "g", AsSource, ConnOpts{}); err == nil {
		t.Error("unknown local field accepted")
	}
}

func TestPersistentSyncEachFrame(t *testing.T) {
	const m, n, elems, frames = 2, 2, 8, 5
	src, dst := pairHubs(t, m, n, elems)
	srcConn, dstConn, err := Connect("p1", src, "temp", dst, "temp",
		ConnOpts{Persistent: true, Sync: SyncEachFrame})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	seen := make([][]uint64, n)
	for r := 0; r < m; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			local := make([]float64, srcConn.local.Template.LocalCount(r))
			err := srcConn.RunProducer(r, func(epoch uint64) []float64 {
				if epoch >= frames {
					return nil
				}
				for li := range local {
					g := r*(elems/m) + li
					local[li] = float64(g)*1000 + float64(epoch)
				}
				return local
			})
			if err != nil {
				t.Errorf("producer %d: %v", r, err)
			}
		}(r)
	}
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			err := dstConn.RunConsumer(r, func(epoch uint64, frame []float64) bool {
				seen[r] = append(seen[r], epoch)
				for li, v := range frame {
					g := r*(elems/n) + li
					if want := float64(g)*1000 + float64(epoch); v != want {
						t.Errorf("rank %d epoch %d: frame[%d] = %v, want %v", r, epoch, li, v, want)
						return false
					}
				}
				return true
			})
			if err != nil {
				t.Errorf("consumer %d: %v", r, err)
			}
		}(r)
	}
	wg.Wait()
	for r := 0; r < n; r++ {
		if len(seen[r]) != frames {
			t.Fatalf("rank %d saw %d frames", r, len(seen[r]))
		}
		for k, e := range seen[r] {
			if e != uint64(k) {
				t.Errorf("rank %d frame %d has epoch %d (must see every epoch in order)", r, k, e)
			}
		}
	}
}

func TestPersistentFreeRunningSamplesLatest(t *testing.T) {
	const elems = 4
	src, dst := pairHubs(t, 1, 1, elems)
	srcConn, dstConn, err := Connect("p2", src, "temp", dst, "temp",
		ConnOpts{Persistent: true, Sync: FreeRunning})
	if err != nil {
		t.Fatal(err)
	}
	// Produce 10 frames before the consumer looks at all.
	local := make([]float64, elems)
	for epoch := 0; epoch < 10; epoch++ {
		for i := range local {
			local[i] = float64(epoch)
		}
		if _, err := srcConn.DataReady(0, local); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]float64, elems)
	epoch, err := dstConn.DataReady(0, buf)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 9 || buf[0] != 9 {
		t.Errorf("sampled epoch %d value %v, want the newest (9)", epoch, buf[0])
	}
	// After close, the consumer sees the stream end.
	if err := srcConn.CloseStream(0); err != nil {
		t.Fatal(err)
	}
	if _, err := dstConn.DataReady(0, buf); !errors.Is(err, ErrChannelClosed) {
		t.Errorf("after close: %v, want ErrChannelClosed", err)
	}
}

func TestDataReadyValidation(t *testing.T) {
	src, dst := pairHubs(t, 1, 1, 4)
	srcConn, dstConn, err := Connect("v", src, "temp", dst, "temp", ConnOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srcConn.DataReady(5, make([]float64, 4)); err == nil {
		t.Error("bad rank accepted")
	}
	if _, err := srcConn.DataReady(0, make([]float64, 3)); err == nil {
		t.Error("short buffer accepted")
	}
	if err := dstConn.CloseStream(0); err == nil {
		t.Error("CloseStream on destination accepted")
	}
	if err := srcConn.RunConsumer(0, nil); err == nil {
		t.Error("RunConsumer on source accepted")
	}
	if err := dstConn.RunProducer(0, nil); err == nil {
		t.Error("RunProducer on destination accepted")
	}
}

func TestDuplicateConnectionID(t *testing.T) {
	src, dst := pairHubs(t, 1, 1, 4)
	if _, _, err := Connect("dup", src, "temp", dst, "temp", ConnOpts{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Connect("dup", src, "temp", dst, "temp", ConnOpts{}); err == nil {
		t.Error("duplicate connection id accepted")
	}
	if _, ok := src.Connection("dup"); !ok {
		t.Error("connection lookup failed")
	}
	if _, ok := src.Connection("nope"); ok {
		t.Error("phantom connection found")
	}
}

func TestNetBridgeTransfer(t *testing.T) {
	// The distributed deployment: two hubs joined by a transport pipe
	// wrapped in net bridges (same code path as TCP).
	const m, n, elems = 2, 3, 12
	ca, cb := transport.Pipe()
	src := NewHub("A", m, NewNetBridge(ca))
	dst := NewHub("B", n, NewNetBridge(cb))
	if err := src.Register(desc(t, "temp", dad.ReadOnly, blockTpl(t, elems, m))); err != nil {
		t.Fatal(err)
	}
	if err := dst.Register(desc(t, "temp", dad.WriteOnly, blockTpl(t, elems, n))); err != nil {
		t.Fatal(err)
	}
	var dstConn *Connection
	var acceptErr error
	done := make(chan struct{})
	go func() {
		dstConn, acceptErr = dst.Accept()
		close(done)
	}()
	srcConn, err := src.Propose("net", "temp", "temp", AsSource, ConnOpts{})
	if err != nil {
		t.Fatal(err)
	}
	<-done
	if acceptErr != nil {
		t.Fatal(acceptErr)
	}
	verifyDst(t, dstConn.local.Template, runTransfer(t, srcConn, dstConn, m, n, elems))
}

func TestNetBridgeTCP(t *testing.T) {
	l, err := transport.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var srvConn transport.Conn
	accDone := make(chan error, 1)
	go func() {
		var err error
		srvConn, err = l.Accept()
		accDone <- err
	}()
	cliConn, err := transport.Dial("tcp", l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := <-accDone; err != nil {
		t.Fatal(err)
	}
	const m, n, elems = 1, 2, 10
	src := NewHub("A", m, NewNetBridge(cliConn))
	dst := NewHub("B", n, NewNetBridge(srvConn))
	src.Register(desc(t, "f", dad.ReadOnly, blockTpl(t, elems, m)))
	dst.Register(desc(t, "f", dad.WriteOnly, blockTpl(t, elems, n)))
	var dstConn *Connection
	done := make(chan error, 1)
	go func() {
		var err error
		dstConn, err = dst.Accept()
		done <- err
	}()
	srcConn, err := src.Propose("tcp", "f", "f", AsSource, ConnOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	verifyDst(t, dstConn.local.Template, runTransfer(t, srcConn, dstConn, m, n, elems))
	cliConn.Close()
	srvConn.Close()
}

func TestNetBridgeConnDeathFailsPendingRecv(t *testing.T) {
	ca, cb := transport.Pipe()
	src := NewHub("A", 1, NewNetBridge(ca))
	dst := NewHub("B", 1, NewNetBridge(cb))
	tpl := blockTpl(t, 4, 1)
	src.Register(desc(t, "f", dad.ReadOnly, tpl))
	dst.Register(desc(t, "f", dad.WriteOnly, tpl))
	srcConn, dstConn, err := Connect("death", src, "f", dst, "f", ConnOpts{})
	if err != nil {
		t.Fatal(err)
	}
	_ = srcConn
	done := make(chan error, 1)
	go func() {
		buf := make([]float64, 4)
		_, err := dstConn.DataReady(0, buf)
		done <- err
	}()
	// The source side dies before sending anything.
	ca.Close()
	if err := <-done; err == nil {
		t.Fatal("DataReady returned nil after bridge death")
	}
}

func TestNetBridgeCorruptFrame(t *testing.T) {
	ca, cb := transport.Pipe()
	bridge := NewNetBridge(cb)
	// Deliver a malformed data frame directly.
	if err := ca.Send([]byte{1 /* netData */, 0xFF}); err != nil {
		t.Fatal(err)
	}
	if _, err := bridge.RecvData("x", 0); err == nil {
		t.Fatal("corrupt frame accepted")
	}
	// Control reads also observe the failure.
	if _, err := bridge.RecvControl(); err == nil {
		t.Fatal("control channel survived corrupt stream")
	}
	ca.Close()
}
