package core

import (
	"fmt"

	"mxn/internal/obs"
)

// Elastic malleability: planned, online change of a cohort's width.
//
// PR 3's Membership handles the *unplanned* half of membership change —
// a rank dies, the epoch bumps, fenced transfers re-plan over survivors.
// This file adds the *planned* half: a two-phase resize protocol that
// grows or shrinks the cohort while the rest of the system keeps running.
//
// The protocol is two epoch bumps around a migration window:
//
//	prepare  ProposeResize(newWidth) bumps the epoch once and pins that
//	         "prepare epoch". New fenced transfers and PRMI calls entered
//	         at older epochs drain normally (both endpoints still agree on
//	         their entry epoch) or fail fast with the existing typed
//	         stale-epoch errors if they straddle the bump — exactly the
//	         PR 3/PR 7 fencing semantics, reused unchanged.
//	migrate  redist.ReconfigureFenced runs the old-layout→new-layout
//	         transfer with the prepare epoch as its entry epoch, so every
//	         participating rank enters the migration at the same fence.
//	commit   Commit() bumps the epoch again and atomically switches the
//	         cohort width to newWidth. Or, if anything went wrong (a rank
//	         died mid-migration, the caller gave up), Abort() bumps the
//	         epoch and keeps the old width — the rollback path.
//
// A rank dying during the window bumps the epoch between prepare and
// commit; Disturbed() detects that so the coordinator can abort or
// re-plan (FailRedistribute) instead of committing a migration that some
// ranks completed against a different alive set.
//
// Only one resize may be in flight per Membership; a concurrent proposal
// fails with a typed *ResizeInProgressError.

var (
	mResizesProposed  = obs.Default().Counter("core.resizes_proposed")
	mResizesCommitted = obs.Default().Counter("core.resizes_committed")
	mResizesAborted   = obs.Default().Counter("core.resizes_aborted")
)

// ResizeInProgressError reports that ProposeResize was called while
// another resize on the same Membership had been prepared but neither
// committed nor aborted.
type ResizeInProgressError struct {
	OldWidth, NewWidth int // widths of the in-flight resize
	PrepareEpoch       uint64
}

func (e *ResizeInProgressError) Error() string {
	return fmt.Sprintf("core: resize %d→%d already in progress (prepare epoch %d)",
		e.OldWidth, e.NewWidth, e.PrepareEpoch)
}

// ResizeStateError reports a Resize handle used after it was already
// committed or aborted.
type ResizeStateError struct {
	Op    string // "Commit" or "Abort"
	State string // "committed" or "aborted"
}

func (e *ResizeStateError) Error() string {
	return fmt.Sprintf("core: Resize.%s on already-%s resize", e.Op, e.State)
}

// Resize is the coordinator handle for one prepared cohort resize. It is
// created by Membership.ProposeResize and retired by exactly one of
// Commit or Abort. Methods are safe for concurrent use (they lock the
// owning Membership), but the commit/abort decision itself is the
// coordinator's — typically rank 0 drives the migration and every other
// rank observes the outcome through the epoch and Width().
type Resize struct {
	m         *Membership
	oldWidth  int
	newWidth  int
	prepEpoch uint64
	state     int // under m.mu: 0 = prepared, 1 = committed, 2 = aborted
}

// OldWidth returns the cohort width before the resize.
func (rz *Resize) OldWidth() int { return rz.oldWidth }

// NewWidth returns the cohort width the resize is moving to.
func (rz *Resize) NewWidth() int { return rz.newWidth }

// PrepareEpoch returns the membership epoch established by the prepare
// phase. The migration transfer must use it as its fence entry epoch so
// all ranks enter at the same cut, even if a failure bumps the live
// epoch mid-migration.
func (rz *Resize) PrepareEpoch() uint64 { return rz.prepEpoch }

// Disturbed reports whether the membership epoch has moved past the
// prepare epoch — i.e. a rank died (or some other membership event fired)
// inside the resize window. A disturbed resize must not be committed
// blindly: either Abort and retry, or re-plan over survivors first.
func (rz *Resize) Disturbed() bool {
	rz.m.mu.Lock()
	defer rz.m.mu.Unlock()
	return rz.m.epoch != rz.prepEpoch
}

// Commit finishes the resize: the cohort width becomes NewWidth() and the
// epoch bumps so every fenced path keyed to an earlier epoch sees the
// change. Returns a typed *ResizeStateError if the handle was already
// retired.
func (rz *Resize) Commit() error {
	rz.m.mu.Lock()
	defer rz.m.mu.Unlock()
	if err := rz.retire("Commit"); err != nil {
		return err
	}
	rz.state = 1
	rz.m.width = rz.newWidth
	rz.m.epoch++
	mResizesCommitted.Inc()
	return nil
}

// Abort rolls the resize back: the width stays OldWidth() and the epoch
// bumps so any rank that already observed the prepare fence re-converges.
// The rank universe is not shrunk — ranks admitted at prepare remain in
// the liveness map (alive but outside the cohort width), so an aborted
// grow can simply be re-proposed. Returns a typed *ResizeStateError if
// the handle was already retired.
func (rz *Resize) Abort() error {
	rz.m.mu.Lock()
	defer rz.m.mu.Unlock()
	if err := rz.retire("Abort"); err != nil {
		return err
	}
	rz.state = 2
	rz.m.epoch++
	mResizesAborted.Inc()
	return nil
}

// retire transitions the handle out of the prepared state; caller holds
// m.mu.
func (rz *Resize) retire(op string) error {
	switch rz.state {
	case 1:
		return &ResizeStateError{Op: op, State: "committed"}
	case 2:
		return &ResizeStateError{Op: op, State: "aborted"}
	}
	if rz.m.resize == rz {
		rz.m.resize = nil
	}
	return nil
}

// ProposeResize prepares an online change of the cohort width to
// newWidth, returning the coordinator handle for the commit/abort
// decision. Preparing:
//
//   - validates newWidth > 0 and that the ranks [0, newWidth) of the
//     universe are all alive (a shrink to a width that would include a
//     dead rank, or a grow re-admitting one, is rejected — mark-down is
//     permanent);
//   - grows the rank universe to newWidth if needed, with the new ranks
//     alive, so joiners pass IsAlive during the migration;
//   - bumps the epoch once (the prepare fence) and pins it in the handle.
//
// Width() still reports the old width until Commit; transfers keyed to
// pre-prepare epochs keep draining under the old geometry. Only one
// resize may be prepared at a time; concurrent proposals fail with a
// typed *ResizeInProgressError. Proposing the current width is allowed
// (it still fences and must be committed or aborted), which gives
// callers a uniform "quiesce" primitive.
func (m *Membership) ProposeResize(newWidth int) (*Resize, error) {
	if newWidth <= 0 {
		return nil, fmt.Errorf("core: ProposeResize width %d, must be positive", newWidth)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.resize != nil {
		return nil, &ResizeInProgressError{
			OldWidth:     m.resize.oldWidth,
			NewWidth:     m.resize.newWidth,
			PrepareEpoch: m.resize.prepEpoch,
		}
	}
	// Every rank of the target cohort must be alive at prepare. Ranks
	// beyond the current universe are about to be admitted alive, so only
	// existing indices can fail this.
	limit := newWidth
	if limit > m.n {
		limit = m.n
	}
	for r := 0; r < limit; r++ {
		if m.down[r] {
			return nil, &ErrRankDown{Rank: r, Epoch: m.epoch}
		}
	}
	if newWidth > m.n {
		grown := make([]bool, newWidth)
		copy(grown, m.down)
		m.down = grown
		m.n = newWidth
	}
	m.epoch++
	rz := &Resize{m: m, oldWidth: m.width, newWidth: newWidth, prepEpoch: m.epoch}
	m.resize = rz
	mResizesProposed.Inc()
	return rz, nil
}

// Resizing returns the in-flight Resize handle, or nil when none is
// prepared. Non-coordinator ranks use it to discover a resize proposed
// on the shared Membership.
func (m *Membership) Resizing() *Resize {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.resize
}
