package core

import (
	"fmt"
	"sync"
	"time"

	"mxn/internal/obs"
	"mxn/internal/transport"
	"mxn/internal/wire"
)

// Bridge instruments, registered in the process-default registry.
var (
	mRedials      = obs.Default().Counter("core.redials")
	mRedialFails  = obs.Default().Counter("core.redial_failures")
	mFramesResent = obs.Default().Counter("core.frames_resent")
	mLinkDown     = obs.Default().Counter("core.links_down")
)

// robustBridge is a netBridge that survives link failure by redialing.
// The bridge matcher keys fragments by (channel, seq), so delivery is
// content-addressed and a reconnect is transparent to readers: fragments
// that were in flight when the link died are simply re-sent by the peer's
// application-level retry (or lost, exactly as the paper's out-of-band
// channel permits), while everything already matched stays matched.
//
// Redial budget and backoff are fixed at construction. The budget is
// cumulative over the bridge's lifetime: a flaky link that keeps coming
// back eventually exhausts it, which turns a silent degradation loop into
// a reported failure.
type robustBridge struct {
	dial    func() (transport.Conn, error)
	budget  int
	backoff time.Duration

	mu      sync.Mutex
	conn    transport.Conn
	down    error // permanent failure, set once the budget is spent
	redials int

	in   *matcher
	ctl  chan []byte
	once sync.Once
	wmu  sync.Mutex
}

// NewRobustBridge dials a connection with dial and wraps it as a Bridge
// that transparently redials when the link fails, up to maxRedials
// reconnections over the bridge's lifetime, sleeping backoff before each
// attempt. Both send and receive paths trigger recovery; once the budget
// is exhausted every pending and future operation reports the underlying
// error.
func NewRobustBridge(dial func() (transport.Conn, error), maxRedials int, backoff time.Duration) (Bridge, error) {
	conn, err := dial()
	if err != nil {
		return nil, fmt.Errorf("core: robust bridge initial dial: %w", err)
	}
	return &robustBridge{
		dial:    dial,
		budget:  maxRedials,
		backoff: backoff,
		conn:    conn,
		in:      newMatcher(),
		ctl:     make(chan []byte, 256),
	}, nil
}

// current returns the live connection, or the permanent error.
func (b *robustBridge) current() (transport.Conn, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.down != nil {
		return nil, b.down
	}
	return b.conn, nil
}

// redial replaces failed if it is still the current connection. It
// returns the connection to use next, or the permanent error once the
// redial budget is spent. Concurrent callers (the receive pump and a
// sender) serialize here; the loser of the race observes the winner's
// fresh connection and retries on it without consuming budget.
func (b *robustBridge) redial(failed transport.Conn, cause error) (transport.Conn, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.down != nil {
		return nil, b.down
	}
	if b.conn != failed {
		return b.conn, nil // someone already reconnected
	}
	failed.Close()
	for b.redials < b.budget {
		b.redials++
		mRedials.Inc()
		start := time.Now()
		time.Sleep(b.backoff)
		conn, err := b.dial()
		if err != nil {
			mRedialFails.Inc()
			cause = err
			continue
		}
		obs.Trace().Span(obs.EvRedial, "bridge", -1, -1, 0, start)
		b.conn = conn
		return conn, nil
	}
	mLinkDown.Inc()
	b.down = fmt.Errorf("core: bridge link failed after %d redials: %w", b.redials, cause)
	return nil, b.down
}

func (b *robustBridge) pump() {
	b.once.Do(func() {
		go func() {
			fail := func(err error) {
				b.in.fail(err)
				close(b.ctl)
			}
			conn, err := b.current()
			for {
				if err != nil {
					fail(err)
					return
				}
				msg, rerr := conn.Recv()
				if rerr != nil {
					conn, err = b.redial(conn, rerr)
					continue
				}
				d := wire.NewDecoder(msg)
				switch d.Byte() {
				case netData:
					channel := d.String()
					seq := d.Uint64()
					data := d.Float64s()
					if d.Err() != nil {
						fail(fmt.Errorf("core: corrupt bridge data: %w", d.Err()))
						return
					}
					b.in.put(dataKey{channel: channel, seq: seq}, data)
				case netCtl:
					payload := d.Bytes()
					if d.Err() != nil {
						fail(fmt.Errorf("core: corrupt bridge control: %w", d.Err()))
						return
					}
					b.ctl <- payload
				default:
					fail(fmt.Errorf("core: unknown bridge message kind"))
					return
				}
			}
		}()
	})
}

// send writes one frame, redialing and retrying on link failure. Frames
// are idempotent at this layer — matching is by (channel, seq) — so a
// frame that may or may not have left before the link died is safe to
// send again.
func (b *robustBridge) send(frame []byte) error {
	b.wmu.Lock()
	defer b.wmu.Unlock()
	conn, err := b.current()
	for attempt := 0; ; attempt++ {
		if err != nil {
			return err
		}
		if attempt > 0 {
			mFramesResent.Inc()
		}
		serr := conn.Send(frame)
		if serr == nil {
			return nil
		}
		conn, err = b.redial(conn, serr)
	}
}

func (b *robustBridge) SendData(channel string, seq uint64, data []float64) error {
	e := wire.NewEncoder(nil)
	e.PutByte(netData)
	e.PutString(channel)
	e.PutUint64(seq)
	e.PutFloat64s(data)
	return b.send(e.Bytes())
}

func (b *robustBridge) RecvData(channel string, seq uint64) ([]float64, error) {
	b.pump()
	return b.in.take(dataKey{channel: channel, seq: seq})
}

func (b *robustBridge) RecvLatest(channel string) (uint64, []float64, error) {
	b.pump()
	return b.in.takeLatest(channel)
}

func (b *robustBridge) SendControl(msg []byte) error {
	e := wire.NewEncoder(nil)
	e.PutByte(netCtl)
	e.PutBytes(msg)
	return b.send(e.Bytes())
}

func (b *robustBridge) RecvControl() ([]byte, error) {
	b.pump()
	msg, ok := <-b.ctl
	if !ok {
		_, err := b.current()
		if err == nil {
			err = fmt.Errorf("core: bridge closed")
		}
		return nil, err
	}
	return msg, nil
}
