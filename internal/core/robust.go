package core

import (
	"context"
	"fmt"
	"time"

	"mxn/internal/session"
	"mxn/internal/transport"
)

// NewRobustBridge dials a resumable session with dial and wraps it as a
// Bridge that survives link failure transparently. The session layer
// (internal/session) sequence-numbers every frame, keeps unacknowledged
// frames in a bounded replay buffer, redials with jittered backoff when
// the physical connection dies, and replays from the peer's last
// delivered sequence — so unlike the pre-session bridge, a frame that the
// kernel accepted but the peer never processed is re-delivered instead of
// silently lost, and a frame the peer did process is dropped as a
// duplicate instead of re-matched. maxRedials bounds reconnect attempts
// per outage and backoff seeds the jittered exponential backoff between
// them; once an outage outlives the budget the circuit opens and every
// pending and future operation reports a session.ErrPeerLost error (which
// also matches transport.ErrClosed).
//
// The peer must speak the session protocol too: a serving side wraps its
// listener with session.WrapListener and passes each accepted session to
// NewNetBridge. Resumed physical connections never surface on Accept, so
// the serving side's "redial" remains simply accepting the replacement.
func NewRobustBridge(dial func() (transport.Conn, error), maxRedials int, backoff time.Duration) (Bridge, error) {
	sc, err := session.NewConn(
		func(context.Context) (transport.Conn, error) { return dial() },
		session.Config{MaxAttempts: maxRedials, BaseBackoff: backoff},
	)
	if err != nil {
		return nil, fmt.Errorf("core: robust bridge connect: %w", err)
	}
	return NewNetBridge(sc), nil
}
