package core

import (
	"fmt"
	"sync"
	"time"

	"mxn/internal/comm"
	"mxn/internal/obs"
)

// Liveness: rank-failure detection for the framework.
//
// The paper's transfer protocols assume both cohorts stay fully alive; a
// single crashed rank turns a redistribution or a collective PRMI call
// into a hang. This file supplies the missing primitive: a Membership view
// shared by a cohort, advanced to a new *epoch* whenever a rank is declared
// dead, fed either by explicit MarkDown calls (e.g. a transport error) or
// by the heartbeat prober below. Transfer layers (redist.ExchangeFenced,
// prmi epoch stamping) fence their traffic with the epoch so survivors can
// distinguish current messages from a dead rank's leftovers, and surface
// *ErrRankDown instead of hanging.

var (
	mHeartbeatsSent  = obs.Default().Counter("core.heartbeats_sent")
	mHeartbeatMisses = obs.Default().Counter("core.heartbeat_misses")
	mHeartbeatRTT    = obs.Default().Histogram("core.heartbeat_rtt_ns")
	mRanksDown       = obs.Default().Counter("core.ranks_down")
)

// ErrRankDown reports that a peer rank was declared dead. Epoch is the
// membership epoch in force when the failure was observed, so callers can
// tell a fresh failure from one they already re-planned around.
type ErrRankDown struct {
	Rank  int
	Epoch uint64
}

func (e *ErrRankDown) Error() string {
	return fmt.Sprintf("core: rank %d is down (membership epoch %d)", e.Rank, e.Epoch)
}

// Membership is a cohort's shared view of which ranks are alive. The epoch
// starts at 1 and increases by one each time the view changes — a rank
// newly marked down, or a phase of a planned resize (see ProposeResize in
// resize.go) — so any two views with the same epoch agree on the alive set
// and the cohort width. Epoch 0 is reserved to mean "unstamped" on the
// wire: a message carrying epoch 0 predates failure awareness and is never
// rejected as stale.
//
// The rank universe [0, Size()) is the index space of the liveness bitmap
// (typically a communicator group's rank space); the cohort width
// (Width()) is how many of those ranks are current cohort members. The
// two coincide until a resize commits a different width. The universe
// only grows (a resize that adds ranks extends it); indices of departed
// ranks are retained so a later grow can re-admit them.
//
// All methods are safe for concurrent use; one Membership value is
// typically shared by every local rank of a cohort plus its heartbeat
// goroutines.
type Membership struct {
	mu     sync.Mutex
	n      int
	width  int
	epoch  uint64
	down   []bool
	resize *Resize // in-flight two-phase resize, nil when none
}

// NewMembership returns an all-alive view over ranks [0, n) at epoch 1,
// with cohort width n.
func NewMembership(n int) *Membership {
	if n <= 0 {
		panic(fmt.Sprintf("core: NewMembership size %d", n))
	}
	return &Membership{n: n, width: n, epoch: 1, down: make([]bool, n)}
}

// Size returns the rank-universe size: the number of ranks the view
// tracks, dead or alive, cohort member or not. It grows when a resize
// admits ranks beyond the current universe and never shrinks.
func (m *Membership) Size() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.n
}

// Width returns the current cohort width: how many ranks of the universe
// are cohort members. It changes only when a resize commits.
func (m *Membership) Width() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.width
}

// Epoch returns the current membership epoch (≥ 1).
func (m *Membership) Epoch() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epoch
}

// IsAlive reports whether rank has not been marked down. Ranks outside
// [0, Size()) are reported dead.
func (m *Membership) IsAlive(rank int) bool {
	if rank < 0 {
		return false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if rank >= m.n {
		return false
	}
	return !m.down[rank]
}

// MarkDown declares rank dead, bumping the epoch. It is idempotent: marking
// an already-dead rank changes nothing and reports false. newly reports
// whether this call was the one that killed it.
func (m *Membership) MarkDown(rank int) (newly bool) {
	if rank < 0 {
		return false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if rank >= m.n || m.down[rank] {
		return false
	}
	m.down[rank] = true
	m.epoch++
	mRanksDown.Inc()
	return true
}

// NumAlive returns how many ranks are currently alive.
func (m *Membership) NumAlive() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	alive := 0
	for _, d := range m.down {
		if !d {
			alive++
		}
	}
	return alive
}

// Alive returns the sorted list of alive ranks.
func (m *Membership) Alive() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]int, 0, m.n)
	for r, d := range m.down {
		if !d {
			out = append(out, r)
		}
	}
	return out
}

// Down returns the sorted list of dead ranks.
func (m *Membership) Down() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := []int{}
	for r, d := range m.down {
		if d {
			out = append(out, r)
		}
	}
	return out
}

// AliveMask returns a snapshot indexed by rank: true = alive.
func (m *Membership) AliveMask() []bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]bool, m.n)
	for r, d := range m.down {
		out[r] = !d
	}
	return out
}

// DownError returns a typed *ErrRankDown for the lowest-numbered dead
// rank, or nil if everyone is alive. Transfer layers use it to convert a
// membership change into the error they surface.
func (m *Membership) DownError() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for r, d := range m.down {
		if d {
			return &ErrRankDown{Rank: r, Epoch: m.epoch}
		}
	}
	return nil
}

// Heartbeats.
//
// StartHeartbeats runs a failure detector for one local rank over its
// communicator: a responder goroutine echoes pings, and one prober
// goroutine per peer sends a ping every Interval and waits up to Interval
// for the echo. MissThreshold consecutive silent intervals mark the peer
// down in the shared Membership. Detection latency is therefore about
// Interval × MissThreshold; with the in-process comm runtime an RTT is
// microseconds, so missed echoes mean the peer stopped serving (crashed,
// killed via World.Kill, or wedged), not congestion.

// HeartbeatConfig tunes a rank's failure detector. The zero value is not
// usable: Interval and MissThreshold must be positive (start from
// DefaultHeartbeatConfig and override). A zero or negative Interval would
// busy-spin the probers and a non-positive MissThreshold would declare a
// peer dead on the very first probe, so both are rejected with a typed
// *HeartbeatConfigError instead of being silently defaulted.
type HeartbeatConfig struct {
	// Interval between pings to each peer. Must be > 0.
	Interval time.Duration
	// MissThreshold is how many consecutive unanswered pings declare a
	// peer dead. Must be > 0.
	MissThreshold int
	// Tag is the base comm tag; Tag is used for pings and Tag+1 for
	// echoes, so it must not collide with application traffic. Zero or
	// negative selects the default, 1 << 28.
	Tag int
}

// DefaultHeartbeatConfig returns the recommended detector tuning: 50ms
// probes, 3 consecutive misses to declare death (~150ms detection
// latency), tag space 1<<28.
func DefaultHeartbeatConfig() HeartbeatConfig {
	return HeartbeatConfig{Interval: 50 * time.Millisecond, MissThreshold: 3, Tag: 1 << 28}
}

// HeartbeatConfigError reports an invalid HeartbeatConfig field.
type HeartbeatConfigError struct {
	Field  string
	Reason string
}

func (e *HeartbeatConfigError) Error() string {
	return fmt.Sprintf("core: invalid HeartbeatConfig.%s: %s", e.Field, e.Reason)
}

// Validate checks the config, returning a typed *HeartbeatConfigError for
// the first invalid field.
func (cfg HeartbeatConfig) Validate() error {
	if cfg.Interval <= 0 {
		return &HeartbeatConfigError{Field: "Interval", Reason: fmt.Sprintf("must be positive, got %v", cfg.Interval)}
	}
	if cfg.MissThreshold <= 0 {
		return &HeartbeatConfigError{Field: "MissThreshold", Reason: fmt.Sprintf("must be positive, got %d", cfg.MissThreshold)}
	}
	return nil
}

func (cfg HeartbeatConfig) withDefaults() HeartbeatConfig {
	if cfg.Tag <= 0 {
		cfg.Tag = 1 << 28
	}
	return cfg
}

// Heartbeater is a running failure detector; Stop shuts its goroutines
// down.
type Heartbeater struct {
	stop chan struct{}
	wg   sync.WaitGroup
}

// Stop terminates the responder and all probers and waits for them to
// exit. Safe to call once.
func (h *Heartbeater) Stop() {
	close(h.stop)
	h.wg.Wait()
}

type heartbeatPing struct {
	From int // group rank of the prober
	Seq  uint64
}

// StartHeartbeats starts the failure detector for the calling rank of c,
// probing each group rank in peers and recording deaths in m. Membership
// ranks are c's group ranks, so the membership universe must cover the
// whole comm: m.Size() ≥ c.Size() (a resized membership may track more
// ranks than an old communicator). Every rank that should answer probes
// must run StartHeartbeats (or at least its responder); a rank that stops
// responding — for any reason — will be marked down by its probers.
//
// The config must pass Validate; an invalid Interval or MissThreshold
// returns a typed *HeartbeatConfigError rather than silently starting a
// busy-spinning or hair-trigger detector.
func StartHeartbeats(c *comm.Comm, m *Membership, cfg HeartbeatConfig, peers []int) (*Heartbeater, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if m.Size() < c.Size() {
		return nil, fmt.Errorf("core: membership size %d < comm size %d", m.Size(), c.Size())
	}
	cfg = cfg.withDefaults()
	h := &Heartbeater{stop: make(chan struct{})}

	// Responder: echo every ping back to its prober on Tag+1.
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		for {
			select {
			case <-h.stop:
				return
			default:
			}
			v, _, ok := c.RecvTimeout(comm.AnySource, cfg.Tag, cfg.Interval)
			if !ok {
				continue
			}
			ping := v.(heartbeatPing)
			c.Send(ping.From, cfg.Tag+1, ping.Seq)
		}
	}()

	for _, peer := range peers {
		if peer == c.Rank() {
			continue
		}
		h.wg.Add(1)
		go func(peer int) {
			defer h.wg.Done()
			misses := 0
			var seq uint64
			ticker := time.NewTicker(cfg.Interval)
			defer ticker.Stop()
			for {
				select {
				case <-h.stop:
					return
				case <-ticker.C:
				}
				if !m.IsAlive(peer) {
					return // someone else already declared it
				}
				seq++
				start := time.Now()
				c.Send(peer, cfg.Tag, heartbeatPing{From: c.Rank(), Seq: seq})
				mHeartbeatsSent.Inc()
				// Wait for the echo of *this* ping; older echoes
				// arriving late are drained and ignored.
				answered := false
				deadline := time.Now().Add(cfg.Interval)
				for {
					remain := time.Until(deadline)
					if remain <= 0 {
						break
					}
					v, _, ok := c.RecvTimeout(peer, cfg.Tag+1, remain)
					if !ok {
						break
					}
					if v.(uint64) == seq {
						answered = true
						break
					}
				}
				if answered {
					misses = 0
					mHeartbeatRTT.Observe(time.Since(start).Nanoseconds())
					continue
				}
				misses++
				mHeartbeatMisses.Inc()
				if misses >= cfg.MissThreshold {
					m.MarkDown(peer)
					return
				}
			}
		}(peer)
	}
	return h, nil
}
