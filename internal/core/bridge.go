// Package core implements the paper's primary contribution: the
// generalized CCA M×N parallel data redistribution component
// (Section 4.1), unifying the PAWS point-to-point coupling model and the
// CUMULVS persistent-channel model behind one interface.
//
// Parallel components register distributed data fields by descriptor
// (a DAD handle plus an access mode); connections between two registered
// fields — one-shot or persistent — are negotiated at run time and can be
// initiated by the source side, the destination side, or a third party.
// Each transfer decomposes into independent pairwise messages driven by
// matched DataReady calls on the two cohorts: no additional barriers are
// imposed on either side.
//
// The pair of M×N component instances serving one connection communicate
// out-of-band through a Bridge (Figure 3 of the paper). Two bridges are
// provided: an in-memory pair for co-located framework instances, and a
// network bridge over internal/transport for distributed ones.
package core

import (
	"fmt"
	"sync"

	"mxn/internal/transport"
	"mxn/internal/wire"
)

// Bridge is the out-of-band channel between the two M×N component
// instances of a connection. Data fragments flow on named channels (the
// hub names one channel per connection and rank pair, so matching is by
// content, not arrival order); control messages form a single ordered
// stream used for connection negotiation.
type Bridge interface {
	// SendData delivers one fragment on a channel.
	SendData(channel string, seq uint64, data []float64) error
	// RecvData blocks until fragment (channel, seq) arrives.
	RecvData(channel string, seq uint64) ([]float64, error)
	// RecvLatest blocks until at least one fragment for channel is
	// available, then returns the newest and discards older ones. It
	// implements the free-running synchronization option, where a slow
	// consumer samples the latest frame instead of draining every epoch.
	RecvLatest(channel string) (seq uint64, data []float64, err error)
	// SendControl appends one message to the control stream.
	SendControl(msg []byte) error
	// RecvControl blocks for the next control message.
	RecvControl() ([]byte, error)
}

// dataKey matches fragments.
type dataKey struct {
	channel string
	seq     uint64
}

// matcher is a concurrent store of fragments with blocking matched
// retrieval, shared by both bridge implementations.
type matcher struct {
	mu   sync.Mutex
	cond *sync.Cond
	data map[dataKey][]float64
	err  error
}

func newMatcher() *matcher {
	m := &matcher{data: map[dataKey][]float64{}}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *matcher) put(k dataKey, v []float64) {
	m.mu.Lock()
	m.data[k] = v
	m.mu.Unlock()
	m.cond.Broadcast()
}

func (m *matcher) fail(err error) {
	m.mu.Lock()
	if m.err == nil {
		m.err = err
	}
	m.mu.Unlock()
	m.cond.Broadcast()
}

func (m *matcher) take(k dataKey) ([]float64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if v, ok := m.data[k]; ok {
			delete(m.data, k)
			return v, nil
		}
		if m.err != nil {
			return nil, m.err
		}
		m.cond.Wait()
	}
}

func (m *matcher) takeLatest(channel string) (uint64, []float64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		best := dataKey{}
		found := false
		for k := range m.data {
			if k.channel == channel && (!found || k.seq > best.seq) {
				best = k
				found = true
			}
		}
		if found {
			v := m.data[best]
			for k := range m.data {
				if k.channel == channel && k.seq <= best.seq {
					delete(m.data, k)
				}
			}
			return best.seq, v, nil
		}
		if m.err != nil {
			return 0, nil, m.err
		}
		m.cond.Wait()
	}
}

// memBridge is one side of an in-memory bridge pair.
type memBridge struct {
	in     *matcher // fragments addressed to this side
	out    *matcher // the peer's matcher
	ctlIn  chan []byte
	ctlOut chan []byte
}

// BridgePair returns the two ends of an in-memory bridge for co-located
// framework instances: the Figure 3 deployment, where paired M×N
// components share a process but belong to different frameworks.
func BridgePair() (a, b Bridge) {
	ma, mb := newMatcher(), newMatcher()
	ab := make(chan []byte, 256)
	ba := make(chan []byte, 256)
	return &memBridge{in: ma, out: mb, ctlIn: ba, ctlOut: ab},
		&memBridge{in: mb, out: ma, ctlIn: ab, ctlOut: ba}
}

func (b *memBridge) SendData(channel string, seq uint64, data []float64) error {
	cp := make([]float64, len(data))
	copy(cp, data)
	b.out.put(dataKey{channel: channel, seq: seq}, cp)
	return nil
}

func (b *memBridge) RecvData(channel string, seq uint64) ([]float64, error) {
	return b.in.take(dataKey{channel: channel, seq: seq})
}

func (b *memBridge) RecvLatest(channel string) (uint64, []float64, error) {
	return b.in.takeLatest(channel)
}

func (b *memBridge) SendControl(msg []byte) error {
	cp := make([]byte, len(msg))
	copy(cp, msg)
	b.ctlOut <- cp
	return nil
}

func (b *memBridge) RecvControl() ([]byte, error) {
	return <-b.ctlIn, nil
}

// netBridge runs the bridge over one transport connection, with a pump
// goroutine demultiplexing data and control messages into the matcher.
// Pairwise transfers remain logically independent: matching is by channel
// and sequence, not arrival order.
type netBridge struct {
	conn transport.Conn
	in   *matcher
	ctl  chan []byte
	once sync.Once
	wmu  sync.Mutex
}

// NewNetBridge wraps a transport connection end as a Bridge. Both sides
// of the connection must wrap their respective ends.
func NewNetBridge(conn transport.Conn) Bridge {
	return &netBridge{conn: conn, in: newMatcher(), ctl: make(chan []byte, 256)}
}

const (
	netData byte = 1
	netCtl  byte = 2
)

func (b *netBridge) pump() {
	b.once.Do(func() {
		go func() {
			// fail poisons both the data matcher and the control stream so
			// every pending and future read observes the error.
			fail := func(err error) {
				b.in.fail(err)
				close(b.ctl)
			}
			for {
				msg, err := b.conn.Recv()
				if err != nil {
					fail(fmt.Errorf("core: bridge receive: %w", err))
					return
				}
				d := wire.NewDecoder(msg)
				switch d.Byte() {
				case netData:
					channel := d.String()
					seq := d.Uint64()
					data := d.Float64s()
					if d.Err() != nil {
						fail(fmt.Errorf("core: corrupt bridge data: %w", d.Err()))
						return
					}
					b.in.put(dataKey{channel: channel, seq: seq}, data)
				case netCtl:
					payload := d.Bytes()
					if d.Err() != nil {
						fail(fmt.Errorf("core: corrupt bridge control: %w", d.Err()))
						return
					}
					b.ctl <- payload
				default:
					fail(fmt.Errorf("core: unknown bridge message kind"))
					return
				}
			}
		}()
	})
}

func (b *netBridge) SendData(channel string, seq uint64, data []float64) error {
	e := wire.NewEncoder(nil)
	e.PutByte(netData)
	e.PutString(channel)
	e.PutUint64(seq)
	e.PutFloat64s(data)
	b.wmu.Lock()
	defer b.wmu.Unlock()
	return b.conn.Send(e.Bytes())
}

func (b *netBridge) RecvData(channel string, seq uint64) ([]float64, error) {
	b.pump()
	return b.in.take(dataKey{channel: channel, seq: seq})
}

func (b *netBridge) RecvLatest(channel string) (uint64, []float64, error) {
	b.pump()
	return b.in.takeLatest(channel)
}

func (b *netBridge) SendControl(msg []byte) error {
	e := wire.NewEncoder(nil)
	e.PutByte(netCtl)
	e.PutBytes(msg)
	b.wmu.Lock()
	defer b.wmu.Unlock()
	return b.conn.Send(e.Bytes())
}

func (b *netBridge) RecvControl() ([]byte, error) {
	b.pump()
	msg, ok := <-b.ctl
	if !ok {
		return nil, fmt.Errorf("core: bridge closed")
	}
	return msg, nil
}
