package core

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"mxn/internal/dad"
	"mxn/internal/schedule"
)

// ErrChannelClosed is returned by destination-side DataReady when the
// source has closed its persistent stream.
var ErrChannelClosed = errors.New("core: channel closed by source")

// eosSeq marks the end-of-stream frame; math.MaxUint64 keeps it "newest"
// for free-running consumers.
const eosSeq = math.MaxUint64

// Connection is one side's handle on an established M×N coupling between
// two registered fields. The same type serves both roles; Dir tells which
// one this side plays.
//
// Transfers follow the paper's matched-dataReady protocol: each source
// cohort rank calls DataReady when its local portion is consistent, which
// initiates that rank's independent pairwise messages; each destination
// rank's matching DataReady completes them. When all pairwise messages of
// an epoch have been exchanged the transfer is complete — with no barrier
// on either side.
type Connection struct {
	ID    string
	hub   *Hub
	dir   Direction
	sched *schedule.Schedule
	opts  ConnOpts
	local *dad.Descriptor
	seqs  []uint64

	transfers  atomic.Int64
	elemsMoved atomic.Int64

	// peer is the liveness view of the remote cohort, if the
	// application runs a failure detector. When set, destination-side
	// DataReady refuses to wait on fragments from a dead source rank
	// and returns *ErrRankDown instead of hanging.
	peer atomic.Pointer[Membership]
}

// SetPeerMembership attaches a liveness view of the remote cohort. Safe to
// call concurrently with transfers; pass nil to detach.
func (c *Connection) SetPeerMembership(m *Membership) { c.peer.Store(m) }

// PeerMembership returns the attached remote-cohort view, or nil.
func (c *Connection) PeerMembership() *Membership { return c.peer.Load() }

// Dir returns this side's role.
func (c *Connection) Dir() Direction { return c.dir }

// Schedule exposes the communication schedule (source→destination
// orientation) for inspection and reporting.
func (c *Connection) Schedule() *schedule.Schedule { return c.sched }

// Opts returns the connection options fixed at creation.
func (c *Connection) Opts() ConnOpts { return c.opts }

// Stats reports the number of completed DataReady calls on this side and
// the total elements moved through them.
func (c *Connection) Stats() (transfers, elems int64) {
	return c.transfers.Load(), c.elemsMoved.Load()
}

// pairChannel names the bridge channel of one (source rank, destination
// rank) pair.
func (c *Connection) pairChannel(src, dst int) string {
	return fmt.Sprintf("%s/%d>%d", c.ID, src, dst)
}

// DataReady performs this rank's part of one transfer epoch.
//
// On the source side it packs and posts every outgoing pairwise fragment
// and returns without waiting for the destination. On the destination
// side it blocks until this rank's incoming fragments arrive and unpacks
// them into local. The returned epoch is this rank's transfer counter
// (for SyncEachFrame destinations it equals the source epoch; for
// FreeRunning it is the sampled frame's epoch).
func (c *Connection) DataReady(rank int, local []float64) (uint64, error) {
	if rank < 0 || rank >= c.hub.np {
		return 0, fmt.Errorf("core: rank %d outside cohort of %d", rank, c.hub.np)
	}
	if want := c.local.Template.LocalCount(rank); len(local) != want {
		return 0, fmt.Errorf("core: connection %q rank %d: buffer has %d elements, descriptor says %d",
			c.ID, rank, len(local), want)
	}
	if c.dir == AsSource {
		epoch := c.seqs[rank]
		c.seqs[rank]++
		for _, plan := range c.sched.OutgoingFor(rank) {
			buf := make([]float64, plan.Elems)
			schedule.Pack(plan, local, buf)
			if err := c.hub.bridge.SendData(c.pairChannel(plan.SrcRank, plan.DstRank), epoch, buf); err != nil {
				return 0, err
			}
			c.elemsMoved.Add(int64(plan.Elems))
		}
		c.transfers.Add(1)
		return epoch, nil
	}

	// Destination side.
	if c.opts.Persistent && c.opts.Sync == FreeRunning {
		return c.recvLatest(rank, local)
	}
	epoch := c.seqs[rank]
	c.seqs[rank]++
	for _, plan := range c.sched.IncomingFor(rank) {
		if mb := c.peer.Load(); mb != nil && !mb.IsAlive(plan.SrcRank) {
			return 0, &ErrRankDown{Rank: plan.SrcRank, Epoch: mb.Epoch()}
		}
		data, err := c.hub.bridge.RecvData(c.pairChannel(plan.SrcRank, plan.DstRank), epoch)
		if err != nil {
			return 0, err
		}
		if len(data) == 0 {
			return 0, ErrChannelClosed
		}
		if len(data) != plan.Elems {
			return 0, fmt.Errorf("core: connection %q: pair %d→%d epoch %d carried %d elements, schedule says %d",
				c.ID, plan.SrcRank, plan.DstRank, epoch, len(data), plan.Elems)
		}
		schedule.Unpack(plan, local, data)
		c.elemsMoved.Add(int64(plan.Elems))
	}
	c.transfers.Add(1)
	return epoch, nil
}

// recvLatest implements the free-running destination: sample the newest
// frame of every incoming pair. Fragments from different sources may
// belong to different epochs (the price of never blocking the producer);
// the returned epoch is the minimum observed, a coherence indicator.
func (c *Connection) recvLatest(rank int, local []float64) (uint64, error) {
	minEpoch := uint64(math.MaxUint64)
	for _, plan := range c.sched.IncomingFor(rank) {
		seq, data, err := c.hub.bridge.RecvLatest(c.pairChannel(plan.SrcRank, plan.DstRank))
		if err != nil {
			return 0, err
		}
		if seq == eosSeq || len(data) == 0 {
			return 0, ErrChannelClosed
		}
		if len(data) != plan.Elems {
			return 0, fmt.Errorf("core: connection %q: pair %d→%d frame carried %d elements, schedule says %d",
				c.ID, plan.SrcRank, plan.DstRank, len(data), plan.Elems)
		}
		schedule.Unpack(plan, local, data)
		c.elemsMoved.Add(int64(plan.Elems))
		if seq < minEpoch {
			minEpoch = seq
		}
	}
	c.transfers.Add(1)
	return minEpoch, nil
}

// CloseStream ends a persistent connection from the source side: every
// destination rank's next (or, for free-running consumers, newest)
// DataReady returns ErrChannelClosed. Each source rank closes its own
// outgoing pairs.
func (c *Connection) CloseStream(rank int) error {
	if c.dir != AsSource {
		return fmt.Errorf("core: CloseStream is a source-side operation")
	}
	for _, plan := range c.sched.OutgoingFor(rank) {
		seq := c.seqs[rank]
		if c.opts.Persistent && c.opts.Sync == FreeRunning {
			seq = eosSeq
		}
		if err := c.hub.bridge.SendData(c.pairChannel(plan.SrcRank, plan.DstRank), seq, nil); err != nil {
			return err
		}
	}
	return nil
}

// RunProducer drives a persistent source rank: next is called with the
// epoch and returns the frame to publish, or nil to close the stream.
// It is the "recur automatically" mode of the paper's persistent
// connections, with the recurrence cadence owned by the supplier.
func (c *Connection) RunProducer(rank int, next func(epoch uint64) []float64) error {
	if c.dir != AsSource {
		return fmt.Errorf("core: RunProducer on a destination connection")
	}
	for {
		frame := next(c.seqs[rank])
		if frame == nil {
			return c.CloseStream(rank)
		}
		if _, err := c.DataReady(rank, frame); err != nil {
			return err
		}
	}
}

// RunConsumer drives a persistent destination rank: sink receives each
// frame (every epoch for SyncEachFrame, the newest for FreeRunning) and
// returns false to stop early. RunConsumer returns nil when the source
// closes the stream.
func (c *Connection) RunConsumer(rank int, sink func(epoch uint64, frame []float64) bool) error {
	if c.dir != AsDestination {
		return fmt.Errorf("core: RunConsumer on a source connection")
	}
	buf := make([]float64, c.local.Template.LocalCount(rank))
	for {
		epoch, err := c.DataReady(rank, buf)
		if errors.Is(err, ErrChannelClosed) {
			return nil
		}
		if err != nil {
			return err
		}
		if !sink(epoch, buf) {
			return nil
		}
	}
}
