package core

import (
	"errors"
	"testing"
	"time"

	"mxn/internal/comm"
)

func TestMembershipEpochs(t *testing.T) {
	m := NewMembership(4)
	if m.Epoch() != 1 {
		t.Fatalf("fresh epoch = %d, want 1", m.Epoch())
	}
	if m.NumAlive() != 4 || !m.IsAlive(2) {
		t.Fatal("fresh membership not all-alive")
	}
	if err := m.DownError(); err != nil {
		t.Fatalf("DownError on all-alive = %v", err)
	}

	if !m.MarkDown(2) {
		t.Fatal("first MarkDown(2) not newly")
	}
	if m.MarkDown(2) {
		t.Fatal("second MarkDown(2) claimed newly")
	}
	if m.Epoch() != 2 {
		t.Fatalf("epoch after one death = %d, want 2", m.Epoch())
	}
	if m.IsAlive(2) || m.NumAlive() != 3 {
		t.Fatal("rank 2 still alive after MarkDown")
	}
	if got := m.Alive(); len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 3 {
		t.Fatalf("Alive = %v", got)
	}
	if got := m.Down(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("Down = %v", got)
	}
	mask := m.AliveMask()
	if !mask[0] || mask[2] {
		t.Fatalf("AliveMask = %v", mask)
	}

	var down *ErrRankDown
	if err := m.DownError(); !errors.As(err, &down) || down.Rank != 2 || down.Epoch != 2 {
		t.Fatalf("DownError = %v", err)
	}

	// Out-of-range ranks are dead and unmarkable.
	if m.IsAlive(-1) || m.IsAlive(4) {
		t.Fatal("out-of-range rank alive")
	}
	if m.MarkDown(7) {
		t.Fatal("out-of-range MarkDown claimed newly")
	}
}

func TestHeartbeatsDetectKilledRank(t *testing.T) {
	const n = 3
	w := comm.NewWorld(n)
	cs := w.Comms()
	m := NewMembership(n)
	// 80 ms of tolerated silence: tighter settings false-positive when the
	// whole tree's tests run in parallel and goroutines stall on a loaded
	// scheduler (same tuning as the chaos tests).
	cfg := HeartbeatConfig{Interval: 10 * time.Millisecond, MissThreshold: 8}

	peers := []int{0, 1, 2}
	hbs := make([]*Heartbeater, n)
	for r := 0; r < n; r++ {
		var err error
		hbs[r], err = StartHeartbeats(cs[r], m, cfg, peers)
		if err != nil {
			t.Fatal(err)
		}
	}
	defer func() {
		for r := 0; r < n; r++ {
			if r != 2 {
				hbs[r].Stop()
			}
		}
	}()

	// Let a few healthy rounds pass; nobody should be marked down.
	time.Sleep(5 * cfg.Interval)
	if m.NumAlive() != n {
		t.Fatalf("healthy cohort lost ranks: alive=%v", m.Alive())
	}

	// Crash rank 2: its responder's echoes stop reaching anyone.
	w.Kill(2)
	hbs[2].Stop()

	deadline := time.Now().Add(5 * time.Second)
	for m.IsAlive(2) && time.Now().Before(deadline) {
		time.Sleep(cfg.Interval)
	}
	if m.IsAlive(2) {
		t.Fatal("rank 2 never detected dead")
	}
	if !m.IsAlive(0) || !m.IsAlive(1) {
		t.Fatalf("false positive: alive=%v", m.Alive())
	}
	if m.Epoch() < 2 {
		t.Fatalf("epoch = %d after a death", m.Epoch())
	}
}

func TestDataReadyRefusesDeadSource(t *testing.T) {
	const m, n, elems = 2, 2, 16
	src, dst := pairHubs(t, m, n, elems)
	srcConn, dstConn, err := Connect("cdead", src, "temp", dst, "temp", ConnOpts{})
	if err != nil {
		t.Fatal(err)
	}
	_ = srcConn

	mb := NewMembership(m)
	mb.MarkDown(1)
	dstConn.SetPeerMembership(mb)
	if got := dstConn.PeerMembership(); got != mb {
		t.Fatal("PeerMembership accessor")
	}

	// Destination rank 1 receives from source rank 1 under the 2×2 block
	// schedule; with source rank 1 dead it must fail typed instead of
	// blocking on a fragment that will never arrive.
	buf := make([]float64, dstConn.local.Template.LocalCount(1))
	_, err = dstConn.DataReady(1, buf)
	var down *ErrRankDown
	if !errors.As(err, &down) {
		t.Fatalf("DataReady with dead source = %v, want *ErrRankDown", err)
	}
	if down.Rank != 1 {
		t.Fatalf("ErrRankDown.Rank = %d, want 1", down.Rank)
	}
}
