package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"mxn/internal/dad"
	"mxn/internal/faultconn"
	"mxn/internal/session"
	"mxn/internal/transport"
	"mxn/internal/wire"
)

// echoServer accepts sessions forever; each session echoes every data
// frame back on channel "echo" with the same seq and payload. Physical
// reconnects are absorbed by the session listener, so one echo goroutine
// spans arbitrarily many link failures.
func echoServer(t *testing.T) *session.Listener {
	t.Helper()
	inner, err := transport.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lst := session.WrapListener(inner, session.Config{})
	t.Cleanup(func() { lst.Close() })
	go func() {
		for {
			c, err := lst.Accept()
			if err != nil {
				return
			}
			go func(c transport.Conn) {
				defer c.Close()
				for {
					msg, err := c.Recv()
					if err != nil {
						return
					}
					d := wire.NewDecoder(msg)
					if d.Byte() != netData {
						continue
					}
					_ = d.String()
					seq := d.Uint64()
					data := d.Float64s()
					if d.Err() != nil {
						continue
					}
					e := wire.NewEncoder(nil)
					e.PutByte(netData)
					e.PutString("echo")
					e.PutUint64(seq)
					e.PutFloat64s(data)
					if c.Send(e.Bytes()) != nil {
						return
					}
				}
			}(c)
		}
	}()
	return lst
}

func TestRobustBridgeRedialsAfterLinkFailure(t *testing.T) {
	lst := echoServer(t)

	var mu sync.Mutex
	var conns []transport.Conn
	dial := func() (transport.Conn, error) {
		c, err := transport.Dial("tcp", lst.Addr())
		if err == nil {
			mu.Lock()
			conns = append(conns, c)
			mu.Unlock()
		}
		return c, err
	}
	rb, err := NewRobustBridge(dial, 3, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}

	if err := rb.SendData("ping", 1, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	got, err := rb.RecvData("echo", 1)
	if err != nil || len(got) != 2 {
		t.Fatalf("first round-trip: %v %v", got, err)
	}

	// Cut the link out from under the bridge; both the pump and the next
	// send observe the failure and the bridge must come back on a fresh
	// connection without RecvData callers noticing.
	mu.Lock()
	conns[0].Close()
	mu.Unlock()

	if err := rb.SendData("ping", 2, []float64{3}); err != nil {
		t.Fatalf("send across redial: %v", err)
	}
	got, err = rb.RecvData("echo", 2)
	if err != nil || len(got) != 1 || got[0] != 3 {
		t.Fatalf("round-trip after redial: %v %v", got, err)
	}

	mu.Lock()
	n := len(conns)
	mu.Unlock()
	if n < 2 {
		t.Fatalf("bridge never redialed: %d dials", n)
	}
}

func TestRobustBridgeSurvivesFaultconnPartition(t *testing.T) {
	lst := echoServer(t)
	// The first connection hard-partitions itself after 2 frames in either
	// direction; later dials are clean.
	dials := 0
	dial := func() (transport.Conn, error) {
		dials++
		c, err := transport.Dial("tcp", lst.Addr())
		if err != nil {
			return nil, err
		}
		if dials == 1 {
			return faultconn.Wrap(c, faultconn.Scenario{
				Seed: 7,
				Send: faultconn.Faults{FailAfter: 2},
				Recv: faultconn.Faults{FailAfter: 2},
			}), nil
		}
		return c, err
	}
	rb, err := NewRobustBridge(dial, 5, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 6; seq++ {
		if err := rb.SendData("ping", seq, []float64{float64(seq)}); err != nil {
			t.Fatalf("seq %d send: %v", seq, err)
		}
		got, err := rb.RecvData("echo", seq)
		if err != nil || len(got) != 1 || got[0] != float64(seq) {
			t.Fatalf("seq %d round-trip: %v %v", seq, got, err)
		}
	}
	if dials < 2 {
		t.Fatalf("partitioned bridge never redialed: %d dials", dials)
	}
}

func TestRobustBridgeExhaustsRedialBudget(t *testing.T) {
	lst := echoServer(t)
	dials := 0
	var first transport.Conn
	dial := func() (transport.Conn, error) {
		dials++
		if dials > 1 {
			return nil, fmt.Errorf("network is gone")
		}
		c, err := transport.Dial("tcp", lst.Addr())
		first = c
		return c, err
	}
	rb, err := NewRobustBridge(dial, 2, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := rb.SendData("ping", 1, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := rb.RecvData("echo", 1); err != nil {
		t.Fatal(err)
	}

	// Kill the only working link; the dialer refuses to come back, so the
	// budget drains and every operation reports the failure.
	first.Close()
	waitDead(t, rb)

	if err := rb.SendData("ping", 9, []float64{1}); err == nil {
		t.Fatal("send succeeded on a dead bridge")
	}
	if _, err := rb.RecvData("echo", 9); err == nil {
		t.Fatal("recv succeeded on a dead bridge")
	}
	if _, err := rb.RecvControl(); err == nil {
		t.Fatal("recv control succeeded on a dead bridge")
	}
	if dials != 3 { // 1 initial + 2 budget
		t.Fatalf("dial attempts = %d, want 3", dials)
	}
}

// waitDead drives sends until the bridge reports permanent failure or the
// deadline passes.
func waitDead(t *testing.T, rb Bridge) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if err := rb.SendData("probe", 0, nil); err != nil {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("bridge never reported link failure")
}

func TestRobustBridgeInitialDialFailure(t *testing.T) {
	_, err := NewRobustBridge(func() (transport.Conn, error) {
		return nil, errors.New("refused")
	}, 3, time.Millisecond)
	if err == nil {
		t.Fatal("constructor swallowed dial failure")
	}
}

// Two hubs joined by a robust bridge pair survive losing the physical
// link between connection negotiations: the client side's session
// redials, the server side's session listener absorbs the replacement
// connection without a new Accept, and the next propose/accept plus
// transfer run unchanged.
func TestHubsReconnectAcrossLinkFailure(t *testing.T) {
	const m, n, elems = 2, 3, 12
	raw, err := transport.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lst := session.WrapListener(raw, session.Config{})
	t.Cleanup(func() { lst.Close() })

	var mu sync.Mutex
	var cliConns []transport.Conn
	cliDial := func() (transport.Conn, error) {
		c, err := transport.Dial("tcp", lst.Addr())
		if err == nil {
			mu.Lock()
			cliConns = append(cliConns, c)
			mu.Unlock()
		}
		return c, err
	}
	type bres struct {
		b   Bridge
		err error
	}
	srvCh := make(chan bres, 1)
	go func() {
		c, err := lst.Accept()
		if err != nil {
			srvCh <- bres{nil, err}
			return
		}
		srvCh <- bres{NewNetBridge(c), nil}
	}()
	cliBridge, err := NewRobustBridge(cliDial, 3, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	sv := <-srvCh
	if sv.err != nil {
		t.Fatal(sv.err)
	}

	src := NewHub("A", m, cliBridge)
	dst := NewHub("B", n, sv.b)
	if err := src.Register(desc(t, "temp", dad.ReadOnly, blockTpl(t, elems, m))); err != nil {
		t.Fatal(err)
	}
	if err := dst.Register(desc(t, "temp", dad.WriteOnly, blockTpl(t, elems, n))); err != nil {
		t.Fatal(err)
	}

	connect := func(id string) (*Connection, *Connection) {
		var dstConn *Connection
		done := make(chan error, 1)
		go func() {
			var err error
			dstConn, err = dst.Accept()
			done <- err
		}()
		srcConn, err := src.Propose(id, "temp", "temp", AsSource, ConnOpts{})
		if err != nil {
			t.Fatalf("%s propose: %v", id, err)
		}
		if err := <-done; err != nil {
			t.Fatalf("%s accept: %v", id, err)
		}
		return srcConn, dstConn
	}

	sc, dc := connect("epoch1")
	verifyDst(t, dc.local.Template, runTransfer(t, sc, dc, m, n, elems))

	// Sever the physical link between epochs; nothing is in flight, so
	// recovery must be invisible to the hubs.
	mu.Lock()
	cliConns[0].Close()
	mu.Unlock()

	sc, dc = connect("epoch2")
	verifyDst(t, dc.local.Template, runTransfer(t, sc, dc, m, n, elems))

	mu.Lock()
	redials := len(cliConns)
	mu.Unlock()
	if redials < 2 {
		t.Fatal("client bridge never redialed")
	}
}
