package core

import (
	"fmt"

	"mxn/internal/dad"
	"mxn/internal/obs"
)

// Hub-side malleability: the descriptor bookkeeping of an online resize.
//
// When a cohort resizes (ProposeResize → Reblock → ReconfigureFenced →
// Commit), the hub's registered fields still describe the old geometry.
// Hub.Resize re-derives every field descriptor over the new width in one
// all-or-nothing step, and Hub.Field lets a joining rank bootstrap: a
// rank admitted by the resize reads the (re-blocked) descriptor of each
// field it will host from the shared hub instead of needing the layout
// negotiated out of band.

var mHubResizes = obs.Default().Counter("core.hub_resizes")

// Field returns the registered descriptor for a field, for joining-rank
// bootstrap and introspection: a rank admitted by a resize calls Field
// after Hub.Resize to learn the re-blocked layout (and from it, via
// Template.LocalCount, the local buffer it must allocate).
func (h *Hub) Field(name string) (*dad.Descriptor, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	f, ok := h.fields[name]
	if !ok {
		return nil, false
	}
	return f.desc, true
}

// Fields returns the names of all registered fields (unordered), so a
// joining rank can enumerate what the cohort hosts.
func (h *Hub) Fields() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, 0, len(h.fields))
	for name := range h.fields {
		out = append(out, name)
	}
	return out
}

// Resize re-derives every registered field over a cohort of newWidth
// ranks: each field's template is re-blocked (dad.Reblock — same
// distribution family, new width) and its descriptor replaced, and the
// hub's cohort width becomes newWidth. The step is all-or-nothing: if any
// field cannot be re-blocked (an Explicit or Implicit distribution), no
// field is changed and the typed *dad.ReblockError is returned wrapped —
// a half-resized hub would register fields over two different cohort
// widths.
//
// Validity bitmaps attached to the old descriptors are not carried over:
// the migration transfer (redist.ReconfigureFenced) re-establishes
// per-rank validity under the new geometry.
//
// Established connections are untouched and keep their old-geometry
// schedules; transfers on them keep working until the peer coupling is
// re-negotiated (Propose/Accept again) against the resized fields.
// Callers drive Resize between a successful migration and the resize
// commit, typically on every hub hosting a field of the resized cohort.
func (h *Hub) Resize(newWidth int) error {
	if newWidth < 1 {
		return fmt.Errorf("core: hub %q resize to width %d", h.name, newWidth)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if newWidth == h.np {
		return nil
	}
	reblocked := make(map[string]*field, len(h.fields))
	for name, f := range h.fields {
		nt, err := dad.Reblock(f.desc.Template, newWidth)
		if err != nil {
			return fmt.Errorf("core: hub %q resize: field %q: %w", h.name, name, err)
		}
		nd, err := dad.NewDescriptor(f.desc.Name, f.desc.Elem, f.desc.Mode, nt)
		if err != nil {
			return fmt.Errorf("core: hub %q resize: field %q: %w", h.name, name, err)
		}
		reblocked[name] = &field{desc: nd}
	}
	h.fields = reblocked
	h.np = newWidth
	mHubResizes.Inc()
	return nil
}
