package core

// The pre-session robust bridge, preserved verbatim as a test fixture.
// Its send path retried a frame only when conn.Send itself returned an
// error — but a frame the kernel accepted into the socket buffer before
// the link died reports success while the peer never processes it. The
// tests below demonstrate that loss (the motivating failing-before case
// for rewiring NewRobustBridge over internal/session) and show the
// session bridge delivering the same traffic exactly once.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"mxn/internal/faultconn"
	"mxn/internal/transport"
	"mxn/internal/wire"
)

// legacyRobustBridge is the pre-session implementation of
// NewRobustBridge: redial-and-retry with no sequencing, acks, or replay.
type legacyRobustBridge struct {
	dial    func() (transport.Conn, error)
	budget  int
	backoff time.Duration

	mu      sync.Mutex
	conn    transport.Conn
	down    error
	redials int

	in   *matcher
	ctl  chan []byte
	once sync.Once
	wmu  sync.Mutex
}

func newLegacyRobustBridge(dial func() (transport.Conn, error), maxRedials int, backoff time.Duration) (Bridge, error) {
	conn, err := dial()
	if err != nil {
		return nil, fmt.Errorf("core: legacy bridge initial dial: %w", err)
	}
	return &legacyRobustBridge{
		dial:    dial,
		budget:  maxRedials,
		backoff: backoff,
		conn:    conn,
		in:      newMatcher(),
		ctl:     make(chan []byte, 256),
	}, nil
}

func (b *legacyRobustBridge) current() (transport.Conn, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.down != nil {
		return nil, b.down
	}
	return b.conn, nil
}

func (b *legacyRobustBridge) redial(failed transport.Conn, cause error) (transport.Conn, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.down != nil {
		return nil, b.down
	}
	if b.conn != failed {
		return b.conn, nil
	}
	failed.Close()
	for b.redials < b.budget {
		b.redials++
		time.Sleep(b.backoff)
		conn, err := b.dial()
		if err != nil {
			cause = err
			continue
		}
		b.conn = conn
		return conn, nil
	}
	b.down = fmt.Errorf("core: legacy bridge link failed after %d redials: %w", b.redials, cause)
	return nil, b.down
}

func (b *legacyRobustBridge) pump() {
	b.once.Do(func() {
		go func() {
			fail := func(err error) {
				b.in.fail(err)
				close(b.ctl)
			}
			conn, err := b.current()
			for {
				if err != nil {
					fail(err)
					return
				}
				msg, rerr := conn.Recv()
				if rerr != nil {
					conn, err = b.redial(conn, rerr)
					continue
				}
				d := wire.NewDecoder(msg)
				switch d.Byte() {
				case netData:
					channel := d.String()
					seq := d.Uint64()
					data := d.Float64s()
					if d.Err() != nil {
						fail(fmt.Errorf("core: corrupt bridge data: %w", d.Err()))
						return
					}
					b.in.put(dataKey{channel: channel, seq: seq}, data)
				case netCtl:
					payload := d.Bytes()
					if d.Err() != nil {
						fail(fmt.Errorf("core: corrupt bridge control: %w", d.Err()))
						return
					}
					b.ctl <- payload
				default:
					fail(fmt.Errorf("core: unknown bridge message kind"))
					return
				}
			}
		}()
	})
}

func (b *legacyRobustBridge) send(frame []byte) error {
	b.wmu.Lock()
	defer b.wmu.Unlock()
	conn, err := b.current()
	for {
		if err != nil {
			return err
		}
		serr := conn.Send(frame)
		if serr == nil {
			return nil
		}
		conn, err = b.redial(conn, serr)
	}
}

func (b *legacyRobustBridge) SendData(channel string, seq uint64, data []float64) error {
	e := wire.NewEncoder(nil)
	e.PutByte(netData)
	e.PutString(channel)
	e.PutUint64(seq)
	e.PutFloat64s(data)
	return b.send(e.Bytes())
}

func (b *legacyRobustBridge) RecvData(channel string, seq uint64) ([]float64, error) {
	b.pump()
	return b.in.take(dataKey{channel: channel, seq: seq})
}

func (b *legacyRobustBridge) RecvLatest(channel string) (uint64, []float64, error) {
	b.pump()
	return b.in.takeLatest(channel)
}

func (b *legacyRobustBridge) SendControl(msg []byte) error {
	e := wire.NewEncoder(nil)
	e.PutByte(netCtl)
	e.PutBytes(msg)
	return b.send(e.Bytes())
}

func (b *legacyRobustBridge) RecvControl() ([]byte, error) {
	b.pump()
	msg, ok := <-b.ctl
	if !ok {
		_, err := b.current()
		if err == nil {
			err = fmt.Errorf("core: bridge closed")
		}
		return nil, err
	}
	return msg, nil
}

// rawEchoServer is the pre-session echo peer: plain transport conns, no
// session handshake.
func rawEchoServer(t *testing.T) transport.Listener {
	t.Helper()
	lst, err := transport.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lst.Close() })
	go func() {
		for {
			c, err := lst.Accept()
			if err != nil {
				return
			}
			go func(c transport.Conn) {
				defer c.Close()
				for {
					msg, err := c.Recv()
					if err != nil {
						return
					}
					d := wire.NewDecoder(msg)
					if d.Byte() != netData {
						continue
					}
					_ = d.String()
					seq := d.Uint64()
					data := d.Float64s()
					if d.Err() != nil {
						continue
					}
					e := wire.NewEncoder(nil)
					e.PutByte(netData)
					e.PutString("echo")
					e.PutUint64(seq)
					e.PutFloat64s(data)
					if c.Send(e.Bytes()) != nil {
						return
					}
				}
			}(c)
		}
	}()
	return lst
}

// lossyDialer hands out one faulty first connection — its send direction
// blackholes frames after the first and hard-fails after the second,
// modeling a link whose kernel keeps accepting writes for a while after
// the path is gone — and clean connections after that.
func lossyDialer(t *testing.T, addr string, blackholeAfter, failAfter int) func() (transport.Conn, error) {
	t.Helper()
	dials := 0
	var mu sync.Mutex
	return func() (transport.Conn, error) {
		mu.Lock()
		dials++
		n := dials
		mu.Unlock()
		c, err := transport.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		if n == 1 {
			return faultconn.Wrap(c, faultconn.Scenario{
				Seed: 11,
				Send: faultconn.Faults{BlackholeAfter: blackholeAfter, FailAfter: failAfter},
			}), nil
		}
		return c, nil
	}
}

// TestLegacyBridgeLosesBlackholedFrame demonstrates the pre-session
// redial hole: frame 2's Send returns nil (the kernel/faultconn accepted
// it) but the peer never sees it; frame 3 errors and is retried on the
// fresh connection, so frames 1 and 3 arrive while frame 2 is lost
// forever — the bridge lied about delivery.
func TestLegacyBridgeLosesBlackholedFrame(t *testing.T) {
	lst := rawEchoServer(t)
	rb, err := newLegacyRobustBridge(lossyDialer(t, lst.Addr(), 1, 2), 5, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// Round-trip frame 1 first so the bridge's pump is live on the first
	// connection (the legacy pump follows redials once started).
	if err := rb.SendData("ping", 1, []float64{1}); err != nil {
		t.Fatalf("seq 1 send: %v", err)
	}
	if got, err := rb.RecvData("echo", 1); err != nil || len(got) != 1 {
		t.Fatalf("seq 1 round-trip: %v %v", got, err)
	}
	for seq := uint64(2); seq <= 3; seq++ {
		if err := rb.SendData("ping", seq, []float64{float64(seq)}); err != nil {
			t.Fatalf("seq %d send reported failure: %v", seq, err)
		}
	}
	// Frame 3 round-trips via redial + retry.
	if got, err := rb.RecvData("echo", 3); err != nil || len(got) != 1 {
		t.Fatalf("seq 3 round-trip: %v %v", got, err)
	}
	// Frame 2 was acked to the caller but never delivered: the echo never
	// comes. This wait is the bug being pinned.
	got2 := make(chan struct{})
	go func() {
		if _, err := rb.RecvData("echo", 2); err == nil {
			close(got2)
		}
	}()
	select {
	case <-got2:
		t.Fatal("legacy bridge delivered the blackholed frame — the motivating bug no longer reproduces")
	case <-time.After(500 * time.Millisecond):
		// Lost, as the legacy design permits. The session bridge test
		// below proves the rewrite closes exactly this hole.
	}
}

// TestSessionBridgeDeliversBlackholedFrame runs the same lossy first
// connection against the session-backed NewRobustBridge. The session
// hello consumes the first frame slot, so the blackhole/fail counts
// shift by one to hit the same data frames; the replay buffer re-sends
// the unacknowledged frame after the redial and everything arrives
// exactly once.
func TestSessionBridgeDeliversBlackholedFrame(t *testing.T) {
	lst := echoServer(t)
	rb, err := NewRobustBridge(lossyDialer(t, lst.Addr(), 2, 3), 5, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 3; seq++ {
		if err := rb.SendData("ping", seq, []float64{float64(seq)}); err != nil {
			t.Fatalf("seq %d send: %v", seq, err)
		}
	}
	for seq := uint64(1); seq <= 3; seq++ {
		got, err := rb.RecvData("echo", seq)
		if err != nil || len(got) != 1 || got[0] != float64(seq) {
			t.Fatalf("seq %d round-trip: %v %v", seq, got, err)
		}
	}
}
