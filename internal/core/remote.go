package core

// Remote payload codec for heartbeat pings, so a failure detector can
// probe ranks on the far side of a comm.ConnectPeer link: the ping
// crosses the wire under tag 3 (see internal/redist/remote.go for the
// module-wide tag registry) and the pong — a bare uint64 sequence number
// — travels through comm's generic codec.

import (
	"fmt"

	"mxn/internal/comm"
	"mxn/internal/wire"
)

func init() {
	comm.RegisterRemotePayload(3, comm.RemoteCodec{
		Encode: func(e *wire.Encoder, v any) bool {
			p, ok := v.(heartbeatPing)
			if !ok {
				return false
			}
			e.PutUvarint(uint64(p.From))
			e.PutUint64(p.Seq)
			return true
		},
		Decode: func(d *wire.Decoder) (any, error) {
			var p heartbeatPing
			p.From = int(d.Uvarint())
			p.Seq = d.Uint64()
			if d.Err() != nil {
				return nil, fmt.Errorf("core: corrupt remote heartbeat ping: %w", d.Err())
			}
			return p, nil
		},
	})
}
