package core

import (
	"errors"
	"sort"
	"testing"

	"mxn/internal/dad"
)

func hubField(t *testing.T, name string, dims []int, ax dad.AxisDist) *dad.Descriptor {
	t.Helper()
	tp, err := dad.NewTemplate(dims, []dad.AxisDist{ax})
	if err != nil {
		t.Fatal(err)
	}
	d, err := dad.NewDescriptor(name, dad.Float64, dad.ReadWrite, tp)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestHubResizeReblocksAllFields(t *testing.T) {
	h := NewHub("sim", 4, nil)
	if err := h.Register(hubField(t, "temperature", []int{32}, dad.BlockAxis(4))); err != nil {
		t.Fatal(err)
	}
	if err := h.Register(hubField(t, "pressure", []int{20}, dad.CyclicAxis(4))); err != nil {
		t.Fatal(err)
	}
	if err := h.Resize(6); err != nil {
		t.Fatal(err)
	}
	if h.NumProcs() != 6 {
		t.Fatalf("hub width %d after resize, want 6", h.NumProcs())
	}
	// Every field is re-derived over the new width, same family — this is
	// what a joining rank reads to bootstrap its local buffers.
	temp, ok := h.Field("temperature")
	if !ok {
		t.Fatal("temperature lost by resize")
	}
	if temp.Template.NumProcs() != 6 {
		t.Fatalf("temperature spans %d ranks, want 6", temp.Template.NumProcs())
	}
	wantT, _ := dad.NewTemplate([]int{32}, []dad.AxisDist{dad.BlockAxis(6)})
	if temp.Template.Key() != wantT.Key() {
		t.Fatalf("temperature reblocked to %q", temp.Template.Key())
	}
	joinerElems := temp.Template.LocalCount(5)
	if joinerElems != 32-5*6 { // ceil(32/6)=6 per rank, tail rank gets 2
		t.Fatalf("joining rank owns %d elements, want 2", joinerElems)
	}
	press, _ := h.Field("pressure")
	if press.Template.NumProcs() != 6 {
		t.Fatal("pressure not reblocked")
	}
	names := h.Fields()
	sort.Strings(names)
	if len(names) != 2 || names[0] != "pressure" || names[1] != "temperature" {
		t.Fatalf("Fields() = %v", names)
	}
	// Resize to the current width is a no-op.
	if err := h.Resize(6); err != nil {
		t.Fatal(err)
	}
	// New registrations must match the new width.
	if err := h.Register(hubField(t, "late", []int{12}, dad.BlockAxis(4))); err == nil {
		t.Fatal("old-width registration accepted after resize")
	}
}

func TestHubResizeAllOrNothing(t *testing.T) {
	h := NewHub("sim", 2, nil)
	if err := h.Register(hubField(t, "good", []int{16}, dad.BlockAxis(2))); err != nil {
		t.Fatal(err)
	}
	// An implicit owner map cannot be re-derived, so the whole resize
	// must fail and leave every field at the old width.
	if err := h.Register(hubField(t, "stuck", []int{4}, dad.ImplicitAxis(2, []int{0, 1, 1, 0}))); err != nil {
		t.Fatal(err)
	}
	err := h.Resize(3)
	var rbErr *dad.ReblockError
	if !errors.As(err, &rbErr) {
		t.Fatalf("resize over implicit field: err = %v, want wrapped *dad.ReblockError", err)
	}
	if h.NumProcs() != 2 {
		t.Fatalf("failed resize changed width to %d", h.NumProcs())
	}
	good, _ := h.Field("good")
	if good.Template.NumProcs() != 2 {
		t.Fatal("failed resize mutated a field")
	}
	if err := h.Resize(0); err == nil {
		t.Fatal("nonpositive width accepted")
	}
	if _, ok := h.Field("missing"); ok {
		t.Fatal("Field invented a descriptor")
	}
}
