package core

import (
	"fmt"
	"sync"

	"mxn/internal/dad"
	"mxn/internal/schedule"
	"mxn/internal/wire"
)

// Hub is one side's M×N component: the cohort-shared state through which
// a parallel component registers distributed data fields and negotiates
// connections with a peer hub across a Bridge.
//
// A Hub is shared by all ranks of its cohort (instances of the M×N
// component are co-located with the application's processes; here the
// cohort shares one address space, so the component state is one value).
// All methods are safe for concurrent use by the cohort's ranks.
type Hub struct {
	name   string
	np     int
	bridge Bridge

	mu     sync.Mutex
	fields map[string]*field
	conns  map[string]*Connection
}

// field is one registered distributed data field.
type field struct {
	desc *dad.Descriptor
}

// NewHub creates an M×N component instance cohort of np ranks attached to
// one end of a bridge. name appears in errors and connection identifiers.
func NewHub(name string, np int, bridge Bridge) *Hub {
	return &Hub{
		name:   name,
		np:     np,
		bridge: bridge,
		fields: map[string]*field{},
		conns:  map[string]*Connection{},
	}
}

// NumProcs returns the cohort width (the current one, if the hub has
// been resized).
func (h *Hub) NumProcs() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.np
}

// Register publishes a distributed data field for M×N transfers. The
// descriptor's template must be decomposed over exactly the hub's cohort,
// and the access mode constrains which transfer directions the field may
// join (read = outbound source, write = inbound destination).
func (h *Hub) Register(desc *dad.Descriptor) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if desc.Template.NumProcs() != h.np {
		return fmt.Errorf("core: field %q is decomposed over %d ranks, hub %q has %d",
			desc.Name, desc.Template.NumProcs(), h.name, h.np)
	}
	if _, dup := h.fields[desc.Name]; dup {
		return fmt.Errorf("core: field %q already registered", desc.Name)
	}
	h.fields[desc.Name] = &field{desc: desc}
	return nil
}

// Unregister removes a field. Connections already established keep their
// schedules.
func (h *Hub) Unregister(name string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.fields, name)
}

// Sync selects the synchronization option of a persistent connection
// (the CUMULVS-style "variety of synchronization options").
type Sync int

// Synchronization options.
const (
	// SyncEachFrame: every produced frame is consumed exactly once; the
	// consumer sees every epoch in order.
	SyncEachFrame Sync = iota
	// FreeRunning: the producer never waits; the consumer samples the
	// newest available frame and older ones are discarded. Suited to
	// visualization, where only the current state matters.
	FreeRunning
)

// ConnOpts configures a connection at creation time.
type ConnOpts struct {
	// Persistent marks a channel intended for recurring periodic
	// transfers; one-shot connections perform a single transfer per
	// DataReady pair either way, so this is documentation plus validation
	// for Sync.
	Persistent bool
	// Sync selects the persistent synchronization option.
	Sync Sync
}

// Direction tells Propose whether the local field is the source or the
// destination of the connection — which is what lets either side (or a
// third party driving one side) initiate.
type Direction int

// Connection directions relative to the proposing hub.
const (
	AsSource Direction = iota
	AsDestination
)

// control protocol message kinds.
const (
	ctlPropose byte = 1
	ctlAccept  byte = 2
	ctlReject  byte = 3
)

// Propose negotiates a connection with the peer hub: the local field
// localField couples to the peer's remoteField, with the local side acting
// as dir. The peer must be in Accept. The returned connection is ready for
// DataReady calls.
func (h *Hub) Propose(connID, localField, remoteField string, dir Direction, opts ConnOpts) (*Connection, error) {
	f, err := h.lookupField(localField)
	if err != nil {
		return nil, err
	}
	if dir == AsSource && !f.desc.Mode.CanRead() {
		return nil, fmt.Errorf("core: field %q mode %s forbids outbound transfers", localField, f.desc.Mode)
	}
	if dir == AsDestination && !f.desc.Mode.CanWrite() {
		return nil, fmt.Errorf("core: field %q mode %s forbids inbound transfers", localField, f.desc.Mode)
	}

	e := wire.NewEncoder(nil)
	e.PutByte(ctlPropose)
	e.PutString(connID)
	e.PutString(remoteField)
	e.PutBool(dir == AsSource) // proposer is source?
	e.PutBool(opts.Persistent)
	e.PutByte(byte(opts.Sync))
	f.desc.Encode(e)
	if err := h.bridge.SendControl(e.Bytes()); err != nil {
		return nil, err
	}
	reply, err := h.bridge.RecvControl()
	if err != nil {
		return nil, err
	}
	d := wire.NewDecoder(reply)
	switch d.Byte() {
	case ctlReject:
		return nil, fmt.Errorf("core: peer rejected connection %q: %s", connID, d.String())
	case ctlAccept:
		peerDesc, err := dad.DecodeDescriptor(d)
		if err != nil {
			return nil, err
		}
		return h.finishConnection(connID, f.desc, peerDesc, dir, opts)
	default:
		return nil, fmt.Errorf("core: unexpected control reply for %q", connID)
	}
}

// Accept waits for one incoming connection proposal, validates it against
// the registered fields and completes the negotiation. It returns the
// established connection, whose Direction is relative to this hub.
func (h *Hub) Accept() (*Connection, error) {
	msg, err := h.bridge.RecvControl()
	if err != nil {
		return nil, err
	}
	d := wire.NewDecoder(msg)
	if kind := d.Byte(); kind != ctlPropose {
		return nil, fmt.Errorf("core: unexpected control message kind %d", kind)
	}
	connID := d.String()
	localField := d.String()
	proposerIsSource := d.Bool()
	opts := ConnOpts{Persistent: d.Bool(), Sync: Sync(d.Byte())}
	peerDesc, derr := dad.DecodeDescriptor(d)

	reject := func(reason string) (*Connection, error) {
		e := wire.NewEncoder(nil)
		e.PutByte(ctlReject)
		e.PutString(reason)
		if err := h.bridge.SendControl(e.Bytes()); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("core: rejected connection %q: %s", connID, reason)
	}
	if derr != nil {
		return reject(fmt.Sprintf("bad descriptor: %v", derr))
	}
	f, err := h.lookupField(localField)
	if err != nil {
		return reject(err.Error())
	}
	dir := AsSource
	if proposerIsSource {
		dir = AsDestination
	}
	if dir == AsSource && !f.desc.Mode.CanRead() {
		return reject(fmt.Sprintf("field %q mode %s forbids outbound transfers", localField, f.desc.Mode))
	}
	if dir == AsDestination && !f.desc.Mode.CanWrite() {
		return reject(fmt.Sprintf("field %q mode %s forbids inbound transfers", localField, f.desc.Mode))
	}
	if !f.desc.Template.Conforms(peerDesc.Template) {
		return reject("templates do not conform")
	}

	e := wire.NewEncoder(nil)
	e.PutByte(ctlAccept)
	f.desc.Encode(e)
	if err := h.bridge.SendControl(e.Bytes()); err != nil {
		return nil, err
	}
	return h.finishConnection(connID, f.desc, peerDesc, dir, opts)
}

// Connect is the third-party initiation path for two co-located hubs: a
// controller that holds both hubs couples srcField on src to dstField on
// dst, without either component knowing about the connection — the
// property the paper highlights for incorporating legacy codes.
func Connect(connID string, src *Hub, srcField string, dst *Hub, dstField string, opts ConnOpts) (srcConn, dstConn *Connection, err error) {
	type res struct {
		c   *Connection
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := dst.Accept()
		ch <- res{c, err}
	}()
	srcConn, err = src.Propose(connID, srcField, dstField, AsSource, opts)
	r := <-ch
	if err != nil {
		return nil, nil, err
	}
	if r.err != nil {
		return nil, nil, r.err
	}
	return srcConn, r.c, nil
}

// finishConnection builds the schedule and installs the connection.
func (h *Hub) finishConnection(connID string, local, peer *dad.Descriptor, dir Direction, opts ConnOpts) (*Connection, error) {
	if !local.Template.Conforms(peer.Template) {
		return nil, fmt.Errorf("core: connection %q: templates do not conform", connID)
	}
	var s *schedule.Schedule
	var err error
	if dir == AsSource {
		s, err = schedule.Build(local.Template, peer.Template)
	} else {
		s, err = schedule.Build(peer.Template, local.Template)
	}
	if err != nil {
		return nil, err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	c := &Connection{
		ID:    connID,
		hub:   h,
		dir:   dir,
		sched: s,
		opts:  opts,
		local: local,
		seqs:  make([]uint64, h.np),
	}
	if _, dup := h.conns[connID]; dup {
		return nil, fmt.Errorf("core: connection %q already exists", connID)
	}
	h.conns[connID] = c
	return c, nil
}

func (h *Hub) lookupField(name string) (*field, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	f, ok := h.fields[name]
	if !ok {
		return nil, fmt.Errorf("core: hub %q has no field %q", h.name, name)
	}
	return f, nil
}

// Connection returns an established connection by id.
func (h *Hub) Connection(id string) (*Connection, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	c, ok := h.conns[id]
	return c, ok
}
