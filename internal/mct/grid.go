package mct

import (
	"fmt"
	"math"

	"mxn/internal/comm"
)

// GeneralGrid describes the physical support of a model's data points:
// per-point coordinate values, per-point cell weights (areas/volumes) for
// integrals, and an optional mask (e.g. the land/ocean mask the paper
// mentions). The grid is dimension-agnostic and supports unstructured
// point sets: it is just coordinates and weights over a point list.
type GeneralGrid struct {
	coords  []string
	weights string
	av      *AttrVect
	mask    []bool
}

// NewGeneralGrid creates a grid over npoints points with named coordinate
// attributes and a weight attribute. Extra per-point descriptor attributes
// may be added through the underlying vector.
func NewGeneralGrid(coords []string, weightAttr string, npoints int) (*GeneralGrid, error) {
	if len(coords) == 0 {
		return nil, fmt.Errorf("mct: grid needs at least one coordinate")
	}
	attrs := append(append([]string(nil), coords...), weightAttr)
	av, err := NewAttrVect(attrs, npoints)
	if err != nil {
		return nil, err
	}
	return &GeneralGrid{coords: coords, weights: weightAttr, av: av}, nil
}

// Points returns the number of grid points.
func (g *GeneralGrid) Points() int { return g.av.Len() }

// NumDims returns the coordinate dimensionality.
func (g *GeneralGrid) NumDims() int { return len(g.coords) }

// Coord returns the named coordinate attribute's storage.
func (g *GeneralGrid) Coord(name string) []float64 { return g.av.Field(name) }

// Weights returns the integration weight per point.
func (g *GeneralGrid) Weights() []float64 { return g.av.Field(g.weights) }

// SetMask installs a validity mask: false points are excluded from
// integrals and merges.
func (g *GeneralGrid) SetMask(mask []bool) error {
	if len(mask) != g.Points() {
		return fmt.Errorf("mct: mask has %d entries for %d points", len(mask), g.Points())
	}
	g.mask = append([]bool(nil), mask...)
	return nil
}

// Mask returns the mask, or nil when every point is valid.
func (g *GeneralGrid) Mask() []bool { return g.mask }

// Masked reports whether point i is excluded.
func (g *GeneralGrid) Masked(i int) bool { return g.mask != nil && !g.mask[i] }

// LatLonGrid builds a global regular latitude–longitude grid with
// cell-area weights proportional to cos(latitude), points ordered
// latitude-major. It is the workhorse grid of the climate-coupling
// examples.
func LatLonGrid(nlat, nlon int) *GeneralGrid {
	g, err := NewGeneralGrid([]string{"lat", "lon"}, "area", nlat*nlon)
	if err != nil {
		panic(err)
	}
	lat := g.Coord("lat")
	lon := g.Coord("lon")
	area := g.Weights()
	dlat := 180.0 / float64(nlat)
	dlon := 360.0 / float64(nlon)
	k := 0
	for i := 0; i < nlat; i++ {
		phi := -90 + (float64(i)+0.5)*dlat
		w := math.Cos(phi * math.Pi / 180)
		for j := 0; j < nlon; j++ {
			lat[k] = phi
			lon[k] = -180 + (float64(j)+0.5)*dlon
			area[k] = w * dlat * dlon
			k++
		}
	}
	return g
}

// LocalGrid extracts the sub-grid of the points a rank owns under a
// segment map (coordinates, weights and mask restricted to the local
// point list).
func (g *GeneralGrid) LocalGrid(m *GlobalSegMap, rank int) (*GeneralGrid, error) {
	if m.GSize() != g.Points() {
		return nil, fmt.Errorf("mct: map of %d points for grid of %d", m.GSize(), g.Points())
	}
	pts := m.LocalPoints(rank)
	out, err := NewGeneralGrid(g.coords, g.weights, len(pts))
	if err != nil {
		return nil, err
	}
	for _, name := range append(append([]string(nil), g.coords...), g.weights) {
		src := g.av.Field(name)
		dst := out.av.Field(name)
		for li, gi := range pts {
			dst[li] = src[gi]
		}
	}
	if g.mask != nil {
		mask := make([]bool, len(pts))
		for li, gi := range pts {
			mask[li] = g.mask[gi]
		}
		if err := out.SetMask(mask); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// SpatialIntegral computes the global weighted integral of one attribute
// over a distributed grid: sum of value·weight over unmasked points,
// reduced across the communicator. Every rank of c must call it.
func SpatialIntegral(c *comm.Comm, av *AttrVect, attr string, grid *GeneralGrid) (float64, error) {
	if av.Len() != grid.Points() {
		return 0, fmt.Errorf("mct: vector of %d points on grid of %d", av.Len(), grid.Points())
	}
	vals := av.Field(attr)
	w := grid.Weights()
	local := 0.0
	for i, v := range vals {
		if grid.Masked(i) {
			continue
		}
		local += v * w[i]
	}
	return c.AllreduceFloat64(local, comm.OpSum), nil
}

// SpatialAverage computes the weighted mean of one attribute over the
// unmasked points of a distributed grid.
func SpatialAverage(c *comm.Comm, av *AttrVect, attr string, grid *GeneralGrid) (float64, error) {
	integral, err := SpatialIntegral(c, av, attr, grid)
	if err != nil {
		return 0, err
	}
	w := grid.Weights()
	local := 0.0
	for i := range w {
		if grid.Masked(i) {
			continue
		}
		local += w[i]
	}
	total := c.AllreduceFloat64(local, comm.OpSum)
	if total == 0 {
		return 0, fmt.Errorf("mct: zero total weight")
	}
	return integral / total, nil
}

// PairedIntegralCheck verifies flux conservation across an interpolation:
// the integrals of attr on the source and destination sides must agree to
// the given relative tolerance — the "paired integrals for use in
// conservation of global flux integrals in inter-grid interpolation".
// Both integrals must already be globally reduced.
func PairedIntegralCheck(srcIntegral, dstIntegral, tol float64) error {
	if !approxEqual(srcIntegral, dstIntegral, tol) {
		return fmt.Errorf("mct: flux not conserved: source integral %g, destination %g", srcIntegral, dstIntegral)
	}
	return nil
}
