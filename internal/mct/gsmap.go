package mct

import (
	"fmt"
	"sort"

	"mxn/internal/dad"
)

// Segment is one contiguous run of global indices assigned to a rank.
type Segment struct {
	GStart, Length, Owner int
}

// GlobalSegMap is MCT's domain decomposition descriptor: an ordered list
// of segments that together tile the global index space [0, GSize). It is
// the 1-D, segment-oriented cousin of the CCA DAD, and converts to an
// explicit DAD template so the generic schedule machinery can serve it.
type GlobalSegMap struct {
	gsize int
	np    int
	segs  []Segment

	rankSegs  [][]int // rank -> indices into segs, in registration order
	rankSizes []int
}

// NewGlobalSegMap validates and builds a segment map over np ranks. The
// segments must not overlap and must cover [0, gsize) completely.
func NewGlobalSegMap(gsize, np int, segs []Segment) (*GlobalSegMap, error) {
	if gsize < 0 || np < 1 {
		return nil, fmt.Errorf("mct: bad segment map shape gsize=%d np=%d", gsize, np)
	}
	g := &GlobalSegMap{
		gsize:     gsize,
		np:        np,
		segs:      append([]Segment(nil), segs...),
		rankSegs:  make([][]int, np),
		rankSizes: make([]int, np),
	}
	covered := 0
	sorted := append([]Segment(nil), segs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].GStart < sorted[j].GStart })
	prevEnd := 0
	for _, s := range sorted {
		if s.Length <= 0 {
			return nil, fmt.Errorf("mct: segment at %d has length %d", s.GStart, s.Length)
		}
		if s.Owner < 0 || s.Owner >= np {
			return nil, fmt.Errorf("mct: segment at %d owned by rank %d of %d", s.GStart, s.Owner, np)
		}
		if s.GStart < prevEnd {
			return nil, fmt.Errorf("mct: segment at %d overlaps previous (ends at %d)", s.GStart, prevEnd)
		}
		if s.GStart > prevEnd {
			return nil, fmt.Errorf("mct: gap in segment map at [%d,%d)", prevEnd, s.GStart)
		}
		prevEnd = s.GStart + s.Length
		covered += s.Length
	}
	if covered != gsize {
		return nil, fmt.Errorf("mct: segments cover %d of %d", covered, gsize)
	}
	for i, s := range g.segs {
		g.rankSegs[s.Owner] = append(g.rankSegs[s.Owner], i)
		g.rankSizes[s.Owner] += s.Length
	}
	return g, nil
}

// BlockMap builds the simple balanced block decomposition of gsize points
// over np ranks.
func BlockMap(gsize, np int) *GlobalSegMap {
	segs := make([]Segment, 0, np)
	b := (gsize + np - 1) / np
	for r := 0; r < np; r++ {
		lo := r * b
		hi := lo + b
		if hi > gsize {
			hi = gsize
		}
		if lo < hi {
			segs = append(segs, Segment{GStart: lo, Length: hi - lo, Owner: r})
		}
	}
	g, err := NewGlobalSegMap(gsize, np, segs)
	if err != nil {
		panic(err) // construction is correct by design
	}
	return g
}

// GSize returns the global number of points.
func (g *GlobalSegMap) GSize() int { return g.gsize }

// NumProcs returns the number of ranks in the decomposition.
func (g *GlobalSegMap) NumProcs() int { return g.np }

// LocalSize returns the number of points rank owns.
func (g *GlobalSegMap) LocalSize(rank int) int { return g.rankSizes[rank] }

// OwnerOf returns the rank owning global point gidx.
func (g *GlobalSegMap) OwnerOf(gidx int) int {
	for _, s := range g.segs {
		if gidx >= s.GStart && gidx < s.GStart+s.Length {
			return s.Owner
		}
	}
	panic(fmt.Sprintf("mct: point %d outside map of %d", gidx, g.gsize))
}

// LocalPoints returns rank's global point indices in local storage order
// (segments in registration order, ascending within each).
func (g *GlobalSegMap) LocalPoints(rank int) []int {
	out := make([]int, 0, g.rankSizes[rank])
	for _, si := range g.rankSegs[rank] {
		s := g.segs[si]
		for k := 0; k < s.Length; k++ {
			out = append(out, s.GStart+k)
		}
	}
	return out
}

// LocalIndexOf returns the local storage position of global point gidx on
// rank, or -1 if not owned.
func (g *GlobalSegMap) LocalIndexOf(rank, gidx int) int {
	off := 0
	for _, si := range g.rankSegs[rank] {
		s := g.segs[si]
		if gidx >= s.GStart && gidx < s.GStart+s.Length {
			return off + gidx - s.GStart
		}
		off += s.Length
	}
	return -1
}

// Template converts the segment map to an explicit 1-D DAD template, so
// the generic schedule builder can compute routers. Ranks owning no points
// are legal (a key MCT property: models occupy subsets of the world).
func (g *GlobalSegMap) Template() (*dad.Template, error) {
	patches := make([]dad.Patch, 0, len(g.segs))
	for _, s := range g.segs {
		patches = append(patches, dad.NewPatch([]int{s.GStart}, []int{s.GStart + s.Length}, s.Owner))
	}
	return dad.NewExplicitTemplate([]int{g.gsize}, g.np, patches)
}
