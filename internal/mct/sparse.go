package mct

import (
	"fmt"
	"sort"

	"mxn/internal/comm"
)

// SparseMatrix holds one rank's portion of a distributed interpolation
// matrix in coordinate form, decomposed by row: a rank stores exactly the
// elements whose global row it owns under the y (destination) segment
// map. Column indices refer to the x (source) decomposition and may name
// points owned by any rank — the halo exchange built by NewMatVec fetches
// them.
type SparseMatrix struct {
	NRows, NCols int
	Rows         []int // global row indices
	Cols         []int // global column indices
	Vals         []float64
}

// Add appends one element.
func (m *SparseMatrix) Add(row, col int, val float64) {
	m.Rows = append(m.Rows, row)
	m.Cols = append(m.Cols, col)
	m.Vals = append(m.Vals, val)
}

// NNZ returns the number of stored elements.
func (m *SparseMatrix) NNZ() int { return len(m.Vals) }

// MatVec is the bound parallel multiply operator y = A·x: a local matrix
// piece plus the reusable halo-exchange plan that gathers the needed
// remote x values. Construction is collective over the model's
// communicator; Apply is then a two-step (exchange, multiply) with no
// further planning — MCT's "communication schedulers used in performing
// interpolation".
type MatVec struct {
	local      *SparseMatrix
	xMap, yMap *GlobalSegMap

	// Halo plan.
	sendIdx [][]int // peer -> local x indices to send
	recvLen []int   // peer -> number of values expected
	haloPos map[int]int
	haloLen int

	// Precomputed local element addressing.
	elemRow  []int // local row index per element
	elemHalo []int // halo position per element
}

// NewMatVec validates the local matrix piece against the maps and builds
// the halo-exchange plan. Collective: every rank of c must call it with
// its own piece. Tag reserves a namespace for the planning exchange.
func NewMatVec(c *comm.Comm, local *SparseMatrix, xMap, yMap *GlobalSegMap, tag int) (*MatVec, error) {
	rank := c.Rank()
	if xMap.NumProcs() != c.Size() || yMap.NumProcs() != c.Size() {
		return nil, fmt.Errorf("mct: maps decomposed over %d/%d ranks, communicator has %d",
			xMap.NumProcs(), yMap.NumProcs(), c.Size())
	}
	if local.NRows != yMap.GSize() || local.NCols != xMap.GSize() {
		return nil, fmt.Errorf("mct: matrix is %d×%d, maps say %d×%d",
			local.NRows, local.NCols, yMap.GSize(), xMap.GSize())
	}
	mv := &MatVec{local: local, xMap: xMap, yMap: yMap, haloPos: map[int]int{}}

	// Validate row ownership and precompute local row indices.
	mv.elemRow = make([]int, local.NNZ())
	for k, row := range local.Rows {
		li := yMap.LocalIndexOf(rank, row)
		if li < 0 {
			return nil, fmt.Errorf("mct: element %d has row %d not owned by rank %d", k, row, rank)
		}
		mv.elemRow[k] = li
	}

	// Unique needed columns, grouped by owner.
	needByOwner := make([][]int, c.Size())
	seen := map[int]bool{}
	for _, col := range local.Cols {
		if col < 0 || col >= xMap.GSize() {
			return nil, fmt.Errorf("mct: column %d outside domain of %d", col, xMap.GSize())
		}
		if !seen[col] {
			seen[col] = true
			needByOwner[xMap.OwnerOf(col)] = append(needByOwner[xMap.OwnerOf(col)], col)
		}
	}
	for _, cols := range needByOwner {
		sort.Ints(cols)
	}

	// Exchange request lists: each rank learns which of its x points every
	// peer needs.
	reqs := make([]any, c.Size())
	for p := range reqs {
		reqs[p] = needByOwner[p]
	}
	gotReqs := c.Alltoall(reqs)

	mv.sendIdx = make([][]int, c.Size())
	for p, v := range gotReqs {
		cols, _ := v.([]int)
		idx := make([]int, len(cols))
		for i, col := range cols {
			li := xMap.LocalIndexOf(rank, col)
			if li < 0 {
				return nil, fmt.Errorf("mct: rank %d asked rank %d for column %d it does not own", p, rank, col)
			}
			idx[i] = li
		}
		mv.sendIdx[p] = idx
	}

	// Halo layout: peers in rank order, each peer's columns in its sorted
	// request order.
	mv.recvLen = make([]int, c.Size())
	for p := 0; p < c.Size(); p++ {
		for _, col := range needByOwner[p] {
			mv.haloPos[col] = mv.haloLen
			mv.haloLen++
		}
		mv.recvLen[p] = len(needByOwner[p])
	}
	mv.elemHalo = make([]int, local.NNZ())
	for k, col := range local.Cols {
		mv.elemHalo[k] = mv.haloPos[col]
	}
	return mv, nil
}

// HaloSize returns the number of remote-or-local x values gathered per
// attribute on this rank.
func (mv *MatVec) HaloSize() int { return mv.haloLen }

// Apply computes y = A·x for every shared attribute, collectively across
// the communicator. x must match the x map's local size, y the y map's;
// both vectors must share attribute lists. Tag reserves a namespace per
// concurrent Apply.
func (mv *MatVec) Apply(c *comm.Comm, x, y *AttrVect, tag int) error {
	rank := c.Rank()
	if x.Len() != mv.xMap.LocalSize(rank) {
		return fmt.Errorf("mct: x has %d points, map says %d", x.Len(), mv.xMap.LocalSize(rank))
	}
	if y.Len() != mv.yMap.LocalSize(rank) {
		return fmt.Errorf("mct: y has %d points, map says %d", y.Len(), mv.yMap.LocalSize(rank))
	}
	if !x.SharesAttrs(y) {
		return fmt.Errorf("mct: x and y attribute lists differ")
	}
	na := x.NumAttrs()

	// Halo exchange: serve every peer's request list, then assemble this
	// rank's halo buffer per attribute. All attributes travel together.
	send := make([][]float64, c.Size())
	for p, idx := range mv.sendIdx {
		if len(idx) == 0 {
			continue
		}
		buf := make([]float64, na*len(idx))
		x.Export(idx, buf)
		send[p] = buf
	}
	got := c.AlltoallvFloat64(send)

	halo := make([][]float64, na)
	for a := range halo {
		halo[a] = make([]float64, mv.haloLen)
	}
	off := 0
	for p := 0; p < c.Size(); p++ {
		n := mv.recvLen[p]
		if n == 0 {
			continue
		}
		buf := got[p]
		if len(buf) != na*n {
			return fmt.Errorf("mct: halo from rank %d has %d values, want %d", p, len(buf), na*n)
		}
		for a := 0; a < na; a++ {
			copy(halo[a][off:off+n], buf[a*n:(a+1)*n])
		}
		off += n
	}

	// Local multiply, one attribute at a time over contiguous storage.
	for a := 0; a < na; a++ {
		yf := y.FieldAt(a)
		for i := range yf {
			yf[i] = 0
		}
		hf := halo[a]
		for k, v := range mv.local.Vals {
			yf[mv.elemRow[k]] += v * hf[mv.elemHalo[k]]
		}
	}
	return nil
}
