package mct

import "fmt"

// Accumulator is MCT's register for time averaging and accumulation of
// field data: components coupled at a frequency of multiple time-steps
// accumulate every step and hand the average (or running sum) to the
// coupler at exchange time.
type Accumulator struct {
	sum   *AttrVect
	count int
}

// NewAccumulator creates an empty accumulator over the given attributes
// and local length.
func NewAccumulator(attrs []string, lsize int) (*Accumulator, error) {
	av, err := NewAttrVect(attrs, lsize)
	if err != nil {
		return nil, err
	}
	return &Accumulator{sum: av}, nil
}

// Accumulate adds one sample. The sample must share lengths; matching
// attributes accumulate, others are ignored.
func (a *Accumulator) Accumulate(av *AttrVect) error {
	if err := a.sum.AddScaled(av, 1); err != nil {
		return err
	}
	a.count++
	return nil
}

// Count returns the number of accumulated samples.
func (a *Accumulator) Count() int { return a.count }

// Sum returns the running sum (a copy).
func (a *Accumulator) Sum() *AttrVect { return a.sum.Clone() }

// Average returns the time mean of the accumulated samples.
func (a *Accumulator) Average() (*AttrVect, error) {
	if a.count == 0 {
		return nil, fmt.Errorf("mct: averaging an empty accumulator")
	}
	out := a.sum.Clone()
	out.Scale(1 / float64(a.count))
	return out, nil
}

// Reset clears the register for the next coupling interval.
func (a *Accumulator) Reset() {
	a.sum.Zero()
	a.count = 0
}

// Merge blends state or flux data from multiple sources into dst using
// per-point fractional weights — the paper's example being land, ocean
// and sea-ice data merged for use by an atmosphere model. fracs[s][i] is
// source s's fraction at point i; at every point the fractions must sum
// to 1 within tol. Matching attributes are merged; attributes absent from
// a source are treated as contributing zero.
func Merge(dst *AttrVect, srcs []*AttrVect, fracs [][]float64, tol float64) error {
	if len(srcs) != len(fracs) {
		return fmt.Errorf("mct: %d sources with %d fraction sets", len(srcs), len(fracs))
	}
	n := dst.Len()
	for s, src := range srcs {
		if src.Len() != n {
			return fmt.Errorf("mct: source %d has %d points, destination has %d", s, src.Len(), n)
		}
		if len(fracs[s]) != n {
			return fmt.Errorf("mct: fraction set %d has %d points, destination has %d", s, len(fracs[s]), n)
		}
	}
	for i := 0; i < n; i++ {
		total := 0.0
		for s := range fracs {
			total += fracs[s][i]
		}
		if !approxEqual(total, 1, tol) {
			return fmt.Errorf("mct: fractions at point %d sum to %g", i, total)
		}
	}
	dst.Zero()
	for s, src := range srcs {
		f := fracs[s]
		for _, name := range dst.Attrs() {
			if !src.HasAttr(name) {
				continue
			}
			d := dst.Field(name)
			v := src.Field(name)
			for i := 0; i < n; i++ {
				d[i] += f[i] * v[i]
			}
		}
	}
	return nil
}
