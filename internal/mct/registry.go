package mct

import (
	"fmt"
	"sort"
)

// Registry is MCT's lightweight model registry: it records which world
// ranks each module (model) occupies and answers rank look-ups directly —
// the process-ID look-up table that "obviates the need for
// inter-communicators between concurrently executing modules". With the
// registry, a rank of one model addresses a rank of another by world rank
// arithmetic instead of communicator construction.
type Registry struct {
	models map[string][]int
	byRank map[int]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{models: map[string][]int{}, byRank: map[int]string{}}
}

// Register records a model's world ranks. Ranks must not already belong
// to another model.
func (r *Registry) Register(model string, worldRanks []int) error {
	if model == "" {
		return fmt.Errorf("mct: empty model name")
	}
	if _, dup := r.models[model]; dup {
		return fmt.Errorf("mct: model %q already registered", model)
	}
	if len(worldRanks) == 0 {
		return fmt.Errorf("mct: model %q has no ranks", model)
	}
	for _, wr := range worldRanks {
		if owner, taken := r.byRank[wr]; taken {
			return fmt.Errorf("mct: world rank %d already belongs to %q", wr, owner)
		}
	}
	ranks := append([]int(nil), worldRanks...)
	sort.Ints(ranks)
	r.models[model] = ranks
	for _, wr := range ranks {
		r.byRank[wr] = model
	}
	return nil
}

// RanksOf returns a model's world ranks in ascending order.
func (r *Registry) RanksOf(model string) ([]int, error) {
	ranks, ok := r.models[model]
	if !ok {
		return nil, fmt.Errorf("mct: no model %q", model)
	}
	return append([]int(nil), ranks...), nil
}

// Size returns a model's rank count.
func (r *Registry) Size(model string) (int, error) {
	ranks, err := r.RanksOf(model)
	if err != nil {
		return 0, err
	}
	return len(ranks), nil
}

// ModelAt returns the model occupying a world rank.
func (r *Registry) ModelAt(worldRank int) (string, bool) {
	m, ok := r.byRank[worldRank]
	return m, ok
}

// WorldRank translates a model's local rank to its world rank — the
// look-up that replaces intercommunicator construction.
func (r *Registry) WorldRank(model string, localRank int) (int, error) {
	ranks, err := r.RanksOf(model)
	if err != nil {
		return 0, err
	}
	if localRank < 0 || localRank >= len(ranks) {
		return 0, fmt.Errorf("mct: model %q has no local rank %d", model, localRank)
	}
	return ranks[localRank], nil
}

// LocalRank translates a world rank to a model-local rank.
func (r *Registry) LocalRank(model string, worldRank int) (int, error) {
	ranks, err := r.RanksOf(model)
	if err != nil {
		return 0, err
	}
	for i, wr := range ranks {
		if wr == worldRank {
			return i, nil
		}
	}
	return 0, fmt.Errorf("mct: world rank %d not in model %q", worldRank, model)
}

// Models lists the registered model names, sorted.
func (r *Registry) Models() []string {
	out := make([]string, 0, len(r.models))
	for m := range r.models {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}
