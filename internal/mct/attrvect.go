// Package mct reimplements the Model Coupling Toolkit layer the paper
// surveys in Section 4.5: the higher-level M×N machinery used to couple
// climate-model components. Where the generic CCA M×N component moves one
// distributed array at a time, MCT's common currency is the multi-field
// attribute vector, its decomposition descriptor is the global segment
// map, and interpolation between model grids is performed as parallel
// sparse matrix–vector multiplication — in a multi-field, cache-friendly
// fashion — with communication handled by routers built once and reused.
//
// The package provides: a lightweight model registry (module→ranks, no
// intercommunicators needed), AttrVect multi-field storage, GlobalSegMap
// decomposition descriptors, Routers for intermodule transfer and
// intramodule rearrangement, distributed SparseMatrix interpolation,
// GeneralGrid (with masking), Accumulators for time averaging, merging of
// multi-source data, and spatial integrals for conservation checks.
package mct

import (
	"fmt"
	"math"
)

// AttrVect is MCT's multi-field data storage object: a fixed set of named
// real attributes over lsize local data points. Storage is attribute-major
// (each attribute is one contiguous []float64), which is what makes
// multi-field communication and interpolation cache-friendly: operations
// sweep one field at a time over contiguous memory.
type AttrVect struct {
	attrs []string
	index map[string]int
	data  [][]float64
}

// NewAttrVect creates an attribute vector with the given fields and local
// length. Attribute names must be unique and non-empty.
func NewAttrVect(attrs []string, lsize int) (*AttrVect, error) {
	if lsize < 0 {
		return nil, fmt.Errorf("mct: negative local size %d", lsize)
	}
	av := &AttrVect{
		attrs: append([]string(nil), attrs...),
		index: make(map[string]int, len(attrs)),
		data:  make([][]float64, len(attrs)),
	}
	for i, a := range attrs {
		if a == "" {
			return nil, fmt.Errorf("mct: empty attribute name at %d", i)
		}
		if _, dup := av.index[a]; dup {
			return nil, fmt.Errorf("mct: duplicate attribute %q", a)
		}
		av.index[a] = i
		av.data[i] = make([]float64, lsize)
	}
	return av, nil
}

// MustAttrVect is NewAttrVect for statically correct construction.
func MustAttrVect(attrs []string, lsize int) *AttrVect {
	av, err := NewAttrVect(attrs, lsize)
	if err != nil {
		panic(err)
	}
	return av
}

// Len returns the number of local data points.
func (av *AttrVect) Len() int {
	if len(av.data) == 0 {
		return 0
	}
	return len(av.data[0])
}

// NumAttrs returns the number of attributes.
func (av *AttrVect) NumAttrs() int { return len(av.attrs) }

// Attrs returns the attribute names in storage order.
func (av *AttrVect) Attrs() []string { return append([]string(nil), av.attrs...) }

// HasAttr reports whether the named attribute exists.
func (av *AttrVect) HasAttr(name string) bool {
	_, ok := av.index[name]
	return ok
}

// Field returns the named attribute's storage. The slice aliases the
// vector: writes are visible to every holder.
func (av *AttrVect) Field(name string) []float64 {
	i, ok := av.index[name]
	if !ok {
		panic(fmt.Sprintf("mct: no attribute %q", name))
	}
	return av.data[i]
}

// FieldAt returns attribute i's storage by index.
func (av *AttrVect) FieldAt(i int) []float64 { return av.data[i] }

// SharesAttrs reports whether other has exactly the same attribute list.
func (av *AttrVect) SharesAttrs(other *AttrVect) bool {
	if len(av.attrs) != len(other.attrs) {
		return false
	}
	for i, a := range av.attrs {
		if other.attrs[i] != a {
			return false
		}
	}
	return true
}

// Zero clears every attribute.
func (av *AttrVect) Zero() {
	for _, f := range av.data {
		for i := range f {
			f[i] = 0
		}
	}
}

// Copy copies matching attributes from src at the same local indices.
// Attributes missing on either side are skipped; lengths must match.
func (av *AttrVect) Copy(src *AttrVect) error {
	if src.Len() != av.Len() {
		return fmt.Errorf("mct: copy between lengths %d and %d", src.Len(), av.Len())
	}
	for name, i := range av.index {
		if j, ok := src.index[name]; ok {
			copy(av.data[i], src.data[j])
		}
	}
	return nil
}

// Scale multiplies every attribute by s.
func (av *AttrVect) Scale(s float64) {
	for _, f := range av.data {
		for i := range f {
			f[i] *= s
		}
	}
}

// AddScaled adds s*src to av for matching attributes.
func (av *AttrVect) AddScaled(src *AttrVect, s float64) error {
	if src.Len() != av.Len() {
		return fmt.Errorf("mct: accumulate between lengths %d and %d", src.Len(), av.Len())
	}
	for name, i := range av.index {
		j, ok := src.index[name]
		if !ok {
			continue
		}
		dst, from := av.data[i], src.data[j]
		for k := range dst {
			dst[k] += s * from[k]
		}
	}
	return nil
}

// Clone returns a deep copy.
func (av *AttrVect) Clone() *AttrVect {
	out := MustAttrVect(av.attrs, av.Len())
	for i := range av.data {
		copy(out.data[i], av.data[i])
	}
	return out
}

// Export flattens the points at the given local indices into a buffer of
// NumAttrs()*len(idx) values, attribute-major. Used by routers.
func (av *AttrVect) Export(idx []int, out []float64) {
	k := 0
	for _, f := range av.data {
		for _, i := range idx {
			out[k] = f[i]
			k++
		}
	}
}

// Import scatters a buffer written by Export into the given local indices.
func (av *AttrVect) Import(idx []int, in []float64) {
	k := 0
	for _, f := range av.data {
		for _, i := range idx {
			f[i] = in[k]
			k++
		}
	}
}

// approxEqual is shared by conservation checks.
func approxEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}
