package mct

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"mxn/internal/comm"
)

func TestAttrVectBasics(t *testing.T) {
	av, err := NewAttrVect([]string{"t", "q"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if av.Len() != 5 || av.NumAttrs() != 2 {
		t.Fatalf("shape %d×%d", av.NumAttrs(), av.Len())
	}
	if !av.HasAttr("t") || av.HasAttr("x") {
		t.Error("HasAttr wrong")
	}
	tf := av.Field("t")
	for i := range tf {
		tf[i] = float64(i)
	}
	if av.Field("t")[3] != 3 {
		t.Error("Field does not alias storage")
	}
	cl := av.Clone()
	tf[0] = 99
	if cl.Field("t")[0] != 0 {
		t.Error("Clone is shallow")
	}
	av.Scale(2)
	if av.Field("t")[1] != 2 {
		t.Error("Scale wrong")
	}
	av.Zero()
	if av.Field("t")[1] != 0 {
		t.Error("Zero wrong")
	}
}

func TestAttrVectValidation(t *testing.T) {
	if _, err := NewAttrVect([]string{"a", "a"}, 2); err == nil {
		t.Error("duplicate attribute accepted")
	}
	if _, err := NewAttrVect([]string{""}, 2); err == nil {
		t.Error("empty attribute accepted")
	}
	if _, err := NewAttrVect([]string{"a"}, -1); err == nil {
		t.Error("negative size accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("Field on missing attribute did not panic")
		}
	}()
	MustAttrVect([]string{"a"}, 1).Field("b")
}

func TestAttrVectCopyAndAddScaled(t *testing.T) {
	a := MustAttrVect([]string{"t", "q"}, 3)
	b := MustAttrVect([]string{"t", "r"}, 3)
	for i := 0; i < 3; i++ {
		b.Field("t")[i] = float64(i + 1)
		b.Field("r")[i] = 100
	}
	if err := a.Copy(b); err != nil {
		t.Fatal(err)
	}
	if a.Field("t")[2] != 3 || a.Field("q")[2] != 0 {
		t.Error("Copy matched wrong attributes")
	}
	if err := a.AddScaled(b, 2); err != nil {
		t.Fatal(err)
	}
	if a.Field("t")[2] != 9 {
		t.Errorf("AddScaled: %v", a.Field("t")[2])
	}
	short := MustAttrVect([]string{"t"}, 2)
	if err := a.Copy(short); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestAttrVectExportImport(t *testing.T) {
	av := MustAttrVect([]string{"a", "b"}, 4)
	for i := 0; i < 4; i++ {
		av.Field("a")[i] = float64(i)
		av.Field("b")[i] = float64(10 + i)
	}
	idx := []int{2, 0}
	buf := make([]float64, 2*2)
	av.Export(idx, buf)
	want := []float64{2, 0, 12, 10}
	for i := range want {
		if buf[i] != want[i] {
			t.Fatalf("export = %v", buf)
		}
	}
	dst := MustAttrVect([]string{"a", "b"}, 4)
	dst.Import(idx, buf)
	if dst.Field("a")[2] != 2 || dst.Field("b")[0] != 10 {
		t.Error("import wrong")
	}
}

func TestGlobalSegMapValidation(t *testing.T) {
	if _, err := NewGlobalSegMap(10, 2, []Segment{{0, 5, 0}, {5, 5, 1}}); err != nil {
		t.Errorf("valid map rejected: %v", err)
	}
	bad := []struct {
		name string
		segs []Segment
	}{
		{"gap", []Segment{{0, 4, 0}, {5, 5, 1}}},
		{"overlap", []Segment{{0, 6, 0}, {5, 5, 1}}},
		{"short", []Segment{{0, 5, 0}}},
		{"bad owner", []Segment{{0, 10, 7}}},
		{"zero len", []Segment{{0, 0, 0}, {0, 10, 0}}},
	}
	for _, c := range bad {
		if _, err := NewGlobalSegMap(10, 2, c.segs); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
}

func TestGlobalSegMapQueries(t *testing.T) {
	// Interleaved ownership: rank 0 gets [0,3) and [7,10), rank 1 [3,7).
	g, err := NewGlobalSegMap(10, 2, []Segment{{0, 3, 0}, {3, 4, 1}, {7, 3, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if g.LocalSize(0) != 6 || g.LocalSize(1) != 4 {
		t.Errorf("sizes %d %d", g.LocalSize(0), g.LocalSize(1))
	}
	if g.OwnerOf(2) != 0 || g.OwnerOf(3) != 1 || g.OwnerOf(8) != 0 {
		t.Error("owners wrong")
	}
	pts := g.LocalPoints(0)
	want := []int{0, 1, 2, 7, 8, 9}
	for i := range want {
		if pts[i] != want[i] {
			t.Fatalf("points = %v", pts)
		}
	}
	if g.LocalIndexOf(0, 8) != 4 || g.LocalIndexOf(1, 8) != -1 {
		t.Error("LocalIndexOf wrong")
	}
	// Template agrees with the map.
	tpl, err := g.Template()
	if err != nil {
		t.Fatal(err)
	}
	for gi := 0; gi < 10; gi++ {
		if tpl.OwnerOf([]int{gi}) != g.OwnerOf(gi) {
			t.Errorf("template owner of %d differs", gi)
		}
		r := g.OwnerOf(gi)
		if tpl.LocalOffset(r, []int{gi}) != g.LocalIndexOf(r, gi) {
			t.Errorf("template offset of %d differs", gi)
		}
	}
}

func TestBlockMap(t *testing.T) {
	g := BlockMap(10, 3)
	if g.LocalSize(0) != 4 || g.LocalSize(1) != 4 || g.LocalSize(2) != 2 {
		t.Error("block map sizes wrong")
	}
	// A model can be wider than its data.
	g2 := BlockMap(2, 4)
	if g2.LocalSize(3) != 0 {
		t.Error("empty rank has points")
	}
}

func TestRouterIntermodule(t *testing.T) {
	// Atmosphere model on ranks 0-1, ocean on ranks 2-4, different
	// decompositions of 30 points; transfer a 2-field vector.
	const gsize, mA, mB = 30, 2, 3
	atmMap := BlockMap(gsize, mA)
	ocnMap, err := NewGlobalSegMap(gsize, mB, []Segment{
		{0, 10, 2}, {10, 10, 1}, {20, 10, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	router, err := NewRouter(atmMap, ocnMap)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]*AttrVect, mB)
	var mu sync.Mutex
	comm.Run(mA+mB, func(c *comm.Comm) {
		if c.Rank() < mA {
			r := c.Rank()
			av := MustAttrVect([]string{"t", "q"}, atmMap.LocalSize(r))
			for li, gi := range atmMap.LocalPoints(r) {
				av.Field("t")[li] = float64(gi)
				av.Field("q")[li] = float64(1000 + gi)
			}
			if err := router.Send(c, mA, r, av, 0); err != nil {
				t.Errorf("send %d: %v", r, err)
			}
		} else {
			r := c.Rank() - mA
			av := MustAttrVect([]string{"t", "q"}, ocnMap.LocalSize(r))
			if err := router.Recv(c, 0, r, av, 0); err != nil {
				t.Errorf("recv %d: %v", r, err)
			}
			mu.Lock()
			got[r] = av
			mu.Unlock()
		}
	})
	for gi := 0; gi < gsize; gi++ {
		r := ocnMap.OwnerOf(gi)
		li := ocnMap.LocalIndexOf(r, gi)
		if got[r].Field("t")[li] != float64(gi) || got[r].Field("q")[li] != float64(1000+gi) {
			t.Errorf("point %d: t=%v q=%v", gi, got[r].Field("t")[li], got[r].Field("q")[li])
		}
	}
}

func TestRouterRearrange(t *testing.T) {
	const gsize, np = 24, 4
	src := BlockMap(gsize, np)
	// Reverse block assignment.
	segs := make([]Segment, np)
	for r := 0; r < np; r++ {
		segs[r] = Segment{GStart: r * 6, Length: 6, Owner: np - 1 - r}
	}
	dst, err := NewGlobalSegMap(gsize, np, segs)
	if err != nil {
		t.Fatal(err)
	}
	router, err := NewRouter(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	got := make([]*AttrVect, np)
	comm.Run(np, func(c *comm.Comm) {
		r := c.Rank()
		in := MustAttrVect([]string{"v"}, src.LocalSize(r))
		for li, gi := range src.LocalPoints(r) {
			in.Field("v")[li] = float64(gi)
		}
		out := MustAttrVect([]string{"v"}, dst.LocalSize(r))
		if err := router.Rearrange(c, in, out, 0); err != nil {
			t.Errorf("rank %d: %v", r, err)
		}
		mu.Lock()
		got[r] = out
		mu.Unlock()
	})
	for gi := 0; gi < gsize; gi++ {
		r := dst.OwnerOf(gi)
		li := dst.LocalIndexOf(r, gi)
		if got[r].Field("v")[li] != float64(gi) {
			t.Errorf("point %d wrong after rearrange", gi)
		}
	}
}

func TestRouterValidation(t *testing.T) {
	a := BlockMap(10, 2)
	b := BlockMap(11, 2)
	if _, err := NewRouter(a, b); err == nil {
		t.Error("mismatched domains accepted")
	}
	router, err := NewRouter(a, BlockMap(10, 2))
	if err != nil {
		t.Fatal(err)
	}
	comm.Run(4, func(c *comm.Comm) {
		if c.Rank() != 0 {
			return
		}
		wrong := MustAttrVect([]string{"v"}, 3)
		if err := router.Send(c, 2, 0, wrong, 0); err == nil {
			t.Error("wrong-length vector accepted by Send")
		}
		if err := router.Recv(c, 0, 0, wrong, 0); err == nil {
			t.Error("wrong-length vector accepted by Recv")
		}
	})
}

// serialMatVec is the reference for the distributed multiply.
func serialMatVec(m *SparseMatrix, x []float64) []float64 {
	y := make([]float64, m.NRows)
	for k := range m.Vals {
		y[m.Rows[k]] += m.Vals[k] * x[m.Cols[k]]
	}
	return y
}

func TestMatVecAgainstSerial(t *testing.T) {
	const nrows, ncols, np = 18, 24, 3
	rng := rand.New(rand.NewSource(5))
	// Build a random global matrix.
	global := &SparseMatrix{NRows: nrows, NCols: ncols}
	for r := 0; r < nrows; r++ {
		for k := 0; k < 4; k++ {
			global.Add(r, rng.Intn(ncols), rng.Float64())
		}
	}
	xGlobal := make([]float64, ncols)
	for i := range xGlobal {
		xGlobal[i] = rng.Float64()*10 - 5
	}
	want := serialMatVec(global, xGlobal)

	xMap := BlockMap(ncols, np)
	yMap := BlockMap(nrows, np)
	var mu sync.Mutex
	got := make([]float64, nrows)
	comm.Run(np, func(c *comm.Comm) {
		r := c.Rank()
		local := &SparseMatrix{NRows: nrows, NCols: ncols}
		for k := range global.Vals {
			if yMap.OwnerOf(global.Rows[k]) == r {
				local.Add(global.Rows[k], global.Cols[k], global.Vals[k])
			}
		}
		mv, err := NewMatVec(c, local, xMap, yMap, 0)
		if err != nil {
			t.Errorf("rank %d: %v", r, err)
			return
		}
		x := MustAttrVect([]string{"v"}, xMap.LocalSize(r))
		for li, gi := range xMap.LocalPoints(r) {
			x.Field("v")[li] = xGlobal[gi]
		}
		y := MustAttrVect([]string{"v"}, yMap.LocalSize(r))
		if err := mv.Apply(c, x, y, 10); err != nil {
			t.Errorf("rank %d apply: %v", r, err)
			return
		}
		mu.Lock()
		for li, gi := range yMap.LocalPoints(r) {
			got[gi] = y.Field("v")[li]
		}
		mu.Unlock()
	})
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("y[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestMatVecMultiField(t *testing.T) {
	// All fields are interpolated in one Apply; verify two fields at once.
	const n, np = 12, 2
	m := BlockMap(n, np)
	comm.Run(np, func(c *comm.Comm) {
		r := c.Rank()
		// Identity matrix distributed by row.
		local := &SparseMatrix{NRows: n, NCols: n}
		for _, gi := range m.LocalPoints(r) {
			local.Add(gi, gi, 1)
		}
		mv, err := NewMatVec(c, local, m, m, 0)
		if err != nil {
			t.Errorf("rank %d: %v", r, err)
			return
		}
		x := MustAttrVect([]string{"a", "b"}, m.LocalSize(r))
		for li, gi := range m.LocalPoints(r) {
			x.Field("a")[li] = float64(gi)
			x.Field("b")[li] = float64(-gi)
		}
		y := MustAttrVect([]string{"a", "b"}, m.LocalSize(r))
		if err := mv.Apply(c, x, y, 10); err != nil {
			t.Errorf("apply: %v", err)
			return
		}
		for li, gi := range m.LocalPoints(r) {
			if y.Field("a")[li] != float64(gi) || y.Field("b")[li] != float64(-gi) {
				t.Errorf("identity multiply broke fields at %d", gi)
			}
		}
	})
}

func TestMatVecValidation(t *testing.T) {
	m := BlockMap(4, 2)
	comm.Run(2, func(c *comm.Comm) {
		r := c.Rank()
		// Element with a row this rank does not own.
		local := &SparseMatrix{NRows: 4, NCols: 4}
		local.Add((r+1)%2*2, 0, 1) // row owned by the other rank
		if _, err := NewMatVec(c, local, m, m, 0); err == nil {
			t.Error("foreign row accepted")
		}
		// NewMatVec above fails before its Alltoall on both ranks, so the
		// communicator stays consistent. Now a clean empty matrix works.
		empty := &SparseMatrix{NRows: 4, NCols: 4}
		if _, err := NewMatVec(c, empty, m, m, 1); err != nil {
			t.Errorf("empty matrix rejected: %v", err)
		}
	})
}

func TestGridAndIntegrals(t *testing.T) {
	const nlat, nlon, np = 8, 16, 2
	grid := LatLonGrid(nlat, nlon)
	if grid.Points() != nlat*nlon || grid.NumDims() != 2 {
		t.Fatal("grid shape wrong")
	}
	m := BlockMap(grid.Points(), np)
	var integral, average float64
	comm.Run(np, func(c *comm.Comm) {
		r := c.Rank()
		local, err := grid.LocalGrid(m, r)
		if err != nil {
			t.Errorf("local grid: %v", err)
			return
		}
		av := MustAttrVect([]string{"one"}, local.Points())
		for i := range av.Field("one") {
			av.Field("one")[i] = 1
		}
		integ, err := SpatialIntegral(c, av, "one", local)
		if err != nil {
			t.Error(err)
		}
		avg, err := SpatialAverage(c, av, "one", local)
		if err != nil {
			t.Error(err)
		}
		if r == 0 {
			integral, average = integ, avg
		}
	})
	// Integral of 1 over the sphere in these weights: sum of cos(lat)
	// dlat dlon ≈ (2/π·180)·360 = 41252.96; average exactly 1.
	if math.Abs(average-1) > 1e-12 {
		t.Errorf("average = %v", average)
	}
	want := 360.0 * 2 * 180 / math.Pi
	if math.Abs(integral-want) > want*0.01 {
		t.Errorf("integral = %v, want ≈ %v", integral, want)
	}
}

func TestGridMask(t *testing.T) {
	grid := LatLonGrid(2, 4)
	mask := make([]bool, grid.Points())
	for i := range mask {
		mask[i] = i%2 == 0
	}
	if err := grid.SetMask(mask); err != nil {
		t.Fatal(err)
	}
	if !grid.Masked(1) || grid.Masked(0) {
		t.Error("mask readback wrong")
	}
	if err := grid.SetMask(make([]bool, 3)); err == nil {
		t.Error("short mask accepted")
	}
	// Masked points are excluded from averages.
	m := BlockMap(grid.Points(), 1)
	comm.Run(1, func(c *comm.Comm) {
		local, _ := grid.LocalGrid(m, 0)
		av := MustAttrVect([]string{"v"}, local.Points())
		for i := range av.Field("v") {
			if i%2 == 0 {
				av.Field("v")[i] = 5
			} else {
				av.Field("v")[i] = 1e9 // must be ignored
			}
		}
		avg, err := SpatialAverage(c, av, "v", local)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(avg-5) > 1e-9 {
			t.Errorf("masked average = %v", avg)
		}
	})
}

func TestAccumulator(t *testing.T) {
	acc, err := NewAccumulator([]string{"t"}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := acc.Average(); err == nil {
		t.Error("empty average accepted")
	}
	sample := MustAttrVect([]string{"t"}, 3)
	for step := 1; step <= 4; step++ {
		for i := range sample.Field("t") {
			sample.Field("t")[i] = float64(step * (i + 1))
		}
		if err := acc.Accumulate(sample); err != nil {
			t.Fatal(err)
		}
	}
	if acc.Count() != 4 {
		t.Errorf("count = %d", acc.Count())
	}
	avg, err := acc.Average()
	if err != nil {
		t.Fatal(err)
	}
	// Mean over steps 1..4 of step*(i+1) = 2.5*(i+1).
	for i, v := range avg.Field("t") {
		if want := 2.5 * float64(i+1); v != want {
			t.Errorf("avg[%d] = %v, want %v", i, v, want)
		}
	}
	if sum := acc.Sum().Field("t")[0]; sum != 10 {
		t.Errorf("sum = %v", sum)
	}
	acc.Reset()
	if acc.Count() != 0 || acc.Sum().Field("t")[0] != 0 {
		t.Error("reset incomplete")
	}
}

func TestMerge(t *testing.T) {
	const n = 4
	dst := MustAttrVect([]string{"t"}, n)
	land := MustAttrVect([]string{"t"}, n)
	ocean := MustAttrVect([]string{"t"}, n)
	fLand := make([]float64, n)
	fOcean := make([]float64, n)
	for i := 0; i < n; i++ {
		land.Field("t")[i] = 10
		ocean.Field("t")[i] = 20
		fLand[i] = float64(i) / float64(n-1) // 0, 1/3, 2/3, 1
		fOcean[i] = 1 - fLand[i]
	}
	if err := Merge(dst, []*AttrVect{land, ocean}, [][]float64{fLand, fOcean}, 1e-12); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want := 10*fLand[i] + 20*fOcean[i]
		if math.Abs(dst.Field("t")[i]-want) > 1e-12 {
			t.Errorf("merge[%d] = %v, want %v", i, dst.Field("t")[i], want)
		}
	}
	// Fractions not summing to 1 are rejected.
	if err := Merge(dst, []*AttrVect{land, ocean}, [][]float64{fLand, fLand}, 1e-12); err == nil {
		t.Error("bad fractions accepted")
	}
	if err := Merge(dst, []*AttrVect{land}, [][]float64{fLand, fOcean}, 1e-12); err == nil {
		t.Error("count mismatch accepted")
	}
}

func TestPairedIntegralCheck(t *testing.T) {
	if err := PairedIntegralCheck(100, 100.0000001, 1e-6); err != nil {
		t.Errorf("conservative pair rejected: %v", err)
	}
	if err := PairedIntegralCheck(100, 90, 1e-6); err == nil {
		t.Error("non-conservative pair accepted")
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	if err := r.Register("atm", []int{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("ocn", []int{3, 4}); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("atm", []int{5}); err == nil {
		t.Error("duplicate model accepted")
	}
	if err := r.Register("ice", []int{2}); err == nil {
		t.Error("overlapping ranks accepted")
	}
	if err := r.Register("", []int{9}); err == nil {
		t.Error("empty name accepted")
	}
	if err := r.Register("none", nil); err == nil {
		t.Error("empty ranks accepted")
	}
	wr, err := r.WorldRank("ocn", 1)
	if err != nil || wr != 4 {
		t.Errorf("WorldRank = %d, %v", wr, err)
	}
	lr, err := r.LocalRank("ocn", 3)
	if err != nil || lr != 0 {
		t.Errorf("LocalRank = %d, %v", lr, err)
	}
	if _, err := r.WorldRank("ocn", 9); err == nil {
		t.Error("bad local rank accepted")
	}
	if _, err := r.LocalRank("ocn", 0); err == nil {
		t.Error("foreign world rank accepted")
	}
	if m, ok := r.ModelAt(1); !ok || m != "atm" {
		t.Error("ModelAt wrong")
	}
	if _, ok := r.ModelAt(9); ok {
		t.Error("phantom rank found")
	}
	if n, _ := r.Size("atm"); n != 3 {
		t.Error("Size wrong")
	}
	models := r.Models()
	if len(models) != 2 || models[0] != "atm" || models[1] != "ocn" {
		t.Errorf("Models = %v", models)
	}
}
