package mct

import (
	"fmt"

	"mxn/internal/comm"
	"mxn/internal/schedule"
)

// Router is MCT's communication scheduler for intermodule parallel data
// transfer: built once from a source and a destination GlobalSegMap, then
// reused for every AttrVect exchange between the two models. All fields of
// a vector travel in one message per communicating rank pair, packed
// attribute-major (the multi-field, cache-friendly transfer the paper
// credits MCT with).
type Router struct {
	src, dst *GlobalSegMap
	sched    *schedule.Schedule
}

// NewRouter computes the communication schedule between two segment maps
// over the same global index space.
func NewRouter(src, dst *GlobalSegMap) (*Router, error) {
	if src.GSize() != dst.GSize() {
		return nil, fmt.Errorf("mct: router between maps of %d and %d points", src.GSize(), dst.GSize())
	}
	st, err := src.Template()
	if err != nil {
		return nil, err
	}
	dt, err := dst.Template()
	if err != nil {
		return nil, err
	}
	s, err := schedule.Build(st, dt)
	if err != nil {
		return nil, err
	}
	return &Router{src: src, dst: dst, sched: s}, nil
}

// Schedule exposes the underlying communication schedule.
func (r *Router) Schedule() *schedule.Schedule { return r.sched }

// Send posts rank's outgoing fragments of av to the destination model.
// c must span both models; dstBase is the destination model's first group
// rank. Send never blocks on the receiver.
func (r *Router) Send(c *comm.Comm, dstBase, rank int, av *AttrVect, tag int) error {
	if av.Len() != r.src.LocalSize(rank) {
		return fmt.Errorf("mct: send vector has %d points, map says %d", av.Len(), r.src.LocalSize(rank))
	}
	na := av.NumAttrs()
	for _, plan := range r.sched.OutgoingFor(rank) {
		buf := make([]float64, na*plan.Elems)
		for a := 0; a < na; a++ {
			schedule.Pack(plan, av.FieldAt(a), buf[a*plan.Elems:(a+1)*plan.Elems])
		}
		c.Send(dstBase+plan.DstRank, tag, buf)
	}
	return nil
}

// Recv completes rank's incoming fragments into av. srcBase is the source
// model's first group rank.
func (r *Router) Recv(c *comm.Comm, srcBase, rank int, av *AttrVect, tag int) error {
	if av.Len() != r.dst.LocalSize(rank) {
		return fmt.Errorf("mct: recv vector has %d points, map says %d", av.Len(), r.dst.LocalSize(rank))
	}
	na := av.NumAttrs()
	for _, plan := range r.sched.IncomingFor(rank) {
		payload, _ := c.Recv(srcBase+plan.SrcRank, tag)
		buf, ok := payload.([]float64)
		if !ok {
			return fmt.Errorf("mct: recv got %T", payload)
		}
		if len(buf) != na*plan.Elems {
			return fmt.Errorf("mct: pair %d→%d carried %d values, want %d (attribute lists must match)",
				plan.SrcRank, plan.DstRank, len(buf), na*plan.Elems)
		}
		for a := 0; a < na; a++ {
			schedule.Unpack(plan, av.FieldAt(a), buf[a*plan.Elems:(a+1)*plan.Elems])
		}
	}
	return nil
}

// Rearrange redistributes src into dst within one model (MCT's
// intra-module parallel data redistribution): every rank of the
// communicator calls it with its local vectors. Both maps must be
// decomposed over the calling communicator's ranks.
func (r *Router) Rearrange(c *comm.Comm, src, dst *AttrVect, tag int) error {
	rank := c.Rank()
	if err := r.Send(c, 0, rank, src, tag); err != nil {
		return err
	}
	return r.Recv(c, 0, rank, dst, tag)
}
