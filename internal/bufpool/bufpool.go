// Package bufpool provides size-classed reusable byte buffers for the hot
// transfer paths. A steady-state redistribution packs, sends, receives and
// unpacks the same buffer sizes over and over; recycling them through a
// pool removes every per-transfer allocation (guarded by the redist
// alloc tests) and keeps the garbage collector out of the message loop.
//
// Buffers are handed out in power-of-two size classes and their backing
// arrays are 8-byte aligned, so a buffer can be reinterpreted as a slice
// of any supported element type (float64, complex128, ...) without
// violating alignment. Ownership is transferable: the common pattern is
// that a sender Gets and packs a buffer, the in-process runtime carries it
// to the receiver, and the receiver Puts it back after unpacking — the
// pool is safe for that cross-goroutine round trip.
//
// The implementation is a mutex-guarded free list rather than sync.Pool:
// Get and Put never allocate in steady state (sync.Pool's victim cache can
// drop entries at every GC, which would make the zero-alloc guarantees
// flaky), and the retained memory is bounded by maxPerClass buffers per
// size class.
package bufpool

import (
	"sync"
	"unsafe"

	"mxn/internal/obs"
)

const (
	// minClassBits..maxClassBits bound the pooled size classes:
	// 64 B .. 16 MiB. Requests above the largest class are allocated
	// directly and never retained.
	minClassBits = 6
	maxClassBits = 24
	numClasses   = maxClassBits - minClassBits + 1

	// maxPerClass bounds retained buffers per class; surplus Puts are
	// dropped for the collector.
	maxPerClass = 64
)

// Pool-level instruments, registered in the process-default registry.
// hits/misses split Get traffic by whether a retained buffer was reused;
// oversize counts requests beyond the largest class (never pooled).
var (
	mGets     = obs.Default().Counter("bufpool.gets")
	mPuts     = obs.Default().Counter("bufpool.puts")
	mHits     = obs.Default().Counter("bufpool.hits")
	mMisses   = obs.Default().Counter("bufpool.misses")
	mOversize = obs.Default().Counter("bufpool.oversize")
	mDropped  = obs.Default().Counter("bufpool.puts_dropped")
)

// Pool is a size-classed buffer pool. The zero value is ready to use; all
// methods are safe for concurrent use.
type Pool struct {
	mu      sync.Mutex
	classes [numClasses][][]byte
}

// defaultPool serves the package-level Get/Put used by the transfer
// engine; distinct Pools exist only for tests.
var defaultPool Pool

// classFor returns the class index whose buffers hold at least n bytes,
// or -1 when n exceeds the largest class.
func classFor(n int) int {
	c := 0
	for 1<<(minClassBits+c) < n {
		c++
		if c >= numClasses {
			return -1
		}
	}
	return c
}

// alignedBytes allocates an 8-byte-aligned byte slice of length n. The
// backing array is a []uint64, so reinterpreting the buffer as elements
// of size up to 8 (or complex128, which needs only 8-byte alignment) is
// always legal.
func alignedBytes(n int) []byte {
	if n == 0 {
		return nil
	}
	words := make([]uint64, (n+7)/8)
	return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(words))), n)
}

// Get returns a buffer with length exactly n. The contents are
// unspecified (callers overwrite fully); the capacity is the class size.
func (p *Pool) Get(n int) []byte {
	if n == 0 {
		return nil
	}
	mGets.Inc()
	c := classFor(n)
	if c < 0 {
		mOversize.Inc()
		return alignedBytes(n)
	}
	size := 1 << (minClassBits + c)
	p.mu.Lock()
	if stack := p.classes[c]; len(stack) > 0 {
		b := stack[len(stack)-1]
		stack[len(stack)-1] = nil
		p.classes[c] = stack[:len(stack)-1]
		p.mu.Unlock()
		mHits.Inc()
		return b[:n]
	}
	p.mu.Unlock()
	mMisses.Inc()
	return alignedBytes(size)[:n]
}

// Put returns a buffer obtained from Get to the pool. Buffers whose
// capacity is not an exact class size (oversize allocations, or foreign
// slices) are dropped; Put(nil) is a no-op.
func (p *Pool) Put(b []byte) {
	if cap(b) == 0 {
		return
	}
	mPuts.Inc()
	c := classFor(cap(b))
	if c < 0 || 1<<(minClassBits+c) != cap(b) {
		mDropped.Inc()
		return
	}
	p.mu.Lock()
	if len(p.classes[c]) < maxPerClass {
		p.classes[c] = append(p.classes[c], b[:cap(b)])
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	mDropped.Inc()
}

// Outstanding returns the number of Get calls not yet matched by a Put.
// The counters are process-wide (shared by every Pool), zero-length Gets
// and nil Puts are not counted on either side, and oversize buffers
// count symmetrically even though they are never retained — so the value
// is exactly the number of live buffers callers still owe the pool. The
// borrow-path leak tests assert it returns to a baseline after every
// ownership-transfer scenario.
func Outstanding() int64 {
	return int64(mGets.Value()) - int64(mPuts.Value())
}

// Get returns a length-n buffer from the process-default pool.
func Get(n int) []byte { return defaultPool.Get(n) }

// Put returns a buffer to the process-default pool.
func Put(b []byte) { defaultPool.Put(b) }
