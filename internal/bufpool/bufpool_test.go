package bufpool

import (
	"sync"
	"testing"
	"unsafe"
)

func TestClassFor(t *testing.T) {
	cases := []struct{ n, class int }{
		{1, 0}, {64, 0}, {65, 1}, {128, 1}, {129, 2},
		{1 << 24, numClasses - 1}, {1<<24 + 1, -1},
	}
	for _, c := range cases {
		if got := classFor(c.n); got != c.class {
			t.Errorf("classFor(%d) = %d, want %d", c.n, got, c.class)
		}
	}
}

func TestGetPutRoundTrip(t *testing.T) {
	var p Pool
	b := p.Get(100)
	if len(b) != 100 {
		t.Fatalf("len = %d, want 100", len(b))
	}
	if cap(b) != 128 {
		t.Fatalf("cap = %d, want class size 128", cap(b))
	}
	for i := range b {
		b[i] = byte(i)
	}
	p.Put(b)
	// The next request in the same class reuses the retained buffer.
	b2 := p.Get(70)
	if unsafe.SliceData(b2) != unsafe.SliceData(b) {
		t.Error("buffer not reused after Put")
	}
}

func TestAlignment(t *testing.T) {
	var p Pool
	for _, n := range []int{1, 7, 64, 100, 4096, 1<<24 + 3} {
		b := p.Get(n)
		if addr := uintptr(unsafe.Pointer(unsafe.SliceData(b))); addr%8 != 0 {
			t.Errorf("Get(%d): backing array at %#x not 8-byte aligned", n, addr)
		}
		p.Put(b)
	}
}

func TestOversizeNotRetained(t *testing.T) {
	var p Pool
	b := p.Get(1<<24 + 1)
	if len(b) != 1<<24+1 {
		t.Fatalf("oversize len = %d", len(b))
	}
	p.Put(b) // dropped, must not panic or corrupt a class
	b2 := p.Get(64)
	if cap(b2) != 64 {
		t.Fatalf("class 0 corrupted: cap = %d", cap(b2))
	}
}

func TestZeroLength(t *testing.T) {
	var p Pool
	if b := p.Get(0); len(b) != 0 {
		t.Fatalf("Get(0) returned %d bytes", len(b))
	}
	p.Put(nil)
}

func TestBoundedRetention(t *testing.T) {
	var p Pool
	bufs := make([][]byte, maxPerClass+10)
	for i := range bufs {
		bufs[i] = alignedBytes(64)
	}
	for _, b := range bufs {
		p.Put(b)
	}
	if got := len(p.classes[0]); got != maxPerClass {
		t.Fatalf("retained %d buffers, want cap %d", got, maxPerClass)
	}
}

// Steady-state Get/Put cycles must not allocate: this is the foundation of
// the redist engine's zero-alloc transfer guarantee.
func TestSteadyStateZeroAlloc(t *testing.T) {
	var p Pool
	p.Put(p.Get(1024)) // warm the class
	allocs := testing.AllocsPerRun(200, func() {
		b := p.Get(1000)
		p.Put(b)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Get/Put allocates: %v allocs/op", allocs)
	}
}

func TestConcurrentUse(t *testing.T) {
	var p Pool
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed byte) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				b := p.Get(64 + i%2000)
				for j := range b {
					b[j] = seed
				}
				for j := range b {
					if b[j] != seed {
						t.Errorf("buffer shared while owned")
						return
					}
				}
				p.Put(b)
			}
		}(byte(g))
	}
	wg.Wait()
}
