package dad

import "testing"

// Classification drives the schedule planner's fast-path decision; the
// mapping from distribution kind to class is part of the planning
// contract.
func TestAxisClass(t *testing.T) {
	cases := []struct {
		ax    AxisDist
		class AxisClass
		sb    int
	}{
		{CollapsedAxis(), ClassInterval, 0},
		{BlockAxis(3), ClassInterval, 0},
		{GenBlockAxis([]int{2, 5, 1}), ClassInterval, 0},
		{CyclicAxis(4), ClassStrided, 1},
		{BlockCyclicAxis(3, 5), ClassStrided, 5},
		{ImplicitAxis(2, []int{0, 1, 0}), ClassIrregular, 0},
	}
	for _, c := range cases {
		if got := c.ax.Class(); got != c.class {
			t.Errorf("%s: Class() = %v, want %v", c.ax.Kind, got, c.class)
		}
		if got := c.ax.StrideBlock(); got != c.sb {
			t.Errorf("%s: StrideBlock() = %d, want %d", c.ax.Kind, got, c.sb)
		}
	}
}

func TestTemplateRegular(t *testing.T) {
	mk := func(axes ...AxisDist) *Template {
		dims := make([]int, len(axes))
		for i := range dims {
			dims[i] = 12
		}
		out, err := NewTemplate(dims, axes)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	if !mk(BlockAxis(3), CyclicAxis(2)).Regular() {
		t.Error("block×cyclic template not Regular")
	}
	owner := make([]int, 12)
	if mk(BlockAxis(3), ImplicitAxis(1, owner)).Regular() {
		t.Error("template with an Implicit axis reported Regular")
	}
	ex, err := NewExplicitTemplate([]int{4}, 1, []Patch{NewPatch([]int{0}, []int{4}, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if ex.Regular() {
		t.Error("explicit template reported Regular")
	}
}

func TestClosedFormPair(t *testing.T) {
	mk := func(dims []int, axes ...AxisDist) *Template {
		out, err := NewTemplate(dims, axes)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	d := []int{24}
	block := mk(d, BlockAxis(3))
	cyclic := mk(d, CyclicAxis(4))
	bc2a := mk(d, BlockCyclicAxis(3, 2))
	bc2b := mk(d, BlockCyclicAxis(5, 2))
	bc3 := mk(d, BlockCyclicAxis(3, 3))

	if !block.ClosedFormPair(cyclic) || !cyclic.ClosedFormPair(block) {
		t.Error("block↔cyclic pair not closed-form")
	}
	if !block.ClosedFormPair(block) {
		t.Error("block↔block pair not closed-form")
	}
	if !bc2a.ClosedFormPair(bc2b) {
		t.Error("equal-block-size block-cyclic pair not closed-form")
	}
	if bc2a.ClosedFormPair(bc3) {
		t.Error("mismatched block-cyclic block sizes accepted as closed-form")
	}
	// Cyclic is block size 1: compatible with itself but not with b=2.
	if cyclic.ClosedFormPair(bc2a) {
		t.Error("cyclic (b=1) vs block-cyclic b=2 accepted as closed-form")
	}
	// Strided×interval mismatched block sizes are fine: only
	// strided×strided needs agreement.
	if !bc2a.ClosedFormPair(block) {
		t.Error("block-cyclic↔block pair not closed-form")
	}
	// Non-conforming pairs never plan.
	other := mk([]int{25}, BlockAxis(3))
	if block.ClosedFormPair(other) {
		t.Error("non-conforming pair accepted")
	}
}
