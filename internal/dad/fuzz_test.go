package dad

import (
	"testing"

	"mxn/internal/wire"
)

// fuzzSeedTemplates returns valid templates covering every distribution
// kind, used to seed the decode fuzzers with well-formed encodings.
func fuzzSeedTemplates(f *testing.F) []*Template {
	f.Helper()
	var out []*Template
	add := func(t *Template, err error) {
		if err != nil {
			f.Fatal(err)
		}
		out = append(out, t)
	}
	add(NewTemplate([]int{12}, []AxisDist{BlockAxis(3)}))
	add(NewTemplate([]int{10, 8}, []AxisDist{CyclicAxis(2), BlockCyclicAxis(2, 3)}))
	add(NewTemplate([]int{6}, []AxisDist{GenBlockAxis([]int{1, 2, 3})}))
	add(NewTemplate([]int{5}, []AxisDist{ImplicitAxis(2, []int{0, 1, 0, 1, 0})}))
	add(NewTemplate([]int{4, 4}, []AxisDist{CollapsedAxis(), BlockAxis(4)}))
	add(NewExplicitTemplate([]int{4, 4}, 2, []Patch{
		NewPatch([]int{0, 0}, []int{4, 2}, 0),
		NewPatch([]int{0, 2}, []int{4, 4}, 1),
	}))
	return out
}

// FuzzDecodeTemplate feeds arbitrary bytes to the template decoder: it
// must never panic, and any template it accepts must satisfy the
// construction invariants well enough to answer basic queries.
func FuzzDecodeTemplate(f *testing.F) {
	for _, t := range fuzzSeedTemplates(f) {
		e := wire.NewEncoder(nil)
		t.Encode(e)
		f.Add(e.Bytes())
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tpl, err := DecodeTemplate(wire.NewDecoder(data))
		if err != nil {
			return
		}
		// An accepted template must round-trip through the codec to an
		// equivalent distribution.
		e := wire.NewEncoder(nil)
		tpl.Encode(e)
		back, err := DecodeTemplate(wire.NewDecoder(e.Bytes()))
		if err != nil {
			t.Fatalf("re-decode of accepted template failed: %v", err)
		}
		if back.Key() != tpl.Key() {
			t.Fatalf("round-trip changed key: %q vs %q", back.Key(), tpl.Key())
		}
	})
}

// FuzzDecodeDescriptor exercises the descriptor decoder (name, element
// kind, access mode, template) against corrupt input.
func FuzzDecodeDescriptor(f *testing.F) {
	for _, t := range fuzzSeedTemplates(f) {
		desc, err := NewDescriptor("field", Float64, ReadWrite, t)
		if err != nil {
			f.Fatal(err)
		}
		e := wire.NewEncoder(nil)
		desc.Encode(e)
		f.Add(e.Bytes())
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		desc, err := DecodeDescriptor(wire.NewDecoder(data))
		if err != nil {
			return
		}
		if desc.Template == nil {
			t.Fatal("accepted descriptor has nil template")
		}
		// Element kinds reaching the caller must be usable: Bytes panics on
		// unknown kinds, so the decoder must have rejected them.
		if desc.Elem.Bytes() <= 0 {
			t.Fatalf("accepted descriptor has bad element size")
		}
	})
}
