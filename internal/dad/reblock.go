package dad

import "fmt"

// Reblocking: re-deriving a template's distribution over a different
// cohort width, the descriptor half of online resize (core.ProposeResize →
// dad.Reblock → schedule.Remap → redist.ReconfigureFenced).
//
// A reblocked template keeps the global index space and the distribution
// *family* of every axis but re-deals ownership over the new process
// count: Block stays Block (new ceil(n/p) blocks), Cyclic stays Cyclic,
// BlockCyclic keeps its block size and re-deals the blocks, and GenBlock —
// whose per-coordinate sizes carry no meaning at a different width — is
// re-derived as balanced HPF blocks over the new coordinates. Collapsed
// axes are untouched (they never span the grid), and Implicit axes and
// Explicit templates have no closed-form re-derivation, so reblocking them
// fails with a typed *ReblockError rather than guessing an owner map.

// ReblockError reports that a template (or one of its axes) cannot be
// re-derived over a new cohort width.
type ReblockError struct {
	Axis   int // -1 when the whole template is the problem
	Reason string
}

func (e *ReblockError) Error() string {
	if e.Axis < 0 {
		return fmt.Sprintf("dad: cannot reblock template: %s", e.Reason)
	}
	return fmt.Sprintf("dad: cannot reblock axis %d: %s", e.Axis, e.Reason)
}

// reblockAxis re-derives one axis distribution over p coordinates; n is
// the axis length (needed to rebalance GenBlock sizes).
func reblockAxis(a int, ax AxisDist, n, p int) (AxisDist, error) {
	if p < 1 {
		return AxisDist{}, &ReblockError{Axis: a, Reason: fmt.Sprintf("target grid extent %d", p)}
	}
	switch ax.Kind {
	case Collapsed:
		if p != 1 {
			return AxisDist{}, &ReblockError{Axis: a, Reason: fmt.Sprintf("collapsed axis cannot spread over %d coordinates", p)}
		}
		return ax, nil
	case Block:
		return BlockAxis(p), nil
	case Cyclic:
		return CyclicAxis(p), nil
	case BlockCyclic:
		return BlockCyclicAxis(p, ax.BlockSize), nil
	case GenBlock:
		// Per-coordinate sizes are meaningless at another width; re-derive
		// balanced HPF-style blocks (ceil(n/p), tail clipped, trailing
		// coordinates possibly empty).
		sizes := make([]int, p)
		block := BlockAxis(p)
		for c := 0; c < p; c++ {
			sizes[c] = block.localCount(n, c)
		}
		return GenBlockAxis(sizes), nil
	case Implicit:
		return AxisDist{}, &ReblockError{Axis: a, Reason: "implicit owner map has no re-derivation"}
	}
	return AxisDist{}, &ReblockError{Axis: a, Reason: fmt.Sprintf("unknown kind %d", int(ax.Kind))}
}

// Reblock re-derives a regular template over a cohort of newWidth ranks.
// Exactly one axis must span the process grid (Procs > 1) — the common
// 1-D-decomposed case — and that axis is re-dealt over newWidth
// coordinates; the others keep their extent-1 distributions. Templates
// with several distributed axes are ambiguous here: use ReblockGrid and
// choose the new grid shape explicitly. Explicit and Implicit
// distributions fail with a typed *ReblockError.
//
// A template whose every axis has extent 1 (a single-rank template) picks
// the first axis of a resizable kind (Block/Cyclic/BlockCyclic/GenBlock)
// to spread over newWidth, so a cohort of one can still grow.
func Reblock(t *Template, newWidth int) (*Template, error) {
	if newWidth < 1 {
		return nil, &ReblockError{Axis: -1, Reason: fmt.Sprintf("target width %d", newWidth)}
	}
	if t.IsExplicit() {
		return nil, &ReblockError{Axis: -1, Reason: "explicit patch tiling has no re-derivation"}
	}
	target := -1
	for a, ax := range t.axes {
		if ax.Procs > 1 {
			if target >= 0 {
				return nil, &ReblockError{Axis: -1, Reason: "multiple distributed axes; use ReblockGrid"}
			}
			target = a
		}
	}
	if target < 0 {
		// Single-rank template: spread the first resizable axis.
		for a, ax := range t.axes {
			switch ax.Kind {
			case Block, Cyclic, BlockCyclic, GenBlock:
				target = a
			}
			if target >= 0 {
				break
			}
		}
		if target < 0 {
			if newWidth == t.nprocs {
				return t, nil
			}
			return nil, &ReblockError{Axis: -1, Reason: "no resizable axis"}
		}
	}
	grid := make([]int, len(t.axes))
	for a, ax := range t.axes {
		grid[a] = ax.Procs
	}
	grid[target] = newWidth
	return ReblockGrid(t, grid)
}

// ReblockGrid re-derives a regular template over an explicit new process
// grid, one extent per axis; the new cohort width is the product of the
// extents. Axes whose extent is unchanged keep their distribution
// verbatim (including GenBlock sizes); resized axes are re-derived per
// the Reblock rules. Fails with a typed *ReblockError for explicit
// templates, Implicit axes being resized, or Collapsed axes asked to
// spread.
func ReblockGrid(t *Template, newGrid []int) (*Template, error) {
	if t.IsExplicit() {
		return nil, &ReblockError{Axis: -1, Reason: "explicit patch tiling has no re-derivation"}
	}
	if len(newGrid) != len(t.axes) {
		return nil, &ReblockError{Axis: -1, Reason: fmt.Sprintf("%d grid extents for %d axes", len(newGrid), len(t.axes))}
	}
	axes := make([]AxisDist, len(t.axes))
	for a, ax := range t.axes {
		if newGrid[a] == ax.Procs {
			axes[a] = ax
			continue
		}
		nax, err := reblockAxis(a, ax, t.dims[a], newGrid[a])
		if err != nil {
			return nil, err
		}
		axes[a] = nax
	}
	return NewTemplate(t.dims, axes)
}
