package dad

import (
	"fmt"
	"strings"
)

// Patch is an axis-aligned rectangular region of a template's global index
// space, assigned to one rank. Bounds are half-open: the patch covers
// indices idx with Lo[a] <= idx[a] < Hi[a] on every axis a.
type Patch struct {
	Lo, Hi []int
	Owner  int
}

// NewPatch returns a patch with copied bounds.
func NewPatch(lo, hi []int, owner int) Patch {
	return Patch{
		Lo:    append([]int(nil), lo...),
		Hi:    append([]int(nil), hi...),
		Owner: owner,
	}
}

// NumAxes returns the patch dimensionality.
func (p Patch) NumAxes() int { return len(p.Lo) }

// Size returns the number of elements the patch covers.
func (p Patch) Size() int {
	n := 1
	for a := range p.Lo {
		d := p.Hi[a] - p.Lo[a]
		if d <= 0 {
			return 0
		}
		n *= d
	}
	return n
}

// Shape returns the per-axis extents of the patch.
func (p Patch) Shape() []int {
	s := make([]int, len(p.Lo))
	for a := range s {
		s[a] = p.Hi[a] - p.Lo[a]
	}
	return s
}

// Contains reports whether idx lies inside the patch.
func (p Patch) Contains(idx []int) bool {
	for a := range p.Lo {
		if idx[a] < p.Lo[a] || idx[a] >= p.Hi[a] {
			return false
		}
	}
	return true
}

// Intersect returns the overlap of two patches (owner taken from p) and
// whether it is non-empty.
func (p Patch) Intersect(q Patch) (Patch, bool) {
	out := Patch{Lo: make([]int, len(p.Lo)), Hi: make([]int, len(p.Hi)), Owner: p.Owner}
	for a := range p.Lo {
		lo, hi := p.Lo[a], p.Hi[a]
		if q.Lo[a] > lo {
			lo = q.Lo[a]
		}
		if q.Hi[a] < hi {
			hi = q.Hi[a]
		}
		if lo >= hi {
			return Patch{}, false
		}
		out.Lo[a], out.Hi[a] = lo, hi
	}
	return out, true
}

// String renders the patch as [lo0:hi0,lo1:hi1,...]@owner.
func (p Patch) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for a := range p.Lo {
		if a > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d:%d", p.Lo[a], p.Hi[a])
	}
	fmt.Fprintf(&b, "]@%d", p.Owner)
	return b.String()
}

// validate checks the patch against a global shape.
func (p Patch) validate(dims []int, nprocs int) error {
	if len(p.Lo) != len(dims) || len(p.Hi) != len(dims) {
		return fmt.Errorf("dad: patch %v has %d axes, template has %d", p, len(p.Lo), len(dims))
	}
	if p.Owner < 0 || p.Owner >= nprocs {
		return fmt.Errorf("dad: patch %v owner outside [0,%d)", p, nprocs)
	}
	for a := range dims {
		if p.Lo[a] < 0 || p.Hi[a] > dims[a] || p.Lo[a] >= p.Hi[a] {
			return fmt.Errorf("dad: patch %v out of bounds on axis %d (dim %d)", p, a, dims[a])
		}
	}
	return nil
}

// rowMajorOffset returns the row-major offset of idx relative to patch
// origin lo within a region of the given shape.
func rowMajorOffset(idx, lo, shape []int) int {
	off := 0
	for a := range shape {
		off = off*shape[a] + (idx[a] - lo[a])
	}
	return off
}
