package dad

import (
	"fmt"
	"sync"
)

// Access enumerates the M×N transfer modes a component may allow on a
// registered data field (Section 4.1 of the paper).
type Access int

// Access modes.
const (
	ReadOnly Access = 1 << iota
	WriteOnly
	ReadWrite Access = ReadOnly | WriteOnly
)

// CanRead reports whether the mode permits outbound transfers.
func (a Access) CanRead() bool { return a&ReadOnly != 0 }

// CanWrite reports whether the mode permits inbound transfers.
func (a Access) CanWrite() bool { return a&WriteOnly != 0 }

// String returns the conventional mode name.
func (a Access) String() string {
	switch a {
	case ReadOnly:
		return "read"
	case WriteOnly:
		return "write"
	case ReadWrite:
		return "read/write"
	}
	return fmt.Sprintf("Access(%d)", int(a))
}

// ElemKind identifies the element type of a distributed array.
type ElemKind int

// Supported element kinds.
const (
	Float64 ElemKind = iota
	Float32
	Int64
	Int32
	Byte
	Complex128
)

// Bytes returns the element size in bytes.
func (k ElemKind) Bytes() int {
	switch k {
	case Float64, Int64:
		return 8
	case Float32, Int32:
		return 4
	case Byte:
		return 1
	case Complex128:
		return 16
	}
	panic(fmt.Sprintf("dad: unknown element kind %d", int(k)))
}

// String returns the element kind's name.
func (k ElemKind) String() string {
	switch k {
	case Float64:
		return "float64"
	case Float32:
		return "float32"
	case Int64:
		return "int64"
	case Int32:
		return "int32"
	case Byte:
		return "byte"
	case Complex128:
		return "complex128"
	}
	return fmt.Sprintf("ElemKind(%d)", int(k))
}

// Descriptor is the run-time handle a component registers with the M×N
// middleware: a named, typed distributed array aligned to a template, with
// an access mode constraining the transfers it may participate in. The
// descriptor is metadata only — local storage is provided per rank at
// transfer time, in the template's canonical local layout.
type Descriptor struct {
	Name     string
	Elem     ElemKind
	Mode     Access
	Template *Template

	// Per-rank validity bitmaps, attached by failure-aware transfers
	// when a crash left holes in a rank's local data (see validity.go).
	// Lazily allocated; guarded because transfers on different ranks
	// attach concurrently.
	validityMu sync.Mutex
	validity   map[int]*Validity
}

// NewDescriptor builds a descriptor and validates its parts.
func NewDescriptor(name string, elem ElemKind, mode Access, t *Template) (*Descriptor, error) {
	if name == "" {
		return nil, fmt.Errorf("dad: descriptor needs a name")
	}
	if t == nil {
		return nil, fmt.Errorf("dad: descriptor %q needs a template", name)
	}
	if !mode.CanRead() && !mode.CanWrite() {
		return nil, fmt.Errorf("dad: descriptor %q has no access mode", name)
	}
	return &Descriptor{Name: name, Elem: elem, Mode: mode, Template: t}, nil
}

// LocalLen returns the length (in elements) of rank's local buffer.
func (d *Descriptor) LocalLen(rank int) int { return d.Template.LocalCount(rank) }

// String summarizes the descriptor.
func (d *Descriptor) String() string {
	return fmt.Sprintf("%s %s %s %s", d.Name, d.Elem, d.Mode, d.Template)
}
