// Package dad implements the CCA Distributed Array Descriptor (DAD): a
// uniform run-time description of how a dense multidimensional array is
// decomposed across the processes of a parallel component.
//
// The descriptor model follows Section 2.2.2 of the paper (itself patterned
// on the HPF distributed-array model): a Template describes the logical
// per-axis distribution of a global index space over a process grid, and
// any number of actual arrays may be aligned to a template. Supported
// per-axis distributions are Collapsed, Block, Cyclic, BlockCyclic,
// GenBlock (Global-Arrays-style irregular blocks) and Implicit (HPF-style
// per-index owner map). In addition a template may carry a global Explicit
// distribution: an arbitrary set of non-overlapping rectangular patches
// that together tile the template, each assigned to a rank.
//
// The package answers the questions M×N transfers need: which rank owns a
// global index, which global rectangles a rank owns, and where a global
// index lives inside a rank's canonical local buffer.
package dad

import "fmt"

// Kind identifies a per-axis distribution type.
type Kind int

// The per-axis distribution kinds of the CCA DAD (Section 2.2.2).
const (
	// Collapsed: all elements of the axis belong to a single process
	// coordinate.
	Collapsed Kind = iota
	// Block: contiguous blocks of ceil(n/p) elements, one per coordinate.
	Block
	// Cyclic: element i belongs to coordinate i mod p.
	Cyclic
	// BlockCyclic: blocks of a fixed size dealt cyclically across the
	// coordinates.
	BlockCyclic
	// GenBlock: one contiguous block per coordinate, with per-coordinate
	// sizes (the Global Arrays generalization).
	GenBlock
	// Implicit: a fully general per-index owner map, at the cost of one
	// index element per data element.
	Implicit
)

// String returns the distribution kind's conventional name.
func (k Kind) String() string {
	switch k {
	case Collapsed:
		return "collapsed"
	case Block:
		return "block"
	case Cyclic:
		return "cyclic"
	case BlockCyclic:
		return "block-cyclic"
	case GenBlock:
		return "generalized-block"
	case Implicit:
		return "implicit"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// AxisDist describes the distribution of one template axis over Procs
// process-grid coordinates.
type AxisDist struct {
	Kind      Kind
	Procs     int   // process-grid extent along this axis (1 for Collapsed)
	BlockSize int   // BlockCyclic only
	Sizes     []int // GenBlock only: one block length per coordinate
	Owner     []int // Implicit only: owner coordinate per global index
}

// CollapsedAxis returns an axis wholly owned by a single coordinate.
func CollapsedAxis() AxisDist { return AxisDist{Kind: Collapsed, Procs: 1} }

// BlockAxis returns a block distribution over p coordinates.
func BlockAxis(p int) AxisDist { return AxisDist{Kind: Block, Procs: p} }

// CyclicAxis returns a cyclic distribution over p coordinates.
func CyclicAxis(p int) AxisDist { return AxisDist{Kind: Cyclic, Procs: p} }

// BlockCyclicAxis returns a block-cyclic distribution with the given block
// size over p coordinates.
func BlockCyclicAxis(p, blockSize int) AxisDist {
	return AxisDist{Kind: BlockCyclic, Procs: p, BlockSize: blockSize}
}

// GenBlockAxis returns a generalized-block distribution; sizes[i] is the
// length of coordinate i's block, and the sizes must sum to the axis length.
func GenBlockAxis(sizes []int) AxisDist {
	return AxisDist{Kind: GenBlock, Procs: len(sizes), Sizes: append([]int(nil), sizes...)}
}

// ImplicitAxis returns a fully general distribution: owner[i] is the
// process-grid coordinate owning global index i along this axis.
func ImplicitAxis(p int, owner []int) AxisDist {
	return AxisDist{Kind: Implicit, Procs: p, Owner: append([]int(nil), owner...)}
}

// AxisClass is the structural shape of a per-axis distribution, used by
// the schedule planner to decide whether rank-pair intersections can be
// computed in closed form instead of by patch enumeration.
type AxisClass int

const (
	// ClassInterval: every coordinate owns a single contiguous interval
	// of global indices, computable in O(1) (with a per-axis prefix-sum
	// precomputation for GenBlock). Collapsed, Block and GenBlock.
	ClassInterval AxisClass = iota
	// ClassStrided: every coordinate owns equal fixed-size blocks dealt
	// round-robin: coordinate c owns blocks {m : m ≡ c (mod Procs)} of
	// size StrideBlock(), the last block clipped to the axis length.
	// Cyclic (block size 1) and BlockCyclic.
	ClassStrided
	// ClassIrregular: ownership is a per-index table with no closed
	// form (Implicit). The planner falls back to enumeration.
	ClassIrregular
)

// String returns the class's conventional name.
func (c AxisClass) String() string {
	switch c {
	case ClassInterval:
		return "interval"
	case ClassStrided:
		return "strided"
	case ClassIrregular:
		return "irregular"
	}
	return fmt.Sprintf("AxisClass(%d)", int(c))
}

// Class reports the structural shape of the distribution.
func (a AxisDist) Class() AxisClass {
	switch a.Kind {
	case Collapsed, Block, GenBlock:
		return ClassInterval
	case Cyclic, BlockCyclic:
		return ClassStrided
	default:
		return ClassIrregular
	}
}

// StrideBlock returns the dealt block size of a ClassStrided axis (1 for
// Cyclic, BlockSize for BlockCyclic) and 0 for every other class.
func (a AxisDist) StrideBlock() int {
	switch a.Kind {
	case Cyclic:
		return 1
	case BlockCyclic:
		return a.BlockSize
	}
	return 0
}

// validate checks the axis against the axis length n.
func (a AxisDist) validate(n int) error {
	if a.Procs < 1 {
		return fmt.Errorf("dad: axis has %d process coordinates", a.Procs)
	}
	switch a.Kind {
	case Collapsed:
		if a.Procs != 1 {
			return fmt.Errorf("dad: collapsed axis must have 1 coordinate, has %d", a.Procs)
		}
	case Block, Cyclic:
		// No extra parameters.
	case BlockCyclic:
		if a.BlockSize < 1 {
			return fmt.Errorf("dad: block-cyclic axis needs a positive block size, got %d", a.BlockSize)
		}
	case GenBlock:
		if len(a.Sizes) != a.Procs {
			return fmt.Errorf("dad: generalized-block axis has %d sizes for %d coordinates", len(a.Sizes), a.Procs)
		}
		sum := 0
		for i, s := range a.Sizes {
			if s < 0 {
				return fmt.Errorf("dad: generalized-block size[%d] = %d is negative", i, s)
			}
			sum += s
		}
		if sum != n {
			return fmt.Errorf("dad: generalized-block sizes sum to %d, axis length is %d", sum, n)
		}
	case Implicit:
		if len(a.Owner) != n {
			return fmt.Errorf("dad: implicit axis has %d owners for length %d", len(a.Owner), n)
		}
		for i, o := range a.Owner {
			if o < 0 || o >= a.Procs {
				return fmt.Errorf("dad: implicit owner[%d] = %d outside [0,%d)", i, o, a.Procs)
			}
		}
	default:
		return fmt.Errorf("dad: unknown axis kind %d", int(a.Kind))
	}
	return nil
}

// blockLen returns the HPF block length ceil(n/p).
func blockLen(n, p int) int { return (n + p - 1) / p }

// owner returns the coordinate owning global index g on an axis of length n.
func (a AxisDist) owner(n, g int) int {
	switch a.Kind {
	case Collapsed:
		return 0
	case Block:
		b := blockLen(n, a.Procs)
		return g / b
	case Cyclic:
		return g % a.Procs
	case BlockCyclic:
		return (g / a.BlockSize) % a.Procs
	case GenBlock:
		acc := 0
		for c, s := range a.Sizes {
			acc += s
			if g < acc {
				return c
			}
		}
		return a.Procs - 1
	case Implicit:
		return a.Owner[g]
	}
	panic("dad: owner on invalid axis")
}

// Interval is a half-open range [Lo, Hi) of global indices along one axis.
type Interval struct {
	Lo, Hi int
}

// Len returns the number of indices in the interval.
func (iv Interval) Len() int { return iv.Hi - iv.Lo }

// Intersect returns the overlap of two intervals and whether it is
// non-empty.
func (iv Interval) Intersect(other Interval) (Interval, bool) {
	lo, hi := iv.Lo, iv.Hi
	if other.Lo > lo {
		lo = other.Lo
	}
	if other.Hi < hi {
		hi = other.Hi
	}
	if lo >= hi {
		return Interval{}, false
	}
	return Interval{lo, hi}, true
}

// intervals returns the global indices owned by coordinate c along an axis
// of length n, as sorted disjoint half-open intervals.
func (a AxisDist) intervals(n, c int) []Interval {
	switch a.Kind {
	case Collapsed:
		if n == 0 {
			return nil
		}
		return []Interval{{0, n}}
	case Block:
		b := blockLen(n, a.Procs)
		lo := c * b
		hi := lo + b
		if hi > n {
			hi = n
		}
		if lo >= hi {
			return nil
		}
		return []Interval{{lo, hi}}
	case Cyclic:
		var out []Interval
		for g := c; g < n; g += a.Procs {
			out = append(out, Interval{g, g + 1})
		}
		return out
	case BlockCyclic:
		var out []Interval
		b := a.BlockSize
		for lo := c * b; lo < n; lo += a.Procs * b {
			hi := lo + b
			if hi > n {
				hi = n
			}
			out = append(out, Interval{lo, hi})
		}
		return out
	case GenBlock:
		lo := 0
		for i := 0; i < c; i++ {
			lo += a.Sizes[i]
		}
		hi := lo + a.Sizes[c]
		if lo >= hi {
			return nil
		}
		return []Interval{{lo, hi}}
	case Implicit:
		var out []Interval
		start := -1
		for g := 0; g <= n; g++ {
			owned := g < n && a.Owner[g] == c
			if owned && start < 0 {
				start = g
			}
			if !owned && start >= 0 {
				out = append(out, Interval{start, g})
				start = -1
			}
		}
		return out
	}
	panic("dad: intervals on invalid axis")
}

// localCount returns how many indices coordinate c owns along an axis of
// length n.
func (a AxisDist) localCount(n, c int) int {
	switch a.Kind {
	case Collapsed:
		return n
	case Block:
		b := blockLen(n, a.Procs)
		lo := c * b
		hi := lo + b
		if hi > n {
			hi = n
		}
		if lo >= hi {
			return 0
		}
		return hi - lo
	case Cyclic:
		if c >= n {
			return 0
		}
		return (n - c + a.Procs - 1) / a.Procs
	case BlockCyclic:
		count := 0
		b := a.BlockSize
		for lo := c * b; lo < n; lo += a.Procs * b {
			hi := lo + b
			if hi > n {
				hi = n
			}
			count += hi - lo
		}
		return count
	case GenBlock:
		return a.Sizes[c]
	case Implicit:
		count := 0
		for _, o := range a.Owner {
			if o == c {
				count++
			}
		}
		return count
	}
	panic("dad: localCount on invalid axis")
}

// localIndex returns the position of global index g within coordinate c's
// sorted owned set. The caller must ensure owner(n, g) == c.
func (a AxisDist) localIndex(n, g, c int) int {
	switch a.Kind {
	case Collapsed:
		return g
	case Block:
		b := blockLen(n, a.Procs)
		return g - c*b
	case Cyclic:
		return g / a.Procs
	case BlockCyclic:
		b := a.BlockSize
		blk := g / b
		localBlk := blk / a.Procs
		return localBlk*b + g%b
	case GenBlock:
		lo := 0
		for i := 0; i < c; i++ {
			lo += a.Sizes[i]
		}
		return g - lo
	case Implicit:
		// Rank-order position among owned indices; templates precompute a
		// lookup table for this path (see Template.localPos).
		pos := 0
		for i := 0; i < g; i++ {
			if a.Owner[i] == c {
				pos++
			}
		}
		return pos
	}
	panic("dad: localIndex on invalid axis")
}
