package dad

import (
	"math/rand"
	"reflect"
	"testing"

	"mxn/internal/wire"
)

// forEachIndex iterates all global indices of dims in row-major order.
func forEachIndex(dims []int, fn func(idx []int)) {
	idx := make([]int, len(dims))
	for {
		for _, d := range dims {
			if d == 0 {
				return
			}
		}
		fn(idx)
		a := len(dims) - 1
		for a >= 0 {
			idx[a]++
			if idx[a] < dims[a] {
				break
			}
			idx[a] = 0
			a--
		}
		if a < 0 {
			return
		}
	}
}

// checkTemplateInvariants verifies the three properties every template must
// satisfy: (1) ownership partitions the index space and agrees with
// Patches, (2) LocalCount sums to Size, and (3) LocalOffset is a bijection
// from each rank's owned indices onto [0, LocalCount).
func checkTemplateInvariants(t *testing.T, tpl *Template) {
	t.Helper()
	total := 0
	for r := 0; r < tpl.NumProcs(); r++ {
		total += tpl.LocalCount(r)
	}
	if total != tpl.Size() {
		t.Errorf("%v: local counts sum to %d, size is %d", tpl, total, tpl.Size())
	}

	// Ownership from Patches must agree with OwnerOf and tile the space.
	ownerFromPatches := map[string]int{}
	key := func(idx []int) string {
		b := make([]byte, 0, 16)
		for _, i := range idx {
			b = append(b, byte(i), byte(i>>8), ',')
		}
		return string(b)
	}
	for r := 0; r < tpl.NumProcs(); r++ {
		for _, p := range tpl.Patches(r) {
			forEachIndex(p.Shape(), func(rel []int) {
				idx := make([]int, len(rel))
				for a := range rel {
					idx[a] = p.Lo[a] + rel[a]
				}
				k := key(idx)
				if prev, dup := ownerFromPatches[k]; dup {
					t.Fatalf("%v: index %v in patches of both rank %d and %d", tpl, idx, prev, r)
				}
				ownerFromPatches[k] = r
			})
		}
	}
	if len(ownerFromPatches) != tpl.Size() {
		t.Errorf("%v: patches cover %d of %d indices", tpl, len(ownerFromPatches), tpl.Size())
	}

	seen := make([]map[int]bool, tpl.NumProcs())
	for r := range seen {
		seen[r] = map[int]bool{}
	}
	forEachIndex(tpl.Dims(), func(idx []int) {
		r := tpl.OwnerOf(idx)
		if r < 0 || r >= tpl.NumProcs() {
			t.Fatalf("%v: OwnerOf(%v) = %d out of range", tpl, idx, r)
		}
		if pr, ok := ownerFromPatches[key(idx)]; !ok || pr != r {
			t.Fatalf("%v: OwnerOf(%v)=%d but patches say %d (found=%v)", tpl, idx, r, pr, ok)
		}
		off := tpl.LocalOffset(r, idx)
		if off < 0 || off >= tpl.LocalCount(r) {
			t.Fatalf("%v: LocalOffset(%d, %v) = %d outside [0,%d)", tpl, r, idx, off, tpl.LocalCount(r))
		}
		if seen[r][off] {
			t.Fatalf("%v: rank %d local offset %d hit twice (at %v)", tpl, r, off, idx)
		}
		seen[r][off] = true
	})
	for r := range seen {
		if len(seen[r]) != tpl.LocalCount(r) {
			t.Errorf("%v: rank %d offsets cover %d of %d", tpl, r, len(seen[r]), tpl.LocalCount(r))
		}
	}
}

func mustTemplate(t *testing.T, dims []int, axes []AxisDist) *Template {
	t.Helper()
	tpl, err := NewTemplate(dims, axes)
	if err != nil {
		t.Fatal(err)
	}
	return tpl
}

func TestBlock1D(t *testing.T) {
	tpl := mustTemplate(t, []int{10}, []AxisDist{BlockAxis(3)})
	// ceil(10/3)=4: rank0=[0,4) rank1=[4,8) rank2=[8,10)
	wantCounts := []int{4, 4, 2}
	for r, w := range wantCounts {
		if got := tpl.LocalCount(r); got != w {
			t.Errorf("rank %d count = %d, want %d", r, got, w)
		}
	}
	if tpl.OwnerOf([]int{3}) != 0 || tpl.OwnerOf([]int{4}) != 1 || tpl.OwnerOf([]int{9}) != 2 {
		t.Error("block ownership wrong")
	}
	if off := tpl.LocalOffset(1, []int{5}); off != 1 {
		t.Errorf("LocalOffset(1, 5) = %d, want 1", off)
	}
	checkTemplateInvariants(t, tpl)
}

func TestCyclic1D(t *testing.T) {
	tpl := mustTemplate(t, []int{7}, []AxisDist{CyclicAxis(3)})
	// rank0: 0,3,6; rank1: 1,4; rank2: 2,5
	if tpl.LocalCount(0) != 3 || tpl.LocalCount(1) != 2 || tpl.LocalCount(2) != 2 {
		t.Error("cyclic counts wrong")
	}
	if tpl.OwnerOf([]int{4}) != 1 {
		t.Error("cyclic owner wrong")
	}
	if off := tpl.LocalOffset(0, []int{6}); off != 2 {
		t.Errorf("LocalOffset(0, 6) = %d, want 2", off)
	}
	checkTemplateInvariants(t, tpl)
}

func TestBlockCyclic1D(t *testing.T) {
	tpl := mustTemplate(t, []int{10}, []AxisDist{BlockCyclicAxis(2, 2)})
	// Blocks of 2 dealt to 2 ranks: r0: [0,2),[4,6),[8,10); r1: [2,4),[6,8)
	if tpl.LocalCount(0) != 6 || tpl.LocalCount(1) != 4 {
		t.Errorf("counts = %d,%d", tpl.LocalCount(0), tpl.LocalCount(1))
	}
	if tpl.OwnerOf([]int{5}) != 0 || tpl.OwnerOf([]int{6}) != 1 {
		t.Error("block-cyclic owner wrong")
	}
	if off := tpl.LocalOffset(0, []int{8}); off != 4 {
		t.Errorf("LocalOffset(0, 8) = %d, want 4", off)
	}
	checkTemplateInvariants(t, tpl)
}

func TestBlockCyclicPartialLastBlock(t *testing.T) {
	// Length 11, block 3, 2 ranks: blocks [0,3)r0 [3,6)r1 [6,9)r0 [9,11)r1.
	tpl := mustTemplate(t, []int{11}, []AxisDist{BlockCyclicAxis(2, 3)})
	if tpl.LocalCount(0) != 6 || tpl.LocalCount(1) != 5 {
		t.Errorf("counts = %d,%d", tpl.LocalCount(0), tpl.LocalCount(1))
	}
	checkTemplateInvariants(t, tpl)
}

func TestGenBlock1D(t *testing.T) {
	tpl := mustTemplate(t, []int{10}, []AxisDist{GenBlockAxis([]int{1, 6, 3})})
	if tpl.OwnerOf([]int{0}) != 0 || tpl.OwnerOf([]int{1}) != 1 || tpl.OwnerOf([]int{6}) != 1 || tpl.OwnerOf([]int{7}) != 2 {
		t.Error("genblock owner wrong")
	}
	checkTemplateInvariants(t, tpl)
}

func TestGenBlockZeroSizedBlock(t *testing.T) {
	tpl := mustTemplate(t, []int{5}, []AxisDist{GenBlockAxis([]int{0, 5, 0})})
	if tpl.LocalCount(0) != 0 || tpl.LocalCount(1) != 5 || tpl.LocalCount(2) != 0 {
		t.Error("zero-sized genblock counts wrong")
	}
	if got := tpl.Patches(0); got != nil {
		t.Errorf("empty rank has patches %v", got)
	}
	checkTemplateInvariants(t, tpl)
}

func TestImplicit1D(t *testing.T) {
	owner := []int{2, 0, 2, 1, 0, 1, 2, 2}
	tpl := mustTemplate(t, []int{8}, []AxisDist{ImplicitAxis(3, owner)})
	for g, o := range owner {
		if got := tpl.OwnerOf([]int{g}); got != o {
			t.Errorf("OwnerOf(%d) = %d, want %d", g, got, o)
		}
	}
	// Rank 2 owns indices 0,2,6,7 → positions 0,1,2,3.
	if off := tpl.LocalOffset(2, []int{6}); off != 2 {
		t.Errorf("LocalOffset(2, 6) = %d, want 2", off)
	}
	checkTemplateInvariants(t, tpl)
}

func TestCollapsedAxis2D(t *testing.T) {
	tpl := mustTemplate(t, []int{4, 6}, []AxisDist{BlockAxis(2), CollapsedAxis()})
	if tpl.NumProcs() != 2 {
		t.Fatalf("nprocs = %d", tpl.NumProcs())
	}
	if !reflect.DeepEqual(tpl.LocalShape(0), []int{2, 6}) {
		t.Errorf("local shape = %v", tpl.LocalShape(0))
	}
	checkTemplateInvariants(t, tpl)
}

func Test2DBlockBlockGrid(t *testing.T) {
	tpl := mustTemplate(t, []int{8, 8}, []AxisDist{BlockAxis(2), BlockAxis(4)})
	if tpl.NumProcs() != 8 {
		t.Fatalf("nprocs = %d", tpl.NumProcs())
	}
	// Row-major rank mapping: coords (1,2) → rank 1*4+2 = 6.
	if r := tpl.RankOf([]int{1, 2}); r != 6 {
		t.Errorf("RankOf(1,2) = %d", r)
	}
	if !reflect.DeepEqual(tpl.Coords(6), []int{1, 2}) {
		t.Errorf("Coords(6) = %v", tpl.Coords(6))
	}
	if got := tpl.OwnerOf([]int{5, 5}); got != 6 {
		t.Errorf("OwnerOf(5,5) = %d, want 6", got)
	}
	checkTemplateInvariants(t, tpl)
}

func Test3DFigure1Decompositions(t *testing.T) {
	// The Figure 1 setup: the same 6×6×6 space on 8 (2×2×2) and 27 (3×3×3)
	// ranks.
	m := mustTemplate(t, []int{6, 6, 6}, []AxisDist{BlockAxis(2), BlockAxis(2), BlockAxis(2)})
	n := mustTemplate(t, []int{6, 6, 6}, []AxisDist{BlockAxis(3), BlockAxis(3), BlockAxis(3)})
	if m.NumProcs() != 8 || n.NumProcs() != 27 {
		t.Fatalf("procs = %d, %d", m.NumProcs(), n.NumProcs())
	}
	if !m.Conforms(n) {
		t.Error("templates should conform")
	}
	checkTemplateInvariants(t, m)
	checkTemplateInvariants(t, n)
}

func TestMixedKinds2D(t *testing.T) {
	tpl := mustTemplate(t, []int{9, 12}, []AxisDist{CyclicAxis(2), BlockCyclicAxis(3, 2)})
	checkTemplateInvariants(t, tpl)
}

func TestExplicitTemplate(t *testing.T) {
	// 4×4 split into 3 patches over 2 ranks.
	patches := []Patch{
		NewPatch([]int{0, 0}, []int{2, 4}, 0),
		NewPatch([]int{2, 0}, []int{4, 2}, 1),
		NewPatch([]int{2, 2}, []int{4, 4}, 0),
	}
	tpl, err := NewExplicitTemplate([]int{4, 4}, 2, patches)
	if err != nil {
		t.Fatal(err)
	}
	if !tpl.IsExplicit() {
		t.Error("IsExplicit = false")
	}
	if tpl.LocalCount(0) != 12 || tpl.LocalCount(1) != 4 {
		t.Errorf("counts = %d,%d", tpl.LocalCount(0), tpl.LocalCount(1))
	}
	if tpl.OwnerOf([]int{3, 1}) != 1 || tpl.OwnerOf([]int{3, 3}) != 0 {
		t.Error("explicit owner wrong")
	}
	// Rank 0's buffer: patch0 (8 elems) then patch2 (4 elems); index (2,3)
	// is patch2 position (0,1) → offset 8+1 = 9.
	if off := tpl.LocalOffset(0, []int{2, 3}); off != 9 {
		t.Errorf("LocalOffset = %d, want 9", off)
	}
	checkTemplateInvariants(t, tpl)
}

func TestExplicitValidation(t *testing.T) {
	dims := []int{4, 4}
	overlap := []Patch{
		NewPatch([]int{0, 0}, []int{3, 4}, 0),
		NewPatch([]int{2, 0}, []int{4, 4}, 1),
	}
	if _, err := NewExplicitTemplate(dims, 2, overlap); err == nil {
		t.Error("overlapping patches accepted")
	}
	gap := []Patch{NewPatch([]int{0, 0}, []int{2, 4}, 0)}
	if _, err := NewExplicitTemplate(dims, 2, gap); err == nil {
		t.Error("non-covering patches accepted")
	}
	bad := []Patch{NewPatch([]int{0, 0}, []int{5, 4}, 0)}
	if _, err := NewExplicitTemplate(dims, 2, bad); err == nil {
		t.Error("out-of-bounds patch accepted")
	}
	badOwner := []Patch{NewPatch([]int{0, 0}, []int{4, 4}, 7)}
	if _, err := NewExplicitTemplate(dims, 2, badOwner); err == nil {
		t.Error("bad owner accepted")
	}
}

func TestTemplateValidation(t *testing.T) {
	cases := []struct {
		name string
		dims []int
		axes []AxisDist
	}{
		{"no axes", nil, nil},
		{"axis count mismatch", []int{4}, []AxisDist{BlockAxis(2), BlockAxis(2)}},
		{"negative dim", []int{-1}, []AxisDist{BlockAxis(2)}},
		{"zero procs", []int{4}, []AxisDist{{Kind: Block, Procs: 0}}},
		{"collapsed multi", []int{4}, []AxisDist{{Kind: Collapsed, Procs: 2}}},
		{"blockcyclic no size", []int{4}, []AxisDist{{Kind: BlockCyclic, Procs: 2}}},
		{"genblock bad sum", []int{4}, []AxisDist{GenBlockAxis([]int{1, 1})}},
		{"genblock negative", []int{4}, []AxisDist{GenBlockAxis([]int{-1, 5})}},
		{"implicit short", []int{4}, []AxisDist{ImplicitAxis(2, []int{0})}},
		{"implicit bad owner", []int{2}, []AxisDist{ImplicitAxis(2, []int{0, 5})}},
	}
	for _, c := range cases {
		if _, err := NewTemplate(c.dims, c.axes); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}

func TestPatchAlgebra(t *testing.T) {
	p := NewPatch([]int{0, 0}, []int{4, 4}, 0)
	q := NewPatch([]int{2, 2}, []int{6, 6}, 1)
	got, ok := p.Intersect(q)
	if !ok || !reflect.DeepEqual(got.Lo, []int{2, 2}) || !reflect.DeepEqual(got.Hi, []int{4, 4}) {
		t.Errorf("intersect = %v ok=%v", got, ok)
	}
	r := NewPatch([]int{4, 0}, []int{6, 4}, 2)
	if _, ok := p.Intersect(r); ok {
		t.Error("touching patches reported overlapping")
	}
	if p.Size() != 16 || got.Size() != 4 {
		t.Error("sizes wrong")
	}
	if !p.Contains([]int{3, 3}) || p.Contains([]int{4, 0}) {
		t.Error("contains wrong")
	}
}

func TestIntervalAlgebra(t *testing.T) {
	a := Interval{2, 7}
	b := Interval{5, 10}
	got, ok := a.Intersect(b)
	if !ok || got != (Interval{5, 7}) {
		t.Errorf("intersect = %v ok=%v", got, ok)
	}
	if _, ok := a.Intersect(Interval{7, 9}); ok {
		t.Error("touching intervals overlap")
	}
	if a.Len() != 5 {
		t.Error("len wrong")
	}
}

func TestKeyDistinguishesTemplates(t *testing.T) {
	a := mustTemplate(t, []int{8}, []AxisDist{BlockAxis(2)})
	b := mustTemplate(t, []int{8}, []AxisDist{CyclicAxis(2)})
	c := mustTemplate(t, []int{8}, []AxisDist{BlockAxis(2)})
	if a.Key() == b.Key() {
		t.Error("block and cyclic share a key")
	}
	if a.Key() != c.Key() {
		t.Error("identical templates have different keys")
	}
	d := mustTemplate(t, []int{8}, []AxisDist{BlockCyclicAxis(2, 2)})
	e := mustTemplate(t, []int{8}, []AxisDist{BlockCyclicAxis(2, 4)})
	if d.Key() == e.Key() {
		t.Error("different block sizes share a key")
	}
}

func randomAxis(rng *rand.Rand, n int) AxisDist {
	p := 1 + rng.Intn(4)
	switch rng.Intn(6) {
	case 0:
		return CollapsedAxis()
	case 1:
		return BlockAxis(p)
	case 2:
		return CyclicAxis(p)
	case 3:
		return BlockCyclicAxis(p, 1+rng.Intn(3))
	case 4:
		sizes := make([]int, p)
		left := n
		for i := 0; i < p-1; i++ {
			s := 0
			if left > 0 {
				s = rng.Intn(left + 1)
			}
			sizes[i] = s
			left -= s
		}
		sizes[p-1] = left
		return GenBlockAxis(sizes)
	default:
		owner := make([]int, n)
		for i := range owner {
			owner[i] = rng.Intn(p)
		}
		return ImplicitAxis(p, owner)
	}
}

// RandomTemplate builds a random valid regular template; exported to the
// package tests (schedule reuses it via its own generator).
func randomTemplate(rng *rand.Rand, dims []int) *Template {
	axes := make([]AxisDist, len(dims))
	for a := range axes {
		axes[a] = randomAxis(rng, dims[a])
	}
	tpl, err := NewTemplate(dims, axes)
	if err != nil {
		panic(err)
	}
	return tpl
}

func TestPropertyRandomTemplates(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 60; trial++ {
		nd := 1 + rng.Intn(3)
		dims := make([]int, nd)
		for a := range dims {
			dims[a] = 1 + rng.Intn(9)
		}
		tpl := randomTemplate(rng, dims)
		checkTemplateInvariants(t, tpl)
		if t.Failed() {
			t.Fatalf("failing template: %s key=%s", tpl, tpl.Key())
		}
	}
}

func TestPropertyRandomExplicitTemplates(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		// Build a tiling by recursive bisection of a 2-D box.
		dims := []int{2 + rng.Intn(8), 2 + rng.Intn(8)}
		nprocs := 1 + rng.Intn(5)
		var patches []Patch
		var split func(lo, hi []int, depth int)
		split = func(lo, hi []int, depth int) {
			if depth == 0 || rng.Intn(3) == 0 {
				patches = append(patches, NewPatch(lo, hi, rng.Intn(nprocs)))
				return
			}
			a := rng.Intn(2)
			if hi[a]-lo[a] < 2 {
				patches = append(patches, NewPatch(lo, hi, rng.Intn(nprocs)))
				return
			}
			cut := lo[a] + 1 + rng.Intn(hi[a]-lo[a]-1)
			hi1 := append([]int(nil), hi...)
			hi1[a] = cut
			lo2 := append([]int(nil), lo...)
			lo2[a] = cut
			split(lo, hi1, depth-1)
			split(lo2, hi, depth-1)
		}
		split([]int{0, 0}, dims, 4)
		tpl, err := NewExplicitTemplate(dims, nprocs, patches)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		checkTemplateInvariants(t, tpl)
		if t.Failed() {
			t.Fatalf("failing explicit template: %s", tpl)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		dims := []int{1 + rng.Intn(8), 1 + rng.Intn(8)}
		tpl := randomTemplate(rng, dims)
		e := wire.NewEncoder(nil)
		tpl.Encode(e)
		got, err := DecodeTemplate(wire.NewDecoder(e.Bytes()))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got.Key() != tpl.Key() {
			t.Errorf("round trip changed template:\n  in:  %s\n  out: %s", tpl.Key(), got.Key())
		}
	}
	// Explicit template round trip.
	patches := []Patch{
		NewPatch([]int{0, 0}, []int{2, 4}, 1),
		NewPatch([]int{2, 0}, []int{4, 4}, 0),
	}
	tpl, err := NewExplicitTemplate([]int{4, 4}, 2, patches)
	if err != nil {
		t.Fatal(err)
	}
	e := wire.NewEncoder(nil)
	tpl.Encode(e)
	got, err := DecodeTemplate(wire.NewDecoder(e.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Key() != tpl.Key() {
		t.Error("explicit round trip changed template")
	}
}

func TestDecodeCorrupt(t *testing.T) {
	if _, err := DecodeTemplate(wire.NewDecoder([]byte{99})); err == nil {
		t.Error("bad tag accepted")
	}
	if _, err := DecodeTemplate(wire.NewDecoder(nil)); err == nil {
		t.Error("empty buffer accepted")
	}
}

func TestDescriptor(t *testing.T) {
	tpl := mustTemplate(t, []int{8}, []AxisDist{BlockAxis(2)})
	d, err := NewDescriptor("temperature", Float64, ReadWrite, tpl)
	if err != nil {
		t.Fatal(err)
	}
	if d.LocalLen(0) != 4 {
		t.Errorf("LocalLen = %d", d.LocalLen(0))
	}
	if !d.Mode.CanRead() || !d.Mode.CanWrite() {
		t.Error("mode flags wrong")
	}
	e := wire.NewEncoder(nil)
	d.Encode(e)
	got, err := DecodeDescriptor(wire.NewDecoder(e.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "temperature" || got.Elem != Float64 || got.Mode != ReadWrite {
		t.Errorf("descriptor round trip: %v", got)
	}
	if _, err := NewDescriptor("", Float64, ReadOnly, tpl); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewDescriptor("x", Float64, Access(0), tpl); err == nil {
		t.Error("no access mode accepted")
	}
	if _, err := NewDescriptor("x", Float64, ReadOnly, nil); err == nil {
		t.Error("nil template accepted")
	}
}

func TestElemKindBytes(t *testing.T) {
	if Float64.Bytes() != 8 || Float32.Bytes() != 4 || Byte.Bytes() != 1 {
		t.Error("element sizes wrong")
	}
	if Int64.Bytes() != 8 || Int32.Bytes() != 4 || Complex128.Bytes() != 16 {
		t.Error("element sizes wrong")
	}
	if Complex128.String() != "complex128" {
		t.Errorf("Complex128.String() = %q", Complex128.String())
	}
}

func TestDescriptorComplex128RoundTrip(t *testing.T) {
	tpl := mustTemplate(t, []int{8}, []AxisDist{BlockAxis(2)})
	d, err := NewDescriptor("psi", Complex128, ReadWrite, tpl)
	if err != nil {
		t.Fatal(err)
	}
	var e wire.Encoder
	d.Encode(&e)
	got, err := DecodeDescriptor(wire.NewDecoder(e.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Elem != Complex128 || got.Name != "psi" {
		t.Fatalf("round trip: got %v", got)
	}
}

func TestAccessString(t *testing.T) {
	if ReadOnly.String() != "read" || ReadWrite.String() != "read/write" {
		t.Error("access strings wrong")
	}
}

func Test4DTemplate(t *testing.T) {
	// Higher-arity templates exercise the same per-axis machinery; the
	// invariants must hold in 4-D too.
	tpl := mustTemplate(t, []int{4, 3, 5, 2}, []AxisDist{
		BlockAxis(2), CyclicAxis(3), BlockCyclicAxis(2, 2), CollapsedAxis(),
	})
	if tpl.NumProcs() != 12 {
		t.Fatalf("nprocs = %d", tpl.NumProcs())
	}
	checkTemplateInvariants(t, tpl)
}

func Test4DScheduleViaRedistribution(t *testing.T) {
	// And a full 4-D redistribution round trip through the schedule layer
	// is covered from the schedule package; here verify conformance and
	// key stability across arities.
	a := mustTemplate(t, []int{2, 2, 2, 2}, []AxisDist{BlockAxis(2), CollapsedAxis(), CollapsedAxis(), CollapsedAxis()})
	b := mustTemplate(t, []int{2, 2, 2}, []AxisDist{BlockAxis(2), CollapsedAxis(), CollapsedAxis()})
	if a.Conforms(b) {
		t.Error("different-arity templates conform")
	}
	if a.Key() == b.Key() {
		t.Error("keys collide across arities")
	}
}
