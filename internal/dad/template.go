package dad

import (
	"fmt"
	"sort"
	"strings"
)

// Template describes the logical distribution of a dense multidimensional
// global index space across the ranks of a parallel component. Actual
// arrays are aligned to templates (see Descriptor); many arrays can share
// one template, which is what makes communication schedules reusable.
//
// A template is either regular — one AxisDist per axis over a process grid,
// with ranks assigned to grid coordinates in row-major order — or explicit:
// an arbitrary set of non-overlapping rectangular patches that tile the
// index space, each owned by a rank.
//
// Templates are immutable after construction and safe for concurrent use.
type Template struct {
	dims     []int
	axes     []AxisDist // regular templates; nil for explicit
	explicit []Patch    // explicit templates; nil for regular
	nprocs   int

	// Regular-template precomputation.
	gridStride []int   // row-major strides over the process grid
	axisPos    [][]int // per-axis local positions for Implicit axes

	// Explicit-template precomputation.
	rankPatches [][]int // rank -> indices into explicit
	rankOffsets [][]int // rank -> starting offset of each patch in the local buffer
	rankCounts  []int   // rank -> total local elements
}

// NewTemplate builds a regular template: dims gives the global extent per
// axis, axes the per-axis distribution. The number of ranks is the product
// of the per-axis process-grid extents, with ranks mapped to grid
// coordinates in row-major order.
func NewTemplate(dims []int, axes []AxisDist) (*Template, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("dad: template needs at least one axis")
	}
	if len(axes) != len(dims) {
		return nil, fmt.Errorf("dad: %d axis distributions for %d dims", len(axes), len(dims))
	}
	for a, d := range dims {
		if d < 0 {
			return nil, fmt.Errorf("dad: dim %d is negative (%d)", a, d)
		}
		if err := axes[a].validate(d); err != nil {
			return nil, fmt.Errorf("axis %d: %w", a, err)
		}
	}
	t := &Template{
		dims:   append([]int(nil), dims...),
		axes:   make([]AxisDist, len(axes)),
		nprocs: 1,
	}
	copy(t.axes, axes)
	// Row-major rank mapping: rank = sum coords[a]*stride[a], with the last
	// grid axis varying fastest.
	t.gridStride = make([]int, len(axes))
	for a := len(axes) - 1; a >= 0; a-- {
		t.gridStride[a] = t.nprocs
		t.nprocs *= axes[a].Procs
	}
	// Precompute local positions for implicit axes so LocalOffset is O(1).
	t.axisPos = make([][]int, len(axes))
	for a, ax := range t.axes {
		if ax.Kind != Implicit {
			continue
		}
		pos := make([]int, dims[a])
		counters := make([]int, ax.Procs)
		for g := 0; g < dims[a]; g++ {
			c := ax.Owner[g]
			pos[g] = counters[c]
			counters[c]++
		}
		t.axisPos[a] = pos
	}
	// Precompute per-rank local element counts: LocalCount sits on the
	// transfer hot path (buffer validation on every exchange) and must not
	// allocate grid coordinates per call.
	t.rankCounts = make([]int, t.nprocs)
	for r := 0; r < t.nprocs; r++ {
		n := 1
		for a := range t.axes {
			c := (r / t.gridStride[a]) % t.axes[a].Procs
			n *= t.axes[a].localCount(t.dims[a], c)
		}
		t.rankCounts[r] = n
	}
	return t, nil
}

// NewExplicitTemplate builds an explicit template over nprocs ranks from
// patches that must not overlap and must completely tile the dims box
// (the paper's Explicit distribution contract).
func NewExplicitTemplate(dims []int, nprocs int, patches []Patch) (*Template, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("dad: template needs at least one axis")
	}
	if nprocs < 1 {
		return nil, fmt.Errorf("dad: explicit template needs at least one rank")
	}
	total := 1
	for a, d := range dims {
		if d < 0 {
			return nil, fmt.Errorf("dad: dim %d is negative (%d)", a, d)
		}
		total *= d
	}
	// Validate every patch before the pairwise overlap pass: Intersect
	// assumes both operands span len(dims) axes, so a malformed later patch
	// must be rejected before an earlier one is intersected against it.
	covered := 0
	for _, p := range patches {
		if err := p.validate(dims, nprocs); err != nil {
			return nil, err
		}
		covered += p.Size()
	}
	for i, p := range patches {
		for j := i + 1; j < len(patches); j++ {
			if _, overlap := p.Intersect(patches[j]); overlap {
				return nil, fmt.Errorf("dad: patches %v and %v overlap", p, patches[j])
			}
		}
	}
	if covered != total {
		return nil, fmt.Errorf("dad: patches cover %d of %d elements", covered, total)
	}
	t := &Template{
		dims:     append([]int(nil), dims...),
		explicit: make([]Patch, len(patches)),
		nprocs:   nprocs,
	}
	for i, p := range patches {
		t.explicit[i] = NewPatch(p.Lo, p.Hi, p.Owner)
	}
	t.rankPatches = make([][]int, nprocs)
	t.rankOffsets = make([][]int, nprocs)
	t.rankCounts = make([]int, nprocs)
	for i, p := range t.explicit {
		r := p.Owner
		t.rankPatches[r] = append(t.rankPatches[r], i)
		t.rankOffsets[r] = append(t.rankOffsets[r], t.rankCounts[r])
		t.rankCounts[r] += p.Size()
	}
	return t, nil
}

// IsExplicit reports whether the template uses the global explicit
// (arbitrary rectangular patch) distribution.
func (t *Template) IsExplicit() bool { return t.explicit != nil }

// Dims returns a copy of the global extents.
func (t *Template) Dims() []int { return append([]int(nil), t.dims...) }

// Dim returns the global extent of axis a without copying (the
// allocation-free alternative to Dims for per-axis hot paths).
func (t *Template) Dim(a int) int { return t.dims[a] }

// NumAxes returns the template dimensionality.
func (t *Template) NumAxes() int { return len(t.dims) }

// NumProcs returns the number of ranks the template is distributed over.
func (t *Template) NumProcs() int { return t.nprocs }

// Size returns the total number of elements in the global index space.
func (t *Template) Size() int {
	n := 1
	for _, d := range t.dims {
		n *= d
	}
	return n
}

// Axis returns the distribution of axis a. Panics for explicit templates.
func (t *Template) Axis(a int) AxisDist {
	if t.IsExplicit() {
		panic("dad: Axis on explicit template")
	}
	return t.axes[a]
}

// Coords returns the process-grid coordinates of a rank (regular templates
// only; explicit templates have no grid).
func (t *Template) Coords(rank int) []int {
	if t.IsExplicit() {
		panic("dad: Coords on explicit template")
	}
	coords := make([]int, len(t.axes))
	for a := range t.axes {
		coords[a] = (rank / t.gridStride[a]) % t.axes[a].Procs
	}
	return coords
}

// RankOf returns the rank at the given process-grid coordinates.
func (t *Template) RankOf(coords []int) int {
	if t.IsExplicit() {
		panic("dad: RankOf on explicit template")
	}
	r := 0
	for a, c := range coords {
		if c < 0 || c >= t.axes[a].Procs {
			panic(fmt.Sprintf("dad: coordinate %d outside axis %d grid of %d", c, a, t.axes[a].Procs))
		}
		r += c * t.gridStride[a]
	}
	return r
}

// OwnerOf returns the rank owning the global index idx.
func (t *Template) OwnerOf(idx []int) int {
	if t.IsExplicit() {
		for _, p := range t.explicit {
			if p.Contains(idx) {
				return p.Owner
			}
		}
		panic(fmt.Sprintf("dad: index %v outside template %v", idx, t.dims))
	}
	r := 0
	for a := range t.axes {
		c := t.axes[a].owner(t.dims[a], idx[a])
		r += c * t.gridStride[a]
	}
	return r
}

// Patches returns the global rectangles owned by rank, in the canonical
// order matching the rank's local buffer layout. For regular templates this
// is the row-major cartesian product of per-axis interval lists; for
// explicit templates it is the registration order of the rank's patches.
func (t *Template) Patches(rank int) []Patch {
	if t.IsExplicit() {
		out := make([]Patch, 0, len(t.rankPatches[rank]))
		for _, i := range t.rankPatches[rank] {
			out = append(out, t.explicit[i])
		}
		return out
	}
	coords := t.Coords(rank)
	ivs := make([][]Interval, len(t.axes))
	for a := range t.axes {
		ivs[a] = t.axes[a].intervals(t.dims[a], coords[a])
		if len(ivs[a]) == 0 {
			return nil
		}
	}
	// Cartesian product in row-major order over the interval lists.
	var out []Patch
	sel := make([]int, len(ivs))
	for {
		lo := make([]int, len(ivs))
		hi := make([]int, len(ivs))
		for a := range ivs {
			lo[a] = ivs[a][sel[a]].Lo
			hi[a] = ivs[a][sel[a]].Hi
		}
		out = append(out, Patch{Lo: lo, Hi: hi, Owner: rank})
		a := len(ivs) - 1
		for a >= 0 {
			sel[a]++
			if sel[a] < len(ivs[a]) {
				break
			}
			sel[a] = 0
			a--
		}
		if a < 0 {
			return out
		}
	}
}

// LocalCount returns the number of elements rank owns.
func (t *Template) LocalCount(rank int) int {
	return t.rankCounts[rank]
}

// LocalShape returns the per-axis extent of rank's canonical local buffer
// (regular templates only).
func (t *Template) LocalShape(rank int) []int {
	if t.IsExplicit() {
		panic("dad: LocalShape on explicit template")
	}
	coords := t.Coords(rank)
	s := make([]int, len(t.axes))
	for a := range t.axes {
		s[a] = t.axes[a].localCount(t.dims[a], coords[a])
	}
	return s
}

// LocalOffset returns the offset of global index idx within the canonical
// local buffer of the rank that owns it (which must be rank).
//
// Canonical layout: for regular templates, a dense row-major array of the
// rank's per-axis owned index sets in increasing global order (the standard
// HPF local layout); for explicit templates, the concatenation of the
// rank's patches in registration order, each stored row-major.
func (t *Template) LocalOffset(rank int, idx []int) int {
	if t.IsExplicit() {
		for k, pi := range t.rankPatches[rank] {
			p := t.explicit[pi]
			if p.Contains(idx) {
				return t.rankOffsets[rank][k] + rowMajorOffset(idx, p.Lo, p.Shape())
			}
		}
		panic(fmt.Sprintf("dad: index %v not owned by rank %d", idx, rank))
	}
	coords := t.Coords(rank)
	off := 0
	for a := range t.axes {
		var li int
		if pos := t.axisPos[a]; pos != nil {
			li = pos[idx[a]]
		} else {
			li = t.axes[a].localIndex(t.dims[a], idx[a], coords[a])
		}
		off = off*t.axes[a].localCount(t.dims[a], coords[a]) + li
	}
	return off
}

// Regular reports whether the template's per-rank ownership has a closed
// form on every axis: it is not explicit and carries no Implicit axis.
// Regular templates admit arithmetic (patch-enumeration-free) schedule
// planning against a compatible peer; see ClosedFormPair.
func (t *Template) Regular() bool {
	if t.IsExplicit() {
		return false
	}
	for _, ax := range t.axes {
		if ax.Class() == ClassIrregular {
			return false
		}
	}
	return true
}

// ClosedFormPair reports whether a redistribution between t and other can
// be planned entirely in closed form: both templates are Regular, they
// conform, and on every axis where both sides are ClassStrided the dealt
// block sizes agree (so the two sides partition the axis into the same
// aligned blocks and the intersection of two coordinates' ownership is an
// arithmetic progression of whole blocks). Interval×interval and
// interval×strided axis pairs always have closed forms; strided pairs
// with differing block sizes fall back to interval enumeration.
func (t *Template) ClosedFormPair(other *Template) bool {
	if !t.Regular() || !other.Regular() || !t.Conforms(other) {
		return false
	}
	for a := range t.axes {
		sa, da := t.axes[a], other.axes[a]
		if sa.Class() == ClassStrided && da.Class() == ClassStrided && sa.StrideBlock() != da.StrideBlock() {
			return false
		}
	}
	return true
}

// Conforms reports whether two templates describe the same global index
// space (same dims), which is the precondition for redistribution between
// them.
func (t *Template) Conforms(other *Template) bool {
	if len(t.dims) != len(other.dims) {
		return false
	}
	for a := range t.dims {
		if t.dims[a] != other.dims[a] {
			return false
		}
	}
	return true
}

// Key returns a canonical string identifying the template's distribution,
// used to key schedule caches: two templates with equal keys produce
// identical schedules.
func (t *Template) Key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "d%v/p%d", t.dims, t.nprocs)
	if t.IsExplicit() {
		b.WriteString("/X")
		// Canonical order: sort a copy by owner then Lo.
		ps := append([]Patch(nil), t.explicit...)
		sort.Slice(ps, func(i, j int) bool {
			if ps[i].Owner != ps[j].Owner {
				return ps[i].Owner < ps[j].Owner
			}
			for a := range ps[i].Lo {
				if ps[i].Lo[a] != ps[j].Lo[a] {
					return ps[i].Lo[a] < ps[j].Lo[a]
				}
			}
			return false
		})
		for _, p := range ps {
			b.WriteString(p.String())
		}
		return b.String()
	}
	for a, ax := range t.axes {
		fmt.Fprintf(&b, "/a%d:%s:%d", a, ax.Kind, ax.Procs)
		switch ax.Kind {
		case BlockCyclic:
			fmt.Fprintf(&b, ":b%d", ax.BlockSize)
		case GenBlock:
			fmt.Fprintf(&b, ":s%v", ax.Sizes)
		case Implicit:
			fmt.Fprintf(&b, ":o%v", ax.Owner)
		}
	}
	return b.String()
}

// String summarizes the template.
func (t *Template) String() string {
	if t.IsExplicit() {
		return fmt.Sprintf("Template(dims=%v, explicit %d patches over %d ranks)", t.dims, len(t.explicit), t.nprocs)
	}
	kinds := make([]string, len(t.axes))
	for a, ax := range t.axes {
		kinds[a] = fmt.Sprintf("%s×%d", ax.Kind, ax.Procs)
	}
	return fmt.Sprintf("Template(dims=%v, axes=[%s])", t.dims, strings.Join(kinds, ", "))
}
