package dad

import (
	"fmt"

	"mxn/internal/wire"
)

// Template wire encoding: templates cross framework boundaries when an M×N
// connection is negotiated between distributed components, so they need a
// stable serialization.

const (
	encRegular  byte = 1
	encExplicit byte = 2
)

// maxDecodeProcs bounds the rank count a decoded template may claim: far
// above any deployment this runtime serves, far below what would let a
// corrupt frame drive an enormous allocation.
const maxDecodeProcs = 1 << 22

// Encode appends the template's wire form to e.
func (t *Template) Encode(e *wire.Encoder) {
	if t.IsExplicit() {
		e.PutByte(encExplicit)
		e.PutInts(t.dims)
		e.PutInt(t.nprocs)
		e.PutUvarint(uint64(len(t.explicit)))
		for _, p := range t.explicit {
			e.PutInts(p.Lo)
			e.PutInts(p.Hi)
			e.PutInt(p.Owner)
		}
		return
	}
	e.PutByte(encRegular)
	e.PutInts(t.dims)
	e.PutUvarint(uint64(len(t.axes)))
	for _, ax := range t.axes {
		e.PutByte(byte(ax.Kind))
		e.PutInt(ax.Procs)
		e.PutInt(ax.BlockSize)
		e.PutInts(ax.Sizes)
		e.PutInts(ax.Owner)
	}
}

// DecodeTemplate reads a template written by Encode. The result is
// revalidated, so a corrupt or hostile peer cannot produce an inconsistent
// descriptor.
func DecodeTemplate(d *wire.Decoder) (*Template, error) {
	switch tag := d.Byte(); tag {
	case encExplicit:
		dims := d.Ints()
		nprocs := d.Int()
		// NewExplicitTemplate allocates per-rank tables, so a corrupt rank
		// count must be rejected before construction.
		if nprocs < 1 || nprocs > maxDecodeProcs {
			return nil, fmt.Errorf("%w: explicit template claims %d ranks", wire.ErrCorrupt, nprocs)
		}
		n := d.Uvarint()
		// A corrupt length prefix must not drive a huge allocation: every
		// patch costs at least ten encoded bytes (two length prefixes and
		// the owner), so bound the count by the bytes actually present.
		if d.Err() != nil || n > uint64(d.Remaining()) {
			return nil, wire.ErrCorrupt
		}
		patches := make([]Patch, 0, n)
		for i := uint64(0); i < n; i++ {
			lo := d.Ints()
			hi := d.Ints()
			owner := d.Int()
			if d.Err() != nil {
				return nil, d.Err()
			}
			patches = append(patches, Patch{Lo: lo, Hi: hi, Owner: owner})
		}
		return NewExplicitTemplate(dims, nprocs, patches)
	case encRegular:
		dims := d.Ints()
		n := d.Uvarint()
		if d.Err() != nil || n > uint64(d.Remaining()) {
			return nil, wire.ErrCorrupt
		}
		axes := make([]AxisDist, 0, n)
		totalProcs := 1
		for i := uint64(0); i < n; i++ {
			ax := AxisDist{
				Kind:      Kind(d.Byte()),
				Procs:     d.Int(),
				BlockSize: d.Int(),
				Sizes:     d.Ints(),
				Owner:     d.Ints(),
			}
			if d.Err() != nil {
				return nil, d.Err()
			}
			// NewTemplate allocates per-coordinate tables and multiplies the
			// per-axis extents into a rank count, so a corrupt Procs must be
			// bounded here — per axis and as a running product — before
			// construction can act on it.
			if ax.Procs < 1 || ax.Procs > maxDecodeProcs {
				return nil, fmt.Errorf("%w: axis %d claims %d process coordinates", wire.ErrCorrupt, i, ax.Procs)
			}
			totalProcs *= ax.Procs
			if totalProcs > maxDecodeProcs {
				return nil, fmt.Errorf("%w: template rank grid exceeds %d", wire.ErrCorrupt, maxDecodeProcs)
			}
			axes = append(axes, ax)
		}
		return NewTemplate(dims, axes)
	default:
		if d.Err() != nil {
			return nil, d.Err()
		}
		return nil, fmt.Errorf("dad: unknown template encoding tag %d", tag)
	}
}

// EncodeDescriptor appends the descriptor's wire form to e.
func (desc *Descriptor) Encode(e *wire.Encoder) {
	e.PutString(desc.Name)
	e.PutByte(byte(desc.Elem))
	e.PutByte(byte(desc.Mode))
	desc.Template.Encode(e)
}

// DecodeDescriptor reads a descriptor written by Descriptor.Encode.
func DecodeDescriptor(d *wire.Decoder) (*Descriptor, error) {
	name := d.String()
	elem := ElemKind(d.Byte())
	mode := Access(d.Byte())
	// ElemKind.Bytes panics on unknown kinds, so a corrupt element tag must
	// be rejected here rather than at first use.
	switch elem {
	case Float64, Float32, Int64, Int32, Byte, Complex128:
	default:
		return nil, fmt.Errorf("%w: unknown element kind %d", wire.ErrCorrupt, int(elem))
	}
	t, err := DecodeTemplate(d)
	if err != nil {
		return nil, err
	}
	return NewDescriptor(name, elem, mode, t)
}
