package dad

import (
	"fmt"

	"mxn/internal/wire"
)

// Template wire encoding: templates cross framework boundaries when an M×N
// connection is negotiated between distributed components, so they need a
// stable serialization.

const (
	encRegular  byte = 1
	encExplicit byte = 2
)

// Encode appends the template's wire form to e.
func (t *Template) Encode(e *wire.Encoder) {
	if t.IsExplicit() {
		e.PutByte(encExplicit)
		e.PutInts(t.dims)
		e.PutInt(t.nprocs)
		e.PutUvarint(uint64(len(t.explicit)))
		for _, p := range t.explicit {
			e.PutInts(p.Lo)
			e.PutInts(p.Hi)
			e.PutInt(p.Owner)
		}
		return
	}
	e.PutByte(encRegular)
	e.PutInts(t.dims)
	e.PutUvarint(uint64(len(t.axes)))
	for _, ax := range t.axes {
		e.PutByte(byte(ax.Kind))
		e.PutInt(ax.Procs)
		e.PutInt(ax.BlockSize)
		e.PutInts(ax.Sizes)
		e.PutInts(ax.Owner)
	}
}

// DecodeTemplate reads a template written by Encode. The result is
// revalidated, so a corrupt or hostile peer cannot produce an inconsistent
// descriptor.
func DecodeTemplate(d *wire.Decoder) (*Template, error) {
	switch tag := d.Byte(); tag {
	case encExplicit:
		dims := d.Ints()
		nprocs := d.Int()
		n := d.Uvarint()
		if d.Err() != nil {
			return nil, d.Err()
		}
		patches := make([]Patch, 0, n)
		for i := uint64(0); i < n; i++ {
			lo := d.Ints()
			hi := d.Ints()
			owner := d.Int()
			patches = append(patches, Patch{Lo: lo, Hi: hi, Owner: owner})
		}
		if d.Err() != nil {
			return nil, d.Err()
		}
		return NewExplicitTemplate(dims, nprocs, patches)
	case encRegular:
		dims := d.Ints()
		n := d.Uvarint()
		if d.Err() != nil {
			return nil, d.Err()
		}
		axes := make([]AxisDist, 0, n)
		for i := uint64(0); i < n; i++ {
			ax := AxisDist{
				Kind:      Kind(d.Byte()),
				Procs:     d.Int(),
				BlockSize: d.Int(),
				Sizes:     d.Ints(),
				Owner:     d.Ints(),
			}
			axes = append(axes, ax)
		}
		if d.Err() != nil {
			return nil, d.Err()
		}
		return NewTemplate(dims, axes)
	default:
		if d.Err() != nil {
			return nil, d.Err()
		}
		return nil, fmt.Errorf("dad: unknown template encoding tag %d", tag)
	}
}

// EncodeDescriptor appends the descriptor's wire form to e.
func (desc *Descriptor) Encode(e *wire.Encoder) {
	e.PutString(desc.Name)
	e.PutByte(byte(desc.Elem))
	e.PutByte(byte(desc.Mode))
	desc.Template.Encode(e)
}

// DecodeDescriptor reads a descriptor written by Descriptor.Encode.
func DecodeDescriptor(d *wire.Decoder) (*Descriptor, error) {
	name := d.String()
	elem := ElemKind(d.Byte())
	mode := Access(d.Byte())
	t, err := DecodeTemplate(d)
	if err != nil {
		return nil, err
	}
	return NewDescriptor(name, elem, mode, t)
}
