package dad

import "testing"

func TestValidityBitmap(t *testing.T) {
	v := NewValidity(130) // spans three words, partial last word
	if v.Len() != 130 || !v.AllValid() || v.CountValid() != 130 || v.CountInvalid() != 0 {
		t.Fatalf("fresh bitmap: len=%d valid=%d", v.Len(), v.CountValid())
	}
	if v.Valid(-1) || v.Valid(130) {
		t.Fatal("out-of-range index reported valid")
	}

	v.Invalidate(0)
	v.Invalidate(64)
	v.Invalidate(129)
	v.Invalidate(129) // idempotent
	v.Invalidate(500) // ignored
	if v.CountInvalid() != 3 {
		t.Fatalf("CountInvalid = %d, want 3", v.CountInvalid())
	}
	for _, i := range []int{0, 64, 129} {
		if v.Valid(i) {
			t.Errorf("element %d still valid", i)
		}
	}
	if !v.Valid(1) || !v.Valid(63) || !v.Valid(128) {
		t.Error("neighbors of invalidated elements were clobbered")
	}
	if v.AllValid() {
		t.Error("AllValid after invalidations")
	}

	v2 := NewValidity(40)
	v2.InvalidateRange(10, 5)
	v2.InvalidateRange(38, 10) // clips at 40
	if v2.CountInvalid() != 7 {
		t.Fatalf("CountInvalid = %d, want 7", v2.CountInvalid())
	}
	for i := 10; i < 15; i++ {
		if v2.Valid(i) {
			t.Errorf("element %d valid inside invalidated range", i)
		}
	}
	if !v2.Valid(9) || !v2.Valid(15) || !v2.Valid(37) {
		t.Error("InvalidateRange overshot")
	}

	if z := NewValidity(0); z.Len() != 0 || !z.AllValid() {
		t.Error("empty bitmap")
	}
}

func TestDescriptorValidityAttachment(t *testing.T) {
	tpl, err := NewTemplate([]int{16}, []AxisDist{BlockAxis(2)})
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDescriptor("f", Float64, ReadWrite, tpl)
	if err != nil {
		t.Fatal(err)
	}
	if d.Validity(0) != nil {
		t.Fatal("fresh descriptor has a bitmap")
	}
	v := NewValidity(8)
	v.Invalidate(3)
	d.SetValidity(1, v)
	if d.Validity(1) != v || d.Validity(0) != nil {
		t.Fatal("attachment is not per-rank")
	}
	d.SetValidity(1, nil)
	if d.Validity(1) != nil {
		t.Fatal("clearing the bitmap failed")
	}
	d.SetValidity(5, nil) // clearing an absent entry is a no-op
}
