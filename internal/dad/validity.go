package dad

import (
	"fmt"
	"math/bits"
)

// Validity is a per-element bitmap recording which positions of a local
// buffer hold trustworthy data. Failure-aware transfers use it to mark the
// holes a dead source rank left behind: a fenced redistribution that
// re-plans around a crash completes on the surviving pairs and invalidates
// exactly the elements whose only source died, so the application can tell
// real data from stale garbage.
//
// A fresh Validity is all-valid. Validity is not safe for concurrent
// mutation; the transfer that owns the buffer owns its bitmap.
type Validity struct {
	n     int
	words []uint64 // bit i set = element i valid
}

// NewValidity returns an all-valid bitmap over n elements.
func NewValidity(n int) *Validity {
	if n < 0 {
		panic(fmt.Sprintf("dad: NewValidity(%d)", n))
	}
	v := &Validity{n: n, words: make([]uint64, (n+63)/64)}
	for i := range v.words {
		v.words[i] = ^uint64(0)
	}
	if r := n % 64; r != 0 && len(v.words) > 0 {
		v.words[len(v.words)-1] = (uint64(1) << r) - 1
	}
	return v
}

// Len returns the number of elements covered.
func (v *Validity) Len() int { return v.n }

// Valid reports whether element i holds trustworthy data. Out-of-range
// indices are invalid.
func (v *Validity) Valid(i int) bool {
	if i < 0 || i >= v.n {
		return false
	}
	return v.words[i/64]&(1<<(i%64)) != 0
}

// Invalidate marks element i as lost. Out-of-range indices are ignored.
func (v *Validity) Invalidate(i int) {
	if i < 0 || i >= v.n {
		return
	}
	v.words[i/64] &^= 1 << (i % 64)
}

// InvalidateRange marks the n elements starting at lo as lost, clipping to
// the bitmap's bounds.
func (v *Validity) InvalidateRange(lo, n int) {
	for i := lo; i < lo+n; i++ {
		v.Invalidate(i)
	}
}

// CountValid returns how many elements are valid.
func (v *Validity) CountValid() int {
	c := 0
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// CountInvalid returns how many elements are lost.
func (v *Validity) CountInvalid() int { return v.n - v.CountValid() }

// AllValid reports whether no element has been invalidated.
func (v *Validity) AllValid() bool { return v.CountValid() == v.n }

// SetValidity records the validity bitmap of rank's local buffer for this
// descriptor, replacing any previous one. Pass nil to clear. Safe for
// concurrent use with Validity; the bitmaps themselves are owned by the
// transfer that wrote them.
func (d *Descriptor) SetValidity(rank int, v *Validity) {
	d.validityMu.Lock()
	defer d.validityMu.Unlock()
	if v == nil {
		delete(d.validity, rank)
		return
	}
	if d.validity == nil {
		d.validity = map[int]*Validity{}
	}
	d.validity[rank] = v
}

// Validity returns the bitmap recorded for rank's local buffer, or nil if
// none was set (meaning: all data valid, or no failure-aware transfer has
// run).
func (d *Descriptor) Validity(rank int) *Validity {
	d.validityMu.Lock()
	defer d.validityMu.Unlock()
	return d.validity[rank]
}
