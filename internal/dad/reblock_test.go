package dad

import (
	"errors"
	"testing"
)

func mustTpl(t *testing.T, dims []int, axes ...AxisDist) *Template {
	t.Helper()
	tp, err := NewTemplate(dims, axes)
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

// ownsEachOnce checks the reblocked template is a complete distribution:
// every rank's local count is consistent with ownership, and the counts
// sum to the global size.
func ownsEachOnce(t *testing.T, tp *Template) {
	t.Helper()
	sum := 0
	for r := 0; r < tp.NumProcs(); r++ {
		sum += tp.LocalCount(r)
	}
	if sum != tp.Size() {
		t.Fatalf("local counts sum to %d, template has %d elements", sum, tp.Size())
	}
}

func TestReblockBlock(t *testing.T) {
	old := mustTpl(t, []int{12}, BlockAxis(3))
	nt, err := Reblock(old, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := mustTpl(t, []int{12}, BlockAxis(4))
	if nt.Key() != want.Key() {
		t.Fatalf("reblocked key %q, want %q", nt.Key(), want.Key())
	}
	ownsEachOnce(t, nt)

	// Shrink keeps the family too.
	st, err := Reblock(old, 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Key() != mustTpl(t, []int{12}, BlockAxis(2)).Key() {
		t.Fatal("shrunk Block template is not Block over the new width")
	}
}

func TestReblockCyclicAndBlockCyclic(t *testing.T) {
	cy, err := Reblock(mustTpl(t, []int{20}, CyclicAxis(4)), 5)
	if err != nil {
		t.Fatal(err)
	}
	if cy.Key() != mustTpl(t, []int{20}, CyclicAxis(5)).Key() {
		t.Fatal("Cyclic did not stay Cyclic")
	}
	// BlockCyclic keeps its block size across the resize.
	bc, err := Reblock(mustTpl(t, []int{24}, BlockCyclicAxis(3, 2)), 4)
	if err != nil {
		t.Fatal(err)
	}
	if bc.Key() != mustTpl(t, []int{24}, BlockCyclicAxis(4, 2)).Key() {
		t.Fatal("BlockCyclic lost its block size")
	}
	ownsEachOnce(t, bc)
}

func TestReblockGenBlockRebalanced(t *testing.T) {
	// Lopsided 5/7 split re-derived over 3 ranks becomes balanced 4/4/4.
	old := mustTpl(t, []int{12}, GenBlockAxis([]int{5, 7}))
	nt, err := Reblock(old, 3)
	if err != nil {
		t.Fatal(err)
	}
	if nt.Key() != mustTpl(t, []int{12}, GenBlockAxis([]int{4, 4, 4})).Key() {
		t.Fatalf("rebalanced key %q", nt.Key())
	}
	// 5 elements over 3 ranks: ceil blocks 2,2,1.
	odd, err := Reblock(mustTpl(t, []int{5}, GenBlockAxis([]int{5})), 3)
	if err != nil {
		t.Fatal(err)
	}
	if odd.Key() != mustTpl(t, []int{5}, GenBlockAxis([]int{2, 2, 1})).Key() {
		t.Fatalf("odd rebalance key %q", odd.Key())
	}
	ownsEachOnce(t, odd)
}

func TestReblockSingleRankGrows(t *testing.T) {
	// A cohort of one can still grow: the first resizable axis spreads.
	old := mustTpl(t, []int{16}, BlockAxis(1))
	nt, err := Reblock(old, 4)
	if err != nil {
		t.Fatal(err)
	}
	if nt.Key() != mustTpl(t, []int{16}, BlockAxis(4)).Key() {
		t.Fatalf("single-rank grow key %q", nt.Key())
	}
	// All-Collapsed template: nothing to spread.
	flat := mustTpl(t, []int{16}, CollapsedAxis())
	if same, err := Reblock(flat, 1); err != nil || same != flat {
		t.Fatalf("collapsed reblock to width 1: %v %v", same, err)
	}
	var rbErr *ReblockError
	if _, err := Reblock(flat, 2); !errors.As(err, &rbErr) {
		t.Fatalf("collapsed reblock to width 2: err = %v, want *ReblockError", err)
	}
}

func TestReblockErrorsTyped(t *testing.T) {
	var rbErr *ReblockError
	if _, err := Reblock(mustTpl(t, []int{8}, BlockAxis(2)), 0); !errors.As(err, &rbErr) || rbErr.Axis != -1 {
		t.Fatalf("width 0: err = %v", err)
	}
	// Implicit owner maps have no re-derivation.
	imp := mustTpl(t, []int{4}, ImplicitAxis(2, []int{0, 1, 1, 0}))
	if _, err := Reblock(imp, 3); !errors.As(err, &rbErr) || rbErr.Axis != 0 {
		t.Fatalf("implicit: err = %v, want *ReblockError{Axis:0}", err)
	}
	// Explicit patch tilings neither.
	exp, err := NewExplicitTemplate([]int{8}, 2, []Patch{
		{Owner: 0, Lo: []int{0}, Hi: []int{4}},
		{Owner: 1, Lo: []int{4}, Hi: []int{8}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Reblock(exp, 3); !errors.As(err, &rbErr) || rbErr.Axis != -1 {
		t.Fatalf("explicit: err = %v", err)
	}
	// Two distributed axes are ambiguous for Reblock — ReblockGrid territory.
	grid := mustTpl(t, []int{8, 8}, BlockAxis(2), BlockAxis(2))
	if _, err := Reblock(grid, 8); !errors.As(err, &rbErr) || rbErr.Axis != -1 {
		t.Fatalf("2-D grid via Reblock: err = %v", err)
	}
}

func TestReblockGrid(t *testing.T) {
	old := mustTpl(t, []int{8, 12}, BlockAxis(2), GenBlockAxis([]int{5, 7}))
	// Resize axis 0 only: axis 1 keeps its GenBlock sizes verbatim.
	nt, err := ReblockGrid(old, []int{4, 2})
	if err != nil {
		t.Fatal(err)
	}
	want := mustTpl(t, []int{8, 12}, BlockAxis(4), GenBlockAxis([]int{5, 7}))
	if nt.Key() != want.Key() {
		t.Fatalf("grid reblock key %q, want %q", nt.Key(), want.Key())
	}
	if nt.NumProcs() != 8 {
		t.Fatalf("new width %d, want 8", nt.NumProcs())
	}
	ownsEachOnce(t, nt)

	var rbErr *ReblockError
	if _, err := ReblockGrid(old, []int{4}); !errors.As(err, &rbErr) {
		t.Fatalf("wrong grid arity: err = %v", err)
	}
	// A collapsed axis cannot be asked to spread.
	coll := mustTpl(t, []int{8, 8}, BlockAxis(2), CollapsedAxis())
	if _, err := ReblockGrid(coll, []int{2, 3}); !errors.As(err, &rbErr) || rbErr.Axis != 1 {
		t.Fatalf("spreading collapsed axis: err = %v", err)
	}
}
