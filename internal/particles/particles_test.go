package particles

import (
	"math/rand"
	"sync"
	"testing"

	"mxn/internal/comm"
)

func TestFieldValidation(t *testing.T) {
	if _, err := NewField(0); err == nil {
		t.Error("zero dims accepted")
	}
	if _, err := NewField(2, "m", "m"); err == nil {
		t.Error("duplicate attribute accepted")
	}
	if _, err := NewField(2, ""); err == nil {
		t.Error("empty attribute accepted")
	}
	f, err := NewField(2, "mass", "charge")
	if err != nil {
		t.Fatal(err)
	}
	l := f.NewLocal(3)
	if f.Count(l) != 3 || len(l.Attr["mass"]) != 3 {
		t.Error("allocation wrong")
	}
	if err := f.Append(l, []float64{1, 2}, map[string]float64{"mass": 5}); err != nil {
		t.Fatal(err)
	}
	if f.Count(l) != 4 || l.Attr["mass"][3] != 5 || l.Attr["charge"][3] != 0 {
		t.Error("append wrong")
	}
	if err := f.Append(l, []float64{1}, nil); err == nil {
		t.Error("wrong-arity position accepted")
	}
}

func TestSlabOwnership(t *testing.T) {
	s := &SlabDecomposition{Axis: 0, Lo: 0, Hi: 10, NP: 4}
	cases := map[float64]int{0: 0, 2.4: 0, 2.5: 1, 7.5: 3, 9.9: 3, -1: 0, 11: 3}
	for x, want := range cases {
		if got := s.Owner([]float64{x, 99}); got != want {
			t.Errorf("Owner(%v) = %d, want %d", x, got, want)
		}
	}
	if s.NumProcs() != 4 {
		t.Error("NumProcs wrong")
	}
}

func TestBoxOwnership(t *testing.T) {
	b := &BoxDecomposition{Lo: []float64{0, 0}, Hi: []float64{4, 4}, Grid: []int{2, 2}}
	if b.NumProcs() != 4 {
		t.Fatal("NumProcs wrong")
	}
	cases := []struct {
		pos  []float64
		want int
	}{
		{[]float64{1, 1}, 0},
		{[]float64{1, 3}, 1},
		{[]float64{3, 1}, 2},
		{[]float64{3, 3}, 3},
		{[]float64{-1, 5}, 1}, // clamped
	}
	for _, c := range cases {
		if got := b.Owner(c.pos); got != c.want {
			t.Errorf("Owner(%v) = %d, want %d", c.pos, got, c.want)
		}
	}
}

func TestRedistributeBySlab(t *testing.T) {
	const np = 4
	f, _ := NewField(1, "id")
	dec := &SlabDecomposition{Axis: 0, Lo: 0, Hi: 1, NP: np}
	var mu sync.Mutex
	gathered := map[float64]int{} // id -> landed rank
	comm.Run(np, func(c *comm.Comm) {
		// Every rank starts with 8 particles spread over the whole domain.
		local := f.NewLocal(0)
		for k := 0; k < 8; k++ {
			x := (float64(k) + 0.5) / 8
			id := float64(c.Rank()*100 + k)
			f.Append(local, []float64{x}, map[string]float64{"id": id})
		}
		out, err := Redistribute(c, f, dec, local)
		if err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
			return
		}
		// Every received particle must belong here spatially.
		for i := 0; i < f.Count(out); i++ {
			if dec.Owner(out.Pos[i:i+1]) != c.Rank() {
				t.Errorf("rank %d holds foreign particle at %v", c.Rank(), out.Pos[i])
			}
			mu.Lock()
			gathered[out.Attr["id"][i]] = c.Rank()
			mu.Unlock()
		}
		if got := TotalCount(c, f, out); got != np*8 {
			t.Errorf("total = %d", got)
		}
	})
	if len(gathered) != np*8 {
		t.Fatalf("only %d of %d particles accounted for", len(gathered), np*8)
	}
}

func TestRedistributePreservesAttributes(t *testing.T) {
	const np = 2
	f, _ := NewField(2, "mass", "charge")
	dec := &BoxDecomposition{Lo: []float64{0, 0}, Hi: []float64{2, 1}, Grid: []int{2, 1}}
	comm.Run(np, func(c *comm.Comm) {
		local := f.NewLocal(0)
		// Rank 0 creates all particles; rank 1 starts empty.
		if c.Rank() == 0 {
			f.Append(local, []float64{0.5, 0.5}, map[string]float64{"mass": 10, "charge": -1})
			f.Append(local, []float64{1.5, 0.5}, map[string]float64{"mass": 20, "charge": +1})
		}
		out, err := Redistribute(c, f, dec, local)
		if err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
			return
		}
		if f.Count(out) != 1 {
			t.Fatalf("rank %d holds %d particles", c.Rank(), f.Count(out))
		}
		wantMass := float64(10 * (c.Rank() + 1))
		if out.Attr["mass"][0] != wantMass {
			t.Errorf("rank %d mass = %v", c.Rank(), out.Attr["mass"][0])
		}
	})
}

func TestMigrationLoop(t *testing.T) {
	// Particles drift; periodic redistribution keeps ownership spatial.
	const np, perRank, steps = 3, 10, 5
	f, _ := NewField(1, "v")
	dec := &SlabDecomposition{Axis: 0, Lo: 0, Hi: 1, NP: np}
	comm.Run(np, func(c *comm.Comm) {
		rng := rand.New(rand.NewSource(int64(c.Rank() + 1)))
		local := f.NewLocal(0)
		for k := 0; k < perRank; k++ {
			x := (float64(c.Rank()) + rng.Float64()) / np
			f.Append(local, []float64{x}, map[string]float64{"v": rng.Float64()*0.1 - 0.05})
		}
		for s := 0; s < steps; s++ {
			// Drift, reflecting at the walls.
			for i := 0; i < f.Count(local); i++ {
				local.Pos[i] += local.Attr["v"][i]
				if local.Pos[i] < 0 {
					local.Pos[i] = -local.Pos[i]
					local.Attr["v"][i] = -local.Attr["v"][i]
				}
				if local.Pos[i] > 1 {
					local.Pos[i] = 2 - local.Pos[i]
					local.Attr["v"][i] = -local.Attr["v"][i]
				}
			}
			var err error
			local, err = Redistribute(c, f, dec, local)
			if err != nil {
				t.Errorf("rank %d step %d: %v", c.Rank(), s, err)
				return
			}
			for i := 0; i < f.Count(local); i++ {
				if dec.Owner(local.Pos[i:i+1]) != c.Rank() {
					t.Errorf("rank %d step %d: foreign particle", c.Rank(), s)
					return
				}
			}
			if got := TotalCount(c, f, local); got != np*perRank {
				t.Errorf("step %d: total = %d", s, got)
				return
			}
		}
	})
}

func TestRedistributeValidation(t *testing.T) {
	f, _ := NewField(1)
	comm.Run(2, func(c *comm.Comm) {
		wrong := &SlabDecomposition{Axis: 0, Lo: 0, Hi: 1, NP: 3}
		if _, err := Redistribute(c, f, wrong, f.NewLocal(0)); err == nil {
			t.Error("mismatched decomposition accepted")
		}
		// Malformed local storage: position array not a multiple of dims.
		mal := &Local{Pos: []float64{1, 2, 3}, Attr: map[string][]float64{}}
		ok := &SlabDecomposition{Axis: 0, Lo: 0, Hi: 1, NP: 2}
		twoD, _ := NewField(2)
		if _, err := Redistribute(c, twoD, ok, mal); err == nil {
			t.Error("odd position array accepted")
		}
		// Attribute slice length mismatch.
		f2, _ := NewField(1, "m")
		l := &Local{Pos: []float64{0.1, 0.9}, Attr: map[string][]float64{"m": {1}}}
		if _, err := Redistribute(c, f2, ok, l); err == nil {
			t.Error("short attribute slice accepted")
		}
	})
}

func TestSortByAxis(t *testing.T) {
	f, _ := NewField(2, "id")
	l := f.NewLocal(0)
	f.Append(l, []float64{3, 0}, map[string]float64{"id": 3})
	f.Append(l, []float64{1, 5}, map[string]float64{"id": 1})
	f.Append(l, []float64{2, 9}, map[string]float64{"id": 2})
	f.SortByAxis(l, 0)
	for i := 0; i < 3; i++ {
		if l.Attr["id"][i] != float64(i+1) {
			t.Fatalf("sort broke attribute pairing: %v", l.Attr["id"])
		}
		if l.Pos[i*2] != float64(i+1) {
			t.Fatalf("sort order wrong: %v", l.Pos)
		}
	}
	// The y coordinates must have travelled with their particles.
	if l.Pos[1] != 5 || l.Pos[3] != 9 || l.Pos[5] != 0 {
		t.Errorf("positions decoupled: %v", l.Pos)
	}
}
