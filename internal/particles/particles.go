// Package particles implements the "particle-based container" the paper's
// M×N component work lists as the step beyond dense arrays (Section 4.1:
// "To support more complex data structure decompositions, a
// 'particle-based' container solution is also under development"; the DAD
// work likewise plans support for "sparse matrices and particle fields").
//
// Unlike a distributed array, a particle field has no global index space:
// each rank holds a variable-length set of particles (a position plus
// named attributes), and ownership is *spatial* — a domain decomposition
// assigns regions of continuous space to ranks. Redistribution therefore
// cannot use a precomputed index schedule; it buckets particles by the
// owner of their current position and exchanges the buckets all-to-all.
// The same operation serves both the M×N hand-off between components with
// different spatial decompositions and the intra-component migration step
// after particles move.
package particles

import (
	"fmt"
	"sort"

	"mxn/internal/comm"
)

// Field describes a particle species: its spatial dimensionality and the
// per-particle attributes carried besides position.
type Field struct {
	Dims  int
	Attrs []string
}

// NewField validates and builds a field description.
func NewField(dims int, attrs ...string) (*Field, error) {
	if dims < 1 {
		return nil, fmt.Errorf("particles: dimensionality %d", dims)
	}
	seen := map[string]bool{}
	for _, a := range attrs {
		if a == "" {
			return nil, fmt.Errorf("particles: empty attribute name")
		}
		if seen[a] {
			return nil, fmt.Errorf("particles: duplicate attribute %q", a)
		}
		seen[a] = true
	}
	return &Field{Dims: dims, Attrs: append([]string(nil), attrs...)}, nil
}

// Local is one rank's particle storage: positions flattened dims-major
// (particle i occupies Pos[i*Dims : (i+1)*Dims]) and one slice per
// attribute, all of equal particle count.
type Local struct {
	Pos  []float64
	Attr map[string][]float64
}

// NewLocal allocates storage for n particles of a field.
func (f *Field) NewLocal(n int) *Local {
	l := &Local{Pos: make([]float64, n*f.Dims), Attr: map[string][]float64{}}
	for _, a := range f.Attrs {
		l.Attr[a] = make([]float64, n)
	}
	return l
}

// Count returns the number of particles held.
func (f *Field) Count(l *Local) int { return len(l.Pos) / f.Dims }

// validate checks a Local against the field description.
func (f *Field) validate(l *Local) error {
	if len(l.Pos)%f.Dims != 0 {
		return fmt.Errorf("particles: position array length %d is not a multiple of dims %d", len(l.Pos), f.Dims)
	}
	n := len(l.Pos) / f.Dims
	if len(l.Attr) != len(f.Attrs) {
		return fmt.Errorf("particles: %d attribute slices for %d declared attributes", len(l.Attr), len(f.Attrs))
	}
	for _, a := range f.Attrs {
		vals, ok := l.Attr[a]
		if !ok {
			return fmt.Errorf("particles: missing attribute %q", a)
		}
		if len(vals) != n {
			return fmt.Errorf("particles: attribute %q has %d values for %d particles", a, len(vals), n)
		}
	}
	return nil
}

// Append adds one particle.
func (f *Field) Append(l *Local, pos []float64, attrs map[string]float64) error {
	if len(pos) != f.Dims {
		return fmt.Errorf("particles: position has %d coordinates, field has %d dims", len(pos), f.Dims)
	}
	l.Pos = append(l.Pos, pos...)
	for _, a := range f.Attrs {
		l.Attr[a] = append(l.Attr[a], attrs[a])
	}
	return nil
}

// Decomposition assigns continuous space to ranks — the particle
// analogue of a distributed-array template.
type Decomposition interface {
	// Owner returns the rank owning a position.
	Owner(pos []float64) int
	// NumProcs returns the number of ranks.
	NumProcs() int
}

// SlabDecomposition splits space into np slabs along one axis between Lo
// and Hi; positions outside are clamped to the boundary slabs (particles
// never get lost at the domain edge).
type SlabDecomposition struct {
	Axis   int
	Lo, Hi float64
	NP     int
}

// Owner implements Decomposition.
func (s *SlabDecomposition) Owner(pos []float64) int {
	x := pos[s.Axis]
	w := (s.Hi - s.Lo) / float64(s.NP)
	k := int((x - s.Lo) / w)
	if k < 0 {
		k = 0
	}
	if k >= s.NP {
		k = s.NP - 1
	}
	return k
}

// NumProcs implements Decomposition.
func (s *SlabDecomposition) NumProcs() int { return s.NP }

// BoxDecomposition is a grid of boxes over a rectangular domain, ranks
// assigned row-major. Positions outside clamp to boundary boxes.
type BoxDecomposition struct {
	Lo, Hi []float64 // domain corners, one per axis
	Grid   []int     // boxes per axis
}

// Owner implements Decomposition.
func (b *BoxDecomposition) Owner(pos []float64) int {
	rank := 0
	for a := range b.Grid {
		w := (b.Hi[a] - b.Lo[a]) / float64(b.Grid[a])
		k := int((pos[a] - b.Lo[a]) / w)
		if k < 0 {
			k = 0
		}
		if k >= b.Grid[a] {
			k = b.Grid[a] - 1
		}
		rank = rank*b.Grid[a] + k
	}
	return rank
}

// NumProcs implements Decomposition.
func (b *BoxDecomposition) NumProcs() int {
	n := 1
	for _, g := range b.Grid {
		n *= g
	}
	return n
}

// Redistribute moves this rank's particles to their spatial owners under
// dec and returns the particles this rank now owns. Collective over c:
// every rank of the communicator calls it with its local particles.
// Destination ranks beyond dec.NumProcs() are invalid; the communicator
// must have exactly dec.NumProcs() ranks.
//
// Wire format per destination: particles packed position-first then
// attribute-major, so the exchange is a single AlltoallvFloat64 — no
// communication schedule exists or is needed; ownership is recomputed
// from positions each time, which is what particle migration requires.
func Redistribute(c *comm.Comm, f *Field, dec Decomposition, local *Local) (*Local, error) {
	if dec.NumProcs() != c.Size() {
		return nil, fmt.Errorf("particles: decomposition has %d ranks, communicator has %d", dec.NumProcs(), c.Size())
	}
	if err := f.validate(local); err != nil {
		return nil, err
	}
	n := f.Count(local)
	stride := f.Dims + len(f.Attrs)

	// Bucket particle indices by destination.
	buckets := make([][]int, c.Size())
	for i := 0; i < n; i++ {
		owner := dec.Owner(local.Pos[i*f.Dims : (i+1)*f.Dims])
		if owner < 0 || owner >= c.Size() {
			return nil, fmt.Errorf("particles: decomposition produced rank %d of %d", owner, c.Size())
		}
		buckets[owner] = append(buckets[owner], i)
	}

	// Pack one flat record per particle: position then attributes.
	send := make([][]float64, c.Size())
	for dst, idx := range buckets {
		if len(idx) == 0 {
			continue
		}
		buf := make([]float64, 0, len(idx)*stride)
		for _, i := range idx {
			buf = append(buf, local.Pos[i*f.Dims:(i+1)*f.Dims]...)
			for _, a := range f.Attrs {
				buf = append(buf, local.Attr[a][i])
			}
		}
		send[dst] = buf
	}
	got := c.AlltoallvFloat64(send)

	// Unpack in source-rank order (deterministic).
	out := f.NewLocal(0)
	for src := 0; src < c.Size(); src++ {
		buf := got[src]
		if len(buf)%stride != 0 {
			return nil, fmt.Errorf("particles: fragment from rank %d has %d values, stride %d", src, len(buf), stride)
		}
		for o := 0; o < len(buf); o += stride {
			out.Pos = append(out.Pos, buf[o:o+f.Dims]...)
			for k, a := range f.Attrs {
				out.Attr[a] = append(out.Attr[a], buf[o+f.Dims+k])
			}
		}
	}
	return out, nil
}

// TotalCount returns the global particle count (collective).
func TotalCount(c *comm.Comm, f *Field, local *Local) int {
	return c.AllreduceInt(f.Count(local), comm.OpSum)
}

// SortByAxis orders a rank's particles by a coordinate axis — handy for
// deterministic comparisons in tests and for cache-friendly sweeps.
func (f *Field) SortByAxis(l *Local, axis int) {
	n := f.Count(l)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return l.Pos[idx[a]*f.Dims+axis] < l.Pos[idx[b]*f.Dims+axis]
	})
	pos := make([]float64, len(l.Pos))
	for k, i := range idx {
		copy(pos[k*f.Dims:(k+1)*f.Dims], l.Pos[i*f.Dims:(i+1)*f.Dims])
	}
	l.Pos = pos
	for _, a := range f.Attrs {
		vals := make([]float64, n)
		for k, i := range idx {
			vals[k] = l.Attr[a][i]
		}
		l.Attr[a] = vals
	}
}
