// Package pipeline assembles sequences of data transformations and data
// redistributions — the composition story of the paper's Section 6: "To
// utilize the resulting sequence of data transformations and data
// redistributions, a pipeline of components can be assembled," with
// filters "e.g. for spatial and temporal interpolation or unit
// conversions."
//
// A pipeline is a source decomposition followed by stages, each a target
// decomposition plus an optional per-element filter (the unit-conversion
// class of transformations, which commute with redistribution). Pipelines
// execute two ways:
//
//   - Chained: materialize the data at every stage — one redistribution
//     and one filter pass per stage. Simple, and the only option for
//     filters that do not commute with redistribution.
//   - Fused: compose all redistribution schedules into one (the paper's
//     "super-component") and all elementwise filters into one function
//     applied at the sink — one data movement and one filter pass total,
//     "operat[ing] on data in place and avoid[ing] unnecessary data
//     copies."
package pipeline

import (
	"fmt"

	"mxn/internal/dad"
	"mxn/internal/redist"
	"mxn/internal/schedule"
)

// Filter is a per-element transformation (a unit conversion, scaling,
// bias, ...). Filters of this class commute with redistribution, which is
// what makes fusion valid.
type Filter func(x float64) float64

// Stage is one pipeline step: redistribute into Template's decomposition,
// then apply Filter to every local element (nil means identity).
type Stage struct {
	Template *dad.Template
	Filter   Filter
}

// Pipeline is an assembled sequence of stages applied to data that starts
// in the source decomposition.
type Pipeline struct {
	src    *dad.Template
	stages []Stage

	chained     []*schedule.Schedule // per-stage schedules, built lazily
	fused       *schedule.Schedule
	fusedFilter Filter
}

// New validates and assembles a pipeline. Every stage template must
// conform to the source's global index space.
func New(src *dad.Template, stages ...Stage) (*Pipeline, error) {
	if src == nil || len(stages) == 0 {
		return nil, fmt.Errorf("pipeline: need a source and at least one stage")
	}
	for i, st := range stages {
		if st.Template == nil {
			return nil, fmt.Errorf("pipeline: stage %d has no template", i)
		}
		if !src.Conforms(st.Template) {
			return nil, fmt.Errorf("pipeline: stage %d does not conform to the source index space", i)
		}
	}
	return &Pipeline{src: src, stages: append([]Stage(nil), stages...)}, nil
}

// Source returns the pipeline's source decomposition.
func (p *Pipeline) Source() *dad.Template { return p.src }

// Sink returns the final stage's decomposition.
func (p *Pipeline) Sink() *dad.Template { return p.stages[len(p.stages)-1].Template }

// NumStages returns the stage count.
func (p *Pipeline) NumStages() int { return len(p.stages) }

// stageSchedules builds (once) and returns the per-stage schedules.
func (p *Pipeline) stageSchedules() ([]*schedule.Schedule, error) {
	if p.chained != nil {
		return p.chained, nil
	}
	scheds := make([]*schedule.Schedule, len(p.stages))
	curT := p.src
	for i, st := range p.stages {
		s, err := schedule.Build(curT, st.Template)
		if err != nil {
			return nil, fmt.Errorf("pipeline: stage %d: %w", i, err)
		}
		scheds[i] = s
		curT = st.Template
	}
	p.chained = scheds
	return scheds, nil
}

// RunChained executes the pipeline stage by stage, materializing the data
// in every intermediate decomposition. Stage schedules are built once and
// reused across calls.
func (p *Pipeline) RunChained(srcLocals [][]float64) ([][]float64, error) {
	scheds, err := p.stageSchedules()
	if err != nil {
		return nil, err
	}
	cur := srcLocals
	for i, st := range p.stages {
		s := scheds[i]
		next := make([][]float64, st.Template.NumProcs())
		for r := range next {
			next[r] = make([]float64, st.Template.LocalCount(r))
		}
		redist.ExecuteLocal(s, cur, next)
		if st.Filter != nil {
			for _, local := range next {
				for k, v := range local {
					local[k] = st.Filter(v)
				}
			}
		}
		cur = next
	}
	return cur, nil
}

// Fuse composes the pipeline into a single schedule (source decomposition
// directly to the sink's) and a single composed filter. The result is
// cached; Fuse is idempotent.
func (p *Pipeline) Fuse() (*schedule.Schedule, Filter, error) {
	if p.fused != nil {
		return p.fused, p.fusedFilter, nil
	}
	s, err := schedule.Build(p.src, p.stages[0].Template)
	if err != nil {
		return nil, nil, err
	}
	for i := 1; i < len(p.stages); i++ {
		next, err := schedule.Build(p.stages[i-1].Template, p.stages[i].Template)
		if err != nil {
			return nil, nil, err
		}
		if s, err = schedule.Compose(s, next); err != nil {
			return nil, nil, fmt.Errorf("pipeline: fusing stage %d: %w", i, err)
		}
	}
	var filters []Filter
	for _, st := range p.stages {
		if st.Filter != nil {
			filters = append(filters, st.Filter)
		}
	}
	var fused Filter
	if len(filters) > 0 {
		fused = func(x float64) float64 {
			for _, f := range filters {
				x = f(x)
			}
			return x
		}
	}
	p.fused = s
	p.fusedFilter = fused
	return s, fused, nil
}

// RunFused executes the pipeline as one movement plus one filter pass at
// the sink.
func (p *Pipeline) RunFused(srcLocals [][]float64) ([][]float64, error) {
	s, filter, err := p.Fuse()
	if err != nil {
		return nil, err
	}
	sink := p.Sink()
	out := make([][]float64, sink.NumProcs())
	for r := range out {
		out[r] = make([]float64, sink.LocalCount(r))
	}
	redist.ExecuteLocal(s, srcLocals, out)
	if filter != nil {
		for _, local := range out {
			for k, v := range local {
				local[k] = filter(v)
			}
		}
	}
	return out, nil
}
