package pipeline

import (
	"math"
	"math/rand"
	"testing"

	"mxn/internal/dad"
)

func tpl(t *testing.T, n int, ax dad.AxisDist) *dad.Template {
	t.Helper()
	out, err := dad.NewTemplate([]int{n}, []dad.AxisDist{ax})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func fill(t *dad.Template, f func(g int) float64) [][]float64 {
	locals := make([][]float64, t.NumProcs())
	for r := range locals {
		locals[r] = make([]float64, t.LocalCount(r))
	}
	n := t.Dims()[0]
	for g := 0; g < n; g++ {
		r := t.OwnerOf([]int{g})
		locals[r][t.LocalOffset(r, []int{g})] = f(g)
	}
	return locals
}

func TestChainedEqualsFused(t *testing.T) {
	const n = 24
	src := tpl(t, n, dad.BlockAxis(3))
	kelvinToCelsius := func(x float64) float64 { return x - 273.15 }
	normalize := func(x float64) float64 { return x / 100 }
	p, err := New(src,
		Stage{Template: tpl(t, n, dad.CyclicAxis(4)), Filter: kelvinToCelsius},
		Stage{Template: tpl(t, n, dad.BlockAxis(2)), Filter: normalize},
	)
	if err != nil {
		t.Fatal(err)
	}
	in := fill(src, func(g int) float64 { return 273.15 + float64(g) })
	chained, err := p.RunChained(in)
	if err != nil {
		t.Fatal(err)
	}
	fused, err := p.RunFused(in)
	if err != nil {
		t.Fatal(err)
	}
	sink := p.Sink()
	for g := 0; g < n; g++ {
		r := sink.OwnerOf([]int{g})
		off := sink.LocalOffset(r, []int{g})
		want := float64(g) / 100
		if math.Abs(chained[r][off]-want) > 1e-12 {
			t.Errorf("chained g=%d: %v want %v", g, chained[r][off], want)
		}
		if chained[r][off] != fused[r][off] {
			t.Errorf("g=%d: chained %v fused %v", g, chained[r][off], fused[r][off])
		}
	}
}

func TestFuseIsCached(t *testing.T) {
	src := tpl(t, 8, dad.BlockAxis(2))
	p, err := New(src, Stage{Template: tpl(t, 8, dad.CyclicAxis(2))})
	if err != nil {
		t.Fatal(err)
	}
	s1, _, err := p.Fuse()
	if err != nil {
		t.Fatal(err)
	}
	s2, _, err := p.Fuse()
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Error("Fuse rebuilt the schedule")
	}
}

func TestValidation(t *testing.T) {
	src := tpl(t, 8, dad.BlockAxis(2))
	if _, err := New(nil, Stage{Template: src}); err == nil {
		t.Error("nil source accepted")
	}
	if _, err := New(src); err == nil {
		t.Error("no stages accepted")
	}
	if _, err := New(src, Stage{}); err == nil {
		t.Error("stage without template accepted")
	}
	other := tpl(t, 9, dad.BlockAxis(2))
	if _, err := New(src, Stage{Template: other}); err == nil {
		t.Error("non-conforming stage accepted")
	}
}

func TestSingleStageNoFilter(t *testing.T) {
	src := tpl(t, 10, dad.BlockAxis(2))
	dst := tpl(t, 10, dad.BlockAxis(5))
	p, err := New(src, Stage{Template: dst})
	if err != nil {
		t.Fatal(err)
	}
	in := fill(src, func(g int) float64 { return float64(g * g) })
	out, err := p.RunFused(in)
	if err != nil {
		t.Fatal(err)
	}
	for g := 0; g < 10; g++ {
		r := dst.OwnerOf([]int{g})
		if out[r][dst.LocalOffset(r, []int{g})] != float64(g*g) {
			t.Errorf("g=%d wrong", g)
		}
	}
}

// Property: chained and fused agree on random pipelines of 2-4 stages.
func TestPropertyRandomPipelines(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	axes := []func(n int) dad.AxisDist{
		func(n int) dad.AxisDist { return dad.BlockAxis(1 + rng.Intn(4)) },
		func(n int) dad.AxisDist { return dad.CyclicAxis(1 + rng.Intn(4)) },
		func(n int) dad.AxisDist { return dad.BlockCyclicAxis(1+rng.Intn(3), 1+rng.Intn(3)) },
	}
	filters := []Filter{
		nil,
		func(x float64) float64 { return x * 2 },
		func(x float64) float64 { return x + 7 },
		func(x float64) float64 { return -x },
	}
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.Intn(20)
		src := tpl(t, n, axes[rng.Intn(len(axes))](n))
		nStages := 2 + rng.Intn(3)
		stages := make([]Stage, nStages)
		for i := range stages {
			stages[i] = Stage{
				Template: tpl(t, n, axes[rng.Intn(len(axes))](n)),
				Filter:   filters[rng.Intn(len(filters))],
			}
		}
		p, err := New(src, stages...)
		if err != nil {
			t.Fatal(err)
		}
		in := fill(src, func(g int) float64 { return float64(g + 1) })
		chained, err := p.RunChained(in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		fused, err := p.RunFused(in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for r := range chained {
			for k := range chained[r] {
				if chained[r][k] != fused[r][k] {
					t.Fatalf("trial %d: rank %d elem %d: chained %v fused %v",
						trial, r, k, chained[r][k], fused[r][k])
				}
			}
		}
	}
}
