package sidlgen

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"mxn/internal/sidl"
)

const demoIDL = `
package demo version 1.0;

interface VectorOps {
    collective double dot(in parallel array<double> x, in parallel array<double> y);
    collective void normalize(inout parallel array<double> x, in double norm);
    independent double element(in int i);
    collective oneway void report(in string phase);
}
`

func generate(t *testing.T, src string) string {
	t.Helper()
	pkg, err := sidl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Generate(pkg, "stubs")
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestGeneratedCodeParses(t *testing.T) {
	out := generate(t, demoIDL)
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, "generated.go", out, parser.AllErrors); err != nil {
		t.Fatalf("generated code does not parse: %v\n----\n%s", err, out)
	}
}

func TestGeneratedSurface(t *testing.T) {
	out := generate(t, demoIDL)
	for _, want := range []string{
		"type VectorOpsClient struct",
		"func (c *VectorOpsClient) Dot(part mxn.Participation, xTpl *mxn.Template, x []float64, yTpl *mxn.Template, y []float64) (float64, error)",
		"func (c *VectorOpsClient) Normalize(part mxn.Participation, xTpl *mxn.Template, x []float64, norm float64) error",
		"func (c *VectorOpsClient) Element(target int, i int64) (float64, error)",
		"func (c *VectorOpsClient) Report(part mxn.Participation, phase string) error",
		"type VectorOpsServer interface",
		"Dot(meta *mxn.Incoming, x []float64, y []float64) (float64, error)",
		"Normalize(meta *mxn.Incoming, x []float64, norm float64) error",
		"func RegisterVectorOps(ep *mxn.Endpoint, impl VectorOpsServer) error",
		`ep.Handle("dot"`,
		`in.Parallel["x"]`,
		`out.Parallel["x"]`, // inout buffer for normalize
	} {
		if !strings.Contains(out, want) {
			t.Errorf("generated code missing %q", want)
		}
	}
	// One-way client methods must not wait for results.
	if !strings.Contains(out, "func (c *VectorOpsClient) Report(part mxn.Participation, phase string) error {\n\t_, err := c.Port.CallCollective(\"report\", part, mxn.Simple(\"phase\", phase))\n\treturn err\n}") {
		t.Error("one-way client body wrong")
	}
}

func TestGeneratorRejectsParallelIntArrays(t *testing.T) {
	pkg, err := sidl.Parse(`package p; interface I { collective void f(in parallel array<int> x); }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Generate(pkg, "stubs"); err == nil {
		t.Error("parallel array<int> accepted")
	}
}

func TestVoidAndBoolReturns(t *testing.T) {
	out := generate(t, `package p; interface I {
		collective void ping(in int n);
		independent bool check(in double x);
	}`)
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, "g.go", out, parser.AllErrors); err != nil {
		t.Fatalf("parse: %v\n%s", err, out)
	}
	if !strings.Contains(out, "func (c *IClient) Ping(part mxn.Participation, n int64) error") {
		t.Error("void return signature wrong")
	}
	if !strings.Contains(out, "func (c *IClient) Check(target int, x float64) (bool, error)") {
		t.Error("bool return signature wrong")
	}
}
