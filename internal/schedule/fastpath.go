// Closed-form schedule planning for regular layout pairs.
//
// The enumerating builders intersect materialized interval lists (or patch
// lists) and call Template.LocalOffset once per run — correct for every
// distribution, but first contact between two cohorts pays milliseconds
// and tens of thousands of allocations (see BENCH_redist.json's uncached
// rows before this path existed). For the common regular cases the
// intersection of two coordinates' owned index sets has a closed form
// (Sudarsan & Ribbens, "Efficient Multidimensional Data Redistribution
// for Resizable Parallel Computations"):
//
//   - interval × interval (block↔block and friends): one clipped interval;
//   - interval × strided (block↔cyclic): the blocks of the strided side
//     that meet the interval form an arithmetic progression, with only the
//     first and last blocks clipped;
//   - strided × strided with one dealt block size b (cyclic↔cyclic,
//     block-cyclic↔block-cyclic): both sides partition the axis into the
//     same aligned size-b blocks, so the intersection is the set of block
//     indices m with m ≡ cs (mod P) and m ≡ cd (mod Q) — by CRT an
//     arithmetic progression with period lcm(P,Q), nonempty iff
//     cs ≡ cd (mod gcd(P,Q)).
//
// Every per-axis intersection is therefore an ixDesc: an O(1)-sized
// descriptor enumerable without materializing anything. Runs are emitted
// arithmetically from the descriptors (local indices come from the O(1)
// per-kind formulas, never from Template.LocalOffset), and all storage is
// carved from a pooled planArena, so the uncached planning path approaches
// zero steady-state allocations. Per source rank the descriptor work is
// O(M+N) blocks of O(1) arithmetic; total output work is proportional to
// the number of runs, which is the size of the schedule itself.
//
// Applicability is decided by dad.Template.ClosedFormPair; everything else
// (Implicit axes, explicit patch templates, strided pairs with differing
// block sizes) falls back to the enumerating builders.
package schedule

import "mxn/internal/dad"

// ixDesc is the closed-form intersection of one source coordinate's and
// one destination coordinate's owned index sets along a single axis:
// count intervals [start + k*stride, start + k*stride + blen) for k in
// [0, count), each clipped to [clipLo, clipHi). stride ≥ blen, so only
// the first and last interval can actually be clipped; every interval is
// nonempty and lies within a single owned block of BOTH sides, so local
// indices advance by one per global index across it on both sides — which
// is what lets each interval become one contiguous Run per row.
type ixDesc struct {
	count          int
	start, stride  int
	blen           int
	clipLo, clipHi int
	elems          int
}

// ixFromIntervals intersects two single intervals.
func ixFromIntervals(alo, ahi, blo, bhi int) ixDesc {
	lo, hi := alo, ahi
	if blo > lo {
		lo = blo
	}
	if bhi < hi {
		hi = bhi
	}
	if lo >= hi {
		return ixDesc{}
	}
	return ixDesc{count: 1, start: lo, stride: hi - lo, blen: hi - lo, clipLo: lo, clipHi: hi, elems: hi - lo}
}

// ixIntervalStrided intersects the interval [ilo, ihi) with the strided
// set {m·b + [0, b) : m ≡ c (mod p)}: the qualifying block indices form
// an arithmetic progression with step p.
func ixIntervalStrided(ilo, ihi, c, p, b int) ixDesc {
	if ilo >= ihi {
		return ixDesc{}
	}
	mLo := ilo / b         // first block with (m+1)·b > ilo
	mHi := (ihi - 1) / b   // last block with m·b < ihi
	delta := (c - mLo%p + p) % p
	mStart := mLo + delta
	if mStart > mHi {
		return ixDesc{}
	}
	count := (mHi-mStart)/p + 1
	d := ixDesc{
		count:  count,
		start:  mStart * b,
		stride: p * b,
		blen:   b,
		clipLo: ilo,
		clipHi: ihi,
	}
	d.elems = count * b
	if lead := ilo - d.start; lead > 0 {
		d.elems -= lead
	}
	if tail := d.start + (count-1)*d.stride + b - ihi; tail > 0 {
		d.elems -= tail
	}
	return d
}

// egcd returns g = gcd(a, b) and x, y with a·x + b·y = g.
func egcd(a, b int) (g, x, y int) {
	if b == 0 {
		return a, 1, 0
	}
	g, x1, y1 := egcd(b, a%b)
	return g, y1, x1 - (a/b)*y1
}

// ixStridedStrided intersects two strided sets with one block size b over
// an axis of length n: blocks m with m ≡ c1 (mod p1) and m ≡ c2 (mod p2).
// By CRT the solutions (if any) are m ≡ m0 (mod lcm(p1, p2)).
func ixStridedStrided(c1, p1, c2, p2, b, n int) ixDesc {
	g, x, _ := egcd(p1, p2)
	if (c2-c1)%g != 0 {
		return ixDesc{}
	}
	q := p2 / g
	l := p1 / g * p2
	// m = c1 + p1·t with t ≡ inv(p1/g)·((c2-c1)/g) (mod p2/g); x from the
	// extended gcd is that inverse.
	t := (x % q) * ((c2 - c1) / g % q) % q
	t = (t%q + q) % q
	m0 := (c1 + p1*t) % l
	nBlocks := (n + b - 1) / b
	if m0 >= nBlocks {
		return ixDesc{}
	}
	count := (nBlocks-1-m0)/l + 1
	d := ixDesc{
		count:  count,
		start:  m0 * b,
		stride: l * b,
		blen:   b,
		clipLo: 0,
		clipHi: n,
	}
	d.elems = count * b
	if tail := d.start + (count-1)*d.stride + b - n; tail > 0 {
		d.elems -= tail
	}
	return d
}

// axSide is one template's per-axis view with everything the emitter needs
// in O(1): the per-coordinate interval table (interval class), the dealt
// block geometry (strided class) and the per-coordinate local counts.
type axSide struct {
	class  dad.AxisClass
	procs  int
	n      int
	b, bp  int   // strided: block size and b·procs
	lo, hi []int // interval class: per-coordinate owned interval
	cnt    []int // per-coordinate local count
}

// li returns the local index of owned global index g on coordinate c
// (the closed-form equivalent of AxisDist.localIndex).
func (s *axSide) li(g, c int) int {
	if s.class == dad.ClassInterval {
		return g - s.lo[c]
	}
	return (g/s.bp)*s.b + g%s.b
}

// makeSide builds the per-coordinate tables for one axis of one template,
// carving them from the arena. O(procs) arithmetic.
func makeSide(ar *planArena, ax dad.AxisDist, n int) axSide {
	s := axSide{class: ax.Class(), procs: ax.Procs, n: n}
	s.cnt = ar.ints.take(ax.Procs)
	switch s.class {
	case dad.ClassInterval:
		s.lo = ar.ints.take(ax.Procs)
		s.hi = ar.ints.take(ax.Procs)
		switch ax.Kind {
		case dad.Collapsed:
			s.lo[0], s.hi[0] = 0, n
		case dad.Block:
			bl := (n + ax.Procs - 1) / ax.Procs
			for c := 0; c < ax.Procs; c++ {
				lo, hi := c*bl, c*bl+bl
				if lo > n {
					lo = n
				}
				if hi > n {
					hi = n
				}
				s.lo[c], s.hi[c] = lo, hi
			}
		case dad.GenBlock:
			acc := 0
			for c, sz := range ax.Sizes {
				s.lo[c] = acc
				acc += sz
				s.hi[c] = acc
			}
		}
		for c := 0; c < ax.Procs; c++ {
			s.cnt[c] = s.hi[c] - s.lo[c]
		}
	case dad.ClassStrided:
		s.b = ax.StrideBlock()
		s.bp = s.b * ax.Procs
		nBlocks := (n + s.b - 1) / s.b
		clip := nBlocks*s.b - n // shortfall of the globally last block
		for c := 0; c < ax.Procs; c++ {
			if c >= nBlocks {
				s.cnt[c] = 0
				continue
			}
			nb := (nBlocks-1-c)/ax.Procs + 1
			cntC := nb * s.b
			if clip > 0 && (nBlocks-1)%ax.Procs == c {
				cntC -= clip
			}
			s.cnt[c] = cntC
		}
	}
	return s
}

// intersect computes the axis intersection descriptor for source
// coordinate cs and destination coordinate cd. Requires ClosedFormPair.
func intersect(ss, ds *axSide, cs, cd int) ixDesc {
	switch {
	case ss.class == dad.ClassInterval && ds.class == dad.ClassInterval:
		return ixFromIntervals(ss.lo[cs], ss.hi[cs], ds.lo[cd], ds.hi[cd])
	case ss.class == dad.ClassInterval:
		return ixIntervalStrided(ss.lo[cs], ss.hi[cs], cd, ds.procs, ds.b)
	case ds.class == dad.ClassInterval:
		return ixIntervalStrided(ds.lo[cd], ds.hi[cd], cs, ss.procs, ss.b)
	default:
		return ixStridedStrided(cs, ss.procs, cd, ds.procs, ss.b, ss.n)
	}
}

// buildFast computes the schedule arithmetically. The caller has verified
// s.Src.ClosedFormPair(s.Dst) and attached an arena.
func (s *Schedule) buildFast() {
	ar := s.ar
	na := s.Src.NumAxes()

	srcSides := ar.sides.take(na)
	dstSides := ar.sides.take(na)
	for a := 0; a < na; a++ {
		srcSides[a] = makeSide(ar, s.Src.Axis(a), s.Src.Dim(a))
		dstSides[a] = makeSide(ar, s.Dst.Axis(a), s.Dst.Dim(a))
	}

	// Per axis: the full coordinate-pair descriptor table and the packed
	// list (cs·Q + cd) of nonempty pairs, in (cs, cd) lexicographic order.
	descTab := ar.descRows.take(na)
	pairTab := ar.slices.take(na)
	for a := 0; a < na; a++ {
		p, q := srcSides[a].procs, dstSides[a].procs
		descTab[a] = ar.descs.take(p * q)
		pairs := ar.ints.take(p * q)
		np := 0
		for cs := 0; cs < p; cs++ {
			for cd := 0; cd < q; cd++ {
				d := intersect(&srcSides[a], &dstSides[a], cs, cd)
				descTab[a][cs*q+cd] = d
				if d.count > 0 {
					pairs[np] = cs*q + cd
					np++
				}
			}
		}
		pairTab[a] = pairs[:np:np]
	}

	// Walk state: the chosen coordinate pair and descriptor per axis.
	srcC := ar.ints.take(na)
	dstC := ar.ints.take(na)
	cur := ar.descPtrs.take(na)

	// Pass 1: count pairs and runs so the slabs can be carved exactly.
	totalPairs, totalRuns := 0, 0
	var count func(a int)
	count = func(a int) {
		if a == na {
			rows := 1
			for x := 0; x < na-1; x++ {
				rows *= cur[x].elems
			}
			totalRuns += rows * cur[na-1].count
			totalPairs++
			return
		}
		q := dstSides[a].procs
		for _, pk := range pairTab[a] {
			cur[a] = &descTab[a][pk]
			srcC[a], dstC[a] = pk/q, pk%q
			count(a + 1)
		}
	}
	count(0)

	pairs := ar.pairs.take(totalPairs)
	runs := ar.runs.take(totalRuns)
	pi, ri := 0, 0

	// emit fills runs for the current leaf: rows iterate the global
	// indices of axes 0..na-2 in ascending order, the last axis emits one
	// run per descriptor interval. so/do are the local offsets through the
	// axes above a (off = off·cnt + localIndex at every level, matching
	// Template.LocalOffset's row-major canonical layout).
	var emit func(a, so, do int)
	emit = func(a, so, do int) {
		d := cur[a]
		ss, ds := &srcSides[a], &dstSides[a]
		cs, cd := srcC[a], dstC[a]
		so *= ss.cnt[cs]
		do *= ds.cnt[cd]
		base := d.start
		if a == na-1 {
			for k := 0; k < d.count; k++ {
				lo, hi := base, base+d.blen
				if lo < d.clipLo {
					lo = d.clipLo
				}
				if hi > d.clipHi {
					hi = d.clipHi
				}
				runs[ri] = Run{SrcOff: so + ss.li(lo, cs), DstOff: do + ds.li(lo, cd), N: hi - lo}
				ri++
				base += d.stride
			}
			return
		}
		for k := 0; k < d.count; k++ {
			lo, hi := base, base+d.blen
			if lo < d.clipLo {
				lo = d.clipLo
			}
			if hi > d.clipHi {
				hi = d.clipHi
			}
			for g := lo; g < hi; g++ {
				emit(a+1, so+ss.li(g, cs), do+ds.li(g, cd))
			}
			base += d.stride
		}
	}

	// Pass 2: same walk, emitting the pair plans and runs.
	var fill func(a int)
	fill = func(a int) {
		if a == na {
			elems := 1
			for x := 0; x < na; x++ {
				elems *= cur[x].elems
			}
			r0 := ri
			emit(0, 0, 0)
			pairs[pi] = PairPlan{
				SrcRank: s.Src.RankOf(srcC),
				DstRank: s.Dst.RankOf(dstC),
				Runs:    runs[r0:ri:ri],
				Elems:   elems,
			}
			pi++
			return
		}
		q := dstSides[a].procs
		for _, pk := range pairTab[a] {
			cur[a] = &descTab[a][pk]
			srcC[a], dstC[a] = pk/q, pk%q
			fill(a + 1)
		}
	}
	fill(0)
	s.Pairs = pairs[:pi:pi]
}

// indexArena is index() with the lookup tables carved from the arena.
func (s *Schedule) indexArena() {
	ar := s.ar
	np, nq := s.Src.NumProcs(), s.Dst.NumProcs()
	s.bySrc = ar.slices.take(np)
	s.byDst = ar.slices.take(nq)
	srcDeg := ar.ints.take(np)
	dstDeg := ar.ints.take(nq)
	for r := range srcDeg {
		srcDeg[r] = 0
	}
	for r := range dstDeg {
		dstDeg[r] = 0
	}
	for i := range s.Pairs {
		srcDeg[s.Pairs[i].SrcRank]++
		dstDeg[s.Pairs[i].DstRank]++
	}
	srcBack := ar.ints.take(len(s.Pairs))
	dstBack := ar.ints.take(len(s.Pairs))
	off := 0
	for r := 0; r < np; r++ {
		n := srcDeg[r]
		s.bySrc[r] = srcBack[off : off+n : off+n]
		off += n
		srcDeg[r] = 0
	}
	off = 0
	for r := 0; r < nq; r++ {
		n := dstDeg[r]
		s.byDst[r] = dstBack[off : off+n : off+n]
		off += n
		dstDeg[r] = 0
	}
	for i := range s.Pairs {
		sr, dr := s.Pairs[i].SrcRank, s.Pairs[i].DstRank
		s.bySrc[sr][srcDeg[sr]] = i
		srcDeg[sr]++
		s.byDst[dr][dstDeg[dr]] = i
		dstDeg[dr]++
	}
}
