package schedule

import (
	"sync"
	"testing"

	"mxn/internal/dad"
)

// Concurrent misses for one template pair must be safe (run under -race),
// every caller must receive an equivalent plan, and later Gets must all
// return the single retained winner.
func TestCacheConcurrentMiss(t *testing.T) {
	src, err := dad.NewTemplate([]int{24}, []dad.AxisDist{dad.BlockAxis(3)})
	if err != nil {
		t.Fatal(err)
	}
	dst, err := dad.NewTemplate([]int{24}, []dad.AxisDist{dad.CyclicAxis(4)})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Build(src, dst)
	if err != nil {
		t.Fatal(err)
	}

	c := NewCache()
	const workers = 16
	got := make([]*Schedule, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s, err := c.Get(src, dst)
			if err != nil {
				t.Errorf("worker %d: %v", w, err)
				return
			}
			got[w] = s
		}(w)
	}
	wg.Wait()

	for w, s := range got {
		if s == nil {
			continue
		}
		if len(s.Pairs) != len(want.Pairs) {
			t.Fatalf("worker %d: %d pairs, want %d", w, len(s.Pairs), len(want.Pairs))
		}
		for i, p := range s.Pairs {
			wp := want.Pairs[i]
			if p.SrcRank != wp.SrcRank || p.DstRank != wp.DstRank || p.Elems != wp.Elems {
				t.Fatalf("worker %d pair %d: (%d->%d, %d elems), want (%d->%d, %d elems)",
					w, i, p.SrcRank, p.DstRank, p.Elems, wp.SrcRank, wp.DstRank, wp.Elems)
			}
		}
	}

	hits, misses := c.Stats()
	if hits+misses != workers {
		t.Errorf("hits %d + misses %d != %d workers", hits, misses, workers)
	}
	if misses < 1 {
		t.Errorf("no miss recorded for a cold cache")
	}

	// The retained winner is stable: every post-race Get returns it.
	a, err := c.Get(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Get(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("post-race Gets returned different schedule instances")
	}
	if h2, _ := c.Stats(); h2 != hits+2 {
		t.Errorf("post-race Gets recorded %d hits, want %d", h2-hits, 2)
	}
}

// Regression test for the first-contact planning stampede: before the
// cache deduplicated in-flight builds, N concurrent misses for one pair
// ran the planner N times and discarded N−1 results. With singleflight
// dedup exactly one build runs; the joiners wait and share it.
func TestCacheStampedeSingleBuild(t *testing.T) {
	src, err := dad.NewTemplate([]int{240}, []dad.AxisDist{dad.BlockAxis(4)})
	if err != nil {
		t.Fatal(err)
	}
	dst, err := dad.NewTemplate([]int{240}, []dad.AxisDist{dad.CyclicAxis(6)})
	if err != nil {
		t.Fatal(err)
	}

	c := NewCache()
	const workers = 32
	var wg sync.WaitGroup
	var release sync.WaitGroup
	release.Add(1)
	got := make([]*Schedule, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			release.Wait() // maximize overlap: all workers Get at once
			s, err := c.Get(src, dst)
			if err != nil {
				t.Errorf("worker %d: %v", w, err)
				return
			}
			got[w] = s
		}(w)
	}
	release.Done()
	wg.Wait()

	if b := c.Builds(); b != 1 {
		t.Errorf("concurrent first contact ran the planner %d times, want 1", b)
	}
	for w := 1; w < workers; w++ {
		if got[w] != got[0] {
			t.Errorf("worker %d received a different schedule instance than worker 0", w)
		}
	}
	hits, misses := c.Stats()
	if hits+misses != workers {
		t.Errorf("hits %d + misses %d != %d workers", hits, misses, workers)
	}

	// Invalidation forces exactly one more build, not one per caller.
	if !c.Invalidate(src, dst) {
		t.Fatal("Invalidate found no entry")
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Get(src, dst); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if b := c.Builds(); b != 2 {
		t.Errorf("post-invalidation sweep brought total builds to %d, want 2", b)
	}
}

// Distinct pairs populated concurrently must each be cached independently.
func TestCacheConcurrentDistinctPairs(t *testing.T) {
	mk := func(np int) *dad.Template {
		out, err := dad.NewTemplate([]int{60}, []dad.AxisDist{dad.BlockAxis(np)})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	tpls := []*dad.Template{mk(2), mk(3), mk(4), mk(5)}
	c := NewCache()
	var wg sync.WaitGroup
	for _, src := range tpls {
		for _, dst := range tpls {
			wg.Add(1)
			go func(src, dst *dad.Template) {
				defer wg.Done()
				if _, err := c.Get(src, dst); err != nil {
					t.Errorf("Get(%s, %s): %v", src.Key(), dst.Key(), err)
				}
			}(src, dst)
		}
	}
	wg.Wait()
	hits, misses := c.Stats()
	if hits+misses != len(tpls)*len(tpls) {
		t.Errorf("hits %d + misses %d != %d Gets", hits, misses, len(tpls)*len(tpls))
	}
	// All pairs now resident: a second sweep is pure hits.
	for _, src := range tpls {
		for _, dst := range tpls {
			if _, err := c.Get(src, dst); err != nil {
				t.Fatal(err)
			}
		}
	}
	h2, m2 := c.Stats()
	if m2 != misses {
		t.Errorf("warm sweep added %d misses", m2-misses)
	}
	if h2 != hits+len(tpls)*len(tpls) {
		t.Errorf("warm sweep recorded %d hits, want %d", h2-hits, len(tpls)*len(tpls))
	}
}
