package schedule

import (
	"math/rand"
	"testing"

	"mxn/internal/dad"
)

func TestComposeBasic(t *testing.T) {
	a := tpl(t, []int{12}, dad.BlockAxis(2))
	b := tpl(t, []int{12}, dad.CyclicAxis(3))
	c := tpl(t, []int{12}, dad.BlockAxis(4))
	s1 := mustBuild(t, a, b)
	s2 := mustBuild(t, b, c)
	fused, err := Compose(s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	if fused.Src != a || fused.Dst != c {
		t.Error("composed endpoints wrong")
	}
	if fused.TotalElems() != 12 {
		t.Errorf("total = %d", fused.TotalElems())
	}
	// One fused hop must equal two chained hops.
	srcLocals := fillByGlobal(a)
	wantMid := executeLocally(s1, srcLocals)
	want := executeLocally(s2, wantMid)
	got := executeLocally(fused, srcLocals)
	for r := range want {
		for i := range want[r] {
			if got[r][i] != want[r][i] {
				t.Fatalf("rank %d elem %d: fused %v chained %v", r, i, got[r][i], want[r][i])
			}
		}
	}
	verifyRedistribution(t, c, got)
}

func TestComposeMismatchedIntermediate(t *testing.T) {
	a := tpl(t, []int{12}, dad.BlockAxis(2))
	b1 := tpl(t, []int{12}, dad.CyclicAxis(3))
	b2 := tpl(t, []int{12}, dad.BlockAxis(3)) // different intermediate layout
	c := tpl(t, []int{12}, dad.BlockAxis(4))
	s1 := mustBuild(t, a, b1)
	s2 := mustBuild(t, b2, c)
	if _, err := Compose(s1, s2); err == nil {
		t.Error("mismatched intermediates accepted")
	}
}

func TestComposeIdentityStages(t *testing.T) {
	// A→A composed with A→B equals A→B.
	a := tpl(t, []int{16}, dad.BlockAxis(4))
	b := tpl(t, []int{16}, dad.CyclicAxis(2))
	id := mustBuild(t, a, a)
	s := mustBuild(t, a, b)
	fused, err := Compose(id, s)
	if err != nil {
		t.Fatal(err)
	}
	verifyRedistribution(t, b, executeLocally(fused, fillByGlobal(a)))
}

func TestComposeChainOfThree(t *testing.T) {
	// Compose is associative in effect: fuse three hops pairwise.
	a := tpl(t, []int{18}, dad.BlockAxis(3))
	b := tpl(t, []int{18}, dad.BlockCyclicAxis(2, 2))
	c := tpl(t, []int{18}, dad.CyclicAxis(3))
	d := tpl(t, []int{18}, dad.BlockAxis(2))
	s1 := mustBuild(t, a, b)
	s2 := mustBuild(t, b, c)
	s3 := mustBuild(t, c, d)
	f12, err := Compose(s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	f123, err := Compose(f12, s3)
	if err != nil {
		t.Fatal(err)
	}
	verifyRedistribution(t, d, executeLocally(f123, fillByGlobal(a)))
	// And the other association order.
	f23, err := Compose(s2, s3)
	if err != nil {
		t.Fatal(err)
	}
	f123b, err := Compose(s1, f23)
	if err != nil {
		t.Fatal(err)
	}
	verifyRedistribution(t, d, executeLocally(f123b, fillByGlobal(a)))
}

// Property: fused == chained on random template triples.
func TestPropertyComposeMatchesChained(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 30; trial++ {
		nd := 1 + rng.Intn(2)
		dims := make([]int, nd)
		for a := range dims {
			dims[a] = 2 + rng.Intn(9)
		}
		mk := func() *dad.Template {
			axes := make([]dad.AxisDist, nd)
			for a := range axes {
				axes[a] = randomAxis(rng, dims[a])
			}
			out, err := dad.NewTemplate(dims, axes)
			if err != nil {
				t.Fatal(err)
			}
			return out
		}
		a, b, c := mk(), mk(), mk()
		s1 := mustBuild(t, a, b)
		s2 := mustBuild(t, b, c)
		fused, err := Compose(s1, s2)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		srcLocals := fillByGlobal(a)
		want := executeLocally(s2, executeLocally(s1, srcLocals))
		got := executeLocally(fused, srcLocals)
		for r := range want {
			for i := range want[r] {
				if got[r][i] != want[r][i] {
					t.Fatalf("trial %d (%s | %s | %s): rank %d elem %d: fused %v chained %v",
						trial, a.Key(), b.Key(), c.Key(), r, i, got[r][i], want[r][i])
				}
			}
		}
	}
}

func TestComposeMessageCount(t *testing.T) {
	// The fused schedule's message count is bounded by src×dst pairs, not
	// by the sum through the intermediate — the in-place optimization the
	// paper's pipelining discussion asks for.
	a := tpl(t, []int{64}, dad.BlockAxis(4))
	b := tpl(t, []int{64}, dad.CyclicAxis(8))
	c := tpl(t, []int{64}, dad.BlockAxis(4))
	s1 := mustBuild(t, a, b)
	s2 := mustBuild(t, b, c)
	fused, err := Compose(s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	if fused.NumMessages() > 16 {
		t.Errorf("fused schedule has %d messages for 4×4 rank pairs", fused.NumMessages())
	}
	if s1.NumMessages()+s2.NumMessages() <= fused.NumMessages() {
		t.Errorf("expected chained (%d+%d) to exceed fused (%d) for this pipeline",
			s1.NumMessages(), s2.NumMessages(), fused.NumMessages())
	}
}

// Property: for random M×K×N layout chains over one index space, the
// composed schedule conserves the data set — it moves exactly Size()
// elements (conservation) — and its pairwise transfers write every
// destination element exactly once (coverage, no overlap). Together with
// value integrity this is the correctness contract redistribution rests
// on: no element lost, none duplicated, none fabricated.
func TestPropertyComposeConservationAndCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	for trial := 0; trial < 30; trial++ {
		nd := 1 + rng.Intn(3)
		dims := make([]int, nd)
		for a := range dims {
			dims[a] = 1 + rng.Intn(8)
		}
		mk := func() *dad.Template {
			axes := make([]dad.AxisDist, nd)
			for a := range axes {
				axes[a] = randomAxis(rng, dims[a])
			}
			out, err := dad.NewTemplate(dims, axes)
			if err != nil {
				t.Fatal(err)
			}
			return out
		}
		src, mid, dst := mk(), mk(), mk()
		fused, err := Compose(mustBuild(t, src, mid), mustBuild(t, mid, dst))
		if err != nil {
			t.Fatalf("trial %d (%s | %s | %s): %v", trial, src.Key(), mid.Key(), dst.Key(), err)
		}

		// Conservation: the fused schedule moves the whole index space,
		// no more, no less.
		if fused.TotalElems() != src.Size() {
			t.Fatalf("trial %d (%s | %s | %s): fused schedule moves %d of %d elements",
				trial, src.Key(), mid.Key(), dst.Key(), fused.TotalElems(), src.Size())
		}

		// Coverage: unpacking a marker through every pair touches every
		// destination element exactly once.
		counts := make([][]int, dst.NumProcs())
		for r := range counts {
			counts[r] = make([]int, dst.LocalCount(r))
		}
		for _, p := range fused.Pairs {
			marker := make([]float64, p.Elems)
			for i := range marker {
				marker[i] = 1
			}
			touched := make([]float64, dst.LocalCount(p.DstRank))
			Unpack(p, touched, marker)
			for i, v := range touched {
				if v != 0 {
					counts[p.DstRank][i]++
				}
			}
		}
		forEachIndex(dst.Dims(), func(idx []int) {
			r := dst.OwnerOf(idx)
			if n := counts[r][dst.LocalOffset(r, idx)]; n != 1 {
				t.Fatalf("trial %d (%s | %s | %s): index %v on dst rank %d written %d times, want exactly once",
					trial, src.Key(), mid.Key(), dst.Key(), idx, r, n)
			}
		})

		// Value integrity on top: the fused move lands every fingerprint
		// where the destination layout says it belongs.
		verifyRedistribution(t, dst, executeLocally(fused, fillByGlobal(src)))
	}
}
