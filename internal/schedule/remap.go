package schedule

import (
	"fmt"
	"strings"

	"mxn/internal/dad"
	"mxn/internal/obs"
)

// Remap/Expand: the planned-reconfiguration counterparts of Restrict.
//
// Restrict (PR 3) shrinks a schedule after an *unplanned* membership
// change — a rank died, drop its pairs. A planned resize needs the other
// two directions: Remap plans the full old-layout→new-layout migration
// transfer (the data movement of a cohort growing or shrinking), and
// Expand renumbers an existing schedule's rank spaces into wider
// templates (a sub-cohort's plan re-expressed inside the resized cohort),
// which together with Restrict gives round-trippable narrowing/widening.

var (
	mRemaps      = obs.Default().Counter("schedule.remaps")
	mRemapElems  = obs.Default().Counter("schedule.remap_elems")
	mExpands     = obs.Default().Counter("schedule.expands")
	mTplInvalids = obs.Default().Counter("schedule.cache_template_invalidations")
)

// Remap plans the migration transfer of an online resize: every element
// moves from its owner under the old template to its owner under the new
// (typically dad.Reblock(old, newWidth)) template. It is Build plus the
// resize-specific contract checks — the templates must conform, and
// the plan must move every element exactly once (schedules between
// complete distributions always do; the check catches a caller pairing
// descriptors of different arrays).
//
// Closed-form planning applies automatically: a Block→Block width change
// is interval×interval and plans arithmetically through the recycled
// arena (the PR 5 fast path), so resize planning costs microseconds, not
// an enumeration.
func Remap(old, next *dad.Template) (*Schedule, error) {
	if !old.Conforms(next) {
		return nil, fmt.Errorf("schedule: Remap templates do not conform: %v vs %v", old.Dims(), next.Dims())
	}
	s, err := Build(old, next)
	if err != nil {
		return nil, err
	}
	if got, want := s.TotalElems(), old.Size(); got != want {
		return nil, fmt.Errorf("schedule: Remap plan moves %d of %d elements", got, want)
	}
	mRemaps.Inc()
	mRemapElems.Add(uint64(s.TotalElems()))
	return s, nil
}

// Expand renumbers a schedule's rank spaces into wider templates: pair
// (s, d) becomes (srcMap[s], dstMap[d]) planned against newSrc/newDst. A
// nil map is the identity. It is the inverse direction of Restrict — a
// plan built for a narrow cohort re-expressed inside a wider one — and
// shares the PairPlan run backing with s (runs are never mutated, only
// relabeled), so expanding is O(pairs), not a re-plan.
//
// The caller guarantees the layout contract: each mapped rank owns, in
// the wide template, exactly the index set (and local layout) its old
// rank owned in the narrow one. Expand verifies the cheap projection of
// that contract — map bounds and per-rank local element counts — and
// fails typed on violation, since a silently mis-expanded schedule would
// scatter data through wrong offsets.
func Expand(s *Schedule, newSrc, newDst *dad.Template, srcMap, dstMap []int) (*Schedule, error) {
	if !newSrc.Conforms(newDst) || !newSrc.Conforms(s.Src) {
		return nil, fmt.Errorf("schedule: Expand templates do not conform")
	}
	rankOf := func(m []int, r int, n int, side string) (int, error) {
		nr := r
		if m != nil {
			if r >= len(m) {
				return 0, fmt.Errorf("schedule: Expand %s rank %d outside map of %d", side, r, len(m))
			}
			nr = m[r]
		}
		if nr < 0 || nr >= n {
			return 0, fmt.Errorf("schedule: Expand %s rank %d maps to %d outside [0,%d)", side, r, nr, n)
		}
		return nr, nil
	}
	out := &Schedule{Src: newSrc, Dst: newDst}
	out.Pairs = make([]PairPlan, 0, len(s.Pairs))
	for _, p := range s.Pairs {
		ns, err := rankOf(srcMap, p.SrcRank, newSrc.NumProcs(), "source")
		if err != nil {
			return nil, err
		}
		nd, err := rankOf(dstMap, p.DstRank, newDst.NumProcs(), "destination")
		if err != nil {
			return nil, err
		}
		if got, want := newSrc.LocalCount(ns), s.Src.LocalCount(p.SrcRank); got != want {
			return nil, fmt.Errorf("schedule: Expand source rank %d→%d local count %d != %d", p.SrcRank, ns, got, want)
		}
		if got, want := newDst.LocalCount(nd), s.Dst.LocalCount(p.DstRank); got != want {
			return nil, fmt.Errorf("schedule: Expand destination rank %d→%d local count %d != %d", p.DstRank, nd, got, want)
		}
		out.Pairs = append(out.Pairs, PairPlan{SrcRank: ns, DstRank: nd, Runs: p.Runs, Elems: p.Elems})
	}
	out.index()
	mExpands.Inc()
	return out, nil
}

// InvalidateTemplate drops every cached schedule whose source or
// destination is t, returning how many entries were dropped. This is the
// scoped invalidation a resize wants: the resized cohort's template
// appears on one side of every plan that must be rebuilt, while cached
// plans between unrelated couplings — whose keys reference neither side —
// keep their 0-alloc steady state.
func (c *Cache) InvalidateTemplate(t *dad.Template) int {
	tKey := t.Key()
	prefix := tKey + "\x00"
	suffix := "\x00" + tKey
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for key := range c.m {
		if strings.HasPrefix(key, prefix) || strings.HasSuffix(key, suffix) {
			delete(c.m, key)
			n++
		}
	}
	mInvalidations.Add(uint64(n))
	mTplInvalids.Add(uint64(n))
	return n
}
