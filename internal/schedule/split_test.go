package schedule

import (
	"math/rand"
	"testing"

	"mxn/internal/dad"
)

// splitPlans collects pairwise plans with interesting run structure:
// multi-run plans whose runs the chunk windows must split mid-way.
func splitPlans(t *testing.T) []struct {
	plan PairPlan
	src  *dad.Template
} {
	t.Helper()
	var out []struct {
		plan PairPlan
		src  *dad.Template
	}
	worlds := []struct{ src, dst *dad.Template }{
		{tpl(t, []int{64}, dad.BlockAxis(4)), tpl(t, []int{64}, dad.CyclicAxis(4))},
		{tpl(t, []int{60}, dad.BlockCyclicAxis(3, 5)), tpl(t, []int{60}, dad.BlockAxis(4))},
		{tpl(t, []int{8, 8}, dad.BlockAxis(2), dad.CollapsedAxis()), tpl(t, []int{8, 8}, dad.CollapsedAxis(), dad.BlockAxis(2))},
	}
	for _, w := range worlds {
		s := mustBuild(t, w.src, w.dst)
		for _, p := range s.Pairs {
			if p.Elems > 0 {
				out = append(out, struct {
					plan PairPlan
					src  *dad.Template
				}{p, w.src})
			}
		}
	}
	return out
}

// Consecutive PackSliceRange windows tiling [0, Elems) must produce the
// same packed stream as one whole-message PackSlice, for every window
// size — including sizes that split individual runs mid-way — and the
// mirrored UnpackSliceRange windows must reproduce UnpackSlice.
func TestSliceRangeTilesWholeMessage(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, tc := range splitPlans(t) {
		p := tc.plan
		local := make([]float64, tc.src.LocalCount(p.SrcRank))
		for i := range local {
			local[i] = rng.Float64()
		}
		want := make([]float64, p.Elems)
		PackSlice(p, local, want)

		for _, win := range []int{1, 2, 3, p.Elems/2 + 1, p.Elems} {
			got := make([]float64, p.Elems)
			for off := 0; off < p.Elems; off += win {
				n := win
				if off+n > p.Elems {
					n = p.Elems - off
				}
				PackSliceRange(p, local, got[off:off+n], off)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("pair %d→%d window %d: packed elem %d = %v, want %v",
						p.SrcRank, p.DstRank, win, i, got[i], want[i])
				}
			}

			// Unpack the same windows into a fresh destination buffer and
			// compare against the whole-message unpack.
			dstWant := make([]float64, maxRunEnd(p))
			UnpackSlice(p, dstWant, want)
			dstGot := make([]float64, len(dstWant))
			for off := 0; off < p.Elems; off += win {
				n := win
				if off+n > p.Elems {
					n = p.Elems - off
				}
				UnpackSliceRange(p, dstGot, want[off:off+n], off)
			}
			for i := range dstWant {
				if dstGot[i] != dstWant[i] {
					t.Fatalf("pair %d→%d window %d: unpacked elem %d = %v, want %v",
						p.SrcRank, p.DstRank, win, i, dstGot[i], dstWant[i])
				}
			}
		}
	}
}

// maxRunEnd sizes a destination buffer big enough for every run.
func maxRunEnd(p PairPlan) int {
	end := 0
	for _, r := range p.Runs {
		if e := r.DstOff + r.N; e > end {
			end = e
		}
	}
	return end
}

// A zero-length window is a no-op wherever it lands.
func TestSliceRangeZeroWindow(t *testing.T) {
	tc := splitPlans(t)[0]
	p := tc.plan
	local := make([]float64, tc.src.LocalCount(p.SrcRank))
	PackSliceRange(p, local, nil, 0)
	PackSliceRange(p, local, nil, p.Elems/2)
	UnpackSliceRange(p, make([]float64, maxRunEnd(p)), nil, 0)
}
