package schedule

import (
	"fmt"
	"sort"
)

// Compose fuses two redistribution schedules into one: given s1 moving
// data from decomposition A to B and s2 moving from B to C, the result
// moves directly from A to C with no intermediate materialization in B.
//
// This implements the paper's Section 6 "super-component" idea: "An
// important pragmatic issue that arises with such pipelining is how
// efficiently redistribution functions compose with one another.
// Techniques must be explored to operate on data in place and avoid
// unnecessary data copies... combining several successive redistribution
// and translation components into a single optimized component."
//
// s1's destination and s2's source must be the *same* distribution (equal
// template keys), since composition happens in that intermediate local
// layout. The composed schedule is a plain Schedule: reusable, cacheable,
// and executable by every existing executor.
func Compose(s1, s2 *Schedule) (*Schedule, error) {
	if s1.Dst.Key() != s2.Src.Key() {
		return nil, fmt.Errorf("schedule: cannot compose: first stage lands in %s but second departs from %s",
			s1.Dst.Key(), s2.Src.Key())
	}

	// span is one contiguous run viewed from the intermediate (B) rank's
	// local buffer: elements [bOff, bOff+n) correspond to [edgeOff,
	// edgeOff+n) on the outer (A or C) rank.
	type span struct {
		bOff, n       int
		outer, offOut int // outer rank and its local offset
	}

	nB := s1.Dst.NumProcs()
	in := make([][]span, nB)  // per B rank: where its elements come from
	out := make([][]span, nB) // per B rank: where its elements go
	for _, p := range s1.Pairs {
		for _, r := range p.Runs {
			in[p.DstRank] = append(in[p.DstRank], span{bOff: r.DstOff, n: r.N, outer: p.SrcRank, offOut: r.SrcOff})
		}
	}
	for _, p := range s2.Pairs {
		for _, r := range p.Runs {
			out[p.SrcRank] = append(out[p.SrcRank], span{bOff: r.SrcOff, n: r.N, outer: p.DstRank, offOut: r.DstOff})
		}
	}

	type pairKey struct{ src, dst int }
	plans := map[pairKey]*PairPlan{}
	for b := 0; b < nB; b++ {
		ins, outs := in[b], out[b]
		sort.Slice(ins, func(i, j int) bool { return ins[i].bOff < ins[j].bOff })
		sort.Slice(outs, func(i, j int) bool { return outs[i].bOff < outs[j].bOff })
		// Merge-walk the two sorted span lists; every overlap becomes a
		// composed run from the A rank to the C rank.
		i, j := 0, 0
		for i < len(ins) && j < len(outs) {
			a, c := ins[i], outs[j]
			lo := max(a.bOff, c.bOff)
			hi := min(a.bOff+a.n, c.bOff+c.n)
			if lo < hi {
				key := pairKey{a.outer, c.outer}
				plan := plans[key]
				if plan == nil {
					plan = &PairPlan{SrcRank: a.outer, DstRank: c.outer}
					plans[key] = plan
				}
				plan.Runs = append(plan.Runs, Run{
					SrcOff: a.offOut + (lo - a.bOff),
					DstOff: c.offOut + (lo - c.bOff),
					N:      hi - lo,
				})
				plan.Elems += hi - lo
			}
			if a.bOff+a.n < c.bOff+c.n {
				i++
			} else {
				j++
			}
		}
	}

	s := &Schedule{Src: s1.Src, Dst: s2.Dst}
	// Deterministic order: by source rank, then destination rank.
	keys := make([]pairKey, 0, len(plans))
	for k := range plans {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].src != keys[j].src {
			return keys[i].src < keys[j].src
		}
		return keys[i].dst < keys[j].dst
	})
	for _, k := range keys {
		s.Pairs = append(s.Pairs, *plans[k])
	}
	s.index()

	if got, want := s.TotalElems(), s1.TotalElems(); got != want {
		return nil, fmt.Errorf("schedule: composition lost elements: %d of %d (first stage does not fully cover the intermediate)", got, want)
	}
	return s, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
