package schedule

import (
	"testing"

	"mxn/internal/dad"
	"mxn/internal/obs"
)

// allocBudgetFast is the steady-state allocation budget for an uncached
// closed-form Build. With the plan staged through a recycled arena the
// measured cost is zero; the budget leaves no headroom on purpose — any
// new allocation on this path is a regression the planner must justify.
const allocBudgetFast = 0

// Satellite guarantee for the planning fast path: once the arena free
// list is warm, an uncached Build of a closed-form pair allocates within
// allocBudgetFast, so first-contact planning does not thrash the heap
// even when the schedule cache misses (new template pair, post-failure
// re-plan). The enumerator path has no such guarantee — that asymmetry is
// the point of the fast path.
func TestFastPathBuildSteadyStateAllocs(t *testing.T) {
	obs.DisableTracing()
	src, err := dad.NewTemplate([]int{1 << 16}, []dad.AxisDist{dad.BlockAxis(8)})
	if err != nil {
		t.Fatal(err)
	}
	dst, err := dad.NewTemplate([]int{1 << 16}, []dad.AxisDist{dad.CyclicAxis(12)})
	if err != nil {
		t.Fatal(err)
	}
	// Warm the arena: the first builds grow the slabs to this shape's
	// high-water mark and park the arena on the free list.
	for i := 0; i < 3; i++ {
		s, err := Build(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		if !s.FastPath() {
			t.Fatal("closed-form pair did not take the fast path")
		}
		s.Recycle()
	}
	allocs := testing.AllocsPerRun(50, func() {
		s, err := Build(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		s.Recycle()
	})
	if allocs > allocBudgetFast {
		t.Fatalf("steady-state fast-path Build allocates %v per plan, budget %d",
			allocs, allocBudgetFast)
	}
}

// A shape change between recycles must not break the steady state: the
// slabs regrow once to the new high-water mark and then stay flat. This
// pins the prepare/take growth contract (grow to last build's demand, not
// incrementally per take).
func TestFastPathArenaRegrowth(t *testing.T) {
	obs.DisableTracing()
	small, err := dad.NewTemplate([]int{1 << 8}, []dad.AxisDist{dad.BlockAxis(2)})
	if err != nil {
		t.Fatal(err)
	}
	smallDst, err := dad.NewTemplate([]int{1 << 8}, []dad.AxisDist{dad.CyclicAxis(3)})
	if err != nil {
		t.Fatal(err)
	}
	big, err := dad.NewTemplate([]int{1 << 14}, []dad.AxisDist{dad.BlockAxis(16)})
	if err != nil {
		t.Fatal(err)
	}
	bigDst, err := dad.NewTemplate([]int{1 << 14}, []dad.AxisDist{dad.CyclicAxis(24)})
	if err != nil {
		t.Fatal(err)
	}
	build := func(s, d *dad.Template) {
		sch, err := Build(s, d)
		if err != nil {
			t.Fatal(err)
		}
		sch.Recycle()
	}
	build(small, smallDst) // arena sized for the small shape
	build(big, bigDst)     // forces regrowth
	build(big, bigDst)     // high-water now covers the big shape
	allocs := testing.AllocsPerRun(20, func() { build(big, bigDst) })
	if allocs > allocBudgetFast {
		t.Fatalf("post-regrowth fast-path Build allocates %v per plan, budget %d",
			allocs, allocBudgetFast)
	}
}
