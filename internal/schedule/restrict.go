package schedule

import (
	"mxn/internal/dad"
	"mxn/internal/obs"
)

var (
	mRestricts     = obs.Default().Counter("schedule.restricts")
	mPairsDropped  = obs.Default().Counter("schedule.restrict_pairs_dropped")
	mInvalidations = obs.Default().Counter("schedule.cache_invalidations")
)

// Restrict returns the sub-schedule of s containing only the pair plans
// whose source rank satisfies aliveSrc and whose destination rank
// satisfies aliveDst. This is the re-planning step of failure-aware
// redistribution: after a rank dies mid-transfer, the survivors finish
// against Restrict(s, ...) — the communication pattern among live ranks is
// unchanged by the death, so dropping the dead pairs is exactly the
// schedule the surviving rank set would have built for its share of data.
//
// The returned schedule shares s's templates and PairPlan backing data
// (plans are never mutated, only selected); a nil predicate means
// "everyone alive" on that side.
func Restrict(s *Schedule, aliveSrc, aliveDst func(rank int) bool) *Schedule {
	alive := func(pred func(int) bool, rank int) bool {
		return pred == nil || pred(rank)
	}
	out := &Schedule{Src: s.Src, Dst: s.Dst}
	out.Pairs = make([]PairPlan, 0, len(s.Pairs))
	for _, p := range s.Pairs {
		if alive(aliveSrc, p.SrcRank) && alive(aliveDst, p.DstRank) {
			out.Pairs = append(out.Pairs, p)
		} else {
			mPairsDropped.Inc()
		}
	}
	out.index()
	mRestricts.Inc()
	return out
}

// Invalidate drops the cached schedule for (src, dst), forcing the next
// Get to rebuild. Failure-aware transfers call it when membership changes:
// the cached plan still references the dead rank, and later epochs must
// re-plan from current templates. Returns whether an entry was present.
func (c *Cache) Invalidate(src, dst *dad.Template) bool {
	key := src.Key() + "\x00" + dst.Key()
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.m[key]; !ok {
		return false
	}
	delete(c.m, key)
	mInvalidations.Inc()
	return true
}

// InvalidateAll empties the cache and returns how many schedules were
// dropped.
func (c *Cache) InvalidateAll() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.m)
	c.m = map[string]*cacheEntry{}
	mInvalidations.Add(uint64(n))
	return n
}
