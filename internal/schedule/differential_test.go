package schedule

import (
	"math/rand"
	"sort"
	"testing"

	"mxn/internal/dad"
)

// The closed-form planner and the patch-enumeration planner are free to
// split and order runs differently (both orderings are valid schedules);
// equivalence is judged on the canonical form: per rank pair, runs sorted
// by source offset and coalesced where adjacent in both local spaces.
type pairKey struct{ src, dst int }

func canonicalRuns(s *Schedule) map[pairKey][]Run {
	out := make(map[pairKey][]Run, len(s.Pairs))
	for _, p := range s.Pairs {
		k := pairKey{p.SrcRank, p.DstRank}
		runs := append(out[k], p.Runs...)
		out[k] = runs
	}
	for k, runs := range out {
		sort.Slice(runs, func(i, j int) bool { return runs[i].SrcOff < runs[j].SrcOff })
		merged := runs[:0]
		for _, r := range runs {
			if n := len(merged); n > 0 {
				last := &merged[n-1]
				if last.SrcOff+last.N == r.SrcOff && last.DstOff+last.N == r.DstOff {
					last.N += r.N
					continue
				}
			}
			merged = append(merged, r)
		}
		out[k] = merged
	}
	return out
}

// diffSchedules fails the test if two schedules are not element-for-element
// identical after canonicalization.
func diffSchedules(t *testing.T, label string, got, want *Schedule) {
	t.Helper()
	g, w := canonicalRuns(got), canonicalRuns(want)
	if len(g) != len(w) {
		t.Fatalf("%s: %d communicating pairs, want %d", label, len(g), len(w))
	}
	for k, wr := range w {
		gr, ok := g[k]
		if !ok {
			t.Fatalf("%s: pair %d→%d missing", label, k.src, k.dst)
		}
		if len(gr) != len(wr) {
			t.Fatalf("%s: pair %d→%d has %d canonical runs, want %d\n got: %v\nwant: %v",
				label, k.src, k.dst, len(gr), len(wr), gr, wr)
		}
		for i := range wr {
			if gr[i] != wr[i] {
				t.Fatalf("%s: pair %d→%d run %d = %+v, want %+v",
					label, k.src, k.dst, i, gr[i], wr[i])
			}
		}
	}
}

// checkCoverage asserts the schedule touches every source-local and every
// destination-local offset exactly once — together with TotalElems ==
// Size this is conservation: no element dropped, duplicated, or invented.
func checkCoverage(t *testing.T, label string, s *Schedule) {
	t.Helper()
	srcSeen := make([][]bool, s.Src.NumProcs())
	for r := range srcSeen {
		srcSeen[r] = make([]bool, s.Src.LocalCount(r))
	}
	dstSeen := make([][]bool, s.Dst.NumProcs())
	for r := range dstSeen {
		dstSeen[r] = make([]bool, s.Dst.LocalCount(r))
	}
	for _, p := range s.Pairs {
		for _, run := range p.Runs {
			for i := 0; i < run.N; i++ {
				if srcSeen[p.SrcRank][run.SrcOff+i] {
					t.Fatalf("%s: src rank %d offset %d sent twice", label, p.SrcRank, run.SrcOff+i)
				}
				srcSeen[p.SrcRank][run.SrcOff+i] = true
				if dstSeen[p.DstRank][run.DstOff+i] {
					t.Fatalf("%s: dst rank %d offset %d written twice", label, p.DstRank, run.DstOff+i)
				}
				dstSeen[p.DstRank][run.DstOff+i] = true
			}
		}
	}
	for r, seen := range srcSeen {
		for off, ok := range seen {
			if !ok {
				t.Fatalf("%s: src rank %d offset %d never sent", label, r, off)
			}
		}
	}
	for r, seen := range dstSeen {
		for off, ok := range seen {
			if !ok {
				t.Fatalf("%s: dst rank %d offset %d never written", label, r, off)
			}
		}
	}
}

// randomRegularAxis draws from the regular distribution kinds only —
// irregular kinds (Implicit, GenBlock is regular but interval-class) never
// take the closed-form path, so the differential harness concentrates on
// pairs the fast path actually plans.
func randomRegularAxis(rng *rand.Rand, n int) dad.AxisDist {
	p := 1 + rng.Intn(4)
	switch rng.Intn(5) {
	case 0:
		return dad.CollapsedAxis()
	case 1:
		return dad.BlockAxis(p)
	case 2:
		return dad.CyclicAxis(p)
	case 3:
		return dad.BlockCyclicAxis(p, 1+rng.Intn(4))
	default:
		sizes := make([]int, p)
		left := n
		for i := 0; i < p-1; i++ {
			s := 0
			if left > 0 {
				s = rng.Intn(left + 1)
			}
			sizes[i] = s
			left -= s
		}
		sizes[p-1] = left
		return dad.GenBlockAxis(sizes)
	}
}

// Differential property: for every closed-form template pair, the
// arithmetic planner and the patch-enumeration planner must produce
// element-for-element identical schedules.
func TestDifferentialFastVsEnumerator(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	planned := 0
	for trial := 0; trial < 400; trial++ {
		nd := 1 + rng.Intn(3)
		dims := make([]int, nd)
		for a := range dims {
			dims[a] = 1 + rng.Intn(20)
		}
		mkAxes := func() []dad.AxisDist {
			axes := make([]dad.AxisDist, nd)
			for a := range axes {
				axes[a] = randomRegularAxis(rng, dims[a])
			}
			return axes
		}
		src, err := dad.NewTemplate(dims, mkAxes())
		if err != nil {
			t.Fatal(err)
		}
		dst, err := dad.NewTemplate(dims, mkAxes())
		if err != nil {
			t.Fatal(err)
		}
		if !src.ClosedFormPair(dst) {
			// Incompatible strided block sizes: the fast path must
			// decline, and Build must still succeed via the enumerator.
			s := mustBuild(t, src, dst)
			if s.FastPath() {
				t.Fatalf("trial %d (%s → %s): fast path engaged for a non-closed-form pair",
					trial, src.Key(), dst.Key())
			}
			continue
		}
		planned++

		fast, err := Build(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		if !fast.FastPath() {
			t.Fatalf("trial %d (%s → %s): closed-form pair fell back to the enumerator",
				trial, src.Key(), dst.Key())
		}
		ref, err := BuildWith(src, dst, BuildOpts{DisableFastPath: true})
		if err != nil {
			t.Fatal(err)
		}
		if ref.FastPath() {
			t.Fatal("DisableFastPath did not disable the fast path")
		}

		label := src.Key() + " → " + dst.Key()
		if fast.TotalElems() != src.Size() {
			t.Fatalf("%s: fast plan moves %d of %d elements", label, fast.TotalElems(), src.Size())
		}
		diffSchedules(t, label, fast, ref)
		checkCoverage(t, label, fast)

		// The plan must also be executable: values survive the transfer.
		verifyRedistribution(t, dst, executeLocally(fast, fillByGlobal(src)))
		if t.Failed() {
			t.Fatalf("trial %d failed: %s", trial, label)
		}
		fast.Recycle()
	}
	if planned < 100 {
		t.Fatalf("only %d of 400 trials exercised the fast path — generator drifted", planned)
	}
}

// Directed cases covering every closed-form intersection class and the
// clipping edge cases (partial trailing blocks, extents far from multiples
// of block×procs, single-rank axes).
func TestDifferentialDirectedCases(t *testing.T) {
	cases := []struct {
		name     string
		dims     []int
		src, dst []dad.AxisDist
	}{
		{"block-block-1d", []int{17}, []dad.AxisDist{dad.BlockAxis(3)}, []dad.AxisDist{dad.BlockAxis(4)}},
		{"block-cyclic-1d", []int{23}, []dad.AxisDist{dad.BlockAxis(4)}, []dad.AxisDist{dad.CyclicAxis(3)}},
		{"cyclic-block-1d", []int{23}, []dad.AxisDist{dad.CyclicAxis(3)}, []dad.AxisDist{dad.BlockAxis(4)}},
		{"cyclic-cyclic-1d", []int{29}, []dad.AxisDist{dad.CyclicAxis(4)}, []dad.AxisDist{dad.CyclicAxis(6)}},
		{"bcyclic-bcyclic-equal-b", []int{37}, []dad.AxisDist{dad.BlockCyclicAxis(3, 4)}, []dad.AxisDist{dad.BlockCyclicAxis(5, 4)}},
		{"bcyclic-block-partial-tail", []int{19}, []dad.AxisDist{dad.BlockCyclicAxis(3, 4)}, []dad.AxisDist{dad.BlockAxis(2)}},
		{"genblock-cyclic", []int{16}, []dad.AxisDist{dad.GenBlockAxis([]int{0, 7, 9})}, []dad.AxisDist{dad.CyclicAxis(5)}},
		{"collapsed-bcyclic", []int{21}, []dad.AxisDist{dad.CollapsedAxis()}, []dad.AxisDist{dad.BlockCyclicAxis(2, 5)}},
		{"2d-transpose", []int{12, 18},
			[]dad.AxisDist{dad.BlockAxis(3), dad.CollapsedAxis()},
			[]dad.AxisDist{dad.CollapsedAxis(), dad.BlockAxis(3)}},
		{"2d-mixed", []int{11, 13},
			[]dad.AxisDist{dad.CyclicAxis(2), dad.BlockAxis(3)},
			[]dad.AxisDist{dad.BlockCyclicAxis(3, 1), dad.GenBlockAxis([]int{4, 0, 9})}},
		{"3d-strided-last-axis", []int{5, 6, 14},
			[]dad.AxisDist{dad.BlockAxis(2), dad.CollapsedAxis(), dad.CyclicAxis(3)},
			[]dad.AxisDist{dad.CyclicAxis(2), dad.BlockAxis(2), dad.CyclicAxis(2)}},
		{"single-element", []int{1}, []dad.AxisDist{dad.BlockAxis(3)}, []dad.AxisDist{dad.CyclicAxis(2)}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			src := tpl(t, c.dims, c.src...)
			dst := tpl(t, c.dims, c.dst...)
			if !src.ClosedFormPair(dst) {
				t.Fatalf("case is not closed-form: %s → %s", src.Key(), dst.Key())
			}
			fast := mustBuild(t, src, dst)
			if !fast.FastPath() {
				t.Fatal("fast path did not engage")
			}
			ref, err := BuildWith(src, dst, BuildOpts{DisableFastPath: true})
			if err != nil {
				t.Fatal(err)
			}
			diffSchedules(t, c.name, fast, ref)
			checkCoverage(t, c.name, fast)
			verifyRedistribution(t, dst, executeLocally(fast, fillByGlobal(src)))
		})
	}
}

// Recycled arenas must not leak one build's state into the next: plan,
// recycle, plan a different pair from the same arena, and verify both the
// schedule and the coverage invariants.
func TestFastPathArenaReuse(t *testing.T) {
	pairs := []struct{ src, dst *dad.Template }{
		{tpl(t, []int{64}, dad.BlockAxis(4)), tpl(t, []int{64}, dad.CyclicAxis(3))},
		{tpl(t, []int{9}, dad.CyclicAxis(2)), tpl(t, []int{9}, dad.BlockAxis(5))},
		{tpl(t, []int{30, 7}, dad.BlockAxis(2), dad.CyclicAxis(3)), tpl(t, []int{30, 7}, dad.CyclicAxis(5), dad.CollapsedAxis())},
		{tpl(t, []int{64}, dad.BlockAxis(4)), tpl(t, []int{64}, dad.CyclicAxis(3))},
	}
	for round := 0; round < 3; round++ {
		for i, p := range pairs {
			fast := mustBuild(t, p.src, p.dst)
			if !fast.FastPath() {
				t.Fatalf("round %d pair %d: fast path did not engage", round, i)
			}
			ref, err := BuildWith(p.src, p.dst, BuildOpts{DisableFastPath: true})
			if err != nil {
				t.Fatal(err)
			}
			label := p.src.Key() + " → " + p.dst.Key()
			diffSchedules(t, label, fast, ref)
			checkCoverage(t, label, fast)
			fast.Recycle()
		}
	}
}
