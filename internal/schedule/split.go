// Element-boundary windows over a pairwise message's packed order.
//
// PackSlice/UnpackSlice move a whole pairwise message at once; the
// memory-bounded transfer engine instead moves a message as consecutive
// chunks, each covering the window [off, off+len(chunk)) of the same
// packed element order. The range variants below walk the plan's runs,
// skipping off elements and splitting a run mid-way when a window
// boundary lands inside it, so chunked and whole-message transfers
// touch exactly the same local elements in exactly the same order.
package schedule

// PackSliceRange gathers the window [off, off+len(out)) of plan's
// packed element order from the source rank's local buffer. Packing
// consecutive windows that tile [0, plan.Elems) is equivalent to one
// PackSlice of the whole message.
func PackSliceRange[T any](plan PairPlan, local, out []T, off int) {
	k := 0
	for _, r := range plan.Runs {
		if off >= r.N {
			off -= r.N
			continue
		}
		n := r.N - off
		if rem := len(out) - k; n > rem {
			n = rem
		}
		copy(out[k:k+n], local[r.SrcOff+off:r.SrcOff+off+n])
		k += n
		off = 0
		if k == len(out) {
			return
		}
	}
}

// UnpackSliceRange scatters a chunk holding the window
// [off, off+len(data)) of plan's packed element order into the
// destination rank's local buffer.
func UnpackSliceRange[T any](plan PairPlan, local, data []T, off int) {
	k := 0
	for _, r := range plan.Runs {
		if off >= r.N {
			off -= r.N
			continue
		}
		n := r.N - off
		if rem := len(data) - k; n > rem {
			n = rem
		}
		copy(local[r.DstOff+off:r.DstOff+off+n], data[k:k+n])
		k += n
		off = 0
		if k == len(data) {
			return
		}
	}
}
