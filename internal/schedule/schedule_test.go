package schedule

import (
	"math/rand"
	"testing"

	"mxn/internal/dad"
)

// fillByGlobal assigns every element of each source rank's local buffer the
// value of a global fingerprint function, returning the buffers.
func fillByGlobal(t *dad.Template) [][]float64 {
	locals := make([][]float64, t.NumProcs())
	for r := range locals {
		locals[r] = make([]float64, t.LocalCount(r))
	}
	forEachIndex(t.Dims(), func(idx []int) {
		r := t.OwnerOf(idx)
		locals[r][t.LocalOffset(r, idx)] = fingerprint(idx)
	})
	return locals
}

func fingerprint(idx []int) float64 {
	v := 1.0
	for _, i := range idx {
		v = v*131 + float64(i)
	}
	return v
}

func forEachIndex(dims []int, fn func(idx []int)) {
	for _, d := range dims {
		if d == 0 {
			return
		}
	}
	idx := make([]int, len(dims))
	for {
		fn(idx)
		a := len(dims) - 1
		for a >= 0 {
			idx[a]++
			if idx[a] < dims[a] {
				break
			}
			idx[a] = 0
			a--
		}
		if a < 0 {
			return
		}
	}
}

// executeLocally runs the whole schedule in one goroutine: pack every
// pair's data from src buffers, unpack into dst buffers.
func executeLocally(s *Schedule, srcLocals [][]float64) [][]float64 {
	dstLocals := make([][]float64, s.Dst.NumProcs())
	for r := range dstLocals {
		dstLocals[r] = make([]float64, s.Dst.LocalCount(r))
	}
	for _, p := range s.Pairs {
		buf := make([]float64, p.Elems)
		Pack(p, srcLocals[p.SrcRank], buf)
		Unpack(p, dstLocals[p.DstRank], buf)
	}
	return dstLocals
}

// verifyRedistribution checks that dst buffers hold the fingerprint of
// every global index.
func verifyRedistribution(t *testing.T, dst *dad.Template, dstLocals [][]float64) {
	t.Helper()
	forEachIndex(dst.Dims(), func(idx []int) {
		r := dst.OwnerOf(idx)
		got := dstLocals[r][dst.LocalOffset(r, idx)]
		if got != fingerprint(idx) {
			t.Fatalf("index %v on dst rank %d: got %v, want %v", idx, r, got, fingerprint(idx))
		}
	})
}

func mustBuild(t *testing.T, src, dst *dad.Template) *Schedule {
	t.Helper()
	s, err := Build(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func tpl(t *testing.T, dims []int, axes ...dad.AxisDist) *dad.Template {
	t.Helper()
	out, err := dad.NewTemplate(dims, axes)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestBlockToBlock1D(t *testing.T) {
	src := tpl(t, []int{12}, dad.BlockAxis(3))
	dst := tpl(t, []int{12}, dad.BlockAxis(4))
	s := mustBuild(t, src, dst)
	if s.TotalElems() != 12 {
		t.Errorf("total = %d", s.TotalElems())
	}
	verifyRedistribution(t, dst, executeLocally(s, fillByGlobal(src)))
}

func TestBlockToCyclic1D(t *testing.T) {
	src := tpl(t, []int{10}, dad.BlockAxis(2))
	dst := tpl(t, []int{10}, dad.CyclicAxis(3))
	s := mustBuild(t, src, dst)
	if s.TotalElems() != 10 {
		t.Errorf("total = %d", s.TotalElems())
	}
	verifyRedistribution(t, dst, executeLocally(s, fillByGlobal(src)))
}

func TestFigure1Redistribution(t *testing.T) {
	// The paper's Figure 1: M=8 (2×2×2) to N=27 (3×3×3) over a 3-D domain.
	src := tpl(t, []int{6, 6, 6}, dad.BlockAxis(2), dad.BlockAxis(2), dad.BlockAxis(2))
	dst := tpl(t, []int{6, 6, 6}, dad.BlockAxis(3), dad.BlockAxis(3), dad.BlockAxis(3))
	s := mustBuild(t, src, dst)
	if s.TotalElems() != 216 {
		t.Errorf("total = %d, want 216", s.TotalElems())
	}
	verifyRedistribution(t, dst, executeLocally(s, fillByGlobal(src)))
	// Multiple destination ranks must receive from each source rank
	// (N > M), so messages exceed max(M, N).
	if s.NumMessages() <= 27 {
		t.Errorf("messages = %d, expected more than 27 for the 8→27 overlap", s.NumMessages())
	}
}

func TestIdentityRedistribution(t *testing.T) {
	// Same template both sides: every rank talks only to itself.
	src := tpl(t, []int{8, 8}, dad.BlockAxis(2), dad.BlockAxis(2))
	s := mustBuild(t, src, src)
	if s.NumMessages() != 4 {
		t.Errorf("messages = %d, want 4 self-messages", s.NumMessages())
	}
	for _, p := range s.Pairs {
		if p.SrcRank != p.DstRank {
			t.Errorf("identity redistribution has cross message %d→%d", p.SrcRank, p.DstRank)
		}
	}
	verifyRedistribution(t, src, executeLocally(s, fillByGlobal(src)))
}

func TestTransposeSelfConnection(t *testing.T) {
	// The paper mentions self connections "such as for transpose
	// operations": row-block to column-block over the same 4 ranks.
	src := tpl(t, []int{8, 8}, dad.BlockAxis(4), dad.CollapsedAxis())
	dst := tpl(t, []int{8, 8}, dad.CollapsedAxis(), dad.BlockAxis(4))
	s := mustBuild(t, src, dst)
	if s.NumMessages() != 16 {
		t.Errorf("messages = %d, want full 4×4 exchange", s.NumMessages())
	}
	verifyRedistribution(t, dst, executeLocally(s, fillByGlobal(src)))
}

func TestExplicitToRegular(t *testing.T) {
	patches := []dad.Patch{
		dad.NewPatch([]int{0, 0}, []int{3, 4}, 0),
		dad.NewPatch([]int{3, 0}, []int{6, 2}, 1),
		dad.NewPatch([]int{3, 2}, []int{6, 4}, 2),
	}
	src, err := dad.NewExplicitTemplate([]int{6, 4}, 3, patches)
	if err != nil {
		t.Fatal(err)
	}
	dst := tpl(t, []int{6, 4}, dad.BlockAxis(2), dad.BlockAxis(2))
	s := mustBuild(t, src, dst)
	if s.TotalElems() != 24 {
		t.Errorf("total = %d", s.TotalElems())
	}
	verifyRedistribution(t, dst, executeLocally(s, fillByGlobal(src)))
}

func TestRegularToExplicit(t *testing.T) {
	src := tpl(t, []int{6, 4}, dad.CyclicAxis(2), dad.BlockAxis(2))
	patches := []dad.Patch{
		dad.NewPatch([]int{0, 0}, []int{6, 3}, 1),
		dad.NewPatch([]int{0, 3}, []int{6, 4}, 0),
	}
	dst, err := dad.NewExplicitTemplate([]int{6, 4}, 2, patches)
	if err != nil {
		t.Fatal(err)
	}
	s := mustBuild(t, src, dst)
	verifyRedistribution(t, dst, executeLocally(s, fillByGlobal(src)))
}

func TestNonConformingTemplates(t *testing.T) {
	src := tpl(t, []int{8}, dad.BlockAxis(2))
	dst := tpl(t, []int{9}, dad.BlockAxis(2))
	if _, err := Build(src, dst); err == nil {
		t.Error("non-conforming templates accepted")
	}
	dst2 := tpl(t, []int{8, 1}, dad.BlockAxis(2), dad.CollapsedAxis())
	if _, err := Build(src, dst2); err == nil {
		t.Error("different-arity templates accepted")
	}
}

func TestPerRankViews(t *testing.T) {
	src := tpl(t, []int{12}, dad.BlockAxis(2))
	dst := tpl(t, []int{12}, dad.BlockAxis(3))
	s := mustBuild(t, src, dst)
	// Every pair appears in exactly one outgoing and one incoming view.
	seen := 0
	for r := 0; r < 2; r++ {
		for _, p := range s.OutgoingFor(r) {
			if p.SrcRank != r {
				t.Errorf("outgoing view of %d contains src %d", r, p.SrcRank)
			}
			seen++
		}
	}
	if seen != s.NumMessages() {
		t.Errorf("outgoing views cover %d of %d", seen, s.NumMessages())
	}
	seen = 0
	for r := 0; r < 3; r++ {
		for _, p := range s.IncomingFor(r) {
			if p.DstRank != r {
				t.Errorf("incoming view of %d contains dst %d", r, p.DstRank)
			}
			seen++
		}
	}
	if seen != s.NumMessages() {
		t.Errorf("incoming views cover %d of %d", seen, s.NumMessages())
	}
}

func randomAxis(rng *rand.Rand, n int) dad.AxisDist {
	p := 1 + rng.Intn(4)
	switch rng.Intn(6) {
	case 0:
		return dad.CollapsedAxis()
	case 1:
		return dad.BlockAxis(p)
	case 2:
		return dad.CyclicAxis(p)
	case 3:
		return dad.BlockCyclicAxis(p, 1+rng.Intn(3))
	case 4:
		sizes := make([]int, p)
		left := n
		for i := 0; i < p-1; i++ {
			s := 0
			if left > 0 {
				s = rng.Intn(left + 1)
			}
			sizes[i] = s
			left -= s
		}
		sizes[p-1] = left
		return dad.GenBlockAxis(sizes)
	default:
		owner := make([]int, n)
		for i := range owner {
			owner[i] = rng.Intn(p)
		}
		return dad.ImplicitAxis(p, owner)
	}
}

// Property: for random template pairs over the same index space, the
// schedule moves every element exactly once and values survive intact.
func TestPropertyRandomPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		nd := 1 + rng.Intn(3)
		dims := make([]int, nd)
		for a := range dims {
			dims[a] = 1 + rng.Intn(8)
		}
		mkAxes := func() []dad.AxisDist {
			axes := make([]dad.AxisDist, nd)
			for a := range axes {
				axes[a] = randomAxis(rng, dims[a])
			}
			return axes
		}
		src, err := dad.NewTemplate(dims, mkAxes())
		if err != nil {
			t.Fatal(err)
		}
		dst, err := dad.NewTemplate(dims, mkAxes())
		if err != nil {
			t.Fatal(err)
		}
		s := mustBuild(t, src, dst)
		if s.TotalElems() != src.Size() {
			t.Fatalf("trial %d (%s → %s): schedule moves %d of %d elements",
				trial, src.Key(), dst.Key(), s.TotalElems(), src.Size())
		}
		verifyRedistribution(t, dst, executeLocally(s, fillByGlobal(src)))
		if t.Failed() {
			t.Fatalf("trial %d failed: %s → %s", trial, src.Key(), dst.Key())
		}
	}
}

func TestScheduleCache(t *testing.T) {
	cache := NewCache()
	src := tpl(t, []int{16}, dad.BlockAxis(2))
	dst := tpl(t, []int{16}, dad.CyclicAxis(4))
	s1, err := cache.Get(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := cache.Get(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Error("cache returned a different schedule for the same pair")
	}
	// An equal-but-distinct template object also hits.
	src2 := tpl(t, []int{16}, dad.BlockAxis(2))
	s3, err := cache.Get(src2, dst)
	if err != nil {
		t.Fatal(err)
	}
	if s3 != s1 {
		t.Error("structurally equal template missed the cache")
	}
	hits, misses := cache.Stats()
	if hits != 2 || misses != 1 {
		t.Errorf("stats = %d hits %d misses", hits, misses)
	}
	// Reverse direction is a different schedule.
	rev, err := cache.Get(dst, src)
	if err != nil {
		t.Fatal(err)
	}
	if rev == s1 {
		t.Error("reverse direction hit the forward schedule")
	}
}

func TestPackUnpackAdjointProperty(t *testing.T) {
	// Pack followed by Unpack restores exactly the transferred elements.
	src := tpl(t, []int{9}, dad.BlockCyclicAxis(3, 2))
	dst := tpl(t, []int{9}, dad.BlockAxis(3))
	s := mustBuild(t, src, dst)
	srcLocals := fillByGlobal(src)
	for _, p := range s.Pairs {
		buf := make([]float64, p.Elems)
		Pack(p, srcLocals[p.SrcRank], buf)
		for i, v := range buf {
			if v == 0 {
				t.Errorf("pair %d→%d packed a zero at %d (fingerprints are nonzero)", p.SrcRank, p.DstRank, i)
			}
		}
	}
}

func TestIndexedViewsMatchSlices(t *testing.T) {
	// OutDegree/OutgoingAt and InDegree/IncomingAt are the allocation-free
	// views; they must agree with OutgoingFor/IncomingFor exactly.
	src := tpl(t, []int{12, 6}, dad.BlockAxis(3), dad.CyclicAxis(2))
	dst := tpl(t, []int{12, 6}, dad.CyclicAxis(2), dad.BlockAxis(3))
	s := mustBuild(t, src, dst)
	for r := 0; r < src.NumProcs(); r++ {
		want := s.OutgoingFor(r)
		if s.OutDegree(r) != len(want) {
			t.Fatalf("src rank %d: OutDegree %d, OutgoingFor %d", r, s.OutDegree(r), len(want))
		}
		for i := range want {
			got := s.OutgoingAt(r, i)
			if got.SrcRank != want[i].SrcRank || got.DstRank != want[i].DstRank || got.Elems != want[i].Elems {
				t.Fatalf("src rank %d plan %d: %+v vs %+v", r, i, got, want[i])
			}
		}
	}
	for r := 0; r < dst.NumProcs(); r++ {
		want := s.IncomingFor(r)
		if s.InDegree(r) != len(want) {
			t.Fatalf("dst rank %d: InDegree %d, IncomingFor %d", r, s.InDegree(r), len(want))
		}
		for i := range want {
			got := s.IncomingAt(r, i)
			if got.SrcRank != want[i].SrcRank || got.DstRank != want[i].DstRank || got.Elems != want[i].Elems {
				t.Fatalf("dst rank %d plan %d: %+v vs %+v", r, i, got, want[i])
			}
		}
	}
	// The indexed accessors must not allocate: the zero-alloc transfer
	// loop iterates plans through them on every exchange.
	allocs := testing.AllocsPerRun(100, func() {
		for r := 0; r < src.NumProcs(); r++ {
			for i := 0; i < s.OutDegree(r); i++ {
				_ = s.OutgoingAt(r, i)
			}
		}
		for r := 0; r < dst.NumProcs(); r++ {
			for i := 0; i < s.InDegree(r); i++ {
				_ = s.IncomingAt(r, i)
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("indexed schedule views allocate: %v allocs/op", allocs)
	}
}

func TestPackSliceGenericMatchesFloat64(t *testing.T) {
	// The generic pack/unpack moves any element type through the same
	// plan; float32 and complex128 must land exactly where float64 does.
	src := tpl(t, []int{9}, dad.BlockCyclicAxis(3, 2))
	dst := tpl(t, []int{9}, dad.BlockAxis(3))
	s := mustBuild(t, src, dst)
	srcLocals := fillByGlobal(src)
	for _, p := range s.Pairs {
		ref := make([]float64, p.Elems)
		Pack(p, srcLocals[p.SrcRank], ref)

		src32 := make([]float32, len(srcLocals[p.SrcRank]))
		for i, v := range srcLocals[p.SrcRank] {
			src32[i] = float32(v)
		}
		got32 := make([]float32, p.Elems)
		PackSlice(p, src32, got32)
		for i := range ref {
			if got32[i] != float32(ref[i]) {
				t.Fatalf("pair %d→%d float32 elem %d: got %v want %v", p.SrcRank, p.DstRank, i, got32[i], ref[i])
			}
		}

		// Unpack round-trips through a generic complex buffer too.
		dstLocal := make([]complex128, dst.LocalCount(p.DstRank))
		data := make([]complex128, p.Elems)
		for i, v := range ref {
			data[i] = complex(v, -v)
		}
		UnpackSlice(p, dstLocal, data)
		k := 0
		for _, r := range p.Runs {
			for j := 0; j < r.N; j++ {
				if dstLocal[r.DstOff+j] != data[k] {
					t.Fatalf("pair %d→%d complex unpack misplaced element", p.SrcRank, p.DstRank)
				}
				k++
			}
		}
	}
}
