// Package schedule computes communication schedules for parallel data
// redistribution (Section 2.3 of the paper).
//
// A schedule specifies, for an array aligned to a source template and an
// array aligned to a destination template over the same global index
// space, exactly which elements every source rank must send to every
// destination rank and where those elements live in each side's canonical
// local buffer. Schedules are computed once and reused across transfers —
// and across different arrays, as long as they conform to the same
// template pair — which is the amortization the paper calls out as the
// reason templates exist.
//
// Schedule construction is not serialized through any coordinator: the
// per-rank views (OutgoingFor/IncomingFor) let each rank build or consume
// only its own part, and Build itself is pure CPU work callable
// independently on every rank.
package schedule

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mxn/internal/dad"
	"mxn/internal/obs"
)

// Schedule-layer instruments. Cache hit/miss counters are process-wide
// aggregates across every Cache instance (each Cache also keeps its own
// counts, see Stats); the build histogram captures the cost the paper's
// reuse argument amortizes away.
var (
	mBuilds      = obs.Default().Counter("schedule.builds")
	mFastBuilds  = obs.Default().Counter("schedule.fast_builds")
	mBuildNS     = obs.Default().Histogram("schedule.build_ns")
	mBuildElems  = obs.Default().Histogram("schedule.build_elems")
	mCacheHits   = obs.Default().Counter("schedule.cache_hits")
	mCacheMisses = obs.Default().Counter("schedule.cache_misses")
	mCacheJoins  = obs.Default().Counter("schedule.cache_joined_flights")
)

// Run is a contiguous span of elements moving between local buffers:
// N elements starting at SrcOff in the source rank's buffer land at DstOff
// in the destination rank's buffer.
type Run struct {
	SrcOff, DstOff, N int
}

// PairPlan is everything one (source rank, destination rank) pair must
// exchange: a list of contiguous runs totalling Elems elements.
type PairPlan struct {
	SrcRank, DstRank int
	Runs             []Run
	Elems            int
}

// Schedule is a complete redistribution plan between two conforming
// templates. It contains one PairPlan per communicating rank pair; pairs
// with nothing to exchange are absent, so the schedule's size reflects the
// actual communication pattern.
type Schedule struct {
	Src, Dst *dad.Template
	Pairs    []PairPlan

	bySrc [][]int // source rank -> indices into Pairs
	byDst [][]int // destination rank -> indices into Pairs

	ar   *planArena // non-nil for arena-staged (fast path) schedules
	fast bool       // built by the closed-form planner
}

// BuildOpts tunes schedule construction. The zero value is the default:
// use the closed-form fast path whenever the template pair admits it.
type BuildOpts struct {
	// DisableFastPath forces the enumerating builders even for
	// closed-form pairs. Used by the differential test harness and the
	// planning benchmark to compare the two planners; production callers
	// have no reason to set it.
	DisableFastPath bool
}

// Build computes the schedule for redistributing data from src to dst.
// The templates must conform (describe the same global index space).
//
// Regular template pairs whose per-axis intersections have closed forms
// (see dad.Template.ClosedFormPair) are planned arithmetically through a
// pooled arena — the fast path that makes first contact between cohorts
// cheap; everything else falls back to interval/patch enumeration.
func Build(src, dst *dad.Template) (*Schedule, error) {
	return BuildWith(src, dst, BuildOpts{})
}

// BuildWith is Build with explicit options.
func BuildWith(src, dst *dad.Template, opts BuildOpts) (*Schedule, error) {
	if !src.Conforms(dst) {
		return nil, fmt.Errorf("schedule: templates do not conform: %v vs %v", src.Dims(), dst.Dims())
	}
	start := time.Now()
	var s *Schedule
	if !opts.DisableFastPath && src.ClosedFormPair(dst) {
		ar := getArena()
		s = &ar.sched
		*s = Schedule{Src: src, Dst: dst, ar: ar, fast: true}
		s.buildFast()
		s.indexArena()
		mFastBuilds.Inc()
	} else {
		s = &Schedule{Src: src, Dst: dst}
		if !src.IsExplicit() && !dst.IsExplicit() {
			s.buildAxiswise()
		} else {
			s.buildGeneric()
		}
		s.index()
	}
	mBuilds.Inc()
	mBuildNS.ObserveSince(start)
	mBuildElems.Observe(int64(s.TotalElems()))
	obs.Trace().Span(obs.EvScheduleBuild, "", -1, -1, int64(s.TotalElems()), start)
	return s, nil
}

// FastPath reports whether the schedule was built by the closed-form
// planner (as opposed to the interval/patch enumerators).
func (s *Schedule) FastPath() bool { return s.fast }

// index builds the per-rank lookup tables.
func (s *Schedule) index() {
	s.bySrc = make([][]int, s.Src.NumProcs())
	s.byDst = make([][]int, s.Dst.NumProcs())
	for i, p := range s.Pairs {
		s.bySrc[p.SrcRank] = append(s.bySrc[p.SrcRank], i)
		s.byDst[p.DstRank] = append(s.byDst[p.DstRank], i)
	}
}

// buildAxiswise handles regular×regular template pairs. Because per-axis
// distributions are separable, the patch intersection of a rank pair is
// the cartesian product of per-axis interval intersections; computing the
// per-axis tables once avoids re-intersecting for every rank pair.
func (s *Schedule) buildAxiswise() {
	dims := s.Src.Dims()
	na := len(dims)

	// axisIx[a][cs][cd] = interval intersections between source coordinate
	// cs and destination coordinate cd along axis a.
	axisIx := make([][][][]dad.Interval, na)
	for a := 0; a < na; a++ {
		sx := s.Src.Axis(a)
		dx := s.Dst.Axis(a)
		tab := make([][][]dad.Interval, sx.Procs)
		srcIvs := make([][]dad.Interval, sx.Procs)
		dstIvs := make([][]dad.Interval, dx.Procs)
		for c := 0; c < sx.Procs; c++ {
			srcIvs[c] = axisIntervals(sx, dims[a], c)
		}
		for c := 0; c < dx.Procs; c++ {
			dstIvs[c] = axisIntervals(dx, dims[a], c)
		}
		for cs := 0; cs < sx.Procs; cs++ {
			tab[cs] = make([][]dad.Interval, dx.Procs)
			for cd := 0; cd < dx.Procs; cd++ {
				tab[cs][cd] = intersectIntervals(srcIvs[cs], dstIvs[cd])
			}
		}
		axisIx[a] = tab
	}

	// Enumerate communicating coordinate pairs axis by axis, skipping any
	// combination with an empty axis intersection.
	srcCoords := make([]int, na)
	dstCoords := make([]int, na)
	var walk func(a int)
	walk = func(a int) {
		if a == na {
			srcRank := s.Src.RankOf(srcCoords)
			dstRank := s.Dst.RankOf(dstCoords)
			ivLists := make([][]dad.Interval, na)
			for x := 0; x < na; x++ {
				ivLists[x] = axisIx[x][srcCoords[x]][dstCoords[x]]
			}
			plan := s.buildPairFromIntervalProduct(srcRank, dstRank, ivLists)
			if plan.Elems > 0 {
				s.Pairs = append(s.Pairs, plan)
			}
			return
		}
		sx := s.Src.Axis(a)
		dx := s.Dst.Axis(a)
		for cs := 0; cs < sx.Procs; cs++ {
			for cd := 0; cd < dx.Procs; cd++ {
				if len(axisIx[a][cs][cd]) == 0 {
					continue
				}
				srcCoords[a] = cs
				dstCoords[a] = cd
				walk(a + 1)
			}
		}
	}
	walk(0)
}

// buildPairFromIntervalProduct converts the per-axis interval intersection
// lists of one rank pair into contiguous runs. Every cartesian product of
// one interval per axis is a region; each last-axis row of a region is
// one contiguous run in both local layouts (see the layout contiguity
// argument in internal/dad: within one owned interval, local indices
// advance by one per global index for every distribution kind).
func (s *Schedule) buildPairFromIntervalProduct(srcRank, dstRank int, ivLists [][]dad.Interval) PairPlan {
	plan := PairPlan{SrcRank: srcRank, DstRank: dstRank}
	na := len(ivLists)
	sel := make([]int, na)
	idx := make([]int, na)
	for {
		// Region = product of ivLists[a][sel[a]]; iterate its rows.
		rowLen := ivLists[na-1][sel[na-1]].Len()
		for a := 0; a < na; a++ {
			idx[a] = ivLists[a][sel[a]].Lo
		}
		for {
			srcOff := s.Src.LocalOffset(srcRank, idx)
			dstOff := s.Dst.LocalOffset(dstRank, idx)
			plan.Runs = append(plan.Runs, Run{SrcOff: srcOff, DstOff: dstOff, N: rowLen})
			plan.Elems += rowLen
			// Advance to the next row: bump axes na-2..0 within the region.
			a := na - 2
			for a >= 0 {
				idx[a]++
				if idx[a] < ivLists[a][sel[a]].Hi {
					break
				}
				idx[a] = ivLists[a][sel[a]].Lo
				a--
			}
			if a < 0 {
				break
			}
		}
		// Advance to the next region.
		a := na - 1
		for a >= 0 {
			sel[a]++
			if sel[a] < len(ivLists[a]) {
				break
			}
			sel[a] = 0
			a--
		}
		if a < 0 {
			return plan
		}
	}
}

// buildGeneric handles template pairs involving explicit distributions by
// direct patch-list intersection. Destination ranks are planned
// concurrently by a bounded worker pool — templates are read-only during
// planning and each destination's plans are independent — then merged in
// deterministic (src, dst) order, so the parallel build produces exactly
// the schedule the sequential loop did.
func (s *Schedule) buildGeneric() {
	ns := s.Src.NumProcs()
	nd := s.Dst.NumProcs()

	// plansByDst[dstRank][srcRank] is filled by exactly one worker.
	plansByDst := make([][]*PairPlan, nd)
	workers := runtime.GOMAXPROCS(0)
	if workers > nd {
		workers = nd
	}
	if workers <= 1 {
		for d := 0; d < nd; d++ {
			plansByDst[d] = s.planDstRank(d, ns)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					d := int(next.Add(1)) - 1
					if d >= nd {
						return
					}
					plansByDst[d] = s.planDstRank(d, ns)
				}
			}()
		}
		wg.Wait()
	}

	for srcRank := 0; srcRank < ns; srcRank++ {
		for dstRank := 0; dstRank < nd; dstRank++ {
			if row := plansByDst[dstRank]; row != nil {
				if plan := row[srcRank]; plan != nil && plan.Elems > 0 {
					s.Pairs = append(s.Pairs, *plan)
				}
			}
		}
	}
}

// planDstRank intersects one destination rank's patches against every
// source rank, returning per-source plans (nil entries for pairs that do
// not communicate). Patch nesting matches the sequential enumerator:
// destination patch outer, source patch inner.
func (s *Schedule) planDstRank(dstRank, ns int) []*PairPlan {
	dstPatches := s.Dst.Patches(dstRank)
	if len(dstPatches) == 0 {
		return nil
	}
	na := s.Src.NumAxes()
	row := make([]*PairPlan, ns)
	for srcRank := 0; srcRank < ns; srcRank++ {
		srcPatches := s.Src.Patches(srcRank)
		for _, dp := range dstPatches {
			for _, sp := range srcPatches {
				region, ok := sp.Intersect(dp)
				if !ok {
					continue
				}
				plan := row[srcRank]
				if plan == nil {
					plan = &PairPlan{SrcRank: srcRank, DstRank: dstRank}
					row[srcRank] = plan
				}
				appendRegionRuns(plan, s.Src, s.Dst, srcRank, dstRank, region, na)
			}
		}
	}
	return row
}

// appendRegionRuns emits one run per last-axis row of the region.
func appendRegionRuns(plan *PairPlan, src, dst *dad.Template, srcRank, dstRank int, region dad.Patch, na int) {
	rowLen := region.Hi[na-1] - region.Lo[na-1]
	idx := make([]int, na)
	copy(idx, region.Lo)
	for {
		plan.Runs = append(plan.Runs, Run{
			SrcOff: src.LocalOffset(srcRank, idx),
			DstOff: dst.LocalOffset(dstRank, idx),
			N:      rowLen,
		})
		plan.Elems += rowLen
		a := na - 2
		for a >= 0 {
			idx[a]++
			if idx[a] < region.Hi[a] {
				break
			}
			idx[a] = region.Lo[a]
			a--
		}
		if a < 0 {
			return
		}
	}
}

// axisIntervals adapts dad's internal per-axis interval computation, which
// is exposed through Patches; recomputing from the public surface keeps
// the dependency one-way.
func axisIntervals(ax dad.AxisDist, n, c int) []dad.Interval {
	// A single-axis template gives exactly the per-axis intervals.
	t, err := dad.NewTemplate([]int{n}, []dad.AxisDist{ax})
	if err != nil {
		panic(fmt.Sprintf("schedule: invalid axis: %v", err))
	}
	var out []dad.Interval
	for _, p := range t.Patches(c) {
		out = append(out, dad.Interval{Lo: p.Lo[0], Hi: p.Hi[0]})
	}
	return out
}

// intersectIntervals merges two sorted disjoint interval lists.
func intersectIntervals(a, b []dad.Interval) []dad.Interval {
	var out []dad.Interval
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		lo := a[i].Lo
		if b[j].Lo > lo {
			lo = b[j].Lo
		}
		hi := a[i].Hi
		if b[j].Hi < hi {
			hi = b[j].Hi
		}
		if lo < hi {
			out = append(out, dad.Interval{Lo: lo, Hi: hi})
		}
		if a[i].Hi < b[j].Hi {
			i++
		} else {
			j++
		}
	}
	return out
}

// OutgoingFor returns the plans where rank is the source.
func (s *Schedule) OutgoingFor(rank int) []PairPlan {
	out := make([]PairPlan, 0, len(s.bySrc[rank]))
	for _, i := range s.bySrc[rank] {
		out = append(out, s.Pairs[i])
	}
	return out
}

// IncomingFor returns the plans where rank is the destination.
func (s *Schedule) IncomingFor(rank int) []PairPlan {
	out := make([]PairPlan, 0, len(s.byDst[rank]))
	for _, i := range s.byDst[rank] {
		out = append(out, s.Pairs[i])
	}
	return out
}

// OutDegree returns the number of plans where rank is the source.
// Together with OutgoingAt it is the allocation-free alternative to
// OutgoingFor, used by the steady-state transfer engine.
func (s *Schedule) OutDegree(rank int) int { return len(s.bySrc[rank]) }

// OutgoingAt returns the i-th plan (0 ≤ i < OutDegree(rank)) where rank is
// the source, without allocating.
func (s *Schedule) OutgoingAt(rank, i int) PairPlan { return s.Pairs[s.bySrc[rank][i]] }

// InDegree returns the number of plans where rank is the destination.
func (s *Schedule) InDegree(rank int) int { return len(s.byDst[rank]) }

// IncomingAt returns the i-th plan (0 ≤ i < InDegree(rank)) where rank is
// the destination, without allocating.
func (s *Schedule) IncomingAt(rank, i int) PairPlan { return s.Pairs[s.byDst[rank][i]] }

// TotalElems returns the number of elements the schedule moves; for a
// complete redistribution this equals the template size.
func (s *Schedule) TotalElems() int {
	n := 0
	for _, p := range s.Pairs {
		n += p.Elems
	}
	return n
}

// NumMessages returns the number of communicating rank pairs.
func (s *Schedule) NumMessages() int { return len(s.Pairs) }

// String summarizes the schedule.
func (s *Schedule) String() string {
	return fmt.Sprintf("Schedule(%d→%d ranks, %d messages, %d elements)",
		s.Src.NumProcs(), s.Dst.NumProcs(), s.NumMessages(), s.TotalElems())
}

// Pack gathers a plan's elements from the source rank's local buffer into
// out, which must have length plan.Elems.
func Pack(plan PairPlan, local, out []float64) { PackSlice(plan, local, out) }

// Unpack scatters a packed buffer into the destination rank's local
// buffer.
func Unpack(plan PairPlan, local, data []float64) { UnpackSlice(plan, local, data) }

// PackSlice is Pack for any element type: schedules are element-agnostic
// (runs are element counts and offsets), so one plan moves float32 or
// complex128 arrays exactly as it moves float64 ones.
func PackSlice[T any](plan PairPlan, local, out []T) {
	k := 0
	for _, r := range plan.Runs {
		copy(out[k:k+r.N], local[r.SrcOff:r.SrcOff+r.N])
		k += r.N
	}
}

// UnpackSlice is Unpack for any element type.
func UnpackSlice[T any](plan PairPlan, local, data []T) {
	k := 0
	for _, r := range plan.Runs {
		copy(local[r.DstOff:r.DstOff+r.N], data[k:k+r.N])
		k += r.N
	}
}

// Cache memoizes schedules by template pair. The cache is safe for
// concurrent use, and concurrent misses for one pair are deduplicated
// singleflight-style: the first caller builds, later callers wait on the
// in-flight build and share its result, so a planning stampede (every
// rank of a cohort hitting first contact — or a post-failure re-plan —
// at the same instant) runs the planner exactly once per pair.
type Cache struct {
	mu sync.Mutex
	m  map[string]*cacheEntry

	hits, misses, builds int
}

// cacheEntry is one resident or in-flight schedule. ready is closed when
// the build completes; done mirrors it under the cache mutex so Get can
// classify hit-vs-join without receiving.
type cacheEntry struct {
	ready chan struct{}
	done  bool
	s     *Schedule
	err   error
}

// NewCache returns an empty schedule cache.
func NewCache() *Cache { return &Cache{m: map[string]*cacheEntry{}} }

// Get returns the schedule for (src, dst), building and retaining it on
// first use. Callers that arrive while another goroutine is building the
// same pair block until that build completes and receive its schedule
// (counted as misses — the plan was not resident when they asked).
func (c *Cache) Get(src, dst *dad.Template) (*Schedule, error) {
	key := src.Key() + "\x00" + dst.Key()
	c.mu.Lock()
	if e, ok := c.m[key]; ok {
		if e.done {
			c.hits++
			c.mu.Unlock()
			mCacheHits.Inc()
			return e.s, e.err
		}
		c.misses++
		c.mu.Unlock()
		mCacheMisses.Inc()
		mCacheJoins.Inc()
		<-e.ready
		return e.s, e.err
	}
	e := &cacheEntry{ready: make(chan struct{})}
	c.m[key] = e
	c.misses++
	c.builds++
	c.mu.Unlock()
	mCacheMisses.Inc()

	e.s, e.err = Build(src, dst)
	c.mu.Lock()
	e.done = true
	if e.err != nil {
		// Failed builds are not retained: a later Get retries. (Joined
		// waiters of this flight still observe the error.)
		if cur, ok := c.m[key]; ok && cur == e {
			delete(c.m, key)
		}
	}
	c.mu.Unlock()
	close(e.ready)
	return e.s, e.err
}

// Stats returns cache hit and miss counts. A Get that joined an
// in-flight build counts as a miss.
func (c *Cache) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Builds returns how many planner invocations the cache has performed —
// with singleflight dedup, at most one per distinct resident pair plus
// one per invalidation or failed build.
func (c *Cache) Builds() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.builds
}
