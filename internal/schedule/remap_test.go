package schedule

import (
	"strings"
	"testing"

	"mxn/internal/dad"
)

func TestRemapPlansFullMigration(t *testing.T) {
	old := tpl(t, []int{24}, dad.BlockAxis(4))
	next, err := dad.Reblock(old, 6)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Remap(old, next)
	if err != nil {
		t.Fatal(err)
	}
	if s.TotalElems() != 24 {
		t.Fatalf("migration moves %d elements, want 24", s.TotalElems())
	}
	// Block→Block width change is interval×interval: the closed-form
	// planner must kick in, so resize planning stays arithmetic.
	if !s.FastPath() {
		t.Fatal("Block→Block remap did not take the closed-form path")
	}
	// Every new rank receives exactly its local count.
	for r := 0; r < next.NumProcs(); r++ {
		got := 0
		for _, p := range s.IncomingFor(r) {
			got += p.Elems
		}
		if got != next.LocalCount(r) {
			t.Fatalf("new rank %d receives %d elements, owns %d", r, got, next.LocalCount(r))
		}
	}
}

func TestRemapRejectsNonConforming(t *testing.T) {
	a := tpl(t, []int{24}, dad.BlockAxis(4))
	b := tpl(t, []int{20}, dad.BlockAxis(6))
	if _, err := Remap(a, b); err == nil {
		t.Fatal("non-conforming templates accepted")
	}
}

// genZeros builds a wide template where only the ranks in members own
// data — member i owns exactly what narrow rank i owns under a block
// split — so Expand's layout contract holds by construction.
func genZeros(t *testing.T, elems, wide int, members []int) *dad.Template {
	t.Helper()
	narrow := dad.BlockAxis(len(members))
	sizes := make([]int, wide)
	nt := tpl(t, []int{elems}, narrow)
	for i, m := range members {
		sizes[m] = nt.LocalCount(i)
	}
	return tpl(t, []int{elems}, dad.GenBlockAxis(sizes))
}

func TestExpandRenumbersIntoWiderCohort(t *testing.T) {
	const elems = 12
	a := tpl(t, []int{elems}, dad.BlockAxis(2))
	b := tpl(t, []int{elems}, dad.BlockAxis(3))
	s := mustBuild(t, a, b)

	// Narrow ranks live at wide ranks {1,2} (sources) and {0,2,3} (dests).
	srcMap := []int{1, 2}
	dstMap := []int{0, 2, 3}
	wideSrc := genZeros(t, elems, 4, srcMap)
	wideDst := genZeros(t, elems, 4, dstMap)

	e, err := Expand(s, wideSrc, wideDst, srcMap, dstMap)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Pairs) != len(s.Pairs) {
		t.Fatalf("expand changed pair count %d→%d", len(s.Pairs), len(e.Pairs))
	}
	if e.TotalElems() != s.TotalElems() {
		t.Fatalf("expand changed element total %d→%d", s.TotalElems(), e.TotalElems())
	}
	for i := range e.Pairs {
		p, o := &e.Pairs[i], &s.Pairs[i]
		if p.SrcRank != srcMap[o.SrcRank] || p.DstRank != dstMap[o.DstRank] {
			t.Fatalf("pair %d→%d relabeled to %d→%d", o.SrcRank, o.DstRank, p.SrcRank, p.DstRank)
		}
		// Runs share the original backing: relabeling is O(pairs), no copy.
		if len(p.Runs) > 0 && &p.Runs[0] != &o.Runs[0] {
			t.Fatal("expand copied run arrays")
		}
	}
	// Identity maps are the nil shorthand.
	idSrc := genZeros(t, elems, 4, []int{0, 1})
	sid := mustBuild(t, tpl(t, []int{elems}, dad.BlockAxis(2)), b)
	if _, err := Expand(sid, idSrc, wideDst, nil, dstMap); err != nil {
		t.Fatalf("nil (identity) source map: %v", err)
	}
}

func TestExpandValidatesContract(t *testing.T) {
	const elems = 12
	a := tpl(t, []int{elems}, dad.BlockAxis(2))
	b := tpl(t, []int{elems}, dad.BlockAxis(3))
	s := mustBuild(t, a, b)
	wideSrc := genZeros(t, elems, 4, []int{1, 2})
	wideDst := genZeros(t, elems, 4, []int{0, 2, 3})

	// Map entry outside the wide cohort.
	if _, err := Expand(s, wideSrc, wideDst, []int{1, 7}, []int{0, 2, 3}); err == nil {
		t.Fatal("out-of-range source map accepted")
	}
	// Map shorter than the narrow cohort.
	if _, err := Expand(s, wideSrc, wideDst, []int{1}, []int{0, 2, 3}); err == nil {
		t.Fatal("short source map accepted")
	}
	// A mapping that violates the local-count contract: wide rank 0 owns
	// nothing on the source side, but narrow source rank 0 owns 6.
	if _, err := Expand(s, wideSrc, wideDst, []int{0, 1}, []int{0, 2, 3}); err == nil {
		t.Fatal("local-count mismatch accepted")
	}
	// Non-conforming wide templates.
	tiny := tpl(t, []int{6}, dad.BlockAxis(4))
	if _, err := Expand(s, tiny, tiny, nil, nil); err == nil {
		t.Fatal("non-conforming wide templates accepted")
	}
}

func TestInvalidateTemplateScoped(t *testing.T) {
	a := tpl(t, []int{16}, dad.BlockAxis(2))
	b := tpl(t, []int{16}, dad.CyclicAxis(2))
	x := tpl(t, []int{32}, dad.BlockAxis(4))
	y := tpl(t, []int{32}, dad.CyclicAxis(3))
	c := NewCache()
	for _, pair := range [][2]*dad.Template{{a, b}, {b, a}, {x, y}} {
		if _, err := c.Get(pair[0], pair[1]); err != nil {
			t.Fatal(err)
		}
	}
	keep, err := c.Get(x, y)
	if err != nil {
		t.Fatal(err)
	}
	// Dropping a's plans must hit (a,b) and (b,a) but spare (x,y).
	if n := c.InvalidateTemplate(a); n != 2 {
		t.Fatalf("InvalidateTemplate dropped %d entries, want 2", n)
	}
	if got, err := c.Get(x, y); err != nil || got != keep {
		t.Fatal("unrelated coupling lost its cached plan")
	}
	if c.Invalidate(a, b) || c.Invalidate(b, a) {
		t.Fatal("resized coupling still cached")
	}
	if n := c.InvalidateTemplate(a); n != 0 {
		t.Fatalf("second InvalidateTemplate dropped %d", n)
	}
}

// Satellite: Restrict edge cases.

func TestRestrictToOneSurvivor(t *testing.T) {
	a := tpl(t, []int{24}, dad.BlockAxis(4))
	b := tpl(t, []int{24}, dad.CyclicAxis(3))
	s := mustBuild(t, a, b)
	const survivor = 2
	r := Restrict(s, func(rank int) bool { return rank == survivor }, nil)
	if len(r.Pairs) == 0 {
		t.Fatal("survivor's pairs dropped")
	}
	for _, p := range r.Pairs {
		if p.SrcRank != survivor {
			t.Fatalf("pair %d→%d survived a restriction to source %d", p.SrcRank, p.DstRank, survivor)
		}
	}
	if got, want := len(r.Pairs), len(s.OutgoingFor(survivor)); got != want {
		t.Fatalf("survivor keeps %d pairs, want %d", got, want)
	}
}

func TestRestrictZeroElementRank(t *testing.T) {
	// Source rank 1 owns zero elements: it appears in no pair, so
	// restricting it away is a no-op, and restricting *to* it leaves an
	// empty (but well-formed) schedule.
	a := tpl(t, []int{12}, dad.GenBlockAxis([]int{6, 0, 6}))
	b := tpl(t, []int{12}, dad.BlockAxis(2))
	s := mustBuild(t, a, b)
	if len(s.OutgoingFor(1)) != 0 {
		t.Fatal("zero-element rank has outgoing pairs")
	}
	drop := Restrict(s, func(rank int) bool { return rank != 1 }, nil)
	if len(drop.Pairs) != len(s.Pairs) {
		t.Fatal("dropping a zero-element rank changed the schedule")
	}
	only := Restrict(s, func(rank int) bool { return rank == 1 }, nil)
	if len(only.Pairs) != 0 {
		t.Fatal("restriction to a zero-element rank kept pairs")
	}
	if only.TotalElems() != 0 || len(only.IncomingFor(0)) != 0 {
		t.Fatal("empty restriction is not well-formed")
	}
}

func TestRestrictExpandRoundTrip(t *testing.T) {
	// A plan narrowed out of a wide cohort and re-expanded into it must
	// conserve ownership: same pairs, same totals, every element moved
	// exactly once, byte-identical runs.
	const elems = 24
	members := []int{0, 2, 3} // wide ranks hosting the narrow cohort
	wideSrc := genZeros(t, elems, 5, members)
	wideDst := genZeros(t, elems, 5, members)
	narrowSrc := tpl(t, []int{elems}, dad.BlockAxis(len(members)))
	narrowDst := tpl(t, []int{elems}, dad.BlockAxis(len(members)))

	narrow := mustBuild(t, narrowSrc, narrowDst)
	wide, err := Expand(narrow, wideSrc, wideDst, members, members)
	if err != nil {
		t.Fatal(err)
	}
	if wide.TotalElems() != elems {
		t.Fatalf("expanded plan moves %d of %d elements", wide.TotalElems(), elems)
	}
	// Each wide member receives exactly its ownership — nothing doubly
	// owned, nothing orphaned.
	in := map[int]int{}
	for _, p := range wide.Pairs {
		in[p.DstRank] += p.Elems
	}
	for r := 0; r < 5; r++ {
		if in[r] != wideDst.LocalCount(r) {
			t.Fatalf("wide rank %d receives %d elements, owns %d", r, in[r], wideDst.LocalCount(r))
		}
	}

	member := map[int]bool{}
	for _, m := range members {
		member[m] = true
	}
	back := Restrict(wide, func(r int) bool { return member[r] }, func(r int) bool { return member[r] })
	if len(back.Pairs) != len(wide.Pairs) {
		t.Fatalf("round trip lost pairs: %d→%d", len(wide.Pairs), len(back.Pairs))
	}
	for i := range back.Pairs {
		p, o := &back.Pairs[i], &wide.Pairs[i]
		if p.SrcRank != o.SrcRank || p.DstRank != o.DstRank || p.Elems != o.Elems {
			t.Fatalf("round trip rewrote pair %d", i)
		}
		for j := range p.Runs {
			if p.Runs[j] != o.Runs[j] {
				t.Fatalf("round trip changed run %d of pair %d", j, i)
			}
		}
	}
}

func TestCacheKeySeparatorAssumption(t *testing.T) {
	// InvalidateTemplate's prefix/suffix matching relies on the cache key
	// being srcKey NUL dstKey; if the key format drifts, scoped
	// invalidation silently stops matching. Pin the assumption.
	a := tpl(t, []int{16}, dad.BlockAxis(2))
	b := tpl(t, []int{16}, dad.CyclicAxis(2))
	c := NewCache()
	if _, err := c.Get(a, b); err != nil {
		t.Fatal(err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for key := range c.m {
		if !strings.HasPrefix(key, a.Key()+"\x00") || !strings.HasSuffix(key, "\x00"+b.Key()) {
			t.Fatalf("cache key %q is not srcKey\\x00dstKey", key)
		}
	}
}
