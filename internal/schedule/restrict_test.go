package schedule

import (
	"math/rand"
	"testing"

	"mxn/internal/dad"
)

func TestRestrictDropsDeadPairs(t *testing.T) {
	a := tpl(t, []int{24}, dad.BlockAxis(4))
	b := tpl(t, []int{24}, dad.CyclicAxis(3))
	s := mustBuild(t, a, b)

	deadSrc := 1
	r := Restrict(s, func(rank int) bool { return rank != deadSrc }, nil)
	if r.Src != s.Src || r.Dst != s.Dst {
		t.Fatal("Restrict changed templates")
	}
	for _, p := range r.Pairs {
		if p.SrcRank == deadSrc {
			t.Fatalf("pair %d→%d survived restriction", p.SrcRank, p.DstRank)
		}
	}
	if len(r.OutgoingFor(deadSrc)) != 0 {
		t.Fatal("index still lists dead source pairs")
	}
	// Surviving pairs are exactly the original minus the dead rank's.
	want := 0
	for _, p := range s.Pairs {
		if p.SrcRank != deadSrc {
			want++
		}
	}
	if len(r.Pairs) != want {
		t.Fatalf("restricted to %d pairs, want %d", len(r.Pairs), want)
	}
	// Nil predicates keep everything.
	if full := Restrict(s, nil, nil); len(full.Pairs) != len(s.Pairs) {
		t.Fatal("nil predicates dropped pairs")
	}
}

// TestRestrictProperty checks, over random template pairs and random dead
// sets, that (1) restricted pairs are a subset of the original pairs, (2)
// no surviving pair touches a dead rank, and (3) the survivors' plans are
// byte-identical to the originals — re-planning only *selects*, never
// rewrites, so data that still has a live source lands exactly where the
// full schedule would have put it.
func TestRestrictProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	axes := []func(p int) dad.AxisDist{dad.BlockAxis, dad.CyclicAxis}
	for trial := 0; trial < 50; trial++ {
		elems := 8 + rng.Intn(60)
		np1, np2 := 1+rng.Intn(5), 1+rng.Intn(5)
		a := tpl(t, []int{elems}, axes[rng.Intn(2)](np1))
		b := tpl(t, []int{elems}, axes[rng.Intn(2)](np2))
		s := mustBuild(t, a, b)

		deadSrc := map[int]bool{}
		deadDst := map[int]bool{}
		for r := 0; r < np1; r++ {
			if rng.Intn(4) == 0 {
				deadSrc[r] = true
			}
		}
		for r := 0; r < np2; r++ {
			if rng.Intn(4) == 0 {
				deadDst[r] = true
			}
		}
		res := Restrict(s,
			func(r int) bool { return !deadSrc[r] },
			func(r int) bool { return !deadDst[r] })

		type key struct{ s, d int }
		orig := map[key]*PairPlan{}
		for i := range s.Pairs {
			orig[key{s.Pairs[i].SrcRank, s.Pairs[i].DstRank}] = &s.Pairs[i]
		}
		for i := range res.Pairs {
			p := &res.Pairs[i]
			if deadSrc[p.SrcRank] || deadDst[p.DstRank] {
				t.Fatalf("trial %d: dead pair %d→%d survived", trial, p.SrcRank, p.DstRank)
			}
			o, ok := orig[key{p.SrcRank, p.DstRank}]
			if !ok {
				t.Fatalf("trial %d: pair %d→%d invented", trial, p.SrcRank, p.DstRank)
			}
			if p.Elems != o.Elems || len(p.Runs) != len(o.Runs) {
				t.Fatalf("trial %d: pair %d→%d plan rewritten", trial, p.SrcRank, p.DstRank)
			}
			for j := range p.Runs {
				if p.Runs[j] != o.Runs[j] {
					t.Fatalf("trial %d: pair %d→%d run %d changed", trial, p.SrcRank, p.DstRank, j)
				}
			}
		}
		// Every live original pair must survive.
		for k := range orig {
			if !deadSrc[k.s] && !deadDst[k.d] {
				found := false
				for i := range res.Pairs {
					if res.Pairs[i].SrcRank == k.s && res.Pairs[i].DstRank == k.d {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("trial %d: live pair %d→%d dropped", trial, k.s, k.d)
				}
			}
		}
	}
}

func TestCacheInvalidate(t *testing.T) {
	a := tpl(t, []int{16}, dad.BlockAxis(2))
	b := tpl(t, []int{16}, dad.CyclicAxis(2))
	c := NewCache()
	s1, err := c.Get(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if s2, _ := c.Get(a, b); s2 != s1 {
		t.Fatal("cache did not retain")
	}
	if !c.Invalidate(a, b) {
		t.Fatal("Invalidate found nothing")
	}
	if c.Invalidate(a, b) {
		t.Fatal("double Invalidate claimed an entry")
	}
	s3, err := c.Get(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if s3 == s1 {
		t.Fatal("Get after Invalidate returned the stale schedule")
	}

	if _, err := c.Get(b, a); err != nil {
		t.Fatal(err)
	}
	if n := c.InvalidateAll(); n != 2 {
		t.Fatalf("InvalidateAll dropped %d, want 2", n)
	}
	if n := c.InvalidateAll(); n != 0 {
		t.Fatalf("second InvalidateAll dropped %d", n)
	}
}
