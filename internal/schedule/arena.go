package schedule

import "sync"

// planArena stages every allocation of a closed-form schedule build: the
// Schedule struct itself, the run slab, the pair plans, the per-rank index
// tables and the planner's scratch tables all live in slabs owned by one
// arena. Arenas cycle through a bounded free list (the bufpool idiom:
// a mutex-guarded stack rather than sync.Pool, whose GC-dropped victim
// cache would make the alloc guarantees flaky), so in steady state —
// repeatedly planning pairs of similar size — an uncached Build performs
// no heap allocation beyond first-use slab growth.
//
// Carved slices are exact-size and fully overwritten by the planner; they
// are never appended to (each take uses a full slice expression, so an
// accidental append cannot bleed into a neighbouring carve).
type planArena struct {
	sched    Schedule
	runs     slab[Run]
	pairs    slab[PairPlan]
	ints     slab[int]
	slices   slab[[]int]
	descs    slab[ixDesc]
	descRows slab[[]ixDesc]
	descPtrs slab[*ixDesc]
	sides    slab[axSide]
}

// slab is a bump allocator over one backing slice. A take that does not
// fit falls back to a plain allocation and records the demand; the next
// prepare grows the backing to the previous build's high-water mark, so a
// steady-state workload stops allocating after one build.
type slab[T any] struct {
	buf  []T
	used int
	want int
}

// take carves an exact-size slice. Contents are unspecified (stale data
// from earlier builds); the caller must fully overwrite.
func (s *slab[T]) take(n int) []T {
	s.want += n
	if s.used+n <= len(s.buf) {
		out := s.buf[s.used : s.used+n : s.used+n]
		s.used += n
		return out
	}
	return make([]T, n)
}

// prepare resets the cursor for a new build, growing the backing to the
// previous build's total demand.
func (s *slab[T]) prepare() {
	if s.want > len(s.buf) {
		s.buf = make([]T, s.want)
	}
	s.used, s.want = 0, 0
}

func (a *planArena) prepare() {
	a.runs.prepare()
	a.pairs.prepare()
	a.ints.prepare()
	a.slices.prepare()
	a.descs.prepare()
	a.descRows.prepare()
	a.descPtrs.prepare()
	a.sides.prepare()
}

// maxArenas bounds the free list; surplus recycles go to the GC.
const maxArenas = 8

var arenaPool = struct {
	mu   sync.Mutex
	free []*planArena
}{free: make([]*planArena, 0, maxArenas)}

func getArena() *planArena {
	arenaPool.mu.Lock()
	if n := len(arenaPool.free); n > 0 {
		a := arenaPool.free[n-1]
		arenaPool.free[n-1] = nil
		arenaPool.free = arenaPool.free[:n-1]
		arenaPool.mu.Unlock()
		a.prepare()
		return a
	}
	arenaPool.mu.Unlock()
	return new(planArena)
}

func putArena(a *planArena) {
	a.sched = Schedule{}
	arenaPool.mu.Lock()
	if len(arenaPool.free) < maxArenas {
		arenaPool.free = append(arenaPool.free, a)
	}
	arenaPool.mu.Unlock()
}

// Recycle returns a fast-path schedule's arena (run slab, pair plans,
// index tables) to the planner's free list, so rebuilding schedules of
// similar shape stops allocating. It is a no-op for schedules built by
// the enumerators or produced by Restrict/Compose.
//
// The caller must own the schedule exclusively: after Recycle the
// schedule and everything reachable from it (including Restrict views,
// which share its pair plans) is invalid, and the memory will back a
// future Build. Never recycle a schedule that sits in a Cache.
func (s *Schedule) Recycle() {
	ar := s.ar
	if ar == nil {
		return
	}
	s.ar = nil
	s.Pairs, s.bySrc, s.byDst = nil, nil, nil
	putArena(ar)
}
