package schedule

import (
	"testing"

	"mxn/internal/dad"
)

// fuzzSpec consumes fuzzer bytes as a stream of small bounded integers;
// an exhausted stream yields zeros so every input decodes to some config.
type fuzzSpec struct {
	data []byte
	pos  int
}

func (s *fuzzSpec) next(mod int) int {
	if s.pos >= len(s.data) {
		return 0
	}
	b := s.data[s.pos]
	s.pos++
	return int(b) % mod
}

// fuzzAxis decodes one axis distribution from the stream, restricted to
// the regular kinds the closed-form planner classifies.
func fuzzAxis(s *fuzzSpec, n int) dad.AxisDist {
	p := 1 + s.next(5)
	switch s.next(5) {
	case 0:
		return dad.CollapsedAxis()
	case 1:
		return dad.BlockAxis(p)
	case 2:
		return dad.CyclicAxis(p)
	case 3:
		return dad.BlockCyclicAxis(p, 1+s.next(5))
	default:
		sizes := make([]int, p)
		left := n
		for i := 0; i < p-1; i++ {
			take := s.next(left + 1)
			sizes[i] = take
			left -= take
		}
		sizes[p-1] = left
		return dad.GenBlockAxis(sizes)
	}
}

// FuzzPlanEquivalence cross-checks the closed-form fast path against the
// patch-enumeration planner on fuzzer-chosen template pairs: identical
// canonical schedules, full coverage, no panics. Pairs the fast path
// declines (incompatible strided block sizes) still assert a clean
// fallback.
func FuzzPlanEquivalence(f *testing.F) {
	f.Add([]byte{0, 23, 3, 1, 2, 2})                      // 1-D block(4) → cyclic(3)
	f.Add([]byte{1, 11, 13, 1, 2, 2, 3, 2, 3, 0, 4, 10})  // 2-D mixed strided
	f.Add([]byte{2, 4, 5, 13, 0, 0, 1, 3, 2, 1, 3, 2, 1}) // 3-D with block-cyclic
	f.Add([]byte{0, 36, 2, 3, 2, 2, 3, 4})                // mismatched strided b: fallback
	f.Fuzz(func(t *testing.T, data []byte) {
		s := &fuzzSpec{data: data}
		na := 1 + s.next(3)
		dims := make([]int, na)
		for a := range dims {
			dims[a] = 1 + s.next(24)
		}
		mkAxes := func() []dad.AxisDist {
			axes := make([]dad.AxisDist, na)
			for a := range axes {
				axes[a] = fuzzAxis(s, dims[a])
			}
			return axes
		}
		src, err := dad.NewTemplate(dims, mkAxes())
		if err != nil {
			t.Fatalf("fuzz generator produced invalid src template: %v", err)
		}
		dst, err := dad.NewTemplate(dims, mkAxes())
		if err != nil {
			t.Fatalf("fuzz generator produced invalid dst template: %v", err)
		}

		fast, err := Build(src, dst)
		if err != nil {
			t.Fatalf("Build(%s, %s): %v", src.Key(), dst.Key(), err)
		}
		if fast.FastPath() != src.ClosedFormPair(dst) {
			t.Fatalf("fast-path engagement %v disagrees with ClosedFormPair %v for %s → %s",
				fast.FastPath(), src.ClosedFormPair(dst), src.Key(), dst.Key())
		}
		if fast.TotalElems() != src.Size() {
			t.Fatalf("%s → %s: plan moves %d of %d elements",
				src.Key(), dst.Key(), fast.TotalElems(), src.Size())
		}
		checkCoverage(t, src.Key()+" → "+dst.Key(), fast)
		if !fast.FastPath() {
			return
		}

		ref, err := BuildWith(src, dst, BuildOpts{DisableFastPath: true})
		if err != nil {
			t.Fatal(err)
		}
		diffSchedules(t, src.Key()+" → "+dst.Key(), fast, ref)
		fast.Recycle()
	})
}
