// Composed-schedule execution exercised end to end through the parallel
// executor. This lives in an external test package: it drives
// schedule.Compose output through redist.Exchange over a comm world, and
// redist imports schedule.
package schedule_test

import (
	"sync"
	"testing"

	"mxn/internal/comm"
	"mxn/internal/dad"
	"mxn/internal/redist"
	"mxn/internal/schedule"
)

func mkTpl(t *testing.T, dims []int, axes ...dad.AxisDist) *dad.Template {
	t.Helper()
	out, err := dad.NewTemplate(dims, axes)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func fp(idx []int) float64 {
	v := 1.0
	for _, i := range idx {
		v = v*131 + float64(i)
	}
	return v
}

func eachIndex(dims []int, fn func(idx []int)) {
	idx := make([]int, len(dims))
	for {
		fn(idx)
		a := len(dims) - 1
		for a >= 0 {
			idx[a]++
			if idx[a] < dims[a] {
				break
			}
			idx[a] = 0
			a--
		}
		if a < 0 {
			return
		}
	}
}

// A three-stage pipeline A -> B -> C collapsed by Compose into a single
// A -> C schedule must move data identically to the two-stage route when
// executed by the parallel Exchange executor.
func TestComposeExecutesThroughExchange(t *testing.T) {
	dims := []int{12, 6}
	a := mkTpl(t, dims, dad.BlockAxis(2), dad.BlockAxis(2))
	b := mkTpl(t, dims, dad.CyclicAxis(3), dad.CollapsedAxis())
	c := mkTpl(t, dims, dad.CollapsedAxis(), dad.BlockAxis(2))

	s1, err := schedule.Build(a, b)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := schedule.Build(b, c)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := schedule.Compose(s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Src.Key() != a.Key() || sc.Dst.Key() != c.Key() {
		t.Fatalf("composed schedule spans %s -> %s", sc.Src.Key(), sc.Dst.Key())
	}

	// Fill A-side fragments with position fingerprints.
	srcLocals := make([][]float64, a.NumProcs())
	for r := range srcLocals {
		srcLocals[r] = make([]float64, a.LocalCount(r))
	}
	eachIndex(dims, func(idx []int) {
		r := a.OwnerOf(idx)
		srcLocals[r][a.LocalOffset(r, idx)] = fp(idx)
	})

	// Reference: the two-stage route through B, executed locally.
	mid := make([][]float64, b.NumProcs())
	for r := range mid {
		mid[r] = make([]float64, b.LocalCount(r))
	}
	want := make([][]float64, c.NumProcs())
	for r := range want {
		want[r] = make([]float64, c.LocalCount(r))
	}
	redist.ExecuteLocal(s1, srcLocals, mid)
	redist.ExecuteLocal(s2, mid, want)

	// The composed schedule, executed in parallel: A cohort then C cohort.
	nA, nC := a.NumProcs(), c.NumProcs()
	got := make([][]float64, nC)
	var mu sync.Mutex
	comm.Run(nA+nC, func(cm *comm.Comm) {
		lay := redist.Layout{SrcBase: 0, DstBase: nA}
		var sl, dl []float64
		if cm.Rank() < nA {
			sl = srcLocals[cm.Rank()]
		} else {
			dl = make([]float64, c.LocalCount(cm.Rank()-nA))
		}
		if err := redist.Exchange(cm, sc, lay, sl, dl, 0); err != nil {
			t.Errorf("rank %d: %v", cm.Rank(), err)
		}
		if dl != nil {
			mu.Lock()
			got[cm.Rank()-nA] = dl
			mu.Unlock()
		}
	})

	for r := range want {
		for i := range want[r] {
			if got[r][i] != want[r][i] {
				t.Fatalf("C rank %d elem %d: composed %v, two-stage %v", r, i, got[r][i], want[r][i])
			}
		}
	}
	// And both agree with the direct fingerprint of each global index.
	eachIndex(dims, func(idx []int) {
		r := c.OwnerOf(idx)
		if got[r][c.LocalOffset(r, idx)] != fp(idx) {
			t.Errorf("index %v on C rank %d: got %v, want %v", idx, r, got[r][c.LocalOffset(r, idx)], fp(idx))
		}
	})
}
