package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x.count")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("x.count"); again != c {
		t.Fatalf("lookup did not return the same counter")
	}
	g := r.Gauge("x.gauge")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var tr *Tracer
	var r *Registry
	c.Inc()
	c.Add(10)
	g.Set(3)
	g.Add(1)
	h.Observe(9)
	h.ObserveSince(time.Now())
	tr.Record(Event{Kind: EvPack})
	tr.Span(EvSend, "", 0, 0, 0, time.Now())
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || tr.Total() != 0 {
		t.Fatal("nil instruments must read as zero")
	}
	if r.Counter("a") != nil || r.Gauge("b") != nil || r.Histogram("c") != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	r.RegisterFunc("d", func() int64 { return 1 })
	if s := r.Snapshot(); len(s.Counters) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 2, 3, 4, 1000, -5} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 7 {
		t.Fatalf("count = %d, want 7", s.Count)
	}
	if s.Sum != 1010 {
		t.Fatalf("sum = %d, want 1010", s.Sum)
	}
	// 0 and -5 land in [0,1); 1 in [1,2); 2,3 in [2,4); 4 in [4,8);
	// 1000 in [512,1024).
	wantBuckets := map[uint64]uint64{0: 2, 1: 1, 2: 2, 4: 1, 512: 1}
	for _, b := range s.Buckets {
		if wantBuckets[b.Lo] != b.N {
			t.Fatalf("bucket [%d,%d) has %d samples, want %d", b.Lo, b.Hi, b.N, wantBuckets[b.Lo])
		}
		delete(wantBuckets, b.Lo)
	}
	if len(wantBuckets) != 0 {
		t.Fatalf("missing buckets: %v", wantBuckets)
	}
	if q := s.Quantile(0.99); q != 1024 {
		t.Fatalf("p99 = %d, want 1024", q)
	}
	if m := s.Mean(); m < 144 || m > 145 {
		t.Fatalf("mean = %v, want ~144.3", m)
	}
}

// TestHotPathZeroAlloc is the allocation guard the acceptance criteria
// call for: enabling metrics must add zero allocations on hot paths.
func TestHotPathZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hot.counter")
	g := r.Gauge("hot.gauge")
	h := r.Histogram("hot.hist")
	allocs := testing.AllocsPerRun(200, func() {
		c.Inc()
		c.Add(64)
		g.Add(1)
		g.Set(12)
		h.Observe(4096)
	})
	if allocs != 0 {
		t.Fatalf("metric hot path allocates %v times per op, want 0", allocs)
	}

	// Disabled tracing must be free too: nil lookup plus nil-safe methods.
	DisableTracing()
	allocs = testing.AllocsPerRun(200, func() {
		Trace().Record(Event{Kind: EvPack, Elems: 10})
	})
	if allocs != 0 {
		t.Fatalf("disabled trace path allocates %v times per op, want 0", allocs)
	}
}

func TestRegistryConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("shared").Inc()
				r.Histogram("h").Observe(int64(j))
				r.Gauge("g").Add(1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 8000 {
		t.Fatalf("shared counter = %d, want 8000", got)
	}
	if got := r.Histogram("h").Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

func TestSnapshotAndWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.sent").Add(3)
	r.Gauge("a.depth").Set(-2)
	r.Histogram("a.lat_ns").Observe(100)
	r.RegisterFunc("a.cache_hits", func() int64 { return 42 })
	s := r.Snapshot()
	if s.Counters["a.sent"] != 3 || s.Gauges["a.depth"] != -2 || s.Gauges["a.cache_hits"] != 42 {
		t.Fatalf("bad snapshot: %+v", s)
	}
	if s.Histograms["a.lat_ns"].Count != 1 {
		t.Fatalf("histogram missing from snapshot: %+v", s)
	}
	if _, err := json.Marshal(s); err != nil {
		t.Fatalf("snapshot must be JSON-encodable: %v", err)
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"a.sent 3", "a.depth -2", "a.cache_hits 42", "a.lat_ns{count} 1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("WriteText output missing %q:\n%s", want, out)
		}
	}
}

func TestTracerRingBuffer(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 7; i++ {
		tr.Record(Event{Kind: EvSend, Elems: int64(i)})
	}
	if tr.Total() != 7 {
		t.Fatalf("total = %d, want 7", tr.Total())
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := int64(3 + i); ev.Elems != want {
			t.Fatalf("event %d has elems %d, want %d (oldest-first order)", i, ev.Elems, want)
		}
	}
	var buf bytes.Buffer
	if err := tr.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "send") {
		t.Fatalf("trace text missing kind: %s", buf.String())
	}
}

func TestTracerSpan(t *testing.T) {
	tr := NewTracer(8)
	start := time.Now().Add(-time.Millisecond)
	tr.Span(EvUnpack, "c1", 2, 3, 99, start)
	evs := tr.Events()
	if len(evs) != 1 {
		t.Fatalf("got %d events, want 1", len(evs))
	}
	ev := evs[0]
	if ev.Kind != EvUnpack || ev.Conn != "c1" || ev.Rank != 2 || ev.Peer != 3 || ev.Elems != 99 {
		t.Fatalf("bad event: %+v", ev)
	}
	if ev.Dur < int64(time.Millisecond) {
		t.Fatalf("span duration %v too short", time.Duration(ev.Dur))
	}
}

func TestDefaultTracerEnableDisable(t *testing.T) {
	if Trace() != nil {
		DisableTracing()
	}
	tr := EnableTracing(16)
	if Trace() != tr {
		t.Fatal("EnableTracing did not install the tracer")
	}
	Trace().Record(Event{Kind: EvRedial})
	if tr.Total() != 1 {
		t.Fatal("record through Trace() did not land")
	}
	DisableTracing()
	if Trace() != nil {
		t.Fatal("DisableTracing did not clear the tracer")
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := []EventKind{EvScheduleBuild, EvPack, EvSend, EvRecv, EvUnpack, EvRetry, EvRedial}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "kind(") {
			t.Fatalf("kind %d has no name", k)
		}
		if seen[s] {
			t.Fatalf("duplicate kind name %q", s)
		}
		seen[s] = true
	}
}

func TestPublishExpvarIdempotent(t *testing.T) {
	r := NewRegistry()
	r.Counter("pub.count").Inc()
	// Must not panic on double publish.
	r.PublishExpvar("obs_test_metrics")
	r.PublishExpvar("obs_test_metrics")
}
