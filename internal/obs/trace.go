package obs

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// EventKind names one phase of a transfer's lifecycle. The set covers the
// paper's hot path end to end: plan construction, the pack/send side, the
// recv/unpack side, and the robustness layer's recovery actions.
type EventKind uint8

// Trace event kinds.
const (
	EvScheduleBuild EventKind = iota + 1 // a communication schedule was computed
	EvPack                               // a pairwise fragment was packed
	EvSend                               // a pairwise message was posted
	EvRecv                               // a pairwise message was received
	EvUnpack                             // a pairwise fragment was unpacked
	EvRetry                              // a PRMI attempt was retried
	EvRedial                             // a bridge connection was redialed
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case EvScheduleBuild:
		return "schedule-build"
	case EvPack:
		return "pack"
	case EvSend:
		return "send"
	case EvRecv:
		return "recv"
	case EvUnpack:
		return "unpack"
	case EvRetry:
		return "retry"
	case EvRedial:
		return "redial"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one recorded span. Fields are fixed-width values so recording
// does not allocate; Conn is an optional connection/transfer label (reused
// string constants on the hot path keep this allocation-free too).
type Event struct {
	Kind  EventKind `json:"kind"`
	Start int64     `json:"start_ns"` // unix nanoseconds
	Dur   int64     `json:"dur_ns"`   // span duration in nanoseconds
	Conn  string    `json:"conn,omitempty"`
	Rank  int32     `json:"rank"`
	Peer  int32     `json:"peer"`
	Elems int64     `json:"elems"` // elements (or bytes, per kind) moved
}

// Tracer records Events into a fixed-size ring buffer: the most recent
// capacity events are retained, older ones are overwritten. Recording
// takes one mutex and copies one fixed-size struct — cheap enough to leave
// enabled around a failing transfer, and exactly zero cost when the
// process-default tracer is disabled (the nil check is the entire path).
type Tracer struct {
	mu    sync.Mutex
	ring  []Event
	total uint64 // events ever recorded
}

// NewTracer returns a tracer retaining the last capacity events.
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{ring: make([]Event, 0, capacity)}
}

// Record appends one event, overwriting the oldest when full. Safe on a
// nil receiver (no-op).
func (t *Tracer) Record(ev Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, ev)
	} else {
		t.ring[t.total%uint64(cap(t.ring))] = ev
	}
	t.total++
	t.mu.Unlock()
}

// Span records an event of the given kind that started at start and is
// ending now. Safe on a nil receiver.
func (t *Tracer) Span(kind EventKind, conn string, rank, peer int, elems int64, start time.Time) {
	if t == nil {
		return
	}
	t.Record(Event{
		Kind:  kind,
		Start: start.UnixNano(),
		Dur:   int64(time.Since(start)),
		Conn:  conn,
		Rank:  int32(rank),
		Peer:  int32(peer),
		Elems: elems,
	})
}

// Total returns the number of events ever recorded (including overwritten
// ones).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Events returns the retained events, oldest first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.ring))
	if t.total > uint64(cap(t.ring)) {
		head := int(t.total % uint64(cap(t.ring)))
		out = append(out, t.ring[head:]...)
		out = append(out, t.ring[:head]...)
	} else {
		out = append(out, t.ring...)
	}
	return out
}

// WriteText renders the retained events, oldest first.
func (t *Tracer) WriteText(w io.Writer) error {
	for _, ev := range t.Events() {
		line := fmt.Sprintf("%s start=%d dur=%s rank=%d peer=%d elems=%d",
			ev.Kind, ev.Start, time.Duration(ev.Dur), ev.Rank, ev.Peer, ev.Elems)
		if ev.Conn != "" {
			line += " conn=" + ev.Conn
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}

// defaultTracer is the process-wide tracer; nil means tracing is off (the
// default), making every instrumentation site a single atomic load.
var defaultTracer atomic.Pointer[Tracer]

// Trace returns the process-default tracer, or nil when tracing is
// disabled. All Tracer methods are nil-safe, so call sites may use the
// result unconditionally; sites that would pay to *construct* an event
// (e.g. a time.Now call) should skip when it is nil.
func Trace() *Tracer { return defaultTracer.Load() }

// EnableTracing installs (and returns) a process-default tracer retaining
// the last capacity events.
func EnableTracing(capacity int) *Tracer {
	t := NewTracer(capacity)
	defaultTracer.Store(t)
	return t
}

// DisableTracing removes the process-default tracer.
func DisableTracing() { defaultTracer.Store(nil) }
