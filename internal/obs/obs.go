// Package obs is the repository's observability core: allocation-free
// metrics (counters, gauges, log₂-bucketed histograms) and a lightweight
// transfer-trace recorder, with no dependencies beyond the standard
// library.
//
// The paper's performance story — schedule reuse, non-serialized pairwise
// transfers, 2N-vs-N² converters — is qualitative; this package makes it
// measurable. Every layer of the stack (transport, wire, comm, redist,
// prmi, core, schedule) registers its instruments in the process-default
// Registry at package init, so a snapshot of Default() is a cross-section
// of the whole middleware. CUMULVS's steering/viewer instrumentation and
// MCT's router accounting played the same role in those systems.
//
// Design rules, enforced by tests:
//
//   - Hot-path operations (Counter.Add, Gauge.Set, Histogram.Observe) are
//     single atomic updates and never allocate.
//   - Every instrument method is nil-safe: a nil *Counter (etc.) is a
//     no-op, so optional instrumentation costs nothing when absent.
//   - Instrument lookup (Registry.Counter and friends) takes a lock and
//     may allocate; callers cache the returned pointers in package vars.
package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is ready to
// use; all methods are safe on a nil receiver.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous signed value. The zero value is ready to use;
// all methods are safe on a nil receiver.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by d (negative to decrease).
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is bits.Len64(v)+1 worth of log₂ buckets: bucket 0 holds
// v == 0, bucket i holds values with bit length i, i.e. [2^(i-1), 2^i).
const histBuckets = 65

// Histogram is a log₂-bucketed distribution of non-negative int64 samples
// (latencies in nanoseconds, sizes in elements or bytes). Observation is a
// fixed number of atomic adds and never allocates; buckets are exponential
// so one histogram spans nanoseconds to minutes. All methods are safe on a
// nil receiver. Negative samples clamp to zero.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(uint64(v))
	h.buckets[bits.Len64(uint64(v))].Add(1)
}

// ObserveSince records the elapsed time since start, in nanoseconds.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(int64(time.Since(start)))
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all samples.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Bucket is one populated histogram bucket: N samples in [Lo, Hi).
type Bucket struct {
	Lo, Hi uint64
	N      uint64
}

// HistSnapshot is a consistent-enough copy of a histogram (buckets are read
// individually; a snapshot taken under concurrent writes may be off by the
// in-flight samples, which is fine for monitoring).
type HistSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Mean returns the average sample, or 0 with no samples.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns an estimate of the q-quantile (0 ≤ q ≤ 1): the upper
// bound of the bucket containing that rank. Log₂ buckets make this a
// factor-of-two estimate, which is what regression-spotting needs.
func (s HistSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(q * float64(s.Count))
	if rank >= s.Count {
		rank = s.Count - 1
	}
	var seen uint64
	for _, b := range s.Buckets {
		seen += b.N
		if seen > rank {
			return b.Hi
		}
	}
	return 0
}

// Snapshot copies the histogram's current state, keeping only populated
// buckets.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	s := HistSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		var lo, hi uint64
		if i > 0 {
			lo = 1 << (i - 1)
			hi = 1 << i
		} else {
			lo, hi = 0, 1
		}
		s.Buckets = append(s.Buckets, Bucket{Lo: lo, Hi: hi, N: n})
	}
	return s
}

// Registry is a named collection of instruments. Lookup is get-or-create
// and safe for concurrent use; the intended pattern is to resolve
// instruments once at package init and cache the pointers. All methods are
// safe on a nil receiver (returning nil instruments, whose operations are
// no-ops), so a subsystem can accept an optional registry and instrument
// unconditionally.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string]func() int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		funcs:    map[string]func() int64{},
	}
}

// defaultRegistry is the process-wide registry every internal package
// registers into.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// RegisterFunc registers a gauge computed on demand at snapshot time —
// the bridge for subsystems that already keep their own counts (e.g.
// schedule.Cache hit/miss) and for derived values like queue lengths.
// Re-registering a name replaces the previous function.
func (r *Registry) RegisterFunc(name string, fn func() int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = fn
}

// Snapshot is a point-in-time copy of a registry's instruments, suitable
// for JSON encoding (the BENCH_obs.json payload).
type Snapshot struct {
	Counters   map[string]uint64       `json:"counters,omitempty"`
	Gauges     map[string]int64        `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies every instrument's current value.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	funcs := make(map[string]func() int64, len(r.funcs))
	for k, v := range r.funcs {
		funcs[k] = v
	}
	r.mu.Unlock()

	for k, c := range counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		s.Gauges[k] = g.Value()
	}
	for k, fn := range funcs {
		s.Gauges[k] = fn()
	}
	for k, h := range hists {
		s.Histograms[k] = h.Snapshot()
	}
	return s
}

// WriteText renders the registry in a sorted, line-oriented text format:
//
//	name value
//	name{count} N  name{sum} S  name{p50} Q  name{p99} Q
func (r *Registry) WriteText(w io.Writer) error {
	s := r.Snapshot()
	names := make([]string, 0, len(s.Counters)+len(s.Gauges))
	for k := range s.Counters {
		names = append(names, k)
	}
	for k := range s.Gauges {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		var v any
		if c, ok := s.Counters[k]; ok {
			v = c
		} else {
			v = s.Gauges[k]
		}
		if _, err := fmt.Fprintf(w, "%s %v\n", k, v); err != nil {
			return err
		}
	}
	hnames := make([]string, 0, len(s.Histograms))
	for k := range s.Histograms {
		hnames = append(hnames, k)
	}
	sort.Strings(hnames)
	for _, k := range hnames {
		h := s.Histograms[k]
		if _, err := fmt.Fprintf(w, "%s{count} %d  %s{sum} %d  %s{mean} %.1f  %s{p50} %d  %s{p99} %d\n",
			k, h.Count, k, h.Sum, k, h.Mean(), k, h.Quantile(0.50), k, h.Quantile(0.99)); err != nil {
			return err
		}
	}
	return nil
}

// expvarPublished guards against double-publishing (expvar panics on
// duplicate names).
var expvarPublished sync.Map

// PublishExpvar exposes the registry as a single expvar variable under
// name, rendering a fresh Snapshot as JSON on every read of /debug/vars.
// Publishing the same name twice is a no-op.
func (r *Registry) PublishExpvar(name string) {
	if r == nil {
		return
	}
	if _, loaded := expvarPublished.LoadOrStore(name, true); loaded {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}

// MarshalJSON lets a Registry itself be embedded in JSON payloads.
func (r *Registry) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.Snapshot())
}
