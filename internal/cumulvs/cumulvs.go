// Package cumulvs reimplements the CUMULVS-style interactive
// visualization and computational steering layer the paper's M×N
// component specification absorbed (Section 4.1): persistent parallel
// data channels with periodic frame transfers, a choice of
// synchronization options, viewer-selected regions of interest with
// decimation (sub-sampled patches), and steering parameters pushed back
// into the running simulation.
//
// The simulation side registers distributed fields and steerable
// parameters; a front-end viewer attaches over a core.Bridge, requests a
// view (field, region, stride, synchronization policy) and then receives
// frames for as long as the simulation keeps posting them. Neither side
// blocks the other beyond the chosen synchronization option: a
// free-running viewer samples the newest frame, an each-frame viewer sees
// every epoch.
package cumulvs

import (
	"fmt"
	"sync"

	"mxn/internal/core"
	"mxn/internal/dad"
	"mxn/internal/wire"
)

// Sync selects the frame synchronization policy of a view.
type Sync int

// Synchronization options.
const (
	// EachFrame delivers every posted frame in epoch order.
	EachFrame Sync = iota
	// Latest delivers the newest available frame, discarding older ones —
	// the policy for interactive visualization of a fast simulation.
	Latest
)

// View describes what a viewer wants: a rectangular region of interest in
// the field's global index space, decimated by a per-axis stride.
type View struct {
	Field  string
	Lo, Hi []int // region of interest, half-open; nil = whole field
	Stride []int // per-axis decimation; nil = 1 everywhere
	Sync   Sync
}

// CoarseDims returns the view's frame shape.
func (v *View) coarseDims(fine []int) []int {
	out := make([]int, len(fine))
	for a := range fine {
		n := v.Hi[a] - v.Lo[a]
		out[a] = (n + v.Stride[a] - 1) / v.Stride[a]
	}
	return out
}

// normalize fills defaulted region/stride against a field's dims.
func (v *View) normalize(dims []int) error {
	na := len(dims)
	if v.Lo == nil && v.Hi == nil {
		v.Lo = make([]int, na)
		v.Hi = append([]int(nil), dims...)
	}
	if v.Stride == nil {
		v.Stride = make([]int, na)
		for a := range v.Stride {
			v.Stride[a] = 1
		}
	}
	if len(v.Lo) != na || len(v.Hi) != na || len(v.Stride) != na {
		return fmt.Errorf("cumulvs: view arity mismatch with %d-d field", na)
	}
	for a := 0; a < na; a++ {
		if v.Lo[a] < 0 || v.Hi[a] > dims[a] || v.Lo[a] >= v.Hi[a] {
			return fmt.Errorf("cumulvs: view region [%d,%d) out of bounds on axis %d (dim %d)", v.Lo[a], v.Hi[a], a, dims[a])
		}
		if v.Stride[a] < 1 {
			return fmt.Errorf("cumulvs: stride %d on axis %d", v.Stride[a], a)
		}
	}
	return nil
}

// lattice computes, for one simulation rank, the fine-buffer offsets of
// the view's sample points it owns, together with the coarse row-major
// positions they map to. Both lists are sorted by coarse position, so a
// frame fragment is just the values in list order.
func lattice(tpl *dad.Template, v *View, rank int) (fineOff, coarsePos []int) {
	dims := tpl.Dims()
	na := len(dims)
	cd := v.coarseDims(dims)
	cstride := make([]int, na)
	s := 1
	for a := na - 1; a >= 0; a-- {
		cstride[a] = s
		s *= cd[a]
	}
	idx := make([]int, na)
	cidx := make([]int, na)
	var walk func(a int)
	walk = func(a int) {
		if a == na {
			if tpl.OwnerOf(idx) == rank {
				pos := 0
				for x := 0; x < na; x++ {
					pos += cidx[x] * cstride[x]
				}
				coarsePos = append(coarsePos, pos)
				fineOff = append(fineOff, tpl.LocalOffset(rank, idx))
			}
			return
		}
		for c := 0; c < cd[a]; c++ {
			cidx[a] = c
			idx[a] = v.Lo[a] + c*v.Stride[a]
			walk(a + 1)
		}
	}
	walk(0)
	return fineOff, coarsePos
}

// control message kinds (on top of the bridge control stream).
const (
	ctlViewReq byte = 10
	ctlViewAck byte = 11
	ctlViewErr byte = 12
	ctlSteer   byte = 13
	ctlStop    byte = 14
)

// Sim is the simulation-side endpoint: a cohort-shared registry of
// published fields and steerable parameters.
type Sim struct {
	np     int
	bridge core.Bridge

	mu     sync.Mutex
	fields map[string]*dad.Descriptor
	params map[string]float64
	views  map[string]*simView
	stop   bool
}

// simView is the simulation side of one active view.
type simView struct {
	id     string
	view   View
	field  *dad.Descriptor
	lat    [][]int // per rank: fine offsets
	epochs []uint64
}

// NewSim creates the simulation-side endpoint for a cohort of np ranks.
func NewSim(np int, bridge core.Bridge) *Sim {
	return &Sim{
		np:     np,
		bridge: bridge,
		fields: map[string]*dad.Descriptor{},
		params: map[string]float64{},
		views:  map[string]*simView{},
	}
}

// RegisterField publishes a distributed field for viewing. The mode must
// permit reads.
func (s *Sim) RegisterField(desc *dad.Descriptor) error {
	if !desc.Mode.CanRead() {
		return fmt.Errorf("cumulvs: field %q mode %s forbids viewing", desc.Name, desc.Mode)
	}
	if desc.Template.NumProcs() != s.np {
		return fmt.Errorf("cumulvs: field %q decomposed over %d ranks, sim has %d", desc.Name, desc.Template.NumProcs(), s.np)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.fields[desc.Name]; dup {
		return fmt.Errorf("cumulvs: field %q already registered", desc.Name)
	}
	s.fields[desc.Name] = desc
	return nil
}

// RegisterParam publishes a steerable parameter with its initial value.
func (s *Sim) RegisterParam(name string, initial float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.params[name]; dup {
		return fmt.Errorf("cumulvs: parameter %q already registered", name)
	}
	s.params[name] = initial
	return nil
}

// Param returns a steering parameter's current value. The simulation
// polls it each step; viewers update it asynchronously.
func (s *Sim) Param(name string) (float64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.params[name]
	if !ok {
		return 0, fmt.Errorf("cumulvs: no parameter %q", name)
	}
	return v, nil
}

// Service processes pending viewer control traffic: view requests,
// steering updates and stop notices. The simulation calls it between
// steps (typically from rank 0's loop); it blocks only while a message is
// being handled, processing exactly `max` messages or until Stop arrives.
// It returns false once the viewer has disconnected.
func (s *Sim) Service(max int) (bool, error) {
	for i := 0; i < max; i++ {
		msg, err := s.bridge.RecvControl()
		if err != nil {
			return false, err
		}
		d := wire.NewDecoder(msg)
		switch kind := d.Byte(); kind {
		case ctlViewReq:
			if err := s.handleViewReq(d); err != nil {
				return true, err
			}
		case ctlSteer:
			name := d.String()
			val := d.Float64()
			if d.Err() != nil {
				return true, d.Err()
			}
			s.mu.Lock()
			if _, ok := s.params[name]; ok {
				s.params[name] = val
			}
			s.mu.Unlock()
		case ctlStop:
			s.mu.Lock()
			s.stop = true
			s.mu.Unlock()
			return false, nil
		default:
			return true, fmt.Errorf("cumulvs: unexpected control kind %d", kind)
		}
	}
	return true, nil
}

func (s *Sim) handleViewReq(d *wire.Decoder) error {
	id := d.String()
	v := View{
		Field:  d.String(),
		Lo:     d.Ints(),
		Hi:     d.Ints(),
		Stride: d.Ints(),
		Sync:   Sync(d.Byte()),
	}
	if len(v.Lo) == 0 {
		v.Lo, v.Hi = nil, nil
	}
	if len(v.Stride) == 0 {
		v.Stride = nil
	}
	if d.Err() != nil {
		return d.Err()
	}
	reject := func(reason string) error {
		e := wire.NewEncoder(nil)
		e.PutByte(ctlViewErr)
		e.PutString(id)
		e.PutString(reason)
		return s.bridge.SendControl(e.Bytes())
	}
	s.mu.Lock()
	desc, ok := s.fields[v.Field]
	s.mu.Unlock()
	if !ok {
		return reject(fmt.Sprintf("no field %q", v.Field))
	}
	if err := v.normalize(desc.Template.Dims()); err != nil {
		return reject(err.Error())
	}
	sv := &simView{id: id, view: v, field: desc, lat: make([][]int, s.np), epochs: make([]uint64, s.np)}
	for r := 0; r < s.np; r++ {
		sv.lat[r], _ = lattice(desc.Template, &v, r)
	}
	s.mu.Lock()
	if _, dup := s.views[id]; dup {
		s.mu.Unlock()
		return reject(fmt.Sprintf("view %q already exists", id))
	}
	s.views[id] = sv
	s.mu.Unlock()

	e := wire.NewEncoder(nil)
	e.PutByte(ctlViewAck)
	e.PutString(id)
	e.PutInt(s.np)
	e.PutInts(v.Lo)
	e.PutInts(v.Hi)
	e.PutInts(v.Stride)
	desc.Template.Encode(e)
	return s.bridge.SendControl(e.Bytes())
}

// PostFrame publishes rank's fragment of every active view of a field for
// one epoch. The simulation calls it each (coupling) step on every rank
// with the field's local buffer; it extracts the decimated sample points
// and posts them without waiting for the viewer.
func (s *Sim) PostFrame(field string, rank int, local []float64) error {
	s.mu.Lock()
	var targets []*simView
	for _, sv := range s.views {
		if sv.view.Field == field {
			targets = append(targets, sv)
		}
	}
	desc, ok := s.fields[field]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("cumulvs: no field %q", field)
	}
	if want := desc.Template.LocalCount(rank); len(local) != want {
		return fmt.Errorf("cumulvs: field %q rank %d buffer has %d elements, descriptor says %d", field, rank, len(local), want)
	}
	for _, sv := range targets {
		offs := sv.lat[rank]
		frag := make([]float64, len(offs))
		for i, off := range offs {
			frag[i] = local[off]
		}
		epoch := sv.epochs[rank]
		sv.epochs[rank]++
		if err := s.bridge.SendData(sv.id+"/"+itoa(rank), epoch, frag); err != nil {
			return err
		}
	}
	return nil
}

// CloseFrames ends rank's frame stream for every active view of a field:
// the viewer's NextFrame returns ErrStreamEnded once it has consumed the
// remaining frames. Each simulation rank calls it after its last
// PostFrame.
func (s *Sim) CloseFrames(field string, rank int) error {
	s.mu.Lock()
	var targets []*simView
	for _, sv := range s.views {
		if sv.view.Field == field {
			targets = append(targets, sv)
		}
	}
	s.mu.Unlock()
	for _, sv := range targets {
		// Each-frame consumers match exact epochs, so the end marker uses
		// the next epoch; free-running consumers sample the newest, so it
		// uses the maximum sequence.
		seq := sv.epochs[rank]
		if sv.view.Sync == Latest {
			seq = eosSeq
		}
		if err := s.bridge.SendData(sv.id+"/"+itoa(rank), seq, nil); err != nil {
			return err
		}
	}
	return nil
}

// eosSeq marks end-of-stream frames; the maximum sequence keeps them
// "newest" for free-running consumers.
const eosSeq = ^uint64(0)

// Stopped reports whether the viewer has asked the simulation to stop
// publishing.
func (s *Sim) Stopped() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stop
}

func itoa(v int) string { return fmt.Sprintf("%d", v) }
