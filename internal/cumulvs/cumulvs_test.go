package cumulvs

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"mxn/internal/core"
	"mxn/internal/dad"
)

func fieldDesc(t *testing.T, name string, dims []int, p, q int) *dad.Descriptor {
	t.Helper()
	tpl, err := dad.NewTemplate(dims, []dad.AxisDist{dad.BlockAxis(p), dad.BlockAxis(q)})
	if err != nil {
		t.Fatal(err)
	}
	d, err := dad.NewDescriptor(name, dad.Float64, dad.ReadOnly, tpl)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// fillField writes value(gidx) into each rank's local buffer.
func fillField(tpl *dad.Template, value func(idx []int) float64) [][]float64 {
	locals := make([][]float64, tpl.NumProcs())
	for r := range locals {
		locals[r] = make([]float64, tpl.LocalCount(r))
	}
	dims := tpl.Dims()
	idx := make([]int, len(dims))
	var walk func(a int)
	walk = func(a int) {
		if a == len(dims) {
			r := tpl.OwnerOf(idx)
			locals[r][tpl.LocalOffset(r, idx)] = value(idx)
			return
		}
		for i := 0; i < dims[a]; i++ {
			idx[a] = i
			walk(a + 1)
		}
	}
	walk(0)
	return locals
}

func TestFullFieldView(t *testing.T) {
	const np = 4
	ba, bb := core.BridgePair()
	sim := NewSim(np, ba)
	viewer := NewViewer(bb)
	desc := fieldDesc(t, "heat", []int{8, 8}, 2, 2)
	if err := sim.RegisterField(desc); err != nil {
		t.Fatal(err)
	}
	// Handle the view request concurrently with OpenView.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := sim.Service(1); err != nil {
			t.Errorf("service: %v", err)
		}
	}()
	ch, err := viewer.OpenView("v1", View{Field: "heat", Sync: EachFrame})
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if d := ch.Dims(); d[0] != 8 || d[1] != 8 {
		t.Fatalf("dims = %v", d)
	}
	// Post two epochs and read them in order.
	for epoch := 0; epoch < 2; epoch++ {
		locals := fillField(desc.Template, func(idx []int) float64 {
			return float64(epoch*1000 + idx[0]*8 + idx[1])
		})
		for r := 0; r < np; r++ {
			if err := sim.PostFrame("heat", r, locals[r]); err != nil {
				t.Fatal(err)
			}
		}
	}
	frame := make([]float64, ch.FrameLen())
	for epoch := 0; epoch < 2; epoch++ {
		got, err := ch.NextFrame(frame)
		if err != nil {
			t.Fatal(err)
		}
		if got != uint64(epoch) {
			t.Errorf("epoch = %d, want %d", got, epoch)
		}
		for p, v := range frame {
			if want := float64(epoch*1000 + p); v != want {
				t.Fatalf("epoch %d frame[%d] = %v, want %v", epoch, p, v, want)
			}
		}
	}
}

func TestRegionOfInterestAndStride(t *testing.T) {
	const np = 4
	ba, bb := core.BridgePair()
	sim := NewSim(np, ba)
	viewer := NewViewer(bb)
	desc := fieldDesc(t, "heat", []int{12, 12}, 2, 2)
	sim.RegisterField(desc)
	go sim.Service(1)
	ch, err := viewer.OpenView("roi", View{
		Field:  "heat",
		Lo:     []int{2, 4},
		Hi:     []int{10, 12},
		Stride: []int{2, 4},
		Sync:   EachFrame,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Coarse shape: (10-2)/2 = 4 by (12-4)/4 = 2.
	if d := ch.Dims(); d[0] != 4 || d[1] != 2 {
		t.Fatalf("dims = %v", d)
	}
	locals := fillField(desc.Template, func(idx []int) float64 {
		return float64(idx[0]*100 + idx[1])
	})
	for r := 0; r < np; r++ {
		if err := sim.PostFrame("heat", r, locals[r]); err != nil {
			t.Fatal(err)
		}
	}
	frame := make([]float64, ch.FrameLen())
	if _, err := ch.NextFrame(frame); err != nil {
		t.Fatal(err)
	}
	// Sample (ci, cj) maps to fine (2+2ci, 4+4cj).
	for ci := 0; ci < 4; ci++ {
		for cj := 0; cj < 2; cj++ {
			want := float64((2+2*ci)*100 + (4 + 4*cj))
			if got := frame[ci*2+cj]; got != want {
				t.Errorf("frame[%d,%d] = %v, want %v", ci, cj, got, want)
			}
		}
	}
}

func TestLatestSamplingSkipsFrames(t *testing.T) {
	ba, bb := core.BridgePair()
	sim := NewSim(1, ba)
	viewer := NewViewer(bb)
	tpl, _ := dad.NewTemplate([]int{4}, []dad.AxisDist{dad.BlockAxis(1)})
	desc, _ := dad.NewDescriptor("f", dad.Float64, dad.ReadOnly, tpl)
	sim.RegisterField(desc)
	go sim.Service(1)
	ch, err := viewer.OpenView("v", View{Field: "f", Sync: Latest})
	if err != nil {
		t.Fatal(err)
	}
	local := make([]float64, 4)
	for epoch := 0; epoch < 7; epoch++ {
		for i := range local {
			local[i] = float64(epoch)
		}
		sim.PostFrame("f", 0, local)
	}
	frame := make([]float64, 4)
	epoch, err := ch.NextFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 6 || frame[0] != 6 {
		t.Errorf("sampled epoch %d value %v, want newest (6)", epoch, frame[0])
	}
}

func TestSteering(t *testing.T) {
	ba, bb := core.BridgePair()
	sim := NewSim(1, ba)
	viewer := NewViewer(bb)
	if err := sim.RegisterParam("dt", 0.1); err != nil {
		t.Fatal(err)
	}
	if err := sim.RegisterParam("dt", 0.2); err == nil {
		t.Error("duplicate parameter accepted")
	}
	if v, _ := sim.Param("dt"); v != 0.1 {
		t.Errorf("initial dt = %v", v)
	}
	if err := viewer.SetParam("dt", 0.05); err != nil {
		t.Fatal(err)
	}
	if cont, err := sim.Service(1); err != nil || !cont {
		t.Fatalf("service: cont=%v err=%v", cont, err)
	}
	if v, _ := sim.Param("dt"); v != 0.05 {
		t.Errorf("steered dt = %v", v)
	}
	// Unknown parameter updates are ignored without error.
	viewer.SetParam("nope", 1)
	if cont, err := sim.Service(1); err != nil || !cont {
		t.Fatalf("service: %v %v", cont, err)
	}
	if _, err := sim.Param("nope"); err == nil {
		t.Error("phantom parameter exists")
	}
}

func TestStop(t *testing.T) {
	ba, bb := core.BridgePair()
	sim := NewSim(1, ba)
	viewer := NewViewer(bb)
	if sim.Stopped() {
		t.Fatal("stopped before start")
	}
	if err := viewer.Stop(); err != nil {
		t.Fatal(err)
	}
	cont, err := sim.Service(10)
	if err != nil || cont {
		t.Errorf("service after stop: cont=%v err=%v", cont, err)
	}
	if !sim.Stopped() {
		t.Error("stop not recorded")
	}
}

func TestViewRejections(t *testing.T) {
	ba, bb := core.BridgePair()
	sim := NewSim(1, ba)
	viewer := NewViewer(bb)
	tpl, _ := dad.NewTemplate([]int{4}, []dad.AxisDist{dad.BlockAxis(1)})
	desc, _ := dad.NewDescriptor("f", dad.Float64, dad.ReadOnly, tpl)
	sim.RegisterField(desc)

	cases := []struct {
		name string
		view View
		want string
	}{
		{"unknown field", View{Field: "ghost"}, "no field"},
		{"bad region", View{Field: "f", Lo: []int{0}, Hi: []int{99}, Stride: []int{1}}, "out of bounds"},
		{"bad stride", View{Field: "f", Lo: []int{0}, Hi: []int{4}, Stride: []int{0}}, "stride"},
	}
	for _, c := range cases {
		go sim.Service(1)
		_, err := viewer.OpenView(c.name, c.view)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v", c.name, err)
		}
	}
	// Duplicate view id.
	go sim.Service(1)
	if _, err := viewer.OpenView("dup", View{Field: "f"}); err != nil {
		t.Fatal(err)
	}
	go sim.Service(1)
	if _, err := viewer.OpenView("dup", View{Field: "f"}); err == nil {
		t.Error("duplicate view id accepted")
	}
}

func TestRegisterValidation(t *testing.T) {
	ba, _ := core.BridgePair()
	sim := NewSim(2, ba)
	tpl, _ := dad.NewTemplate([]int{4}, []dad.AxisDist{dad.BlockAxis(2)})
	wo, _ := dad.NewDescriptor("w", dad.Float64, dad.WriteOnly, tpl)
	if err := sim.RegisterField(wo); err == nil {
		t.Error("write-only field accepted for viewing")
	}
	narrow, _ := dad.NewTemplate([]int{4}, []dad.AxisDist{dad.BlockAxis(1)})
	nd, _ := dad.NewDescriptor("n", dad.Float64, dad.ReadOnly, narrow)
	if err := sim.RegisterField(nd); err == nil {
		t.Error("wrong-width field accepted")
	}
	ok, _ := dad.NewDescriptor("ok", dad.Float64, dad.ReadOnly, tpl)
	if err := sim.RegisterField(ok); err != nil {
		t.Fatal(err)
	}
	if err := sim.RegisterField(ok); err == nil {
		t.Error("duplicate field accepted")
	}
	// PostFrame validation.
	if err := sim.PostFrame("ghost", 0, nil); err == nil {
		t.Error("post to unknown field accepted")
	}
	if err := sim.PostFrame("ok", 0, make([]float64, 99)); err == nil {
		t.Error("bad buffer length accepted")
	}
}

func TestCloseFramesEndsStream(t *testing.T) {
	for _, sync := range []Sync{EachFrame, Latest} {
		ba, bb := core.BridgePair()
		sim := NewSim(1, ba)
		viewer := NewViewer(bb)
		tpl, _ := dad.NewTemplate([]int{4}, []dad.AxisDist{dad.BlockAxis(1)})
		desc, _ := dad.NewDescriptor("f", dad.Float64, dad.ReadOnly, tpl)
		sim.RegisterField(desc)
		go sim.Service(1)
		ch, err := viewer.OpenView("v", View{Field: "f", Sync: sync})
		if err != nil {
			t.Fatal(err)
		}
		local := []float64{1, 2, 3, 4}
		if err := sim.PostFrame("f", 0, local); err != nil {
			t.Fatal(err)
		}
		if err := sim.CloseFrames("f", 0); err != nil {
			t.Fatal(err)
		}
		frame := make([]float64, 4)
		if sync == EachFrame {
			// The posted frame is still delivered, then the end marker.
			if _, err := ch.NextFrame(frame); err != nil {
				t.Fatalf("sync %v: first frame: %v", sync, err)
			}
		}
		_, err = ch.NextFrame(frame)
		if !errors.Is(err, ErrStreamEnded) {
			t.Errorf("sync %v: err = %v, want ErrStreamEnded", sync, err)
		}
	}
}
