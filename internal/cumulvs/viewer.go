package cumulvs

import (
	"errors"
	"fmt"

	"mxn/internal/core"
	"mxn/internal/dad"
	"mxn/internal/wire"
)

// ErrStreamEnded reports that the simulation closed the view's frame
// stream (CloseFrames): no further frames will arrive.
var ErrStreamEnded = errors.New("cumulvs: frame stream ended by simulation")

// Viewer is the front-end side: it attaches to a running simulation over
// the bridge, opens views and receives frames, and pushes steering
// parameter updates back.
type Viewer struct {
	bridge core.Bridge
}

// NewViewer creates the front-end endpoint.
func NewViewer(bridge core.Bridge) *Viewer {
	return &Viewer{bridge: bridge}
}

// Channel is an open view: a persistent parallel data channel delivering
// decimated frames of one field.
type Channel struct {
	id     string
	bridge core.Bridge
	view   View
	np     int
	dims   []int   // coarse frame shape
	pos    [][]int // per sim rank: coarse positions of its fragment
	epoch  []uint64
}

// OpenView requests a view from the simulation. The simulation must
// Service the request; OpenView blocks until the acknowledgement arrives.
func (v *Viewer) OpenView(id string, view View) (*Channel, error) {
	e := wire.NewEncoder(nil)
	e.PutByte(ctlViewReq)
	e.PutString(id)
	e.PutString(view.Field)
	e.PutInts(view.Lo)
	e.PutInts(view.Hi)
	e.PutInts(view.Stride)
	e.PutByte(byte(view.Sync))
	if err := v.bridge.SendControl(e.Bytes()); err != nil {
		return nil, err
	}
	msg, err := v.bridge.RecvControl()
	if err != nil {
		return nil, err
	}
	d := wire.NewDecoder(msg)
	switch kind := d.Byte(); kind {
	case ctlViewErr:
		_ = d.String() // id, unused in the error path
		return nil, fmt.Errorf("cumulvs: view rejected: %s", d.String())
	case ctlViewAck:
		gotID := d.String()
		np := d.Int()
		view.Lo = d.Ints()
		view.Hi = d.Ints()
		view.Stride = d.Ints()
		tpl, terr := dad.DecodeTemplate(d)
		if terr != nil {
			return nil, terr
		}
		if d.Err() != nil {
			return nil, d.Err()
		}
		if gotID != id {
			return nil, fmt.Errorf("cumulvs: acknowledgement for %q, wanted %q", gotID, id)
		}
		ch := &Channel{
			id:     id,
			bridge: v.bridge,
			view:   view,
			np:     np,
			dims:   view.coarseDims(tpl.Dims()),
			pos:    make([][]int, np),
			epoch:  make([]uint64, np),
		}
		for r := 0; r < np; r++ {
			_, ch.pos[r] = lattice(tpl, &view, r)
		}
		return ch, nil
	default:
		return nil, fmt.Errorf("cumulvs: unexpected control kind %d", kind)
	}
}

// SetParam pushes a steering parameter update to the simulation. It never
// blocks on the simulation; the new value takes effect when the sim next
// services its control stream.
func (v *Viewer) SetParam(name string, value float64) error {
	e := wire.NewEncoder(nil)
	e.PutByte(ctlSteer)
	e.PutString(name)
	e.PutFloat64(value)
	return v.bridge.SendControl(e.Bytes())
}

// Stop tells the simulation the viewer is done.
func (v *Viewer) Stop() error {
	e := wire.NewEncoder(nil)
	e.PutByte(ctlStop)
	return v.bridge.SendControl(e.Bytes())
}

// Dims returns the coarse frame shape of the channel.
func (ch *Channel) Dims() []int { return append([]int(nil), ch.dims...) }

// FrameLen returns the number of values in one assembled frame.
func (ch *Channel) FrameLen() int {
	n := 1
	for _, d := range ch.dims {
		n *= d
	}
	return n
}

// NextFrame assembles the next frame according to the view's
// synchronization policy: for EachFrame, the next epoch in order from
// every simulation rank; for Latest, the newest fragment of every rank
// (fragments may then come from slightly different epochs — the
// free-running tradeoff). The returned epoch is the minimum across
// fragments.
func (ch *Channel) NextFrame(frame []float64) (uint64, error) {
	if len(frame) != ch.FrameLen() {
		return 0, fmt.Errorf("cumulvs: frame buffer has %d values, view needs %d", len(frame), ch.FrameLen())
	}
	minEpoch := ^uint64(0)
	for r := 0; r < ch.np; r++ {
		if len(ch.pos[r]) == 0 {
			continue
		}
		var frag []float64
		var seq uint64
		var err error
		if ch.view.Sync == Latest {
			seq, frag, err = ch.bridge.RecvLatest(ch.id + "/" + itoa(r))
		} else {
			seq = ch.epoch[r]
			ch.epoch[r]++
			frag, err = ch.bridge.RecvData(ch.id+"/"+itoa(r), seq)
		}
		if err != nil {
			return 0, err
		}
		if len(frag) == 0 {
			// Real fragments for ranks the viewer consumes are never
			// empty; an empty frame is the end-of-stream marker.
			return 0, ErrStreamEnded
		}
		if len(frag) != len(ch.pos[r]) {
			return 0, fmt.Errorf("cumulvs: fragment from rank %d has %d values, lattice says %d", r, len(frag), len(ch.pos[r]))
		}
		for i, p := range ch.pos[r] {
			frame[p] = frag[i]
		}
		if seq < minEpoch {
			minEpoch = seq
		}
	}
	return minEpoch, nil
}
