package session

import (
	"bytes"
	"testing"
)

// FuzzSessionFrame hammers the handshake/ack/data codec: decodeFrame
// must never panic on arbitrary bytes, and any frame that decodes must
// re-encode to exactly the input (the codec is canonical — no two wire
// forms decode to the same frame).
func FuzzSessionFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodeHello(nil, 0x1122334455667788, 42, true))
	f.Add(encodeHello(nil, 1, 0, false))
	f.Add(encodeWelcome(nil, 7, 99))
	f.Add(encodeReject(nil, 7, "unknown session"))
	f.Add(encodeReject(nil, 0, ""))
	data := make([]byte, dataHdrLen+5)
	putDataHeader(data, 3, 2)
	copy(data[dataHdrLen:], "hello")
	f.Add(data)
	ack := make([]byte, ackLen)
	putAck(ack, 12)
	f.Add(ack)
	f.Add([]byte{0xff, 0x00})
	f.Add([]byte{kindData})

	f.Fuzz(func(t *testing.T, b []byte) {
		fr, err := decodeFrame(b)
		if err != nil {
			return
		}
		var re []byte
		switch fr.kind {
		case kindHello:
			re = encodeHello(nil, fr.id, fr.ack, fr.resume)
		case kindWelcome:
			re = encodeWelcome(nil, fr.id, fr.ack)
		case kindReject:
			re = encodeReject(nil, fr.id, string(fr.payload))
		case kindData:
			re = make([]byte, dataHdrLen+len(fr.payload))
			putDataHeader(re, fr.seq, fr.ack)
			copy(re[dataHdrLen:], fr.payload)
		case kindAck:
			re = make([]byte, ackLen)
			putAck(re, fr.ack)
		default:
			t.Fatalf("decodeFrame returned unknown kind %#02x", fr.kind)
		}
		if !bytes.Equal(re, b) {
			t.Fatalf("re-encode mismatch:\n in  % x\n out % x", b, re)
		}
	})
}
