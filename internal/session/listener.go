// Listener-side session management: accept raw transport connections,
// run the hello/welcome handshake, and route each physical connection to
// either a brand-new session (surfaced through Accept) or an existing one
// that is resuming after a failure (absorbed silently by attach).
package session

import (
	"context"
	"sync"

	"mxn/internal/transport"
)

// Listener accepts resumable sessions. It implements transport.Listener:
// Accept returns a *Conn (as a transport.Conn) once per *session*, not
// once per physical connection — reconnects of live sessions are resumed
// in place and never reach Accept. Because it consumes and produces the
// transport interfaces, it composes with any inner listener, including a
// fault-injecting faultconn.Listener.
type Listener struct {
	inner transport.Listener
	cfg   Config

	mu       sync.Mutex
	sessions map[uint64]*Conn
	closed   bool

	accepted chan *Conn
	acceptWG sync.WaitGroup
	done     chan struct{}
}

// WrapListener layers session management over an accepted-connection
// source. The returned listener owns inner and closes it on Close.
func WrapListener(inner transport.Listener, cfg Config) *Listener {
	l := &Listener{
		inner:    inner,
		cfg:      cfg.withDefaults(),
		sessions: make(map[uint64]*Conn),
		accepted: make(chan *Conn, 16),
		done:     make(chan struct{}),
	}
	go l.acceptLoop()
	return l
}

// Listen opens a transport listener on addr and wraps it.
func Listen(network, addr string, cfg Config) (*Listener, error) {
	inner, err := transport.Listen(network, addr)
	if err != nil {
		return nil, err
	}
	return WrapListener(inner, cfg), nil
}

// Addr reports the inner listener's address.
func (l *Listener) Addr() string { return l.inner.Addr() }

// Accept returns the next new session. Physical reconnects of sessions
// already accepted are handled internally and do not surface here.
func (l *Listener) Accept() (transport.Conn, error) {
	select {
	case c := <-l.accepted:
		return c, nil
	case <-l.done:
		// Drain sessions that raced with Close.
		select {
		case c := <-l.accepted:
			return c, nil
		default:
			return nil, transport.ErrClosed
		}
	}
}

// Close stops accepting and closes every live session. Peers of closed
// sessions observe link failure and, unable to resume, open their
// circuits after their budgets.
func (l *Listener) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	conns := make([]*Conn, 0, len(l.sessions))
	for _, c := range l.sessions {
		conns = append(conns, c)
	}
	l.sessions = nil
	close(l.done)
	l.mu.Unlock()
	err := l.inner.Close()
	l.acceptWG.Wait()
	for _, c := range conns {
		c.Close()
	}
	return err
}

func (l *Listener) acceptLoop() {
	for {
		raw, err := l.inner.Accept()
		if err != nil {
			return
		}
		l.acceptWG.Add(1)
		go func() {
			defer l.acceptWG.Done()
			l.handshake(raw)
		}()
	}
}

// handshake reads the peer's hello from a fresh physical connection and
// routes it: new session → register + surface via Accept; resume of a
// known session → attach in place; resume of an unknown session →
// reject (the exactly-once state is gone, so resuming would lie).
func (l *Listener) handshake(raw transport.Conn) {
	ctx, cancel := context.WithTimeout(context.Background(), l.cfg.HandshakeTimeout)
	defer cancel()
	msg, err := raw.RecvContext(ctx)
	if err != nil {
		raw.Close()
		return
	}
	f, err := decodeFrame(msg)
	if err != nil || f.kind != kindHello {
		raw.Close()
		return
	}

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		raw.Close()
		return
	}
	existing := l.sessions[f.id]
	if existing == nil && !f.resume {
		c := newPassiveConn(l, f.id, l.cfg)
		l.sessions[f.id] = c
		l.mu.Unlock()
		if err := raw.SendContext(ctx, encodeWelcome(make([]byte, 0, welcomeLen), f.id, 0)); err != nil {
			raw.Close()
			l.remove(f.id)
			return
		}
		if err := c.installConn(raw, f.ack); err != nil {
			raw.Close()
			l.remove(f.id)
			return
		}
		c.mu.Lock()
		c.counted = true
		c.mu.Unlock()
		mConnsOpen.Add(1)
		select {
		case l.accepted <- c:
		case <-l.done:
			c.Close()
		}
		return
	}
	l.mu.Unlock()

	switch {
	case existing != nil:
		// Resume (or a duplicate fresh hello after a lost welcome — the
		// session state still matches, so attach handles both).
		existing.attach(raw, f.ack)
	default:
		// Resume of a session we do not know: the listener restarted or
		// already reaped it. Exactly-once cannot be honored, so say so.
		mRejects.Inc()
		_ = raw.SendContext(ctx, encodeReject(make([]byte, 0, rejectMin+16), f.id, "unknown session"))
		raw.Close()
	}
}

// remove forgets a session (on its Close or circuit-open) so a later
// resume attempt is rejected instead of attached to a zombie.
func (l *Listener) remove(id uint64) {
	l.mu.Lock()
	if l.sessions != nil {
		delete(l.sessions, id)
	}
	l.mu.Unlock()
}
