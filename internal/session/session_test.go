package session

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mxn/internal/faultconn"
	"mxn/internal/transport"
)

// fastCfg keeps reconnect machinery snappy for tests.
func fastCfg() Config {
	return Config{
		MaxAttempts:      20,
		MaxElapsed:       20 * time.Second,
		BaseBackoff:      2 * time.Millisecond,
		MaxBackoff:       50 * time.Millisecond,
		HandshakeTimeout: 5 * time.Second,
	}
}

// startEcho accepts one session from l and echoes every message back
// until the session dies. Returns a done channel.
func startEcho(t *testing.T, l *Listener) <-chan struct{} {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		sc, err := l.Accept()
		if err != nil {
			return
		}
		for {
			msg, err := sc.Recv()
			if err != nil {
				return
			}
			if err := sc.Send(msg); err != nil {
				return
			}
		}
	}()
	return done
}

// trackedDialer dials addr over TCP and remembers the latest raw conn so
// the test can kill the physical link underneath the session.
type trackedDialer struct {
	mu   sync.Mutex
	addr string
	raw  transport.Conn
}

func (d *trackedDialer) dial(ctx context.Context) (transport.Conn, error) {
	d.mu.Lock()
	addr := d.addr
	d.mu.Unlock()
	c, err := transport.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	d.raw = c
	d.mu.Unlock()
	return c, nil
}

func (d *trackedDialer) kill() {
	d.mu.Lock()
	raw := d.raw
	d.mu.Unlock()
	if raw != nil {
		raw.Close()
	}
}

func (d *trackedDialer) setAddr(addr string) {
	d.mu.Lock()
	d.addr = addr
	d.mu.Unlock()
}

func TestSessionBasicExchange(t *testing.T) {
	l, err := Listen("tcp", "127.0.0.1:0", fastCfg())
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer l.Close()
	startEcho(t, l)

	c, err := Dial("tcp", l.Addr(), fastCfg())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	for i := 0; i < 10; i++ {
		msg := []byte(fmt.Sprintf("msg-%d", i))
		if err := c.Send(msg); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
		got, err := c.Recv()
		if err != nil {
			t.Fatalf("Recv %d: %v", i, err)
		}
		if string(got) != string(msg) {
			t.Fatalf("echo %d: got %q want %q", i, got, msg)
		}
	}
}

func TestSessionExactlyOnceAcrossFlaps(t *testing.T) {
	l, err := Listen("tcp", "127.0.0.1:0", fastCfg())
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer l.Close()
	startEcho(t, l)

	d := &trackedDialer{addr: l.Addr()}
	c, err := NewConn(d.dial, fastCfg())
	if err != nil {
		t.Fatalf("NewConn: %v", err)
	}
	defer c.Close()

	const n = 300
	recvErr := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			got, err := c.Recv()
			if err != nil {
				recvErr <- fmt.Errorf("Recv %d: %w", i, err)
				return
			}
			if len(got) != 8 || binary.LittleEndian.Uint64(got) != uint64(i) {
				recvErr <- fmt.Errorf("echo %d: got % x", i, got)
				return
			}
		}
		recvErr <- nil
	}()
	for i := 0; i < n; i++ {
		var msg [8]byte
		binary.LittleEndian.PutUint64(msg[:], uint64(i))
		if err := c.Send(msg[:]); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
		if i%37 == 17 {
			d.kill() // sever the physical link mid-stream
		}
	}
	select {
	case err := <-recvErr:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("timed out waiting for echoes across flaps")
	}
	if got := mReconnects.Value(); got == 0 {
		t.Log("note: no reconnect recorded (flaps may have raced completion)")
	}
}

func TestSessionBudgetExhaustionOpensCircuit(t *testing.T) {
	l, err := Listen("tcp", "127.0.0.1:0", fastCfg())
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	startEcho(t, l)

	cfg := fastCfg()
	cfg.MaxAttempts = 3
	cfg.MaxElapsed = 3 * time.Second
	d := &trackedDialer{addr: l.Addr()}
	c, err := NewConn(d.dial, cfg)
	if err != nil {
		t.Fatalf("NewConn: %v", err)
	}
	defer c.Close()
	if err := c.Send([]byte("ping")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if _, err := c.Recv(); err != nil {
		t.Fatalf("Recv: %v", err)
	}

	// Take the whole listener down so every redial is refused.
	l.Close()
	d.kill()

	_, err = c.Recv() // blocks until the circuit opens
	if err == nil {
		t.Fatal("Recv succeeded after listener death")
	}
	if !errors.Is(err, ErrPeerLost) {
		t.Fatalf("Recv error %v does not match ErrPeerLost", err)
	}
	if !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("Recv error %v does not match transport.ErrClosed", err)
	}
	var pl *PeerLostError
	if !errors.As(err, &pl) {
		t.Fatalf("Recv error %T is not *PeerLostError", err)
	}
	if pl.Attempts == 0 {
		t.Fatalf("PeerLostError.Attempts = 0, want > 0: %v", pl)
	}
	if serr := c.Send([]byte("post-mortem")); !errors.Is(serr, ErrPeerLost) {
		t.Fatalf("Send after circuit open: %v, want ErrPeerLost", serr)
	}
	if c.Err() == nil {
		t.Fatal("Err() nil after circuit open")
	}
}

func TestSessionResumeRejectedAfterListenerRestart(t *testing.T) {
	la, err := Listen("tcp", "127.0.0.1:0", fastCfg())
	if err != nil {
		t.Fatalf("Listen A: %v", err)
	}
	startEcho(t, la)

	d := &trackedDialer{addr: la.Addr()}
	c, err := NewConn(d.dial, fastCfg())
	if err != nil {
		t.Fatalf("NewConn: %v", err)
	}
	defer c.Close()
	if err := c.Send([]byte("hi")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if _, err := c.Recv(); err != nil {
		t.Fatalf("Recv: %v", err)
	}

	// "Restart" the server: a fresh listener with no session state.
	lb, err := Listen("tcp", "127.0.0.1:0", fastCfg())
	if err != nil {
		t.Fatalf("Listen B: %v", err)
	}
	defer lb.Close()
	d.setAddr(lb.Addr())
	la.Close()
	d.kill()

	_, err = c.Recv()
	if !errors.Is(err, ErrPeerLost) {
		t.Fatalf("Recv after restart: %v, want ErrPeerLost", err)
	}
	var rej *RejectedError
	if !errors.As(err, &rej) {
		t.Fatalf("Recv error %v does not unwrap to *RejectedError", err)
	}
}

func TestSessionSendContextFlowControlTimeout(t *testing.T) {
	l, err := Listen("tcp", "127.0.0.1:0", fastCfg())
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer l.Close()
	startEcho(t, l)

	cfg := fastCfg()
	cfg.MaxReplayFrames = 4
	cfg.BaseBackoff = 100 * time.Millisecond
	var allowDial atomic.Bool
	allowDial.Store(true)
	d := &trackedDialer{addr: l.Addr()}
	dial := func(ctx context.Context) (transport.Conn, error) {
		if !allowDial.Load() {
			return nil, fmt.Errorf("dial disabled")
		}
		return d.dial(ctx)
	}
	c, err := NewConn(dial, cfg)
	if err != nil {
		t.Fatalf("NewConn: %v", err)
	}
	defer c.Close()

	allowDial.Store(false) // session can only go down from here
	d.kill()
	for i := 0; i < cfg.MaxReplayFrames; i++ {
		if err := c.Send([]byte("buffered")); err != nil {
			t.Fatalf("buffered Send %d: %v", i, err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	err = c.SendContext(ctx, []byte("overflow"))
	if !errors.Is(err, transport.ErrTimeout) {
		t.Fatalf("SendContext on full replay buffer: %v, want ErrTimeout", err)
	}
}

func TestSessionListenerCloseUnblocksAccept(t *testing.T) {
	l, err := Listen("tcp", "127.0.0.1:0", fastCfg())
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	got := make(chan error, 1)
	go func() {
		_, err := l.Accept()
		got <- err
	}()
	time.Sleep(10 * time.Millisecond)
	l.Close()
	select {
	case err := <-got:
		if !errors.Is(err, transport.ErrClosed) {
			t.Fatalf("Accept after Close: %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Accept did not unblock on Close")
	}
}

// nullConn is a do-nothing physical connection for the allocation guard.
type nullConn struct{}

func (nullConn) Send([]byte) error                               { return nil }
func (nullConn) Recv() ([]byte, error)                           { select {} }
func (nullConn) Close() error                                    { return nil }
func (nullConn) SendContext(ctx context.Context, b []byte) error { return nil }
func (nullConn) RecvContext(ctx context.Context) ([]byte, error) { select {} }

// TestSessionSendSteadyStateZeroAlloc guards the healthy-session hot
// path: Send on an established session draws its frame from bufpool and
// must not allocate once the pool is warm.
func TestSessionSendSteadyStateZeroAlloc(t *testing.T) {
	c := &Conn{cfg: Config{}.withDefaults(), id: 1}
	c.cond = sync.NewCond(&c.mu)
	c.replay.init(c.cfg.MaxReplayFrames)
	c.cur = nullConn{}

	msg := make([]byte, 1024)
	drain := func() {
		c.mu.Lock()
		c.ackUpToLocked(c.nextSeq)
		c.mu.Unlock()
	}
	for i := 0; i < 8; i++ { // warm the pool's size class
		if err := c.Send(msg); err != nil {
			t.Fatalf("warmup Send: %v", err)
		}
	}
	drain()
	allocs := testing.AllocsPerRun(200, func() {
		if err := c.Send(msg); err != nil {
			t.Fatalf("Send: %v", err)
		}
		drain()
	})
	if allocs != 0 {
		t.Fatalf("session Send steady state: %.1f allocs/op, want 0", allocs)
	}
}

// TestSessionBidirectionalFlap drives traffic both ways while the link
// flaps, checking order and exactly-once delivery in each direction.
func TestSessionBidirectionalFlap(t *testing.T) {
	l, err := Listen("tcp", "127.0.0.1:0", fastCfg())
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer l.Close()

	const n = 200
	serverErr := make(chan error, 1)
	go func() {
		sc, err := l.Accept()
		if err != nil {
			serverErr <- err
			return
		}
		var wg sync.WaitGroup
		var sendErr, recvErr error
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				var msg [8]byte
				binary.LittleEndian.PutUint64(msg[:], uint64(1_000_000+i))
				if err := sc.Send(msg[:]); err != nil {
					sendErr = fmt.Errorf("server send %d: %w", i, err)
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				got, err := sc.Recv()
				if err != nil {
					recvErr = fmt.Errorf("server recv %d: %w", i, err)
					return
				}
				if binary.LittleEndian.Uint64(got) != uint64(i) {
					recvErr = fmt.Errorf("server recv %d: got %d", i, binary.LittleEndian.Uint64(got))
					return
				}
			}
		}()
		wg.Wait()
		if sendErr != nil {
			serverErr <- sendErr
			return
		}
		serverErr <- recvErr
	}()

	d := &trackedDialer{addr: l.Addr()}
	c, err := NewConn(d.dial, fastCfg())
	if err != nil {
		t.Fatalf("NewConn: %v", err)
	}
	defer c.Close()

	clientRecv := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			got, err := c.Recv()
			if err != nil {
				clientRecv <- fmt.Errorf("client recv %d: %w", i, err)
				return
			}
			if binary.LittleEndian.Uint64(got) != uint64(1_000_000+i) {
				clientRecv <- fmt.Errorf("client recv %d: got %d", i, binary.LittleEndian.Uint64(got))
				return
			}
		}
		clientRecv <- nil
	}()
	for i := 0; i < n; i++ {
		var msg [8]byte
		binary.LittleEndian.PutUint64(msg[:], uint64(i))
		if err := c.Send(msg[:]); err != nil {
			t.Fatalf("client send %d: %v", i, err)
		}
		if i%41 == 13 {
			d.kill()
		}
	}
	deadline := time.After(30 * time.Second)
	for _, ch := range []chan error{serverErr, clientRecv} {
		select {
		case err := <-ch:
			if err != nil {
				t.Fatal(err)
			}
		case <-deadline:
			t.Fatal("timed out waiting for bidirectional flap traffic")
		}
	}
}

// TestSessionOverFlappingFaultconn composes the session layer with the
// faultconn Flap scenario: every physical conn the listener accepts dies
// after a couple dozen frames, yet the session delivers everything
// exactly once by redialing and replaying.
func TestSessionOverFlappingFaultconn(t *testing.T) {
	inner, err := transport.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	fl := faultconn.WrapListener(inner, faultconn.Scenario{Seed: 42, FlapAfter: 25})
	l := WrapListener(fl, fastCfg())
	defer l.Close()
	startEcho(t, l)

	c, err := NewConn(func(ctx context.Context) (transport.Conn, error) {
		return transport.DialContext(ctx, "tcp", inner.Addr())
	}, fastCfg())
	if err != nil {
		t.Fatalf("NewConn: %v", err)
	}
	defer c.Close()

	const n = 200
	recvErr := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			got, err := c.Recv()
			if err != nil {
				recvErr <- fmt.Errorf("Recv %d: %w", i, err)
				return
			}
			if binary.LittleEndian.Uint64(got) != uint64(i) {
				recvErr <- fmt.Errorf("echo %d: got %d", i, binary.LittleEndian.Uint64(got))
				return
			}
		}
		recvErr <- nil
	}()
	for i := 0; i < n; i++ {
		var msg [8]byte
		binary.LittleEndian.PutUint64(msg[:], uint64(i))
		if err := c.Send(msg[:]); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
	}
	select {
	case err := <-recvErr:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("timed out echoing across flapping conns")
	}
}
