// Session frame codec. Every message a session.Conn puts on the inner
// transport is one of five frames, distinguished by a leading kind byte
// with fixed little-endian headers — no varints, so the data header can be
// written in place into a pooled buffer without measuring first.
//
//	hello   [kind u8][session id u64][last delivered u64][flags u8]
//	welcome [kind u8][session id u64][last delivered u64]
//	reject  [kind u8][session id u64][reason bytes...]
//	data    [kind u8][seq u64][ack u64][payload bytes...]
//	ack     [kind u8][ack u64]
//
// hello flows dialer→listener as the first frame of every physical
// connection; welcome (or reject) is the listener's sole reply before data
// may flow. "last delivered" is the cumulative sequence number of the
// highest in-order frame the sender of the handshake frame has delivered
// to its application side; the peer trims its replay buffer to it and
// re-sends everything after it. data.ack piggybacks the same cumulative
// acknowledgement on every data frame; ack carries it alone when traffic
// is one-sided.
package session

import (
	"encoding/binary"
	"errors"
	"fmt"
)

const (
	kindHello   byte = 0x01
	kindWelcome byte = 0x02
	kindReject  byte = 0x03
	kindData    byte = 0x04
	kindAck     byte = 0x05
)

const (
	helloLen   = 1 + 8 + 8 + 1
	welcomeLen = 1 + 8 + 8
	rejectMin  = 1 + 8
	dataHdrLen = 1 + 8 + 8
	ackLen     = 1 + 8

	// flagResume marks a hello that resumes an established session (as
	// opposed to opening a new one). A listener that does not know the
	// session must reject a resume: inventing a fresh session would
	// silently void the exactly-once guarantee.
	flagResume byte = 1 << 0
)

// ErrBadFrame reports a session frame that does not decode.
var ErrBadFrame = errors.New("session: malformed frame")

// frame is the decoded form of any session frame. Fields are populated
// according to kind; payload aliases the input buffer.
type frame struct {
	kind    byte
	id      uint64 // hello, welcome, reject
	seq     uint64 // data
	ack     uint64 // data, ack; hello/welcome: last delivered
	resume  bool   // hello
	payload []byte // data payload; reject reason
}

// decodeFrame parses one session frame. It never panics and never
// allocates beyond the returned struct: payload aliases b.
func decodeFrame(b []byte) (frame, error) {
	if len(b) == 0 {
		return frame{}, fmt.Errorf("%w: empty", ErrBadFrame)
	}
	switch b[0] {
	case kindHello:
		if len(b) != helloLen {
			return frame{}, fmt.Errorf("%w: hello length %d", ErrBadFrame, len(b))
		}
		if b[17]&^flagResume != 0 {
			return frame{}, fmt.Errorf("%w: unknown hello flags %#02x", ErrBadFrame, b[17])
		}
		return frame{
			kind:   kindHello,
			id:     binary.LittleEndian.Uint64(b[1:]),
			ack:    binary.LittleEndian.Uint64(b[9:]),
			resume: b[17]&flagResume != 0,
		}, nil
	case kindWelcome:
		if len(b) != welcomeLen {
			return frame{}, fmt.Errorf("%w: welcome length %d", ErrBadFrame, len(b))
		}
		return frame{
			kind: kindWelcome,
			id:   binary.LittleEndian.Uint64(b[1:]),
			ack:  binary.LittleEndian.Uint64(b[9:]),
		}, nil
	case kindReject:
		if len(b) < rejectMin {
			return frame{}, fmt.Errorf("%w: reject length %d", ErrBadFrame, len(b))
		}
		return frame{
			kind:    kindReject,
			id:      binary.LittleEndian.Uint64(b[1:]),
			payload: b[rejectMin:],
		}, nil
	case kindData:
		if len(b) < dataHdrLen {
			return frame{}, fmt.Errorf("%w: data length %d", ErrBadFrame, len(b))
		}
		return frame{
			kind:    kindData,
			seq:     binary.LittleEndian.Uint64(b[1:]),
			ack:     binary.LittleEndian.Uint64(b[9:]),
			payload: b[dataHdrLen:],
		}, nil
	case kindAck:
		if len(b) != ackLen {
			return frame{}, fmt.Errorf("%w: ack length %d", ErrBadFrame, len(b))
		}
		return frame{kind: kindAck, ack: binary.LittleEndian.Uint64(b[1:])}, nil
	default:
		return frame{}, fmt.Errorf("%w: unknown kind %#02x", ErrBadFrame, b[0])
	}
}

// encodeHello appends a hello frame to dst.
func encodeHello(dst []byte, id, delivered uint64, resume bool) []byte {
	dst = append(dst, kindHello)
	dst = binary.LittleEndian.AppendUint64(dst, id)
	dst = binary.LittleEndian.AppendUint64(dst, delivered)
	var flags byte
	if resume {
		flags |= flagResume
	}
	return append(dst, flags)
}

// encodeWelcome appends a welcome frame to dst.
func encodeWelcome(dst []byte, id, delivered uint64) []byte {
	dst = append(dst, kindWelcome)
	dst = binary.LittleEndian.AppendUint64(dst, id)
	return binary.LittleEndian.AppendUint64(dst, delivered)
}

// encodeReject appends a reject frame to dst.
func encodeReject(dst []byte, id uint64, reason string) []byte {
	dst = append(dst, kindReject)
	dst = binary.LittleEndian.AppendUint64(dst, id)
	return append(dst, reason...)
}

// putDataHeader writes the data frame header into buf[:dataHdrLen]; the
// payload follows in the same buffer. In-place so the send path can fill a
// pooled buffer without a second copy or an allocation.
func putDataHeader(buf []byte, seq, ack uint64) {
	buf[0] = kindData
	binary.LittleEndian.PutUint64(buf[1:], seq)
	binary.LittleEndian.PutUint64(buf[9:], ack)
}

// putAck writes an ack frame into buf[:ackLen].
func putAck(buf []byte, ack uint64) {
	buf[0] = kindAck
	binary.LittleEndian.PutUint64(buf[1:], ack)
}
