package session

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"mxn/internal/bufpool"
	"mxn/internal/transport"
)

// poolBalanced polls until the process-wide bufpool Get/Put balance has
// returned to baseline: replay buffers are freed by asynchronous acks or
// by teardown, so a snapshot taken immediately after the last operation
// can transiently run hot.
func poolBalanced(t *testing.T, baseline int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		// d < 0 means an earlier test's asynchronous teardown freed
		// buffers after our baseline was sampled — not our leak.
		d := bufpool.Outstanding() - baseline
		if d <= 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("bufpool outstanding buffers: %+d vs baseline (borrowed payload leaked or double-freed)", d)
		}
		time.Sleep(time.Millisecond)
	}
}

// ownedPayload builds a pooled payload the way SendOwned callers do.
func ownedPayload(pattern byte, n int) []byte {
	p := bufpool.Get(n)
	copy(p, payloadBytes(pattern, n))
	return p
}

// payloadBytes is the expected content of ownedPayload(pattern, n),
// built outside the pool so comparisons never touch accounting.
func payloadBytes(pattern byte, n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = pattern ^ byte(i)
	}
	return p
}

// TestSendOwnedRoundTrip: the happy path returns every lent payload to
// the pool once the peer acknowledges (or the session closes), and the
// peer observes head and payload as one contiguous message.
func TestSendOwnedRoundTrip(t *testing.T) {
	baseline := bufpool.Outstanding()

	l, err := Listen("tcp", "127.0.0.1:0", fastCfg())
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	startEcho(t, l)

	c, err := Dial("tcp", l.Addr(), fastCfg())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}

	const rounds = 40
	for i := 0; i < rounds; i++ {
		head := []byte(fmt.Sprintf("hdr-%03d|", i))
		payload := ownedPayload(byte(i), 100+i)
		want := append(append([]byte(nil), head...), payload...)
		if err := c.SendOwned(head, payload); err != nil {
			t.Fatalf("SendOwned %d: %v", i, err)
		}
		// payload is no longer ours — verify via the echo only.
		got, err := c.Recv()
		if err != nil {
			t.Fatalf("Recv %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("echo %d: got % x want % x", i, got, want)
		}
	}
	// Close both ends: teardown must free whatever the asynchronous ack
	// stream had not yet released.
	c.Close()
	l.Close()
	poolBalanced(t, baseline)
}

// TestSendOwnedReplayAcrossFlap: payloads lent to the session survive in
// the replay buffer across a physical-link death and are retransmitted
// bit-identically; the pool balances once the session winds down.
func TestSendOwnedReplayAcrossFlap(t *testing.T) {
	baseline := bufpool.Outstanding()

	l, err := Listen("tcp", "127.0.0.1:0", fastCfg())
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	startEcho(t, l)

	d := &trackedDialer{addr: l.Addr()}
	c, err := NewConn(d.dial, fastCfg())
	if err != nil {
		t.Fatalf("NewConn: %v", err)
	}

	const n = 120
	recvErr := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			got, err := c.Recv()
			if err != nil {
				recvErr <- fmt.Errorf("Recv %d: %w", i, err)
				return
			}
			want := append([]byte(fmt.Sprintf("h%04d", i)), payloadBytes(byte(i), 64)...)
			if !bytes.Equal(got, want) {
				recvErr <- fmt.Errorf("echo %d corrupted", i)
				return
			}
		}
		recvErr <- nil
	}()
	for i := 0; i < n; i++ {
		if err := c.SendOwned([]byte(fmt.Sprintf("h%04d", i)), ownedPayload(byte(i), 64)); err != nil {
			t.Fatalf("SendOwned %d: %v", i, err)
		}
		if i%29 == 11 {
			d.kill() // sever the physical link mid-stream; replay must refill
		}
	}
	select {
	case err := <-recvErr:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("timed out waiting for echoes across flaps")
	}
	c.Close()
	l.Close()
	poolBalanced(t, baseline)
}

// TestSendOwnedOnClosedConn: a refused send still consumes the payload —
// the ownership transfer is unconditional, so the caller never has to
// branch on the error to decide who frees.
func TestSendOwnedOnClosedConn(t *testing.T) {
	l, err := Listen("tcp", "127.0.0.1:0", fastCfg())
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	startEcho(t, l)
	c, err := Dial("tcp", l.Addr(), fastCfg())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	c.Close()

	baseline := bufpool.Outstanding()
	if err := c.SendOwned([]byte("head"), ownedPayload(7, 256)); err == nil {
		t.Fatal("SendOwned on closed conn succeeded")
	}
	poolBalanced(t, baseline)
	l.Close()
}

// TestSendOwnedPeerLostTeardown: when the redial budget is spent and the
// session declares the peer lost, every payload parked in the replay
// buffer is returned to the pool by the teardown path.
func TestSendOwnedPeerLostTeardown(t *testing.T) {
	cfg := fastCfg()
	cfg.MaxAttempts = 3
	cfg.MaxElapsed = 2 * time.Second

	l, err := Listen("tcp", "127.0.0.1:0", cfg)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	startEcho(t, l)
	d := &trackedDialer{addr: l.Addr()}
	c, err := NewConn(d.dial, cfg)
	if err != nil {
		t.Fatalf("NewConn: %v", err)
	}

	baseline := bufpool.Outstanding()
	// Lend a few payloads, then take the listener away for good: the
	// replay buffer now holds borrowed payloads that can never be acked.
	for i := 0; i < 8; i++ {
		if err := c.SendOwned([]byte{byte(i)}, ownedPayload(byte(i), 512)); err != nil {
			t.Fatalf("SendOwned %d: %v", i, err)
		}
	}
	l.Close()
	d.kill()

	// Keep lending until the circuit opens; refused sends must also
	// consume their payloads.
	deadline := time.Now().Add(15 * time.Second)
	for {
		err := c.SendOwned([]byte("x"), ownedPayload(0xEE, 128))
		if err != nil {
			if !errors.Is(err, ErrPeerLost) && !errors.Is(err, transport.ErrClosed) {
				t.Fatalf("SendOwned error = %v, want peer-lost", err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("session never declared the peer lost")
		}
		time.Sleep(10 * time.Millisecond)
	}
	c.Close()
	poolBalanced(t, baseline)
}
