// Package session provides resumable, exactly-once connections over
// internal/transport: the self-healing link substrate beneath the M×N
// out-of-band bridge, the PRMI conn mesh, and remote comm mailboxes.
//
// A session.Conn wraps a physical transport.Conn and a way to get a new
// one (a dial function on the active side, a Listener re-attach on the
// passive side). Every frame is sequence-numbered and held in a bounded
// replay buffer until the peer's cumulative acknowledgement — piggybacked
// on data frames, or standalone when traffic is one-sided — covers it.
// When the physical connection fails, the active side redials with
// jittered exponential backoff, the two sides exchange resume offsets in
// a small handshake, and each replays the frames the other has not
// delivered. Duplicates created by replay are dropped by sequence number,
// so across arbitrary reconnects every frame sent is delivered to the
// peer's application exactly once, in order.
//
// Failure stays a recoverable event until the attempt/deadline budget in
// Config is exhausted; then the circuit opens and every pending and
// future operation reports a *PeerLostError (matching ErrPeerLost and
// transport.ErrClosed), which hands the failure to the liveness and
// fenced-transfer machinery above — link death escalates to rank death
// only when the link is genuinely unrecoverable.
//
// This is the transparent-reconnection idiom of distributed middleware
// for long-running parallel applications; the session layer exists so
// that a multi-tenant coupling daemon can survive the connection churn a
// real network produces without losing or duplicating a single frame.
package session

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mxn/internal/bufpool"
	"mxn/internal/obs"
	"mxn/internal/transport"
)

// Session instruments, registered in the process-default registry (and so
// published through expvar wherever obs.PublishExpvar is mounted).
var (
	mConnsOpen         = obs.Default().Gauge("session.conns_open")
	mReconnects        = obs.Default().Counter("session.reconnects")
	mReconnectAttempts = obs.Default().Counter("session.reconnect_attempts")
	mReconnectFails    = obs.Default().Counter("session.reconnect_failures")
	mReattaches        = obs.Default().Counter("session.reattaches")
	mFramesReplayed    = obs.Default().Counter("session.frames_replayed")
	mDupDropped        = obs.Default().Counter("session.frames_dup_dropped")
	mAcksSent          = obs.Default().Counter("session.acks_sent")
	mPeerLost          = obs.Default().Counter("session.peer_lost")
	mRejects           = obs.Default().Counter("session.rejects")
	mReplayDepth       = obs.Default().Gauge("session.replay_depth")
)

// ErrPeerLost is matched (via errors.Is) by the *PeerLostError every
// operation returns once a session's reconnect budget is exhausted.
var ErrPeerLost = errors.New("session: peer lost")

// PeerLostError reports an unrecoverable session: the reconnect budget
// was spent without re-establishing the link. It matches both ErrPeerLost
// and transport.ErrClosed, so layers written against the transport error
// contract (PRMI's ErrLinkDown mapping, the bridge, comm remote peers)
// see a dead link without importing this package.
type PeerLostError struct {
	SessionID uint64
	Attempts  int           // reconnect attempts spent (0: passive side)
	Elapsed   time.Duration // time since the link went down
	Cause     error         // last underlying failure
}

func (e *PeerLostError) Error() string {
	return fmt.Sprintf("session %#x: peer lost after %d reconnect attempts over %v: %v",
		e.SessionID, e.Attempts, e.Elapsed.Round(time.Millisecond), e.Cause)
}

func (e *PeerLostError) Unwrap() error { return e.Cause }

func (e *PeerLostError) Is(target error) bool {
	return target == ErrPeerLost || target == transport.ErrClosed
}

// RejectedError reports that the peer's listener refused to resume the
// session (typically because it restarted and lost the session state).
// Resuming without state would void the exactly-once guarantee, so this
// is terminal: the circuit opens immediately instead of burning the
// remaining reconnect budget.
type RejectedError struct {
	SessionID uint64
	Reason    string
}

func (e *RejectedError) Error() string {
	return fmt.Sprintf("session %#x: peer rejected resume: %s", e.SessionID, e.Reason)
}

// DialFunc obtains a fresh physical connection. It is called for the
// initial connect and for every reconnect attempt; ctx carries the
// per-attempt handshake timeout.
type DialFunc func(ctx context.Context) (transport.Conn, error)

// Config tunes a session. The zero value selects the defaults noted on
// each field.
type Config struct {
	// MaxAttempts bounds reconnect attempts per outage (default 8). The
	// budget resets once a reconnect succeeds: a flaky link that keeps
	// coming back keeps getting repaired; only a continuous outage opens
	// the circuit.
	MaxAttempts int
	// MaxElapsed bounds the wall-clock length of one outage (default
	// 30s). On the passive (listener) side, where no redial is possible,
	// it is the resume window: how long a downed session waits for the
	// peer to come back before opening the circuit.
	MaxElapsed time.Duration
	// BaseBackoff and MaxBackoff shape the jittered exponential backoff
	// between reconnect attempts (defaults 20ms and 2s).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// HandshakeTimeout bounds each dial + hello/welcome exchange
	// (default 5s).
	HandshakeTimeout time.Duration
	// MaxReplayFrames and MaxReplayBytes bound the replay buffer of
	// unacknowledged sent frames (defaults 1024 frames, 8 MiB). Send
	// blocks when the buffer is full — the session's flow control. A
	// single frame larger than MaxReplayBytes is always admitted (alone).
	MaxReplayFrames int
	MaxReplayBytes  int
	// AckEvery and AckBytes set how much one-sided traffic the receive
	// side absorbs before volunteering a standalone acknowledgement
	// (defaults 16 frames, 256 KiB). Both are clamped to half the
	// corresponding replay bound so a silent receiver can never starve
	// the peer's replay buffer into a deadlock.
	AckEvery int
	AckBytes int
}

func (c Config) withDefaults() Config {
	def := func(v *int, d int) {
		if *v <= 0 {
			*v = d
		}
	}
	defD := func(v *time.Duration, d time.Duration) {
		if *v <= 0 {
			*v = d
		}
	}
	def(&c.MaxAttempts, 8)
	defD(&c.MaxElapsed, 30*time.Second)
	defD(&c.BaseBackoff, 20*time.Millisecond)
	defD(&c.MaxBackoff, 2*time.Second)
	defD(&c.HandshakeTimeout, 5*time.Second)
	def(&c.MaxReplayFrames, 1024)
	def(&c.MaxReplayBytes, 8<<20)
	def(&c.AckEvery, 16)
	def(&c.AckBytes, 256<<10)
	if c.AckEvery > c.MaxReplayFrames/2 {
		c.AckEvery = max(c.MaxReplayFrames/2, 1)
	}
	if c.AckBytes > c.MaxReplayBytes/2 {
		c.AckBytes = max(c.MaxReplayBytes/2, 1)
	}
	return c
}

// replayEntry is one unacknowledged sent frame, keyed by its sequence
// number. hdr is a pooled buffer holding the session data header plus
// any caller head bytes; data, when non-nil, is a pooled payload buffer
// retained by reference (SendOwned) rather than re-copied into the
// frame. The frame's wire bytes are hdr ++ data. Both buffers return to
// the pool exactly once, when the peer's cumulative ack covers the entry
// or the session tears down.
type replayEntry struct {
	seq  uint64
	hdr  []byte
	data []byte
}

// size is the entry's contribution to the replay-byte budget.
func (e replayEntry) size() int { return len(e.hdr) + len(e.data) }

// replayRing is a fixed-capacity circular queue of replay entries,
// allocated once at session construction so steady-state pushes and pops
// never allocate.
type replayRing struct {
	ents []replayEntry
	head int // index of the oldest entry
	n    int
}

func (r *replayRing) init(capacity int) { r.ents = make([]replayEntry, capacity) }
func (r *replayRing) len() int          { return r.n }

// at returns the i-th oldest entry.
func (r *replayRing) at(i int) replayEntry { return r.ents[(r.head+i)%len(r.ents)] }

// push appends an entry; the caller guarantees space (flow control blocks
// Send before the ring fills).
func (r *replayRing) push(e replayEntry) {
	r.ents[(r.head+r.n)%len(r.ents)] = e
	r.n++
}

// popFront removes and returns the oldest entry.
func (r *replayRing) popFront() replayEntry {
	e := r.ents[r.head]
	r.ents[r.head] = replayEntry{}
	r.head = (r.head + 1) % len(r.ents)
	r.n--
	return e
}

// Conn is a resumable, exactly-once connection. It implements
// transport.Conn and is safe for the same concurrent use (one sender and
// one receiver; internal state is mutex-guarded, so stricter callers may
// also use it from multiple goroutines per direction).
type Conn struct {
	cfg  Config
	id   uint64
	dial DialFunc  // nil on the passive (listener-owned) side
	lst  *Listener // non-nil on the passive side

	// wmu serializes writes to the current physical connection (app
	// sends, standalone acks, handshake replays). Never held together
	// with mu across a blocking operation.
	wmu sync.Mutex
	// attachMu serializes passive re-attaches so two racing resumes of
	// the same session cannot interleave their replays.
	attachMu sync.Mutex

	mu      sync.Mutex
	cond    *sync.Cond
	cur     transport.Conn // live physical conn; nil while down
	gen     uint64         // incarnation counter, bumped per install
	closed  bool
	dead    error // *PeerLostError once the circuit opens
	counted bool  // conns_open gauge accounting

	// Sender state: frames buffered until the peer acknowledges them.
	nextSeq     uint64
	replay      replayRing
	replayBytes int
	scratch     []replayEntry // reused batch during replays
	iov         net.Buffers   // scatter-gather scratch, guarded by wmu
	// While an install's replay is in flight, acknowledged buffers are
	// parked here instead of returned to the pool: an ack racing the
	// replay must not recycle a buffer the replay is still writing to
	// the wire.
	installing  bool
	pendingFree [][]byte

	// Receiver state. lastDelivered is the cumulative acknowledgement we
	// owe the peer: the highest in-order sequence enqueued to the inbox.
	lastDelivered uint64
	recvSinceAck  int
	bytesSinceAck int
	inbox         [][]byte
	inboxHead     int

	downTimer *time.Timer // passive resume deadline
}

// errSessionStopped is an internal signal that an install lost the race
// with Close or circuit-open; no recovery should follow it.
var errSessionStopped = errors.New("session: stopped")

// idFallback backs newSessionID if crypto/rand fails.
var idFallback atomic.Uint64

func newSessionID() uint64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		return idFallback.Add(1) | 1<<63
	}
	return binary.LittleEndian.Uint64(b[:]) | 1 // nonzero
}

// NewConn establishes a session by dialing. The initial connect gets the
// same attempt/deadline budget as a reconnect, so it tolerates racing the
// peer's startup; if the budget is spent, the error is returned (no Conn
// exists yet, so no circuit opens).
func NewConn(dial DialFunc, cfg Config) (*Conn, error) {
	c := &Conn{cfg: cfg.withDefaults(), id: newSessionID(), dial: dial}
	c.cond = sync.NewCond(&c.mu)
	c.replay.init(c.cfg.MaxReplayFrames)

	start := time.Now()
	backoff := c.cfg.BaseBackoff
	var cause error
	for attempt := 1; ; attempt++ {
		if attempt > c.cfg.MaxAttempts || time.Since(start) > c.cfg.MaxElapsed {
			return nil, fmt.Errorf("session: connect failed after %d attempts: %w", attempt-1, cause)
		}
		if attempt > 1 {
			sleepJitter(backoff)
			backoff = minDuration(backoff*2, c.cfg.MaxBackoff)
		}
		nc, err := c.dialOnce()
		if err != nil {
			cause = err
			continue
		}
		peerDelivered, err := c.handshake(nc, false)
		if err != nil {
			nc.Close()
			var rej *RejectedError
			if errors.As(err, &rej) {
				return nil, err
			}
			cause = err
			continue
		}
		if err := c.installConn(nc, peerDelivered); err != nil {
			nc.Close()
			return nil, err
		}
		c.mu.Lock()
		c.counted = true
		c.mu.Unlock()
		mConnsOpen.Add(1)
		return c, nil
	}
}

// Dial establishes a session over a fresh transport connection to addr,
// redialing the same address on every reconnect.
func Dial(network, addr string, cfg Config) (*Conn, error) {
	return NewConn(func(ctx context.Context) (transport.Conn, error) {
		return transport.DialContext(ctx, network, addr)
	}, cfg)
}

// newPassiveConn builds the listener-owned side of a session. The caller
// (the listener's handshake) installs the first physical conn.
func newPassiveConn(l *Listener, id uint64, cfg Config) *Conn {
	c := &Conn{cfg: cfg, id: id, lst: l}
	c.cond = sync.NewCond(&c.mu)
	c.replay.init(c.cfg.MaxReplayFrames)
	return c
}

// ID returns the session's identity (stable across reconnects).
func (c *Conn) ID() uint64 { return c.id }

func (c *Conn) dialOnce() (transport.Conn, error) {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.HandshakeTimeout)
	defer cancel()
	return c.dial(ctx)
}

// handshake runs the dialer side of the hello/welcome exchange on a fresh
// physical conn, returning the peer's resume offset.
func (c *Conn) handshake(nc transport.Conn, resume bool) (uint64, error) {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.HandshakeTimeout)
	defer cancel()
	c.mu.Lock()
	delivered := c.lastDelivered
	c.mu.Unlock()
	if err := nc.SendContext(ctx, encodeHello(make([]byte, 0, helloLen), c.id, delivered, resume)); err != nil {
		return 0, fmt.Errorf("session: hello: %w", err)
	}
	msg, err := nc.RecvContext(ctx)
	if err != nil {
		return 0, fmt.Errorf("session: welcome: %w", err)
	}
	f, err := decodeFrame(msg)
	if err != nil {
		return 0, err
	}
	switch f.kind {
	case kindWelcome:
		if f.id != c.id {
			return 0, fmt.Errorf("session: welcome for session %#x, want %#x", f.id, c.id)
		}
		return f.ack, nil
	case kindReject:
		return 0, &RejectedError{SessionID: f.id, Reason: string(f.payload)}
	default:
		return 0, fmt.Errorf("session: expected welcome, got frame kind %#02x", f.kind)
	}
}

// installConn trims the replay buffer to the peer's resume offset,
// replays everything it has not delivered, and promotes nc to the live
// connection. The pump starts before the replay so the peer's concurrent
// replay in the other direction is drained — two large simultaneous
// resumes must not deadlock on full socket buffers; acks arriving during
// the replay park their buffers in pendingFree instead of recycling them
// out from under the in-flight writes. Frames buffered by concurrent
// Sends during the replay are caught up before the promotion, so nothing
// is ever left unsent.
func (c *Conn) installConn(nc transport.Conn, peerDelivered uint64) error {
	c.mu.Lock()
	if c.closed || c.dead != nil {
		c.mu.Unlock()
		return errSessionStopped
	}
	c.installing = true
	c.ackUpToLocked(peerDelivered)
	c.mu.Unlock()
	go c.pump(nc)
	lastSent := peerDelivered
	for {
		c.mu.Lock()
		if c.closed || c.dead != nil {
			c.finishInstallLocked()
			c.mu.Unlock()
			return errSessionStopped
		}
		batch := c.scratch[:0]
		for i := 0; i < c.replay.len(); i++ {
			if e := c.replay.at(i); e.seq > lastSent {
				batch = append(batch, e)
				lastSent = e.seq
			}
		}
		c.scratch = batch[:0]
		if len(batch) == 0 {
			c.cur = nc
			c.gen++
			if c.downTimer != nil {
				c.downTimer.Stop()
				c.downTimer = nil
			}
			c.finishInstallLocked()
			c.cond.Broadcast()
			c.mu.Unlock()
			return nil
		}
		c.mu.Unlock()
		c.wmu.Lock()
		var err error
		for _, e := range batch {
			if err = c.writeEntry(nc, e.hdr, e.data); err != nil {
				break
			}
		}
		c.wmu.Unlock()
		if err != nil {
			c.mu.Lock()
			c.finishInstallLocked()
			c.mu.Unlock()
			return fmt.Errorf("session: replay: %w", err)
		}
		mFramesReplayed.Add(uint64(len(batch)))
	}
}

// finishInstallLocked ends an install: buffers whose acknowledgement
// raced the replay are now safely off the wire and return to the pool.
func (c *Conn) finishInstallLocked() {
	c.installing = false
	for i, b := range c.pendingFree {
		bufpool.Put(b)
		c.pendingFree[i] = nil
	}
	c.pendingFree = c.pendingFree[:0]
}

// connFailed records the loss of a physical connection and starts
// recovery: a redial loop on the active side, a resume deadline on the
// passive side. Every path that observes a failure funnels here; only the
// caller that actually transitions the live conn to down starts recovery.
func (c *Conn) connFailed(failed transport.Conn, cause error) {
	c.mu.Lock()
	if c.closed || c.dead != nil || c.cur != failed {
		c.mu.Unlock()
		return
	}
	c.cur = nil
	gen := c.gen
	c.mu.Unlock()
	failed.Close()
	if c.dial != nil {
		go c.redialLoop(cause)
	} else {
		c.armResumeDeadline(gen, cause)
	}
}

// armResumeDeadline opens the circuit if the passive side is still down
// when the resume window closes. The generation check self-disarms a
// timer from an outage that has since been repaired.
func (c *Conn) armResumeDeadline(gen uint64, cause error) {
	t := time.AfterFunc(c.cfg.MaxElapsed, func() {
		c.mu.Lock()
		expired := c.cur == nil && !c.closed && c.dead == nil && c.gen == gen
		c.mu.Unlock()
		if expired {
			c.markDead(0, c.cfg.MaxElapsed, fmt.Errorf("no resume within %v: %w", c.cfg.MaxElapsed, cause))
		}
	})
	c.mu.Lock()
	if c.downTimer != nil {
		c.downTimer.Stop()
	}
	c.downTimer = t
	if c.closed || c.dead != nil || c.cur != nil {
		// Lost a race with Close/attach; the gen check would catch it,
		// but stop the timer promptly anyway.
		t.Stop()
	}
	c.mu.Unlock()
}

// redialLoop is the active side's recovery: jittered exponential backoff
// dials until the session resumes or the budget opens the circuit.
func (c *Conn) redialLoop(cause error) {
	start := time.Now()
	backoff := c.cfg.BaseBackoff
	for attempt := 1; ; attempt++ {
		c.mu.Lock()
		stopped := c.closed || c.dead != nil
		c.mu.Unlock()
		if stopped {
			return
		}
		if attempt > c.cfg.MaxAttempts || time.Since(start) > c.cfg.MaxElapsed {
			c.markDead(attempt-1, time.Since(start), cause)
			return
		}
		sleepJitter(backoff)
		backoff = minDuration(backoff*2, c.cfg.MaxBackoff)
		mReconnectAttempts.Inc()
		nc, err := c.dialOnce()
		if err != nil {
			mReconnectFails.Inc()
			cause = err
			continue
		}
		peerDelivered, err := c.handshake(nc, true)
		if err != nil {
			nc.Close()
			var rej *RejectedError
			if errors.As(err, &rej) {
				c.markDead(attempt, time.Since(start), err)
				return
			}
			mReconnectFails.Inc()
			cause = err
			continue
		}
		if err := c.installConn(nc, peerDelivered); err != nil {
			nc.Close()
			if errors.Is(err, errSessionStopped) {
				return
			}
			mReconnectFails.Inc()
			cause = err
			continue
		}
		mReconnects.Inc()
		obs.Trace().Span(obs.EvRedial, "session", -1, -1, 0, start)
		return
	}
}

// attach resumes a downed (or stale) passive session on a fresh physical
// connection accepted by the listener: welcome with our resume offset,
// replay what the peer missed, promote.
func (c *Conn) attach(nc transport.Conn, peerDelivered uint64) {
	c.attachMu.Lock()
	defer c.attachMu.Unlock()
	c.mu.Lock()
	if c.closed || c.dead != nil {
		c.mu.Unlock()
		nc.Close()
		return
	}
	if old := c.cur; old != nil {
		// The peer redialed while we still considered the link live: the
		// old incarnation is stale. Its pump observes the close and
		// finds it is no longer current.
		c.cur = nil
		c.mu.Unlock()
		old.Close()
		c.mu.Lock()
	}
	delivered := c.lastDelivered
	gen := c.gen
	c.mu.Unlock()

	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.HandshakeTimeout)
	err := nc.SendContext(ctx, encodeWelcome(make([]byte, 0, welcomeLen), c.id, delivered))
	cancel()
	if err == nil {
		err = c.installConn(nc, peerDelivered)
	}
	if err != nil {
		nc.Close()
		if !errors.Is(err, errSessionStopped) {
			c.armResumeDeadline(gen, err)
		}
		return
	}
	mReattaches.Inc()
}

// markDead opens the circuit: every pending and future operation reports
// the same *PeerLostError, and the replay buffer returns to the pool.
func (c *Conn) markDead(attempts int, elapsed time.Duration, cause error) {
	c.mu.Lock()
	if c.dead != nil || c.closed {
		c.mu.Unlock()
		return
	}
	c.dead = &PeerLostError{SessionID: c.id, Attempts: attempts, Elapsed: elapsed, Cause: cause}
	c.freeReplayLocked()
	c.cond.Broadcast()
	c.mu.Unlock()
	mPeerLost.Inc()
	if c.lst != nil {
		c.lst.remove(c.id)
	}
}

// ackUpToLocked releases replay entries covered by a cumulative ack.
// During an install the buffers are parked rather than pooled (see
// installConn); a frame already snapshot into a replay batch may still be
// sent after its ack lands — the receiver drops it by sequence number.
func (c *Conn) ackUpToLocked(ack uint64) {
	freed := false
	for c.replay.len() > 0 && c.replay.at(0).seq <= ack {
		e := c.replay.popFront()
		c.replayBytes -= e.size()
		if c.installing {
			c.pendingFree = append(c.pendingFree, e.hdr)
			if e.data != nil {
				c.pendingFree = append(c.pendingFree, e.data)
			}
		} else {
			bufpool.Put(e.hdr)
			bufpool.Put(e.data)
		}
		mReplayDepth.Add(-1)
		freed = true
	}
	if freed {
		c.cond.Broadcast()
	}
}

func (c *Conn) freeReplayLocked() {
	c.ackUpToLocked(^uint64(0))
}

// replayFullLocked reports whether Send must block for flow control. A
// single frame larger than MaxReplayBytes is admitted when alone, so an
// oversized message can never wedge an idle session.
func (c *Conn) replayFullLocked() bool {
	return c.replay.len() >= c.cfg.MaxReplayFrames ||
		(c.replay.len() > 0 && c.replayBytes >= c.cfg.MaxReplayBytes)
}

// pump is the per-incarnation reader: it drains the physical connection,
// releases acknowledged replay entries, enqueues in-order data to the
// inbox, drops replay duplicates, and volunteers standalone acks when
// one-sided traffic crosses the ack thresholds.
func (c *Conn) pump(conn transport.Conn) {
	for {
		msg, err := conn.Recv()
		if err != nil {
			c.connFailed(conn, err)
			return
		}
		f, derr := decodeFrame(msg)
		if derr != nil {
			c.connFailed(conn, derr)
			return
		}
		switch f.kind {
		case kindAck:
			c.mu.Lock()
			c.ackUpToLocked(f.ack)
			c.mu.Unlock()
		case kindData:
			c.mu.Lock()
			c.ackUpToLocked(f.ack)
			switch {
			case f.seq == c.lastDelivered+1:
				c.lastDelivered = f.seq
				c.inbox = append(c.inbox, f.payload)
				c.recvSinceAck++
				c.bytesSinceAck += len(f.payload)
				var ackNow uint64
				sendAck := false
				if c.recvSinceAck >= c.cfg.AckEvery || c.bytesSinceAck >= c.cfg.AckBytes {
					ackNow, sendAck = c.lastDelivered, true
					c.recvSinceAck, c.bytesSinceAck = 0, 0
				}
				c.cond.Broadcast()
				c.mu.Unlock()
				if sendAck {
					c.sendAck(conn, ackNow)
				}
			case f.seq <= c.lastDelivered:
				// A replay duplicate: the peer resumed from an offset we
				// had already passed. Exactly-once is enforced here.
				c.mu.Unlock()
				mDupDropped.Inc()
			default:
				// A gap is a protocol violation (the transport is ordered
				// and resumes replay from our offset); treat it as link
				// failure so a reconnect re-synchronizes both sides.
				c.mu.Unlock()
				c.connFailed(conn, fmt.Errorf("session: sequence gap: got %d, delivered %d", f.seq, c.lastDelivered))
				return
			}
		default:
			c.connFailed(conn, fmt.Errorf("session: unexpected frame kind %#02x on established session", f.kind))
			return
		}
	}
}

// sendAck writes a standalone cumulative acknowledgement, best-effort: a
// failure is handled as a link failure, and the resume handshake carries
// the offset anyway.
func (c *Conn) sendAck(conn transport.Conn, ack uint64) {
	var b [ackLen]byte
	putAck(b[:], ack)
	c.wmu.Lock()
	err := conn.Send(b[:])
	c.wmu.Unlock()
	if err != nil {
		c.connFailed(conn, err)
		return
	}
	mAcksSent.Inc()
}

// Send transmits one message with exactly-once delivery across
// reconnects. It blocks only for flow control (replay buffer full); the
// frame is buffered before any physical write, so a link failure after
// Send returns cannot lose it. Send reports an error only once the
// circuit is open (*PeerLostError) or the session is closed.
func (c *Conn) Send(msg []byte) error {
	return c.SendContext(context.Background(), msg)
}

// SendContext is Send with the flow-control wait bounded by ctx. Deadline
// expiry reports transport.ErrTimeout (wrapped); the physical write
// itself is not bounded — an abandoned mid-frame write would poison the
// stream, and reconnection already bounds a stuck link.
func (c *Conn) SendContext(ctx context.Context, msg []byte) error {
	var stop func() bool
	if ctx.Done() != nil {
		stop = context.AfterFunc(ctx, func() {
			c.mu.Lock()
			c.cond.Broadcast()
			c.mu.Unlock()
		})
		defer stop()
	}
	c.mu.Lock()
	for c.replayFullLocked() && !c.closed && c.dead == nil && ctx.Err() == nil {
		c.cond.Wait()
	}
	switch {
	case c.closed:
		c.mu.Unlock()
		return transport.ErrClosed
	case c.dead != nil:
		err := c.dead
		c.mu.Unlock()
		return err
	case ctx.Err() != nil:
		c.mu.Unlock()
		return ctxErr(ctx)
	}
	c.nextSeq++
	seq := c.nextSeq
	buf := bufpool.Get(dataHdrLen + len(msg))
	putDataHeader(buf, seq, c.lastDelivered)
	copy(buf[dataHdrLen:], msg)
	c.recvSinceAck, c.bytesSinceAck = 0, 0 // the header piggybacks the ack
	c.replay.push(replayEntry{seq: seq, hdr: buf})
	c.replayBytes += len(buf)
	mReplayDepth.Add(1)
	conn := c.cur
	c.mu.Unlock()
	if conn == nil {
		// Down: recovery is already running and will replay this frame.
		return nil
	}
	c.wmu.Lock()
	err := conn.Send(buf)
	c.wmu.Unlock()
	if err != nil {
		// The frame is in the replay buffer; the resume replays it.
		c.connFailed(conn, err)
	}
	return nil
}

// SendOwned implements transport.OwnedSender: the message's bytes are
// head followed by payload, with ownership of payload (a bufpool buffer)
// transferring to the session on the call. The session header and head
// go into one small pooled buffer; payload is retained by reference in
// the replay ring — no payload byte is copied between here and the
// socket when the physical transport supports scatter-gather. The
// payload returns to the pool exactly once: when the peer's cumulative
// ack covers the frame, when the session tears down (Close, circuit
// open), or right here if the send is refused. Delivery semantics are
// identical to Send.
func (c *Conn) SendOwned(head, payload []byte) error {
	c.mu.Lock()
	for c.replayFullLocked() && !c.closed && c.dead == nil {
		c.cond.Wait()
	}
	switch {
	case c.closed:
		c.mu.Unlock()
		bufpool.Put(payload)
		return transport.ErrClosed
	case c.dead != nil:
		err := c.dead
		c.mu.Unlock()
		bufpool.Put(payload)
		return err
	}
	c.nextSeq++
	seq := c.nextSeq
	if len(payload) == 0 {
		payload = nil
	}
	hdr := bufpool.Get(dataHdrLen + len(head))
	putDataHeader(hdr, seq, c.lastDelivered)
	copy(hdr[dataHdrLen:], head)
	c.recvSinceAck, c.bytesSinceAck = 0, 0 // the header piggybacks the ack
	c.replay.push(replayEntry{seq: seq, hdr: hdr, data: payload})
	c.replayBytes += len(hdr) + len(payload)
	mReplayDepth.Add(1)
	conn := c.cur
	c.mu.Unlock()
	if conn == nil {
		// Down: recovery is already running and will replay this frame.
		return nil
	}
	c.wmu.Lock()
	err := c.writeEntry(conn, hdr, payload)
	c.wmu.Unlock()
	if err != nil {
		// The frame is in the replay buffer; the resume replays it.
		c.connFailed(conn, err)
	}
	return nil
}

// writeEntry writes one buffered frame to the physical connection; the
// caller holds wmu. Two-segment entries take the scatter-gather path
// when the transport supports it and are flattened through a pooled
// buffer (one copy, released immediately) when it does not.
func (c *Conn) writeEntry(conn transport.Conn, hdr, data []byte) error {
	if data == nil {
		return conn.Send(hdr)
	}
	if vw, ok := conn.(transport.VectorWriter); ok {
		c.iov = append(c.iov[:0], hdr, data)
		err := vw.SendV(c.iov)
		c.iov[0], c.iov[1] = nil, nil
		return err
	}
	flat := bufpool.Get(len(hdr) + len(data))
	n := copy(flat, hdr)
	copy(flat[n:], data)
	err := conn.Send(flat)
	bufpool.Put(flat)
	return err
}

// Recv blocks until the next in-order message is available and returns
// it. Frames keep arriving across reconnects; Recv fails only once the
// circuit is open or the session is closed.
func (c *Conn) Recv() ([]byte, error) {
	return c.RecvContext(context.Background())
}

// RecvContext is Recv bounded by ctx: expiry reports transport.ErrTimeout
// (wrapped), cancellation reports ctx.Err().
func (c *Conn) RecvContext(ctx context.Context) ([]byte, error) {
	var stop func() bool
	if ctx.Done() != nil {
		stop = context.AfterFunc(ctx, func() {
			c.mu.Lock()
			c.cond.Broadcast()
			c.mu.Unlock()
		})
		defer stop()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.inboxHead < len(c.inbox) {
			m := c.inbox[c.inboxHead]
			c.inbox[c.inboxHead] = nil
			c.inboxHead++
			if c.inboxHead == len(c.inbox) {
				c.inbox = c.inbox[:0]
				c.inboxHead = 0
			} else if c.inboxHead >= 256 {
				n := copy(c.inbox, c.inbox[c.inboxHead:])
				c.inbox = c.inbox[:n]
				c.inboxHead = 0
			}
			return m, nil
		}
		if c.closed {
			return nil, transport.ErrClosed
		}
		if c.dead != nil {
			return nil, c.dead
		}
		if ctx.Err() != nil {
			return nil, ctxErr(ctx)
		}
		c.cond.Wait()
	}
}

// Close releases the session on this side. Pending and future operations
// report transport.ErrClosed; the peer sees a link failure and, unable to
// resume (the listener forgets closed sessions), eventually opens its
// circuit.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conn := c.cur
	c.cur = nil
	c.freeReplayLocked()
	if c.downTimer != nil {
		c.downTimer.Stop()
		c.downTimer = nil
	}
	counted := c.counted
	c.cond.Broadcast()
	c.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	if c.lst != nil {
		c.lst.remove(c.id)
	}
	if counted {
		mConnsOpen.Add(-1)
	}
	return nil
}

// Down reports whether the session is currently between physical
// connections (recovering), and Dead whether the circuit has opened.
func (c *Conn) Down() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cur == nil && !c.closed && c.dead == nil
}

// Err returns the terminal error once the circuit has opened, else nil.
func (c *Conn) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dead
}

// ctxErr maps a finished context to the transport error contract.
func ctxErr(ctx context.Context) error {
	if err := ctx.Err(); errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("%w: %v", transport.ErrTimeout, err)
	}
	return ctx.Err()
}

// sleepJitter sleeps between half and the full backoff, decorrelating
// reconnect storms from many sessions that failed together.
func sleepJitter(d time.Duration) {
	if d <= 0 {
		return
	}
	half := int64(d) / 2
	time.Sleep(time.Duration(half + rand.Int63n(half+1)))
}

func minDuration(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}
