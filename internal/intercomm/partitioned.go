package intercomm

import (
	"fmt"

	"mxn/internal/comm"
	"mxn/internal/dad"
	"mxn/internal/wire"
)

// PartitionedDescriptor is the second half of InterComm's descriptor
// taxonomy (Section 4.4): "For block distributions, the data structure
// required to describe the distribution is relatively small, so can be
// replicated on each of the processes... For explicit distributions,
// there is a one-to-one correspondence between the elements of the array
// and the number of entries in the data descriptor, therefore, the
// descriptor itself is rather large and must be partitioned across the
// participating processes."
//
// Each rank holds only its own patch list; nobody stores the global
// tiling. Building a communication schedule that involves the
// distribution then requires communication: Assemble performs the
// collective exchange and returns the full explicit template (validated:
// the union of per-rank patches must tile the domain).
type PartitionedDescriptor struct {
	Dims    []int
	NumProc int
	// Local is this rank's patch list. Patch owners must equal the
	// holding rank.
	Local []dad.Patch
}

// NewPartitionedDescriptor validates the local piece held by rank.
func NewPartitionedDescriptor(dims []int, nproc, rank int, local []dad.Patch) (*PartitionedDescriptor, error) {
	if nproc < 1 || rank < 0 || rank >= nproc {
		return nil, fmt.Errorf("intercomm: rank %d of %d", rank, nproc)
	}
	for _, p := range local {
		if p.Owner != rank {
			return nil, fmt.Errorf("intercomm: partitioned descriptor on rank %d holds patch %v owned by %d", rank, p, p.Owner)
		}
		if len(p.Lo) != len(dims) {
			return nil, fmt.Errorf("intercomm: patch %v arity differs from dims %v", p, dims)
		}
	}
	return &PartitionedDescriptor{
		Dims:    append([]int(nil), dims...),
		NumProc: nproc,
		Local:   append([]dad.Patch(nil), local...),
	}, nil
}

// LocalFootprint returns the wire size in bytes of this rank's piece —
// the per-process storage cost of partitioning, to compare against
// DescriptorFootprint of the full replicated template.
func (pd *PartitionedDescriptor) LocalFootprint() int {
	e := wire.NewEncoder(nil)
	encodePatches(e, pd.Local)
	return e.Len()
}

// Assemble gathers every rank's patches and builds the full explicit
// template — the communication step InterComm pays when a schedule
// involves a partitioned descriptor. Collective: every rank of c calls it
// with its own descriptor; all receive an equivalent template. The
// assembled tiling is validated, so inconsistent per-rank pieces (overlap
// or gaps) are detected everywhere.
func (pd *PartitionedDescriptor) Assemble(c *comm.Comm) (*dad.Template, error) {
	if c.Size() != pd.NumProc {
		return nil, fmt.Errorf("intercomm: descriptor spans %d ranks, communicator has %d", pd.NumProc, c.Size())
	}
	e := wire.NewEncoder(nil)
	encodePatches(e, pd.Local)
	all := c.Allgather(e.Bytes())
	var patches []dad.Patch
	for r, payload := range all {
		buf, ok := payload.([]byte)
		if !ok {
			return nil, fmt.Errorf("intercomm: rank %d contributed %T", r, payload)
		}
		ps, err := decodePatches(wire.NewDecoder(buf))
		if err != nil {
			return nil, fmt.Errorf("intercomm: rank %d piece: %w", r, err)
		}
		patches = append(patches, ps...)
	}
	return dad.NewExplicitTemplate(pd.Dims, pd.NumProc, patches)
}

func encodePatches(e *wire.Encoder, ps []dad.Patch) {
	e.PutUvarint(uint64(len(ps)))
	for _, p := range ps {
		e.PutInts(p.Lo)
		e.PutInts(p.Hi)
		e.PutInt(p.Owner)
	}
}

func decodePatches(d *wire.Decoder) ([]dad.Patch, error) {
	n := d.Uvarint()
	if d.Err() != nil {
		return nil, d.Err()
	}
	out := make([]dad.Patch, 0, n)
	for i := uint64(0); i < n; i++ {
		p := dad.Patch{Lo: d.Ints(), Hi: d.Ints(), Owner: d.Int()}
		if d.Err() != nil {
			return nil, d.Err()
		}
		out = append(out, p)
	}
	return out, nil
}
