package intercomm

import (
	"sync"
	"testing"
	"time"

	"mxn/internal/comm"
	"mxn/internal/dad"
)

func blockTpl(t *testing.T, n, p int) *dad.Template {
	t.Helper()
	tpl, err := dad.NewTemplate([]int{n}, []dad.AxisDist{dad.BlockAxis(p)})
	if err != nil {
		t.Fatal(err)
	}
	return tpl
}

// setup declares sim.temp (2 ranks) feeding viz.temp (3 ranks).
func setup(t *testing.T, match MatchKind, interval int) (*Coordinator, *Program, *Program) {
	t.Helper()
	c := NewCoordinator()
	sim := c.AddProgram("sim")
	viz := c.AddProgram("viz")
	if err := sim.DeclareArray("temp", blockTpl(t, 12, 2)); err != nil {
		t.Fatal(err)
	}
	if err := viz.DeclareArray("temp", blockTpl(t, 12, 3)); err != nil {
		t.Fatal(err)
	}
	if err := c.AddRule(Rule{
		SrcProgram: "sim", SrcArray: "temp",
		DstProgram: "viz", DstArray: "temp",
		Match: match, Interval: interval,
	}); err != nil {
		t.Fatal(err)
	}
	return c, sim, viz
}

// exportAll publishes one timestamp from every sim rank, values g*scale.
func exportAll(t *testing.T, sim *Program, ts int, scale float64) {
	t.Helper()
	for r := 0; r < 2; r++ {
		local := make([]float64, 6)
		for li := range local {
			local[li] = float64(r*6+li) * scale
		}
		if err := sim.Export("temp", ts, r, local); err != nil {
			t.Fatal(err)
		}
	}
}

// importAll gathers all viz fragments for a timestamp.
func importAll(t *testing.T, viz *Program, ts int) (got []float64, usedTime int) {
	t.Helper()
	got = make([]float64, 12)
	for r := 0; r < 3; r++ {
		buf := make([]float64, 4)
		used, err := viz.Import("temp", ts, r, buf)
		if err != nil {
			t.Fatal(err)
		}
		usedTime = used
		copy(got[r*4:], buf)
	}
	return got, usedTime
}

func TestExactTimeTransfer(t *testing.T) {
	_, sim, viz := setup(t, ExactTime, 0)
	exportAll(t, sim, 5, 1)
	got, used := importAll(t, viz, 5)
	if used != 5 {
		t.Errorf("used time %d", used)
	}
	for g, v := range got {
		if v != float64(g) {
			t.Errorf("got[%d] = %v", g, v)
		}
	}
}

func TestImportBlocksUntilExportComplete(t *testing.T) {
	_, sim, viz := setup(t, ExactTime, 0)
	done := make(chan struct{})
	go func() {
		buf := make([]float64, 4)
		viz.Import("temp", 1, 0, buf)
		close(done)
	}()
	// Export from only one rank: import must still block.
	local := make([]float64, 6)
	if err := sim.Export("temp", 1, 0, local); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
		t.Fatal("import completed before the export was complete on all ranks")
	case <-time.After(30 * time.Millisecond):
	}
	if err := sim.Export("temp", 1, 1, local); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("import did not complete after full export")
	}
}

func TestLowerBoundMatching(t *testing.T) {
	_, sim, viz := setup(t, LowerBound, 0)
	exportAll(t, sim, 10, 1)
	exportAll(t, sim, 20, 2)
	_, used := importAll(t, viz, 25)
	if used != 20 {
		t.Errorf("lower bound picked %d, want 20", used)
	}
	got, used := importAll(t, viz, 19)
	if used != 10 {
		t.Errorf("lower bound picked %d, want 10", used)
	}
	if got[3] != 3 {
		t.Errorf("data from wrong export: %v", got[3])
	}
}

func TestRegularMatching(t *testing.T) {
	_, sim, viz := setup(t, Regular, 10)
	exportAll(t, sim, 0, 1)
	exportAll(t, sim, 10, 2)
	_, used := importAll(t, viz, 17) // floor(17/10)*10 = 10
	if used != 10 {
		t.Errorf("regular picked %d, want 10", used)
	}
	_, used = importAll(t, viz, 9)
	if used != 0 {
		t.Errorf("regular picked %d, want 0", used)
	}
}

func TestConcurrentProducerConsumer(t *testing.T) {
	// The full intended deployment: sim ranks and viz ranks run
	// concurrently; imports block until the matching export lands.
	_, sim, viz := setup(t, ExactTime, 0)
	const steps = 8
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for ts := 0; ts < steps; ts++ {
				local := make([]float64, 6)
				for li := range local {
					local[li] = float64(ts*100 + r*6 + li)
				}
				if err := sim.Export("temp", ts, r, local); err != nil {
					t.Errorf("export: %v", err)
				}
			}
		}(r)
	}
	errCh := make(chan error, 3*steps)
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			buf := make([]float64, 4)
			for ts := 0; ts < steps; ts++ {
				if _, err := viz.Import("temp", ts, r, buf); err != nil {
					errCh <- err
					return
				}
				for li, v := range buf {
					if want := float64(ts*100 + r*4 + li); v != want {
						t.Errorf("rank %d ts %d: buf[%d]=%v want %v", r, ts, li, v, want)
					}
				}
			}
		}(r)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

func TestValidation(t *testing.T) {
	c := NewCoordinator()
	sim := c.AddProgram("sim")
	viz := c.AddProgram("viz")
	tpl := blockTpl(t, 8, 2)
	if err := sim.DeclareArray("a", tpl); err != nil {
		t.Fatal(err)
	}
	if err := sim.DeclareArray("a", tpl); err == nil {
		t.Error("duplicate declaration accepted")
	}
	if err := viz.DeclareArray("b", blockTpl(t, 9, 2)); err != nil {
		t.Fatal(err)
	}
	// Rule validation.
	if err := c.AddRule(Rule{SrcProgram: "sim", SrcArray: "missing", DstProgram: "viz", DstArray: "b"}); err == nil {
		t.Error("undeclared source accepted")
	}
	if err := c.AddRule(Rule{SrcProgram: "sim", SrcArray: "a", DstProgram: "viz", DstArray: "missing"}); err == nil {
		t.Error("undeclared destination accepted")
	}
	if err := c.AddRule(Rule{SrcProgram: "sim", SrcArray: "a", DstProgram: "viz", DstArray: "b"}); err == nil {
		t.Error("non-conforming rule accepted")
	}
	if err := viz.DeclareArray("c", blockTpl(t, 8, 3)); err != nil {
		t.Fatal(err)
	}
	if err := c.AddRule(Rule{SrcProgram: "sim", SrcArray: "a", DstProgram: "viz", DstArray: "c", Match: Regular}); err == nil {
		t.Error("regular rule without interval accepted")
	}
	if err := c.AddRule(Rule{SrcProgram: "sim", SrcArray: "a", DstProgram: "viz", DstArray: "c"}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddRule(Rule{SrcProgram: "sim", SrcArray: "a", DstProgram: "viz", DstArray: "c"}); err == nil {
		t.Error("second rule for one destination accepted")
	}
	// Export/import misuse.
	if err := sim.Export("missing", 0, 0, nil); err == nil {
		t.Error("export of undeclared array accepted")
	}
	if err := sim.Export("a", 0, 9, make([]float64, 4)); err == nil {
		t.Error("bad export rank accepted")
	}
	if err := sim.Export("a", 0, 0, make([]float64, 3)); err == nil {
		t.Error("bad export length accepted")
	}
	if err := sim.Export("a", 0, 0, make([]float64, 4)); err != nil {
		t.Fatal(err)
	}
	if err := sim.Export("a", 0, 0, make([]float64, 4)); err == nil {
		t.Error("double export from one rank accepted")
	}
	buf := make([]float64, 3)
	if _, err := viz.Import("missing", 0, 0, buf); err == nil {
		t.Error("import of undeclared array accepted")
	}
	if _, err := viz.Import("b", 0, 0, buf); err == nil {
		t.Error("import without rule accepted")
	}
	if _, err := viz.Import("c", 0, 0, make([]float64, 99)); err == nil {
		t.Error("bad import length accepted")
	}
}

func TestRetentionAndRetire(t *testing.T) {
	c, sim, viz := setup(t, LowerBound, 0)
	c.Retention = 2
	exportAll(t, sim, 1, 1)
	exportAll(t, sim, 2, 1)
	exportAll(t, sim, 3, 1)
	// Time 1 was evicted by retention; lower-bound of 1 has nothing.
	done := make(chan int, 1)
	go func() {
		buf := make([]float64, 4)
		used, _ := viz.Import("temp", 1, 0, buf)
		done <- used
	}()
	select {
	case used := <-done:
		t.Fatalf("import satisfied from evicted export %d", used)
	case <-time.After(30 * time.Millisecond):
	}
	// Unblock the pending import with an older export that lower-bound(1)
	// accepts; widen retention first so it is not evicted on arrival.
	c.Retention = 3
	exportAll(t, sim, 0, 5)
	if used := <-done; used != 0 {
		t.Errorf("import used %d, want 0", used)
	}
	// Explicit retire.
	if err := sim.Retire("temp", 3); err != nil {
		t.Fatal(err)
	}
	_, used := importAll(t, viz, 99)
	if used != 3 {
		t.Errorf("after retire, lower bound picked %d, want 3", used)
	}
	if err := sim.Retire("missing", 0); err == nil {
		t.Error("retire of undeclared array accepted")
	}
}

func TestDescriptorFootprint(t *testing.T) {
	// Block descriptors are small; explicit descriptors grow with patch
	// count — the InterComm replication-vs-partitioning tradeoff.
	block := blockTpl(t, 4096, 8)
	patches := make([]dad.Patch, 0, 128)
	for i := 0; i < 128; i++ {
		patches = append(patches, dad.NewPatch([]int{i * 32}, []int{(i + 1) * 32}, i%8))
	}
	explicit, err := dad.NewExplicitTemplate([]int{4096}, 8, patches)
	if err != nil {
		t.Fatal(err)
	}
	fb := DescriptorFootprint(block)
	fe := DescriptorFootprint(explicit)
	if fb <= 0 || fe <= 0 {
		t.Fatal("footprints must be positive")
	}
	if fe < 10*fb {
		t.Errorf("explicit footprint %d not much larger than block %d", fe, fb)
	}
}

func TestPartitionedDescriptorAssemble(t *testing.T) {
	// 12 points on 3 ranks, interleaved patches: each rank holds only its
	// own pieces; Assemble reconstructs the full tiling everywhere.
	const np = 3
	pieces := [][]dad.Patch{
		{dad.NewPatch([]int{0}, []int{2}, 0), dad.NewPatch([]int{6}, []int{8}, 0)},
		{dad.NewPatch([]int{2}, []int{4}, 1), dad.NewPatch([]int{8}, []int{10}, 1)},
		{dad.NewPatch([]int{4}, []int{6}, 2), dad.NewPatch([]int{10}, []int{12}, 2)},
	}
	comm.Run(np, func(c *comm.Comm) {
		pd, err := NewPartitionedDescriptor([]int{12}, np, c.Rank(), pieces[c.Rank()])
		if err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
			return
		}
		tpl, err := pd.Assemble(c)
		if err != nil {
			t.Errorf("rank %d assemble: %v", c.Rank(), err)
			return
		}
		for g := 0; g < 12; g++ {
			want := (g / 2) % 3
			if got := tpl.OwnerOf([]int{g}); got != want {
				t.Errorf("rank %d: owner of %d = %d, want %d", c.Rank(), g, got, want)
			}
		}
	})
}

func TestPartitionedDescriptorDetectsBadTiling(t *testing.T) {
	// A gap in the union must surface on every rank.
	comm.Run(2, func(c *comm.Comm) {
		var local []dad.Patch
		if c.Rank() == 0 {
			local = []dad.Patch{dad.NewPatch([]int{0}, []int{3}, 0)}
		} else {
			local = []dad.Patch{dad.NewPatch([]int{4}, []int{8}, 1)} // leaves [3,4) uncovered
		}
		pd, err := NewPartitionedDescriptor([]int{8}, 2, c.Rank(), local)
		if err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
			return
		}
		if _, err := pd.Assemble(c); err == nil {
			t.Errorf("rank %d: gap not detected", c.Rank())
		}
	})
}

func TestPartitionedDescriptorValidation(t *testing.T) {
	if _, err := NewPartitionedDescriptor([]int{8}, 0, 0, nil); err == nil {
		t.Error("zero ranks accepted")
	}
	foreign := []dad.Patch{dad.NewPatch([]int{0}, []int{8}, 1)}
	if _, err := NewPartitionedDescriptor([]int{8}, 2, 0, foreign); err == nil {
		t.Error("foreign-owned patch accepted")
	}
	badArity := []dad.Patch{dad.NewPatch([]int{0, 0}, []int{2, 2}, 0)}
	if _, err := NewPartitionedDescriptor([]int{8}, 2, 0, badArity); err == nil {
		t.Error("wrong-arity patch accepted")
	}
	pd, _ := NewPartitionedDescriptor([]int{8}, 2, 0, []dad.Patch{dad.NewPatch([]int{0}, []int{4}, 0)})
	comm.Run(3, func(c *comm.Comm) {
		if c.Rank() != 0 {
			return
		}
		if _, err := pd.Assemble(c); err == nil {
			t.Error("wrong communicator width accepted")
		}
	})
}

func TestPartitionedFootprintScaling(t *testing.T) {
	// The point of partitioning: per-rank storage stays O(own patches)
	// while the replicated descriptor grows with the whole tiling.
	const np = 8
	const patchesPerRank = 64
	var all []dad.Patch
	pieces := make([][]dad.Patch, np)
	w := 0
	for r := 0; r < np; r++ {
		for k := 0; k < patchesPerRank; k++ {
			p := dad.NewPatch([]int{w}, []int{w + 1}, r)
			pieces[r] = append(pieces[r], p)
			all = append(all, p)
			w++
		}
	}
	full, err := dad.NewExplicitTemplate([]int{w}, np, all)
	if err != nil {
		t.Fatal(err)
	}
	replicated := DescriptorFootprint(full)
	pd, err := NewPartitionedDescriptor([]int{w}, np, 0, pieces[0])
	if err != nil {
		t.Fatal(err)
	}
	perRank := pd.LocalFootprint()
	t.Logf("replicated descriptor %d B, partitioned piece %d B per rank", replicated, perRank)
	if perRank >= replicated/4 {
		t.Errorf("partitioned piece (%dB) not much smaller than replicated descriptor (%dB)", perRank, replicated)
	}
}
