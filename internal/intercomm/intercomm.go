// Package intercomm reimplements the InterComm coupling framework the
// paper surveys in Section 4.4: efficient redistribution between parallel
// programs with complex array distributions, plus — its distinguishing
// feature — the separation of *what* data moves from *when* it moves.
//
// Programs do not talk to each other directly. Each program only
// expresses potential data transfers through Export and Import calls
// tagged with timestamps; the actual transfers happen according to
// coordination rules held by a third party (the Coordinator), which
// matches exports to imports by timestamp criteria. This frees each
// component developer from knowing the communication patterns of its
// potential partners, makes it easy to swap components, and lets the
// runtime hide transfer cost behind other program activity (exports never
// block on importers).
//
// Distributions are DAD templates; like InterComm, block distributions
// have small replicable descriptors while explicit (irregular)
// distributions carry per-patch descriptors — DescriptorFootprint reports
// the difference, and the redistribution schedules come from the shared
// schedule machinery.
package intercomm

import (
	"fmt"
	"sync"

	"mxn/internal/dad"
	"mxn/internal/schedule"
	"mxn/internal/wire"
)

// MatchKind selects how an import timestamp matches export timestamps —
// the coordination-rule matching criteria.
type MatchKind int

// Matching criteria.
const (
	// ExactTime: import at time t uses the export stamped exactly t.
	ExactTime MatchKind = iota
	// LowerBound: import at time t uses the newest export stamped ≤ t.
	LowerBound
	// Regular: import at time t uses the export stamped
	// floor(t/Interval)*Interval — periodic coupling at a fixed stride.
	Regular
)

// String names the criterion.
func (k MatchKind) String() string {
	switch k {
	case ExactTime:
		return "exact"
	case LowerBound:
		return "lower-bound"
	case Regular:
		return "regular"
	}
	return fmt.Sprintf("MatchKind(%d)", int(k))
}

// Rule is one coordination-specification entry: when the destination
// program imports DstArray, satisfy it from the source program's SrcArray
// according to the matching criterion.
type Rule struct {
	SrcProgram, SrcArray string
	DstProgram, DstArray string
	Match                MatchKind
	Interval             int // Regular only
}

// arrayKey addresses a declared array.
type arrayKey struct {
	program, array string
}

// exportSet holds the retained exports of one array: per timestamp, the
// per-rank local buffers.
type exportSet struct {
	tpl    *dad.Template
	byTime map[int][][]float64
	times  []int // complete timestamps, ascending
	// in-progress assembly per timestamp
	partial map[int]*partialExport
}

type partialExport struct {
	locals [][]float64
	filled int
}

// Coordinator is the third party that owns the coordination
// specification and mediates every transfer. Programs are registered with
// their decompositions; rules are added independently of either program —
// which is what makes components replaceable without code changes.
type Coordinator struct {
	mu     sync.Mutex
	cond   *sync.Cond
	arrays map[arrayKey]*exportSet
	rules  []Rule
	scheds *schedule.Cache
	// Retention bounds how many complete exports are kept per array;
	// 0 keeps all.
	Retention int
}

// NewCoordinator returns an empty coordinator.
func NewCoordinator() *Coordinator {
	c := &Coordinator{
		arrays: map[arrayKey]*exportSet{},
		scheds: schedule.NewCache(),
	}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// AddProgram registers a program name and returns its handle.
func (c *Coordinator) AddProgram(name string) *Program {
	return &Program{name: name, coord: c}
}

// AddRule installs one coordination rule. Both arrays must already be
// declared so the rule can be validated against conforming templates.
func (c *Coordinator) AddRule(r Rule) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	src, ok := c.arrays[arrayKey{r.SrcProgram, r.SrcArray}]
	if !ok {
		return fmt.Errorf("intercomm: rule names undeclared source %s.%s", r.SrcProgram, r.SrcArray)
	}
	dst, ok := c.arrays[arrayKey{r.DstProgram, r.DstArray}]
	if !ok {
		return fmt.Errorf("intercomm: rule names undeclared destination %s.%s", r.DstProgram, r.DstArray)
	}
	if !src.tpl.Conforms(dst.tpl) {
		return fmt.Errorf("intercomm: rule couples non-conforming arrays %s.%s and %s.%s",
			r.SrcProgram, r.SrcArray, r.DstProgram, r.DstArray)
	}
	if r.Match == Regular && r.Interval <= 0 {
		return fmt.Errorf("intercomm: regular rule needs a positive interval")
	}
	for _, prev := range c.rules {
		if prev.DstProgram == r.DstProgram && prev.DstArray == r.DstArray {
			return fmt.Errorf("intercomm: destination %s.%s already has a rule", r.DstProgram, r.DstArray)
		}
	}
	c.rules = append(c.rules, r)
	return nil
}

// ruleFor finds the rule feeding a destination array.
func (c *Coordinator) ruleFor(program, array string) (Rule, bool) {
	for _, r := range c.rules {
		if r.DstProgram == program && r.DstArray == array {
			return r, true
		}
	}
	return Rule{}, false
}

// matchTime applies a rule's criterion to the available export times.
// Returns the chosen timestamp and whether one is available yet.
func matchTime(r Rule, times []int, want int) (int, bool) {
	switch r.Match {
	case ExactTime:
		for _, t := range times {
			if t == want {
				return t, true
			}
		}
		return 0, false
	case LowerBound:
		best, found := 0, false
		for _, t := range times {
			if t <= want && (!found || t > best) {
				best, found = t, true
			}
		}
		return best, found
	case Regular:
		target := (want / r.Interval) * r.Interval
		for _, t := range times {
			if t == target {
				return t, true
			}
		}
		return 0, false
	}
	return 0, false
}

// Program is one coupled program's handle on the coordinator.
type Program struct {
	name  string
	coord *Coordinator
}

// Name returns the program name.
func (p *Program) Name() string { return p.name }

// DeclareArray registers a distributed array and its decomposition.
func (p *Program) DeclareArray(array string, tpl *dad.Template) error {
	c := p.coord
	c.mu.Lock()
	defer c.mu.Unlock()
	key := arrayKey{p.name, array}
	if _, dup := c.arrays[key]; dup {
		return fmt.Errorf("intercomm: array %s.%s already declared", p.name, array)
	}
	c.arrays[key] = &exportSet{
		tpl:     tpl,
		byTime:  map[int][][]float64{},
		partial: map[int]*partialExport{},
	}
	return nil
}

// Export publishes rank's fragment of an array at a timestamp. The call
// copies the data and returns immediately: whether and when the data
// moves is the coordinator's decision, so exporters never block on
// importers. Once every rank of the decomposition has exported, the
// timestamp becomes visible to imports.
func (p *Program) Export(array string, time, rank int, local []float64) error {
	c := p.coord
	c.mu.Lock()
	defer c.mu.Unlock()
	set, ok := c.arrays[arrayKey{p.name, array}]
	if !ok {
		return fmt.Errorf("intercomm: export of undeclared array %s.%s", p.name, array)
	}
	if rank < 0 || rank >= set.tpl.NumProcs() {
		return fmt.Errorf("intercomm: export rank %d outside decomposition of %d", rank, set.tpl.NumProcs())
	}
	if want := set.tpl.LocalCount(rank); len(local) != want {
		return fmt.Errorf("intercomm: export fragment has %d elements, template says %d", len(local), want)
	}
	if _, done := set.byTime[time]; done {
		return fmt.Errorf("intercomm: %s.%s already exported at time %d", p.name, array, time)
	}
	pe := set.partial[time]
	if pe == nil {
		pe = &partialExport{locals: make([][]float64, set.tpl.NumProcs())}
		set.partial[time] = pe
	}
	if pe.locals[rank] != nil {
		return fmt.Errorf("intercomm: rank %d exported %s.%s at time %d twice", rank, p.name, array, time)
	}
	cp := make([]float64, len(local))
	copy(cp, local)
	pe.locals[rank] = cp
	pe.filled++
	if pe.filled == set.tpl.NumProcs() {
		delete(set.partial, time)
		set.byTime[time] = pe.locals
		set.times = insertSorted(set.times, time)
		if c.Retention > 0 {
			for len(set.times) > c.Retention {
				oldest := set.times[0]
				set.times = set.times[1:]
				delete(set.byTime, oldest)
			}
		}
		c.cond.Broadcast()
	}
	return nil
}

// Import fills rank's fragment of a destination array for the given
// timestamp, blocking until the coordination rule for this array can be
// satisfied by a complete export. The returned timestamp is the source
// export actually used (it differs from the request under LowerBound and
// Regular matching).
func (p *Program) Import(array string, time, rank int, buf []float64) (int, error) {
	c := p.coord
	c.mu.Lock()
	defer c.mu.Unlock()
	dstSet, ok := c.arrays[arrayKey{p.name, array}]
	if !ok {
		return 0, fmt.Errorf("intercomm: import of undeclared array %s.%s", p.name, array)
	}
	rule, ok := c.ruleFor(p.name, array)
	if !ok {
		return 0, fmt.Errorf("intercomm: no coordination rule feeds %s.%s", p.name, array)
	}
	srcSet := c.arrays[arrayKey{rule.SrcProgram, rule.SrcArray}]
	if want := dstSet.tpl.LocalCount(rank); len(buf) != want {
		return 0, fmt.Errorf("intercomm: import buffer has %d elements, template says %d", len(buf), want)
	}
	var srcTime int
	for {
		t, found := matchTime(rule, srcSet.times, time)
		if found {
			srcTime = t
			break
		}
		c.cond.Wait()
	}
	s, err := c.scheds.Get(srcSet.tpl, dstSet.tpl)
	if err != nil {
		return 0, err
	}
	locals := srcSet.byTime[srcTime]
	for _, plan := range s.IncomingFor(rank) {
		tmp := make([]float64, plan.Elems)
		schedule.Pack(plan, locals[plan.SrcRank], tmp)
		schedule.Unpack(plan, buf, tmp)
	}
	return srcTime, nil
}

// Retire discards complete exports of an array older than the timestamp,
// bounding retention explicitly.
func (p *Program) Retire(array string, olderThan int) error {
	c := p.coord
	c.mu.Lock()
	defer c.mu.Unlock()
	set, ok := c.arrays[arrayKey{p.name, array}]
	if !ok {
		return fmt.Errorf("intercomm: retire of undeclared array %s.%s", p.name, array)
	}
	kept := set.times[:0]
	for _, t := range set.times {
		if t < olderThan {
			delete(set.byTime, t)
		} else {
			kept = append(kept, t)
		}
	}
	set.times = kept
	return nil
}

func insertSorted(ts []int, t int) []int {
	ts = append(ts, t)
	for i := len(ts) - 1; i > 0 && ts[i-1] > ts[i]; i-- {
		ts[i-1], ts[i] = ts[i], ts[i-1]
	}
	return ts
}

// DescriptorFootprint estimates the wire size in bytes of a template's
// descriptor — InterComm's observation made measurable: block-style
// distributions have small descriptors cheap to replicate on every
// process, while explicit distributions carry per-patch (in the limit,
// per-element) descriptors that must be partitioned.
func DescriptorFootprint(t *dad.Template) int {
	e := wire.NewEncoder(nil)
	t.Encode(e)
	return e.Len()
}
