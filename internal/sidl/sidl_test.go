package sidl

import (
	"strings"
	"testing"
)

const coupler = `
package climate version 1.0;

// The coupling port between atmosphere and ocean.
interface Coupler {
    collective void setField(in parallel array<double> field, in int step);
    independent double probe(in int i);
    collective oneway void advance(in int steps);
    double scalarExchange(in double x); /* defaults to independent */
    collective array<double> exchange(inout parallel array<double> data);
}

interface Monitor {
    oneway void log(in string msg);
}
`

func TestParseCoupler(t *testing.T) {
	pkg, err := Parse(coupler)
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Name != "climate" || pkg.Version != "1.0" {
		t.Errorf("package = %q version %q", pkg.Name, pkg.Version)
	}
	if len(pkg.Interfaces) != 2 {
		t.Fatalf("interfaces = %d", len(pkg.Interfaces))
	}
	iface, ok := pkg.Interface("Coupler")
	if !ok {
		t.Fatal("no Coupler interface")
	}
	if len(iface.Methods) != 5 {
		t.Fatalf("methods = %d", len(iface.Methods))
	}

	set, _ := iface.Method("setField")
	if set.Invocation != Collective || set.OneWay || set.Returns != Void {
		t.Errorf("setField attrs wrong: %+v", set)
	}
	if len(set.Params) != 2 {
		t.Fatalf("setField params = %d", len(set.Params))
	}
	if !set.Params[0].Parallel || set.Params[0].Type != DoubleArray || set.Params[0].Mode != In {
		t.Errorf("setField field param wrong: %+v", set.Params[0])
	}
	if set.Params[1].Parallel || set.Params[1].Type != Int {
		t.Errorf("setField step param wrong: %+v", set.Params[1])
	}
	if !set.HasParallelArgs() {
		t.Error("setField should report parallel args")
	}

	probe, _ := iface.Method("probe")
	if probe.Invocation != Independent || probe.Returns != Double {
		t.Errorf("probe attrs wrong: %+v", probe)
	}
	if probe.HasParallelArgs() {
		t.Error("probe should not report parallel args")
	}

	adv, _ := iface.Method("advance")
	if !adv.OneWay || adv.Invocation != Collective {
		t.Errorf("advance attrs wrong: %+v", adv)
	}

	def, _ := iface.Method("scalarExchange")
	if def.Invocation != Independent {
		t.Error("default invocation should be independent")
	}

	ex, _ := iface.Method("exchange")
	if ex.Returns != DoubleArray || ex.Params[0].Mode != InOut {
		t.Errorf("exchange attrs wrong: %+v", ex)
	}

	mon, ok := pkg.Interface("Monitor")
	if !ok || len(mon.Methods) != 1 {
		t.Fatal("Monitor interface wrong")
	}
	if _, ok := pkg.Interface("Nothing"); ok {
		t.Error("found nonexistent interface")
	}
	if _, ok := iface.Method("nothing"); ok {
		t.Error("found nonexistent method")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"missing package", `interface X {}`, "package"},
		{"missing semicolon", `package p interface X {}`, ";"},
		{"unterminated interface", `package p; interface X { void f();`, "unterminated"},
		{"oneway with return", `package p; interface X { oneway int f(); }`, "oneway"},
		{"oneway with out", `package p; interface X { oneway void f(out int x); }`, "oneway"},
		{"parallel scalar", `package p; interface X { collective void f(in parallel int x); }`, "parallel"},
		{"parallel on independent", `package p; interface X { void f(in parallel array<double> x); }`, "collective"},
		{"duplicate method", `package p; interface X { void f(); void f(); }`, "duplicate method"},
		{"duplicate param", `package p; interface X { void f(in int a, in int a); }`, "duplicate parameter"},
		{"duplicate interface", `package p; interface X {} interface X {}`, "duplicate interface"},
		{"void param", `package p; interface X { void f(in void a); }`, "void"},
		{"bad array elem", `package p; interface X { void f(in array<string> a); }`, "array element"},
		{"unknown type", `package p; interface X { quux f(); }`, "unknown type"},
		{"bad char", `package p; interface X { void f(); } $`, "unexpected character"},
		{"unterminated comment", `package p; /* oops`, "unterminated block comment"},
		{"param without mode", `package p; interface X { void f(int a); }`, "in/out/inout"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("%s: parsed successfully", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestParseEmptyInterfaceAndComments(t *testing.T) {
	pkg, err := Parse(`
package p;
/* block
   comment */
interface Empty {
  // nothing here
}
`)
	if err != nil {
		t.Fatal(err)
	}
	iface, ok := pkg.Interface("Empty")
	if !ok || len(iface.Methods) != 0 {
		t.Error("empty interface parsed wrong")
	}
}

func TestPackageWithoutVersion(t *testing.T) {
	pkg, err := Parse(`package p; interface X { void f(); }`)
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Version != "" {
		t.Errorf("version = %q", pkg.Version)
	}
}

func TestTypeSpellings(t *testing.T) {
	pkg, err := Parse(`package p; interface X {
		long f1();
		float f2();
		array<long> f3();
		array<float> f4();
		bool f5();
		string f6();
	}`)
	if err != nil {
		t.Fatal(err)
	}
	iface, _ := pkg.Interface("X")
	wants := map[string]TypeKind{
		"f1": Int, "f2": Double, "f3": IntArray, "f4": DoubleArray, "f5": Bool, "f6": String,
	}
	for name, want := range wants {
		m, ok := iface.Method(name)
		if !ok || m.Returns != want {
			t.Errorf("%s returns %v, want %v", name, m.Returns, want)
		}
	}
}

func TestStringers(t *testing.T) {
	if Collective.String() != "collective" || Independent.String() != "independent" {
		t.Error("invocation strings")
	}
	if In.String() != "in" || InOut.String() != "inout" || Out.String() != "out" {
		t.Error("mode strings")
	}
	if DoubleArray.String() != "array<double>" || Void.String() != "void" {
		t.Error("type strings")
	}
}
