// Package sidl implements a small Scientific Interface Definition Language
// in the spirit of the CCA's SIDL, extended — as SCIRun2 and DCA extend it
// (Sections 4.2 and 4.3 of the paper) — with the parallel remote method
// invocation attributes: methods may be declared collective (all-to-all)
// or independent (one-to-one), may be oneway (no reply, caller continues
// immediately), and array parameters may be declared parallel (decomposed
// across the cohort and redistributed by the framework).
//
// The package parses interface definitions into method specifications that
// the PRMI runtime consumes. It replaces the offline IDL-compiler glue
// generation of Babel/SCIRun2 with a run-time spec registry, which carries
// the same semantic information.
package sidl

import "fmt"

// TypeKind enumerates the value types that can cross a port boundary.
type TypeKind int

// Supported SIDL types.
const (
	Void TypeKind = iota
	Bool
	Int    // 64-bit integer on the wire
	Double // IEEE-754 double
	String
	DoubleArray // array<double>
	IntArray    // array<int>
)

// String returns the SIDL spelling of the type.
func (k TypeKind) String() string {
	switch k {
	case Void:
		return "void"
	case Bool:
		return "bool"
	case Int:
		return "int"
	case Double:
		return "double"
	case String:
		return "string"
	case DoubleArray:
		return "array<double>"
	case IntArray:
		return "array<int>"
	}
	return fmt.Sprintf("TypeKind(%d)", int(k))
}

// isArray reports whether the type may carry the parallel attribute.
func (k TypeKind) isArray() bool { return k == DoubleArray || k == IntArray }

// ParamMode is a parameter's direction attribute.
type ParamMode int

// Parameter directions.
const (
	In ParamMode = iota
	Out
	InOut
)

// String returns the SIDL spelling of the mode.
func (m ParamMode) String() string {
	switch m {
	case In:
		return "in"
	case Out:
		return "out"
	case InOut:
		return "inout"
	}
	return fmt.Sprintf("ParamMode(%d)", int(m))
}

// Invocation distinguishes the two PRMI method classes of the paper's
// SCIRun2 SIDL extension.
type Invocation int

// Invocation kinds.
const (
	// Independent: normal serial function-call semantics between one
	// caller process and one callee process.
	Independent Invocation = iota
	// Collective: all participating caller processes invoke together and
	// the call is presented as a single logical invocation to the callee
	// cohort; ghost invocations and return values bridge M≠N.
	Collective
)

// String returns the SIDL spelling of the invocation kind.
func (i Invocation) String() string {
	if i == Collective {
		return "collective"
	}
	return "independent"
}

// Param is one declared method parameter.
type Param struct {
	Name     string
	Type     TypeKind
	Mode     ParamMode
	Parallel bool // decomposed across the cohort; requires an array type
}

// Method is one declared port method with its PRMI attributes.
type Method struct {
	Name       string
	Invocation Invocation
	OneWay     bool
	Returns    TypeKind
	Params     []Param
}

// HasParallelArgs reports whether any parameter is parallel.
func (m *Method) HasParallelArgs() bool {
	for _, p := range m.Params {
		if p.Parallel {
			return true
		}
	}
	return false
}

// validate enforces the semantic rules of the PRMI extensions.
func (m *Method) validate(iface string) error {
	if m.OneWay {
		if m.Returns != Void {
			return fmt.Errorf("sidl: %s.%s: oneway methods must return void (the paper's CORBA-derived rule)", iface, m.Name)
		}
		for _, p := range m.Params {
			if p.Mode != In {
				return fmt.Errorf("sidl: %s.%s: oneway methods cannot have %s parameter %q", iface, m.Name, p.Mode, p.Name)
			}
		}
	}
	names := map[string]bool{}
	for _, p := range m.Params {
		if names[p.Name] {
			return fmt.Errorf("sidl: %s.%s: duplicate parameter %q", iface, m.Name, p.Name)
		}
		names[p.Name] = true
		if p.Parallel && !p.Type.isArray() {
			return fmt.Errorf("sidl: %s.%s: parameter %q is parallel but %s is not an array type", iface, m.Name, p.Name, p.Type)
		}
		if p.Parallel && m.Invocation != Collective {
			return fmt.Errorf("sidl: %s.%s: parallel parameter %q requires a collective method", iface, m.Name, p.Name)
		}
	}
	return nil
}

// Interface is a named port interface: the unit a provides port implements
// and a uses port connects to.
type Interface struct {
	Name    string
	Methods []Method
}

// Method returns the named method, if declared.
func (i *Interface) Method(name string) (*Method, bool) {
	for k := range i.Methods {
		if i.Methods[k].Name == name {
			return &i.Methods[k], true
		}
	}
	return nil, false
}

// Package is one parsed SIDL source unit.
type Package struct {
	Name       string
	Version    string
	Interfaces []Interface
}

// Interface returns the named interface, if declared.
func (p *Package) Interface(name string) (*Interface, bool) {
	for k := range p.Interfaces {
		if p.Interfaces[k].Name == name {
			return &p.Interfaces[k], true
		}
	}
	return nil, false
}
