package sidl

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse reads one SIDL source unit:
//
//	package climate version 1.0;
//
//	interface Coupler {
//	    collective void setField(in parallel array<double> field, in int step);
//	    independent double probe(in int i);
//	    collective oneway void advance(in int steps);
//	    array<double> exchange(inout parallel array<double> data); // collective by default? no: independent
//	}
//
// Methods default to independent; `collective`, `independent` and `oneway`
// may prefix the return type in any order. Parameters are
// `<mode> [parallel] <type> <name>`. Comments use // and /* */.
func Parse(src string) (*Package, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	pkg, err := p.parsePackage()
	if err != nil {
		return nil, err
	}
	for i := range pkg.Interfaces {
		iface := &pkg.Interfaces[i]
		seen := map[string]bool{}
		for k := range iface.Methods {
			m := &iface.Methods[k]
			if seen[m.Name] {
				return nil, fmt.Errorf("sidl: %s: duplicate method %q", iface.Name, m.Name)
			}
			seen[m.Name] = true
			if err := m.validate(iface.Name); err != nil {
				return nil, err
			}
		}
	}
	return pkg, nil
}

// token is one lexical unit with its source line for error messages.
type token struct {
	text string
	line int
}

// lex splits src into identifier/number/punctuation tokens, stripping
// comments. array<double> lexes as "array" "<" "double" ">".
func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '*':
			end := strings.Index(src[i+2:], "*/")
			if end < 0 {
				return nil, fmt.Errorf("sidl: line %d: unterminated block comment", line)
			}
			line += strings.Count(src[i:i+2+end+2], "\n")
			i += 2 + end + 2
		case strings.ContainsRune("{}()<>,;", rune(c)):
			toks = append(toks, token{string(c), line})
			i++
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			toks = append(toks, token{src[i:j], line})
			i = j
		case unicode.IsDigit(rune(c)):
			j := i
			for j < len(src) && (unicode.IsDigit(rune(src[j])) || src[j] == '.') {
				j++
			}
			toks = append(toks, token{src[i:j], line})
			i = j
		default:
			return nil, fmt.Errorf("sidl: line %d: unexpected character %q", line, c)
		}
	}
	return toks, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() string {
	if p.pos >= len(p.toks) {
		return ""
	}
	return p.toks[p.pos].text
}

func (p *parser) line() int {
	if p.pos >= len(p.toks) {
		if len(p.toks) == 0 {
			return 0
		}
		return p.toks[len(p.toks)-1].line
	}
	return p.toks[p.pos].line
}

func (p *parser) next() string {
	t := p.peek()
	p.pos++
	return t
}

func (p *parser) expect(want string) error {
	if got := p.next(); got != want {
		return fmt.Errorf("sidl: line %d: expected %q, got %q", p.line(), want, got)
	}
	return nil
}

func (p *parser) ident(what string) (string, error) {
	t := p.next()
	if t == "" || strings.ContainsAny(t, "{}()<>,;") || !unicode.IsLetter(rune(t[0])) && t[0] != '_' {
		return "", fmt.Errorf("sidl: line %d: expected %s, got %q", p.line(), what, t)
	}
	return t, nil
}

func (p *parser) parsePackage() (*Package, error) {
	pkg := &Package{}
	if err := p.expect("package"); err != nil {
		return nil, err
	}
	name, err := p.ident("package name")
	if err != nil {
		return nil, err
	}
	pkg.Name = name
	if p.peek() == "version" {
		p.next()
		pkg.Version = p.next()
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	for p.pos < len(p.toks) {
		iface, err := p.parseInterface()
		if err != nil {
			return nil, err
		}
		for _, prev := range pkg.Interfaces {
			if prev.Name == iface.Name {
				return nil, fmt.Errorf("sidl: duplicate interface %q", iface.Name)
			}
		}
		pkg.Interfaces = append(pkg.Interfaces, *iface)
	}
	return pkg, nil
}

func (p *parser) parseInterface() (*Interface, error) {
	if err := p.expect("interface"); err != nil {
		return nil, err
	}
	name, err := p.ident("interface name")
	if err != nil {
		return nil, err
	}
	iface := &Interface{Name: name}
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	for p.peek() != "}" {
		if p.peek() == "" {
			return nil, fmt.Errorf("sidl: line %d: unterminated interface %q", p.line(), name)
		}
		m, err := p.parseMethod()
		if err != nil {
			return nil, err
		}
		iface.Methods = append(iface.Methods, *m)
	}
	p.next() // }
	return iface, nil
}

func (p *parser) parseMethod() (*Method, error) {
	m := &Method{Invocation: Independent}
	// Attribute prefixes in any order.
	for {
		switch p.peek() {
		case "collective":
			p.next()
			m.Invocation = Collective
			continue
		case "independent":
			p.next()
			m.Invocation = Independent
			continue
		case "oneway":
			p.next()
			m.OneWay = true
			continue
		}
		break
	}
	ret, err := p.parseType()
	if err != nil {
		return nil, err
	}
	m.Returns = ret
	name, err := p.ident("method name")
	if err != nil {
		return nil, err
	}
	m.Name = name
	if err := p.expect("("); err != nil {
		return nil, err
	}
	for p.peek() != ")" {
		if len(m.Params) > 0 {
			if err := p.expect(","); err != nil {
				return nil, err
			}
		}
		param, err := p.parseParam()
		if err != nil {
			return nil, err
		}
		m.Params = append(m.Params, *param)
	}
	p.next() // )
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	return m, nil
}

func (p *parser) parseParam() (*Param, error) {
	param := &Param{}
	switch p.next() {
	case "in":
		param.Mode = In
	case "out":
		param.Mode = Out
	case "inout":
		param.Mode = InOut
	default:
		return nil, fmt.Errorf("sidl: line %d: parameter must start with in/out/inout", p.line())
	}
	if p.peek() == "parallel" {
		p.next()
		param.Parallel = true
	}
	typ, err := p.parseType()
	if err != nil {
		return nil, err
	}
	if typ == Void {
		return nil, fmt.Errorf("sidl: line %d: void parameter", p.line())
	}
	param.Type = typ
	name, err := p.ident("parameter name")
	if err != nil {
		return nil, err
	}
	param.Name = name
	return param, nil
}

func (p *parser) parseType() (TypeKind, error) {
	switch t := p.next(); t {
	case "void":
		return Void, nil
	case "bool":
		return Bool, nil
	case "int", "long":
		return Int, nil
	case "double", "float":
		return Double, nil
	case "string":
		return String, nil
	case "array":
		if err := p.expect("<"); err != nil {
			return Void, err
		}
		elem := p.next()
		if err := p.expect(">"); err != nil {
			return Void, err
		}
		switch elem {
		case "double", "float":
			return DoubleArray, nil
		case "int", "long":
			return IntArray, nil
		default:
			return Void, fmt.Errorf("sidl: line %d: unsupported array element %q", p.line(), elem)
		}
	default:
		return Void, fmt.Errorf("sidl: line %d: unknown type %q", p.line(), t)
	}
}
