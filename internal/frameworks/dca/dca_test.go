package dca

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// TestEndToEndCollectiveCall couples a 3-rank driver to a 2-rank solver:
// the driver scatters chunks alltoallv-style, the solver transforms and
// replies.
func TestEndToEndCollectiveCall(t *testing.T) {
	f := New(5)
	var served atomic.Int64
	if err := f.AddComponent("solver", []int{3, 4}, func(rank int) GoComponent {
		return GoFunc(func(svc *Services) error {
			err := svc.Provide("calc", "scale", func(r int, simple []any, chunks [][]float64) ([]any, [][]float64, error) {
				served.Add(1)
				factor := simple[0].(float64)
				reply := make([][]float64, len(chunks))
				for k, ch := range chunks {
					out := make([]float64, len(ch))
					for i, v := range ch {
						out[i] = v * factor
					}
					reply[k] = out
				}
				return []any{"ok"}, reply, nil
			})
			if err != nil {
				return err
			}
			return svc.Serve()
		})
	}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddComponent("driver", []int{0, 1, 2}, func(rank int) GoComponent {
		return GoFunc(func(svc *Services) error {
			// Every driver rank sends chunk [rank, rank] to each solver
			// rank and expects it doubled back.
			send := [][]float64{
				{float64(svc.Rank()), float64(svc.Rank())},
				{float64(svc.Rank() + 10)},
			}
			ret, recv, err := svc.Call("calc", "scale", svc.Cohort(), []any{2.0}, send)
			if err != nil {
				return err
			}
			if ret[0] != "ok" {
				return fmt.Errorf("ret = %v", ret)
			}
			if len(recv) != 2 {
				return fmt.Errorf("recv chunks = %d", len(recv))
			}
			if recv[0][0] != float64(svc.Rank())*2 || recv[1][0] != float64(svc.Rank()+10)*2 {
				return fmt.Errorf("rank %d: recv = %v", svc.Rank(), recv)
			}
			return nil
		})
	}); err != nil {
		t.Fatal(err)
	}
	if err := f.Connect("driver", "calc", "solver", "calc"); err != nil {
		t.Fatal(err)
	}
	if err := f.Run(); err != nil {
		t.Fatal(err)
	}
	// Every solver rank serviced the one collective call.
	if served.Load() != 2 {
		t.Errorf("handler ran %d times, want 2", served.Load())
	}
}

func TestSubsetParticipation(t *testing.T) {
	// Only driver ranks 0 and 2 participate; the provider must see a
	// 2-participant call.
	f := New(4)
	var gotParts atomic.Int64
	f.AddComponent("p", []int{3}, func(rank int) GoComponent {
		return GoFunc(func(svc *Services) error {
			svc.Provide("p", "m", func(r int, simple []any, chunks [][]float64) ([]any, [][]float64, error) {
				gotParts.Store(int64(len(chunks)))
				return nil, nil, nil
			})
			return svc.Serve()
		})
	})
	f.AddComponent("u", []int{0, 1, 2}, func(rank int) GoComponent {
		return GoFunc(func(svc *Services) error {
			if svc.Rank() == 1 {
				return nil // sits out
			}
			sub := svc.Cohort().Sub([]int{0, 2})
			if svc.Rank() == 1 {
				return nil
			}
			_, _, err := svc.Call("p", "m", sub, nil, nil)
			return err
		})
	})
	f.Connect("u", "p", "p", "p")
	if err := f.Run(); err != nil {
		t.Fatal(err)
	}
	if gotParts.Load() != 2 {
		t.Errorf("provider saw %d participants, want 2", gotParts.Load())
	}
}

func TestOneWayDoesNotBlock(t *testing.T) {
	f := New(2)
	fired := make(chan struct{}, 4)
	f.AddComponent("p", []int{1}, func(rank int) GoComponent {
		return GoFunc(func(svc *Services) error {
			svc.Provide("log", "note", func(r int, simple []any, chunks [][]float64) ([]any, [][]float64, error) {
				fired <- struct{}{}
				return nil, nil, nil
			})
			return svc.Serve()
		})
	})
	f.AddComponent("u", []int{0}, func(rank int) GoComponent {
		return GoFunc(func(svc *Services) error {
			for i := 0; i < 4; i++ {
				ret, recv, err := svc.Call("log", "note", svc.Cohort(), []any{i}, nil)
				if err != nil || ret != nil || recv != nil {
					return fmt.Errorf("oneway returned %v %v %v", ret, recv, err)
				}
			}
			return nil
		})
	})
	f.Connect("u", "log", "p", "log")
	if err := f.DeclareOneWay("p", "log", "note"); err != nil {
		t.Fatal(err)
	}
	if err := f.DeclareOneWay("ghost", "log", "note"); err == nil {
		t.Error("DeclareOneWay on unknown component accepted")
	}
	if err := f.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 4 {
		t.Errorf("handler fired %d times", len(fired))
	}
}

func TestHandlerErrorPropagates(t *testing.T) {
	f := New(2)
	f.AddComponent("p", []int{1}, func(rank int) GoComponent {
		return GoFunc(func(svc *Services) error {
			svc.Provide("x", "boom", func(r int, simple []any, chunks [][]float64) ([]any, [][]float64, error) {
				return nil, nil, fmt.Errorf("kaboom")
			})
			return svc.Serve()
		})
	})
	callErr := make(chan error, 1)
	f.AddComponent("u", []int{0}, func(rank int) GoComponent {
		return GoFunc(func(svc *Services) error {
			_, _, err := svc.Call("x", "boom", svc.Cohort(), nil, nil)
			callErr <- err
			return nil
		})
	})
	f.Connect("u", "x", "p", "x")
	if err := f.Run(); err != nil {
		t.Fatal(err)
	}
	if err := <-callErr; err == nil {
		t.Error("handler error not propagated")
	}
}

func TestMissingHandlerAndUnconnectedPort(t *testing.T) {
	f := New(2)
	f.AddComponent("p", []int{1}, func(rank int) GoComponent {
		return GoFunc(func(svc *Services) error { return svc.Serve() })
	})
	errs := make(chan error, 2)
	f.AddComponent("u", []int{0}, func(rank int) GoComponent {
		return GoFunc(func(svc *Services) error {
			_, _, err := svc.Call("x", "nosuch", svc.Cohort(), nil, nil)
			errs <- err
			_, _, err = svc.Call("unwired", "m", svc.Cohort(), nil, nil)
			errs <- err
			return nil
		})
	})
	f.Connect("u", "x", "p", "x")
	if err := f.Run(); err != nil {
		t.Fatal(err)
	}
	if err := <-errs; err == nil {
		t.Error("missing handler not reported")
	}
	if err := <-errs; err == nil {
		t.Error("unconnected port not reported")
	}
}

func TestFrameworkValidation(t *testing.T) {
	f := New(3)
	if err := f.AddComponent("a", []int{0}, nil); err != nil {
		t.Fatal(err)
	}
	if err := f.AddComponent("a", []int{1}, nil); err == nil {
		t.Error("duplicate component accepted")
	}
	if err := f.AddComponent("b", []int{0}, nil); err == nil {
		t.Error("overlapping ranks accepted")
	}
	if err := f.AddComponent("c", nil, nil); err == nil {
		t.Error("empty ranks accepted")
	}
	if err := f.AddComponent("d", []int{7}, nil); err == nil {
		t.Error("out-of-world rank accepted")
	}
	if err := f.Connect("a", "x", "nobody", "y"); err == nil {
		t.Error("unknown provider accepted")
	}
	if err := f.Connect("nobody", "x", "a", "y"); err == nil {
		t.Error("unknown user accepted")
	}
	if err := f.Connect("a", "x", "a", "y"); err != nil {
		t.Fatal(err)
	}
	if err := f.Connect("a", "x", "a", "y"); err == nil {
		t.Error("double connect accepted")
	}
}

func TestChunkCountValidation(t *testing.T) {
	f := New(3)
	f.AddComponent("p", []int{1, 2}, func(rank int) GoComponent {
		return GoFunc(func(svc *Services) error {
			svc.Provide("x", "m", func(r int, simple []any, chunks [][]float64) ([]any, [][]float64, error) {
				return nil, [][]float64{{1}}, nil // wrong reply arity on purpose? participants=1 → len 1 OK
			})
			return svc.Serve()
		})
	})
	callErr := make(chan error, 2)
	f.AddComponent("u", []int{0}, func(rank int) GoComponent {
		return GoFunc(func(svc *Services) error {
			// Wrong sendChunks length (provider has 2 ranks).
			_, _, err := svc.Call("x", "m", svc.Cohort(), nil, [][]float64{{1}})
			callErr <- err
			// nil participation communicator.
			_, _, err = svc.Call("x", "m", nil, nil, nil)
			callErr <- err
			// A valid call so Serve sees at least one message path.
			_, _, err = svc.Call("x", "m", svc.Cohort(), nil, nil)
			return err
		})
	})
	f.Connect("u", "x", "p", "x")
	if err := f.Run(); err != nil {
		t.Fatal(err)
	}
	if err := <-callErr; err == nil {
		t.Error("bad chunk count accepted")
	}
	if err := <-callErr; err == nil {
		t.Error("nil participation accepted")
	}
}

func TestMultipleUsersOneProvider(t *testing.T) {
	// Two independent user components invoke the same provider; the
	// provider drains shutdowns from both.
	f := New(3)
	var calls atomic.Int64
	f.AddComponent("p", []int{2}, func(rank int) GoComponent {
		return GoFunc(func(svc *Services) error {
			svc.Provide("x", "m", func(r int, simple []any, chunks [][]float64) ([]any, [][]float64, error) {
				calls.Add(1)
				return nil, nil, nil
			})
			return svc.Serve()
		})
	})
	mkUser := func() func(rank int) GoComponent {
		return func(rank int) GoComponent {
			return GoFunc(func(svc *Services) error {
				for i := 0; i < 3; i++ {
					if _, _, err := svc.Call("x", "m", svc.Cohort(), nil, nil); err != nil {
						return err
					}
				}
				return nil
			})
		}
	}
	f.AddComponent("u1", []int{0}, mkUser())
	f.AddComponent("u2", []int{1}, mkUser())
	f.Connect("u1", "x", "p", "x")
	f.Connect("u2", "x", "p", "x")
	if err := f.Run(); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 6 {
		t.Errorf("calls = %d", calls.Load())
	}
}
