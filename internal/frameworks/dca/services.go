package dca

import (
	"fmt"
	"sort"

	"mxn/internal/comm"
)

// World-comm tags of the DCA protocol.
const (
	tagCall = iota + 1
	tagReply
	tagShut
)

// callMsg is one caller rank's invocation header to one provider rank.
// Payloads are in-memory values: DCA is the MPI-based framework, so its
// wire format is MPI's (here: the comm substrate's) native one.
type callMsg struct {
	user, usesPort, method string
	fromWorld              int
	participants           []int // world ranks, ascending
	simple                 []any
	chunk                  []float64
	oneway                 bool
}

type replyMsg struct {
	ret     []any
	chunk   []float64
	errText string
}

type shutMsg struct{}

// Services is one cohort rank's handle on the framework: the DCA
// equivalent of CCA services plus the generated-stub call path.
type Services struct {
	fw    *Framework
	entry *componentEntry
	rank  int
}

// Rank returns the caller's cohort rank.
func (s *Services) Rank() int { return s.rank }

// CohortSize returns the component's cohort width.
func (s *Services) CohortSize() int { return len(s.entry.ranks) }

// Cohort returns the intra-component communicator.
func (s *Services) Cohort() *comm.Comm { return s.entry.cohort[s.rank] }

// WorldRank returns this rank's world rank.
func (s *Services) WorldRank() int { return s.entry.ranks[s.rank] }

// world returns this rank's world-spanning communicator handle.
func (s *Services) world() *comm.Comm { return s.fw.all[s.WorldRank()] }

// Provide registers this rank's handler for a provides-port method.
// Every cohort rank registers its own instance before calling Serve.
func (s *Services) Provide(port, method string, h Handler) error {
	e := s.entry
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.handlers[s.rank] == nil {
		e.handlers[s.rank] = map[string]Handler{}
	}
	key := port + "\x00" + method
	if _, dup := e.handlers[s.rank][key]; dup {
		return fmt.Errorf("dca: %s.%s already provided on rank %d", port, method, s.rank)
	}
	e.handlers[s.rank][key] = h
	return nil
}

// Call invokes a method on the connected provider port. part is the
// participation communicator — the extra argument DCA's stub generator
// adds to every port method: exactly its member processes take part, and
// the delivery barrier runs over it. simple values must be equal on all
// participants. sendChunks[j] is the data chunk for provider rank j
// (alltoallv style); it may be nil when the method moves no parallel
// data. The returned recvChunks[j] is provider rank j's reply chunk.
func (s *Services) Call(usesPort, method string, part *comm.Comm, simple []any, sendChunks [][]float64) (ret []any, recvChunks [][]float64, err error) {
	connKey := s.entry.name + "/" + usesPort
	s.fw.mu.Lock()
	conn := s.fw.connections[connKey]
	s.fw.mu.Unlock()
	if conn == nil {
		return nil, nil, fmt.Errorf("dca: uses port %s is not connected", connKey)
	}
	prov := conn.provider
	np := len(prov.ranks)
	if sendChunks != nil && len(sendChunks) != np {
		return nil, nil, fmt.Errorf("dca: %d send chunks for provider of %d ranks", len(sendChunks), np)
	}
	if part == nil {
		return nil, nil, fmt.Errorf("dca: participation communicator is required (it defines the scope of the call)")
	}

	// Translate the participation communicator to world ranks, then apply
	// the DCA rule: a barrier over the participants before delivery.
	worldRanks := make([]int, part.Size())
	all := part.Allgather(part.WorldRank())
	for i, v := range all {
		worldRanks[i] = v.(int)
	}
	sort.Ints(worldRanks)
	part.Barrier()

	oneway := s.fw.isOneWay(prov.name, conn.provPort, method)

	w := s.world()
	for j := 0; j < np; j++ {
		msg := &callMsg{
			user:         s.entry.name,
			usesPort:     usesPort,
			method:       conn.provPort + "\x00" + method,
			fromWorld:    w.Rank(),
			participants: worldRanks,
			simple:       simple,
			oneway:       oneway,
		}
		if sendChunks != nil {
			msg.chunk = sendChunks[j]
		}
		w.Send(prov.ranks[j], tagCall, msg)
	}
	if oneway {
		return nil, nil, nil
	}
	recvChunks = make([][]float64, np)
	for j := 0; j < np; j++ {
		payload, _ := w.Recv(prov.ranks[j], tagReply)
		rep, ok := payload.(*replyMsg)
		if !ok {
			return nil, nil, fmt.Errorf("dca: caller received %T", payload)
		}
		if rep.errText != "" {
			return nil, nil, fmt.Errorf("dca: %s.%s: %s", usesPort, method, rep.errText)
		}
		recvChunks[j] = rep.chunk
		if j == 0 {
			ret = rep.ret
		}
	}
	return ret, recvChunks, nil
}

// Serve processes incoming invocations on this provider rank until every
// rank of every connected user component has shut down (which the
// framework signals automatically when a user's Go body returns). All
// provider ranks participate in every collective call — the DCA callee
// rule.
func (s *Services) Serve() error {
	w := s.world()
	expected := s.fw.expectedShutdowns(s.entry.name)
	got := 0
	for got < expected {
		payload, src := w.Recv(comm.AnySource, comm.AnyTag)
		switch msg := payload.(type) {
		case shutMsg:
			got++
		case *callMsg:
			if err := s.serveCall(w, msg); err != nil {
				return err
			}
		default:
			return fmt.Errorf("dca: provider received %T from %d", payload, src)
		}
	}
	return nil
}

// serveCall collects one collective invocation and runs the handler.
func (s *Services) serveCall(w *comm.Comm, first *callMsg) error {
	chunks := make([][]float64, len(first.participants))
	pos := map[int]int{}
	for k, p := range first.participants {
		pos[p] = k
	}
	k0, ok := pos[first.fromWorld]
	if !ok {
		return fmt.Errorf("dca: caller %d not in its own participant list", first.fromWorld)
	}
	chunks[k0] = first.chunk
	for _, p := range first.participants {
		if p == first.fromWorld {
			continue
		}
		payload, _ := w.Recv(p, tagCall)
		msg, ok := payload.(*callMsg)
		if !ok {
			return fmt.Errorf("dca: provider received %T during collection", payload)
		}
		if msg.method != first.method {
			return fmt.Errorf("dca: invocation order violation: committed to %q, caller %d sent %q (the delivery barrier should make this impossible)",
				first.method, p, msg.method)
		}
		chunks[pos[p]] = msg.chunk
	}

	s.entry.mu.Lock()
	var h Handler
	if m := s.entry.handlers[s.rank]; m != nil {
		h = m[first.method]
	}
	s.entry.mu.Unlock()

	var ret []any
	var reply [][]float64
	var herr error
	if h == nil {
		herr = fmt.Errorf("no handler for %q on rank %d", first.method, s.rank)
	} else {
		ret, reply, herr = h(s.rank, first.simple, chunks)
		if herr == nil && reply != nil && len(reply) != len(first.participants) {
			herr = fmt.Errorf("handler returned %d reply chunks for %d participants", len(reply), len(first.participants))
		}
	}
	if first.oneway {
		return nil
	}
	for k, p := range first.participants {
		rep := &replyMsg{}
		if herr != nil {
			rep.errText = herr.Error()
		} else {
			rep.ret = ret
			if reply != nil {
				rep.chunk = reply[k]
			}
		}
		w.Send(p, tagReply, rep)
	}
	return nil
}

// expectedShutdowns counts the user cohort ranks whose termination a
// provider must observe before Serve returns.
func (f *Framework) expectedShutdowns(provider string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	seen := map[string]bool{}
	total := 0
	for key, conn := range f.connections {
		if conn.provider.name != provider {
			continue
		}
		var user string
		for i := 0; i < len(key); i++ {
			if key[i] == '/' {
				user = key[:i]
				break
			}
		}
		if !seen[user] {
			seen[user] = true
			total += len(f.components[user].ranks)
		}
	}
	return total
}

// sendShutdowns notifies every provider connected to a user component
// that one of the user's ranks has terminated.
func (f *Framework) sendShutdowns(user string, cohortRank int) {
	f.mu.Lock()
	entry := f.components[user]
	providers := map[string]*componentEntry{}
	for key, conn := range f.connections {
		if len(key) > len(user) && key[:len(user)+1] == user+"/" {
			providers[conn.provider.name] = conn.provider
		}
	}
	f.mu.Unlock()
	w := f.all[entry.ranks[cohortRank]]
	for _, prov := range providers {
		for _, wr := range prov.ranks {
			w.Send(wr, tagShut, shutMsg{})
		}
	}
}
