// Package dca reimplements the Distributed CCA Architecture framework the
// paper describes in Section 4.3: a parallel and distributed
// CCA-compliant framework built directly on MPI-style primitives.
//
// DCA's distinguishing choices, all reproduced here:
//
//   - Process participation is decided by the application on the calling
//     side through a communicator passed (by the generated stub) as an
//     extra argument to every port method; on the callee side all
//     processes participate.
//   - Parallel data redistribution follows the MPI all-to-all model: the
//     user describes the layout by supplying one chunk per destination
//     rank (the Go-idiomatic equivalent of MPI datatypes plus count and
//     displacement arrays — slices carry their counts). The framework
//     moves the chunks; interpreting them is the user's job. This is
//     flexible and familiar to MPI users, and exactly as low-level as the
//     paper says: more responsibility on the user than a DAD.
//   - A barrier over the participation communicator precedes every
//     delivery, which is DCA's answer to the Figure 5 synchronization
//     problem (the prmi package demonstrates the failure mode this
//     avoids).
//   - All Go ports start concurrently at startup, and one-way methods
//     provide component concurrency.
package dca

import (
	"fmt"
	"sort"
	"sync"

	"mxn/internal/comm"
)

// Handler services one method on one provider rank. simple holds the
// replicated simple arguments; chunks[k] is the data chunk sent by the
// k-th participant (alltoallv semantics). It returns the replicated
// return values and reply[k], the chunk sent back to the k-th
// participant. For one-way methods the returns are ignored.
type Handler func(rank int, simple []any, chunks [][]float64) (ret []any, reply [][]float64, err error)

// GoComponent is a component body started at framework launch, one per
// rank of its cohort (DCA starts every Go port concurrently).
type GoComponent interface {
	Go(svc *Services) error
}

// GoFunc adapts a function to GoComponent.
type GoFunc func(svc *Services) error

// Go implements GoComponent.
func (f GoFunc) Go(svc *Services) error { return f(svc) }

// componentEntry is one component cohort. Handler tables are per rank:
// every cohort member provides its own implementation instance, exactly
// as every process of a DCA component runs the same generated skeleton.
type componentEntry struct {
	name   string
	ranks  []int // world ranks, ascending
	comp   func(rank int) GoComponent
	cohort []*comm.Comm

	mu       sync.Mutex
	handlers []map[string]Handler // per cohort rank: "port\x00method" -> handler
}

// connection wires a uses port name to a provider component's port.
type connection struct {
	provider *componentEntry
	provPort string
}

// Framework is a DCA instance: a world of processes partitioned among
// component cohorts, with port connections between them.
type Framework struct {
	world *comm.World
	all   []*comm.Comm

	mu            sync.Mutex
	components    map[string]*componentEntry
	connections   map[string]*connection // "component/usesPort"
	rankOwner     map[int]string
	onewayMethods map[string]bool // "provider/port\x00method"
}

// New creates a framework over worldSize processes.
func New(worldSize int) *Framework {
	w := comm.NewWorld(worldSize)
	return &Framework{
		world:         w,
		all:           w.Comms(),
		components:    map[string]*componentEntry{},
		connections:   map[string]*connection{},
		rankOwner:     map[int]string{},
		onewayMethods: map[string]bool{},
	}
}

// AddComponent places a component cohort on the given world ranks.
// factory is invoked once per cohort rank at launch.
func (f *Framework) AddComponent(name string, worldRanks []int, factory func(rank int) GoComponent) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, dup := f.components[name]; dup {
		return fmt.Errorf("dca: component %q already exists", name)
	}
	if len(worldRanks) == 0 {
		return fmt.Errorf("dca: component %q has no ranks", name)
	}
	ranks := append([]int(nil), worldRanks...)
	sort.Ints(ranks)
	for _, wr := range ranks {
		if wr < 0 || wr >= f.world.Size() {
			return fmt.Errorf("dca: rank %d outside world of %d", wr, f.world.Size())
		}
		if owner, taken := f.rankOwner[wr]; taken {
			return fmt.Errorf("dca: rank %d already hosts %q", wr, owner)
		}
	}
	for _, wr := range ranks {
		f.rankOwner[wr] = name
	}
	f.components[name] = &componentEntry{
		name:     name,
		ranks:    ranks,
		comp:     factory,
		cohort:   f.world.Group(ranks),
		handlers: make([]map[string]Handler, len(ranks)),
	}
	return nil
}

// DeclareOneWay marks a provider method as one-way. In DCA this property
// comes from the SIDL declaration at stub-generation time, so here it is
// framework configuration, set before Run: callers consult it to skip
// waiting for replies.
func (f *Framework) DeclareOneWay(provider, port, method string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.components[provider]; !ok {
		return fmt.Errorf("dca: no component %q", provider)
	}
	f.onewayMethods[provider+"/"+port+"\x00"+method] = true
	return nil
}

// isOneWay reports a method's one-way declaration.
func (f *Framework) isOneWay(provider, port, method string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.onewayMethods[provider+"/"+port+"\x00"+method]
}

// Connect wires component user's uses port to component provider's
// provides port.
func (f *Framework) Connect(user, usesPort, provider, provPort string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.components[user]; !ok {
		return fmt.Errorf("dca: no component %q", user)
	}
	pe, ok := f.components[provider]
	if !ok {
		return fmt.Errorf("dca: no component %q", provider)
	}
	key := user + "/" + usesPort
	if _, dup := f.connections[key]; dup {
		return fmt.Errorf("dca: uses port %s already connected", key)
	}
	f.connections[key] = &connection{provider: pe, provPort: provPort}
	return nil
}

// Run launches every component's Go body concurrently on every cohort
// rank (the DCA startup rule) and returns the first error after all
// terminate. Provider components typically register handlers and then
// call Services.Serve; pure callers return when done, which shuts their
// outgoing ports down.
func (f *Framework) Run() error {
	f.mu.Lock()
	type job struct {
		entry *componentEntry
		rank  int
	}
	var jobs []job
	for _, entry := range f.components {
		for r := range entry.ranks {
			jobs = append(jobs, job{entry, r})
		}
	}
	f.mu.Unlock()

	errs := make(chan error, len(jobs))
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			svc := &Services{fw: f, entry: j.entry, rank: j.rank}
			body := j.entry.comp(j.rank)
			err := body.Go(svc)
			// A terminated rank releases its providers: the framework
			// signals the shutdown on the component's behalf so provider
			// Serve loops can drain and return.
			f.sendShutdowns(j.entry.name, j.rank)
			if err != nil {
				errs <- fmt.Errorf("dca: %s rank %d: %w", j.entry.name, j.rank, err)
			}
		}(j)
	}
	wg.Wait()
	close(errs)
	return <-errs
}
