// Package scirun reimplements the SCIRun2 framework approach the paper
// surveys in Section 4.2: a distributed CCA framework whose parallel
// remote method invocation behavior is driven by the SIDL declaration of
// each port interface, the way SCIRun2 leverages its IDL compiler's code
// generation.
//
// Methods declared collective are all-to-all invocations with ghost
// invocations and ghost return values bridging unequal cohort sizes;
// independent methods have serial call semantics; distributed-array
// parameters declared parallel are redistributed automatically between
// the caller and callee decompositions. A run-time subsetting mechanism
// (prmi.Participation) changes the processes participating in a call when
// a component's needs change.
//
// The framework wires components' uses and provides ports to
// prmi.CallerPort/prmi.Endpoint pairs over per-connection links; argument
// layouts are framework configuration announced before any call is
// received (the paper's "special framework service" strategy).
package scirun

import (
	"fmt"
	"sync"
	"time"

	"mxn/internal/comm"
	"mxn/internal/dad"
	"mxn/internal/prmi"
	"mxn/internal/sidl"
)

// Services is one cohort rank's handle on the framework.
type Services struct {
	fw    *Framework
	entry *componentEntry
	rank  int

	mu          sync.Mutex
	callerPorts []*prmi.CallerPort
}

// Framework is a SCIRun2-style distributed framework instance over a
// world of processes partitioned among component cohorts.
type Framework struct {
	world *comm.World
	all   []*comm.Comm

	// Delivery selects invocation delivery for all caller ports. SCIRun2
	// predates DCA's barrier rule, so the default is Eager with
	// fail-fast order checking on endpoints.
	Delivery prmi.DeliveryMode

	mu          sync.Mutex
	interfaces  map[string]*sidl.Interface
	components  map[string]*componentEntry
	connections map[string]*connection // "user/usesPort"
	rankOwner   map[int]string
	nextTag     int
	layouts     []layoutDecl
}

type componentEntry struct {
	name     string
	ranks    []int
	cohort   []*comm.Comm
	body     func(svc *Services) error
	provides map[string]*sidl.Interface // port name -> interface
	uses     map[string]*sidl.Interface
}

type connection struct {
	user, usesPort, provider, provPort string
	tag                                int
}

type layoutDecl struct {
	provider, port, method, param string
	tpl                           *dad.Template
}

// New creates a framework over worldSize processes.
func New(worldSize int) *Framework {
	w := comm.NewWorld(worldSize)
	return &Framework{
		world:       w,
		all:         w.Comms(),
		interfaces:  map[string]*sidl.Interface{},
		components:  map[string]*componentEntry{},
		connections: map[string]*connection{},
		rankOwner:   map[int]string{},
	}
}

// DefineInterfaces parses SIDL source and registers every interface it
// declares — the stand-in for running the IDL compiler.
func (f *Framework) DefineInterfaces(src string) error {
	pkg, err := sidl.Parse(src)
	if err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for i := range pkg.Interfaces {
		iface := &pkg.Interfaces[i]
		if _, dup := f.interfaces[iface.Name]; dup {
			return fmt.Errorf("scirun: interface %q already defined", iface.Name)
		}
		f.interfaces[iface.Name] = iface
	}
	return nil
}

// AddComponent places a component cohort on the given world ranks with a
// per-rank body started at launch.
func (f *Framework) AddComponent(name string, worldRanks []int, body func(svc *Services) error) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, dup := f.components[name]; dup {
		return fmt.Errorf("scirun: component %q already exists", name)
	}
	if len(worldRanks) == 0 {
		return fmt.Errorf("scirun: component %q has no ranks", name)
	}
	for _, wr := range worldRanks {
		if wr < 0 || wr >= f.world.Size() {
			return fmt.Errorf("scirun: rank %d outside world of %d", wr, f.world.Size())
		}
		if owner, taken := f.rankOwner[wr]; taken {
			return fmt.Errorf("scirun: rank %d already hosts %q", wr, owner)
		}
	}
	for _, wr := range worldRanks {
		f.rankOwner[wr] = name
	}
	f.components[name] = &componentEntry{
		name:     name,
		ranks:    append([]int(nil), worldRanks...),
		cohort:   f.world.Group(worldRanks),
		body:     body,
		provides: map[string]*sidl.Interface{},
		uses:     map[string]*sidl.Interface{},
	}
	return nil
}

// AddProvidesPort declares that a component provides a port of the named
// SIDL interface.
func (f *Framework) AddProvidesPort(component, port, ifaceName string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	e, ok := f.components[component]
	if !ok {
		return fmt.Errorf("scirun: no component %q", component)
	}
	iface, ok := f.interfaces[ifaceName]
	if !ok {
		return fmt.Errorf("scirun: no interface %q", ifaceName)
	}
	if _, dup := e.provides[port]; dup {
		return fmt.Errorf("scirun: %s already provides %q", component, port)
	}
	e.provides[port] = iface
	return nil
}

// AddUsesPort declares a component's connection end point of the named
// SIDL interface.
func (f *Framework) AddUsesPort(component, port, ifaceName string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	e, ok := f.components[component]
	if !ok {
		return fmt.Errorf("scirun: no component %q", component)
	}
	iface, ok := f.interfaces[ifaceName]
	if !ok {
		return fmt.Errorf("scirun: no interface %q", ifaceName)
	}
	if _, dup := e.uses[port]; dup {
		return fmt.Errorf("scirun: %s already uses %q", component, port)
	}
	e.uses[port] = iface
	return nil
}

// Connect wires a uses port to a provides port. Interfaces must match,
// and a provides port accepts exactly one connection (each connection is
// one caller/callee PRMI pair).
func (f *Framework) Connect(user, usesPort, provider, provPort string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	ue, ok := f.components[user]
	if !ok {
		return fmt.Errorf("scirun: no component %q", user)
	}
	pe, ok := f.components[provider]
	if !ok {
		return fmt.Errorf("scirun: no component %q", provider)
	}
	ui, ok := ue.uses[usesPort]
	if !ok {
		return fmt.Errorf("scirun: %s has no uses port %q", user, usesPort)
	}
	pi, ok := pe.provides[provPort]
	if !ok {
		return fmt.Errorf("scirun: %s has no provides port %q", provider, provPort)
	}
	if ui != pi {
		return fmt.Errorf("scirun: interface mismatch: %s.%s is %q, %s.%s is %q",
			user, usesPort, ui.Name, provider, provPort, pi.Name)
	}
	key := user + "/" + usesPort
	if _, dup := f.connections[key]; dup {
		return fmt.Errorf("scirun: uses port %s already connected", key)
	}
	for _, c := range f.connections {
		if c.provider == provider && c.provPort == provPort {
			return fmt.Errorf("scirun: provides port %s.%s already connected", provider, provPort)
		}
	}
	f.nextTag++
	f.connections[key] = &connection{
		user: user, usesPort: usesPort,
		provider: provider, provPort: provPort,
		tag: f.nextTag,
	}
	return nil
}

// SetArgLayout declares the callee-side distribution of a parallel
// parameter of a provides port method — framework configuration applied
// to both the endpoint and every connected caller before any call is
// received.
func (f *Framework) SetArgLayout(provider, port, method, param string, tpl *dad.Template) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	pe, ok := f.components[provider]
	if !ok {
		return fmt.Errorf("scirun: no component %q", provider)
	}
	iface, ok := pe.provides[port]
	if !ok {
		return fmt.Errorf("scirun: %s has no provides port %q", provider, port)
	}
	if _, ok := iface.Method(method); !ok {
		return fmt.Errorf("scirun: interface %s has no method %q", iface.Name, method)
	}
	if tpl.NumProcs() != len(pe.ranks) {
		return fmt.Errorf("scirun: layout spans %d ranks, %s has %d", tpl.NumProcs(), provider, len(pe.ranks))
	}
	f.layouts = append(f.layouts, layoutDecl{provider, port, method, param, tpl})
	return nil
}

// Run launches every component body concurrently on every cohort rank and
// returns the first error after all terminate. Caller ports created
// through GetPort are closed automatically when their body returns.
func (f *Framework) Run() error {
	f.mu.Lock()
	type job struct {
		entry *componentEntry
		rank  int
	}
	var jobs []job
	for _, entry := range f.components {
		for r := range entry.ranks {
			jobs = append(jobs, job{entry, r})
		}
	}
	f.mu.Unlock()

	errs := make(chan error, len(jobs))
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			svc := &Services{fw: f, entry: j.entry, rank: j.rank}
			err := j.entry.body(svc)
			svc.closePorts()
			if err != nil {
				errs <- fmt.Errorf("scirun: %s rank %d: %w", j.entry.name, j.rank, err)
			}
		}(j)
	}
	wg.Wait()
	close(errs)
	return <-errs
}

// Rank returns this instance's cohort rank.
func (s *Services) Rank() int { return s.rank }

// CohortSize returns the component's cohort width.
func (s *Services) CohortSize() int { return len(s.entry.ranks) }

// Cohort returns the intra-component communicator.
func (s *Services) Cohort() *comm.Comm { return s.entry.cohort[s.rank] }

// GetPort resolves a connected uses port to its PRMI caller proxy — the
// distributed analogue of the direct framework's library-call reference.
// Callee argument layouts declared through SetArgLayout are pre-applied.
func (s *Services) GetPort(usesPort string) (*prmi.CallerPort, error) {
	f := s.fw
	f.mu.Lock()
	conn := f.connections[s.entry.name+"/"+usesPort]
	if conn == nil {
		f.mu.Unlock()
		return nil, fmt.Errorf("scirun: uses port %s.%s is not connected", s.entry.name, usesPort)
	}
	iface := s.entry.uses[usesPort]
	prov := f.components[conn.provider]
	layouts := append([]layoutDecl(nil), f.layouts...)
	mode := f.Delivery
	f.mu.Unlock()

	link := newMappedLink(f.all[s.entry.ranks[s.rank]], prov.ranks, conn.tag)
	port := prmi.NewCallerPort(iface, link, s.rank, len(prov.ranks), mode)
	for _, l := range layouts {
		if l.provider == conn.provider && l.port == conn.provPort {
			if err := port.SetCalleeLayout(l.method, l.param, l.tpl); err != nil {
				return nil, err
			}
		}
	}
	s.mu.Lock()
	s.callerPorts = append(s.callerPorts, port)
	s.mu.Unlock()
	return port, nil
}

// ProvidesPort builds this rank's PRMI endpoint for a provides port.
// Declared argument layouts are pre-registered; the body registers
// handlers and then calls Serve. The endpoint uses fail-fast order
// checking under eager delivery.
func (s *Services) ProvidesPort(port string) (*prmi.Endpoint, error) {
	f := s.fw
	f.mu.Lock()
	iface, ok := s.entry.provides[port]
	if !ok {
		f.mu.Unlock()
		return nil, fmt.Errorf("scirun: %s has no provides port %q", s.entry.name, port)
	}
	var conn *connection
	for _, c := range f.connections {
		if c.provider == s.entry.name && c.provPort == port {
			conn = c
		}
	}
	if conn == nil {
		f.mu.Unlock()
		return nil, fmt.Errorf("scirun: provides port %s.%s has no connection", s.entry.name, port)
	}
	user := f.components[conn.user]
	layouts := append([]layoutDecl(nil), f.layouts...)
	f.mu.Unlock()

	link := newMappedLink(f.all[s.entry.ranks[s.rank]], user.ranks, conn.tag)
	ep := prmi.NewEndpoint(iface, link, s.rank, len(s.entry.ranks), len(user.ranks))
	ep.StrictMatching = true
	for _, l := range layouts {
		if l.provider == s.entry.name && l.port == port {
			if err := ep.RegisterArgLayout(l.method, l.param, l.tpl); err != nil {
				return nil, err
			}
		}
	}
	return ep, nil
}

// closePorts shuts down every caller port this rank opened.
func (s *Services) closePorts() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, p := range s.callerPorts {
		_ = p.Close()
	}
}

// mappedLink adapts a world communicator to a prmi.Link where the peer
// cohort occupies arbitrary (possibly non-contiguous) world ranks.
type mappedLink struct {
	c     *comm.Comm
	peers []int       // peer cohort rank -> world rank
	back  map[int]int // world rank -> peer cohort rank
	tag   int
}

func newMappedLink(c *comm.Comm, peers []int, tag int) *mappedLink {
	back := make(map[int]int, len(peers))
	for i, wr := range peers {
		back[wr] = i
	}
	return &mappedLink{c: c, peers: peers, back: back, tag: tag}
}

func (l *mappedLink) Send(peerRank int, msg []byte) error {
	if peerRank < 0 || peerRank >= len(l.peers) {
		return fmt.Errorf("scirun: peer rank %d outside cohort of %d", peerRank, len(l.peers))
	}
	cp := make([]byte, len(msg))
	copy(cp, msg)
	l.c.Send(l.peers[peerRank], l.tag, cp)
	return nil
}

func (l *mappedLink) Recv() (int, []byte, error) {
	payload, src := l.c.Recv(comm.AnySource, l.tag)
	return l.attribute(payload, src)
}

func (l *mappedLink) RecvTimeout(d time.Duration) (int, []byte, error) {
	if d <= 0 {
		return l.Recv()
	}
	payload, src, ok := l.c.RecvTimeout(comm.AnySource, l.tag, d)
	if !ok {
		return 0, nil, fmt.Errorf("%w: no message within %v", prmi.ErrTimeout, d)
	}
	return l.attribute(payload, src)
}

func (l *mappedLink) attribute(payload any, src int) (int, []byte, error) {
	msg, ok := payload.([]byte)
	if !ok {
		return 0, nil, fmt.Errorf("scirun: link received %T", payload)
	}
	peer, ok := l.back[src]
	if !ok {
		return 0, nil, fmt.Errorf("scirun: message from world rank %d outside the peer cohort", src)
	}
	return peer, msg, nil
}
