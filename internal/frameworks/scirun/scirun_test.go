package scirun

import (
	"sync/atomic"
	"testing"

	"mxn/internal/dad"
	"mxn/internal/prmi"
)

const idl = `
package demo;

interface Solver {
    collective double norm(in parallel array<double> field);
    independent double square(in double x);
    collective oneway void tick(in int step);
}
`

// build wires a 3-rank driver to a 2-rank solver over the Solver
// interface with a registered parallel-arg layout.
func build(t *testing.T, driverBody func(svc *Services) error, solverBody func(svc *Services) error) *Framework {
	t.Helper()
	f := New(5)
	if err := f.DefineInterfaces(idl); err != nil {
		t.Fatal(err)
	}
	if err := f.AddComponent("driver", []int{0, 1, 2}, driverBody); err != nil {
		t.Fatal(err)
	}
	if err := f.AddComponent("solver", []int{3, 4}, solverBody); err != nil {
		t.Fatal(err)
	}
	if err := f.AddUsesPort("driver", "calc", "Solver"); err != nil {
		t.Fatal(err)
	}
	if err := f.AddProvidesPort("solver", "svc", "Solver"); err != nil {
		t.Fatal(err)
	}
	if err := f.Connect("driver", "calc", "solver", "svc"); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestEndToEndParallelArgument(t *testing.T) {
	const n = 12
	calleeTpl, err := dad.NewTemplate([]int{n}, []dad.AxisDist{dad.BlockAxis(2)})
	if err != nil {
		t.Fatal(err)
	}
	callerTpl, err := dad.NewTemplate([]int{n}, []dad.AxisDist{dad.CyclicAxis(3)})
	if err != nil {
		t.Fatal(err)
	}
	var served atomic.Int64
	f := build(t,
		func(svc *Services) error {
			port, err := svc.GetPort("calc")
			if err != nil {
				return err
			}
			local := make([]float64, callerTpl.LocalCount(svc.Rank()))
			for li := range local {
				g := svc.Rank() + li*3 // cyclic layout
				local[li] = float64(g)
			}
			res, err := port.CallCollective("norm", prmi.FullParticipation(svc.Cohort()),
				prmi.Parallel("field", callerTpl, local))
			if err != nil {
				return err
			}
			// Sum over callee ranks of their partial sums = 0+1+...+11 = 66.
			if res.Return != 66.0 {
				t.Errorf("driver rank %d: norm = %v", svc.Rank(), res.Return)
			}
			return nil
		},
		func(svc *Services) error {
			ep, err := svc.ProvidesPort("svc")
			if err != nil {
				return err
			}
			ep.Handle("norm", func(in *prmi.Incoming, out *prmi.Outgoing) error {
				served.Add(1)
				sum := 0.0
				for _, v := range in.Parallel["field"] {
					sum += v
				}
				// Cohort-wide reduction: callee ranks cooperate out-of-band.
				total := svc.Cohort().AllreduceFloat64(sum, 0)
				out.Return = total
				return nil
			})
			return ep.Serve()
		},
	)
	if err := f.SetArgLayout("solver", "svc", "norm", "field", calleeTpl); err != nil {
		t.Fatal(err)
	}
	if err := f.Run(); err != nil {
		t.Fatal(err)
	}
	if served.Load() != 2 {
		t.Errorf("handler ran %d times", served.Load())
	}
}

func TestIndependentAndOneWay(t *testing.T) {
	var ticks atomic.Int64
	done := make(chan struct{})
	f := build(t,
		func(svc *Services) error {
			port, err := svc.GetPort("calc")
			if err != nil {
				return err
			}
			if svc.Rank() == 0 {
				res, err := port.CallIndependent(1, "square", prmi.Simple("x", 6.0))
				if err != nil {
					return err
				}
				if res.Return != 36.0 {
					t.Errorf("square = %v", res.Return)
				}
			}
			// Order the independent call strictly before the collective
			// one: without this, rank 0's pending square reply and the
			// others' eager tick headers recreate exactly the Figure 5
			// race this framework's strict matching detects.
			svc.Cohort().Barrier()
			if _, err := port.CallCollective("tick", prmi.FullParticipation(svc.Cohort()),
				prmi.Simple("step", 1)); err != nil {
				return err
			}
			<-done // keep ports open until the one-way handlers ran
			return nil
		},
		func(svc *Services) error {
			ep, err := svc.ProvidesPort("svc")
			if err != nil {
				return err
			}
			ep.Handle("square", func(in *prmi.Incoming, out *prmi.Outgoing) error {
				x := in.Simple["x"].(float64)
				out.Return = x * x
				return nil
			})
			ep.Handle("tick", func(in *prmi.Incoming, out *prmi.Outgoing) error {
				if ticks.Add(1) == 2 {
					close(done)
				}
				return nil
			})
			return ep.Serve()
		},
	)
	if err := f.Run(); err != nil {
		t.Fatal(err)
	}
	if ticks.Load() != 2 {
		t.Errorf("ticks = %d", ticks.Load())
	}
}

func TestSubsetting(t *testing.T) {
	// Run-time subsetting: only driver ranks 0 and 2 participate.
	var saw atomic.Int64
	f := build(t,
		func(svc *Services) error {
			sub := svc.Cohort().Sub([]int{0, 2})
			// Every rank resolves the port (the framework closes it at
			// exit, releasing the endpoint), but only the subset calls.
			port, err := svc.GetPort("calc")
			if err != nil {
				return err
			}
			if svc.Rank() == 1 {
				return nil
			}
			tpl, err := dad.NewTemplate([]int{4}, []dad.AxisDist{dad.BlockAxis(2)})
			if err != nil {
				return err
			}
			pos := svc.Rank() / 2
			local := make([]float64, tpl.LocalCount(pos))
			for i := range local {
				local[i] = 1
			}
			part := prmi.Participation{Ranks: []int{0, 2}, Group: sub}
			_, err = port.CallCollective("norm", part, prmi.Parallel("field", tpl, local))
			return err
		},
		func(svc *Services) error {
			ep, err := svc.ProvidesPort("svc")
			if err != nil {
				return err
			}
			ep.Handle("norm", func(in *prmi.Incoming, out *prmi.Outgoing) error {
				saw.Store(int64(len(in.Participants)))
				out.Return = 0.0
				return nil
			})
			return ep.Serve()
		},
	)
	calleeTpl, _ := dad.NewTemplate([]int{4}, []dad.AxisDist{dad.BlockAxis(2)})
	if err := f.SetArgLayout("solver", "svc", "norm", "field", calleeTpl); err != nil {
		t.Fatal(err)
	}
	if err := f.Run(); err != nil {
		t.Fatal(err)
	}
	if saw.Load() != 2 {
		t.Errorf("callee saw %d participants, want 2", saw.Load())
	}
}

func TestDeclarationValidation(t *testing.T) {
	f := New(3)
	if err := f.DefineInterfaces("package p; interface I { void m(); }"); err != nil {
		t.Fatal(err)
	}
	if err := f.DefineInterfaces("package q; interface I { void x(); }"); err == nil {
		t.Error("duplicate interface accepted")
	}
	if err := f.DefineInterfaces("not sidl at all"); err == nil {
		t.Error("bad SIDL accepted")
	}
	if err := f.AddComponent("a", []int{0}, nil); err != nil {
		t.Fatal(err)
	}
	if err := f.AddComponent("a", []int{1}, nil); err == nil {
		t.Error("duplicate component accepted")
	}
	if err := f.AddComponent("b", []int{0}, nil); err == nil {
		t.Error("overlapping ranks accepted")
	}
	if err := f.AddComponent("b", []int{9}, nil); err == nil {
		t.Error("out-of-world rank accepted")
	}
	if err := f.AddComponent("b", []int{1}, nil); err != nil {
		t.Fatal(err)
	}
	if err := f.AddProvidesPort("a", "p", "Nope"); err == nil {
		t.Error("unknown interface accepted")
	}
	if err := f.AddProvidesPort("ghost", "p", "I"); err == nil {
		t.Error("unknown component accepted")
	}
	if err := f.AddProvidesPort("a", "p", "I"); err != nil {
		t.Fatal(err)
	}
	if err := f.AddProvidesPort("a", "p", "I"); err == nil {
		t.Error("duplicate provides accepted")
	}
	if err := f.AddUsesPort("b", "u", "I"); err != nil {
		t.Fatal(err)
	}
	if err := f.AddUsesPort("b", "u", "I"); err == nil {
		t.Error("duplicate uses accepted")
	}
	if err := f.Connect("b", "u", "a", "p"); err != nil {
		t.Fatal(err)
	}
	if err := f.Connect("b", "u", "a", "p"); err == nil {
		t.Error("double connect accepted")
	}
	// Interface mismatch.
	f.DefineInterfaces("package r; interface J { void m(); }")
	f.AddComponent("c", []int{2}, nil)
	f.AddUsesPort("c", "u", "J")
	if err := f.Connect("c", "u", "a", "p"); err == nil {
		t.Error("interface mismatch accepted")
	}
	// Layout validation.
	tpl, _ := dad.NewTemplate([]int{4}, []dad.AxisDist{dad.BlockAxis(1)})
	if err := f.SetArgLayout("ghost", "p", "m", "x", tpl); err == nil {
		t.Error("layout on unknown component accepted")
	}
	if err := f.SetArgLayout("a", "nope", "m", "x", tpl); err == nil {
		t.Error("layout on unknown port accepted")
	}
	if err := f.SetArgLayout("a", "p", "nope", "x", tpl); err == nil {
		t.Error("layout on unknown method accepted")
	}
	wide, _ := dad.NewTemplate([]int{4}, []dad.AxisDist{dad.BlockAxis(4)})
	if err := f.SetArgLayout("a", "p", "m", "x", wide); err == nil {
		t.Error("wrong-width layout accepted")
	}
}

func TestUnconnectedPorts(t *testing.T) {
	f := New(2)
	f.DefineInterfaces("package p; interface I { void m(); }")
	gotErr := make(chan error, 2)
	f.AddComponent("a", []int{0}, func(svc *Services) error {
		_, err := svc.GetPort("nowhere")
		gotErr <- err
		_, err = svc.ProvidesPort("unserved")
		gotErr <- err
		return nil
	})
	f.AddComponent("b", []int{1}, func(svc *Services) error { return nil })
	if err := f.Run(); err != nil {
		t.Fatal(err)
	}
	if err := <-gotErr; err == nil {
		t.Error("unconnected uses port resolved")
	}
	if err := <-gotErr; err == nil {
		t.Error("undeclared provides port resolved")
	}
}
