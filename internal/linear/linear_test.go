package linear

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mxn/internal/dad"
)

func TestNewSetNormalizes(t *testing.T) {
	s := NewSet(Interval{5, 8}, Interval{0, 3}, Interval{3, 5}, Interval{10, 10}, Interval{12, 14})
	want := Set{{0, 8}, {12, 14}}
	if !s.Equal(want) {
		t.Errorf("got %v, want %v", s, want)
	}
	if s.Len() != 10 {
		t.Errorf("len = %d", s.Len())
	}
}

func TestSetContains(t *testing.T) {
	s := NewSet(Interval{2, 5}, Interval{8, 10})
	for p, want := range map[int]bool{1: false, 2: true, 4: true, 5: false, 8: true, 9: true, 10: false} {
		if got := s.Contains(p); got != want {
			t.Errorf("Contains(%d) = %v", p, got)
		}
	}
}

func TestSetIntersectUnion(t *testing.T) {
	a := NewSet(Interval{0, 10}, Interval{20, 30})
	b := NewSet(Interval{5, 25})
	gotI := a.Intersect(b)
	if !gotI.Equal(Set{{5, 10}, {20, 25}}) {
		t.Errorf("intersect = %v", gotI)
	}
	gotU := a.Union(b)
	if !gotU.Equal(Set{{0, 30}}) {
		t.Errorf("union = %v", gotU)
	}
	if got := a.Intersect(nil); len(got) != 0 {
		t.Errorf("intersect empty = %v", got)
	}
}

func TestPositionRank(t *testing.T) {
	s := NewSet(Interval{2, 5}, Interval{8, 10})
	wants := map[int]int{2: 0, 3: 1, 4: 2, 8: 3, 9: 4}
	for p, want := range wants {
		if got := s.PositionRank(p); got != want {
			t.Errorf("PositionRank(%d) = %d, want %d", p, got, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("PositionRank outside set did not panic")
		}
	}()
	s.PositionRank(6)
}

// Property: intersect/union are consistent with membership, on random sets.
func TestQuickSetAlgebra(t *testing.T) {
	mk := func(seeds []uint8) Set {
		var ivs []Interval
		for i := 0; i+1 < len(seeds); i += 2 {
			lo := int(seeds[i]) % 64
			hi := lo + int(seeds[i+1])%8
			ivs = append(ivs, Interval{lo, hi})
		}
		return NewSet(ivs...)
	}
	f := func(x, y []uint8) bool {
		a, b := mk(x), mk(y)
		i := a.Intersect(b)
		u := a.Union(b)
		for p := 0; p < 80; p++ {
			inA, inB := a.Contains(p), b.Contains(p)
			if i.Contains(p) != (inA && inB) {
				return false
			}
			if u.Contains(p) != (inA || inB) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func block2D(t *testing.T, dims []int, p, q int) *dad.Template {
	t.Helper()
	tpl, err := dad.NewTemplate(dims, []dad.AxisDist{dad.BlockAxis(p), dad.BlockAxis(q)})
	if err != nil {
		t.Fatal(err)
	}
	return tpl
}

func TestRowMajorOwnedByPartition(t *testing.T) {
	tpl := block2D(t, []int{6, 8}, 2, 2)
	rm := NewRowMajor(tpl)
	if rm.TotalLen() != 48 {
		t.Fatalf("total = %d", rm.TotalLen())
	}
	var union Set
	total := 0
	for r := 0; r < tpl.NumProcs(); r++ {
		s := rm.OwnedBy(r)
		if got := s.Intersect(union); got.Len() != 0 {
			t.Errorf("rank %d overlaps earlier ranks: %v", r, got)
		}
		union = union.Union(s)
		total += s.Len()
	}
	if total != 48 || union.Len() != 48 {
		t.Errorf("partition broken: total=%d union=%d", total, union.Len())
	}
}

func TestRowMajorPackUnpackRoundTrip(t *testing.T) {
	tpl := block2D(t, []int{4, 6}, 2, 3)
	rm := NewRowMajor(tpl)
	for r := 0; r < tpl.NumProcs(); r++ {
		owned := rm.OwnedBy(r)
		local := make([]float64, tpl.LocalCount(r))
		for i := range local {
			local[i] = float64(r*100 + i)
		}
		packed := make([]float64, owned.Len())
		rm.Pack(r, local, owned, packed)
		restored := make([]float64, len(local))
		rm.Unpack(r, restored, owned, packed)
		for i := range local {
			if restored[i] != local[i] {
				t.Fatalf("rank %d: restored[%d] = %v, want %v", r, i, restored[i], local[i])
			}
		}
	}
}

func TestRowMajorPackSubset(t *testing.T) {
	// 1-D array of 8 on 2 blocks; pack positions {1,2,6} and check values.
	tpl, err := dad.NewTemplate([]int{8}, []dad.AxisDist{dad.BlockAxis(2)})
	if err != nil {
		t.Fatal(err)
	}
	rm := NewRowMajor(tpl)
	// Global values: v[g] = 10*g. Rank 0 holds g 0..3, rank 1 holds 4..7.
	local0 := []float64{0, 10, 20, 30}
	local1 := []float64{40, 50, 60, 70}
	want := NewSet(Interval{1, 3}, Interval{6, 7})
	s0 := want.Intersect(rm.OwnedBy(0))
	s1 := want.Intersect(rm.OwnedBy(1))
	out0 := make([]float64, s0.Len())
	out1 := make([]float64, s1.Len())
	rm.Pack(0, local0, s0, out0)
	rm.Pack(1, local1, s1, out1)
	if out0[0] != 10 || out0[1] != 20 {
		t.Errorf("rank 0 packed %v", out0)
	}
	if out1[0] != 60 {
		t.Errorf("rank 1 packed %v", out1)
	}
}

func TestLocalOrder(t *testing.T) {
	tpl := block2D(t, []int{4, 4}, 2, 2)
	lo := NewLocalOrder(tpl)
	if lo.TotalLen() != 16 {
		t.Fatalf("total = %d", lo.TotalLen())
	}
	// Each rank owns one contiguous interval of length 4.
	base := 0
	for r := 0; r < 4; r++ {
		s := lo.OwnedBy(r)
		if len(s) != 1 || s[0].Lo != base || s[0].Len() != 4 {
			t.Errorf("rank %d owns %v", r, s)
		}
		base += 4
	}
	// Pack/unpack round trip.
	local := []float64{1, 2, 3, 4}
	owned := lo.OwnedBy(2)
	out := make([]float64, 4)
	lo.Pack(2, local, owned, out)
	back := make([]float64, 4)
	lo.Unpack(2, back, owned, out)
	for i := range local {
		if back[i] != local[i] {
			t.Fatalf("local order round trip broke at %d", i)
		}
	}
}

// Property: for random templates, every linear position maps back to the
// owning rank consistently between RowMajor.OwnedBy and dad ownership.
func TestRowMajorAgreesWithOwnership(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	kinds := []func(p int, n int) dad.AxisDist{
		func(p, n int) dad.AxisDist { return dad.BlockAxis(p) },
		func(p, n int) dad.AxisDist { return dad.CyclicAxis(p) },
		func(p, n int) dad.AxisDist { return dad.BlockCyclicAxis(p, 2) },
	}
	for trial := 0; trial < 20; trial++ {
		dims := []int{2 + rng.Intn(6), 2 + rng.Intn(6)}
		axes := []dad.AxisDist{
			kinds[rng.Intn(len(kinds))](1+rng.Intn(3), dims[0]),
			kinds[rng.Intn(len(kinds))](1+rng.Intn(3), dims[1]),
		}
		tpl, err := dad.NewTemplate(dims, axes)
		if err != nil {
			t.Fatal(err)
		}
		rm := NewRowMajor(tpl)
		idx := make([]int, 2)
		for p := 0; p < tpl.Size(); p++ {
			idx[0] = p / dims[1]
			idx[1] = p % dims[1]
			owner := tpl.OwnerOf(idx)
			for r := 0; r < tpl.NumProcs(); r++ {
				if got := rm.OwnedBy(r).Contains(p); got != (r == owner) {
					t.Fatalf("%v: pos %d (idx %v): OwnedBy(%d)=%v, owner=%d", tpl, p, idx, r, got, owner)
				}
			}
		}
	}
}

func TestGenericLinearizersMatchFloat64(t *testing.T) {
	// The generic instantiations must place every element exactly where the
	// float64 linearizers do: same ownership sets, same pack order.
	tpl := block2D(t, []int{6, 8}, 2, 2)
	rm64 := NewRowMajor(tpl)
	rm32 := NewRowMajorT[float32](tpl)
	rmC := NewRowMajorT[complex128](tpl)
	for r := 0; r < tpl.NumProcs(); r++ {
		own := rm64.OwnedBy(r)
		if !rm32.OwnedBy(r).Equal(own) || !rmC.OwnedBy(r).Equal(own) {
			t.Fatalf("rank %d: generic OwnedBy disagrees with float64", r)
		}
		n := tpl.LocalCount(r)
		loc64 := make([]float64, n)
		loc32 := make([]float32, n)
		locC := make([]complex128, n)
		for i := range loc64 {
			loc64[i] = float64(r*1000 + i)
			loc32[i] = float32(loc64[i])
			locC[i] = complex(loc64[i], -loc64[i])
		}
		out64 := make([]float64, own.Len())
		out32 := make([]float32, own.Len())
		outC := make([]complex128, own.Len())
		rm64.Pack(r, loc64, own, out64)
		rm32.Pack(r, loc32, own, out32)
		rmC.Pack(r, locC, own, outC)
		for i := range out64 {
			if out32[i] != float32(out64[i]) || outC[i] != complex(out64[i], -out64[i]) {
				t.Fatalf("rank %d pos %d: generic pack diverges (%v %v vs %v)", r, i, out32[i], outC[i], out64[i])
			}
		}
		// Round trip back through Unpack.
		back32 := make([]float32, n)
		rm32.Unpack(r, back32, own, out32)
		for i := range back32 {
			if back32[i] != loc32[i] {
				t.Fatalf("rank %d elem %d: float32 unpack round trip got %v want %v", r, i, back32[i], loc32[i])
			}
		}
	}

	lo32 := NewLocalOrderT[float32](tpl)
	lo64 := NewLocalOrder(tpl)
	for r := 0; r < tpl.NumProcs(); r++ {
		if !lo32.OwnedBy(r).Equal(lo64.OwnedBy(r)) {
			t.Fatalf("rank %d: LocalOrderT ownership disagrees", r)
		}
	}

	// Generic instances satisfy the generic interface; the float64 alias is
	// the same type as the instantiation.
	var _ LinearizerT[float32] = rm32
	var _ LinearizerT[complex128] = rmC
	var _ Linearizer = rm64
}

// Slice must pick exactly the positions [off, off+n) in the set's own
// position order, splitting intervals mid-way when the window demands it.
func TestSetSlice(t *testing.T) {
	s := NewSet(Interval{2, 5}, Interval{8, 10}, Interval{20, 26})
	cases := []struct {
		off, n int
		want   Set
	}{
		{0, s.Len(), s},
		{0, 2, Set{{2, 4}}},
		{1, 3, Set{{3, 5}, {8, 9}}},
		{3, 2, Set{{8, 10}}},
		{4, 5, Set{{9, 10}, {20, 24}}},
		{5, 100, Set{{20, 26}}},
		{s.Len(), 4, nil},
		{0, 0, nil},
		{3, 0, nil},
	}
	for _, c := range cases {
		got := s.Slice(c.off, c.n, nil)
		if !got.Equal(c.want) {
			t.Errorf("Slice(%d, %d) = %v, want %v", c.off, c.n, got, c.want)
		}
	}

	// Tiling property: consecutive windows of any size reassemble the set.
	for win := 1; win <= s.Len(); win++ {
		var scratch Set
		var parts []Interval
		for off := 0; off < s.Len(); off += win {
			scratch = s.Slice(off, win, scratch)
			parts = append(parts, scratch...)
		}
		if got := NewSet(parts...); !got.Equal(s) {
			t.Errorf("window %d: reassembled %v, want %v", win, got, s)
		}
	}
}
