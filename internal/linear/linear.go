// Package linear implements the linearization intermediate representation
// for M×N data redistribution (Section 2.2.1 of the paper, following
// Meta-Chaos and the Indiana MPI-IO M×N device).
//
// In this method the elements of a distributed data structure are mapped to
// an abstract one-dimensional arrangement. Source and destination describe
// which linear positions they own; the mapping between the two sides is
// implicit — position k on the sender corresponds to position k on the
// receiver. The linearization is purely logical: no serialized intermediate
// copy of the data is ever produced, and transfers proceed fully in
// parallel (the receiver-driven exchange built on this package lives in
// internal/redist).
//
// The package provides the interval-set algebra over linear positions and
// linearizers for distributed arrays. Applications control the mapping by
// choosing (or implementing) a Linearizer, which is exactly the flexibility
// — and the burden — the paper attributes to the approach: the receiver
// must know how the sender linearized the data to interpret it.
package linear

import (
	"fmt"
	"sort"

	"mxn/internal/dad"
)

// Interval is a half-open range [Lo, Hi) of linear positions.
type Interval struct {
	Lo, Hi int
}

// Len returns the number of positions in the interval.
func (iv Interval) Len() int { return iv.Hi - iv.Lo }

// Set is a normalized interval set: sorted, disjoint, non-adjacent,
// non-empty intervals. The zero value is the empty set.
type Set []Interval

// NewSet normalizes arbitrary intervals into a Set, merging overlaps and
// adjacencies and dropping empties.
func NewSet(ivs ...Interval) Set {
	var s Set
	for _, iv := range ivs {
		if iv.Lo < iv.Hi {
			s = append(s, iv)
		}
	}
	sort.Slice(s, func(i, j int) bool { return s[i].Lo < s[j].Lo })
	out := s[:0]
	for _, iv := range s {
		if n := len(out); n > 0 && iv.Lo <= out[n-1].Hi {
			if iv.Hi > out[n-1].Hi {
				out[n-1].Hi = iv.Hi
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

// Len returns the total number of positions in the set.
func (s Set) Len() int {
	n := 0
	for _, iv := range s {
		n += iv.Len()
	}
	return n
}

// Contains reports whether position p is in the set.
func (s Set) Contains(p int) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i].Hi > p })
	return i < len(s) && s[i].Lo <= p
}

// Intersect returns the positions common to s and t.
func (s Set) Intersect(t Set) Set {
	var out Set
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		lo := max(s[i].Lo, t[j].Lo)
		hi := min(s[i].Hi, t[j].Hi)
		if lo < hi {
			out = append(out, Interval{lo, hi})
		}
		if s[i].Hi < t[j].Hi {
			i++
		} else {
			j++
		}
	}
	return out
}

// Union returns the positions in either set.
func (s Set) Union(t Set) Set {
	all := make([]Interval, 0, len(s)+len(t))
	all = append(all, s...)
	all = append(all, t...)
	return NewSet(all...)
}

// Equal reports set equality.
func (s Set) Equal(t Set) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// PositionRank returns the rank of position p within the set: the number
// of set positions strictly below p. p must be in the set. This converts a
// linear position to an offset within a packed buffer holding exactly the
// set's positions in order.
func (s Set) PositionRank(p int) int {
	rank := 0
	for _, iv := range s {
		if p >= iv.Hi {
			rank += iv.Len()
			continue
		}
		if p >= iv.Lo {
			return rank + p - iv.Lo
		}
		break
	}
	panic(fmt.Sprintf("linear: position %d not in set", p))
}

// Slice returns the sub-set covering the positions at packed ranks
// [off, off+n): the window of the set a chunk of its packed buffer
// holds when a reply is split at an element boundary (the
// memory-bounded transfer engine's round decomposition). dst is reused
// as backing storage, so a caller slicing repeatedly allocates only
// while its scratch set grows.
func (s Set) Slice(off, n int, dst Set) Set {
	dst = dst[:0]
	if n <= 0 {
		return dst
	}
	for _, iv := range s {
		l := iv.Len()
		if off >= l {
			off -= l
			continue
		}
		lo := iv.Lo + off
		take := l - off
		if take > n {
			take = n
		}
		dst = append(dst, Interval{lo, lo + take})
		n -= take
		off = 0
		if n == 0 {
			break
		}
	}
	return dst
}

// String renders the set compactly.
func (s Set) String() string {
	out := "{"
	for i, iv := range s {
		if i > 0 {
			out += ","
		}
		out += fmt.Sprintf("%d:%d", iv.Lo, iv.Hi)
	}
	return out + "}"
}

// LinearizerT maps the elements of one side's distributed data structure to
// linear positions. Implementations must agree between sender and receiver
// for the transfer to be meaningful — that agreement is application
// knowledge, not middleware knowledge (the linearization caveat the paper
// highlights). The element type is a parameter: the position algebra is
// independent of what is stored at each position.
type LinearizerT[T any] interface {
	// TotalLen returns the length of the linear space.
	TotalLen() int
	// OwnedBy returns the linear positions rank owns, as a normalized Set.
	OwnedBy(rank int) Set
	// Pack copies the elements at the given linear positions (in set
	// order) out of rank's canonical local buffer into out, which must
	// have length set.Len().
	Pack(rank int, local []T, set Set, out []T)
	// Unpack copies data (in set order) into rank's canonical local buffer
	// at the given linear positions.
	Unpack(rank int, local []T, set Set, data []T)
}

// Linearizer is the float64 linearizer, the historical default element type.
type Linearizer = LinearizerT[float64]

// RowMajorT linearizes a distributed array template by the row-major order
// of its global index space — the natural linearization for dense arrays.
type RowMajorT[T any] struct {
	T *dad.Template

	strides []int
}

// RowMajor is the float64 instantiation of RowMajorT.
type RowMajor = RowMajorT[float64]

// NewRowMajorT builds a row-major linearizer for a template.
func NewRowMajorT[T any](t *dad.Template) *RowMajorT[T] {
	dims := t.Dims()
	strides := make([]int, len(dims))
	s := 1
	for a := len(dims) - 1; a >= 0; a-- {
		strides[a] = s
		s *= dims[a]
	}
	return &RowMajorT[T]{T: t, strides: strides}
}

// NewRowMajor builds a row-major float64 linearizer for a template.
func NewRowMajor(t *dad.Template) *RowMajor { return NewRowMajorT[float64](t) }

// TotalLen returns the template size.
func (rm *RowMajorT[T]) TotalLen() int { return rm.T.Size() }

// position returns the linear position of a global index.
func (rm *RowMajorT[T]) position(idx []int) int {
	p := 0
	for a, i := range idx {
		p += i * rm.strides[a]
	}
	return p
}

// OwnedBy returns rank's linear positions: each row of each owned patch is
// one interval.
func (rm *RowMajorT[T]) OwnedBy(rank int) Set {
	var ivs []Interval
	for _, p := range rm.T.Patches(rank) {
		rowLen := p.Hi[len(p.Hi)-1] - p.Lo[len(p.Lo)-1]
		forEachRow(p, func(rowStart []int) {
			pos := rm.position(rowStart)
			ivs = append(ivs, Interval{pos, pos + rowLen})
		})
	}
	return NewSet(ivs...)
}

// Pack implements LinearizerT.
func (rm *RowMajorT[T]) Pack(rank int, local []T, set Set, out []T) {
	k := 0
	idx := make([]int, rm.T.NumAxes())
	for _, iv := range set {
		for p := iv.Lo; p < iv.Hi; p++ {
			rm.indexOf(p, idx)
			out[k] = local[rm.T.LocalOffset(rank, idx)]
			k++
		}
	}
}

// Unpack implements LinearizerT.
func (rm *RowMajorT[T]) Unpack(rank int, local []T, set Set, data []T) {
	k := 0
	idx := make([]int, rm.T.NumAxes())
	for _, iv := range set {
		for p := iv.Lo; p < iv.Hi; p++ {
			rm.indexOf(p, idx)
			local[rm.T.LocalOffset(rank, idx)] = data[k]
			k++
		}
	}
}

// indexOf writes the global index of linear position p into idx.
func (rm *RowMajorT[T]) indexOf(p int, idx []int) {
	for a := range rm.strides {
		idx[a] = p / rm.strides[a]
		p %= rm.strides[a]
	}
}

// forEachRow invokes fn with the starting global index of every
// (last-axis) row of the patch. The slice passed to fn is reused.
func forEachRow(p dad.Patch, fn func(rowStart []int)) {
	n := p.NumAxes()
	idx := make([]int, n)
	copy(idx, p.Lo)
	for {
		fn(idx)
		a := n - 2
		for a >= 0 {
			idx[a]++
			if idx[a] < p.Hi[a] {
				break
			}
			idx[a] = p.Lo[a]
			a--
		}
		if a < 0 {
			return
		}
	}
}

// LocalOrderT linearizes a template by the concatenation of each rank's
// canonical local buffers in rank order. It demonstrates an
// application-defined linearization where the sender's layout drives the
// ordering: a receiver using LocalOrder of the *sender's* template can
// reconstruct the data only with knowledge of that template — precisely
// the implicit-knowledge coupling Section 2.2.1 warns about.
type LocalOrderT[T any] struct {
	T *dad.Template

	rankBase []int // starting linear position of each rank's block
}

// LocalOrder is the float64 instantiation of LocalOrderT.
type LocalOrder = LocalOrderT[float64]

// NewLocalOrderT builds a local-order linearizer for a template.
func NewLocalOrderT[T any](t *dad.Template) *LocalOrderT[T] {
	lo := &LocalOrderT[T]{T: t, rankBase: make([]int, t.NumProcs()+1)}
	for r := 0; r < t.NumProcs(); r++ {
		lo.rankBase[r+1] = lo.rankBase[r] + t.LocalCount(r)
	}
	return lo
}

// NewLocalOrder builds a local-order float64 linearizer for a template.
func NewLocalOrder(t *dad.Template) *LocalOrder { return NewLocalOrderT[float64](t) }

// TotalLen returns the template size.
func (l *LocalOrderT[T]) TotalLen() int { return l.rankBase[len(l.rankBase)-1] }

// OwnedBy returns rank's single contiguous interval.
func (l *LocalOrderT[T]) OwnedBy(rank int) Set {
	return NewSet(Interval{l.rankBase[rank], l.rankBase[rank+1]})
}

// Pack implements LinearizerT: local order means a straight copy.
func (l *LocalOrderT[T]) Pack(rank int, local []T, set Set, out []T) {
	base := l.rankBase[rank]
	k := 0
	for _, iv := range set {
		copy(out[k:k+iv.Len()], local[iv.Lo-base:iv.Hi-base])
		k += iv.Len()
	}
}

// Unpack implements LinearizerT.
func (l *LocalOrderT[T]) Unpack(rank int, local []T, set Set, data []T) {
	base := l.rankBase[rank]
	k := 0
	for _, iv := range set {
		copy(local[iv.Lo-base:iv.Hi-base], data[k:k+iv.Len()])
		k += iv.Len()
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
